#!/usr/bin/env bash
# Deeper verification tier than the plain `ctest` loop:
#   1. ASan+UBSan build, full labeled suite + bfhrf_verify differential run
#      + the delta-vs-rebuild dynamic-index oracle + the sharding/
#      persistence oracle + the serve daemon loopback smoke + a CLI walk
#      that builds a sharded index, saves the mmap-able layout, and
#      reloads it zero-copy
#   2. TSan build, concurrency-sensitive labels only (parallel, obs,
#      serve, codec) + bfhrf_verify differential run + the dynamic oracle
#      with
#      concurrent probe readers + the persistence oracle with 4 build
#      lanes + the serve daemon loopback smoke
#   3. BFHRF_OBS=OFF build, full suite (instrumentation compiled out)
#   4. BFHRF_DISABLE_SIMD=ON build, full suite + bfhrf_verify (portable
#      SWAR paths only; proves dispatch-level equivalence end to end)
# Run from the repo root. Each tier uses its own build directory (see
# CMakePresets.json), so the default ./build is left untouched.
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
  echo
  echo "=== $* ==="
  "$@"
}

# Differential verification workload (docs/TESTING.md): every engine and
# mode over a generated collection, full matrices cross-checked
# bit-for-bit. Size can be overridden, e.g. BFHRF_VERIFY_ARGS="n=128 r=64".
# The 1..8 thread sweep drives every all-pairs engine (legacy merge walk,
# bit-matrix dense, bit-matrix sparse) and the BFHRF column paths at each
# count under the sanitizers.
VERIFY_ARGS=${BFHRF_VERIFY_ARGS:-"n=64 r=32 q=32 --threads 1,2,4,8"}

# Dynamic-index oracle workload: randomized interleaved add/remove/
# replace/compact sequences, each state checked bit-for-bit against a
# from-scratch rebuild. The harness runs the sequence count once per store
# kind (raw + compressed), so sequences=100 yields 200 checked sequences.
DYNAMIC_ARGS=${BFHRF_DYNAMIC_ARGS:-"sequences=100 n=16 trees=8 ops=24"}

# Persistence oracle workload: sharded builds vs single-table, both
# on-disk formats round-tripped (v1 stream parse and BFHMAP mmap view),
# the tombstone-compacting save, and warm-started dynamic indexes — all
# compared bit-for-bit.
PERSIST_ARGS=${BFHRF_PERSIST_ARGS:-"n=24 r=24 q=10"}

# Scratch dirs for the CLI index walk and the serve loopback smoke.
# Inputs for both are generated ONCE with the default (uninstrumented)
# build up front; the sanitizer-built daemon/client binaries are then
# driven against the same files in their own tiers.
PERSIST_DIR=$(mktemp -d)
SERVE_DIR=$(mktemp -d)
trap 'rm -rf "${PERSIST_DIR}" "${SERVE_DIR}"' EXIT

run cmake -B build -S .
run cmake --build build -j "$(nproc)" --target bfhrf_generate bfhrf_cli
run ./build/examples/bfhrf_generate --preset variable-trees -n 32 -r 24 \
  --seed 7 -o "${SERVE_DIR}/ref.nwk"
run ./build/examples/bfhrf_generate --preset variable-trees -n 32 -r 8 \
  --seed 11 -o "${SERVE_DIR}/q.nwk"
./build/examples/bfhrf_cli -r "${SERVE_DIR}/ref.nwk" \
  --save-index "${SERVE_DIR}/ref.bfh" > /dev/null
./build/examples/bfhrf_cli -r "${SERVE_DIR}/ref.nwk" \
  -q "${SERVE_DIR}/q.nwk" > "${SERVE_DIR}/expected.tsv"

# Loopback e2e smoke for a sanitizer-built daemon: start -> load index ->
# query -> hot-swap (Publish opcode onto the saved index) -> query ->
# shutdown. Both query TSVs must be byte-identical to the direct CLI
# answers, and the daemon must exit 0 (the `wait` is the sanitizer gate).
serve_smoke() {
  local build_dir=$1
  local out="${SERVE_DIR}/serve.out"
  : > "${out}"
  "${build_dir}/tools/bfhrf_serve" -r "${SERVE_DIR}/ref.nwk" --workers 2 \
    > "${out}" 2>&1 &
  local pid=$!
  local port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^READY port=\([0-9]*\).*/\1/p' "${out}")
    [[ -n "${port}" ]] && break
    sleep 0.1
  done
  if [[ -z "${port}" ]]; then
    echo "serve_smoke: daemon never became ready:"
    cat "${out}"
    kill "${pid}" 2>/dev/null || true
    return 1
  fi
  local client="${build_dir}/tools/bfhrf_client"
  "${client}" --port "${port}" ping
  "${client}" --port "${port}" query "${SERVE_DIR}/q.nwk" \
    2> /dev/null > "${SERVE_DIR}/got_before.tsv"
  diff "${SERVE_DIR}/expected.tsv" "${SERVE_DIR}/got_before.tsv"
  "${client}" --port "${port}" publish "${SERVE_DIR}/ref.bfh"
  "${client}" --port "${port}" query "${SERVE_DIR}/q.nwk" \
    2> /dev/null > "${SERVE_DIR}/got_after.tsv"
  diff "${SERVE_DIR}/expected.tsv" "${SERVE_DIR}/got_after.tsv"
  "${client}" --port "${port}" shutdown
  wait "${pid}"
}

run cmake --preset asan-ubsan
run cmake --build --preset asan-ubsan -j "$(nproc)"
run ctest --preset asan-ubsan
# shellcheck disable=SC2086  # VERIFY_ARGS is a word list by design
run ./build-asan/tools/bfhrf_verify --generate ${VERIFY_ARGS}
# shellcheck disable=SC2086
run ./build-asan/tools/bfhrf_verify --dynamic ${DYNAMIC_ARGS}
# shellcheck disable=SC2086
run ./build-asan/tools/bfhrf_verify --persist ${PERSIST_ARGS} --threads 4
run serve_smoke ./build-asan

# End-to-end index walk: build a small sharded index with the CLI,
# persist it in the mmap-able layout, reload it zero-copy, and require
# byte-identical query output from the mapped view. The sanitizer
# presets build without examples (BFHRF_BUILD_EXAMPLES=OFF), so this
# uses the default tree — the mmap + asan interaction itself is covered
# by the --persist oracle above, which maps index files under ASan.
echo
echo "=== bfhrf_cli sharded build -> mapped save -> mmap reload ==="
./build/examples/bfhrf_cli -r "${SERVE_DIR}/ref.nwk" -t 2 --shards 4 \
  --save-index "${PERSIST_DIR}/ref.bfhmap" --mapped \
  > "${PERSIST_DIR}/direct.tsv"
./build/examples/bfhrf_cli --load-index "${PERSIST_DIR}/ref.bfhmap" \
  -q "${SERVE_DIR}/ref.nwk" > "${PERSIST_DIR}/mapped.tsv"
run diff "${PERSIST_DIR}/direct.tsv" "${PERSIST_DIR}/mapped.tsv"

run cmake --preset tsan
run cmake --build --preset tsan -j "$(nproc)"
run ctest --preset tsan
# shellcheck disable=SC2086
run ./build-tsan/tools/bfhrf_verify --generate ${VERIFY_ARGS}
# shellcheck disable=SC2086  # --threads 4: concurrent probe readers
run ./build-tsan/tools/bfhrf_verify --dynamic ${DYNAMIC_ARGS} --threads 4
# shellcheck disable=SC2086  # sharded build lanes under TSan
run ./build-tsan/tools/bfhrf_verify --persist ${PERSIST_ARGS} --threads 4
run serve_smoke ./build-tsan

run cmake --preset obs-off
run cmake --build --preset obs-off -j "$(nproc)"
run ctest --preset obs-off

# Tier 4: portable-SWAR build (BFHRF_DISABLE_SIMD=ON, no vector intrinsics
# compiled at all), full suite + the qc differential oracle — proves the
# group-probed hash and bitset kernels are bit-identical without SIMD.
run cmake --preset simd-off
run cmake --build --preset simd-off -j "$(nproc)"
run ctest --preset simd-off
# shellcheck disable=SC2086
run ./build-simd-off/tools/bfhrf_verify --generate ${VERIFY_ARGS}

# Optional tier 5: bench regression gate. Opt in by pointing
# BFHRF_BENCH_BASELINE at a known-good BENCH_*.json export and
# BFHRF_BENCH_CANDIDATE at a fresh one (tolerance override:
# BFHRF_BENCH_TOLERANCE, default 0.15 relative).
if [[ -n "${BFHRF_BENCH_BASELINE:-}" && -n "${BFHRF_BENCH_CANDIDATE:-}" ]]; then
  run python3 scripts/bench_compare.py \
    "${BFHRF_BENCH_BASELINE}" "${BFHRF_BENCH_CANDIDATE}" \
    --tolerance "${BFHRF_BENCH_TOLERANCE:-0.15}"
fi

echo
echo "check.sh: all tiers passed"
