#!/usr/bin/env bash
# Line-coverage report for the test suite, per module (src/util, src/phylo,
# src/parallel, src/core, src/sim, src/qc, src/obs).
#
#   scripts/coverage.sh [extra ctest args...]
#
# Builds an instrumented tree in ./build-cov (gcc --coverage), runs the
# full labeled suite, and reports with gcovr if available (falling back to
# a raw `gcov` summary otherwise). The default ./build is left untouched.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build-cov

echo "=== configure (instrumented) ==="
cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="--coverage" \
  -DCMAKE_EXE_LINKER_FLAGS="--coverage" \
  -DBFHRF_BUILD_BENCH=OFF \
  -DBFHRF_BUILD_EXAMPLES=OFF

echo "=== build ==="
cmake --build "${BUILD_DIR}" -j "$(nproc)"

echo "=== test ==="
# Stale counters from a previous run would skew the report.
find "${BUILD_DIR}" -name '*.gcda' -delete
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" "$@"

echo "=== coverage ==="
if command -v gcovr >/dev/null 2>&1; then
  # Whole-tree summary first, then one block per module so per-layer
  # regressions are visible at a glance.
  gcovr --root . --filter 'src/' --object-directory "${BUILD_DIR}" \
    --print-summary --sort uncovered-percent || exit 1
  for module in util phylo parallel core sim qc obs; do
    echo
    echo "--- src/${module} ---"
    gcovr --root . --filter "src/${module}/" \
      --object-directory "${BUILD_DIR}" | tail -n +5
  done
else
  echo "gcovr not found; raw gcov line rates per module:"
  for module in util phylo parallel core sim qc obs; do
    dir="${BUILD_DIR}/src/${module}/CMakeFiles"
    [[ -d "${dir}" ]] || continue
    # Sum "Lines executed" percentages emitted by gcov for each object.
    rate=$(find "${dir}" -name '*.gcda' -exec gcov -n {} \; 2>/dev/null |
      awk '/Lines executed/ {
             gsub("%","",$2); split($2, a, ":"); pct += a[2]; files += 1
           }
           END { if (files) printf "%.1f%% (%d files)", pct / files, files
                 else printf "no data" }')
    printf '  src/%-9s %s\n' "${module}" "${rate}"
  done
  echo "(install gcovr for per-file tables)"
fi
