#!/usr/bin/env python3
"""Diff two bench metrics exports (BENCH_<slug>.json) for regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--tolerance 0.15]
                     [--filter PREFIX] [--strict-counters]

Both inputs are the JSON blobs written by ``bfhrf::bench::export_metrics()``
(docs/OBSERVABILITY.md). The comparison is asymmetric on purpose:

* **Timing histograms** (names ending in ``.seconds``): the candidate's
  ``sum`` may not exceed the baseline's by more than ``--tolerance``
  (relative). Exceeding it is a REGRESSION and the exit code is non-zero.
  Improvements are reported but never fail.
* **Baselines** (the top-level ``baselines`` object of per-ablation median
  ns/op written by ``bfhrf::bench::record_baseline``): gated exactly like
  timings — the candidate may not exceed the baseline by more than the
  tolerance; improvements never fail.
* **Counters and gauges**: relative drift beyond the tolerance is reported
  as a CHANGE (work-volume metrics legitimately move when code changes);
  with ``--strict-counters`` those also fail. Metrics present on only one
  side are always reported.

Typical flow: keep a known-good export under version control or CI
artifacts, re-run the bench, then gate with::

    ./build/bench/bench_ablation_pipeline
    python3 scripts/bench_compare.py baseline/BENCH_ablation_a7.json \
        BENCH_ablation_a7_pipelined_streaming_engine.json

scripts/check.sh runs this automatically when BFHRF_BENCH_BASELINE and
BFHRF_BENCH_CANDIDATE are set.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_metrics(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        blob = json.load(fh)
    if "metrics" not in blob:
        raise SystemExit(f"{path}: not a bench export (no 'metrics' key)")
    return blob


def rel_delta(base: float, cand: float) -> float:
    if base == 0:
        return 0.0 if cand == 0 else float("inf")
    return (cand - base) / abs(base)


def fmt_delta(base: float, cand: float) -> str:
    d = rel_delta(base, cand)
    sign = "+" if d >= 0 else ""
    return f"{base:g} -> {cand:g} ({sign}{d * 100:.1f}%)"


def compare(base: dict, cand: dict, tolerance: float, prefix: str,
            strict_counters: bool) -> int:
    regressions: list[str] = []
    changes: list[str] = []
    improvements: list[str] = []

    bm, cm = base["metrics"], cand["metrics"]
    if base.get("experiment") != cand.get("experiment"):
        changes.append(
            f"experiment differs: {base.get('experiment')!r} vs "
            f"{cand.get('experiment')!r}")
    if base.get("scale") != cand.get("scale"):
        # Different scales make every number incomparable; treat as fatal.
        regressions.append(
            f"scale differs: {base.get('scale')!r} vs {cand.get('scale')!r} "
            "(comparison meaningless)")

    # Timing histograms: sum of wall seconds, one-sided gate.
    bh = bm.get("histograms", {})
    ch = cm.get("histograms", {})
    for name in sorted(set(bh) | set(ch)):
        if not name.startswith(prefix) or not name.endswith(".seconds"):
            continue
        if name not in bh or name not in ch:
            changes.append(f"{name}: only in "
                           f"{'candidate' if name not in bh else 'baseline'}")
            continue
        bsum, csum = bh[name]["sum"], ch[name]["sum"]
        if bsum == 0 and csum == 0:
            continue
        d = rel_delta(bsum, csum)
        line = f"{name}: {fmt_delta(bsum, csum)}"
        if d > tolerance:
            regressions.append(line)
        elif d < -tolerance:
            improvements.append(line)

    # Per-ablation median baselines (ns/op): one-sided gate like timings.
    bb = base.get("baselines", {})
    cb = cand.get("baselines", {})
    n_baselines = 0
    for name in sorted(set(bb) | set(cb)):
        if not name.startswith(prefix):
            continue
        if name not in bb or name not in cb:
            changes.append(f"baseline {name}: only in "
                           f"{'candidate' if name not in bb else 'baseline'}")
            continue
        n_baselines += 1
        d = rel_delta(bb[name], cb[name])
        line = f"baseline {name}: {fmt_delta(bb[name], cb[name])}"
        if d > tolerance:
            regressions.append(line)
        elif d < -tolerance:
            improvements.append(line)

    # Counters and gauges: two-sided drift report.
    for kind in ("counters", "gauges"):
        bk = bm.get(kind, {})
        ck = cm.get(kind, {})
        for name in sorted(set(bk) | set(ck)):
            if not name.startswith(prefix):
                continue
            if name not in bk or name not in ck:
                changes.append(
                    f"{name}: only in "
                    f"{'candidate' if name not in bk else 'baseline'}")
                continue
            bval, cval = bk[name], ck[name]
            if bval == cval:
                continue
            if abs(rel_delta(bval, cval)) > tolerance:
                changes.append(f"{name}: {fmt_delta(bval, cval)}")

    for title, lines in (("REGRESSION", regressions), ("CHANGE", changes),
                         ("IMPROVEMENT", improvements)):
        for line in lines:
            print(f"{title}  {line}")

    failed = bool(regressions) or (strict_counters and bool(changes))
    n_checked = len([n for n in set(bh) | set(ch)
                     if n.startswith(prefix) and n.endswith(".seconds")])
    print(f"\nbench_compare: {n_checked} timing series and "
          f"{n_baselines} baseline(s) checked, "
          f"{len(regressions)} regression(s), {len(changes)} change(s), "
          f"{len(improvements)} improvement(s) "
          f"[tolerance {tolerance * 100:.0f}%] -> "
          f"{'FAIL' if failed else 'OK'}")
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json metric exports for regressions.")
    parser.add_argument("baseline", help="known-good export")
    parser.add_argument("candidate", help="fresh export to vet")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="relative slack before a timing delta is a "
                             "regression (default 0.15)")
    parser.add_argument("--filter", default="", metavar="PREFIX",
                        help="only compare metrics whose name starts with "
                             "PREFIX (e.g. 'bfhrf.')")
    parser.add_argument("--strict-counters", action="store_true",
                        help="counter/gauge drift beyond tolerance also "
                             "fails, not just timing regressions")
    args = parser.parse_args()
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")
    return compare(load_metrics(args.baseline), load_metrics(args.candidate),
                   args.tolerance, args.filter, args.strict_counters)


if __name__ == "__main__":
    sys.exit(main())
