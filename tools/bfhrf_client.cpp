// bfhrf_client: one-shot client for the RF query daemon (bfhrf_serve).
//
//   bfhrf_client --port N [--host A] COMMAND [ARG]
//
//   ping                liveness check
//   stats               snapshot version + index statistics
//   query FILE.nwk      score every tree in FILE; prints "<i>\t<avg_rf>\n"
//                       per tree — the same TSV bfhrf_cli emits, so the two
//                       outputs diff directly (scripts/check.sh relies on
//                       this)
//   publish INDEX       hot-swap the daemon onto a saved index file
//   shutdown            ask the daemon to drain and stop
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--host ADDR] "
               "ping|stats|query FILE|publish INDEX|shutdown\n",
               argv0);
}

/// Split a Newick file into one string per ';'-terminated record.
std::vector<std::string> read_newick_records(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bfhrf_client: cannot open '%s'\n", path.c_str());
    std::exit(1);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::vector<std::string> records;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t semi = text.find(';', start);
    if (semi == std::string::npos) {
      break;
    }
    std::string record = text.substr(start, semi - start + 1);
    const std::size_t first = record.find_first_not_of(" \t\r\n");
    if (first != std::string::npos && record[first] != ';') {
      records.push_back(record.substr(first));
    }
    start = semi + 1;
  }
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bfhrf::serve;

  std::string host = "127.0.0.1";
  int port = 0;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      positional.push_back(arg);
    }
  }
  if (port <= 0 || port > 65535 || positional.empty()) {
    usage(argv[0]);
    return 2;
  }
  const std::string& command = positional[0];

  try {
    RfClient client(host, static_cast<std::uint16_t>(port));
    if (command == "ping") {
      client.ping();
      std::printf("ok\n");
    } else if (command == "stats") {
      const StatsResult s = client.stats();
      std::printf("snapshot_version\t%llu\n",
                  static_cast<unsigned long long>(s.snapshot_version));
      std::printf("taxa\t%llu\n", static_cast<unsigned long long>(s.taxa));
      std::printf("reference_trees\t%llu\n",
                  static_cast<unsigned long long>(s.reference_trees));
      std::printf("unique_bipartitions\t%llu\n",
                  static_cast<unsigned long long>(s.unique_bipartitions));
      std::printf("total_bipartitions\t%llu\n",
                  static_cast<unsigned long long>(s.total_bipartitions));
    } else if (command == "query") {
      if (positional.size() != 2) {
        usage(argv[0]);
        return 2;
      }
      const QueryResult result =
          client.query(read_newick_records(positional[1]));
      std::fprintf(stderr, "bfhrf_client: snapshot version %llu\n",
                   static_cast<unsigned long long>(result.snapshot_version));
      for (std::size_t i = 0; i < result.avg_rf.size(); ++i) {
        std::printf("%zu\t%.6f\n", i, result.avg_rf[i]);
      }
    } else if (command == "publish") {
      if (positional.size() != 2) {
        usage(argv[0]);
        return 2;
      }
      const PublishResult result = client.publish(positional[1]);
      std::printf("snapshot_version\t%llu\n",
                  static_cast<unsigned long long>(result.snapshot_version));
    } else if (command == "shutdown") {
      client.shutdown_server();
      std::printf("ok\n");
    } else {
      std::fprintf(stderr, "%s: unknown command '%s'\n", argv[0],
                   command.c_str());
      usage(argv[0]);
      return 2;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bfhrf_client: %s\n", e.what());
    return 1;
  }
}
