// bfhrf_verify — differential verification harness CLI.
//
// Runs one workload through every RF engine and mode in the library
// (sequential, Day, HashRF, parallel all-pairs, BFHRF barrier-batch /
// pipelined / compressed-key across thread counts), cross-checks the full
// pairwise matrices bit-for-bit, runs the metamorphic invariant library,
// and on any divergence shrinks the collection to a minimal reproducer
// and writes a replayable artifact.
//
//   bfhrf_verify --generate [n=16] [r=12] [q=8] [moves=4] [--seed S]
//   bfhrf_verify --files reference.nwk [query.nwk]
//   bfhrf_verify --replay failure.repro
//
// Exit status: 0 = all engines agree, 1 = divergence (or invariant
// failure), 2 = usage / input error. Designed to run under the asan-ubsan
// and tsan presets (scripts/check.sh "verify" tier).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "phylo/newick.hpp"
#include "phylo/taxon_set.hpp"
#include "qc/dynamic.hpp"
#include "qc/persist.hpp"
#include "qc/harness.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace {

enum class Mode { Unset, Generate, Files, Replay, Dynamic, Persist };

struct CliOptions {
  Mode mode = Mode::Unset;
  bfhrf::qc::HarnessOptions harness;
  bfhrf::qc::DynamicOracleOptions dynamic;
  bfhrf::qc::PersistOracleOptions persist;
  std::string reference_path;
  std::string query_path;
  std::string replay_path;
  bool quiet = false;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --generate [n=N] [r=R] [q=Q] [moves=M]\n"
      "          | --files reference.nwk [query.nwk]\n"
      "          | --replay failure.repro\n"
      "          | --dynamic [sequences=S] [n=N] [trees=T] [ops=O]\n"
      "                      [probes=P]\n"
      "          | --persist [n=N] [r=R] [q=Q] [moves=M]\n"
      "       [--seed S] [--threads a,b,c] [--artifact PATH]\n"
      "       [--no-invariants] [--no-shrink] [--no-multi]\n"
      "       [--include-trivial] [--quiet]\n"
      "\n"
      "Differential verification of every RF engine in the library: full\n"
      "pairwise matrices are cross-checked bit-for-bit against the\n"
      "sequential oracle, metamorphic RF invariants are checked on\n"
      "transformed copies, and failures are minimized to a replayable\n"
      "artifact. Exit 0 = agree, 1 = divergence, 2 = usage error.\n"
      "\n"
      "  --generate        verify a generated workload; n/r/q/moves are\n"
      "                    key=value tokens following the flag\n"
      "  --files           verify Newick collections from disk\n"
      "  --replay FILE     re-run a previously written failure artifact\n"
      "  --dynamic         run the delta-vs-rebuild oracle: randomized\n"
      "                    interleaved add/remove/SPR-NNI-replace/compact\n"
      "                    sequences against a DynamicBfhIndex, each state\n"
      "                    checked bit-for-bit against a from-scratch\n"
      "                    rebuild (raw and compressed stores); --threads'\n"
      "                    largest count drives concurrent probe readers\n"
      "  --persist         run the sharding/persistence oracle: sharded\n"
      "                    builds, v1-stream and mapped (mmap) index round\n"
      "                    trips, and warm starts are cross-checked\n"
      "                    bit-for-bit against the single-table engine;\n"
      "                    mapped files are scanned for persisted\n"
      "                    tombstones\n"
      "  --seed S          workload seed (decimal or 0x hex); also read\n"
      "                    from BFHRF_FUZZ_SEED when the flag is absent\n"
      "  --threads a,b,c   thread counts to sweep (0 = hardware default)\n"
      "  --artifact PATH   where to write the reproducer on failure\n"
      "                    (default bfhrf_verify_failure.repro)\n"
      "  --no-invariants   skip the metamorphic invariant layer\n"
      "  --no-shrink       keep the full failing collection\n"
      "  --no-multi        generate binary-only (clustered) workloads\n"
      "  --include-trivial count trivial bipartitions too\n"
      "  --quiet           print only the final verdict line\n",
      argv0);
}

std::uint64_t parse_seed(const std::string& s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
  if (end == s.c_str() || *end != '\0') {
    throw bfhrf::InvalidArgument("bad seed '" + s + "'");
  }
  return v;
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions o;
  o.harness.artifact_path = "bfhrf_verify_failure.repro";
  bool seed_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw bfhrf::InvalidArgument(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--generate") {
      o.mode = Mode::Generate;
      // Consume the k=v workload tokens that follow.
      while (i + 1 < argc && std::strchr(argv[i + 1], '=') != nullptr &&
             argv[i + 1][0] != '-') {
        const std::string token = argv[++i];
        const std::size_t eq = token.find('=');
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "n") {
          o.harness.n = bfhrf::util::parse_size(value);
        } else if (key == "r") {
          o.harness.r = bfhrf::util::parse_size(value);
        } else if (key == "q") {
          o.harness.q = bfhrf::util::parse_size(value);
        } else if (key == "moves") {
          o.harness.moves = bfhrf::util::parse_size(value);
        } else {
          throw bfhrf::InvalidArgument("unknown --generate key '" + key +
                                       "' (expected n/r/q/moves)");
        }
      }
    } else if (arg == "--dynamic") {
      o.mode = Mode::Dynamic;
      while (i + 1 < argc && std::strchr(argv[i + 1], '=') != nullptr &&
             argv[i + 1][0] != '-') {
        const std::string token = argv[++i];
        const std::size_t eq = token.find('=');
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "sequences") {
          o.dynamic.sequences = bfhrf::util::parse_size(value);
        } else if (key == "n") {
          o.dynamic.n = bfhrf::util::parse_size(value);
        } else if (key == "trees") {
          o.dynamic.initial_trees = bfhrf::util::parse_size(value);
        } else if (key == "ops") {
          o.dynamic.ops = bfhrf::util::parse_size(value);
        } else if (key == "probes") {
          o.dynamic.probes = bfhrf::util::parse_size(value);
        } else {
          throw bfhrf::InvalidArgument(
              "unknown --dynamic key '" + key +
              "' (expected sequences/n/trees/ops/probes)");
        }
      }
    } else if (arg == "--persist") {
      o.mode = Mode::Persist;
      while (i + 1 < argc && std::strchr(argv[i + 1], '=') != nullptr &&
             argv[i + 1][0] != '-') {
        const std::string token = argv[++i];
        const std::size_t eq = token.find('=');
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "n") {
          o.persist.n = bfhrf::util::parse_size(value);
        } else if (key == "r") {
          o.persist.r = bfhrf::util::parse_size(value);
        } else if (key == "q") {
          o.persist.q = bfhrf::util::parse_size(value);
        } else if (key == "moves") {
          o.persist.moves = bfhrf::util::parse_size(value);
        } else {
          throw bfhrf::InvalidArgument("unknown --persist key '" + key +
                                       "' (expected n/r/q/moves)");
        }
      }
    } else if (arg == "--files") {
      o.mode = Mode::Files;
      o.reference_path = need_value("--files");
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        o.query_path = argv[++i];
      }
    } else if (arg == "--replay") {
      o.mode = Mode::Replay;
      o.replay_path = need_value("--replay");
    } else if (arg == "--seed" || bfhrf::util::starts_with(arg, "--seed=")) {
      const std::string value =
          arg == "--seed" ? need_value("--seed") : arg.substr(7);
      o.harness.seed = parse_seed(value);
      seed_set = true;
    } else if (arg == "--threads") {
      o.harness.oracle.thread_counts.clear();
      for (const std::string& part :
           bfhrf::util::split(need_value("--threads"), ',')) {
        o.harness.oracle.thread_counts.push_back(
            bfhrf::util::parse_size(bfhrf::util::trim(part)));
      }
      if (o.harness.oracle.thread_counts.empty()) {
        throw bfhrf::InvalidArgument("--threads needs at least one count");
      }
    } else if (arg == "--artifact") {
      o.harness.artifact_path = need_value("--artifact");
    } else if (arg == "--no-invariants") {
      o.harness.run_invariants = false;
    } else if (arg == "--no-shrink") {
      o.harness.shrink_on_failure = false;
    } else if (arg == "--no-multi") {
      o.harness.kind = bfhrf::qc::WorkloadKind::Clustered;
    } else if (arg == "--include-trivial") {
      o.harness.oracle.include_trivial = true;
      o.harness.invariant.include_trivial = true;
      o.dynamic.include_trivial = true;
      o.persist.include_trivial = true;
    } else if (arg == "--quiet") {
      o.quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      std::exit(0);
    } else {
      throw bfhrf::InvalidArgument("unknown argument '" + arg + "'");
    }
  }
  if (o.mode == Mode::Unset) {
    usage(argv[0]);
    throw bfhrf::InvalidArgument(
        "pick one of --generate / --files / --replay / --dynamic / "
        "--persist");
  }
  if (!seed_set) {
    // Same replay convention as the test suites (tests/support/test_main).
    if (const char* env = std::getenv("BFHRF_FUZZ_SEED")) {
      o.harness.seed = parse_seed(env);
    }
  }
  o.dynamic.seed = o.harness.seed;
  o.persist.seed = o.harness.seed;
  // The oracle runs one index; the largest requested thread count drives
  // its concurrent probe readers.
  for (const std::size_t t : o.harness.oracle.thread_counts) {
    o.dynamic.threads = std::max(o.dynamic.threads, t);
    o.persist.threads = std::max(o.persist.threads, t);
  }
  return o;
}

/// --dynamic: the delta-vs-rebuild oracle over both store kinds.
int run_dynamic(const CliOptions& cli) {
  bfhrf::qc::DynamicOracleReport combined;
  combined.seed = cli.dynamic.seed;
  for (const bool compressed : {false, true}) {
    bfhrf::qc::DynamicOracleOptions opts = cli.dynamic;
    opts.compressed_keys = compressed;
    const auto report = bfhrf::qc::check_dynamic_equivalence(opts);
    combined.sequences_run += report.sequences_run;
    combined.operations += report.operations;
    combined.checks += report.checks;
    combined.failures.insert(combined.failures.end(),
                             report.failures.begin(), report.failures.end());
    if (!cli.quiet) {
      std::fprintf(stderr, "# %s store: %s\n",
                   compressed ? "compressed" : "raw",
                   report.summary().c_str());
    }
  }
  if (!cli.quiet) {
    for (const std::string& f : combined.failures) {
      std::fprintf(stderr, "FAIL %s\n", f.c_str());
    }
  }
  std::printf("%s\n", combined.summary().c_str());
  return combined.ok() ? 0 : 1;
}

/// --persist: the sharding / persistence / mmap equivalence oracle.
int run_persist(const CliOptions& cli) {
  const auto report = bfhrf::qc::check_persist_equivalence(cli.persist);
  if (!cli.quiet) {
    for (const std::string& f : report.failures) {
      std::fprintf(stderr, "FAIL %s\n", f.c_str());
    }
  }
  std::printf("%s\n", report.summary().c_str());
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bfhrf;
  CliOptions cli;
  try {
    cli = parse_args(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  try {
    if (cli.mode == Mode::Dynamic) {
      return run_dynamic(cli);
    }
    if (cli.mode == Mode::Persist) {
      return run_persist(cli);
    }
    qc::HarnessResult result;
    switch (cli.mode) {
      case Mode::Generate:
        result = qc::verify_generated(cli.harness);
        break;
      case Mode::Files: {
        auto taxa = std::make_shared<phylo::TaxonSet>();
        const std::vector<phylo::Tree> reference =
            phylo::read_newick_file(cli.reference_path, taxa);
        std::vector<phylo::Tree> queries;
        if (!cli.query_path.empty()) {
          queries = phylo::read_newick_file(cli.query_path, taxa);
        }
        taxa->freeze();
        result = qc::verify_collection(reference, queries, cli.harness);
        break;
      }
      case Mode::Replay:
        result = qc::replay_artifact(cli.replay_path, cli.harness);
        break;
      case Mode::Dynamic:
      case Mode::Persist:
      case Mode::Unset:
        return 2;  // unreachable; handled/rejected above
    }

    if (!cli.quiet && !result.oracle.engines.empty()) {
      std::fprintf(stderr, "# engines checked:\n");
      for (const std::string& engine : result.oracle.engines) {
        std::fprintf(stderr, "#   %s\n", engine.c_str());
      }
    }
    std::printf("%s\n", result.summary().c_str());
    return result.passed ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
