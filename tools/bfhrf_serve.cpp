// bfhrf_serve: the long-lived RF query daemon.
//
// Loads a BFH index (built from a reference file, or a saved index file
// replayed against the reference that built it) and answers tree-vs-
// collection RF queries over the serve/ wire protocol until told to stop
// (SIGINT/SIGTERM or the Shutdown opcode).
//
//   bfhrf_serve -r ref.nwk [--load-index FILE] [--port N] [--workers N] ...
//
// Prints "READY port=<p> version=<v>" on stdout once the socket is
// listening — scripts wait for that line before connecting.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/snapshot.hpp"
#include "phylo/newick.hpp"
#include "phylo/taxon_set.hpp"
#include "serve/server.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s -r REF.nwk [options]\n"
               "\n"
               "Serve average-RF queries against a reference collection.\n"
               "\n"
               "  -r FILE            reference Newick file. Always required:\n"
               "                     it defines the taxon namespace (index\n"
               "                     files store bitmasks, not labels).\n"
               "  --load-index FILE  serve this saved index instead of\n"
               "                     building from -r. FILE must have been\n"
               "                     built over the same reference file.\n"
               "  --host ADDR        bind address (default 127.0.0.1)\n"
               "  --port N           TCP port; 0 = ephemeral (default 0)\n"
               "  --workers N        query worker threads (default 2)\n"
               "  --queue N          admission queue capacity (default auto)\n"
               "  --threads N        index build threads (default 1)\n"
               "  --no-admin         refuse Publish/Shutdown opcodes\n",
               argv0);
}

bfhrf::serve::RfServer* g_server = nullptr;

}  // namespace

int main(int argc, char** argv) {
  using namespace bfhrf;

  std::string ref_path;
  std::string index_path;
  serve::ServeOptions opts;
  opts.load_opts.threads = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-r") {
      ref_path = next();
    } else if (arg == "--load-index") {
      index_path = next();
    } else if (arg == "--host") {
      opts.host = next();
    } else if (arg == "--port") {
      opts.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--workers") {
      opts.workers = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--queue") {
      opts.queue_capacity = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--threads") {
      opts.load_opts.threads = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--no-admin") {
      opts.allow_admin = false;
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                   arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (ref_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  // Block the termination signals BEFORE any thread exists so every thread
  // inherits the mask; the dedicated sigwait thread below is then the only
  // consumer (plain handlers can't call request_stop: it locks a mutex).
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  try {
    // Parsing the reference recreates the exact label-to-bit assignment the
    // index was (or is about to be) built over.
    auto taxa = std::make_shared<phylo::TaxonSet>();
    std::vector<phylo::Tree> reference =
        phylo::read_newick_file(ref_path, taxa);

    std::shared_ptr<const core::IndexSnapshot> snapshot;
    if (!index_path.empty()) {
      snapshot = core::IndexSnapshot::open(index_path, taxa, opts.load_opts);
    } else {
      snapshot = core::IndexSnapshot::build(taxa, reference, opts.load_opts,
                                            ref_path);
    }

    serve::RfServer server(opts);
    const std::uint64_t version = server.publish(std::move(snapshot));
    server.start();
    g_server = &server;

    std::atomic<bool> exiting{false};
    std::thread sig_thread([&sigs, &exiting] {
      for (;;) {
        int sig = 0;
        sigwait(&sigs, &sig);
        if (exiting.load()) {
          return;
        }
        if (g_server != nullptr) {
          g_server->request_stop();
        }
      }
    });

    std::printf("READY port=%u version=%llu\n", server.port(),
                static_cast<unsigned long long>(version));
    std::fflush(stdout);

    server.wait();
    exiting.store(true);
    ::kill(::getpid(), SIGTERM);  // unblock the sigwait thread
    sig_thread.join();
    g_server = nullptr;
    server.stop();
    std::fprintf(stderr, "bfhrf_serve: stopped\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bfhrf_serve: %s\n", e.what());
    return 1;
  }
}
