// bfhrf_loadgen: closed-loop load generator for the RF query daemon.
//
// Each client thread owns one connection and keeps exactly one request in
// flight (closed loop: issue, await, repeat), so measured latency includes
// queueing under the daemon's own admission control. Sweeps a list of
// concurrency levels and reports per-level p50/p95/p99.
//
//   bfhrf_loadgen -q QUERY.nwk --inprocess -r REF.nwk [options]
//   bfhrf_loadgen -q QUERY.nwk --port N [--host A] [options]
//
// With --inprocess the daemon runs inside this process on an ephemeral
// loopback port (self-contained benchmarking); otherwise an external
// bfhrf_serve is targeted. Emits a BENCH_<slug>.json blob in the
// scripts/bench_compare.py format with serve.cK.p50_us / p99_us baselines.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/snapshot.hpp"
#include "obs/metrics.hpp"
#include "phylo/newick.hpp"
#include "phylo/taxon_set.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/timer.hpp"

namespace {

using namespace bfhrf;

struct LoadgenOptions {
  std::string query_path;
  std::string ref_path;  // --inprocess only
  bool inprocess = false;
  std::string host = "127.0.0.1";
  int port = 0;
  std::vector<std::size_t> clients = {1, 8, 64};
  std::size_t requests = 50;  ///< per client, per level
  std::size_t batch = 1;      ///< trees per request
  std::size_t workers = 4;    ///< --inprocess server workers
  std::string slug = "serve_loadgen";
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s -q QUERY.nwk (--inprocess -r REF.nwk | --port N) "
      "[options]\n"
      "  --host ADDR      daemon address (default 127.0.0.1)\n"
      "  --clients LIST   comma-separated concurrency sweep (default "
      "1,8,64)\n"
      "  --requests N     requests per client per level (default 50)\n"
      "  --batch N        query trees per request (default 1)\n"
      "  --workers N      in-process daemon worker threads (default 4)\n"
      "  --slug NAME      BENCH_<NAME>.json export slug\n",
      argv0);
}

std::vector<std::size_t> parse_csv_sizes(const std::string& text) {
  std::vector<std::size_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const long v = std::atol(item.c_str());
    if (v > 0) {
      out.push_back(static_cast<std::size_t>(v));
    }
  }
  return out;
}

std::vector<std::string> read_newick_records(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bfhrf_loadgen: cannot open '%s'\n", path.c_str());
    std::exit(1);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::vector<std::string> records;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t semi = text.find(';', start);
    if (semi == std::string::npos) {
      break;
    }
    std::string record = text.substr(start, semi - start + 1);
    const std::size_t first = record.find_first_not_of(" \t\r\n");
    if (first != std::string::npos && record[first] != ';') {
      records.push_back(record.substr(first));
    }
    start = semi + 1;
  }
  if (records.empty()) {
    std::fprintf(stderr, "bfhrf_loadgen: no trees in '%s'\n", path.c_str());
    std::exit(1);
  }
  return records;
}

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) {
    return 0.0;
  }
  const double rank = p * static_cast<double>(sorted_us.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_us.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_us[lo] * (1.0 - frac) + sorted_us[hi] * frac;
}

struct LevelResult {
  std::size_t clients = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  double throughput_rps = 0;
};

LevelResult run_level(const LoadgenOptions& opts, std::uint16_t port,
                      const std::vector<std::string>& queries,
                      std::size_t n_clients) {
  std::vector<std::vector<double>> latencies(n_clients);
  std::vector<std::thread> threads;
  threads.reserve(n_clients);
  const util::WallTimer wall;
  for (std::size_t c = 0; c < n_clients; ++c) {
    threads.emplace_back([&, c] {
      serve::RfClient client(opts.host, port);
      std::vector<std::string> batch(opts.batch);
      std::vector<double>& lat = latencies[c];
      lat.reserve(opts.requests);
      for (std::size_t r = 0; r < opts.requests; ++r) {
        for (std::size_t b = 0; b < opts.batch; ++b) {
          batch[b] = queries[(c + r * opts.batch + b) % queries.size()];
        }
        const util::WallTimer t;
        const serve::QueryResult result = client.query(batch);
        lat.push_back(t.seconds() * 1e6);
        if (result.avg_rf.size() != opts.batch) {
          std::fprintf(stderr, "bfhrf_loadgen: short response\n");
          std::exit(1);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double elapsed = wall.seconds();

  std::vector<double> all;
  for (const auto& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  LevelResult res;
  res.clients = n_clients;
  res.p50_us = percentile(all, 0.50);
  res.p95_us = percentile(all, 0.95);
  res.p99_us = percentile(all, 0.99);
  res.throughput_rps =
      elapsed > 0 ? static_cast<double>(all.size()) / elapsed : 0.0;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-q") {
      opts.query_path = next();
    } else if (arg == "-r") {
      opts.ref_path = next();
    } else if (arg == "--inprocess") {
      opts.inprocess = true;
    } else if (arg == "--host") {
      opts.host = next();
    } else if (arg == "--port") {
      opts.port = std::atoi(next());
    } else if (arg == "--clients") {
      opts.clients = parse_csv_sizes(next());
    } else if (arg == "--requests") {
      opts.requests = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--batch") {
      opts.batch =
          static_cast<std::size_t>(std::max<long>(1, std::atol(next())));
    } else if (arg == "--workers") {
      opts.workers =
          static_cast<std::size_t>(std::max<long>(1, std::atol(next())));
    } else if (arg == "--slug") {
      opts.slug = next();
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                   arg.c_str());
      return 2;
    }
  }
  if (opts.query_path.empty() || opts.clients.empty() ||
      (opts.inprocess ? opts.ref_path.empty() : opts.port <= 0)) {
    usage(argv[0]);
    return 2;
  }

  try {
    const std::vector<std::string> queries =
        read_newick_records(opts.query_path);

    std::unique_ptr<serve::RfServer> server;
    std::uint16_t port = static_cast<std::uint16_t>(opts.port);
    if (opts.inprocess) {
      auto taxa = std::make_shared<phylo::TaxonSet>();
      std::vector<phylo::Tree> reference =
          phylo::read_newick_file(opts.ref_path, taxa);
      serve::ServeOptions sopts;
      sopts.workers = opts.workers;
      server = std::make_unique<serve::RfServer>(sopts);
      server->publish(core::IndexSnapshot::build(std::move(taxa), reference,
                                                 {}, opts.ref_path));
      server->start();
      port = server->port();
    }

    std::vector<LevelResult> results;
    for (const std::size_t n : opts.clients) {
      // One untimed warm-up pass per level settles connections and caches.
      LoadgenOptions warm = opts;
      warm.requests = std::max<std::size_t>(1, opts.requests / 10);
      (void)run_level(warm, port, queries, n);
      results.push_back(run_level(opts, port, queries, n));
      const LevelResult& r = results.back();
      std::fprintf(stderr,
                   "clients=%3zu  p50=%9.1fus  p95=%9.1fus  p99=%9.1fus  "
                   "%8.0f req/s\n",
                   r.clients, r.p50_us, r.p95_us, r.p99_us,
                   r.throughput_rps);
    }

    if (server != nullptr) {
      server->stop();
    }

    // BENCH_<slug>.json in the scripts/bench_compare.py shape; latency
    // percentiles gate one-sided (higher = regression).
    std::string baselines;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const LevelResult& r = results[i];
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "  \"serve.c%zu.p50_us\": %.3f,\n"
                    "  \"serve.c%zu.p99_us\": %.3f",
                    r.clients, r.p50_us, r.clients, r.p99_us);
      baselines += buf;
      baselines += i + 1 < results.size() ? ",\n" : "\n";
    }
    const std::string blob = "{\n\"experiment\": \"" + opts.slug +
                             "\",\n\"scale\": \"loopback\",\n"
                             "\"baselines\": {\n" +
                             baselines + "},\n\"metrics\": " +
                             obs::dump_string() + "}\n";
    const char* env = std::getenv("BFHRF_OBS_JSON");
    const std::string path =
        env != nullptr ? env : ("BENCH_" + opts.slug + ".json");
    if (path == "-") {
      std::fputs(blob.c_str(), stdout);
    } else {
      std::ofstream out(path);
      out << blob;
      std::fprintf(stderr, "bfhrf_loadgen: wrote %s\n", path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bfhrf_loadgen: %s\n", e.what());
    return 1;
  }
}
