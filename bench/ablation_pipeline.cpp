// Ablation A7: pipelined streaming engine vs the legacy barrier-batch loop.
//
// The original streaming engines alternated a single-threaded parse burst
// with a barrier-synchronized worker burst, and the hot path re-allocated
// extraction buffers per tree and resolved every split through a virtual
// per-key lookup. This bench isolates the overhaul:
//
//   legacy    : StreamingMode::BarrierBatch + reuse_scratch=false +
//               batched_hash=false — the pre-overhaul engine, byte for
//               byte (fill a batch, barrier, repeat).
//   pipelined : StreamingMode::Pipelined + scratch reuse + sort-free
//               classic extraction + batched prefetched hash inserts and
//               lookups — parser feeds a bounded queue while workers
//               drain continuously (inline zero-sync loop on 1-core
//               hosts, where overlap is impossible).
//
// Reported: build+query wall time for both paths across thread counts, a
// queue-capacity sweep at the widest thread count, and bitwise equality of
// the two paths' outputs (classic RF is integer-valued, so ANY difference
// is a bug, not roundoff).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/bfhrf.hpp"
#include "core/tree_source.hpp"
#include "sim/datasets.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bfhrf::bench {
namespace {

std::size_t r_trees() {
  switch (scale()) {
    case Scale::Smoke:
      return 300;
    case Scale::Small:
      return 8000;
    case Scale::Paper:
      return 50000;
  }
  return 0;
}

constexpr std::size_t kTaxa = 144;  // the Insect width (2 words per key)
const std::size_t kThreadCounts[] = {1, 2, 4, 8};
const std::size_t kQueueCapacities[] = {1, 4, 16, 64, 256};
constexpr std::size_t kSweepThreads = 8;

struct RunResult {
  double seconds = 0;
  std::vector<double> avg;
};
std::map<std::string, RunResult> g_results;

std::string dataset_path() {
  static const std::string path = [] {
    const std::string p = "/tmp/bfhrf_a7_pipeline.nwk";
    sim::DatasetSpec spec = sim::insect_like(r_trees());
    (void)sim::generate_to_file(spec, p);
    return p;
  }();
  return path;
}

phylo::TaxonSetPtr file_taxa() {
  static const phylo::TaxonSetPtr taxa = [] {
    auto t = std::make_shared<phylo::TaxonSet>();
    core::FileTreeSource scan(dataset_path(), t);
    phylo::Tree tree;
    while (scan.next(tree)) {
    }
    return t;
  }();
  return taxa;
}

/// Streamed build + streamed query (Q == R, both from file), timed.
RunResult run_config(const core::BfhrfOptions& opts) {
  const auto taxa = file_taxa();
  RunResult out;
  util::WallTimer timer;
  core::Bfhrf engine(taxa->size(), opts);
  core::FileTreeSource reference(dataset_path(), taxa);
  engine.build(reference);
  reference.reset();
  out.avg = engine.query(reference);
  out.seconds = timer.seconds();
  return out;
}

core::BfhrfOptions legacy_opts(std::size_t threads) {
  return core::BfhrfOptions{.threads = threads,
                            .batch_size = 64,
                            .streaming = core::StreamingMode::BarrierBatch,
                            .reuse_scratch = false,
                            .batched_hash = false};
}

core::BfhrfOptions pipelined_opts(std::size_t threads,
                                  std::size_t queue_capacity = 0) {
  return core::BfhrfOptions{.threads = threads,
                            .streaming = core::StreamingMode::Pipelined,
                            .queue_capacity = queue_capacity};
}

void register_cell(const std::string& label, core::BfhrfOptions opts) {
  benchmark::RegisterBenchmark(label.c_str(),
                               [label, opts](benchmark::State& state) {
                                 for (auto _ : state) {
                                   g_results[label] = run_config(opts);
                                 }
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

bool same_results(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

void report() {
  std::printf("\n--- Ablation A7: barrier-batch legacy vs pipelined engine "
              "(n=%zu, r=q=%zu, streamed from file) ---\n",
              kTaxa, r_trees());

  util::TextTable table({"Threads", "legacy(s)", "pipelined(s)", "Speedup"});
  for (const std::size_t t : kThreadCounts) {
    const RunResult& legacy = g_results["legacy/t" + std::to_string(t)];
    const RunResult& pipe = g_results["pipelined/t" + std::to_string(t)];
    table.add_row({std::to_string(t), util::format_fixed(legacy.seconds, 2),
                   util::format_fixed(pipe.seconds, 2),
                   util::format_fixed(legacy.seconds / pipe.seconds, 2) +
                       "x"});
  }
  table.print(std::cout);

  std::printf("\nQueue-capacity sweep (pipelined, threads=%zu; 0 means the "
              "max(4*threads,16) default):\n",
              kSweepThreads);
  util::TextTable sweep({"Capacity", "Time(s)"});
  for (const std::size_t cap : kQueueCapacities) {
    const RunResult& run = g_results["pipelined/q" + std::to_string(cap)];
    sweep.add_row({std::to_string(cap), util::format_fixed(run.seconds, 2)});
  }
  sweep.print(std::cout);

  // Bitwise equality: every configuration against the sequential legacy
  // ground truth.
  const RunResult& truth = g_results["legacy/t1"];
  bool all_equal = true;
  for (const auto& [label, run] : g_results) {
    if (!same_results(run.avg, truth.avg)) {
      all_equal = false;
      std::printf("MISMATCH: %s differs from legacy/t1\n", label.c_str());
    }
  }
  verdict("all engine configurations agree bitwise", all_equal,
          std::to_string(g_results.size()) + " configurations x " +
              std::to_string(truth.avg.size()) + " averages");

  const double legacy8 = g_results["legacy/t8"].seconds;
  const double pipe8 = g_results["pipelined/t8"].seconds;
  verdict("pipelined >= 1.3x vs barrier-batch legacy at 8 threads",
          pipe8 * 1.3 <= legacy8,
          util::format_fixed(legacy8 / pipe8, 2) + "x (" +
              util::format_fixed(legacy8, 2) + "s -> " +
              util::format_fixed(pipe8, 2) + "s)");
}

}  // namespace
}  // namespace bfhrf::bench

int main(int argc, char** argv) {
  using namespace bfhrf::bench;
  print_header("Ablation A7 — pipelined streaming engine",
               "engine overhaul; paper SVI threading methodology");
  for (const std::size_t t : kThreadCounts) {
    register_cell("legacy/t" + std::to_string(t), legacy_opts(t));
    register_cell("pipelined/t" + std::to_string(t), pipelined_opts(t));
  }
  for (const std::size_t cap : kQueueCapacities) {
    register_cell("pipelined/q" + std::to_string(cap),
                  pipelined_opts(kSweepThreads, cap));
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report();
  export_metrics();
  return 0;
}
