// Table V / Figure 2 reproduction: variable number of trees
// (n = 100, r from 1000 to 100000, simulated ASTRAL-II-style data).
//
// This is the experiment where HashRF's O(r²) matrix blows up: the paper's
// r = 100000 HashRF cell is a kernel kill ('*' at 7.80m/19822MB when it
// died); our harness skips HashRF when the projected matrix exceeds the
// memory budget, which reproduces the same cliff.
#include "sweep.hpp"

namespace bfhrf::bench {
namespace {

std::vector<std::size_t> r_points() {
  switch (scale()) {
    case Scale::Smoke:
      return {50, 100, 200};
    case Scale::Small:
      return {500, 1000, 2000, 4000, 8000};
    case Scale::Paper:
      return {1000, 25000, 50000, 75000, 100000};
  }
  return {};
}

const sim::Dataset& dataset() {
  static const sim::Dataset ds = [] {
    auto spec = sim::variable_trees(r_points().back());
    return sim::generate(spec);
  }();
  return ds;
}

PaperTable paper_values() {
  PaperTable t;
  t[{"DS", 1000}] = {"3.65", "254"};
  t[{"DS", 25000}] = {"2221.19", "4526"};
  t[{"DS", 50000}] = {"8466.61", "9007"};
  t[{"DS", 75000}] = {"19190.46", "13488"};
  t[{"DS", 100000}] = {"36508.66", "17970"};
  t[{"DSMP8", 1000}] = {"0.87", "272"};
  t[{"DSMP8", 25000}] = {"337.01", "6090"};
  t[{"DSMP8", 50000}] = {"1354.28", "12141"};
  t[{"DSMP8", 75000}] = {"13.75*", "18194*"};
  t[{"DSMP8", 100000}] = {"17.99*", "24243*"};
  t[{"DSMP16", 1000}] = {"0.69", "273"};
  t[{"DSMP16", 25000}] = {"241.7", "6093"};
  t[{"DSMP16", 50000}] = {"9.03*", "12145*"};
  t[{"DSMP16", 75000}] = {"13.79*", "18199*"};
  t[{"DSMP16", 100000}] = {"19.06*", "24247*"};
  t[{"HashRF", 1000}] = {"0.01", "9"};
  t[{"HashRF", 25000}] = {"5.61", "1299"};
  t[{"HashRF", 50000}] = {"30.48", "5032"};
  t[{"HashRF", 75000}] = {"84.33", "11206"};
  t[{"HashRF", 100000}] = {"7.80*", "19822*"};
  t[{"BFHRF8", 1000}] = {"0.04", "44"};
  t[{"BFHRF8", 25000}] = {"0.93", "181"};
  t[{"BFHRF8", 50000}] = {"1.85", "323"};
  t[{"BFHRF8", 75000}] = {"2.81", "460"};
  t[{"BFHRF8", 100000}] = {"3.96", "593"};
  t[{"BFHRF16", 1000}] = {"0.03", "46"};
  t[{"BFHRF16", 25000}] = {"0.72", "197"};
  t[{"BFHRF16", 50000}] = {"1.42", "355"};
  t[{"BFHRF16", 75000}] = {"2.16", "519"};
  t[{"BFHRF16", 100000}] = {"2.90", "691"};
  return t;
}

void report() {
  const auto points = r_points();
  print_sweep_table("Table V / Fig 2: variable number of trees", 100, points,
                    paper_values(),
                    std::vector<std::size_t>{1000, 25000, 50000, 75000,
                                             100000});
  print_r_sweep_verdicts(points);

  // Fig 2's crossover: HashRF wins at the smallest r, loses (or dies) at
  // the largest runnable r.
  const auto& res = Results::instance();
  const auto h_small = res.find("HashRF", 100, points.front());
  const auto b_small = res.find("BFHRF16", 100, points.front());
  if (h_small && b_small && !h_small->skipped) {
    verdict("HashRF competitive at smallest r (Table IV/V pattern)",
            h_small->seconds < 4 * b_small->seconds,
            "HashRF=" + time_cell(*h_small) + "m BFHRF16=" +
                time_cell(*b_small) + "m");
  }
  std::size_t r_big = 0;
  for (const std::size_t r : points) {
    const auto h = res.find("HashRF", 100, r);
    if (h && !h->skipped) {
      r_big = r;
    }
  }
  if (r_big != 0) {
    const auto h = res.find("HashRF", 100, r_big);
    const auto b = res.find("BFHRF16", 100, r_big);
    if (h && b) {
      verdict("BFHRF overtakes HashRF at largest common r (Fig 2)",
              b->seconds <= h->seconds,
              "r=" + std::to_string(r_big) + " HashRF=" + time_cell(*h) +
                  "m BFHRF16=" + time_cell(*b) + "m");
    }
  }
  const auto h_max = res.find("HashRF", 100, points.back());
  if (h_max) {
    verdict("HashRF unstable at max r (paper: killed at r=100000)",
            scale() != Scale::Paper || h_max->skipped,
            h_max->skipped ? "skipped (matrix over budget)"
                           : "ran within reduced-scale budget");
  }
}

}  // namespace
}  // namespace bfhrf::bench

int main(int argc, char** argv) {
  using namespace bfhrf::bench;
  print_header("Table V / Figure 2 — variable number of trees (n=100)",
               "Table V, Fig. 2 and §VI-D");
  register_r_sweep(dataset(), r_points(), RunBudget::for_scale(scale()));
  return sweep_main(argc, argv, &report);
}
