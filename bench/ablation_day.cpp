// Ablation A3: pairwise engine inside SequentialRF — bitmask sets vs Day's
// O(n) cluster-table algorithm (the paper's reference [26]).
//
// The paper analyses RF in the O(n²) bitmask model but cites Day's linear
// algorithm; this ablation quantifies how much the baseline DS would gain
// from it, and shows BFHRF still wins because it removes the q·r loop
// entirely rather than cheapening each iteration.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <map>

#include "common.hpp"
#include "core/bfhrf.hpp"
#include "core/sequential_rf.hpp"
#include "sim/datasets.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bfhrf::bench {
namespace {

std::vector<std::size_t> n_points() {
  switch (scale()) {
    case Scale::Smoke:
      return {32, 64};
    case Scale::Small:
      return {50, 100, 200, 400};
    case Scale::Paper:
      return {100, 250, 500, 1000};
  }
  return {};
}

std::size_t r_trees() { return scale() == Scale::Smoke ? 20 : 100; }

const sim::Dataset& dataset_for(std::size_t n) {
  static std::map<std::size_t, sim::Dataset> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    sim::DatasetSpec spec = sim::variable_species(n);
    spec.n_trees = r_trees();
    it = cache.emplace(n, sim::generate(spec)).first;
  }
  return it->second;
}

struct Point {
  double set_seconds = 0;
  double day_seconds = 0;
  double bfhrf_seconds = 0;
};
std::map<std::size_t, Point>& points() {
  static std::map<std::size_t, Point> p;
  return p;
}

void run_engine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  const auto& ds = dataset_for(n);
  for (auto _ : state) {
    util::WallTimer timer;
    if (mode == 2) {
      core::Bfhrf engine(n, {.threads = 1});
      engine.build(ds.trees);
      benchmark::DoNotOptimize(engine.query(ds.trees));
      points()[n].bfhrf_seconds = timer.seconds();
    } else {
      const auto result = core::sequential_avg_rf(
          ds.trees, ds.trees,
          {.engine = mode == 1 ? core::PairwiseEngine::Day
                               : core::PairwiseEngine::BipartitionSet});
      benchmark::DoNotOptimize(result.avg_rf.data());
      (mode == 1 ? points()[n].day_seconds : points()[n].set_seconds) =
          timer.seconds();
    }
  }
}

void report() {
  std::printf("\n--- Ablation A3: pairwise engine (r=q=%zu) ---\n",
              r_trees());
  util::TextTable table({"n", "DS/bitmask-set (s)", "DS/Day (s)",
                         "Day speedup", "BFHRF 1T (s)",
                         "BFHRF vs best DS"});
  for (const auto& [n, p] : points()) {
    const double best_ds = std::min(p.set_seconds, p.day_seconds);
    table.add_row(
        {std::to_string(n), util::format_fixed(p.set_seconds, 3),
         util::format_fixed(p.day_seconds, 3),
         util::format_fixed(
             p.day_seconds > 0 ? p.set_seconds / p.day_seconds : 0, 2),
         util::format_fixed(p.bfhrf_seconds, 3),
         util::format_fixed(
             p.bfhrf_seconds > 0 ? best_ds / p.bfhrf_seconds : 0, 1)});
  }
  table.print(std::cout);
  std::printf("\n");

  // Day's advantage should grow with n (O(n) vs O(n²/64) per pair).
  const auto& first = *points().begin();
  const auto& last = *points().rbegin();
  const double gain_small = first.second.set_seconds /
                            std::max(1e-9, first.second.day_seconds);
  const double gain_large = last.second.set_seconds /
                            std::max(1e-9, last.second.day_seconds);
  verdict("Day engine's advantage grows with n", gain_large > gain_small,
          "speedup " + util::format_fixed(gain_small, 2) + "x at n=" +
              std::to_string(first.first) + " -> " +
              util::format_fixed(gain_large, 2) + "x at n=" +
              std::to_string(last.first));
  verdict("BFHRF beats even Day-powered DS at every n", [&] {
    for (const auto& [n, p] : points()) {
      if (p.bfhrf_seconds >= std::min(p.set_seconds, p.day_seconds)) {
        return false;
      }
    }
    return true;
  }(), "removing the q*r loop beats cheapening its body");

  std::printf(
      "\nFinding: at practical n the word-packed sorted-merge (O(n^2/64) "
      "model, sequential memory access) outruns Day's O(n) cluster scan "
      "(pointer-chasing, per-pair traversal state); Day's relative cost "
      "falls as n grows, with the crossover beyond n~10^3-10^4. This "
      "supports the paper's choice to analyse and implement RF in the "
      "bitmask model despite citing Day's bound (§II-C).\n");
}

}  // namespace
}  // namespace bfhrf::bench

int main(int argc, char** argv) {
  using namespace bfhrf::bench;
  print_header("Ablation A3 — bitmask-set vs Day's algorithm in DS",
               "§II-C / reference [26]");
  for (const std::size_t n : n_points()) {
    for (const int mode : {0, 1, 2}) {
      const char* mode_name = mode == 0 ? "set" : mode == 1 ? "day" : "bfhrf";
      benchmark::RegisterBenchmark(
          (std::string(mode_name) + "/n=" + std::to_string(n)).c_str(),
          &run_engine)
          ->Args({static_cast<long>(n), mode})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report();
  return 0;
}
