// Shared benchmark harness for the paper-reproduction binaries.
//
// Each bench binary reproduces one table/figure: it registers one
// google-benchmark cell per (algorithm, size) point, runs them, then prints
// a paper-style table with our measured values beside the paper's published
// numbers plus a shape verdict (scaling-exponent fits, ranking checks).
//
// Scale control: BFHRF_SCALE=smoke|small|paper (default small).
//   smoke — seconds; CI-sized inputs.
//   small — minutes; shapes reproduce, absolute sizes reduced.
//   paper — the published n/r values; hours of CPU and GBs of RAM.
//
// Faithfulness devices mirroring the paper's §VI methodology:
//   * DS/DSMP runs whose projected work exceeds a budget are measured on a
//     query subset and extrapolated from the per-tree rate — the paper did
//     exactly this ("estimated the rate of trees per minute"); such cells
//     are marked with '*'.
//   * HashRF cells whose r×r matrix would exceed the memory budget are
//     skipped and printed as '-' — the paper's kernel-killed '-' cells.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "phylo/tree.hpp"

namespace bfhrf::bench {

enum class Scale { Smoke, Small, Paper };

/// Parse BFHRF_SCALE (once); defaults to Small.
[[nodiscard]] Scale scale();
[[nodiscard]] const char* scale_name();

/// Scale a paper-sized dimension down for smoke/small runs.
[[nodiscard]] std::size_t scaled(std::size_t paper_value);

// --- algorithms -------------------------------------------------------------

/// The six configurations of the paper's experiments (Figs 1-2, Tables
/// III-V). Thread counts keep the paper's labels even on narrower hosts.
enum class Algo { DS, DSMP8, DSMP16, HashRF, BFHRF8, BFHRF16 };

[[nodiscard]] const char* algo_name(Algo a);
[[nodiscard]] std::span<const Algo> all_algos();

struct Measurement {
  double seconds = 0;
  std::size_t engine_bytes = 0;  ///< exact data-structure footprint
  bool estimated = false;        ///< extrapolated (paper's '*')
  bool skipped = false;          ///< not run (paper's '-')
};

struct RunBudget {
  /// Approximate op budget for quadratic engines before extrapolation.
  double ds_ops = 0;
  /// Matrix bytes above which HashRF is skipped (its kill condition).
  std::size_t hashrf_matrix_bytes = 0;
  /// Op budget for HashRF's pair-credit loop before skipping.
  double hashrf_ops = 0;

  [[nodiscard]] static RunBudget for_scale(Scale s);
};

/// Run one algorithm on collection Q == R (the paper's setting) and
/// measure it. `taxa_n` is the taxon-universe width.
[[nodiscard]] Measurement run_algo(Algo algo,
                                   std::span<const phylo::Tree> trees,
                                   std::size_t taxa_n,
                                   const RunBudget& budget);

// --- result collection and reporting ----------------------------------------

struct Cell {
  std::string algo;
  std::size_t n = 0;
  std::size_t r = 0;
  Measurement m;
};

/// Global per-binary result store (bench binaries are single-threaded at
/// the harness level).
class Results {
 public:
  static Results& instance();

  void record(const Cell& cell);
  [[nodiscard]] const std::vector<Cell>& cells() const { return cells_; }

  /// Find a cell by (algo, n, r).
  [[nodiscard]] std::optional<Measurement> find(const std::string& algo,
                                                std::size_t n,
                                                std::size_t r) const;

 private:
  std::vector<Cell> cells_;
};

/// "12.34" minutes / "0.04" style cell text with paper markers.
[[nodiscard]] std::string time_cell(const Measurement& m);
[[nodiscard]] std::string mem_cell(const Measurement& m);

/// Least-squares slope of log(y) on log(x): the empirical scaling exponent.
[[nodiscard]] double fit_exponent(std::span<const double> x,
                                  std::span<const double> y);

/// Pearson correlation and R^2 of a linear fit (paper §VI-C reports both).
struct LinearFit {
  double r_squared = 0;
  double pearson = 0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> x,
                                   std::span<const double> y);

/// Print a "VERDICT name: PASS/WARN — detail" line.
void verdict(const std::string& name, bool pass, const std::string& detail);

/// Print the standard bench header (paper citation, scale, host info).
/// Also records a filesystem-safe slug of `experiment` for export_metrics.
void print_header(const std::string& experiment, const std::string& paper_ref);

// --- machine-readable baselines ----------------------------------------------

/// Record one ablation's median latency under a stable name (ns per
/// operation). export_metrics() emits everything recorded here as a
/// top-level "baselines" object in the BENCH_<slug>.json blob, so
/// scripts/bench_compare.py can diff per-ablation medians directly instead
/// of reverse-engineering histogram sums.
void record_baseline(const std::string& name, double median_ns_per_op);

/// All baselines recorded so far, in insertion order.
[[nodiscard]] std::span<const std::pair<std::string, double>> baselines();

// --- observability export ---------------------------------------------------

/// Lower-snake slug of the experiment named in print_header ("bench" if
/// print_header was never called).
[[nodiscard]] std::string experiment_slug();

/// Serialize the obs registry (engine counters, timers, spans) as a
/// BENCH_*.json record: written to BENCH_<slug>.json — or to $BFHRF_OBS_JSON
/// if set ("-" = stdout only) — and echoed to stdout between
/// `--- BEGIN/END METRICS JSON ---` markers. Called by sweep_main after the
/// report; standalone bench mains call it directly.
void export_metrics(const std::string& slug = "");

}  // namespace bfhrf::bench
