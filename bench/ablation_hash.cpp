// Ablation A4: frequency-hash behaviour — unique-split saturation and
// reserve policy.
//
// Two design claims this pins down:
//  * §VII-C: BFHRF memory is bounded by UNIQUE bipartitions, which saturate
//    as r grows on clustered (real-world-like) collections — we sweep r for
//    clustered vs independent collections and report unique counts, bytes
//    and bytes/tree.
//  * §IX (future work): key storage is the memory knob; we measure the
//    effect of pre-sizing (expected_unique) on build time.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <map>

#include "common.hpp"
#include "core/bfhrf.hpp"
#include "core/compressed_hash.hpp"
#include "sim/datasets.hpp"
#include "sim/generators.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bfhrf::bench {
namespace {

std::vector<std::size_t> r_points() {
  switch (scale()) {
    case Scale::Smoke:
      return {50, 100, 200};
    case Scale::Small:
      return {500, 1000, 2000, 4000, 8000};
    case Scale::Paper:
      return {1000, 10000, 50000, 100000};
  }
  return {};
}

constexpr std::size_t kTaxa = 100;

const std::vector<phylo::Tree>& clustered() {
  static const auto trees = [] {
    sim::DatasetSpec spec = sim::variable_trees(r_points().back());
    return sim::generate(spec).trees;
  }();
  return trees;
}

const std::vector<phylo::Tree>& independent() {
  static const auto trees = [] {
    const auto taxa = phylo::TaxonSet::make_numbered(kTaxa);
    util::Rng rng(0xD15EA5E);
    std::vector<phylo::Tree> out;
    out.reserve(r_points().back());
    for (std::size_t i = 0; i < r_points().back(); ++i) {
      out.push_back(sim::uniform_tree(taxa, rng));
    }
    return out;
  }();
  return trees;
}

struct Point {
  std::size_t unique = 0;
  std::size_t bytes = 0;
  double build_seconds = 0;
};
std::map<std::pair<bool, std::size_t>, Point>& points() {
  static std::map<std::pair<bool, std::size_t>, Point> p;
  return p;
}

void run_saturation(benchmark::State& state) {
  const bool indep = state.range(0) != 0;
  const auto r = static_cast<std::size_t>(state.range(1));
  const auto& trees = indep ? independent() : clustered();
  for (auto _ : state) {
    util::WallTimer timer;
    core::Bfhrf engine(kTaxa, {.threads = 1});
    engine.build(std::span<const phylo::Tree>(trees.data(), r));
    auto& p = points()[{indep, r}];
    p.build_seconds = timer.seconds();
    p.unique = engine.stats().unique_bipartitions;
    p.bytes = engine.stats().hash_memory_bytes;
  }
}

struct CodecPoint {
  double raw_mb = 0;
  double comp_mb = 0;
  double raw_seconds = 0;
  double comp_seconds = 0;
  double mean_key_bytes = 0;
};
std::map<std::size_t, CodecPoint>& codec_points() {
  static std::map<std::size_t, CodecPoint> p;
  return p;
}

void run_codec(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool compressed = state.range(1) != 0;
  sim::DatasetSpec spec = sim::variable_species(n);
  spec.n_trees = scale() == Scale::Smoke ? 30 : 200;
  const sim::Dataset ds = sim::generate(spec);
  for (auto _ : state) {
    util::WallTimer timer;
    core::Bfhrf engine(n, {.compressed_keys = compressed});
    engine.build(ds.trees);
    benchmark::DoNotOptimize(engine.query(ds.trees));
    auto& p = codec_points()[n];
    const double mb =
        static_cast<double>(engine.stats().hash_memory_bytes) /
        (1024.0 * 1024.0);
    if (compressed) {
      p.comp_seconds = timer.seconds();
      p.comp_mb = mb;
      p.mean_key_bytes =
          dynamic_cast<const core::CompressedFrequencyHash&>(engine.store())
              .mean_key_bytes();
    } else {
      p.raw_seconds = timer.seconds();
      p.raw_mb = mb;
    }
  }
}

double reserve_effect(std::size_t expected) {
  const auto& trees = clustered();
  const std::size_t r = std::min<std::size_t>(trees.size(), 2000);
  util::WallTimer timer;
  core::FrequencyHash hash(kTaxa, expected);
  for (std::size_t i = 0; i < r; ++i) {
    const auto bips = phylo::extract_bipartitions(trees[i]);
    bips.for_each([&](util::ConstWordSpan w) { hash.add(w); });
  }
  return timer.seconds();
}

void report() {
  std::printf("\n--- Ablation A4a: unique-split saturation (n=%zu) ---\n",
              kTaxa);
  util::TextTable table({"Collection", "r", "Unique splits",
                         "Unique/(r*(n-3))", "Hash MB", "Bytes/tree"});
  for (const auto& [key, p] : points()) {
    const auto& [indep, r] = key;
    table.add_row(
        {indep ? "independent" : "clustered", std::to_string(r),
         std::to_string(p.unique),
         util::format_fixed(static_cast<double>(p.unique) /
                                (static_cast<double>(r) * (kTaxa - 3)),
                            4),
         util::format_fixed(static_cast<double>(p.bytes) / (1024.0 * 1024.0),
                            2),
         util::format_fixed(static_cast<double>(p.bytes) /
                                static_cast<double>(r),
                            0)});
  }
  table.print(std::cout);
  std::printf("\n");

  // Saturation: on clustered data, bytes/tree falls as r grows.
  const auto rs = r_points();
  const auto first = points().find({false, rs.front()});
  const auto last = points().find({false, rs.back()});
  if (first != points().end() && last != points().end()) {
    const double bpt_first = static_cast<double>(first->second.bytes) /
                             static_cast<double>(rs.front());
    const double bpt_last = static_cast<double>(last->second.bytes) /
                            static_cast<double>(rs.back());
    verdict("clustered collections saturate (§VII-C)", bpt_last < bpt_first,
            "bytes/tree " + util::format_fixed(bpt_first, 0) + " -> " +
                util::format_fixed(bpt_last, 0));
  }
  // Independent collections keep discovering splits: near-linear uniques.
  const auto ifirst = points().find({true, rs.front()});
  const auto ilast = points().find({true, rs.back()});
  if (ifirst != points().end() && ilast != points().end()) {
    const double ratio = static_cast<double>(ilast->second.unique) /
                         static_cast<double>(ifirst->second.unique);
    const double r_ratio = static_cast<double>(rs.back()) /
                           static_cast<double>(rs.front());
    verdict("independent collections do not saturate", ratio > 0.5 * r_ratio,
            "unique-split growth " + util::format_fixed(ratio, 1) +
                "x for " + util::format_fixed(r_ratio, 1) + "x more trees");
  }

  std::printf("\n--- Ablation A4c: raw vs compressed keys (§IX future "
              "work; r=200 clustered) ---\n");
  util::TextTable ctable({"n", "raw MB", "compressed MB", "ratio",
                          "mean key B (raw)", "mean key B (comp)",
                          "raw s", "comp s"});
  for (const auto& [n, p] : codec_points()) {
    const double raw_key =
        static_cast<double>(util::words_for_bits(n)) * 8.0;
    ctable.add_row(
        {std::to_string(n), util::format_fixed(p.raw_mb, 2),
         util::format_fixed(p.comp_mb, 2),
         util::format_fixed(p.comp_mb > 0 ? p.raw_mb / p.comp_mb : 0, 2),
         util::format_fixed(raw_key, 0),
         util::format_fixed(p.mean_key_bytes, 1),
         util::format_fixed(p.raw_seconds, 3),
         util::format_fixed(p.comp_seconds, 3)});
  }
  ctable.print(std::cout);
  if (!codec_points().empty()) {
    const auto& last = *codec_points().rbegin();
    verdict("compressed keys reduce hash memory at large n (§IX)",
            last.second.comp_mb < last.second.raw_mb,
            "n=" + std::to_string(last.first) + ": " +
                util::format_fixed(last.second.raw_mb, 2) + " -> " +
                util::format_fixed(last.second.comp_mb, 2) + " MB");
  }

  std::printf("\n--- Ablation A4b: reserve policy (clustered, r=2000) ---\n");
  util::TextTable rtable({"expected_unique", "Build time (s)"});
  for (const std::size_t expected : {std::size_t{0}, std::size_t{100000}}) {
    rtable.add_row({std::to_string(expected),
                    util::format_fixed(reserve_effect(expected), 3)});
  }
  rtable.print(std::cout);
  std::printf("(pre-sizing avoids rehash-and-copy during the build; both "
              "end states are identical)\n");
}

}  // namespace
}  // namespace bfhrf::bench

int main(int argc, char** argv) {
  using namespace bfhrf::bench;
  print_header("Ablation A4 — frequency-hash memory behaviour",
               "§VII-C and §IX");
  for (const std::size_t r : r_points()) {
    for (const int indep : {0, 1}) {
      benchmark::RegisterBenchmark(
          (std::string(indep != 0 ? "independent" : "clustered") +
           "/r=" + std::to_string(r))
              .c_str(),
          &run_saturation)
          ->Args({indep, static_cast<long>(r)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (const std::size_t n : {100, 250, 500, 1000}) {
    for (const int compressed : {0, 1}) {
      benchmark::RegisterBenchmark(
          (std::string(compressed != 0 ? "keys_compressed" : "keys_raw") +
           "/n=" + std::to_string(n))
              .c_str(),
          &run_codec)
          ->Args({static_cast<long>(n), compressed})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report();
  return 0;
}
