// Table I reproduction: theoretical time and space complexity, checked
// empirically. For each algorithm we fit scaling exponents of measured
// runtime/memory against r (with q = r) and against n, and compare with
// the claimed asymptotics:
//
//   Algorithm   Time            Space      Parallel
//   DS          O(n² q r)       O(n² r)    No
//   DSMP        O(n² q r)       O(n² r)    Yes
//   HashRF      O(n² r²)        O(n² r²)   No
//   BFHRF       O(max(n²q,n²r)) O(n²)*     Yes
//
// Notes mirrored from the paper: the bitmask kernels are word-packed, so
// the n-exponents measure below 2 in practice (§VI-C); BFHRF's space is
// bounded by UNIQUE splits, so its r-exponent sits well below 1 on
// clustered collections (§VII-C).
#include "sweep.hpp"

#include <cmath>
#include <iostream>

#include "util/string_util.hpp"

namespace bfhrf::bench {
namespace {

std::vector<std::size_t> r_sweep_points() {
  switch (scale()) {
    case Scale::Smoke:
      return {60, 120, 240};
    case Scale::Small:
      return {250, 500, 1000, 2000};
    case Scale::Paper:
      return {1000, 2000, 4000, 8000, 16000};
  }
  return {};
}

std::vector<std::size_t> n_sweep_points() {
  switch (scale()) {
    case Scale::Smoke:
      return {32, 64};
    case Scale::Small:
      return {64, 128, 256, 512};
    case Scale::Paper:
      return {100, 250, 500, 1000};
  }
  return {};
}

std::size_t n_fixed() { return 64; }
std::size_t r_fixed() {
  return scale() == Scale::Smoke ? 40 : 150;
}

const sim::Dataset& r_dataset() {
  static const sim::Dataset ds = [] {
    sim::DatasetSpec spec = sim::variable_trees(r_sweep_points().back());
    spec.n_taxa = n_fixed();
    return sim::generate(spec);
  }();
  return ds;
}

const sim::Dataset& n_dataset(std::size_t n) {
  static std::map<std::size_t, sim::Dataset> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    sim::DatasetSpec spec = sim::variable_species(n);
    spec.n_trees = r_fixed();
    it = cache.emplace(n, sim::generate(spec)).first;
  }
  return it->second;
}

void register_cells() {
  const RunBudget budget = RunBudget::for_scale(scale());
  register_r_sweep(r_dataset(), r_sweep_points(), budget);
  for (const std::size_t n : n_sweep_points()) {
    for (const Algo algo : all_algos()) {
      const std::string name = std::string(algo_name(algo)) +
                               "/n=" + std::to_string(n) +
                               "/r=" + std::to_string(r_fixed());
      benchmark::RegisterBenchmark(
          name.c_str(),
          [algo, n, budget](benchmark::State& state) {
            const sim::Dataset& ds = n_dataset(n);
            Measurement m;
            for (auto _ : state) {
              m = run_algo(algo, ds.trees, n, budget);
            }
            state.counters["minutes"] = m.seconds / 60.0;
            if (!Results::instance().find(algo_name(algo), n, r_fixed())) {
              Results::instance().record({algo_name(algo), n, r_fixed(), m});
            }
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

struct Claim {
  const char* algo;
  const char* time_claim;
  const char* space_claim;
  const char* parallel;
  double r_time_expect_min;  // acceptable fitted-exponent band vs r
  double r_time_expect_max;
  double r_mem_expect_min;
  double r_mem_expect_max;
};

void report() {
  const auto& res = Results::instance();
  const auto r_points = r_sweep_points();
  const auto n_points = n_sweep_points();

  static constexpr Claim kClaims[] = {
      {"DS", "O(n^2 q r)", "O(n^2 r)", "No", 1.5, 2.6, 0.7, 1.3},
      {"DSMP16", "O(n^2 q r)", "O(n^2 r)", "Yes", 1.5, 2.6, 0.7, 1.3},
      {"HashRF", "O(n^2 r^2)", "O(n^2 r^2)", "No", 1.2, 2.6, 1.5, 2.4},
      {"BFHRF16", "O(max(n^2 q, n^2 r))", "O(n^2)*", "Yes", 0.6, 1.4, -0.2,
       0.9},
  };

  const auto exponent = [&](const char* algo, bool mem, bool vs_r) {
    std::vector<double> xs;
    std::vector<double> ys;
    const auto& points = vs_r ? r_points : n_points;
    for (const std::size_t p : points) {
      const auto m = vs_r ? res.find(algo, n_fixed(), p)
                          : res.find(algo, p, r_fixed());
      if (m && !m->skipped && !m->estimated) {
        xs.push_back(static_cast<double>(p));
        ys.push_back(mem ? static_cast<double>(m->engine_bytes)
                         : m->seconds);
      }
    }
    return xs.size() >= 2 ? fit_exponent(xs, ys) : std::nan("");
  };

  std::printf("\n--- Table I: claimed complexity vs fitted exponents ---\n");
  util::TextTable table({"Algorithm", "Time claim", "Space claim", "Parallel",
                         "t-exp vs r", "mem-exp vs r", "t-exp vs n"});
  for (const Claim& c : kClaims) {
    const double ter = exponent(c.algo, false, true);
    const double mer = exponent(c.algo, true, true);
    const double ten = exponent(c.algo, false, false);
    table.add_row({c.algo, c.time_claim, c.space_claim, c.parallel,
                   util::format_fixed(ter, 2), util::format_fixed(mer, 2),
                   util::format_fixed(ten, 2)});
  }
  table.print(std::cout);
  std::printf("\n");

  for (const Claim& c : kClaims) {
    const double ter = exponent(c.algo, false, true);
    if (!std::isnan(ter)) {
      verdict(std::string(c.algo) + " time exponent vs r in band",
              ter >= c.r_time_expect_min && ter <= c.r_time_expect_max,
              "fitted=" + util::format_fixed(ter, 2) + " claim=" +
                  c.time_claim);
    }
    const double mer = exponent(c.algo, true, true);
    if (!std::isnan(mer)) {
      verdict(std::string(c.algo) + " memory exponent vs r in band",
              mer >= c.r_mem_expect_min && mer <= c.r_mem_expect_max,
              "fitted=" + util::format_fixed(mer, 2) + " claim=" +
                  c.space_claim);
    }
  }
  std::printf("\nNote: n-exponents measure below the O(n^2) bitmask model "
              "because all kernels are 64-way word-packed; the paper makes "
              "the same observation (§VI-C, \"linear in practice\").\n");
}

}  // namespace
}  // namespace bfhrf::bench

int main(int argc, char** argv) {
  using namespace bfhrf::bench;
  print_header("Table I — theoretical complexity, checked empirically",
               "Table I, §IV");
  register_cells();
  return sweep_main(argc, argv, &report);
}
