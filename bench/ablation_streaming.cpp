// Ablation A6: streaming input and the O(n²) memory claim.
//
// Table I footnotes BFHRF's space as "O(n²) in theory, O(n²r) in the
// current implementation due to the nature of multiprocessing" — the
// Python build had to materialize R to fan it out to worker processes.
// This implementation streams trees through worker threads in bounded
// batches, so the claim is achievable; this bench measures it:
//
//   in-memory path : all r trees resident + the hash
//   streaming path : <= threads·batch_size trees resident + the hash
//
// Reported: exact resident bytes (trees + engine) for both paths, plus
// process RSS deltas as corroboration (streaming runs first, while the
// high-water mark is still low).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/bfhrf.hpp"
#include "core/tree_source.hpp"
#include "sim/datasets.hpp"
#include "util/memory.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bfhrf::bench {
namespace {

std::size_t r_trees() {
  switch (scale()) {
    case Scale::Smoke:
      return 300;
    case Scale::Small:
      return 20000;
    case Scale::Paper:
      return 149278;
  }
  return 0;
}

constexpr std::size_t kTaxa = 144;  // the Insect width
constexpr std::size_t kBatch = 64;

struct Path {
  double seconds = 0;
  std::size_t tree_bytes = 0;    // resident Tree arenas at peak
  std::size_t engine_bytes = 0;  // hash
  std::size_t rss_before = 0;
  std::size_t rss_peak = 0;
  std::vector<double> head;      // first few results, for the equality check
};
Path g_stream;
Path g_memory;

std::string dataset_path() {
  static const std::string path = [] {
    const std::string p = "/tmp/bfhrf_a6_insect_like.nwk";
    sim::DatasetSpec spec = sim::insect_like(r_trees());
    (void)sim::generate_to_file(spec, p);
    return p;
  }();
  return path;
}

phylo::TaxonSetPtr file_taxa() {
  auto taxa = std::make_shared<phylo::TaxonSet>();
  core::FileTreeSource scan(dataset_path(), taxa);
  phylo::Tree t;
  while (scan.next(t)) {
  }
  return taxa;
}

void run_streaming(benchmark::State& state) {
  const auto taxa = file_taxa();
  for (auto _ : state) {
    g_stream.rss_before = util::current_rss_bytes();
    util::WallTimer timer;
    core::Bfhrf engine(taxa->size(), {.threads = 2, .batch_size = kBatch});
    core::FileTreeSource reference(dataset_path(), taxa);
    engine.build(reference);
    reference.reset();
    const auto avg = engine.query(reference);
    g_stream.seconds = timer.seconds();
    g_stream.engine_bytes = engine.stats().hash_memory_bytes;
    // Residency bound: one batch of trees (Tree arena ~ 2n nodes).
    g_stream.tree_bytes =
        2 * kBatch * 2 * kTaxa * sizeof(phylo::Tree::Node);
    g_stream.rss_peak = util::peak_rss_bytes();
    g_stream.head.assign(avg.begin(),
                         avg.begin() + std::min<std::size_t>(8, avg.size()));
  }
}

void run_in_memory(benchmark::State& state) {
  const auto taxa = file_taxa();
  for (auto _ : state) {
    g_memory.rss_before = util::current_rss_bytes();
    util::WallTimer timer;
    const auto trees = phylo::read_newick_file(dataset_path(), taxa);
    std::size_t tree_bytes = 0;
    for (const auto& t : trees) {
      tree_bytes += t.memory_bytes();
    }
    core::Bfhrf engine(taxa->size(), {.threads = 2});
    engine.build(trees);
    const auto avg = engine.query(trees);
    g_memory.seconds = timer.seconds();
    g_memory.engine_bytes = engine.stats().hash_memory_bytes;
    g_memory.tree_bytes = tree_bytes;
    g_memory.rss_peak = util::peak_rss_bytes();
    g_memory.head.assign(avg.begin(),
                         avg.begin() + std::min<std::size_t>(8, avg.size()));
  }
}

void report() {
  const auto mb = [](std::size_t b) {
    return util::format_fixed(static_cast<double>(b) / (1024.0 * 1024.0), 2);
  };
  std::printf("\n--- Ablation A6: streaming vs in-memory input (n=%zu, "
              "r=%zu, Q=R from file) ---\n",
              kTaxa, r_trees());
  util::TextTable table({"Path", "Time(s)", "Resident tree MB",
                         "Hash MB", "Peak RSS MB"});
  table.add_row({"streaming (batch=64)",
                 util::format_fixed(g_stream.seconds, 2),
                 mb(g_stream.tree_bytes), mb(g_stream.engine_bytes),
                 mb(g_stream.rss_peak)});
  table.add_row({"in-memory", util::format_fixed(g_memory.seconds, 2),
                 mb(g_memory.tree_bytes), mb(g_memory.engine_bytes),
                 mb(g_memory.rss_peak)});
  table.print(std::cout);
  std::printf("(streaming ran first, so its peak RSS is an honest upper "
              "bound on that path — though it still includes the one-time "
              "in-process dataset synthesis; the exact 'Resident tree MB' "
              "column carries the claim. Re-parsing Q costs the extra "
              "time, the paper's stated trade-off.)\n\n");

  bool same = g_stream.head.size() == g_memory.head.size();
  for (std::size_t i = 0; same && i < g_stream.head.size(); ++i) {
    same = (g_stream.head[i] == g_memory.head[i]);
  }
  verdict("streaming and in-memory agree exactly", same,
          "first 8 averages bit-identical");
  verdict("streaming removes the O(n^2 r) tree residency (Table I note)",
          g_stream.tree_bytes * 10 < g_memory.tree_bytes,
          "resident trees " + mb(g_stream.tree_bytes) + " MB vs " +
              mb(g_memory.tree_bytes) + " MB");
}

}  // namespace
}  // namespace bfhrf::bench

int main(int argc, char** argv) {
  using namespace bfhrf::bench;
  print_header("Ablation A6 — streaming input memory", "Table I footnote, §VII-C");
  benchmark::RegisterBenchmark("build/streaming", &run_streaming)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("build/in_memory", &run_in_memory)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report();
  return 0;
}
