// Ablation A2: thread scaling of the parallel engines.
//
// The paper parallelizes "at the comparison level" (whole trees) and
// reports reduced marginal gains from 8 to 16 cores (§VII-A) plus higher
// memory for more BFHRF threads (§VII-C, per-worker partial hashes). This
// bench sweeps thread counts for BFHRF and DSMP and reports time, speedup
// and the per-thread memory overhead.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <map>
#include <thread>

#include "common.hpp"
#include "core/bfhrf.hpp"
#include "core/sequential_rf.hpp"
#include "sim/datasets.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bfhrf::bench {
namespace {

std::size_t r_trees() {
  switch (scale()) {
    case Scale::Smoke:
      return 60;
    case Scale::Small:
      return 1500;
    case Scale::Paper:
      return 20000;
  }
  return 0;
}

const sim::Dataset& dataset() {
  static const sim::Dataset ds = [] {
    sim::DatasetSpec spec = sim::variable_trees(r_trees());
    return sim::generate(spec);
  }();
  return ds;
}

struct Point {
  double bfhrf_seconds = 0;
  std::size_t bfhrf_bytes = 0;
  double dsmp_seconds = 0;
};
std::map<std::size_t, Point>& points() {
  static std::map<std::size_t, Point> p;
  return p;
}

void run_bfhrf(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto& ds = dataset();
  for (auto _ : state) {
    util::WallTimer timer;
    core::Bfhrf engine(ds.taxa->size(), {.threads = threads});
    engine.build(ds.trees);
    benchmark::DoNotOptimize(engine.query(ds.trees));
    points()[threads].bfhrf_seconds = timer.seconds();
    points()[threads].bfhrf_bytes = engine.stats().hash_memory_bytes;
  }
}

void run_dsmp(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto& ds = dataset();
  // Keep DSMP affordable: fixed query subset, scaled to full-q rate.
  const std::size_t q = std::min<std::size_t>(ds.trees.size(),
                                              scale() == Scale::Smoke ? 20
                                                                      : 100);
  for (auto _ : state) {
    util::WallTimer timer;
    const auto result = core::sequential_avg_rf(
        std::span<const phylo::Tree>(ds.trees.data(), q), ds.trees,
        {.threads = threads});
    benchmark::DoNotOptimize(result.avg_rf.data());
    points()[threads].dsmp_seconds =
        timer.seconds() * static_cast<double>(ds.trees.size()) /
        static_cast<double>(q);
  }
}

void report() {
  std::printf("\n--- Ablation A2: thread scaling (n=100, r=%zu, host "
              "threads=%u) ---\n",
              dataset().trees.size(), std::thread::hardware_concurrency());
  const double bfh_base =
      points().count(1) ? points()[1].bfhrf_seconds : 0.0;
  const double dsmp_base =
      points().count(1) ? points()[1].dsmp_seconds : 0.0;
  util::TextTable table({"Threads", "BFHRF time(s)", "BFHRF speedup",
                         "BFHRF hash MB", "DSMP time(s)*", "DSMP speedup"});
  for (const auto& [threads, p] : points()) {
    table.add_row(
        {std::to_string(threads), util::format_fixed(p.bfhrf_seconds, 3),
         util::format_fixed(
             p.bfhrf_seconds > 0 ? bfh_base / p.bfhrf_seconds : 0, 2),
         util::format_fixed(
             static_cast<double>(p.bfhrf_bytes) / (1024.0 * 1024.0), 2),
         util::format_fixed(p.dsmp_seconds, 1),
         util::format_fixed(
             p.dsmp_seconds > 0 ? dsmp_base / p.dsmp_seconds : 0, 2)});
  }
  table.print(std::cout);
  std::printf("(* DSMP extrapolated from a %s-scale query subset, as the "
              "paper extrapolated DS rates)\n\n",
              scale_name());

  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) {
    verdict("thread scaling measurable on this host", false,
            "single hardware thread: speedups ~1 expected; shape claims "
            "are covered by the r/n sweeps");
  } else {
    const auto it = points().find(std::min<std::size_t>(hw, 8));
    if (it != points().end() && bfh_base > 0) {
      verdict("BFHRF speeds up with threads (§VII-B)",
              it->second.bfhrf_seconds < bfh_base,
              "1T=" + util::format_fixed(bfh_base, 2) + "s " +
                  std::to_string(it->first) + "T=" +
                  util::format_fixed(it->second.bfhrf_seconds, 2) + "s");
    }
  }
  // §VII-C: more threads -> more partial-hash memory. Our merge frees the
  // partials, so the retained hash is constant; assert that instead and
  // note the Python contrast.
  bool constant = true;
  std::size_t first = points().begin()->second.bfhrf_bytes;
  for (const auto& [threads, p] : points()) {
    constant &= (p.bfhrf_bytes == first);
  }
  verdict("final hash size independent of thread count", constant,
          "per-worker partials are merged then freed (the Python "
          "implementation retained them; §VII-C)");
}

}  // namespace
}  // namespace bfhrf::bench

int main(int argc, char** argv) {
  using namespace bfhrf::bench;
  print_header("Ablation A2 — thread scaling", "§VII-A/B/C");
  for (const int threads : {1, 2, 4, 8, 16}) {
    benchmark::RegisterBenchmark(
        ("BFHRF/threads=" + std::to_string(threads)).c_str(), &run_bfhrf)
        ->Arg(threads)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("DSMP/threads=" + std::to_string(threads)).c_str(), &run_dsmp)
        ->Arg(threads)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report();
  return 0;
}
