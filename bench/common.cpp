#include "common.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "core/bfhrf.hpp"
#include "core/hashrf.hpp"
#include "core/sequential_rf.hpp"
#include "obs/metrics.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace bfhrf::bench {
namespace {

/// Slug recorded by print_header for export_metrics file naming.
std::string& stored_slug() {
  static std::string s;
  return s;
}

/// `lower` lowercases (print_header display titles); explicit export slugs
/// keep their case so callers control the BENCH_<slug>.json filename.
std::string slugify(const std::string& text, bool lower = true) {
  std::string out;
  out.reserve(text.size());
  bool pending_sep = false;
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      if (pending_sep && !out.empty()) {
        out.push_back('_');
      }
      pending_sep = false;
      out.push_back(
          lower ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
                : c);
    } else {
      pending_sep = true;
    }
  }
  return out;
}

/// Baselines recorded by record_baseline, in insertion order.
std::vector<std::pair<std::string, double>>& stored_baselines() {
  static std::vector<std::pair<std::string, double>> b;
  return b;
}

}  // namespace

Scale scale() {
  static const Scale s = [] {
    const char* env = std::getenv("BFHRF_SCALE");
    if (env == nullptr) {
      return Scale::Small;
    }
    if (std::strcmp(env, "smoke") == 0) {
      return Scale::Smoke;
    }
    if (std::strcmp(env, "paper") == 0) {
      return Scale::Paper;
    }
    return Scale::Small;
  }();
  return s;
}

const char* scale_name() {
  switch (scale()) {
    case Scale::Smoke:
      return "smoke";
    case Scale::Small:
      return "small";
    case Scale::Paper:
      return "paper";
  }
  return "?";
}

std::size_t scaled(std::size_t paper_value) {
  switch (scale()) {
    case Scale::Smoke:
      return std::max<std::size_t>(8, paper_value / 100);
    case Scale::Small:
      return std::max<std::size_t>(16, paper_value / 25);
    case Scale::Paper:
      return paper_value;
  }
  return paper_value;
}

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::DS:
      return "DS";
    case Algo::DSMP8:
      return "DSMP8";
    case Algo::DSMP16:
      return "DSMP16";
    case Algo::HashRF:
      return "HashRF";
    case Algo::BFHRF8:
      return "BFHRF8";
    case Algo::BFHRF16:
      return "BFHRF16";
  }
  return "?";
}

std::span<const Algo> all_algos() {
  static constexpr Algo kAll[] = {Algo::DS,     Algo::DSMP8,  Algo::DSMP16,
                                  Algo::HashRF, Algo::BFHRF8, Algo::BFHRF16};
  return kAll;
}

RunBudget RunBudget::for_scale(Scale s) {
  switch (s) {
    case Scale::Smoke:
      return {.ds_ops = 5e7,
              .hashrf_matrix_bytes = std::size_t{64} << 20,
              .hashrf_ops = 5e8};
    case Scale::Small:
      return {.ds_ops = 6e8,
              .hashrf_matrix_bytes = std::size_t{512} << 20,
              .hashrf_ops = 1e10};
    case Scale::Paper:
      // The paper's host had 96 GB; HashRF died at r = 100000 (Table V).
      return {.ds_ops = 5e9,
              .hashrf_matrix_bytes = std::size_t{16} << 30,
              .hashrf_ops = 1e13};
  }
  return {};
}

namespace {

std::size_t threads_of(Algo a) {
  switch (a) {
    case Algo::DS:
    case Algo::HashRF:
      return 1;
    case Algo::DSMP8:
    case Algo::BFHRF8:
      return 8;
    case Algo::DSMP16:
    case Algo::BFHRF16:
      return 16;
  }
  return 1;
}

/// Approximate per-query-vs-R op count for the sequential engines.
double ds_work(std::size_t q, std::size_t r, std::size_t n) {
  return static_cast<double>(q) * static_cast<double>(r) *
         static_cast<double>(n);
}

Measurement run_sequential(Algo algo, std::span<const phylo::Tree> trees,
                           std::size_t taxa_n, const RunBudget& budget) {
  const std::size_t r = trees.size();
  core::SequentialRfOptions opts;
  opts.threads = threads_of(algo);

  Measurement m;
  const double full_work = ds_work(r, r, taxa_n);
  std::size_t q = r;
  if (full_work > budget.ds_ops) {
    // Paper §VI: "we estimated the rate of trees per minute ... and
    // estimated the total amount of time for Q trees."
    q = std::max<std::size_t>(
        8, static_cast<std::size_t>(
               budget.ds_ops /
               (static_cast<double>(r) * static_cast<double>(taxa_n))));
    q = std::min(q, r);
    m.estimated = (q < r);
  }

  util::WallTimer timer;
  const auto result =
      core::sequential_avg_rf(trees.subspan(0, q), trees, opts);
  const double measured = timer.seconds();
  m.seconds = m.estimated
                  ? measured * static_cast<double>(r) / static_cast<double>(q)
                  : measured;
  m.engine_bytes = result.reference_memory_bytes;
  return m;
}

Measurement run_hashrf(std::span<const phylo::Tree> trees, std::size_t taxa_n,
                       const RunBudget& budget) {
  const auto r = static_cast<double>(trees.size());
  Measurement m;
  const double matrix_bytes = r * (r - 1) / 2 * sizeof(std::uint32_t);
  const double credit_ops = static_cast<double>(taxa_n) * r * r;
  if (matrix_bytes > static_cast<double>(budget.hashrf_matrix_bytes) ||
      credit_ops > budget.hashrf_ops) {
    m.skipped = true;  // the paper's '-' / kernel-kill cells
    return m;
  }
  util::WallTimer timer;
  const auto result = core::hash_rf(trees);
  m.seconds = timer.seconds();
  m.engine_bytes = result.index_memory_bytes + result.matrix_memory_bytes;
  return m;
}

Measurement run_bfhrf(Algo algo, std::span<const phylo::Tree> trees,
                      std::size_t taxa_n) {
  Measurement m;
  util::WallTimer timer;
  core::Bfhrf engine(taxa_n, {.threads = threads_of(algo)});
  engine.build(trees);
  const auto avg = engine.query(trees);
  m.seconds = timer.seconds();
  m.engine_bytes = engine.stats().hash_memory_bytes;
  // Keep the result alive so the optimizer cannot elide the query loop.
  if (!avg.empty() && avg.front() < -1.0) {
    std::abort();
  }
  return m;
}

}  // namespace

Measurement run_algo(Algo algo, std::span<const phylo::Tree> trees,
                     std::size_t taxa_n, const RunBudget& budget) {
  switch (algo) {
    case Algo::DS:
    case Algo::DSMP8:
    case Algo::DSMP16:
      return run_sequential(algo, trees, taxa_n, budget);
    case Algo::HashRF:
      return run_hashrf(trees, taxa_n, budget);
    case Algo::BFHRF8:
    case Algo::BFHRF16:
      return run_bfhrf(algo, trees, taxa_n);
  }
  return {};
}

Results& Results::instance() {
  static Results r;
  return r;
}

void Results::record(const Cell& cell) { cells_.push_back(cell); }

std::optional<Measurement> Results::find(const std::string& algo,
                                         std::size_t n, std::size_t r) const {
  for (const auto& c : cells_) {
    if (c.algo == algo && c.n == n && c.r == r) {
      return c.m;
    }
  }
  return std::nullopt;
}

std::string time_cell(const Measurement& m) {
  if (m.skipped) {
    return "-";
  }
  const double minutes = m.seconds / 60.0;
  std::string s = minutes < 0.01 ? util::format_fixed(minutes, 4)
                                 : util::format_fixed(minutes, 2);
  if (m.estimated) {
    s += "*";
  }
  return s;
}

std::string mem_cell(const Measurement& m) {
  if (m.skipped) {
    return "-";
  }
  const double mb = static_cast<double>(m.engine_bytes) / (1024.0 * 1024.0);
  std::string s = mb < 0.1 ? util::format_fixed(mb, 3)
                           : util::format_fixed(mb, 1);
  if (m.estimated) {
    s += "*";
  }
  return s;
}

double fit_exponent(std::span<const double> x, std::span<const double> y) {
  // Slope of least-squares line through (log x, log y).
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  std::size_t k = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) {
      continue;
    }
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++k;
  }
  if (k < 2) {
    return 0;
  }
  const double kd = static_cast<double>(k);
  return (kd * sxy - sx * sy) / (kd * sxx - sx * sx);
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  const std::size_t k = x.size();
  if (k < 2) {
    return {};
  }
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double syy = 0;
  double sxy = 0;
  for (std::size_t i = 0; i < k; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
  }
  const double kd = static_cast<double>(k);
  const double cov = kd * sxy - sx * sy;
  const double vx = kd * sxx - sx * sx;
  const double vy = kd * syy - sy * sy;
  if (vx <= 0 || vy <= 0) {
    return {};
  }
  const double pearson = cov / std::sqrt(vx * vy);
  return {.r_squared = pearson * pearson, .pearson = pearson};
}

void verdict(const std::string& name, bool pass, const std::string& detail) {
  std::printf("VERDICT %-44s %s  %s\n", name.c_str(),
              pass ? "PASS" : "WARN", detail.c_str());
}

void record_baseline(const std::string& name, double median_ns_per_op) {
  for (auto& [existing, value] : stored_baselines()) {
    if (existing == name) {
      value = median_ns_per_op;
      return;
    }
  }
  stored_baselines().emplace_back(name, median_ns_per_op);
}

std::span<const std::pair<std::string, double>> baselines() {
  return stored_baselines();
}

std::string experiment_slug() {
  return stored_slug().empty() ? "bench" : stored_slug();
}

void export_metrics(const std::string& slug) {
  const std::string name =
      slug.empty() ? experiment_slug() : slugify(slug, /*lower=*/false);
  std::string baseline_json;
  if (!stored_baselines().empty()) {
    baseline_json = "\"baselines\": {\n";
    for (std::size_t i = 0; i < stored_baselines().size(); ++i) {
      const auto& [bname, ns] = stored_baselines()[i];
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.3f", ns);
      baseline_json += "  \"" + bname + "\": " + buf;
      baseline_json += i + 1 < stored_baselines().size() ? ",\n" : "\n";
    }
    baseline_json += "},\n";
  }
  std::string blob = "{\n\"experiment\": \"" + name + "\",\n\"scale\": \"" +
                     scale_name() + "\",\n" + baseline_json +
                     "\"metrics\": " + obs::dump_string() + "}\n";
  const char* env = std::getenv("BFHRF_OBS_JSON");
  const std::string path = env != nullptr ? env : ("BENCH_" + name + ".json");
  if (path != "-") {
    std::ofstream out(path);
    if (out) {
      out << blob;
      std::printf("\nmetrics JSON written to %s\n", path.c_str());
    } else {
      std::printf("\nWARNING: could not write metrics JSON to %s\n",
                  path.c_str());
    }
  }
  std::printf("--- BEGIN METRICS JSON (%s) ---\n%s--- END METRICS JSON ---\n",
              name.c_str(), blob.c_str());
}

void print_header(const std::string& experiment,
                  const std::string& paper_ref) {
  stored_slug() = slugify(experiment);
  std::printf("\n============================================================"
              "====\n");
  std::printf("bfhrf reproduction — %s\n", experiment.c_str());
  std::printf("paper: Chon et al., IPDPSW 2022 — %s\n", paper_ref.c_str());
  std::printf("scale: %s (BFHRF_SCALE=smoke|small|paper)   hardware threads:"
              " %u\n",
              scale_name(), std::thread::hardware_concurrency());
  std::printf("time cells: minutes ('*' = rate-extrapolated, as in the "
              "paper); memory cells: engine data-structure MB ('-' = not "
              "run / would exceed budget, as in the paper)\n");
  std::printf("=============================================================="
              "==\n\n");
}

}  // namespace bfhrf::bench
