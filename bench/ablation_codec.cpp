// Ablation A11: vector tree codec front end vs the Newick text front end.
//
// The Newick path pays per-tree for character scanning, label lookups and
// node allocation before bipartition extraction can even start. The
// phylo2vec path replaces all of that with n-1 fixed-width integer codes
// per tree: a .p2v corpus streams raw rows and VectorBipartitionExtractor
// accumulates subtree masks over a flat parent array, so no Tree is ever
// materialized. This bench isolates the codec overhaul:
//
//   load      : stream the corpus and discard rows/trees — pure decode
//               (text parse vs fixed-record reads), plus corpus bytes/sec.
//   frontend  : stream + canonical bipartition extraction per tree — the
//               exact per-tree work the engine's ingest workers perform.
//   e2e       : engine build + self-query (Q == R) streamed from file,
//               Tree ingest vs direct vector ingest across thread counts.
//
// Both corpora are written from the SAME generated tree collection, so
// classic RF averages must agree bitwise across formats (integer-valued:
// ANY difference is a bug, not roundoff).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/bfhrf.hpp"
#include "core/tree_source.hpp"
#include "phylo/bipartition.hpp"
#include "phylo/newick.hpp"
#include "phylo/vector_codec.hpp"
#include "sim/datasets.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bfhrf::bench {
namespace {

std::size_t r_trees() {
  switch (scale()) {
    case Scale::Smoke:
      return 300;
    case Scale::Small:
      return 8000;
    case Scale::Paper:
      return 50000;
  }
  return 0;
}

constexpr std::size_t kTaxa = 144;  // the Insect width (2 words per key)
const std::size_t kThreadCounts[] = {1, 4};

struct RunResult {
  double seconds = 0;
  std::size_t trees = 0;
  std::size_t splits = 0;
  std::vector<double> avg;
};
std::map<std::string, RunResult> g_results;

/// One generated collection, written in both formats so every cell reads
/// the same topologies.
struct Corpus {
  std::string nwk;
  std::string p2v;
  phylo::TaxonSetPtr taxa;
};

const Corpus& corpus() {
  static const Corpus c = [] {
    Corpus out;
    out.nwk = "/tmp/bfhrf_a11_codec.nwk";
    out.p2v = "/tmp/bfhrf_a11_codec.p2v";
    sim::DatasetSpec spec = sim::insect_like(r_trees());
    const sim::Dataset ds = sim::generate(spec);
    const phylo::NewickWriteOptions wopts{.write_lengths = false};
    phylo::write_newick_file(out.nwk, ds.trees, wopts);
    phylo::write_p2v_file(out.p2v, ds.trees);
    out.taxa = ds.taxa;
    return out;
  }();
  return c;
}

std::uintmax_t corpus_bytes(const std::string& path) {
  return std::filesystem::file_size(path);
}

// --- load: stream and discard (decode-only) ---------------------------------

RunResult run_load_newick() {
  const Corpus& c = corpus();  // materialize the dataset before timing
  RunResult out;
  util::WallTimer timer;
  core::FileTreeSource src(c.nwk, c.taxa);
  phylo::Tree tree;
  while (src.next(tree)) {
    ++out.trees;
  }
  out.seconds = timer.seconds();
  return out;
}

RunResult run_load_p2v() {
  const Corpus& c = corpus();
  RunResult out;
  util::WallTimer timer;
  core::P2vFileSource src(c.p2v);
  phylo::TreeVector row;
  while (src.next(row)) {
    ++out.trees;
  }
  out.seconds = timer.seconds();
  return out;
}

// --- frontend: stream + canonical extraction per tree -----------------------

RunResult run_frontend_newick() {
  const Corpus& c = corpus();
  RunResult out;
  util::WallTimer timer;
  core::FileTreeSource src(c.nwk, c.taxa);
  phylo::Tree tree;
  phylo::BipartitionExtractor extractor;
  const phylo::BipartitionOptions opts{};
  while (src.next(tree)) {
    const phylo::BipartitionSet& bips = extractor.extract(tree, opts);
    out.splits += bips.size();
    ++out.trees;
  }
  out.seconds = timer.seconds();
  return out;
}

RunResult run_frontend_vector() {
  const Corpus& c = corpus();
  RunResult out;
  util::WallTimer timer;
  core::P2vFileSource src(c.p2v);
  phylo::TreeVector row;
  phylo::VectorBipartitionExtractor extractor;
  const phylo::BipartitionOptions opts{};
  while (src.next(row)) {
    const phylo::BipartitionSet& bips = extractor.extract(row, opts);
    out.splits += bips.size();
    ++out.trees;
  }
  out.seconds = timer.seconds();
  return out;
}

// --- e2e: engine build + self-query from file -------------------------------

RunResult run_e2e_newick(std::size_t threads) {
  const Corpus& c = corpus();
  RunResult out;
  util::WallTimer timer;
  core::Bfhrf engine(c.taxa->size(), core::BfhrfOptions{.threads = threads});
  core::FileTreeSource reference(c.nwk, c.taxa);
  engine.build(reference);
  reference.reset();
  out.avg = engine.query(reference);
  out.trees = out.avg.size();
  out.seconds = timer.seconds();
  return out;
}

RunResult run_e2e_vector(std::size_t threads) {
  const Corpus& c = corpus();
  RunResult out;
  util::WallTimer timer;
  core::Bfhrf engine(c.taxa->size(), core::BfhrfOptions{.threads = threads});
  core::P2vFileSource reference(c.p2v);
  engine.build(reference);
  reference.reset();
  out.avg = engine.query(reference);
  out.trees = out.avg.size();
  out.seconds = timer.seconds();
  return out;
}

// --- harness ----------------------------------------------------------------

template <typename Fn>
void register_cell(const std::string& label, Fn fn) {
  benchmark::RegisterBenchmark(label.c_str(),
                               [label, fn](benchmark::State& state) {
                                 for (auto _ : state) {
                                   g_results[label] = fn();
                                 }
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

bool same_results(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

double ns_per_tree(const RunResult& r) {
  return r.trees == 0 ? 0.0 : r.seconds * 1e9 / static_cast<double>(r.trees);
}

void report() {
  std::printf("\n--- Ablation A11: Newick front end vs phylo2vec vector "
              "front end (n=%zu, r=q=%zu, streamed from file) ---\n",
              kTaxa, r_trees());

  const double nwk_mb =
      static_cast<double>(corpus_bytes(corpus().nwk)) / (1024.0 * 1024.0);
  const double p2v_mb =
      static_cast<double>(corpus_bytes(corpus().p2v)) / (1024.0 * 1024.0);

  util::TextTable table(
      {"Format", "Corpus(MiB)", "Load(s)", "Load(MiB/s)", "Front end(s)",
       "ns/tree"});
  const RunResult& load_n = g_results["load/newick"];
  const RunResult& load_v = g_results["load/p2v"];
  const RunResult& fe_n = g_results["frontend/newick"];
  const RunResult& fe_v = g_results["frontend/vector"];
  table.add_row({"newick", util::format_fixed(nwk_mb, 1),
                 util::format_fixed(load_n.seconds, 3),
                 util::format_fixed(nwk_mb / load_n.seconds, 1),
                 util::format_fixed(fe_n.seconds, 3),
                 util::format_fixed(ns_per_tree(fe_n), 0)});
  table.add_row({"vector", util::format_fixed(p2v_mb, 1),
                 util::format_fixed(load_v.seconds, 3),
                 util::format_fixed(p2v_mb / load_v.seconds, 1),
                 util::format_fixed(fe_v.seconds, 3),
                 util::format_fixed(ns_per_tree(fe_v), 0)});
  table.print(std::cout);

  std::printf("\nEnd-to-end engine (build + self-query, streamed):\n");
  util::TextTable e2e({"Threads", "newick(s)", "vector(s)", "Speedup"});
  for (const std::size_t t : kThreadCounts) {
    const RunResult& n = g_results["e2e/newick/t" + std::to_string(t)];
    const RunResult& v = g_results["e2e/vector/t" + std::to_string(t)];
    e2e.add_row({std::to_string(t), util::format_fixed(n.seconds, 2),
                 util::format_fixed(v.seconds, 2),
                 util::format_fixed(n.seconds / v.seconds, 2) + "x"});
  }
  e2e.print(std::cout);

  // Correctness first: same trees in, so classic RF averages (integers
  // divided by a count) must agree bitwise between the two ingest forms.
  bool all_equal = true;
  for (const std::size_t t : kThreadCounts) {
    const RunResult& n = g_results["e2e/newick/t" + std::to_string(t)];
    const RunResult& v = g_results["e2e/vector/t" + std::to_string(t)];
    if (!same_results(n.avg, v.avg)) {
      all_equal = false;
      std::printf("MISMATCH: e2e t=%zu vector differs from newick\n", t);
    }
  }
  verdict("vector and Newick ingest agree bitwise", all_equal,
          std::to_string(std::size(kThreadCounts)) + " thread counts x " +
              std::to_string(g_results["e2e/newick/t1"].avg.size()) +
              " averages");

  verdict("both front ends extract the same split volume",
          fe_n.splits == fe_v.splits,
          std::to_string(fe_n.splits) + " vs " + std::to_string(fe_v.splits));

  const double ratio = fe_v.seconds / fe_n.seconds;
  verdict("vector front end >= 2x faster than Newick front end",
          fe_v.seconds * 2.0 <= fe_n.seconds,
          util::format_fixed(fe_n.seconds / fe_v.seconds, 2) + "x (" +
              util::format_fixed(ns_per_tree(fe_n), 0) + " -> " +
              util::format_fixed(ns_per_tree(fe_v), 0) + " ns/tree)");

  verdict(".p2v corpus smaller than the Newick corpus", p2v_mb < nwk_mb,
          util::format_fixed(p2v_mb, 1) + " MiB vs " +
              util::format_fixed(nwk_mb, 1) + " MiB");

  record_baseline("codec.load.newick.ns_per_tree", ns_per_tree(load_n));
  record_baseline("codec.load.p2v.ns_per_tree", ns_per_tree(load_v));
  record_baseline("codec.frontend.newick.ns_per_tree", ns_per_tree(fe_n));
  record_baseline("codec.frontend.vector.ns_per_tree", ns_per_tree(fe_v));
  record_baseline("codec.frontend.vector_over_newick_ratio", ratio);
  for (const std::size_t t : kThreadCounts) {
    const RunResult& v = g_results["e2e/vector/t" + std::to_string(t)];
    record_baseline("codec.e2e.vector.t" + std::to_string(t) + ".seconds",
                    v.seconds);
  }
}

}  // namespace
}  // namespace bfhrf::bench

int main(int argc, char** argv) {
  using namespace bfhrf::bench;
  print_header("Ablation A11 — vector tree codec front end",
               "codec overhaul; paper §III representation pipeline");
  register_cell("load/newick", run_load_newick);
  register_cell("load/p2v", run_load_p2v);
  register_cell("frontend/newick", run_frontend_newick);
  register_cell("frontend/vector", run_frontend_vector);
  for (const std::size_t t : kThreadCounts) {
    register_cell("e2e/newick/t" + std::to_string(t),
                  [t] { return run_e2e_newick(t); });
    register_cell("e2e/vector/t" + std::to_string(t),
                  [t] { return run_e2e_vector(t); });
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report();
  export_metrics();
  return 0;
}
