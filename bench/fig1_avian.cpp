// Figure 1 reproduction: Avian dataset (n = 48, r up to 14446).
// Top panel: wall runtime per algorithm over growing r prefixes.
// Bottom panel: memory per algorithm.
//
// The paper's narrative values (§VI-A) are embedded for the full dataset
// point; at reduced scale the same shape must hold: hash methods orders of
// magnitude below the sequential ones, BFHRF below HashRF as r grows.
#include "sweep.hpp"

namespace bfhrf::bench {
namespace {

std::vector<std::size_t> r_points() {
  switch (scale()) {
    case Scale::Smoke:
      return {100, 200};
    case Scale::Small:
      return {600, 1500, 3000, 6000};
    case Scale::Paper:
      return {1000, 5000, 10000, 14446};
  }
  return {};
}

const sim::Dataset& dataset() {
  static const sim::Dataset ds = [] {
    auto spec = sim::avian_like(r_points().back());
    return sim::generate(spec);
  }();
  return ds;
}

PaperTable paper_values() {
  // Fig 1 is a plot; §VI-A gives the full-dataset numbers in prose.
  PaperTable t;
  t[{"DS", 14446}] = {"226.06", "1311"};      // 1.28 GB
  t[{"DSMP8", 14446}] = {"39.00", "1720"};    // 1.68 GB
  t[{"DSMP16", 14446}] = {"27.20", "1720"};
  t[{"HashRF", 14446}] = {"1.65", "461"};     // 0.45 GB
  t[{"BFHRF16", 14446}] = {"0.33", "379"};    // 0.37 GB
  t[{"DS", 1000}] = {"1.28", ""};
  return t;
}

void report() {
  const auto points = r_points();
  print_sweep_table("Fig 1: Avian runtime & memory", 48, points,
                    paper_values(),
                    std::vector<std::size_t>{1000, 14446});
  print_r_sweep_verdicts(points);

  // Fig 1's headline dichotomy: hash-based beats sequential at max r.
  const auto& res = Results::instance();
  const std::size_t r_max = points.back();
  const auto ds = res.find("DS", 48, r_max);
  const auto hashrf = res.find("HashRF", 48, r_max);
  const auto bfh = res.find("BFHRF16", 48, r_max);
  if (ds && hashrf && !hashrf->skipped && bfh) {
    verdict("hash methods beat sequential at max r (Fig 1)",
            hashrf->seconds < ds->seconds && bfh->seconds < ds->seconds,
            "DS=" + time_cell(*ds) + "m HashRF=" + time_cell(*hashrf) +
                "m BFHRF16=" + time_cell(*bfh) + "m");
  }
}

}  // namespace
}  // namespace bfhrf::bench

int main(int argc, char** argv) {
  using namespace bfhrf::bench;
  print_header("Figure 1 — Avian data set (n=48)",
               "Fig. 1 and §VI-A; dataset per Table II (Jarvis et al. "
               "2014), substituted per DESIGN.md");
  register_r_sweep(dataset(), r_points(), RunBudget::for_scale(scale()));
  return sweep_main(argc, argv, &report);
}
