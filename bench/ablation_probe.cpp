// Ablation A8: scalar linear probing vs SIMD group probing (PR5).
//
// The FrequencyHash probe loop was rewritten from one-slot-at-a-time linear
// probing over 16-byte slots (stored fingerprint) to Swiss-table-style
// group probing: a separate control-byte directory holds a 7-bit tag per
// slot, and a probe inspects 16 tags at once (SSE2/NEON, or a portable
// SWAR fallback) before touching any slot or key memory. Slots shrink to
// 8 bytes because the fingerprint moved into the control byte + rehash
// recomputation (DESIGN.md §5).
//
// This bench isolates that change on the BFHRF build/query workload: the
// per-tree bipartition arenas of an insect-like collection (n = 144, three
// words per key) are fed through add_many / frequency_many exactly as
// core::Bfhrf feeds them. Three ablations:
//
//   scalar      — bench-local replica of the pre-PR5 table (16-byte slots,
//                 fingerprint fast-path, slot-at-a-time probing, same
//                 3-stage prefetch pipeline).
//   group+swar  — the new table with vector ISE disabled (forced SWAR).
//   group+simd  — the new table at the host's native dispatch level
//                 (SSE2 group matching; AVX2 bitset kernels).
//
// Medians land in BENCH_PR5.json via record_baseline for
// scripts/bench_compare.py to gate on.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/frequency_hash.hpp"
#include "obs/metrics.hpp"
#include "phylo/bipartition.hpp"
#include "sim/datasets.hpp"
#include "util/bitset.hpp"
#include "util/hash.hpp"
#include "util/simd.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bfhrf::bench {
namespace {

// Sized so that at Small the SCALAR table's working set (16-byte slots +
// key arena) spills the 2 MiB L2 this host carries — the regime the
// paper's r >= thousands collections live in, and the one group probing
// is designed for. Smoke stays cache-resident on purpose: it shows the
// (adverse) in-cache contrast alongside the memory-bound headline.
std::size_t r_trees() {
  switch (scale()) {
    case Scale::Smoke:
      return 48;
    case Scale::Small:
      return 3200;
    case Scale::Paper:
      return 12800;
  }
  return 0;
}

constexpr std::size_t kReps = 9;  // odd: the median is a real sample

// Pre-PR5 probe accounting, replicated faithfully in the scalar baseline:
// one thread-local counter flush per probe walk. (The shipped table now
// accumulates these locally and flushes once per batch — that bookkeeping
// change is part of what this ablation measures.)
const obs::Counter g_scalar_probes =
    obs::counter("core.frequency_hash.probes");
const obs::Counter g_scalar_collisions =
    obs::counter("core.frequency_hash.collisions");

void record_scalar_probe(std::size_t steps) noexcept {
  g_scalar_probes.inc(steps);
  if (steps > 1) {
    g_scalar_collisions.inc(steps - 1);
  }
}

/// The extracted per-tree bipartition arenas — the exact stream BFHRF's
/// build/query loops feed the hash. R = first half of the collection,
/// Q = the whole collection, so queries mix resident keys with novel
/// splits (the empty-group early exit) the way Bfhrf::query does.
struct Workload {
  std::size_t n_bits = 0;
  std::vector<phylo::BipartitionSet> sets;
  std::size_t build_sets = 0;
  std::size_t build_keys = 0;
  std::size_t query_keys = 0;
  std::size_t unique = 0;  ///< distinct splits in R (pre-sizing hint)
  std::size_t max_set = 0;
};

const Workload& workload() {
  static const Workload w = [] {
    const sim::Dataset ds = sim::generate(sim::insect_like(r_trees()));
    Workload out;
    out.n_bits = ds.spec.n_taxa;
    phylo::BipartitionExtractor extractor;
    phylo::BipartitionOptions opts;
    opts.sorted = false;  // the hash path's unsorted fast extraction
    out.sets.reserve(ds.trees.size());
    for (const auto& tree : ds.trees) {
      phylo::BipartitionSet set;
      extractor.extract_into(tree, opts, set);
      out.sets.push_back(std::move(set));
    }
    out.build_sets = (out.sets.size() + 1) / 2;
    for (std::size_t i = 0; i < out.sets.size(); ++i) {
      if (i < out.build_sets) {
        out.build_keys += out.sets[i].size();
      }
      out.query_keys += out.sets[i].size();
      out.max_set = std::max(out.max_set, out.sets[i].size());
    }
    // Count R's distinct splits once so every measured run pre-sizes
    // identically and no rehash lands inside a timed region.
    core::FrequencyHash counter(out.n_bits, 0);
    for (std::size_t i = 0; i < out.build_sets; ++i) {
      counter.add_many(out.sets[i].arena_view().data(), out.sets[i].size(),
                       nullptr);
    }
    out.unique = counter.unique_count();
    return out;
  }();
  return w;
}

// --- scalar-probe baseline ---------------------------------------------------

/// Bench-local replica of the pre-PR5 FrequencyHash: open addressing over
/// 16-byte slots with a stored fingerprint fast-path, probing one slot at
/// a time, including the original 3-stage software-prefetch pipeline and
/// the original per-walk probe-counter recording (the new table batches
/// that bookkeeping per call — part of what is being measured). Kept here
/// (not in src/) so the shipped table has exactly one implementation.
class ScalarProbeHash {
 public:
  ScalarProbeHash(std::size_t n_bits, std::size_t expected_unique)
      : words_per_(util::words_for_bits(n_bits)) {
    std::size_t want = 16;
    while (static_cast<double>(expected_unique) >
           kMaxLoad * static_cast<double>(want)) {
      want <<= 1;
    }
    slots_.assign(want, Slot{});
    keys_.reserve(expected_unique * words_per_);
  }

  [[nodiscard]] std::size_t unique_count() const noexcept { return size_; }

  void add_many(const std::uint64_t* keys, std::size_t count,
                const double* /*weights*/) {
    if (count == 0) {
      return;
    }
    if (static_cast<double>(size_ + count) >
        kMaxLoad * static_cast<double>(slots_.size())) {
      std::size_t want = slots_.size();
      while (static_cast<double>(size_ + count) >
             kMaxLoad * static_cast<double>(want)) {
        want <<= 1;
      }
      rehash(want);
    }
    const std::size_t wp = words_per_;
    const std::size_t mask = slots_.size() - 1;
    std::uint64_t fps[kSlotAhead];
    const std::size_t warm = count < kSlotAhead ? count : kSlotAhead;
    for (std::size_t i = 0; i < warm; ++i) {
      const std::uint64_t fp = util::hash_words(key_i(keys, i));
      fps[i % kSlotAhead] = fp;
      __builtin_prefetch(&slots_[static_cast<std::size_t>(fp) & mask], 1);
    }
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t fp = fps[i % kSlotAhead];
      if (i + kSlotAhead < count) {
        const std::uint64_t ahead = util::hash_words(key_i(keys, i + kSlotAhead));
        fps[(i + kSlotAhead) % kSlotAhead] = ahead;
        __builtin_prefetch(&slots_[static_cast<std::size_t>(ahead) & mask], 1);
      }
      if (i + kKeyAhead < count) {
        const std::uint64_t near = fps[(i + kKeyAhead) % kSlotAhead];
        const Slot& ns = slots_[static_cast<std::size_t>(near) & mask];
        if (ns.count != 0) {
          __builtin_prefetch(keys_.data() +
                             static_cast<std::size_t>(ns.key_index) * wp);
        }
      }
      const std::size_t idx = probe(key_i(keys, i), fp);
      Slot& s = slots_[idx];
      if (s.count == 0) {
        s.fingerprint = fp;
        s.key_index = static_cast<std::uint32_t>(keys_.size() / wp);
        keys_.insert(keys_.end(), keys + i * wp, keys + (i + 1) * wp);
        ++size_;
      }
      s.count += 1;
    }
  }

  void frequency_many(const std::uint64_t* keys, std::size_t count,
                      std::uint32_t* out) const {
    const std::size_t wp = words_per_;
    const std::size_t mask = slots_.size() - 1;
    std::uint64_t fps[kSlotAhead];
    const std::size_t warm = count < kSlotAhead ? count : kSlotAhead;
    for (std::size_t i = 0; i < warm; ++i) {
      const std::uint64_t fp = util::hash_words(key_i(keys, i));
      fps[i % kSlotAhead] = fp;
      __builtin_prefetch(&slots_[static_cast<std::size_t>(fp) & mask]);
    }
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t fp = fps[i % kSlotAhead];
      if (i + kSlotAhead < count) {
        const std::uint64_t ahead = util::hash_words(key_i(keys, i + kSlotAhead));
        fps[(i + kSlotAhead) % kSlotAhead] = ahead;
        __builtin_prefetch(&slots_[static_cast<std::size_t>(ahead) & mask]);
      }
      if (i + kKeyAhead < count) {
        const std::uint64_t near = fps[(i + kKeyAhead) % kSlotAhead];
        const Slot& s = slots_[static_cast<std::size_t>(near) & mask];
        if (s.count != 0) {
          __builtin_prefetch(keys_.data() +
                             static_cast<std::size_t>(s.key_index) * wp);
        }
      }
      out[i] = slots_[probe(key_i(keys, i), fp)].count;
    }
  }

 private:
  struct Slot {
    std::uint64_t fingerprint = 0;
    std::uint32_t key_index = 0;
    std::uint32_t count = 0;
  };
  static constexpr double kMaxLoad = 0.7;
  static constexpr std::size_t kSlotAhead = 8;
  static constexpr std::size_t kKeyAhead = 4;

  [[nodiscard]] util::ConstWordSpan key_i(const std::uint64_t* keys,
                                          std::size_t i) const noexcept {
    return {keys + i * words_per_, words_per_};
  }

  [[nodiscard]] util::ConstWordSpan key_at(std::uint32_t index) const noexcept {
    return {keys_.data() + static_cast<std::size_t>(index) * words_per_,
            words_per_};
  }

  [[nodiscard]] std::size_t probe(util::ConstWordSpan key,
                                  std::uint64_t fp) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = static_cast<std::size_t>(fp) & mask;
    std::size_t steps = 1;
    while (true) {
      const Slot& s = slots_[idx];
      if (s.count == 0 ||
          (s.fingerprint == fp && util::equal_words(key_at(s.key_index), key))) {
        record_scalar_probe(steps);
        return idx;
      }
      idx = (idx + 1) & mask;
      ++steps;
    }
  }

  void rehash(std::size_t new_slot_count) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slot_count, Slot{});
    const std::size_t mask = new_slot_count - 1;
    for (const Slot& s : old) {
      if (s.count == 0) {
        continue;
      }
      std::size_t idx = static_cast<std::size_t>(s.fingerprint) & mask;
      while (slots_[idx].count != 0) {
        idx = (idx + 1) & mask;
      }
      slots_[idx] = s;
    }
  }

  std::size_t words_per_ = 0;
  std::size_t size_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint64_t> keys_;
};

// --- measurement -------------------------------------------------------------

struct Outcome {
  double build_ns = 0;  ///< median ns per inserted key
  double query_ns = 0;  ///< median ns per looked-up key
};

std::map<std::string, Outcome>& outcomes() {
  static std::map<std::string, Outcome> o;
  return o;
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

template <typename Table>
void build_into(Table& table, const Workload& w) {
  for (std::size_t i = 0; i < w.build_sets; ++i) {
    table.add_many(w.sets[i].arena_view().data(), w.sets[i].size(), nullptr);
  }
}

template <typename Table>
double build_once(const Workload& w) {
  Table table(w.n_bits, w.unique);
  util::WallTimer timer;
  build_into(table, w);
  const double s = timer.seconds();
  benchmark::DoNotOptimize(table);
  return s;
}

template <typename Table>
double query_once(const Table& table, const Workload& w,
                  std::vector<std::uint32_t>& out, std::uint64_t& checksum) {
  util::WallTimer timer;
  for (const auto& set : w.sets) {
    table.frequency_many(set.arena_view().data(), set.size(), out.data());
    checksum += out[0];
  }
  return timer.seconds();
}

/// Run every ablation's reps interleaved round-robin (rep-major), so slow
/// drift on a shared host — frequency scaling, steal time — lands on each
/// variant equally instead of biasing whole per-variant blocks. The two
/// group-probe query variants share one resident table: the dispatch-level
/// equivalence contract (tests/util/simd_test.cpp) makes its layout
/// byte-identical whichever level built it.
void run_all_measurements() {
  static bool done = false;
  if (done) {
    return;
  }
  done = true;
  using Level = util::simd::Level;
  const Workload& w = workload();
  std::vector<std::uint32_t> out(w.max_set);

  std::vector<double> b_scalar, b_swar, b_simd;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    b_scalar.push_back(build_once<ScalarProbeHash>(w));
    util::simd::set_force_level(Level::Swar);
    b_swar.push_back(build_once<core::FrequencyHash>(w));
    util::simd::set_force_level(std::nullopt);
    b_simd.push_back(build_once<core::FrequencyHash>(w));
  }

  ScalarProbeHash scalar_table(w.n_bits, w.unique);
  build_into(scalar_table, w);
  core::FrequencyHash group_table(w.n_bits, w.unique);
  build_into(group_table, w);
  std::uint64_t checksum = 0;
  std::vector<double> q_scalar, q_swar, q_simd;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    q_scalar.push_back(query_once(scalar_table, w, out, checksum));
    util::simd::set_force_level(Level::Swar);
    q_swar.push_back(query_once(group_table, w, out, checksum));
    util::simd::set_force_level(std::nullopt);
    q_simd.push_back(query_once(group_table, w, out, checksum));
  }
  benchmark::DoNotOptimize(checksum);

  const auto to_outcome = [&](const std::vector<double>& build_s,
                              const std::vector<double>& query_s) {
    return Outcome{
        median_of(build_s) * 1e9 / static_cast<double>(w.build_keys),
        median_of(query_s) * 1e9 / static_cast<double>(w.query_keys)};
  };
  outcomes()["scalar"] = to_outcome(b_scalar, q_scalar);
  outcomes()["group+swar"] = to_outcome(b_swar, q_swar);
  outcomes()["group+simd"] = to_outcome(b_simd, q_simd);
}

void run_variant(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    run_all_measurements();
  }
  const Outcome out = outcomes()[name];
  state.counters["build_ns_per_key"] = out.build_ns;
  state.counters["query_ns_per_key"] = out.query_ns;
}

// --- bitset kernel micro-section ---------------------------------------------

struct BitsetOutcome {
  double swar_ns = 0;  ///< ns per word, fused popcount(a & b), forced SWAR
  double simd_ns = 0;  ///< same kernel at the native dispatch level
};

BitsetOutcome bitset_micro() {
  constexpr std::size_t kWords = 1 << 14;  // 128 KiB per operand
  constexpr std::size_t kIters = 64;
  std::vector<std::uint64_t> a(kWords);
  std::vector<std::uint64_t> b(kWords);
  for (std::size_t i = 0; i < kWords; ++i) {
    a[i] = util::mix64(0x9e3779b97f4a7c15ULL + i);
    b[i] = util::mix64(0xbf58476d1ce4e5b9ULL + i);
  }
  const util::ConstWordSpan sa{a.data(), kWords};
  const util::ConstWordSpan sb{b.data(), kWords};
  const auto run = [&] {
    std::size_t sink = 0;
    util::WallTimer timer;
    for (std::size_t it = 0; it < kIters; ++it) {
      sink += util::popcount_and(sa, sb);
      sink += util::popcount_andnot(sa, sb);
    }
    benchmark::DoNotOptimize(sink);
    return timer.seconds() * 1e9 / static_cast<double>(2 * kIters * kWords);
  };
  BitsetOutcome out;
  util::simd::set_force_level(util::simd::Level::Swar);
  (void)run();  // warm
  out.swar_ns = run();
  util::simd::set_force_level(std::nullopt);
  (void)run();
  out.simd_ns = run();
  return out;
}

// --- report ------------------------------------------------------------------

void report() {
  const Workload& w = workload();
  std::printf("\n--- Ablation A8: probe strategy (n=%zu, R=%zu trees / "
              "%zu keys, Q=%zu keys, U=%zu unique) ---\n",
              w.n_bits, w.build_sets, w.build_keys, w.query_keys, w.unique);
  util::TextTable table(
      {"Ablation", "Probe", "Build ns/key", "Query ns/key", "Query speedup"});
  const Outcome scalar = outcomes()["scalar"];
  for (const char* name : {"scalar", "group+swar", "group+simd"}) {
    const Outcome& o = outcomes()[name];
    table.add_row({name,
                   std::string(name) == "scalar" ? "slot-at-a-time"
                                                 : "16-wide group",
                   util::format_fixed(o.build_ns, 1),
                   util::format_fixed(o.query_ns, 1),
                   util::format_fixed(scalar.query_ns / o.query_ns, 2) + "x"});
  }
  table.print(std::cout);

  const Outcome swar = outcomes()["group+swar"];
  const Outcome simd = outcomes()["group+simd"];
  const BitsetOutcome bits = bitset_micro();
  std::printf("\nbitset fused popcount kernels: %.3f ns/word SWAR, "
              "%.3f ns/word native (%.2fx)\n",
              bits.swar_ns, bits.simd_ns, bits.swar_ns / bits.simd_ns);

  const double query_speedup = scalar.query_ns / simd.query_ns;
  const double build_speedup = scalar.build_ns / simd.build_ns;
  verdict("group probe >= 1.15x scalar probe (query)", query_speedup >= 1.15,
          "median query speedup " + util::format_fixed(query_speedup, 2) +
              "x (build " + util::format_fixed(build_speedup, 2) + "x)");
  verdict("SWAR fallback holds its own vs scalar probe",
          swar.query_ns <= scalar.query_ns * 1.05,
          "SWAR query " + util::format_fixed(scalar.query_ns / swar.query_ns,
                                             2) + "x scalar");
  verdict("vector bitset kernels not slower than SWAR",
          bits.simd_ns <= bits.swar_ns * 1.05,
          util::format_fixed(bits.swar_ns / bits.simd_ns, 2) +
              "x on fused popcount");

  record_baseline("probe.scalar.build_ns_per_key", scalar.build_ns);
  record_baseline("probe.scalar.query_ns_per_key", scalar.query_ns);
  record_baseline("probe.group_swar.build_ns_per_key", swar.build_ns);
  record_baseline("probe.group_swar.query_ns_per_key", swar.query_ns);
  record_baseline("probe.group_simd.build_ns_per_key", simd.build_ns);
  record_baseline("probe.group_simd.query_ns_per_key", simd.query_ns);
  record_baseline("bitset.popcount_fused.swar_ns_per_word", bits.swar_ns);
  record_baseline("bitset.popcount_fused.simd_ns_per_word", bits.simd_ns);
}

}  // namespace
}  // namespace bfhrf::bench

int main(int argc, char** argv) {
  using namespace bfhrf::bench;
  print_header("Ablation A8 — scalar vs SIMD group probing",
               "DESIGN.md §5; FrequencyHash probe ablation");
  std::printf(
      "simd: compiled %s, active %s\n",
      bfhrf::util::simd::level_name(bfhrf::util::simd::compiled_level()).data(),
      bfhrf::util::simd::level_name(bfhrf::util::simd::active_level()).data());

  benchmark::RegisterBenchmark("probe/scalar", [](benchmark::State& s) {
    run_variant(s, "scalar");
  })->Iterations(1)->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("probe/group_swar", [](benchmark::State& s) {
    run_variant(s, "group+swar");
  })->Iterations(1)->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("probe/group_simd", [](benchmark::State& s) {
    run_variant(s, "group+simd");
  })->Iterations(1)->Unit(benchmark::kMillisecond);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report();
  export_metrics("PR5");
  return 0;
}
