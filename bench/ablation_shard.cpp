// Ablation A9: sharded index build vs single-table partials merge (PR7).
//
// The multi-threaded single-table build gives every worker a private
// FrequencyHash partial and pays a pairwise merge at the end — each unique
// bipartition is inserted twice (once into a partial, once during the
// merge), and on unique-heavy collections the merge is effectively a
// second full build. The sharded build routes keys by the top bits of
// their fingerprint into 2^b owner shards instead: workers fill per-shard
// staging buckets during extraction, then disjoint shard ranges are
// drained with no contention and no merge — each key is inserted exactly
// once (DESIGN.md §6).
//
// This bench measures that contrast on a unique-heavy collection (n = 144,
// high discordance, so most splits appear once), plus the other half of
// PR7: cold-start cost of the two on-disk formats. The v1 stream must
// re-insert every key on load; the BFHMAP layout is mmap-ed and queried
// in place, so its cold load is metadata validation only.
//
//   single@1   — threads=1, shards=1: the serial reference.
//   single@8   — threads=8, shards=1: per-thread partials + pairwise merge.
//   sharded@8  — threads=8, shards=8: routed build, no merge phase.
//
// Medians land in BENCH_PR7.json via record_baseline for
// scripts/bench_compare.py to gate on. The headline gate is the
// sharded/single ratio at 8 threads: the routed build must hold a >= 1.3x
// lead, even on hosts narrower than 8 cores (the win is avoided merge
// work, not extra parallelism, so it survives timeslicing).
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/bfhrf.hpp"
#include "core/serialize.hpp"
#include "core/sharded_hash.hpp"
#include "sim/datasets.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bfhrf::bench {
namespace {

constexpr std::size_t kThreads = 8;  // paper-style label; timesliced if narrower
constexpr std::size_t kShards = 8;
constexpr std::size_t kReps = 5;  // odd: the median is a real sample

std::size_t r_trees() {
  switch (scale()) {
    case Scale::Smoke:
      return 64;
    case Scale::Small:
      return 2000;
    case Scale::Paper:
      return 20000;
  }
  return 0;
}

/// Unique-heavy collection: insect-like width (n=144, three words per key)
/// but with enough SPR/NNI discordance that most non-trivial splits appear
/// in exactly one tree — the regime where the partials merge is a second
/// full build and sharding has the most to win.
struct Workload {
  sim::Dataset ds;
  std::size_t total_keys = 0;  ///< bipartitions inserted during a build
  std::size_t unique = 0;      ///< distinct splits (pre-sizing hint)
};

const Workload& workload() {
  static const Workload w = [] {
    sim::DatasetSpec spec = sim::insect_like(r_trees());
    spec.name = "shard-ablation";
    spec.moves_per_tree = 96;  // near-random trees: mostly singleton splits
    Workload out;
    out.ds = sim::generate(spec);
    // One untimed build discovers U and the key volume so every measured
    // run pre-sizes identically and no rehash lands in a timed region.
    core::Bfhrf probe(out.ds.taxa->size(), {.threads = 1});
    probe.build(out.ds.trees);
    out.unique = probe.stats().unique_bipartitions;
    out.total_keys = probe.stats().total_bipartitions;
    return out;
  }();
  return w;
}

core::BfhrfOptions engine_opts(std::size_t threads, std::size_t shards) {
  core::BfhrfOptions o;
  o.threads = threads;
  o.shards = shards;
  o.expected_unique = workload().unique;
  return o;
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

struct BuildOutcome {
  double ns_per_key = 0;
  double seconds = 0;
};

BuildOutcome measure_build(std::size_t threads, std::size_t shards) {
  const Workload& w = workload();
  std::vector<double> secs;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    core::Bfhrf engine(w.ds.taxa->size(), engine_opts(threads, shards));
    util::WallTimer timer;
    engine.build(w.ds.trees);
    secs.push_back(timer.seconds());
    benchmark::DoNotOptimize(engine.stats().unique_bipartitions);
  }
  const double med = median_of(secs);
  return {med * 1e9 / static_cast<double>(w.total_keys), med};
}

// --- cold-load section -------------------------------------------------------

struct LoadOutcome {
  double v1_seconds = 0;      ///< median full-parse load of the v1 stream
  double mapped_seconds = 0;  ///< median mmap open of the BFHMAP layout
  bool results_identical = false;
};

std::string scratch_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("bfhrf_shard_bench_" + std::to_string(::getpid()) + "." + tag))
      .string();
}

LoadOutcome measure_cold_load(const std::vector<double>& want) {
  const Workload& w = workload();
  // The persisted index comes from the sharded build: the writer compacts
  // every shard into one contiguous section per shard.
  core::Bfhrf built(w.ds.taxa->size(), engine_opts(kThreads, kShards));
  built.build(w.ds.trees);
  const std::string v1_path = scratch_path("v1");
  const std::string mapped_path = scratch_path("bfhmap");
  core::save_bfhrf_file(built, v1_path, core::IndexFormat::V1Stream);
  core::save_bfhrf_file(built, mapped_path, core::IndexFormat::Mapped);

  LoadOutcome out;
  std::vector<double> v1_secs, mapped_secs;
  out.results_identical = true;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    {
      util::WallTimer timer;
      core::Bfhrf engine = core::load_bfhrf_file(v1_path);
      v1_secs.push_back(timer.seconds());
      const auto got = engine.query(w.ds.trees);
      out.results_identical &=
          std::memcmp(got.data(), want.data(), want.size() * sizeof(double)) ==
          0;
    }
    {
      util::WallTimer timer;
      core::Bfhrf engine = core::load_bfhrf_file(mapped_path);
      mapped_secs.push_back(timer.seconds());
      const auto got = engine.query(w.ds.trees);
      out.results_identical &=
          std::memcmp(got.data(), want.data(), want.size() * sizeof(double)) ==
          0;
    }
  }
  std::filesystem::remove(v1_path);
  std::filesystem::remove(mapped_path);
  out.v1_seconds = median_of(v1_secs);
  out.mapped_seconds = median_of(mapped_secs);
  return out;
}

// --- measurement + report ----------------------------------------------------

struct Outcomes {
  BuildOutcome single_t1;
  BuildOutcome single_t8;
  BuildOutcome sharded_t8;
  LoadOutcome load;
};

Outcomes& outcomes() {
  static Outcomes o;
  return o;
}

void run_all_measurements() {
  static bool done = false;
  if (done) {
    return;
  }
  done = true;
  const Workload& w = workload();
  // Correctness pin before any timing: the three builds must agree
  // bit-for-bit on the self-query, and the sharded engine must actually
  // hold a ShardedFrequencyHash.
  core::Bfhrf single(w.ds.taxa->size(), engine_opts(1, 1));
  single.build(w.ds.trees);
  const auto want = single.query(w.ds.trees);
  core::Bfhrf sharded(w.ds.taxa->size(), engine_opts(kThreads, kShards));
  sharded.build(w.ds.trees);
  if (dynamic_cast<const core::ShardedFrequencyHash*>(&sharded.store()) ==
      nullptr) {
    std::fprintf(stderr, "FATAL: sharded engine did not build shards\n");
    std::exit(1);
  }
  const auto got = sharded.query(w.ds.trees);
  if (std::memcmp(got.data(), want.data(), want.size() * sizeof(double)) !=
      0) {
    std::fprintf(stderr, "FATAL: sharded build diverged from single-table\n");
    std::exit(1);
  }

  // Interleave variants rep-major inside measure_build would need shared
  // state; builds are long enough (>> scheduler quantum) that per-variant
  // blocks are stable, matching the other engine-level ablations.
  outcomes().single_t1 = measure_build(1, 1);
  outcomes().single_t8 = measure_build(kThreads, 1);
  outcomes().sharded_t8 = measure_build(kThreads, kShards);
  outcomes().load = measure_cold_load(want);
}

void run_variant(benchmark::State& state, const char* which) {
  for (auto _ : state) {
    run_all_measurements();
  }
  const Outcomes& o = outcomes();
  if (std::string(which) == "single_t1") {
    state.counters["build_ns_per_key"] = o.single_t1.ns_per_key;
  } else if (std::string(which) == "single_t8") {
    state.counters["build_ns_per_key"] = o.single_t8.ns_per_key;
  } else {
    state.counters["build_ns_per_key"] = o.sharded_t8.ns_per_key;
  }
}

void report() {
  const Workload& w = workload();
  const Outcomes& o = outcomes();
  std::printf("\n--- Ablation A9: sharded build (n=%zu, R=%zu trees, "
              "%zu keys, U=%zu unique, %.0f%% singleton-heavy) ---\n",
              w.ds.taxa->size(), w.ds.trees.size(), w.total_keys, w.unique,
              100.0 * static_cast<double>(w.unique) /
                  static_cast<double>(w.total_keys));
  util::TextTable table(
      {"Ablation", "Threads", "Shards", "Build ns/key", "vs single@8"});
  const auto row = [&](const char* name, std::size_t t, std::size_t s,
                       const BuildOutcome& b) {
    table.add_row({name, std::to_string(t), std::to_string(s),
                   util::format_fixed(b.ns_per_key, 1),
                   util::format_fixed(o.single_t8.ns_per_key / b.ns_per_key,
                                      2) +
                       "x"});
  };
  row("single@1", 1, 1, o.single_t1);
  row("single@8", kThreads, 1, o.single_t8);
  row("sharded@8", kThreads, kShards, o.sharded_t8);
  table.print(std::cout);

  const double speedup = o.single_t8.ns_per_key / o.sharded_t8.ns_per_key;
  std::printf("\ncold load (%zu unique keys): v1 parse %.3f ms, "
              "mmap open %.3f ms (%.1fx)\n",
              w.unique, o.load.v1_seconds * 1e3, o.load.mapped_seconds * 1e3,
              o.load.v1_seconds /
                  std::max(o.load.mapped_seconds, 1e-9));

  verdict("sharded build >= 1.3x single-table at 8 threads", speedup >= 1.3,
          "sharded " + util::format_fixed(speedup, 2) +
              "x single-table (merge phase eliminated)");
  verdict("mmap cold load cheaper than v1 full parse",
          o.load.mapped_seconds <= o.load.v1_seconds,
          "mmap " + util::format_fixed(o.load.v1_seconds /
                                           std::max(o.load.mapped_seconds,
                                                    1e-9),
                                       1) + "x faster");
  verdict("mapped + v1 loads serve bit-identical RF results",
          o.load.results_identical,
          o.load.results_identical ? "all query vectors byte-equal"
                                   : "DIVERGENCE between load paths");

  record_baseline("shard.build.t1.single_ns_per_key", o.single_t1.ns_per_key);
  record_baseline("shard.build.t8.single_ns_per_key", o.single_t8.ns_per_key);
  record_baseline("shard.build.t8.sharded_ns_per_key",
                  o.sharded_t8.ns_per_key);
  // The headline gate, phrased so lower is better for bench_compare.py:
  // sharded/single at 8 threads. <= 0.77 is the >= 1.3x acceptance bar.
  record_baseline("shard.build.t8.sharded_over_single_ratio",
                  o.sharded_t8.ns_per_key / o.single_t8.ns_per_key);
  record_baseline("shard.load.v1_parse_ms", o.load.v1_seconds * 1e3);
  record_baseline("shard.load.mmap_open_ms", o.load.mapped_seconds * 1e3);
}

}  // namespace
}  // namespace bfhrf::bench

int main(int argc, char** argv) {
  using namespace bfhrf::bench;
  print_header("Ablation A9 — sharded build + mmap index",
               "DESIGN.md §6; sharded build / index format ablation");

  benchmark::RegisterBenchmark("shard/single_t1", [](benchmark::State& s) {
    run_variant(s, "single_t1");
  })->Iterations(1)->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("shard/single_t8", [](benchmark::State& s) {
    run_variant(s, "single_t8");
  })->Iterations(1)->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("shard/sharded_t8", [](benchmark::State& s) {
    run_variant(s, "sharded_t8");
  })->Iterations(1)->Unit(benchmark::kMillisecond);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report();
  export_metrics("PR7");
  return 0;
}
