// Ablation A1: collision-free vs compressed hashing.
//
// The paper's central data-structure argument (§III-C): HashRF-style
// compressed fingerprints admit collisions and make RF "potentially
// error-prone", while BFHRF's full-key hash is exact. This bench quantifies
// that trade: for fingerprint widths from 8 to 64 bits we measure runtime
// and count matrix cells that differ from the exact answer.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "common.hpp"
#include "core/hashrf.hpp"
#include "sim/datasets.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bfhrf::bench {
namespace {

std::size_t r_trees() {
  switch (scale()) {
    case Scale::Smoke:
      return 40;
    case Scale::Small:
      return 250;
    case Scale::Paper:
      return 1000;
  }
  return 0;
}

const sim::Dataset& dataset() {
  // Independent (spread-out) trees maximize unique splits and therefore
  // collision pressure.
  static const sim::Dataset ds = [] {
    sim::DatasetSpec spec = sim::variable_trees(r_trees());
    spec.n_taxa = 96;
    spec.moves_per_tree = 200;  // effectively independent topologies
    return sim::generate(spec);
  }();
  return ds;
}

struct Outcome {
  double seconds = 0;
  std::size_t wrong_cells = 0;
  std::size_t max_abs_error = 0;
  std::size_t unique = 0;
};

std::map<unsigned, Outcome>& outcomes() {
  static std::map<unsigned, Outcome> o;
  return o;
}

const core::HashRfResult& exact_result() {
  static const core::HashRfResult exact = core::hash_rf(dataset().trees);
  return exact;
}

void run_width(benchmark::State& state) {
  const auto bits = static_cast<unsigned>(state.range(0));
  const auto& ds = dataset();
  Outcome out;
  for (auto _ : state) {
    util::WallTimer timer;
    core::HashRfOptions opts;
    opts.mode = bits >= 64 ? core::HashRfOptions::Mode::Exact
                           : core::HashRfOptions::Mode::Compressed;
    opts.fingerprint_bits = bits;
    const auto result = core::hash_rf(ds.trees, opts);
    out.seconds = timer.seconds();
    out.unique = result.unique_bipartitions;
    const auto& exact = exact_result();
    for (std::size_t i = 0; i < ds.trees.size(); ++i) {
      for (std::size_t j = i + 1; j < ds.trees.size(); ++j) {
        const auto a = result.matrix.at(i, j);
        const auto b = exact.matrix.at(i, j);
        if (a != b) {
          ++out.wrong_cells;
          const auto err = a > b ? a - b : b - a;
          out.max_abs_error = std::max<std::size_t>(out.max_abs_error, err);
        }
      }
    }
  }
  state.counters["wrong_cells"] = static_cast<double>(out.wrong_cells);
  outcomes()[bits] = out;
}

void report() {
  const std::size_t r = dataset().trees.size();
  const std::size_t pairs = r * (r - 1) / 2;
  std::printf("\n--- Ablation A1: fingerprint width vs RF error (n=96, "
              "r=%zu, independent topologies) ---\n",
              r);
  util::TextTable table({"Fingerprint bits", "Mode", "Time(s)",
                         "Unique keys", "Wrong cells", "Wrong %",
                         "Max |error|"});
  for (const auto& [bits, out] : outcomes()) {
    table.add_row({std::to_string(bits),
                   bits >= 64 ? "exact (BFHRF-style)" : "compressed",
                   util::format_fixed(out.seconds, 3),
                   std::to_string(out.unique),
                   std::to_string(out.wrong_cells),
                   util::format_fixed(100.0 * static_cast<double>(
                                                  out.wrong_cells) /
                                          static_cast<double>(pairs),
                                      2),
                   std::to_string(out.max_abs_error)});
  }
  table.print(std::cout);
  std::printf("\n");

  bool monotone = true;
  std::size_t prev = SIZE_MAX;
  for (const auto& [bits, out] : outcomes()) {
    if (out.wrong_cells > prev) {
      monotone = false;
    }
    prev = out.wrong_cells;
  }
  verdict("error decreases with fingerprint width", monotone,
          "collisions shrink as the key widens");
  const auto it64 = outcomes().find(64);
  if (it64 != outcomes().end()) {
    verdict("full-key verification is collision-free (§III-C)",
            it64->second.wrong_cells == 0,
            "wrong cells at 64-bit+full-key: " +
                std::to_string(it64->second.wrong_cells));
  }
}

}  // namespace
}  // namespace bfhrf::bench

int main(int argc, char** argv) {
  using namespace bfhrf::bench;
  print_header("Ablation A1 — hash collisions vs exactness",
               "§III-C accuracy discussion");
  for (const unsigned bits : {8, 12, 16, 24, 32, 64}) {
    benchmark::RegisterBenchmark(
        ("HashRF/fp_bits=" + std::to_string(bits)).c_str(), &run_width)
        ->Arg(bits)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report();
  return 0;
}
