// Ablation A10: bit-matrix all-pairs engines vs the legacy merge walk (PR8).
//
// The legacy all-pairs engine intersects two sorted bipartition-key sets
// per cell — O(k) word-compares per pair with no reuse across cells. The
// bit-matrix engines pay one FrequencyHash pass to assign every unique
// bipartition a dense universe id, then each cell is either a fused
// popcount-AND over two bit-rows (dense) or a sorted-id intersection
// (sparse), scheduled as cache-sized tiles through a work-stealing queue
// (DESIGN.md §7).
//
// Two workloads bracket the density axis the Auto heuristic splits on:
//
//   birthday-heavy — variable-trees-like (n=100, low discordance): most
//     splits recur across trees, the universe is narrow, rows are dense.
//     The regime where popcount words win big.
//   unique-heavy   — insect-like (n=144, near-random trees): most splits
//     are singletons, the universe is ~r·k wide, rows are nearly empty.
//     Dense rows would scan mostly-zero words; sorted id lists keep the
//     work proportional to actual memberships.
//
// Cells measured per workload: legacy@8, dense@8, sparse@8 (+legacy@1 as
// the serial reference on the birthday side). Medians land in
// BENCH_PR8.json via record_baseline for scripts/bench_compare.py. The
// headline gates: dense must hold >= 2x over legacy at 8 threads on the
// birthday-heavy collection, and sparse must hold parity with legacy on
// the unique-heavy one (the matrix there is intersection-starved, so the
// win is bounded — the gate is "the universe pass costs nothing").
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/all_pairs.hpp"
#include "core/bit_matrix.hpp"
#include "phylo/bipartition.hpp"
#include "sim/datasets.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bfhrf::bench {
namespace {

constexpr std::size_t kThreads = 8;  // paper-style label; timesliced if narrower
constexpr std::size_t kReps = 5;     // odd: the median is a real sample

std::size_t r_trees() {
  switch (scale()) {
    case Scale::Smoke:
      return 48;
    case Scale::Small:
      return 512;
    case Scale::Paper:
      return 4096;
  }
  return 0;
}

struct Workload {
  const char* tag = "";
  sim::Dataset ds;
  core::UniverseStats stats;   ///< from one untimed bit_matrix_rf probe
  std::uint64_t pairs = 0;     ///< r(r-1)/2 matrix cells
};

Workload make_workload(const char* tag, sim::DatasetSpec spec) {
  Workload w;
  w.tag = tag;
  spec.name = std::string("matrix-ablation-") + tag;
  w.ds = sim::generate(spec);
  const std::size_t r = w.ds.trees.size();
  w.pairs = static_cast<std::uint64_t>(r) * (r - 1) / 2;
  // One untimed probe run discovers the universe shape (width, density)
  // for the report and warms the page cache so rep 0 is not an outlier.
  std::vector<phylo::BipartitionSet> sets;
  sets.reserve(r);
  for (const auto& t : w.ds.trees) {
    sets.push_back(phylo::extract_bipartitions(t, {}));
  }
  benchmark::DoNotOptimize(
      core::bit_matrix_rf(sets, {.threads = kThreads}, &w.stats));
  return w;
}

/// Shared splits dominate: low-discordance n=100 trees, narrow universe.
const Workload& birthday() {
  static const Workload w = [] {
    sim::DatasetSpec spec = sim::variable_trees(r_trees());
    spec.moves_per_tree = 4;  // mild discordance: splits recur heavily
    return make_workload("birthday", spec);
  }();
  return w;
}

/// Singleton splits dominate: near-random n=144 trees, wide universe.
const Workload& unique_heavy() {
  static const Workload w = [] {
    sim::DatasetSpec spec = sim::insect_like(r_trees());
    spec.moves_per_tree = 96;  // near-random trees: mostly singleton splits
    return make_workload("unique", spec);
  }();
  return w;
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

struct Timing {
  double seconds = 0;
  double ns_per_pair = 0;
};

Timing measure(const Workload& w, core::AllPairsEngine engine,
               std::size_t threads) {
  std::vector<double> secs;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    util::WallTimer timer;
    const core::RfMatrix m =
        core::all_pairs_rf(w.ds.trees, {.threads = threads, .engine = engine});
    secs.push_back(timer.seconds());
    benchmark::DoNotOptimize(m.size());
  }
  const double med = median_of(secs);
  return {med, med * 1e9 / static_cast<double>(w.pairs)};
}

struct WorkloadOutcome {
  Timing legacy_t1;
  Timing legacy_t8;
  Timing dense_t8;
  Timing sparse_t8;
};

struct Outcomes {
  WorkloadOutcome birthday;
  WorkloadOutcome unique;
};

Outcomes& outcomes() {
  static Outcomes o;
  return o;
}

/// Correctness pin: the three engines must agree cell-for-cell before any
/// timing is trusted. Divergence aborts the whole binary.
void pin_engines_agree(const Workload& w) {
  const core::RfMatrix want =
      core::all_pairs_rf(w.ds.trees, {.engine = core::AllPairsEngine::Legacy});
  for (const core::AllPairsEngine e : {core::AllPairsEngine::BitDense,
                                       core::AllPairsEngine::BitSparse}) {
    const core::RfMatrix got =
        core::all_pairs_rf(w.ds.trees, {.threads = kThreads, .engine = e});
    for (std::size_t i = 0; i < want.size(); ++i) {
      for (std::size_t j = i + 1; j < want.size(); ++j) {
        if (want.at(i, j) != got.at(i, j)) {
          std::fprintf(stderr,
                       "FATAL: %s engine diverged from legacy on %s at "
                       "(%zu,%zu): %u vs %u\n",
                       e == core::AllPairsEngine::BitDense ? "dense" : "sparse",
                       w.tag, i, j, got.at(i, j), want.at(i, j));
          std::exit(1);
        }
      }
    }
  }
}

void run_all_measurements() {
  static bool done = false;
  if (done) {
    return;
  }
  done = true;
  pin_engines_agree(birthday());
  pin_engines_agree(unique_heavy());

  const auto run_workload = [](const Workload& w) {
    WorkloadOutcome o;
    o.legacy_t1 = measure(w, core::AllPairsEngine::Legacy, 1);
    o.legacy_t8 = measure(w, core::AllPairsEngine::Legacy, kThreads);
    o.dense_t8 = measure(w, core::AllPairsEngine::BitDense, kThreads);
    o.sparse_t8 = measure(w, core::AllPairsEngine::BitSparse, kThreads);
    return o;
  };
  outcomes().birthday = run_workload(birthday());
  outcomes().unique = run_workload(unique_heavy());
}

void run_variant(benchmark::State& state, const WorkloadOutcome& wo,
                 const char* which) {
  for (auto _ : state) {
    run_all_measurements();
  }
  const std::string name(which);
  const Timing& t = name == "legacy_t1"   ? wo.legacy_t1
                    : name == "legacy_t8" ? wo.legacy_t8
                    : name == "dense_t8"  ? wo.dense_t8
                                          : wo.sparse_t8;
  state.counters["ns_per_pair"] = t.ns_per_pair;
}

void report() {
  const Outcomes& o = outcomes();
  const auto density_line = [](const Workload& w) {
    std::printf("  %s: n=%zu, R=%zu trees, %llu pairs, U=%zu unique splits, "
                "density %.5f (auto -> %s)\n",
                w.tag, w.ds.taxa->size(), w.ds.trees.size(),
                static_cast<unsigned long long>(w.pairs),
                w.stats.universe_width, w.stats.density(),
                core::pick_bit_engine(w.stats, {}) ==
                        core::AllPairsEngine::BitDense
                    ? "dense"
                    : "sparse");
  };
  std::printf("\n--- Ablation A10: bit-matrix all-pairs engines ---\n");
  density_line(birthday());
  density_line(unique_heavy());

  util::TextTable table(
      {"Workload", "Engine", "Threads", "ns/pair", "vs legacy@8"});
  const auto rows = [&](const char* tag, const WorkloadOutcome& wo) {
    const auto row = [&](const char* engine, std::size_t t, const Timing& x) {
      table.add_row({tag, engine, std::to_string(t),
                     util::format_fixed(x.ns_per_pair, 1),
                     util::format_fixed(wo.legacy_t8.ns_per_pair /
                                            x.ns_per_pair,
                                        2) +
                         "x"});
    };
    row("legacy", 1, wo.legacy_t1);
    row("legacy", kThreads, wo.legacy_t8);
    row("dense", kThreads, wo.dense_t8);
    row("sparse", kThreads, wo.sparse_t8);
  };
  rows("birthday", o.birthday);
  rows("unique", o.unique);
  table.print(std::cout);

  const double dense_speedup =
      o.birthday.legacy_t8.seconds / o.birthday.dense_t8.seconds;
  const double sparse_ratio =
      o.unique.sparse_t8.seconds / o.unique.legacy_t8.seconds;
  verdict("bit-matrix >= 2x legacy at 8 threads (birthday-heavy)",
          dense_speedup >= 2.0,
          "dense " + util::format_fixed(dense_speedup, 2) +
              "x legacy (popcount words vs per-cell merge walk)");
  verdict("sparse path at parity with legacy on unique-heavy",
          sparse_ratio <= 1.05,
          "sparse/legacy = " + util::format_fixed(sparse_ratio, 2) +
              " (universe pass amortized; <= 1.05 is the parity bar)");
  verdict("auto heuristic picks dense/sparse on the right side",
          core::pick_bit_engine(birthday().stats, {}) ==
                  core::AllPairsEngine::BitDense &&
              core::pick_bit_engine(unique_heavy().stats, {}) ==
                  core::AllPairsEngine::BitSparse,
          "birthday density " + util::format_fixed(birthday().stats.density(),
                                                   5) +
              " -> dense, unique density " +
              util::format_fixed(unique_heavy().stats.density(), 5) +
              " -> sparse");

  record_baseline("matrix.birthday.t1.legacy_ns_per_pair",
                  o.birthday.legacy_t1.ns_per_pair);
  record_baseline("matrix.birthday.t8.legacy_ns_per_pair",
                  o.birthday.legacy_t8.ns_per_pair);
  record_baseline("matrix.birthday.t8.dense_ns_per_pair",
                  o.birthday.dense_t8.ns_per_pair);
  record_baseline("matrix.birthday.t8.sparse_ns_per_pair",
                  o.birthday.sparse_t8.ns_per_pair);
  record_baseline("matrix.unique.t8.legacy_ns_per_pair",
                  o.unique.legacy_t8.ns_per_pair);
  record_baseline("matrix.unique.t8.dense_ns_per_pair",
                  o.unique.dense_t8.ns_per_pair);
  record_baseline("matrix.unique.t8.sparse_ns_per_pair",
                  o.unique.sparse_t8.ns_per_pair);
  // Headline gates, phrased so lower is better for bench_compare.py:
  // dense/legacy on the birthday side (<= 0.5 is the >= 2x acceptance bar)
  // and sparse/legacy on the unique side (<= 1.05 is the parity bar).
  record_baseline("matrix.birthday.t8.dense_over_legacy_ratio",
                  o.birthday.dense_t8.seconds / o.birthday.legacy_t8.seconds);
  record_baseline("matrix.unique.t8.sparse_over_legacy_ratio", sparse_ratio);
}

}  // namespace
}  // namespace bfhrf::bench

int main(int argc, char** argv) {
  using namespace bfhrf::bench;
  print_header("Ablation A10 — bit-matrix all-pairs engines",
               "DESIGN.md §7; dense/sparse universe + tile scheduling");

  const auto reg = [](const char* name, const WorkloadOutcome& wo,
                      const char* which) {
    benchmark::RegisterBenchmark(name, [&wo, which](benchmark::State& s) {
      run_variant(s, wo, which);
    })->Iterations(1)->Unit(benchmark::kMillisecond);
  };
  reg("matrix/birthday/legacy_t1", outcomes().birthday, "legacy_t1");
  reg("matrix/birthday/legacy_t8", outcomes().birthday, "legacy_t8");
  reg("matrix/birthday/dense_t8", outcomes().birthday, "dense_t8");
  reg("matrix/birthday/sparse_t8", outcomes().birthday, "sparse_t8");
  reg("matrix/unique/legacy_t8", outcomes().unique, "legacy_t8");
  reg("matrix/unique/dense_t8", outcomes().unique, "dense_t8");
  reg("matrix/unique/sparse_t8", outcomes().unique, "sparse_t8");

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report();
  export_metrics("PR8");
  return 0;
}
