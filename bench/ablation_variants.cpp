// Ablation A5: what does extensibility cost?
//
// The paper's §VII-F pitch is that variants plug into BFHRF "in the same
// manner as traditional RF" — i.e. at no structural cost. This bench
// quantifies the runtime overhead of each shipped variant relative to
// classic RF on one collection, plus the branch-score engine (which needs
// its own per-split length statistics).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "common.hpp"
#include "core/bfhrf.hpp"
#include "core/branch_score.hpp"
#include "core/variants.hpp"
#include "sim/datasets.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bfhrf::bench {
namespace {

std::size_t r_trees() {
  switch (scale()) {
    case Scale::Smoke:
      return 100;
    case Scale::Small:
      return 3000;
    case Scale::Paper:
      return 30000;
  }
  return 0;
}

constexpr std::size_t kTaxa = 100;

const sim::Dataset& dataset() {
  static const sim::Dataset ds = [] {
    sim::DatasetSpec spec = sim::variable_trees(r_trees());
    spec.branch_lengths = true;  // the branch-score row needs lengths
    return sim::generate(spec);
  }();
  return ds;
}

struct Row {
  double seconds = 0;
  std::size_t memory = 0;
};
std::map<std::string, Row>& rows() {
  static std::map<std::string, Row> r;
  return r;
}

void run_variant(benchmark::State& state, const std::string& name,
                 const core::RfVariant* variant) {
  const auto& ds = dataset();
  for (auto _ : state) {
    util::WallTimer timer;
    core::BfhrfOptions opts;
    opts.variant = variant;
    core::Bfhrf engine(kTaxa, opts);
    engine.build(ds.trees);
    benchmark::DoNotOptimize(engine.query(ds.trees));
    rows()[name] = {timer.seconds(), engine.stats().hash_memory_bytes};
  }
}

void run_branch_score(benchmark::State& state) {
  const auto& ds = dataset();
  for (auto _ : state) {
    util::WallTimer timer;
    core::BranchScoreBfhrf engine(kTaxa);
    engine.build(ds.trees);
    benchmark::DoNotOptimize(engine.query(ds.trees));
    rows()["branch-score"] = {timer.seconds(), engine.memory_bytes()};
  }
}

void report() {
  std::printf("\n--- Ablation A5: variant overhead (n=%zu, r=%zu, Q=R) "
              "---\n",
              kTaxa, dataset().trees.size());
  const double base = rows().count("classic") ? rows()["classic"].seconds
                                              : 0.0;
  util::TextTable table({"Variant", "Time(s)", "vs classic", "Store MB"});
  for (const char* name : {"classic", "size-filtered", "info-weighted",
                           "compressed-keys", "branch-score"}) {
    const auto it = rows().find(name);
    if (it == rows().end()) {
      continue;
    }
    table.add_row(
        {name, util::format_fixed(it->second.seconds, 3),
         util::format_fixed(
             base > 0 ? it->second.seconds / base : 0.0, 2),
         util::format_fixed(
             static_cast<double>(it->second.memory) / (1024.0 * 1024.0),
             2)});
  }
  table.print(std::cout);
  std::printf("\n");

  bool all_cheap = true;
  for (const auto& [name, row] : rows()) {
    if (base > 0 && row.seconds > 4.0 * base) {
      all_cheap = false;
    }
  }
  verdict("variants stay within small-constant overhead (§VII-F)",
          all_cheap, "every variant < 4x classic runtime");
}

void run_compressed(benchmark::State& state) {
  const auto& ds = dataset();
  for (auto _ : state) {
    util::WallTimer timer;
    core::Bfhrf engine(kTaxa, {.compressed_keys = true});
    engine.build(ds.trees);
    benchmark::DoNotOptimize(engine.query(ds.trees));
    rows()["compressed-keys"] = {timer.seconds(),
                                 engine.stats().hash_memory_bytes};
  }
}

}  // namespace
}  // namespace bfhrf::bench

int main(int argc, char** argv) {
  using namespace bfhrf::bench;
  print_header("Ablation A5 — cost of extensibility", "§VII-F, §IX");

  static const bfhrf::core::SizeFilteredRf size_filter(3, kTaxa / 2);
  static const bfhrf::core::InformationWeightedRf info(kTaxa);

  benchmark::RegisterBenchmark("variant/classic", [](benchmark::State& s) {
    run_variant(s, "classic", nullptr);
  })->Iterations(1)->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("variant/size_filtered",
                               [](benchmark::State& s) {
                                 run_variant(s, "size-filtered",
                                             &size_filter);
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("variant/info_weighted",
                               [](benchmark::State& s) {
                                 run_variant(s, "info-weighted", &info);
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("variant/compressed_keys", &run_compressed)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("variant/branch_score", &run_branch_score)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report();
  return 0;
}
