// Table IV reproduction: variable number of taxa
// (n from 100 to 1000, r = 1000, simulated ASTRAL-II-style data).
//
// Also reproduces §VI-C's linearity analysis: the paper reports R² and
// Pearson coefficients (>= 0.988) for BFHRF runtime as a function of n,
// arguing the bitmask model's O(n²) behaves linearly in practice thanks to
// word-packed kernels.
#include "sweep.hpp"

#include <iostream>

#include "util/string_util.hpp"

namespace bfhrf::bench {
namespace {

std::vector<std::size_t> n_points() {
  switch (scale()) {
    case Scale::Smoke:
      return {50, 100};
    case Scale::Small:
      return {100, 250, 500, 750, 1000};
    case Scale::Paper:
      return {100, 250, 500, 750, 1000};
  }
  return {};
}

std::size_t r_trees() {
  switch (scale()) {
    case Scale::Smoke:
      return 20;
    case Scale::Small:
      return 200;
    case Scale::Paper:
      return 1000;
  }
  return 0;
}

/// One dataset per n (generated lazily, kept alive for the whole run).
const sim::Dataset& dataset_for(std::size_t n) {
  static std::map<std::size_t, sim::Dataset> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    auto spec = sim::variable_species(n);
    spec.n_trees = r_trees();
    it = cache.emplace(n, sim::generate(spec)).first;
  }
  return it->second;
}

void register_n_sweep() {
  const RunBudget budget = RunBudget::for_scale(scale());
  for (const std::size_t n : n_points()) {
    for (const Algo algo : all_algos()) {
      const std::string name = std::string(algo_name(algo)) +
                               "/n=" + std::to_string(n) +
                               "/r=" + std::to_string(r_trees());
      benchmark::RegisterBenchmark(
          name.c_str(),
          [algo, n, budget](benchmark::State& state) {
            const sim::Dataset& ds = dataset_for(n);
            Measurement m;
            for (auto _ : state) {
              m = run_algo(algo, ds.trees, n, budget);
            }
            state.counters["mem_MB"] =
                static_cast<double>(m.engine_bytes) / (1024.0 * 1024.0);
            state.counters["minutes"] = m.seconds / 60.0;
            if (!Results::instance().find(algo_name(algo), n, r_trees())) {
              Results::instance().record(
                  {algo_name(algo), n, r_trees(), m});
            }
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

PaperTable paper_values() {
  PaperTable t;  // keyed by (algo, n) here
  t[{"DS", 100}] = {"3.72", "254"};
  t[{"DS", 250}] = {"15.8", "605"};
  t[{"DS", 500}] = {"46.04", "1165"};
  t[{"DS", 750}] = {"99.49", "1634"};
  t[{"DS", 1000}] = {"160.26", "2226"};
  t[{"DSMP8", 100}] = {"0.66", "276"};
  t[{"DSMP8", 250}] = {"2.48", "681"};
  t[{"DSMP8", 500}] = {"7.17", "1454"};
  t[{"DSMP8", 750}] = {"14.37", "2275"};
  t[{"DSMP8", 1000}] = {"24.03", "3163"};
  t[{"DSMP16", 100}] = {"0.66", "273"};
  t[{"DSMP16", 250}] = {"1.95", "675"};
  t[{"DSMP16", 500}] = {"5.56", "1425"};
  t[{"DSMP16", 750}] = {"11.24", "2225"};
  t[{"DSMP16", 1000}] = {"18.73", "3101"};
  t[{"HashRF", 100}] = {"0.02", "9"};
  t[{"HashRF", 250}] = {"0.02", "14"};
  t[{"HashRF", 500}] = {"0.03", "23"};
  t[{"HashRF", 750}] = {"0.06", "32"};
  t[{"HashRF", 1000}] = {"0.11", "42"};
  t[{"BFHRF8", 100}] = {"0.04", "44"};
  t[{"BFHRF8", 250}] = {"0.09", "58"};
  t[{"BFHRF8", 500}] = {"0.22", "87"};
  t[{"BFHRF8", 750}] = {"0.39", "127"};
  t[{"BFHRF8", 1000}] = {"0.57", "183"};
  t[{"BFHRF16", 100}] = {"0.03", "46"};
  t[{"BFHRF16", 250}] = {"0.08", "61"};
  t[{"BFHRF16", 500}] = {"0.22", "92"};
  t[{"BFHRF16", 750}] = {"0.35", "135"};
  t[{"BFHRF16", 1000}] = {"0.47", "197"};
  return t;
}

void report() {
  const auto& res = Results::instance();
  const auto points = n_points();
  const auto paper = paper_values();

  std::printf("\n--- Table IV: variable number of taxa (measured, scale=%s, "
              "r=%zu) ---\n",
              scale_name(), r_trees());
  util::TextTable table({"Algorithm", "n", "R", "Time(m)", "Memory(MB)"});
  for (const Algo algo : all_algos()) {
    for (const std::size_t n : points) {
      const auto m = res.find(algo_name(algo), n, r_trees());
      if (m) {
        table.add_row({algo_name(algo), std::to_string(n),
                       std::to_string(r_trees()), time_cell(*m),
                       mem_cell(*m)});
      }
    }
  }
  table.print(std::cout);

  std::printf("\n--- Table IV (paper-published values, r=1000) ---\n");
  util::TextTable ptable({"Algorithm", "n", "Time(m)", "Memory(MB)"});
  for (const Algo algo : all_algos()) {
    for (const std::size_t n : {100u, 250u, 500u, 750u, 1000u}) {
      const auto it = paper.find({algo_name(algo), n});
      if (it != paper.end()) {
        ptable.add_row({algo_name(algo), std::to_string(n), it->second.time,
                        it->second.mem});
      }
    }
  }
  ptable.print(std::cout);
  std::printf("\n");

  // §VI-C linearity analysis: BFHRF runtime vs n, R² and Pearson.
  for (const char* algo : {"BFHRF8", "BFHRF16"}) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const std::size_t n : points) {
      const auto m = res.find(algo, n, r_trees());
      if (m && !m->skipped) {
        xs.push_back(static_cast<double>(n));
        ys.push_back(m->seconds);
      }
    }
    if (xs.size() >= 3) {
      const LinearFit fit = linear_fit(xs, ys);
      verdict(std::string(algo) + " runtime linear in n (§VI-C)",
              fit.r_squared > 0.9,
              "R2=" + util::format_fixed(fit.r_squared, 3) + " Pearson=" +
                  util::format_fixed(fit.pearson, 3) +
                  " (paper: R2>=0.988, Pearson>=0.994)");
    }
  }

  // All methods' memory ~linear in n (§VI-C: "all methods showed a linear
  // increase in memory usage"), with hash methods on smaller constants.
  {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const std::size_t n : points) {
      const auto m = res.find("BFHRF16", n, r_trees());
      if (m) {
        xs.push_back(static_cast<double>(n));
        ys.push_back(static_cast<double>(m->engine_bytes));
      }
    }
    if (xs.size() >= 3) {
      const LinearFit fit = linear_fit(xs, ys);
      verdict("BFHRF memory ~linear in n (§VI-C)", fit.r_squared > 0.85,
              "R2=" + util::format_fixed(fit.r_squared, 3));
    }
  }
  // HashRF is the fastest at this size class (paper Table IV shows HashRF
  // beating even BFHRF at r=1000 — small-r is HashRF's sweet spot).
  {
    const std::size_t n0 = points.front();
    const auto h = res.find("HashRF", n0, r_trees());
    const auto d = res.find("DS", n0, r_trees());
    if (h && d && !h->skipped) {
      verdict("HashRF far below DS at small r (Table IV)",
              h->seconds < d->seconds / 4,
              "HashRF=" + time_cell(*h) + "m DS=" + time_cell(*d) + "m");
    }
  }
}

}  // namespace
}  // namespace bfhrf::bench

int main(int argc, char** argv) {
  using namespace bfhrf::bench;
  print_header("Table IV — variable number of taxa (r=1000)",
               "Table IV and §VI-C");
  register_n_sweep();
  return sweep_main(argc, argv, &report);
}
