// Microbenchmarks for the substrates (S1, S5, S6, S9, S11): bitset kernels,
// Newick parse throughput, bipartition extraction, frequency-hash ops, and
// a single pairwise RF via each engine. These are conventional
// google-benchmark loops (multiple iterations, statistical timing) and back
// the constants behind the table-level results.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/bfhrf.hpp"
#include "core/day.hpp"
#include "core/frequency_hash.hpp"
#include "core/rf.hpp"
#include "phylo/bipartition.hpp"
#include "phylo/newick.hpp"
#include "sim/generators.hpp"
#include "sim/moves.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace bfhrf {
namespace {

util::DynamicBitset random_bits(std::size_t n, util::Rng& rng) {
  util::DynamicBitset b(n);
  for (std::size_t i = 0; i < n / 2; ++i) {
    b.set(rng.below(n));
  }
  return b;
}

void BM_BitsetXorCount(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  util::DynamicBitset a = random_bits(n, rng);
  const util::DynamicBitset b = random_bits(n, rng);
  for (auto _ : state) {
    a ^= b;
    benchmark::DoNotOptimize(a.count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitsetXorCount)->Arg(48)->Arg(144)->Arg(1000)->Arg(10000);

void BM_CompareWords(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n + 1);
  const util::DynamicBitset a = random_bits(n, rng);
  const util::DynamicBitset b = a;  // equal: worst case, full scan
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::compare_words(a.words(), b.words()));
  }
}
BENCHMARK(BM_CompareWords)->Arg(48)->Arg(144)->Arg(1000);

void BM_NewickParse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto taxa = phylo::TaxonSet::make_numbered(n);
  util::Rng rng(n);
  const std::string text = phylo::write_newick(sim::yule_tree(taxa, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(phylo::parse_newick(text, taxa));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_NewickParse)->Arg(48)->Arg(144)->Arg(1000);

void BM_NewickWrite(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto taxa = phylo::TaxonSet::make_numbered(n);
  util::Rng rng(n);
  const phylo::Tree tree = sim::yule_tree(taxa, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phylo::write_newick(tree));
  }
}
BENCHMARK(BM_NewickWrite)->Arg(48)->Arg(144)->Arg(1000);

void BM_ExtractBipartitions(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto taxa = phylo::TaxonSet::make_numbered(n);
  util::Rng rng(n);
  const phylo::Tree tree = sim::yule_tree(taxa, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phylo::extract_bipartitions(tree));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n - 3));
}
BENCHMARK(BM_ExtractBipartitions)->Arg(48)->Arg(144)->Arg(1000);

void BM_PairwiseRfSet(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto taxa = phylo::TaxonSet::make_numbered(n);
  util::Rng rng(n);
  const auto a = phylo::extract_bipartitions(sim::yule_tree(taxa, rng));
  const auto b = phylo::extract_bipartitions(sim::yule_tree(taxa, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        phylo::BipartitionSet::symmetric_difference_size(a, b));
  }
}
BENCHMARK(BM_PairwiseRfSet)->Arg(48)->Arg(144)->Arg(1000);

void BM_PairwiseRfDay(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto taxa = phylo::TaxonSet::make_numbered(n);
  util::Rng rng(n);
  const phylo::Tree a = sim::yule_tree(taxa, rng);
  const phylo::Tree b = sim::yule_tree(taxa, rng);
  const core::DayTable table(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.rf_against(b));
  }
}
BENCHMARK(BM_PairwiseRfDay)->Arg(48)->Arg(144)->Arg(1000);

void BM_FrequencyHashAdd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto taxa = phylo::TaxonSet::make_numbered(n);
  util::Rng rng(n);
  const auto bips = phylo::extract_bipartitions(sim::yule_tree(taxa, rng));
  core::FrequencyHash hash(n);
  for (auto _ : state) {
    bips.for_each([&](util::ConstWordSpan w) { hash.add(w); });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bips.size()));
}
BENCHMARK(BM_FrequencyHashAdd)->Arg(48)->Arg(144)->Arg(1000);

void BM_FrequencyHashLookup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto taxa = phylo::TaxonSet::make_numbered(n);
  util::Rng rng(n);
  core::FrequencyHash hash(n);
  for (int i = 0; i < 50; ++i) {
    const auto bips = phylo::extract_bipartitions(sim::yule_tree(taxa, rng));
    bips.for_each([&](util::ConstWordSpan w) { hash.add(w); });
  }
  const auto probe = phylo::extract_bipartitions(sim::yule_tree(taxa, rng));
  for (auto _ : state) {
    std::uint64_t total = 0;
    probe.for_each(
        [&](util::ConstWordSpan w) { total += hash.frequency(w); });
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(probe.size()));
}
BENCHMARK(BM_FrequencyHashLookup)->Arg(48)->Arg(144)->Arg(1000);

void BM_BfhrfQueryOneTree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto taxa = phylo::TaxonSet::make_numbered(n);
  util::Rng rng(n);
  std::vector<phylo::Tree> reference;
  const phylo::Tree base = sim::yule_tree(taxa, rng);
  for (int i = 0; i < 100; ++i) {
    phylo::Tree t = base;
    sim::perturb(t, rng, 5);
    reference.push_back(std::move(t));
  }
  core::Bfhrf engine(n);
  engine.build(reference);
  const phylo::Tree query = sim::yule_tree(taxa, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.query_one(query));
  }
}
BENCHMARK(BM_BfhrfQueryOneTree)->Arg(48)->Arg(144)->Arg(1000);

void BM_TreeCopy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto taxa = phylo::TaxonSet::make_numbered(n);
  util::Rng rng(n);
  const phylo::Tree tree = sim::yule_tree(taxa, rng);
  for (auto _ : state) {
    phylo::Tree copy = tree;
    benchmark::DoNotOptimize(copy.num_nodes());
  }
}
BENCHMARK(BM_TreeCopy)->Arg(144)->Arg(1000);

}  // namespace
}  // namespace bfhrf

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bfhrf::bench::export_metrics("micro_substrate");
  return 0;
}
