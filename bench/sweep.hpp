// Sweep driver shared by the table/figure reproduction binaries.
//
// Each binary:
//   1. generates (or slices prefixes of) one dataset,
//   2. registers one google-benchmark cell per (algorithm, r) point,
//   3. runs google-benchmark,
//   4. prints a paper-style table (our cells beside the published ones)
//      and shape verdicts.
#pragma once

#include <benchmark/benchmark.h>

#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "sim/datasets.hpp"
#include "util/table.hpp"

namespace bfhrf::bench {

/// Published cell values, keyed by (algorithm name, paper r or n).
/// Values are verbatim strings from the paper ("-" and "*" included).
struct PaperCell {
  std::string time;
  std::string mem;
};
using PaperTable = std::map<std::pair<std::string, std::size_t>, PaperCell>;

/// Register one google-benchmark cell per (algo, prefix size r) over
/// prefixes of `trees` (the paper uses "the first r trees"). The cell runs
/// the engine once and stores the Measurement in Results.
void register_r_sweep(const sim::Dataset& dataset,
                      std::span<const std::size_t> r_points,
                      const RunBudget& budget);

/// Print the measured sweep as a paper-style table. `paper` supplies the
/// published values at the paper's own sizes (printed on matching rows of a
/// separate reference block when sizes differ, as they do at reduced
/// scale).
void print_sweep_table(const std::string& title, std::size_t taxa_n,
                       std::span<const std::size_t> r_points,
                       const PaperTable& paper,
                       std::span<const std::size_t> paper_points);

/// Standard shape verdicts for an r-sweep: BFHRF ~linear in r, HashRF
/// superlinear, hash methods beat non-hash at the largest r.
void print_r_sweep_verdicts(std::span<const std::size_t> r_points);

/// Boilerplate main: init google-benchmark, run, call `report`.
int sweep_main(int argc, char** argv, void (*report)());

}  // namespace bfhrf::bench
