#include "sweep.hpp"

#include <cstdio>
#include <iostream>

#include "util/string_util.hpp"

namespace bfhrf::bench {

void register_r_sweep(const sim::Dataset& dataset,
                      std::span<const std::size_t> r_points,
                      const RunBudget& budget) {
  const std::size_t n = dataset.taxa->size();
  for (const std::size_t r : r_points) {
    if (r > dataset.trees.size()) {
      continue;
    }
    for (const Algo algo : all_algos()) {
      const std::string name = std::string(algo_name(algo)) +
                               "/n=" + std::to_string(n) +
                               "/r=" + std::to_string(r);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&dataset, algo, r, n, budget](benchmark::State& state) {
            Measurement m;
            for (auto _ : state) {
              m = run_algo(
                  algo,
                  std::span<const phylo::Tree>(dataset.trees.data(), r), n,
                  budget);
            }
            state.counters["mem_MB"] =
                static_cast<double>(m.engine_bytes) / (1024.0 * 1024.0);
            state.counters["minutes"] = m.seconds / 60.0;
            state.counters["estimated"] = m.estimated ? 1 : 0;
            state.counters["skipped"] = m.skipped ? 1 : 0;
            if (!Results::instance().find(algo_name(algo), n, r)) {
              Results::instance().record({algo_name(algo), n, r, m});
            }
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_sweep_table(const std::string& title, std::size_t taxa_n,
                       std::span<const std::size_t> r_points,
                       const PaperTable& paper,
                       std::span<const std::size_t> paper_points) {
  std::printf("\n--- %s (measured, scale=%s) ---\n", title.c_str(),
              scale_name());
  util::TextTable table(
      {"Algorithm", "n", "R", "Time(m)", "Memory(MB)"});
  for (const Algo algo : all_algos()) {
    for (const std::size_t r : r_points) {
      const auto m = Results::instance().find(algo_name(algo), taxa_n, r);
      if (!m) {
        continue;
      }
      table.add_row({algo_name(algo), std::to_string(taxa_n),
                     std::to_string(r), time_cell(*m), mem_cell(*m)});
    }
  }
  table.print(std::cout);

  if (!paper.empty()) {
    std::printf("\n--- %s (paper-published values, full scale) ---\n",
                title.c_str());
    util::TextTable ptable(
        {"Algorithm", "R", "Time(m)", "Memory(MB)"});
    for (const Algo algo : all_algos()) {
      for (const std::size_t pr : paper_points) {
        const auto it = paper.find({algo_name(algo), pr});
        if (it == paper.end()) {
          continue;
        }
        ptable.add_row({algo_name(algo), std::to_string(pr), it->second.time,
                        it->second.mem});
      }
    }
    ptable.print(std::cout);
  }
}

void print_r_sweep_verdicts(std::span<const std::size_t> r_points) {
  if (r_points.size() < 2) {
    return;
  }
  const auto& results = Results::instance();
  const std::size_t taxa_n = results.cells().empty()
                                 ? 0
                                 : results.cells().front().n;
  const auto series = [&](const char* algo, auto field)
      -> std::pair<std::vector<double>, std::vector<double>> {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const std::size_t r : r_points) {
      const auto m = results.find(algo, taxa_n, r);
      if (m && !m->skipped) {
        xs.push_back(static_cast<double>(r));
        ys.push_back(field(*m));
      }
    }
    return {xs, ys};
  };
  const auto time_of = [](const Measurement& m) { return m.seconds; };
  const auto mem_of = [](const Measurement& m) {
    return static_cast<double>(m.engine_bytes);
  };

  std::printf("\n");
  // Shape 1: BFHRF runtime ~linear in r (Table I: O(max(n^2 q, n^2 r))).
  {
    const auto [xs, ys] = series("BFHRF16", time_of);
    if (xs.size() >= 2) {
      const double e = fit_exponent(xs, ys);
      verdict("BFHRF runtime scaling vs r (expect ~1)", e < 1.5,
              "exponent=" + util::format_fixed(e, 2));
    }
  }
  // Shape 2: DS runtime ~quadratic in r when q == r (O(n^2 q r)).
  {
    const auto [xs, ys] = series("DS", time_of);
    if (xs.size() >= 2) {
      const double e = fit_exponent(xs, ys);
      verdict("DS runtime scaling vs r (expect ~2)", e > 1.5,
              "exponent=" + util::format_fixed(e, 2));
    }
  }
  // Shape 3: HashRF memory ~quadratic in r (the r x r matrix).
  {
    const auto [xs, ys] = series("HashRF", mem_of);
    if (xs.size() >= 2) {
      const double e = fit_exponent(xs, ys);
      verdict("HashRF memory scaling vs r (expect ~2)", e > 1.5,
              "exponent=" + util::format_fixed(e, 2));
    }
  }
  // Shape 4: BFHRF memory sublinear in r (unique-split saturation).
  {
    const auto [xs, ys] = series("BFHRF16", mem_of);
    if (xs.size() >= 2) {
      const double e = fit_exponent(xs, ys);
      verdict("BFHRF memory scaling vs r (expect <1)", e < 1.0,
              "exponent=" + util::format_fixed(e, 2));
    }
  }
  // Shape 5: at the largest r, BFHRF beats DS by a wide margin.
  {
    const std::size_t r_max = r_points.back();
    const auto ds = results.find("DS", taxa_n, r_max);
    const auto bfh = results.find("BFHRF16", taxa_n, r_max);
    if (ds && bfh && !ds->skipped && !bfh->skipped && bfh->seconds > 0) {
      const double speedup = ds->seconds / bfh->seconds;
      verdict("BFHRF speedup over DS at largest r (expect >>1)",
              speedup > 5.0, "speedup=" + util::format_fixed(speedup, 1) +
                                 "x (paper: 8884x at full scale)");
    }
  }
  // Shape 6: at the largest runnable HashRF point, BFHRF uses less memory.
  {
    std::size_t r_hash = 0;
    for (const std::size_t r : r_points) {
      const auto h = results.find("HashRF", taxa_n, r);
      if (h && !h->skipped) {
        r_hash = r;
      }
    }
    const auto h = results.find("HashRF", taxa_n, r_hash);
    const auto b = results.find("BFHRF16", taxa_n, r_hash);
    if (r_hash != 0 && h && b && b->engine_bytes > 0) {
      const double ratio = static_cast<double>(h->engine_bytes) /
                           static_cast<double>(b->engine_bytes);
      verdict("HashRF/BFHRF memory ratio at largest common r",
              ratio > 1.0, "ratio=" + util::format_fixed(ratio, 1) +
                               "x (paper: 22x reduction)");
    }
  }
}

int sweep_main(int argc, char** argv, void (*report)()) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report();
  export_metrics();
  return 0;
}

}  // namespace bfhrf::bench
