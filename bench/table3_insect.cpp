// Table III reproduction: Insect dataset (n = 144, r up to 149278,
// UNWEIGHTED Newick — the input the original HashRF could not read).
//
// Faithfulness notes:
//  * The paper's DS rows at r >= 50000 are rate-extrapolated estimates; our
//    harness extrapolates the same way past the op budget ('*').
//  * The paper's DSMP rows at large r were kernel-killed (also '*' there);
//    shared-memory threads don't replicate fork()'s footprint, so our DSMP
//    completes — EXPERIMENTS.md discusses the substitution.
//  * The paper's HashRF column is all '-' (could not read unweighted
//    input). Our exact-mode reimplementation CAN parse unweighted trees, so
//    we run it where the budget allows and report it; the published '-'
//    appears in the paper block below.
#include "sweep.hpp"

namespace bfhrf::bench {
namespace {

std::vector<std::size_t> r_points() {
  switch (scale()) {
    case Scale::Smoke:
      return {80, 160};
    case Scale::Small:
      return {400, 1500, 3000, 6000};
    case Scale::Paper:
      return {1000, 50000, 100000, 149278};
  }
  return {};
}

const sim::Dataset& dataset() {
  static const sim::Dataset ds = [] {
    auto spec = sim::insect_like(r_points().back());
    return sim::generate(spec);
  }();
  return ds;
}

PaperTable paper_values() {
  PaperTable t;
  t[{"DS", 1000}] = {"3.31", "228"};
  t[{"DS", 50000}] = {"10946.35", "9069"};
  t[{"DS", 100000}] = {"45882.54", "17945"};
  t[{"DS", 149278}] = {"99535.6", "26916"};
  t[{"DSMP8", 1000}] = {"0.64", "242"};
  t[{"DSMP8", 50000}] = {"1400.26", "12320"};
  t[{"DSMP8", 100000}] = {"20.65*", "24400*"};
  t[{"DSMP8", 149278}] = {"29.07*", "36612*"};
  t[{"DSMP16", 1000}] = {"0.48", "251"};
  t[{"DSMP16", 50000}] = {"10.03*", "12318*"};
  t[{"DSMP16", 100000}] = {"19.59*", "24395*"};
  t[{"DSMP16", 149278}] = {"31.81*", "36607*"};
  t[{"HashRF", 1000}] = {"-", "-"};
  t[{"HashRF", 50000}] = {"-", "-"};
  t[{"HashRF", 100000}] = {"-", "-"};
  t[{"HashRF", 149278}] = {"-", "-"};
  t[{"BFHRF8", 1000}] = {"0.04", "46"};
  t[{"BFHRF8", 50000}] = {"2.81", "478"};
  t[{"BFHRF8", 100000}] = {"7.25", "892"};
  t[{"BFHRF8", 149278}] = {"12.91", "1259"};
  t[{"BFHRF16", 1000}] = {"0.03", "64"};
  t[{"BFHRF16", 50000}] = {"2.58", "1240"};
  t[{"BFHRF16", 100000}] = {"6.58", "2335"};
  t[{"BFHRF16", 149278}] = {"11.85", "3363"};
  return t;
}

void report() {
  const auto points = r_points();
  print_sweep_table("Table III: Insect dataset", 144, points, paper_values(),
                    std::vector<std::size_t>{1000, 50000, 100000, 149278});
  print_r_sweep_verdicts(points);

  // Table III's headline: BFHRF runs the unweighted collection at a
  // fraction of DS's (estimated) time and memory.
  const auto& res = Results::instance();
  const std::size_t r_max = points.back();
  const auto ds = res.find("DS", 144, r_max);
  const auto bfh8 = res.find("BFHRF8", 144, r_max);
  if (ds && bfh8 && bfh8->seconds > 0 && bfh8->engine_bytes > 0) {
    verdict("BFHRF8 memory reduction vs DS (Table III)",
            ds->engine_bytes > bfh8->engine_bytes,
            "DS=" + mem_cell(*ds) + "MB BFHRF8=" + mem_cell(*bfh8) +
                "MB (paper: 26916 vs 1259, ~21x)");
  }
}

}  // namespace
}  // namespace bfhrf::bench

int main(int argc, char** argv) {
  using namespace bfhrf::bench;
  print_header("Table III — Insect data set (n=144, unweighted)",
               "Table III and §VI-B; dataset per Table II (Sayyari et al. "
               "2017), substituted per DESIGN.md");
  register_r_sweep(dataset(), r_points(), RunBudget::for_scale(scale()));
  return sweep_main(argc, argv, &report);
}
