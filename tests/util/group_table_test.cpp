// GroupDirectory tombstone tests (util/group_table.hpp).
//
// The dynamic-index layer leans on three directory properties:
//   * erase() writes DELETED, never EMPTY, so probe chains displaced past
//     an erased slot stay reachable — even through fully-tombstoned groups;
//   * a failed find() reports the FIRST deleted-or-empty slot on the probe
//     path, so reinsertion reuses tombstones and delete-then-reinsert
//     restores the original control bytes;
//   * all of the above is byte-identical across SIMD/SWAR dispatch, which
//     the mixed insert/erase sweep pins on the real FrequencyHash.
#include "util/group_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/frequency_hash.hpp"
#include "util/bitset.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace bfhrf {
namespace {

using util::GroupDirectory;
using util::kCtrlDeleted;
using util::kCtrlEmpty;
using util::kGroupWidth;
using util::simd::Level;

/// Restores autodetected dispatch no matter how a test exits.
struct ForceLevelGuard {
  explicit ForceLevelGuard(Level level) {
    util::simd::set_force_level(level);
  }
  ~ForceLevelGuard() { util::simd::set_force_level(std::nullopt); }
};

/// Synthetic fingerprint whose home group and 7-bit tag are chosen
/// directly (slot hash = fp >> 7, tag = fp & 0x7f).
constexpr std::uint64_t fp_for(std::size_t group, std::uint8_t tag) {
  return (static_cast<std::uint64_t>(group) << 7) | tag;
}

/// Minimal occupant model: the directory plus a per-slot fingerprint, so
/// the eq predicate resolves exactly like a real table's full-key check.
struct ModelTable {
  GroupDirectory dir;
  std::vector<std::uint64_t> fps;

  explicit ModelTable(std::size_t slots) : fps(slots, 0) {
    dir.reset(slots);
  }

  [[nodiscard]] GroupDirectory::FindResult find(std::uint64_t fp) const {
    return dir.find(fp, [&](std::size_t i) { return fps[i] == fp; });
  }

  std::size_t insert(std::uint64_t fp) {
    const auto r = find(fp);
    EXPECT_FALSE(r.found) << "duplicate insert";
    dir.mark(r.index, fp);
    fps[r.index] = fp;
    return r.index;
  }
};

TEST(GroupTableTest, DeleteThenReinsertReusesSlot) {
  for (const Level level : {util::simd::active_level(), Level::Swar}) {
    ForceLevelGuard guard(level);
    ModelTable t(64);
    const std::uint64_t fp = fp_for(1, 0x11);
    t.insert(fp_for(1, 0x10));
    const std::size_t idx = t.insert(fp);
    t.insert(fp_for(1, 0x12));
    const std::vector<std::uint8_t> before(t.dir.ctrl_bytes().begin(),
                                           t.dir.ctrl_bytes().end());

    t.dir.erase(idx);
    t.fps[idx] = 0;
    EXPECT_TRUE(t.dir.deleted(idx));
    EXPECT_FALSE(t.dir.occupied(idx));
    EXPECT_EQ(t.dir.tombstone_count(), 1u);
    EXPECT_FALSE(t.find(fp).found);
    // The tombstone IS the reported insertion point...
    EXPECT_EQ(t.find(fp).index, idx);

    // ...so reinsertion restores the exact pre-erase layout.
    EXPECT_EQ(t.insert(fp), idx);
    EXPECT_EQ(t.dir.tombstone_count(), 0u);
    const std::vector<std::uint8_t> after(t.dir.ctrl_bytes().begin(),
                                          t.dir.ctrl_bytes().end());
    EXPECT_EQ(after, before);
  }
}

TEST(GroupTableTest, ProbeChainCrossesFullyDeletedGroup) {
  for (const Level level : {util::simd::active_level(), Level::Swar}) {
    ForceLevelGuard guard(level);
    ModelTable t(64);  // 4 groups
    // 17 keys homed on group 2: sixteen fill it, the 17th displaces into
    // group 3.
    std::vector<std::size_t> slots;
    for (std::uint8_t tag = 0; tag < 17; ++tag) {
      slots.push_back(t.insert(fp_for(2, tag)));
    }
    const std::size_t overflow = slots.back();
    ASSERT_GE(overflow, 3 * kGroupWidth) << "17th key did not displace";

    // Tombstone the entire home group: no EMPTY byte remains there, so a
    // probe that stopped at DELETED bytes would lose the displaced key.
    for (std::size_t i = 0; i < kGroupWidth; ++i) {
      t.dir.erase(2 * kGroupWidth + i);
      t.fps[2 * kGroupWidth + i] = 0;
    }
    EXPECT_EQ(t.dir.tombstone_count(), kGroupWidth);

    const auto hit = t.find(fp_for(2, 16));
    EXPECT_TRUE(hit.found);
    EXPECT_EQ(hit.index, overflow);
    EXPECT_GE(hit.groups_probed, 2u);

    // An absent key homed on the dead group probes THROUGH it to the first
    // empty byte, but reports the first tombstone as the insertion point.
    const auto miss = t.find(fp_for(2, 0x55));
    EXPECT_FALSE(miss.found);
    EXPECT_EQ(miss.index, 2 * kGroupWidth);
    EXPECT_GE(miss.groups_probed, 2u);

    // Reinsertion claims that tombstone back.
    EXPECT_EQ(t.insert(fp_for(2, 0x55)), 2 * kGroupWidth);
    EXPECT_EQ(t.dir.tombstone_count(), kGroupWidth - 1);
  }
}

TEST(GroupTableTest, ResetDropsTombstones) {
  ModelTable t(32);
  const std::size_t idx = t.insert(fp_for(0, 0x01));
  t.dir.erase(idx);
  EXPECT_EQ(t.dir.tombstone_count(), 1u);
  t.dir.reset(32);
  EXPECT_EQ(t.dir.tombstone_count(), 0u);
  for (const std::uint8_t byte : t.dir.ctrl_bytes()) {
    EXPECT_EQ(byte, kCtrlEmpty);
  }
}

// --- dispatch equivalence under mixed insert/erase --------------------------

/// The full observable state of a FrequencyHash after a deterministic
/// insert/erase/reinsert workload at the CURRENT dispatch level: control
/// bytes (tombstone placement included), live tombstone count, and the
/// iteration image.
struct MixedImage {
  std::vector<std::uint8_t> ctrl;
  std::size_t tombstones = 0;
  std::vector<std::pair<std::vector<std::uint64_t>, std::uint32_t>> contents;
};

MixedImage mixed_image(std::size_t n_bits, std::uint64_t seed) {
  const std::size_t words = util::words_for_bits(n_bits);
  const std::size_t tail_bits = n_bits % 64;
  const std::uint64_t tail_mask =
      tail_bits == 0 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << tail_bits) - 1;
  util::Rng rng(seed);

  // 1000 distinct keys (rare post-mask duplicates are skipped, keeping the
  // sequence identical across dispatch levels).
  std::vector<std::vector<std::uint64_t>> keys;
  std::map<std::vector<std::uint64_t>, bool> seen;
  while (keys.size() < 1000) {
    std::vector<std::uint64_t> k(words);
    for (auto& w : k) {
      w = rng();
    }
    k[words - 1] &= tail_mask;
    if (!seen.emplace(k, true).second) {
      continue;
    }
    keys.push_back(std::move(k));
  }

  core::FrequencyHash hash(n_bits, 0);
  const auto span = [&](std::size_t i) {
    return util::ConstWordSpan{keys[i].data(), words};
  };
  for (std::size_t i = 0; i < keys.size(); ++i) {
    hash.add(span(i), static_cast<std::uint32_t>(1 + i % 3));
  }
  // Fully erase every second key (tombstoning; the ratio-triggered
  // compaction may fire mid-stream — it is deterministic either way)...
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    hash.remove(span(i), static_cast<std::uint32_t>(1 + i % 3));
  }
  // ...then reinsert every fourth, reclaiming a subset of the tombstones.
  for (std::size_t i = 0; i < keys.size(); i += 4) {
    hash.add(span(i));
  }

  MixedImage img;
  img.ctrl.assign(hash.directory().ctrl_bytes().begin(),
                  hash.directory().ctrl_bytes().end());
  img.tombstones = hash.tombstone_count();
  hash.for_each([&](util::ConstWordSpan key, std::uint32_t freq) {
    img.contents.emplace_back(
        std::vector<std::uint64_t>(key.begin(), key.end()), freq);
  });
  return img;
}

TEST(GroupTableTest, MixedInsertEraseIsByteIdenticalAcrossLevels) {
  // n spans the one-word fast path boundary (63/64) and multi-word keys.
  for (const std::size_t n_bits : {std::size_t{63}, std::size_t{64},
                                   std::size_t{65}, std::size_t{1000}}) {
    MixedImage swar;
    {
      ForceLevelGuard guard(Level::Swar);
      swar = mixed_image(n_bits, 0xd1d0 ^ n_bits);
    }
    const MixedImage vec = mixed_image(n_bits, 0xd1d0 ^ n_bits);  // native
    EXPECT_EQ(swar.tombstones, vec.tombstones) << "n_bits=" << n_bits;
    EXPECT_EQ(swar.ctrl, vec.ctrl) << "n_bits=" << n_bits;
    EXPECT_EQ(swar.contents, vec.contents) << "n_bits=" << n_bits;
  }
}

}  // namespace
}  // namespace bfhrf
