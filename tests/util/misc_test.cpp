#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "util/memory.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bfhrf::util {
namespace {

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(starts_with("hello", ""));
  EXPECT_FALSE(starts_with("hello", "world"));
  EXPECT_FALSE(starts_with("he", "hello"));
}

TEST(StringUtilTest, ParseSize) {
  EXPECT_EQ(parse_size("42"), 42u);
  EXPECT_EQ(parse_size("  42 "), 42u);
  EXPECT_EQ(parse_size("0"), 0u);
  EXPECT_THROW((void)parse_size("-3"), ParseError);
  EXPECT_THROW((void)parse_size("abc"), ParseError);
  EXPECT_THROW((void)parse_size("12x"), ParseError);
  EXPECT_THROW((void)parse_size(""), ParseError);
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3"), -1000.0);
  EXPECT_THROW((void)parse_double("nope"), ParseError);
  EXPECT_THROW((void)parse_double("1.2.3"), ParseError);
}

TEST(StringUtilTest, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(TableTest, AlignsColumns) {
  TextTable t({"Algorithm", "n", "Time(m)"});
  t.add_row({"DS", "144", "3.31"});
  t.add_row({"BFHRF8", "144", "0.04"});
  const std::string s = t.to_string();
  std::istringstream in(s);
  std::string line1;
  std::string line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_NE(line1.find("Algorithm"), std::string::npos);
  EXPECT_EQ(line2.find_first_not_of('-'), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), InvalidArgument);
}

TEST(MemoryTest, RssReadable) {
  // On Linux both must be positive. Read current first: the peak is
  // monotone, so peak(now) >= rss(earlier) even if the process grows
  // between the two /proc reads.
  const std::size_t cur = current_rss_bytes();
  const std::size_t peak = peak_rss_bytes();
  EXPECT_GT(peak, 0u);
  EXPECT_GT(cur, 0u);
  EXPECT_GE(peak, cur);
}

TEST(MemoryTest, BytesToMb) {
  EXPECT_DOUBLE_EQ(bytes_to_mb(1024 * 1024), 1.0);
  EXPECT_DOUBLE_EQ(bytes_to_mb(0), 0.0);
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer t;
  // Burn a little CPU.
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) {
    x = x + 1e-9;
  }
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.milliseconds(), 0.0);
  t.restart();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace bfhrf::util
