#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace bfhrf::util {
namespace {

TEST(BitsetTest, DefaultIsEmpty) {
  DynamicBitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.count(), 0u);
}

TEST(BitsetTest, SetResetTest) {
  DynamicBitset b(130);
  EXPECT_FALSE(b.test(0));
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(BitsetTest, AssignSelectsSetOrReset) {
  DynamicBitset b(10);
  b.assign(3, true);
  EXPECT_TRUE(b.test(3));
  b.assign(3, false);
  EXPECT_FALSE(b.test(3));
}

TEST(BitsetTest, WordsForBits) {
  EXPECT_EQ(words_for_bits(0), 0u);
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(64), 1u);
  EXPECT_EQ(words_for_bits(65), 2u);
  EXPECT_EQ(words_for_bits(128), 2u);
  EXPECT_EQ(words_for_bits(129), 3u);
}

TEST(BitsetTest, FlipAllKeepsTailZero) {
  DynamicBitset b(70);
  b.set(3);
  b.flip_all();
  EXPECT_FALSE(b.test(3));
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(69));
  EXPECT_EQ(b.count(), 69u);
  // The 58 tail bits of word 1 must stay zero (canonical form).
  EXPECT_EQ(b.words()[1] >> 6, 0u);
}

TEST(BitsetTest, DoubleFlipIsIdentity) {
  Rng rng(7);
  DynamicBitset b(200);
  for (int i = 0; i < 50; ++i) {
    b.set(rng.below(200));
  }
  DynamicBitset copy = b;
  b.flip_all();
  b.flip_all();
  EXPECT_EQ(b, copy);
}

TEST(BitsetTest, BitwiseOps) {
  DynamicBitset a(100);
  DynamicBitset b(100);
  a.set(1);
  a.set(70);
  b.set(70);
  b.set(99);

  const DynamicBitset u = a | b;
  EXPECT_EQ(u.count(), 3u);
  const DynamicBitset i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(70));
  const DynamicBitset x = a ^ b;
  EXPECT_EQ(x.count(), 2u);
  EXPECT_TRUE(x.test(1));
  EXPECT_TRUE(x.test(99));
}

TEST(BitsetTest, SizeMismatchThrows) {
  DynamicBitset a(10);
  DynamicBitset b(11);
  EXPECT_THROW(a |= b, InvalidArgument);
  EXPECT_THROW(a &= b, InvalidArgument);
  EXPECT_THROW(a ^= b, InvalidArgument);
  EXPECT_THROW((void)a.is_subset_of(b), InvalidArgument);
  EXPECT_THROW((void)a.is_disjoint_with(b), InvalidArgument);
}

TEST(BitsetTest, SubsetAndDisjoint) {
  DynamicBitset a(80);
  DynamicBitset b(80);
  a.set(5);
  b.set(5);
  b.set(77);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_FALSE(a.is_disjoint_with(b));

  DynamicBitset c(80);
  c.set(10);
  EXPECT_TRUE(a.is_disjoint_with(c));
  DynamicBitset empty(80);
  EXPECT_TRUE(empty.is_subset_of(a));
  EXPECT_TRUE(empty.is_disjoint_with(a));
}

TEST(BitsetTest, FindFirstAndNext) {
  DynamicBitset b(150);
  EXPECT_EQ(b.find_first(), 150u);
  b.set(3);
  b.set(64);
  b.set(149);
  EXPECT_EQ(b.find_first(), 3u);
  EXPECT_EQ(b.find_next(3), 64u);
  EXPECT_EQ(b.find_next(64), 149u);
  EXPECT_EQ(b.find_next(149), 150u);
  EXPECT_EQ(b.find_next(0), 3u);
}

TEST(BitsetTest, ForEachSetBitVisitsInOrder) {
  DynamicBitset b(200);
  const std::vector<std::size_t> want{0, 63, 64, 127, 128, 199};
  for (const auto i : want) {
    b.set(i);
  }
  std::vector<std::size_t> got;
  b.for_each_set_bit([&got](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(BitsetTest, StringRoundTrip) {
  const std::string s = "0110010001";
  const DynamicBitset b = DynamicBitset::from_string(s);
  EXPECT_EQ(b.size(), s.size());
  EXPECT_EQ(b.to_string(), s);
  EXPECT_THROW((void)DynamicBitset::from_string("01x"), ParseError);
}

TEST(BitsetTest, HashDiffersForDifferentContent) {
  DynamicBitset a(100);
  DynamicBitset b(100);
  a.set(42);
  b.set(43);
  EXPECT_NE(a.hash(), b.hash());
  DynamicBitset c(100);
  c.set(42);
  EXPECT_EQ(a.hash(), c.hash());
}

TEST(BitsetTest, HashDependsOnSize) {
  // Same words, different logical size -> different hash (size is salted).
  DynamicBitset a(60);
  DynamicBitset b(61);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(BitsetTest, CompareWordsOrdersLexicographically) {
  DynamicBitset a(128);
  DynamicBitset b(128);
  a.set(0);
  b.set(1);
  EXPECT_LT(compare_words(a.words(), b.words()), 0);
  EXPECT_GT(compare_words(b.words(), a.words()), 0);
  EXPECT_EQ(compare_words(a.words(), a.words()), 0);
}

TEST(BitsetTest, EqualWords) {
  DynamicBitset a(128);
  DynamicBitset b(128);
  a.set(100);
  EXPECT_FALSE(equal_words(a.words(), b.words()));
  b.set(100);
  EXPECT_TRUE(equal_words(a.words(), b.words()));
}

TEST(BitsetTest, ClearZeroesEverything) {
  DynamicBitset b(100);
  b.set(5);
  b.set(99);
  b.clear();
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(b.size(), 100u);
}

TEST(BitsetTest, AnyNoneAll) {
  DynamicBitset b(65);
  EXPECT_FALSE(b.any());
  EXPECT_TRUE(b.none());
  b.set(64);
  EXPECT_TRUE(b.any());
  b.flip_all();
  b.set(64);
  EXPECT_TRUE(b.all());
}

class BitsetSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsetSizeSweep, PopcountMatchesSetBits) {
  const std::size_t n = GetParam();
  Rng rng(n);
  DynamicBitset b(n);
  std::vector<bool> mirror(n, false);
  for (std::size_t k = 0; k < n / 2 + 1; ++k) {
    const std::size_t i = rng.below(n);
    b.set(i);
    mirror[i] = true;
  }
  const auto expected = static_cast<std::size_t>(
      std::count(mirror.begin(), mirror.end(), true));
  EXPECT_EQ(b.count(), expected);
  EXPECT_EQ(popcount_words(b.words()), expected);
}

TEST_P(BitsetSizeSweep, ComplementPartitionsUniverse) {
  const std::size_t n = GetParam();
  Rng rng(n * 31);
  DynamicBitset b(n);
  for (std::size_t k = 0; k < n / 3 + 1; ++k) {
    b.set(rng.below(n));
  }
  DynamicBitset c = b;
  c.flip_all();
  EXPECT_EQ(b.count() + c.count(), n);
  EXPECT_TRUE(b.is_disjoint_with(c));
  EXPECT_TRUE((b | c).all());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitsetSizeSweep,
                         ::testing::Values(1, 7, 48, 63, 64, 65, 100, 127,
                                           128, 129, 144, 500, 1000, 4096));

}  // namespace
}  // namespace bfhrf::util
