// SIMD capability layer + dispatch-equivalence tests (util/simd.hpp).
//
// The group-probe and bitset kernels runtime-dispatch between vector and
// SWAR paths; this suite pins each level with set_force_level and asserts
// the results agree byte-for-byte, including the documented SWAR contract:
// match() may over-report, but only on FULL bytes, and match_empty() is
// exact — which is what keeps table layouts identical across levels.
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "core/frequency_hash.hpp"
#include "util/bitset.hpp"
#include "util/hash.hpp"
#include "util/memory.hpp"
#include "util/rng.hpp"

namespace bfhrf {
namespace {

using util::simd::Group16Swar;
using util::simd::Group16Vec;
using util::simd::Level;

/// Restores autodetected dispatch no matter how a test exits.
struct ForceLevelGuard {
  explicit ForceLevelGuard(Level level) {
    util::simd::set_force_level(level);
  }
  ~ForceLevelGuard() { util::simd::set_force_level(std::nullopt); }
};

/// Reference bitmask of bytes equal to `tag`, computed byte by byte.
std::uint32_t reference_match(const std::uint8_t* ctrl, std::uint8_t tag) {
  std::uint32_t m = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    if (ctrl[i] == tag) {
      m |= 1u << i;
    }
  }
  return m;
}

TEST(SimdLevelTest, ActiveLevelNeverExceedsCompiled) {
  EXPECT_LE(static_cast<int>(util::simd::active_level()),
            static_cast<int>(util::simd::compiled_level()));
}

TEST(SimdLevelTest, ForceLevelRoundTrips) {
  const Level before = util::simd::active_level();
  {
    ForceLevelGuard guard(Level::Swar);
    EXPECT_EQ(util::simd::active_level(), Level::Swar);
    EXPECT_FALSE(util::simd::vectorized());
  }
  EXPECT_EQ(util::simd::active_level(), before);
}

TEST(SimdLevelTest, LevelNamesAreStable) {
  EXPECT_EQ(util::simd::level_name(Level::Swar), "swar");
  EXPECT_NE(util::simd::level_name(util::simd::compiled_level()), "");
}

TEST(SimdGroupTest, MatchEmptyIsExactOnBothPaths) {
  util::Rng rng(0xabcdef12u);
  alignas(64) std::array<std::uint8_t, 16> ctrl;
  for (int round = 0; round < 2000; ++round) {
    std::uint32_t expect = 0;
    for (int i = 0; i < 16; ++i) {
      const bool empty = (rng() & 3) == 0;
      ctrl[static_cast<std::size_t>(i)] =
          empty ? std::uint8_t{0x80}
                : static_cast<std::uint8_t>(rng() & 0x7f);
      expect |= empty ? (1u << i) : 0u;
    }
    EXPECT_EQ(Group16Swar::load(ctrl.data()).match_empty(), expect);
    EXPECT_EQ(Group16Vec::load(ctrl.data()).match_empty(), expect);
  }
}

TEST(SimdGroupTest, DeletedBytesAreAvailableButNeverEmpty) {
  // Tombstones (0xfe) must be skipped by the probe scan (never tag- or
  // empty-matched) yet offered for reuse (available-matched) — the
  // property that keeps erase/reinsert layouts identical across levels.
  util::Rng rng(0xdead5eedu);
  alignas(64) std::array<std::uint8_t, 16> ctrl;
  for (int round = 0; round < 2000; ++round) {
    std::uint32_t empties = 0;
    std::uint32_t available = 0;
    for (int i = 0; i < 16; ++i) {
      const std::uint64_t roll = rng() & 3;
      if (roll == 0) {
        ctrl[static_cast<std::size_t>(i)] = 0x80;
        empties |= 1u << i;
        available |= 1u << i;
      } else if (roll == 1) {
        ctrl[static_cast<std::size_t>(i)] = 0xfe;  // deleted
        available |= 1u << i;
      } else {
        ctrl[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(rng() & 0x7f);
      }
    }
    EXPECT_EQ(Group16Swar::load(ctrl.data()).match_empty(), empties);
    EXPECT_EQ(Group16Vec::load(ctrl.data()).match_empty(), empties);
    EXPECT_EQ(Group16Swar::load(ctrl.data()).match_available(), available);
    EXPECT_EQ(Group16Vec::load(ctrl.data()).match_available(), available);
    const auto tag = static_cast<std::uint8_t>(rng() & 0x7f);
    const std::uint32_t deleted = available & ~empties;
    EXPECT_EQ(Group16Swar::load(ctrl.data()).match(tag) & deleted, 0u);
    EXPECT_EQ(Group16Vec::load(ctrl.data()).match(tag) & deleted, 0u);
  }
}

TEST(SimdGroupTest, SwarMatchIsSupersetAndNeverFlagsEmptyBytes) {
  util::Rng rng(0x5eedf00du);
  alignas(64) std::array<std::uint8_t, 16> ctrl;
  for (int round = 0; round < 2000; ++round) {
    std::uint32_t empties = 0;
    for (int i = 0; i < 16; ++i) {
      const bool empty = (rng() & 3) == 0;
      ctrl[static_cast<std::size_t>(i)] =
          empty ? std::uint8_t{0x80}
                : static_cast<std::uint8_t>(rng() & 0x7f);
      empties |= empty ? (1u << i) : 0u;
    }
    const auto tag = static_cast<std::uint8_t>(rng() & 0x7f);
    const std::uint32_t exact = reference_match(ctrl.data(), tag);
    const std::uint32_t swar = Group16Swar::load(ctrl.data()).match(tag);
    // Superset of the exact matches...
    EXPECT_EQ(swar & exact, exact);
    // ...whose extras, if any, sit on full bytes only (the contract the
    // probe loop's correctness rests on).
    EXPECT_EQ(swar & empties, 0u);
  }
}

TEST(SimdGroupTest, VectorMatchIsExact) {
  if (util::simd::compiled_level() == Level::Swar) {
    GTEST_SKIP() << "Group16Vec aliases Group16Swar in this build "
                    "(BFHRF_SIMD=OFF or no vector ISA); over-reporting on "
                    "full bytes is its documented contract, covered by "
                    "SwarMatchIsSupersetAndNeverFlagsEmptyBytes.";
  }
  util::Rng rng(0x12345678u);
  alignas(64) std::array<std::uint8_t, 16> ctrl;
  for (int round = 0; round < 2000; ++round) {
    for (auto& c : ctrl) {
      c = (rng() & 3) == 0
              ? std::uint8_t{0x80}
              : static_cast<std::uint8_t>(rng() & 0x7f);
    }
    const auto tag = static_cast<std::uint8_t>(rng() & 0x7f);
    EXPECT_EQ(Group16Vec::load(ctrl.data()).match(tag),
              reference_match(ctrl.data(), tag));
  }
}

// --- dispatch equivalence on the real table ---------------------------------

/// Random keys over an `n_bits` universe, `count` of them, with repeats.
std::vector<std::uint64_t> random_keys(std::size_t n_bits, std::size_t count,
                                       std::uint64_t seed) {
  const std::size_t words = util::words_for_bits(n_bits);
  util::Rng rng(seed);
  std::vector<std::uint64_t> distinct((count / 2 + 1) * words);
  for (auto& w : distinct) {
    w = rng();
  }
  // Mask the top word so keys stay within the bit universe.
  const std::size_t tail_bits = n_bits % 64;
  if (tail_bits != 0) {
    const std::uint64_t tail_mask = (std::uint64_t{1} << tail_bits) - 1;
    for (std::size_t k = 0; k < distinct.size() / words; ++k) {
      distinct[k * words + words - 1] &= tail_mask;
    }
  }
  std::vector<std::uint64_t> keys;
  keys.reserve(count * words);
  const std::size_t n_distinct = distinct.size() / words;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pick = rng.below(n_distinct);
    keys.insert(keys.end(), distinct.begin() + static_cast<std::ptrdiff_t>(
                                                   pick * words),
                distinct.begin() + static_cast<std::ptrdiff_t>(
                                       (pick + 1) * words));
  }
  return keys;
}

/// Build a table from `keys` at the CURRENT dispatch level and return every
/// observable: per-key frequencies, unique/total, and the iteration image.
struct TableImage {
  std::vector<std::uint32_t> frequencies;
  std::size_t unique = 0;
  std::uint64_t total = 0;
  std::vector<std::pair<std::vector<std::uint64_t>, std::uint32_t>> contents;
};

TableImage build_image(std::size_t n_bits,
                       const std::vector<std::uint64_t>& keys) {
  const std::size_t words = util::words_for_bits(n_bits);
  const std::size_t count = keys.size() / words;
  core::FrequencyHash hash(n_bits, 0);
  hash.add_many(keys.data(), count, nullptr);
  TableImage img;
  img.frequencies.resize(count);
  hash.frequency_many(keys.data(), count, img.frequencies.data());
  img.unique = hash.unique_count();
  img.total = hash.total_count();
  hash.for_each([&](util::ConstWordSpan key, std::uint32_t freq) {
    img.contents.emplace_back(
        std::vector<std::uint64_t>(key.begin(), key.end()), freq);
  });
  return img;
}

TEST(SimdDispatchTest, TableStateIsByteIdenticalAcrossLevels) {
  // n spans the one-word fast path boundary (63/64) and multi-word keys.
  for (const std::size_t n_bits : {std::size_t{63}, std::size_t{64},
                                   std::size_t{65}, std::size_t{1000}}) {
    const auto keys = random_keys(n_bits, 4096, 0x9e3779b9u ^ n_bits);
    TableImage swar;
    {
      ForceLevelGuard guard(Level::Swar);
      swar = build_image(n_bits, keys);
    }
    const TableImage vec = build_image(n_bits, keys);  // native dispatch
    EXPECT_EQ(swar.unique, vec.unique) << "n_bits=" << n_bits;
    EXPECT_EQ(swar.total, vec.total) << "n_bits=" << n_bits;
    EXPECT_EQ(swar.frequencies, vec.frequencies) << "n_bits=" << n_bits;
    // Insertion positions identical => for_each order identical too.
    EXPECT_EQ(swar.contents, vec.contents) << "n_bits=" << n_bits;
  }
}

TEST(SimdDispatchTest, BitsetKernelsAgreeAcrossLevels) {
  util::Rng rng(0xb17e5e7u);
  for (const std::size_t words :
       {std::size_t{1}, std::size_t{7}, std::size_t{8}, std::size_t{33}}) {
    std::vector<std::uint64_t> a(words);
    std::vector<std::uint64_t> b(words);
    for (std::size_t i = 0; i < words; ++i) {
      a[i] = rng();
      b[i] = rng();
    }
    const util::ConstWordSpan sa{a.data(), words};
    const util::ConstWordSpan sb{b.data(), words};
    std::array<std::size_t, 5> swar_counts;
    std::array<std::vector<std::uint64_t>, 2> swar_canon;
    {
      ForceLevelGuard guard(Level::Swar);
      swar_counts = {util::popcount_and(sa, sb), util::popcount_or(sa, sb),
                     util::popcount_xor(sa, sb),
                     util::popcount_andnot(sa, sb), util::popcount_words(sa)};
      for (const bool flip : {false, true}) {
        auto& dst = swar_canon[flip ? 1 : 0];
        dst.resize(words);
        util::store_canonical(dst.data(), a.data(), b.data(), flip, words);
      }
    }
    const std::array<std::size_t, 5> vec_counts = {
        util::popcount_and(sa, sb), util::popcount_or(sa, sb),
        util::popcount_xor(sa, sb), util::popcount_andnot(sa, sb),
        util::popcount_words(sa)};
    EXPECT_EQ(swar_counts, vec_counts) << "words=" << words;
    for (const bool flip : {false, true}) {
      std::vector<std::uint64_t> dst(words);
      util::store_canonical(dst.data(), a.data(), b.data(), flip, words);
      EXPECT_EQ(dst, swar_canon[flip ? 1 : 0])
          << "words=" << words << " flip=" << flip;
      // And against the definition: side ^ (mask when flipping).
      for (std::size_t i = 0; i < words; ++i) {
        EXPECT_EQ(dst[i], flip ? (a[i] ^ b[i]) : a[i]);
      }
    }
  }
}

}  // namespace
}  // namespace bfhrf
