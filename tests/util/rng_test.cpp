#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <vector>

namespace bfhrf::util {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a() == b()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(55);
  const auto first = a();
  a.reseed(55);
  EXPECT_EQ(a(), first);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::array<int, 10> buckets{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[rng.below(10)];
  }
  for (const int c : buckets) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, Uniform01InHalfOpenRange) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(19);
  const double rate = 4.0;
  double sum = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.exponential(rate);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kDraws, 1.0 / rate, 0.01);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a() == child()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

}  // namespace
}  // namespace bfhrf::util
