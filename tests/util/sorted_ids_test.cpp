#include "util/sorted_ids.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "support/test_util.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace bfhrf::util {
namespace {

using Ids = std::vector<std::uint32_t>;

/// Reference: intersection cardinality via std::set membership.
std::size_t naive_count(const Ids& a, const Ids& b) {
  const std::set<std::uint32_t> sa(a.begin(), a.end());
  std::size_t count = 0;
  for (const std::uint32_t x : b) {
    count += sa.count(x);
  }
  return count;
}

Ids random_sorted_ids(util::Rng& rng, std::size_t count,
                      std::uint32_t universe) {
  std::set<std::uint32_t> s;
  while (s.size() < count) {
    s.insert(static_cast<std::uint32_t>(rng.below(universe)));
  }
  return {s.begin(), s.end()};
}

TEST(SortedIdsTest, EdgeCases) {
  const Ids empty;
  const Ids one{5};
  const Ids abc{1, 2, 3};
  EXPECT_EQ(intersect_count_sorted(empty, empty), 0U);
  EXPECT_EQ(intersect_count_sorted(empty, abc), 0U);
  EXPECT_EQ(intersect_count_sorted(abc, empty), 0U);
  EXPECT_EQ(intersect_count_sorted(one, abc), 0U);
  EXPECT_EQ(intersect_count_sorted(abc, abc), 3U);
  EXPECT_EQ(intersect_count_sorted(Ids{1, 3, 5, 7}, Ids{2, 4, 6, 8}), 0U);
  EXPECT_EQ(intersect_count_sorted(Ids{1, 3, 5, 7}, Ids{3, 7, 9, 11}), 2U);
}

TEST(SortedIdsTest, StrategiesAgreeOnRandomLists) {
  util::Rng rng(test::fuzz_seed(0x501D5));
  for (int iter = 0; iter < 200; ++iter) {
    const std::uint32_t universe =
        64 + static_cast<std::uint32_t>(rng.below(4096));
    const std::uint64_t cap = std::min<std::uint64_t>(universe, 300);
    const Ids a = random_sorted_ids(rng, rng.below(cap), universe);
    const Ids b = random_sorted_ids(rng, rng.below(cap), universe);
    const std::size_t expected = naive_count(a, b);
    EXPECT_EQ(intersect_count_scalar(a, b), expected);
    EXPECT_EQ(intersect_count_gallop(a, b), expected);
    EXPECT_EQ(intersect_count_sorted(a, b), expected);
    // Symmetry.
    EXPECT_EQ(intersect_count_sorted(b, a), expected);
  }
}

TEST(SortedIdsTest, GallopHandlesHeavySkew) {
  util::Rng rng(7);
  // Sizes past kGallopRatio so the dispatcher actually takes the gallop.
  const Ids small = random_sorted_ids(rng, 8, 1U << 20);
  const Ids large = random_sorted_ids(rng, 8 * kGallopRatio + 100, 1U << 20);
  const std::size_t expected = naive_count(small, large);
  EXPECT_EQ(intersect_count_gallop(small, large), expected);
  EXPECT_EQ(intersect_count_sorted(small, large), expected);
  EXPECT_EQ(intersect_count_sorted(large, small), expected);
}

TEST(SortedIdsTest, ForcedSwarMatchesVectorized) {
  util::Rng rng(test::fuzz_seed(0x51D5));
  for (int iter = 0; iter < 100; ++iter) {
    const std::uint32_t universe =
        16 + static_cast<std::uint32_t>(rng.below(1024));
    const std::uint64_t cap = std::min<std::uint64_t>(universe, 200);
    const Ids a = random_sorted_ids(rng, rng.below(cap), universe);
    const Ids b = random_sorted_ids(rng, rng.below(cap), universe);
    simd::set_force_level(simd::Level::Swar);
    const std::size_t swar = intersect_count_sorted(a, b);
    simd::set_force_level(std::nullopt);
    const std::size_t vec = intersect_count_sorted(a, b);
    EXPECT_EQ(swar, vec);
    EXPECT_EQ(swar, naive_count(a, b));
  }
}

}  // namespace
}  // namespace bfhrf::util
