#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hpp"

namespace bfhrf::util {
namespace {

TEST(HashTest, Mix64IsDeterministic) {
  EXPECT_EQ(mix64(0), mix64(0));
  EXPECT_EQ(mix64(12345), mix64(12345));
}

TEST(HashTest, Mix64SpreadsNearbyInputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    outputs.insert(mix64(i));
  }
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(HashTest, HashWordsEmptySpanIsStable) {
  const std::vector<std::uint64_t> empty;
  EXPECT_EQ(hash_words(empty), hash_words(empty));
}

TEST(HashTest, HashWordsSensitiveToEveryWord) {
  std::vector<std::uint64_t> words{1, 2, 3, 4};
  const std::uint64_t base = hash_words(words);
  for (std::size_t i = 0; i < words.size(); ++i) {
    auto mutated = words;
    mutated[i] ^= 1;
    EXPECT_NE(hash_words(mutated), base) << "word " << i;
  }
}

TEST(HashTest, HashWordsSensitiveToSeed) {
  const std::vector<std::uint64_t> words{42, 43};
  EXPECT_NE(hash_words(words, 0), hash_words(words, 1));
}

TEST(HashTest, HashWordsOrderSensitive) {
  const std::vector<std::uint64_t> ab{1, 2};
  const std::vector<std::uint64_t> ba{2, 1};
  EXPECT_NE(hash_words(ab), hash_words(ba));
}

TEST(HashTest, SeededFamilyMembersDisagree) {
  const SeededWordHash h1(1);
  const SeededWordHash h2(2);
  const std::vector<std::uint64_t> words{7, 8, 9};
  EXPECT_NE(h1(words), h2(words));
  EXPECT_EQ(h1(words), SeededWordHash(1)(words));
}

TEST(HashTest, CollisionRateIsLowOnRandomKeys) {
  Rng rng(99);
  std::set<std::uint64_t> hashes;
  constexpr int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) {
    const std::vector<std::uint64_t> key{rng(), rng()};
    hashes.insert(hash_words(key));
  }
  // Birthday bound at 64 bits: collisions among 2e4 keys are ~1e-11 likely.
  EXPECT_EQ(hashes.size(), static_cast<std::size_t>(kKeys));
}

TEST(HashTest, HashCombineNotCommutative) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

}  // namespace
}  // namespace bfhrf::util
