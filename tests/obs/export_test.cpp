// JSON exporter golden tests. dump(os, snap) is a pure formatter compiled
// in BOTH obs modes, so these run (and the goldens hold) with
// -DBFHRF_OBS=OFF too — only the live-registry checks gate on
// compiled_in().
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "obs/metrics.hpp"

namespace bfhrf::obs {
namespace {

TEST(ObsExport, GoldenEmptySnapshot) {
  Snapshot snap;
  snap.compiled = false;
  snap.enabled = false;
  const std::string expected =
      "{\n"
      "  \"version\": 1,\n"
      "  \"compiled\": false,\n"
      "  \"enabled\": false,\n"
      "  \"counters\": {},\n"
      "  \"gauges\": {},\n"
      "  \"histograms\": {},\n"
      "  \"spans\": [],\n"
      "  \"spans_dropped\": 0\n"
      "}\n";
  EXPECT_EQ(dump_string(snap), expected);
}

TEST(ObsExport, GoldenPopulatedSnapshot) {
  Snapshot snap;
  snap.compiled = true;
  snap.enabled = true;
  snap.counters = {{"a.b.c", 42}, {"z", 0}};
  snap.gauges = {{"g.bytes", 1048576.0}, {"g.ratio", 0.5}};
  HistogramSnapshot h;
  h.edges = {1.0, 2.0};
  h.buckets = {1, 2, 3};
  h.count = 6;
  h.sum = 7.5;
  h.min = 0.25;
  h.max = 4.0;
  snap.histograms = {{"h.seconds", h}};
  snap.spans = {{.name = "build", .start_ns = 1500, .dur_ns = 2500,
                 .thread = 0}};
  snap.spans_dropped = 1;

  const std::string expected =
      "{\n"
      "  \"version\": 1,\n"
      "  \"compiled\": true,\n"
      "  \"enabled\": true,\n"
      "  \"counters\": {\n"
      "    \"a.b.c\": 42,\n"
      "    \"z\": 0\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"g.bytes\": 1048576,\n"
      "    \"g.ratio\": 0.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"h.seconds\": {\"count\": 6, \"sum\": 7.5, \"min\": 0.25, "
      "\"max\": 4, \"edges\": [1, 2], \"buckets\": [1, 2, 3]}\n"
      "  },\n"
      "  \"spans\": [\n"
      "    {\"name\": \"build\", \"thread\": 0, \"start_us\": 1, "
      "\"dur_us\": 2}\n"
      "  ],\n"
      "  \"spans_dropped\": 1\n"
      "}\n";
  EXPECT_EQ(dump_string(snap), expected);
}

TEST(ObsExport, EscapesNamesAndNullsNonFiniteValues) {
  Snapshot snap;
  snap.compiled = true;
  snap.enabled = true;
  snap.counters = {{std::string("we\"ird\\name\n\x01"), 1}};
  snap.gauges = {{"inf", std::numeric_limits<double>::infinity()},
                 {"nan", std::numeric_limits<double>::quiet_NaN()}};
  const std::string out = dump_string(snap);
  EXPECT_NE(out.find("\"we\\\"ird\\\\name\\n\\u0001\": 1"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"inf\": null"), std::string::npos) << out;
  EXPECT_NE(out.find("\"nan\": null"), std::string::npos) << out;
}

TEST(ObsExport, NumbersKeepIntegersExactAndDoublesRoundTrip) {
  Snapshot snap;
  snap.compiled = true;
  snap.enabled = true;
  // 2^53 - 1 is the largest double-exact integer; it must not be emitted
  // in scientific notation.
  snap.gauges = {{"big", 9007199254740991.0}, {"third", 1.0 / 3.0}};
  const std::string out = dump_string(snap);
  EXPECT_NE(out.find("\"big\": 9007199254740991"), std::string::npos) << out;
  EXPECT_NE(out.find("\"third\": 0.33333333333333331"), std::string::npos)
      << out;
}

TEST(ObsExport, LiveDumpIsWellFormedInBothModes) {
  // Smoke-check the zero-argument overload against the real registry; the
  // envelope must be present whether or not the layer is compiled in.
  const std::string out = dump_string();
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.substr(out.size() - 2), "}\n");
  EXPECT_NE(out.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(out.find("\"counters\""), std::string::npos);
  EXPECT_NE(out.find("\"spans_dropped\""), std::string::npos);
}

TEST(ObsExport, LiveCounterAppearsInDump) {
  if (!compiled_in()) {
    GTEST_SKIP() << "observability compiled out";
  }
  reset();
  const Counter c = counter("test.export.live");
  c.inc(11);
  const std::string out = dump_string();  // snapshots (and flushes) first
  EXPECT_NE(out.find("\"test.export.live\": 11"), std::string::npos) << out;
}

TEST(ObsExport, SnapshotNamesAreSorted) {
  if (!compiled_in()) {
    GTEST_SKIP() << "observability compiled out";
  }
  reset();
  counter("test.sort.zz").inc();
  counter("test.sort.aa").inc();
  counter("test.sort.mm").inc();
  const Snapshot snap = snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
}

}  // namespace
}  // namespace bfhrf::obs
