// ThreadPool metric integration: the per-worker sinks plus the per-task
// flush in worker_loop must lose no increments — wait_idle() returning
// means every completed task's counts are visible in the registry.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"

namespace bfhrf::parallel {
namespace {

TEST(PoolMetrics, NoLostIncrementsUnder8x10k) {
  if (!obs::compiled_in()) {
    GTEST_SKIP() << "observability compiled out";
  }
  obs::reset();
  const obs::Counter c = obs::counter("test.pool.increments");
  constexpr std::uint64_t kTasks = 10000;
  {
    ThreadPool pool(8);
    for (std::uint64_t i = 0; i < kTasks; ++i) {
      pool.submit([c] { c.inc(); });
    }
    pool.wait_idle();
    // Visible immediately after wait_idle, before the pool is destroyed:
    // workers flush their sinks per task, not just at thread exit.
    EXPECT_EQ(obs::counter_value("test.pool.increments"), kTasks);
    EXPECT_EQ(obs::counter_value("parallel.pool.tasks"), kTasks);
  }
  // The per-worker series partitions the same total.
  std::uint64_t per_worker_sum = 0;
  for (int i = 0; i < 8; ++i) {
    per_worker_sum += obs::counter_value("parallel.pool.worker." +
                                         std::to_string(i) + ".tasks");
  }
  EXPECT_EQ(per_worker_sum, kTasks);
}

TEST(PoolMetrics, StatsAccumulateRegardlessOfObsMode) {
  // WorkerStats live in the pool itself, so this invariant holds with the
  // obs layer compiled out too.
  std::atomic<std::uint64_t> done{0};
  ThreadPool pool(4);
  constexpr std::uint64_t kTasks = 1000;
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), kTasks);

  const auto stats = pool.stats();
  ASSERT_EQ(stats.size(), 4u);
  std::uint64_t total = 0;
  for (const auto& ws : stats) {
    total += ws.tasks;
    EXPECT_GE(ws.idle_seconds, 0.0);
  }
  EXPECT_EQ(total, kTasks);
}

TEST(PoolMetrics, ParallelForCountsItemsAndChunks) {
  if (!obs::compiled_in()) {
    GTEST_SKIP() << "observability compiled out";
  }
  obs::reset();
  std::atomic<std::uint64_t> touched{0};
  parallel_for(
      0, 1000, 8,
      [&touched](std::size_t) {
        touched.fetch_add(1, std::memory_order_relaxed);
      },
      /*grain=*/16);
  EXPECT_EQ(touched.load(), 1000u);
  EXPECT_EQ(obs::counter_value("parallel.for.invocations"), 1u);
  EXPECT_EQ(obs::counter_value("parallel.for.items"), 1000u);
  const std::uint64_t chunks = obs::counter_value("parallel.for.chunks");
  EXPECT_GE(chunks, 1u);
  EXPECT_LE(chunks, 1000u / 16 + 8);
  // Steals = chunk claims beyond each participating worker's first, so
  // chunks - steals = the number of workers that got at least one chunk.
  const std::uint64_t steals = obs::counter_value("parallel.for.steals");
  ASSERT_LE(steals, chunks);
  EXPECT_GE(chunks - steals, 1u);
  EXPECT_LE(chunks - steals, 8u);
}

TEST(PoolMetrics, InlineParallelForStillCounts) {
  if (!obs::compiled_in()) {
    GTEST_SKIP() << "observability compiled out";
  }
  obs::reset();
  parallel_for(0, 10, 1, [](std::size_t) {});
  EXPECT_EQ(obs::counter_value("parallel.for.items"), 10u);
  EXPECT_EQ(obs::counter_value("parallel.for.chunks"), 1u);
  EXPECT_EQ(obs::counter_value("parallel.for.steals"), 0u);
}

TEST(PoolMetrics, WaitIdleRethrowsAndStillDrains) {
  if (!obs::compiled_in()) {
    GTEST_SKIP() << "observability compiled out";
  }
  obs::reset();
  const obs::Counter c = obs::counter("test.pool.before_throw");
  ThreadPool pool(2);
  pool.submit([c] { c.inc(); });
  pool.submit([] { throw std::runtime_error("task failed"); });
  pool.submit([c] { c.inc(); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error path must still publish the completed tasks' metrics.
  EXPECT_EQ(obs::counter_value("test.pool.before_throw"), 2u);
  EXPECT_EQ(obs::counter_value("parallel.pool.tasks"), 3u);
}

}  // namespace
}  // namespace bfhrf::parallel
