// Registry semantics: handle registration, per-thread sink merging
// (associative/commutative), histogram bucket placement, timer
// monotonicity, the runtime kill switch, and reset().
//
// Tests that need the real registry skip themselves when the layer is
// compiled out (-DBFHRF_OBS=OFF); the structural ones (bucket_edges,
// ScopedTimer) run in both modes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace bfhrf::obs {
namespace {

TEST(ObsBuckets, LogSpacedEdges) {
  const auto edges = bucket_edges({.min = 1.0, .factor = 2.0, .buckets = 4});
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_DOUBLE_EQ(edges[0], 1.0);
  EXPECT_DOUBLE_EQ(edges[1], 2.0);
  EXPECT_DOUBLE_EQ(edges[2], 4.0);
  EXPECT_DOUBLE_EQ(edges[3], 8.0);
}

TEST(ObsBuckets, SpecIsSanitized) {
  // Degenerate specs are clamped rather than trusted: non-positive min,
  // factor <= 1 and zero bucket counts all fall back to usable values.
  const auto bad = bucket_edges({.min = -3.0, .factor = 0.5, .buckets = 0});
  ASSERT_FALSE(bad.empty());
  EXPECT_GT(bad[0], 0.0);
  for (std::size_t i = 1; i < bad.size(); ++i) {
    EXPECT_GT(bad[i], bad[i - 1]);
  }
  EXPECT_LE(bucket_edges({.min = 1.0, .factor = 2.0, .buckets = 100000})
                .size(),
            512u);
}

TEST(ObsTimer, SecondsIsMonotonicAndNonNegative) {
  const Histogram h = histogram("test.timer.seconds");
  const ScopedTimer t(h);
  const double s1 = t.seconds();
  // A little real work so the clock can advance (not required to).
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) {
    sink = sink + static_cast<double>(i);
  }
  const double s2 = t.seconds();
  EXPECT_GE(s1, 0.0);
  EXPECT_GE(s2, s1);
}

TEST(ObsRegistry, CounterAggregatesAcrossThreads) {
  if (!compiled_in()) {
    GTEST_SKIP() << "observability compiled out";
  }
  reset();
  const Counter c = counter("test.registry.multithread");
  // Each thread contributes a distinct total and flushes at a different
  // cadence; the merge must be order-independent (associative and
  // commutative), so the aggregate is the plain sum regardless of how the
  // per-thread flushes interleave.
  constexpr std::uint64_t kPerThread[] = {1000, 777, 431};
  std::vector<std::thread> threads;
  for (const std::uint64_t total : kPerThread) {
    threads.emplace_back([c, total] {
      const ScopedThreadSink sink;
      for (std::uint64_t i = 0; i < total; ++i) {
        c.inc();
        if (i % 97 == 0) {
          flush_thread();  // partial flushes must not double-count
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter_value("test.registry.multithread"), 1000u + 777u + 431u);
}

TEST(ObsRegistry, HandlesAreInternedByName) {
  if (!compiled_in()) {
    GTEST_SKIP() << "observability compiled out";
  }
  reset();
  const Counter a = counter("test.registry.interned");
  const Counter b = counter("test.registry.interned");
  a.inc(2);
  b.inc(3);
  flush_thread();
  EXPECT_EQ(counter_value("test.registry.interned"), 5u);
}

TEST(ObsRegistry, HistogramBucketPlacement) {
  if (!compiled_in()) {
    GTEST_SKIP() << "observability compiled out";
  }
  reset();
  const Histogram h = histogram("test.registry.hist",
                                {.min = 1.0, .factor = 2.0, .buckets = 4});
  // "le" semantics: a value lands in the first bucket whose upper edge is
  // >= v; values above the last edge go to the implicit overflow bucket.
  h.observe(0.5);  // <= 1       -> bucket 0
  h.observe(1.0);  // <= 1       -> bucket 0
  h.observe(2.0);  // <= 2       -> bucket 1
  h.observe(3.0);  // <= 4       -> bucket 2
  h.observe(8.0);  // <= 8       -> bucket 3
  h.observe(9.0);  // >  8       -> overflow
  flush_thread();

  const Snapshot snap = snapshot();
  const HistogramSnapshot* found = nullptr;
  for (const auto& [name, hist] : snap.histograms) {
    if (name == "test.registry.hist") {
      found = &hist;
    }
  }
  ASSERT_NE(found, nullptr);
  ASSERT_EQ(found->edges.size(), 4u);
  EXPECT_DOUBLE_EQ(found->edges[3], 8.0);
  ASSERT_EQ(found->buckets.size(), 5u);  // 4 finite + overflow
  EXPECT_EQ(found->buckets[0], 2u);
  EXPECT_EQ(found->buckets[1], 1u);
  EXPECT_EQ(found->buckets[2], 1u);
  EXPECT_EQ(found->buckets[3], 1u);
  EXPECT_EQ(found->buckets[4], 1u);
  EXPECT_EQ(found->count, 6u);
  EXPECT_DOUBLE_EQ(found->sum, 23.5);
  EXPECT_DOUBLE_EQ(found->min, 0.5);
  EXPECT_DOUBLE_EQ(found->max, 9.0);
}

TEST(ObsRegistry, HistogramMergesAcrossThreads) {
  if (!compiled_in()) {
    GTEST_SKIP() << "observability compiled out";
  }
  reset();
  const Histogram h = histogram("test.registry.hist_merge",
                                {.min = 1.0, .factor = 2.0, .buckets = 3});
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([h, t] {
      const ScopedThreadSink sink;
      for (int i = 0; i < 100; ++i) {
        h.observe(static_cast<double>(t) + 0.5);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const Snapshot snap = snapshot();
  for (const auto& [name, hist] : snap.histograms) {
    if (name == "test.registry.hist_merge") {
      EXPECT_EQ(hist.count, 400u);
      EXPECT_DOUBLE_EQ(hist.min, 0.5);
      EXPECT_DOUBLE_EQ(hist.max, 3.5);
      EXPECT_DOUBLE_EQ(hist.sum, 100 * (0.5 + 1.5 + 2.5 + 3.5));
      return;
    }
  }
  FAIL() << "histogram not found in snapshot";
}

TEST(ObsRegistry, GaugeIsLastWriteWins) {
  if (!compiled_in()) {
    GTEST_SKIP() << "observability compiled out";
  }
  reset();
  const Gauge g = gauge("test.registry.gauge");
  g.set(1.0);
  g.set(42.5);
  const Snapshot snap = snapshot();
  for (const auto& [name, v] : snap.gauges) {
    if (name == "test.registry.gauge") {
      EXPECT_DOUBLE_EQ(v, 42.5);
      return;
    }
  }
  FAIL() << "gauge not found in snapshot";
}

TEST(ObsRegistry, RuntimeKillSwitchDropsIncrements) {
  if (!compiled_in()) {
    GTEST_SKIP() << "observability compiled out";
  }
  reset();
  const Counter c = counter("test.registry.kill_switch");
  set_enabled(false);
  c.inc(100);
  flush_thread();
  EXPECT_EQ(counter_value("test.registry.kill_switch"), 0u);
  EXPECT_FALSE(snapshot().enabled);
  set_enabled(true);
  c.inc(3);
  EXPECT_EQ(counter_value("test.registry.kill_switch"), 3u);
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  if (!compiled_in()) {
    GTEST_SKIP() << "observability compiled out";
  }
  reset();
  const Counter c = counter("test.registry.reset");
  c.inc(7);
  flush_thread();
  EXPECT_EQ(counter_value("test.registry.reset"), 7u);
  reset();
  EXPECT_EQ(counter_value("test.registry.reset"), 0u);
  // The old handle still routes to the (zeroed) slot.
  c.inc(2);
  EXPECT_EQ(counter_value("test.registry.reset"), 2u);
}

TEST(ObsRegistry, TraceSpansAreRecorded) {
  if (!compiled_in()) {
    GTEST_SKIP() << "observability compiled out";
  }
  reset();
  {
    const TraceSpan span("test.span.outer");
  }
  const Snapshot snap = snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "test.span.outer");
}

TEST(ObsRegistry, CompiledOutIsInert) {
  if (compiled_in()) {
    GTEST_SKIP() << "only meaningful with -DBFHRF_OBS=OFF";
  }
  const Counter c = counter("test.registry.off");
  c.inc(5);
  flush_thread();
  EXPECT_EQ(counter_value("test.registry.off"), 0u);
  const Snapshot snap = snapshot();
  EXPECT_FALSE(snap.compiled);
  EXPECT_FALSE(snap.enabled);
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.spans.empty());
}

TEST(ObsRegistry, DefaultHandlesAreInert) {
  const Counter c;
  const Gauge g;
  const Histogram h;
  c.inc(10);
  g.set(1.0);
  h.observe(1.0);
  flush_thread();  // must not crash; nothing to record
}

}  // namespace
}  // namespace bfhrf::obs
