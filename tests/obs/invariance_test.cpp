// Instrumentation invariance: observability must never change results.
// The engines are run with metrics enabled and disabled (runtime kill
// switch) and their outputs compared bit-for-bit; both are also checked
// against the sequential ground truth. With -DBFHRF_OBS=OFF the kill
// switch is a no-op and the comparison degenerates to determinism across
// repeated runs — still a meaningful check.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/all_pairs.hpp"
#include "core/bfhrf.hpp"
#include "core/rf_matrix.hpp"
#include "core/sequential_rf.hpp"
#include "obs/metrics.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf {
namespace {

struct EngineOutputs {
  std::vector<double> avg;
  std::vector<double> avg_compressed;
  core::RfMatrix matrix;
};

EngineOutputs run_engines(const std::vector<phylo::Tree>& trees) {
  EngineOutputs out;
  out.avg = core::bfhrf_average_rf(trees, trees, {.threads = 4});
  out.avg_compressed =
      core::bfhrf_average_rf(trees, trees,
                             {.threads = 4, .compressed_keys = true});
  out.matrix = core::all_pairs_rf(trees, {.threads = 4});
  return out;
}

bool bit_identical(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(ObsInvariance, RfOutputsIdenticalWithMetricsOnAndOff) {
  const auto taxa = phylo::TaxonSet::make_numbered(24);
  util::Rng rng(0x0B5ECAFE);
  const auto trees = test::random_collection(taxa, 24, 4, rng);

  obs::set_enabled(true);
  const EngineOutputs on = run_engines(trees);
  obs::set_enabled(false);
  const EngineOutputs off = run_engines(trees);
  obs::set_enabled(true);

  EXPECT_TRUE(bit_identical(on.avg, off.avg));
  EXPECT_TRUE(bit_identical(on.avg_compressed, off.avg_compressed));
  ASSERT_EQ(on.matrix.size(), off.matrix.size());
  for (std::size_t i = 0; i < on.matrix.size(); ++i) {
    for (std::size_t j = i + 1; j < on.matrix.size(); ++j) {
      ASSERT_EQ(on.matrix.at(i, j), off.matrix.at(i, j))
          << "matrix divergence at (" << i << ", " << j << ")";
    }
  }

  // Both instrumented and uninstrumented runs must match the sequential
  // ground truth — invariance alone would also pass if both were wrong.
  const auto seq = core::sequential_avg_rf(trees, trees).avg_rf;
  ASSERT_EQ(on.avg.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_DOUBLE_EQ(on.avg[i], seq[i]) << "query tree " << i;
    EXPECT_DOUBLE_EQ(on.avg_compressed[i], seq[i]) << "query tree " << i;
  }
}

TEST(ObsInvariance, MetricsActuallyRecordWhenEnabled) {
  // Guards the test above against vacuous success: with the layer compiled
  // in and enabled, running the engine must move the counters.
  if (!obs::compiled_in()) {
    GTEST_SKIP() << "observability compiled out";
  }
  obs::reset();
  obs::set_enabled(true);
  const auto taxa = phylo::TaxonSet::make_numbered(16);
  util::Rng rng(0x0B5);
  const auto trees = test::random_collection(taxa, 8, 3, rng);
  const auto avg = core::bfhrf_average_rf(trees, trees, {.threads = 2});
  ASSERT_EQ(avg.size(), trees.size());
  EXPECT_EQ(obs::counter_value("bfhrf.build.trees"), trees.size());
  EXPECT_EQ(obs::counter_value("bfhrf.query.trees"), trees.size());
  EXPECT_GT(obs::counter_value("core.frequency_hash.probes"), 0u);
  const auto snap = obs::snapshot();
  bool unique_gauge_seen = false;
  for (const auto& [name, v] : snap.gauges) {
    if (name == "bfhrf.unique_bipartitions") {
      unique_gauge_seen = true;
      EXPECT_GT(v, 0.0);
    }
  }
  EXPECT_TRUE(unique_gauge_seen);
}

}  // namespace
}  // namespace bfhrf
