#include "sim/moves.hpp"

#include <gtest/gtest.h>

#include "core/rf.hpp"
#include "phylo/newick.hpp"
#include "sim/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bfhrf::sim {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

TEST(MovesTest, NniPreservesLeavesAndBinary) {
  const auto taxa = TaxonSet::make_numbered(20);
  util::Rng rng(1);
  Tree t = yule_tree(taxa, rng);
  for (int i = 0; i < 30; ++i) {
    random_nni(t, rng);
    t.validate();
    EXPECT_EQ(t.num_leaves(), 20u);
    EXPECT_TRUE(t.is_binary());
  }
}

TEST(MovesTest, NniChangesRfByAtMostTwo) {
  const auto taxa = TaxonSet::make_numbered(24);
  util::Rng rng(2);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree base = yule_tree(taxa, rng);
    Tree moved = base;
    random_nni(moved, rng);
    EXPECT_LE(core::rf_distance(base, moved), 2u);
  }
}

TEST(MovesTest, SprPreservesLeavesAndBinary) {
  const auto taxa = TaxonSet::make_numbered(20);
  util::Rng rng(3);
  Tree t = yule_tree(taxa, rng);
  for (int i = 0; i < 30; ++i) {
    random_spr_leaf(t, rng);
    t.validate();
    EXPECT_EQ(t.num_leaves(), 20u);
    EXPECT_TRUE(t.is_binary());
    EXPECT_EQ(t.leaf_taxa_sorted().size(), 20u);
  }
}

TEST(MovesTest, SprOnTinyTreeIsNoOp) {
  const auto taxa = TaxonSet::make_numbered(3);
  util::Rng rng(4);
  Tree t = yule_tree(taxa, rng);
  const std::size_t nodes = t.num_nodes();
  random_spr_leaf(t, rng);
  EXPECT_EQ(t.num_nodes(), nodes);
}

TEST(MovesTest, PerturbZeroMovesIsIdentity) {
  const auto taxa = TaxonSet::make_numbered(15);
  util::Rng rng(5);
  const Tree base = yule_tree(taxa, rng);
  Tree t = base;
  perturb(t, rng, 0);
  EXPECT_EQ(core::rf_distance(base, t), 0u);
}

TEST(MovesTest, MoreMovesMeansLargerExpectedDistance) {
  const auto taxa = TaxonSet::make_numbered(40);
  util::Rng rng(6);
  double few_total = 0;
  double many_total = 0;
  constexpr int kReps = 25;
  for (int rep = 0; rep < kReps; ++rep) {
    const Tree base = yule_tree(taxa, rng);
    Tree few = base;
    perturb(few, rng, 1);
    Tree many = base;
    perturb(many, rng, 12);
    few_total += static_cast<double>(core::rf_distance(base, few));
    many_total += static_cast<double>(core::rf_distance(base, many));
  }
  EXPECT_LT(few_total, many_total);
}

TEST(MovesTest, PerturbationKeepsTaxaIdentical) {
  const auto taxa = TaxonSet::make_numbered(30);
  util::Rng rng(7);
  const Tree base = yule_tree(taxa, rng);
  Tree t = base;
  perturb(t, rng, 20);
  EXPECT_EQ(t.leaf_taxa_sorted(), base.leaf_taxa_sorted());
}

// --- edge cases: tiny, star, and multifurcating trees -----------------

/// A star tree: the root is the only internal node.
Tree star_tree(const phylo::TaxonSetPtr& taxa) {
  Tree t(taxa);
  const auto root = t.add_root();
  for (phylo::TaxonId i = 0; i < static_cast<phylo::TaxonId>(taxa->size());
       ++i) {
    t.add_leaf(root, i);
  }
  return t;
}

TEST(MovesTest, NniOnStarTreeReportsNoOp) {
  // No internal edge — NNI is undefined; the move must decline, not crash
  // or silently reshape the tree.
  const auto taxa = TaxonSet::make_numbered(8);
  util::Rng rng(10);
  Tree t = star_tree(taxa);
  const std::string before = phylo::write_newick(t);
  EXPECT_FALSE(random_nni(t, rng));
  EXPECT_EQ(phylo::write_newick(t), before);
}

TEST(MovesTest, NniOnNearStarTreeUsesTheOnlyInternalEdge) {
  // One internal edge: ((a,b),c,d...). NNI must apply and keep RF <= 2.
  const auto taxa = TaxonSet::make_numbered(6);
  phylo::TaxonSetPtr parsed = taxa;
  Tree t = phylo::parse_newick("((t0,t1),t2,t3,t4,t5);", parsed);
  util::Rng rng(11);
  const Tree before = t;
  EXPECT_TRUE(random_nni(t, rng));
  t.validate();
  EXPECT_EQ(t.num_leaves(), 6u);
  EXPECT_LE(core::rf_distance(before, t), 2u);
}

TEST(MovesTest, NniOnTinyTreesReportsNoOp) {
  for (std::size_t n : {2u, 3u}) {
    const auto taxa = TaxonSet::make_numbered(n);
    util::Rng rng(12);
    Tree t = yule_tree(taxa, rng);
    EXPECT_FALSE(random_nni(t, rng)) << "n=" << n;
  }
}

TEST(MovesTest, SprReportsWhetherItApplied) {
  const auto taxa3 = TaxonSet::make_numbered(3);
  const auto taxa4 = TaxonSet::make_numbered(4);
  util::Rng rng(13);
  Tree tiny = yule_tree(taxa3, rng);
  EXPECT_FALSE(random_spr_leaf(tiny, rng));
  Tree minimal = yule_tree(taxa4, rng);
  EXPECT_TRUE(random_spr_leaf(minimal, rng));
  minimal.validate();
  EXPECT_EQ(minimal.num_leaves(), 4u);
  EXPECT_TRUE(minimal.is_binary());
}

TEST(MovesTest, MovesOnMultifurcatingTreesKeepLeafSet) {
  const auto taxa = TaxonSet::make_numbered(18);
  util::Rng rng(14);
  Tree t = multifurcating_tree(taxa, rng, 0.5);
  const auto leaves_before = t.leaf_taxa_sorted();
  for (int i = 0; i < 20; ++i) {
    random_nni(t, rng);
    t.validate();
    random_spr_leaf(t, rng);
    t.validate();
  }
  EXPECT_EQ(t.leaf_taxa_sorted(), leaves_before);
}

TEST(MovesTest, EmptyTreeIsRejectedWithTypedError) {
  util::Rng rng(15);
  Tree empty(TaxonSet::make_numbered(4));
  EXPECT_THROW(random_nni(empty, rng), InvalidArgument);
  EXPECT_THROW(random_spr_leaf(empty, rng), InvalidArgument);
  EXPECT_THROW(perturb(empty, rng, 1), InvalidArgument);
}

TEST(MovesTest, SprWithoutTaxonSetIsRejectedWithTypedError) {
  const auto taxa = TaxonSet::make_numbered(6);
  util::Rng rng(16);
  Tree t = yule_tree(taxa, rng);
  t.set_taxa(nullptr);
  EXPECT_THROW(random_spr_leaf(t, rng), InvalidArgument);
}

TEST(MovesTest, PerturbValidatesSprProbability) {
  const auto taxa = TaxonSet::make_numbered(8);
  util::Rng rng(17);
  Tree t = yule_tree(taxa, rng);
  EXPECT_THROW(perturb(t, rng, 1, -0.1), InvalidArgument);
  EXPECT_THROW(perturb(t, rng, 1, 1.5), InvalidArgument);
}

TEST(MovesTest, PerturbCountsAppliedMoves) {
  util::Rng rng(18);
  // On a 3-leaf tree every move declines: zero applied.
  Tree tiny = yule_tree(TaxonSet::make_numbered(3), rng);
  EXPECT_EQ(perturb(tiny, rng, 5), 0u);
  // On a real tree every move applies.
  Tree t = yule_tree(TaxonSet::make_numbered(12), rng);
  EXPECT_EQ(perturb(t, rng, 5), 5u);
}

TEST(MovesTest, MovesPreserveBranchLengthPresence) {
  const auto taxa = TaxonSet::make_numbered(16);
  util::Rng rng(8);
  Tree t = yule_tree(taxa, rng, GeneratorOptions{.branch_lengths = true});
  perturb(t, rng, 10);
  // Leaves keep carrying lengths through prune/regraft cycles.
  std::size_t with_len = 0;
  for (const auto leaf : t.leaves()) {
    with_len += t.node(leaf).has_length ? std::size_t{1} : std::size_t{0};
  }
  EXPECT_GT(with_len, 0u);
}

}  // namespace
}  // namespace bfhrf::sim
