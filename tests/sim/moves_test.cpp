#include "sim/moves.hpp"

#include <gtest/gtest.h>

#include "core/rf.hpp"
#include "sim/generators.hpp"
#include "util/rng.hpp"

namespace bfhrf::sim {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

TEST(MovesTest, NniPreservesLeavesAndBinary) {
  const auto taxa = TaxonSet::make_numbered(20);
  util::Rng rng(1);
  Tree t = yule_tree(taxa, rng);
  for (int i = 0; i < 30; ++i) {
    random_nni(t, rng);
    t.validate();
    EXPECT_EQ(t.num_leaves(), 20u);
    EXPECT_TRUE(t.is_binary());
  }
}

TEST(MovesTest, NniChangesRfByAtMostTwo) {
  const auto taxa = TaxonSet::make_numbered(24);
  util::Rng rng(2);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree base = yule_tree(taxa, rng);
    Tree moved = base;
    random_nni(moved, rng);
    EXPECT_LE(core::rf_distance(base, moved), 2u);
  }
}

TEST(MovesTest, SprPreservesLeavesAndBinary) {
  const auto taxa = TaxonSet::make_numbered(20);
  util::Rng rng(3);
  Tree t = yule_tree(taxa, rng);
  for (int i = 0; i < 30; ++i) {
    random_spr_leaf(t, rng);
    t.validate();
    EXPECT_EQ(t.num_leaves(), 20u);
    EXPECT_TRUE(t.is_binary());
    EXPECT_EQ(t.leaf_taxa_sorted().size(), 20u);
  }
}

TEST(MovesTest, SprOnTinyTreeIsNoOp) {
  const auto taxa = TaxonSet::make_numbered(3);
  util::Rng rng(4);
  Tree t = yule_tree(taxa, rng);
  const std::size_t nodes = t.num_nodes();
  random_spr_leaf(t, rng);
  EXPECT_EQ(t.num_nodes(), nodes);
}

TEST(MovesTest, PerturbZeroMovesIsIdentity) {
  const auto taxa = TaxonSet::make_numbered(15);
  util::Rng rng(5);
  const Tree base = yule_tree(taxa, rng);
  Tree t = base;
  perturb(t, rng, 0);
  EXPECT_EQ(core::rf_distance(base, t), 0u);
}

TEST(MovesTest, MoreMovesMeansLargerExpectedDistance) {
  const auto taxa = TaxonSet::make_numbered(40);
  util::Rng rng(6);
  double few_total = 0;
  double many_total = 0;
  constexpr int kReps = 25;
  for (int rep = 0; rep < kReps; ++rep) {
    const Tree base = yule_tree(taxa, rng);
    Tree few = base;
    perturb(few, rng, 1);
    Tree many = base;
    perturb(many, rng, 12);
    few_total += static_cast<double>(core::rf_distance(base, few));
    many_total += static_cast<double>(core::rf_distance(base, many));
  }
  EXPECT_LT(few_total, many_total);
}

TEST(MovesTest, PerturbationKeepsTaxaIdentical) {
  const auto taxa = TaxonSet::make_numbered(30);
  util::Rng rng(7);
  const Tree base = yule_tree(taxa, rng);
  Tree t = base;
  perturb(t, rng, 20);
  EXPECT_EQ(t.leaf_taxa_sorted(), base.leaf_taxa_sorted());
}

TEST(MovesTest, MovesPreserveBranchLengthPresence) {
  const auto taxa = TaxonSet::make_numbered(16);
  util::Rng rng(8);
  Tree t = yule_tree(taxa, rng, GeneratorOptions{.branch_lengths = true});
  perturb(t, rng, 10);
  // Leaves keep carrying lengths through prune/regraft cycles.
  std::size_t with_len = 0;
  for (const auto leaf : t.leaves()) {
    with_len += t.node(leaf).has_length ? std::size_t{1} : std::size_t{0};
  }
  EXPECT_GT(with_len, 0u);
}

}  // namespace
}  // namespace bfhrf::sim
