#include "sim/datasets.hpp"

#include <gtest/gtest.h>

#include "core/bfhrf.hpp"
#include "phylo/newick.hpp"
#include "util/rng.hpp"

namespace bfhrf::sim {
namespace {

TEST(DatasetsTest, SpecsMatchPaperTable2) {
  EXPECT_EQ(avian_like().n_taxa, 48u);
  EXPECT_EQ(avian_like().n_trees, 14446u);
  EXPECT_EQ(insect_like().n_taxa, 144u);
  EXPECT_EQ(insect_like().n_trees, 149278u);
  EXPECT_FALSE(insect_like().branch_lengths);  // unweighted
  EXPECT_EQ(variable_trees(1000).n_taxa, 100u);
  EXPECT_EQ(variable_species(250).n_trees, 1000u);
}

TEST(DatasetsTest, GenerateProducesRequestedShape) {
  const Dataset ds = generate(avian_like(50));
  EXPECT_EQ(ds.taxa->size(), 48u);
  EXPECT_EQ(ds.trees.size(), 50u);
  for (const auto& t : ds.trees) {
    EXPECT_EQ(t.num_leaves(), 48u);
    EXPECT_TRUE(t.is_binary());
    t.validate();
  }
}

TEST(DatasetsTest, DeterministicAcrossCalls) {
  const Dataset a = generate(variable_trees(20));
  const Dataset b = generate(variable_trees(20));
  ASSERT_EQ(a.trees.size(), b.trees.size());
  for (std::size_t i = 0; i < a.trees.size(); ++i) {
    EXPECT_EQ(phylo::write_newick(a.trees[i]),
              phylo::write_newick(b.trees[i]));
  }
}

TEST(DatasetsTest, CollectionIsClusteredNotIdentical) {
  // Perturbed collections must be near the base tree but not all equal —
  // the "centralized distribution" the paper leans on (§VI-C).
  const Dataset ds = generate(variable_trees(30));
  core::Bfhrf engine(ds.taxa->size());
  engine.build(ds.trees);
  const auto stats = engine.stats();
  const std::size_t per_tree = ds.taxa->size() - 3;
  // Not identical: more unique splits than one tree's worth...
  EXPECT_GT(stats.unique_bipartitions, per_tree);
  // ...but strongly clustered: far fewer than r distinct trees' worth.
  EXPECT_LT(stats.unique_bipartitions, 30u * per_tree / 2);
}

TEST(DatasetsTest, InsectLikeIsUnweighted) {
  const Dataset ds = generate(insect_like(5));
  for (const auto& t : ds.trees) {
    for (phylo::NodeId id = 0; id < static_cast<phylo::NodeId>(t.num_nodes());
         ++id) {
      EXPECT_FALSE(t.node(id).has_length);
    }
  }
}

TEST(DatasetsTest, GenerateToFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/bfhrf_dataset.nwk";
  const auto taxa = generate_to_file(variable_trees(12), path);
  auto taxa2 = std::make_shared<phylo::TaxonSet>();
  const auto back = phylo::read_newick_file(path, taxa2);
  EXPECT_EQ(back.size(), 12u);
  EXPECT_EQ(taxa2->size(), taxa->size());
}

TEST(DatasetsTest, InvalidSpecThrows) {
  DatasetSpec bad = variable_trees(0);
  EXPECT_THROW((void)generate(bad), InvalidArgument);
  DatasetSpec tiny = variable_trees(5);
  tiny.n_taxa = 3;
  EXPECT_THROW((void)generate(tiny), InvalidArgument);
}

}  // namespace
}  // namespace bfhrf::sim
