#include "sim/generators.hpp"

#include <gtest/gtest.h>

#include <set>

#include "phylo/bipartition.hpp"
#include "phylo/newick.hpp"
#include "util/rng.hpp"

namespace bfhrf::sim {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

class GeneratorSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GeneratorSweep, YuleTreesAreValidBinary) {
  const std::size_t n = GetParam();
  const auto taxa = TaxonSet::make_numbered(n);
  util::Rng rng(n);
  const Tree t = yule_tree(taxa, rng);
  t.validate();
  EXPECT_EQ(t.num_leaves(), n);
  EXPECT_TRUE(t.is_binary());
  if (n >= 4) {
    EXPECT_EQ(t.num_children(t.root()), 3u);  // canonical unrooted
  }
}

TEST_P(GeneratorSweep, UniformTreesAreValidBinary) {
  const std::size_t n = GetParam();
  const auto taxa = TaxonSet::make_numbered(n);
  util::Rng rng(n + 1);
  const Tree t = uniform_tree(taxa, rng);
  t.validate();
  EXPECT_EQ(t.num_leaves(), n);
  EXPECT_TRUE(t.is_binary());
}

TEST_P(GeneratorSweep, CaterpillarIsValid) {
  const std::size_t n = GetParam();
  const auto taxa = TaxonSet::make_numbered(n);
  util::Rng rng(n + 2);
  const Tree t = caterpillar_tree(taxa, rng);
  t.validate();
  EXPECT_EQ(t.num_leaves(), n);
  EXPECT_TRUE(t.is_binary());
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorSweep,
                         ::testing::Values(4, 5, 6, 10, 48, 100, 144, 500));

TEST(GeneratorsTest, DeterministicFromSeed) {
  const auto taxa = TaxonSet::make_numbered(30);
  util::Rng rng1(42);
  util::Rng rng2(42);
  const Tree a = yule_tree(taxa, rng1);
  const Tree b = yule_tree(taxa, rng2);
  EXPECT_EQ(phylo::write_newick(a), phylo::write_newick(b));
}

TEST(GeneratorsTest, DifferentSeedsGiveDifferentTopologies) {
  const auto taxa = TaxonSet::make_numbered(30);
  util::Rng rng1(1);
  util::Rng rng2(2);
  const Tree a = yule_tree(taxa, rng1);
  const Tree b = yule_tree(taxa, rng2);
  EXPECT_NE(phylo::write_newick(a), phylo::write_newick(b));
}

TEST(GeneratorsTest, BranchLengthsOptional) {
  const auto taxa = TaxonSet::make_numbered(20);
  util::Rng rng(3);
  const Tree bare = yule_tree(taxa, rng);
  for (phylo::NodeId id = 0; id < static_cast<phylo::NodeId>(bare.num_nodes());
       ++id) {
    EXPECT_FALSE(bare.node(id).has_length);
  }
  const Tree weighted =
      yule_tree(taxa, rng, GeneratorOptions{.branch_lengths = true});
  for (phylo::NodeId id = 0;
       id < static_cast<phylo::NodeId>(weighted.num_nodes()); ++id) {
    if (!weighted.is_root(id)) {
      EXPECT_TRUE(weighted.node(id).has_length);
      EXPECT_GT(weighted.node(id).length, 0.0);
    }
  }
}

TEST(GeneratorsTest, UniformSpansManyTopologies) {
  // 100 draws on 8 taxa should hit many distinct topologies.
  const auto taxa = TaxonSet::make_numbered(8);
  util::Rng rng(4);
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) {
    Tree t = uniform_tree(taxa, rng);
    t.deroot();
    // Canonical string via sorted bipartitions.
    const auto bips = phylo::extract_bipartitions(t);
    std::string key;
    for (std::size_t b = 0; b < bips.size(); ++b) {
      key += bips.bitset(b).to_string() + "|";
    }
    seen.insert(key);
  }
  EXPECT_GT(seen.size(), 30u);
}

TEST(GeneratorsTest, MultifurcatingContractionReducesSplits) {
  const auto taxa = TaxonSet::make_numbered(64);
  util::Rng rng(5);
  const Tree none = multifurcating_tree(taxa, rng, 0.0);
  EXPECT_TRUE(none.is_binary());
  const Tree heavy = multifurcating_tree(taxa, rng, 0.9);
  heavy.validate();
  EXPECT_EQ(heavy.num_leaves(), 64u);
  EXPECT_LT(phylo::extract_bipartitions(heavy).size(),
            phylo::extract_bipartitions(none).size());
}

TEST(GeneratorsTest, TinyTaxonSets) {
  for (std::size_t n : {1u, 2u, 3u}) {
    const auto taxa = TaxonSet::make_numbered(n);
    util::Rng rng(n);
    const Tree t = yule_tree(taxa, rng);
    EXPECT_EQ(t.num_leaves(), n);
    t.validate();
  }
}

TEST(GeneratorsTest, EmptyTaxonSetThrows) {
  const auto taxa = std::make_shared<TaxonSet>();
  util::Rng rng(1);
  EXPECT_THROW((void)yule_tree(taxa, rng), InvalidArgument);
  EXPECT_THROW((void)uniform_tree(taxa, rng), InvalidArgument);
  EXPECT_THROW((void)caterpillar_tree(taxa, rng), InvalidArgument);
}

TEST(GeneratorsTest, YuleIsMoreBalancedThanCaterpillar) {
  // Sackin-like check: sum of leaf depths lower for Yule on average.
  const auto taxa = TaxonSet::make_numbered(64);
  util::Rng rng(6);
  const auto depth_sum = [](const Tree& t) {
    std::size_t total = 0;
    for (const auto leaf : t.leaves()) {
      std::size_t d = 0;
      for (phylo::NodeId cur = leaf; !t.is_root(cur);
           cur = t.node(cur).parent) {
        ++d;
      }
      total += d;
    }
    return total;
  };
  std::size_t yule_total = 0;
  std::size_t cat_total = 0;
  for (int i = 0; i < 10; ++i) {
    yule_total += depth_sum(yule_tree(taxa, rng));
    cat_total += depth_sum(caterpillar_tree(taxa, rng));
  }
  EXPECT_LT(yule_total, cat_total);
}

}  // namespace
}  // namespace bfhrf::sim
