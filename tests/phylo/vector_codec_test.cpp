// Vector codec: phylo2vec bijection, text/.p2v corpus I/O, and the
// direct-from-vector bipartition extractor (DESIGN.md §9).
#include "phylo/vector_codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "phylo/bipartition.hpp"
#include "phylo/newick.hpp"
#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"
#include "support/test_util.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bfhrf::phylo {
namespace {

using test::fuzz_seed;
using test::hex_seed;

testing::AssertionResult sets_equal(const BipartitionSet& a,
                                    const BipartitionSet& b) {
  if (a.n_bits() != b.n_bits()) {
    return testing::AssertionFailure()
           << "n_bits " << a.n_bits() << " vs " << b.n_bits();
  }
  if (a.size() != b.size()) {
    return testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!util::equal_words(a[i], b[i])) {
      return testing::AssertionFailure() << "bipartition " << i << " differs";
    }
  }
  if (!(a.leaf_mask() == b.leaf_mask())) {
    return testing::AssertionFailure() << "leaf masks differ";
  }
  return testing::AssertionSuccess();
}

std::size_t rf_between(const Tree& a, const Tree& b) {
  const BipartitionSet sa = extract_bipartitions(a);
  const BipartitionSet sb = extract_bipartitions(b);
  return BipartitionSet::symmetric_difference_size(sa, sb);
}

TreeVector random_vector(std::size_t n, util::Rng& rng) {
  TreeVector v(n - 1);
  for (std::size_t j = 0; j < v.size(); ++j) {
    v[j] = static_cast<std::uint32_t>(rng.below(2 * j + 1));
  }
  return v;
}

TEST(VectorCodec, ValidateRejectsOutOfRangeCodes) {
  EXPECT_NO_THROW(validate_vector(TreeVector{0, 2, 4}));
  EXPECT_THROW(validate_vector(TreeVector{1}), InvalidArgument);
  EXPECT_THROW(validate_vector(TreeVector{0, 3}), InvalidArgument);
  EXPECT_THROW(validate_vector(TreeVector{0, 2, 5}), InvalidArgument);
}

TEST(VectorCodec, SingleLeafRoundTrip) {
  const auto taxa = TaxonSet::make_numbered(1);
  const Tree t = vector_to_tree(TreeVector{}, taxa);
  EXPECT_EQ(t.num_leaves(), 1U);
  EXPECT_TRUE(tree_to_vector(t).empty());
}

TEST(VectorCodec, ThreeTaxaEnumeration) {
  // The 3 vectors on 3 taxa decode to the 3 distinct rooted cherries.
  const auto taxa = TaxonSet::make_numbered(3);
  const struct {
    TreeVector v;
    const char* newick;  // same unrooted topology, trivial splits differ
  } cases[] = {
      {{0, 0}, "((t0,t2),t1);"},
      {{0, 1}, "((t1,t2),t0);"},
      {{0, 2}, "((t0,t1),t2);"},
  };
  for (const auto& c : cases) {
    const Tree decoded = vector_to_tree(c.v, taxa);
    decoded.validate();
    EXPECT_EQ(tree_to_vector(decoded), c.v);
    const Tree expected = parse_newick(c.newick, taxa);
    const BipartitionOptions trivial{.include_trivial = true};
    EXPECT_TRUE(sets_equal(extract_bipartitions(decoded, trivial),
                           extract_bipartitions(expected, trivial)))
        << format_vector(c.v);
  }
}

TEST(VectorCodec, FourTaxaExhaustiveBijection) {
  // All (2*4-3)!! = 15 vectors decode to valid trees and encode back to
  // themselves; decoded trees are pairwise distinct as rooted topologies
  // (their vectors differ, and the map is injective by round trip).
  const auto taxa = TaxonSet::make_numbered(4);
  std::size_t count = 0;
  for (std::uint32_t a = 0; a <= 2; ++a) {
    for (std::uint32_t b = 0; b <= 4; ++b) {
      const TreeVector v{0, a, b};
      const Tree t = vector_to_tree(v, taxa);
      t.validate();
      EXPECT_TRUE(t.is_binary());
      EXPECT_EQ(t.num_leaves(), 4U);
      EXPECT_EQ(tree_to_vector(t), v) << format_vector(v);
      ++count;
    }
  }
  EXPECT_EQ(count, 15U);
}

TEST(VectorCodec, EncodeRejectsNonBinaryAndPartialCoverage) {
  const auto taxa = TaxonSet::make_numbered(4);
  // Root degree 4 (multifurcation beyond the unrooted convention).
  const Tree multi = parse_newick("(t0,t1,t2,t3);", taxa);
  EXPECT_THROW((void)tree_to_vector(multi), InvalidArgument);
  // Binary tree on a strict subset of the taxon namespace.
  const Tree partial = parse_newick("((t0,t1),t2);", taxa);
  EXPECT_THROW((void)tree_to_vector(partial), InvalidArgument);
}

TEST(VectorCodec, DecodeChecksTaxonCount) {
  const auto taxa = TaxonSet::make_numbered(5);
  EXPECT_THROW((void)vector_to_tree(TreeVector{0, 0}, taxa), InvalidArgument);
  EXPECT_THROW((void)vector_to_tree(TreeVector{0}, nullptr), InvalidArgument);
}

TEST(VectorCodec, UnrootedConventionEncodes) {
  // deroot() produces the repo's degree-3 root; the codec roots it back
  // deterministically and the unrooted topology survives the round trip.
  const auto taxa = TaxonSet::make_numbered(6);
  util::Rng rng(0xC0DEC);
  for (int iter = 0; iter < 20; ++iter) {
    Tree t = sim::yule_tree(taxa, rng);
    t.deroot();
    const TreeVector v = tree_to_vector(t);
    const Tree back = vector_to_tree(v, taxa);
    back.validate();
    EXPECT_EQ(rf_between(t, back), 0U);
    EXPECT_EQ(tree_to_vector(back), v);
  }
}

TEST(VectorCodecFuzz, TreeVectorTreeRoundTrip) {
  const std::uint64_t seed = fuzz_seed(0xF10C0DEC);
  SCOPED_TRACE("seed=" + hex_seed(seed));
  util::Rng rng(seed);
  for (const std::size_t n : {2U, 3U, 5U, 17U, 40U, 97U}) {
    const auto taxa = TaxonSet::make_numbered(n);
    for (int iter = 0; iter < 25; ++iter) {
      const Tree t = rng.below(2) == 0 ? sim::yule_tree(taxa, rng)
                                       : sim::uniform_tree(taxa, rng);
      const TreeVector v = tree_to_vector(t);
      ASSERT_EQ(v.size(), n - 1);
      ASSERT_NO_THROW(validate_vector(v));
      const Tree back = vector_to_tree(v, taxa);
      back.validate();
      // Same unrooted topology (RF is rooting-invariant)...
      ASSERT_EQ(rf_between(t, back), 0U) << "n=" << n;
      // ...and the vector is a fixed point of encode(decode(.)).
      ASSERT_EQ(tree_to_vector(back), v) << "n=" << n;
    }
  }
}

TEST(VectorCodecFuzz, VectorTreeVectorIdentity) {
  const std::uint64_t seed = fuzz_seed(0xF20C0DEC);
  SCOPED_TRACE("seed=" + hex_seed(seed));
  util::Rng rng(seed);
  for (const std::size_t n : {2U, 3U, 4U, 8U, 33U, 64U, 129U}) {
    const auto taxa = TaxonSet::make_numbered(n);
    for (int iter = 0; iter < 25; ++iter) {
      const TreeVector v = random_vector(n, rng);
      const Tree t = vector_to_tree(v, taxa);
      t.validate();
      EXPECT_TRUE(t.is_binary());
      ASSERT_EQ(tree_to_vector(t), v) << "n=" << n;
    }
  }
}

TEST(VectorCodecFuzz, NewickVectorNewickRoundTrip) {
  const std::uint64_t seed = fuzz_seed(0xF30C0DEC);
  SCOPED_TRACE("seed=" + hex_seed(seed));
  util::Rng rng(seed);
  const auto taxa = TaxonSet::make_numbered(24);
  for (int iter = 0; iter < 25; ++iter) {
    const Tree t = sim::yule_tree(taxa, rng);
    const std::string nwk = write_newick(t);
    // Newick -> vector -> Newick: reparse, encode, decode, re-emit.
    const Tree parsed = parse_newick(nwk, taxa);
    const TreeVector v = tree_to_vector(parsed);
    const Tree back = vector_to_tree(v, taxa);
    const std::string nwk2 = write_newick(back);
    const Tree reparsed = parse_newick(nwk2, taxa);
    ASSERT_EQ(rf_between(t, reparsed), 0U);
  }
}

TEST(VectorCodecText, FormatParseRoundTrip) {
  EXPECT_EQ(format_vector(TreeVector{0, 2, 4}), "0,2,4");
  EXPECT_EQ(parse_vector("0,2,4"), (TreeVector{0, 2, 4}));
  EXPECT_EQ(parse_vector("  0 , 1 ,\t2  \n"), (TreeVector{0, 1, 2}));
  EXPECT_EQ(parse_vector("0"), TreeVector{0});
}

TEST(VectorCodecText, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)parse_vector(""), ParseError);
  EXPECT_THROW((void)parse_vector("   \n"), ParseError);
  EXPECT_THROW((void)parse_vector("0,,1"), ParseError);
  EXPECT_THROW((void)parse_vector("0,x"), ParseError);
  EXPECT_THROW((void)parse_vector("-1"), ParseError);
  EXPECT_THROW((void)parse_vector("0 1"), ParseError);
  EXPECT_THROW((void)parse_vector("0,2,"), ParseError);
  // Well-formed integers, out-of-range codes.
  EXPECT_THROW((void)parse_vector("1"), ParseError);
  EXPECT_THROW((void)parse_vector("0,9"), ParseError);
}

std::string valid_corpus(bool with_labels, std::size_t n_taxa = 3,
                         std::size_t n_trees = 2) {
  std::ostringstream out(std::ios::binary);
  std::vector<std::string> labels;
  if (with_labels) {
    for (std::size_t i = 0; i < n_taxa; ++i) {
      labels.push_back("taxon_" + std::to_string(i));
    }
  }
  P2vWriter writer(out, static_cast<std::uint32_t>(n_taxa), labels);
  util::Rng rng(7);
  TreeVector v;
  for (std::size_t i = 0; i < n_trees; ++i) {
    v = random_vector(n_taxa, rng);
    writer.write(v);
  }
  writer.finish();
  return out.str();
}

TEST(VectorCodecP2v, WriteReadRoundTrip) {
  const auto taxa = TaxonSet::make_numbered(9, "sp");
  util::Rng rng(0xBEEF);
  std::vector<TreeVector> vectors;
  for (int i = 0; i < 17; ++i) {
    vectors.push_back(random_vector(9, rng));
  }
  std::ostringstream out(std::ios::binary);
  {
    P2vWriter writer(out, 9, taxa->labels());
    for (const TreeVector& v : vectors) {
      writer.write(v);
    }
    writer.finish();
    EXPECT_EQ(writer.count(), 17U);
  }
  std::istringstream in(out.str(), std::ios::binary);
  P2vReader reader(in);
  EXPECT_EQ(reader.header().n_taxa, 9U);
  EXPECT_EQ(reader.header().n_trees, 17U);
  ASSERT_EQ(reader.header().labels.size(), 9U);
  EXPECT_EQ(reader.header().labels[3], "sp3");
  TreeVector row;
  std::size_t i = 0;
  while (reader.next(row)) {
    ASSERT_LT(i, vectors.size());
    EXPECT_EQ(row, vectors[i]) << "record " << i;
    ++i;
  }
  EXPECT_EQ(i, vectors.size());
}

TEST(VectorCodecP2v, LabelFreeCorpus) {
  const std::string bytes = valid_corpus(/*with_labels=*/false);
  std::istringstream in(bytes, std::ios::binary);
  P2vReader reader(in);
  EXPECT_TRUE(reader.header().labels.empty());
  TreeVector row;
  std::size_t count = 0;
  while (reader.next(row)) {
    ++count;
  }
  EXPECT_EQ(count, 2U);
}

TEST(VectorCodecP2v, RejectsBadMagicAndHeaderFields) {
  {
    std::istringstream in(std::string("NOPE"), std::ios::binary);
    EXPECT_THROW(P2vReader r(in), ParseError);
  }
  {
    std::string bytes = valid_corpus(true);
    bytes[0] = 'X';
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW(P2vReader r(in), ParseError);
  }
  {
    // n_taxa == 0.
    std::string bytes = valid_corpus(false);
    bytes[4] = bytes[5] = bytes[6] = bytes[7] = 0;
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW(P2vReader r(in), ParseError);
  }
  {
    // Unknown flag bit (flags field follows magic+u32+u64 = offset 16).
    std::string bytes = valid_corpus(false);
    bytes[16] = static_cast<char>(bytes[16] | 0x80);
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW(P2vReader r(in), ParseError);
  }
  {
    // Implausible label length: first label's u32 at offset 20.
    std::string bytes = valid_corpus(true);
    bytes[20] = static_cast<char>(0xFF);
    bytes[21] = static_cast<char>(0xFF);
    bytes[22] = static_cast<char>(0xFF);
    bytes[23] = static_cast<char>(0x7F);
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW(P2vReader r(in), ParseError);
  }
}

TEST(VectorCodecP2v, RejectsTruncationAtEveryPrefix) {
  // Exact-consumption discipline: EVERY strict prefix of a valid corpus
  // must fail with ParseError (never a silent short read).
  const std::string bytes = valid_corpus(true);
  TreeVector row;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::istringstream in(bytes.substr(0, cut), std::ios::binary);
    EXPECT_THROW(
        {
          P2vReader reader(in);
          while (reader.next(row)) {
          }
        },
        ParseError)
        << "prefix length " << cut;
  }
}

TEST(VectorCodecP2v, RejectsTrailingBytes) {
  const std::string bytes = valid_corpus(false) + "x";
  std::istringstream in(bytes, std::ios::binary);
  P2vReader reader(in);
  TreeVector row;
  EXPECT_TRUE(reader.next(row));
  EXPECT_TRUE(reader.next(row));
  EXPECT_THROW((void)reader.next(row), ParseError);
}

TEST(VectorCodecP2v, RejectsOutOfRangeRecordCodes) {
  std::string bytes = valid_corpus(false, /*n_taxa=*/3, /*n_trees=*/1);
  // Record bytes start right after the 20-byte label-free header; poke the
  // first code (v[0], must be 0) to 9.
  bytes[20] = 9;
  std::istringstream in(bytes, std::ios::binary);
  P2vReader reader(in);
  TreeVector row;
  EXPECT_THROW((void)reader.next(row), ParseError);
}

TEST(VectorCodecP2v, WriterValidatesRecords) {
  std::ostringstream out(std::ios::binary);
  P2vWriter writer(out, 4);
  EXPECT_THROW(writer.write(TreeVector{0, 1}), InvalidArgument);  // width
  EXPECT_THROW(writer.write(TreeVector{0, 1, 9}), InvalidArgument);  // range
  writer.write(TreeVector{0, 1, 2});
  writer.finish();
  EXPECT_THROW(writer.write(TreeVector{0, 1, 2}), InvalidArgument);
  EXPECT_EQ(writer.count(), 1U);
}

TEST(VectorCodecExtractor, MatchesTreeExtractorOnRandomTrees) {
  const std::uint64_t seed = fuzz_seed(0xF40C0DEC);
  SCOPED_TRACE("seed=" + hex_seed(seed));
  util::Rng rng(seed);
  VectorBipartitionExtractor vec_extractor;
  BipartitionExtractor tree_extractor;
  for (const std::size_t n : {2U, 3U, 4U, 9U, 31U, 70U, 150U}) {
    const auto taxa = TaxonSet::make_numbered(n);
    for (int iter = 0; iter < 10; ++iter) {
      const Tree t = sim::uniform_tree(taxa, rng);
      const TreeVector v = tree_to_vector(t);
      const Tree rooted = vector_to_tree(v, taxa);
      for (const bool include_trivial : {false, true}) {
        const BipartitionOptions opts{.include_trivial = include_trivial};
        // Sorted: arenas must match in order against BOTH the rooted
        // decode and the original (possibly unrooted) tree.
        const BipartitionSet& direct = vec_extractor.extract(v, opts);
        EXPECT_TRUE(sets_equal(direct, tree_extractor.extract(rooted, opts)))
            << "n=" << n << " trivial=" << include_trivial;
        EXPECT_TRUE(sets_equal(direct, tree_extractor.extract(t, opts)))
            << "n=" << n << " trivial=" << include_trivial << " (unrooted)";
        // Unsorted fast path: same set after a finalize of each side.
        const BipartitionOptions unsorted{.include_trivial = include_trivial,
                                          .sorted = false};
        BipartitionSet du;
        vec_extractor.extract_into(v, unsorted, du);
        BipartitionSet tu;
        tree_extractor.extract_into(rooted, unsorted, tu);
        EXPECT_EQ(du.size(), tu.size());
        du.finalize();
        tu.finalize();
        EXPECT_TRUE(sets_equal(du, tu))
            << "n=" << n << " trivial=" << include_trivial << " (unsorted)";
      }
    }
  }
}

TEST(VectorCodecExtractor, UnsortedArenaIsDuplicateFree) {
  // The degree-2 root duplicate is skipped structurally, so the unsorted
  // arena has exactly the finalized count.
  util::Rng rng(11);
  const auto taxa = TaxonSet::make_numbered(12);
  VectorBipartitionExtractor extractor;
  for (int iter = 0; iter < 10; ++iter) {
    const TreeVector v = random_vector(12, rng);
    BipartitionSet raw;
    extractor.extract_into(v, {.include_trivial = true, .sorted = false}, raw);
    const std::size_t unsorted_count = raw.size();
    raw.finalize();
    EXPECT_EQ(raw.size(), unsorted_count);
    EXPECT_EQ(unsorted_count, 2 * 12 - 3);
  }
}

TEST(VectorCodecExtractor, RejectsValueModes) {
  VectorBipartitionExtractor extractor;
  const TreeVector v{0, 0};
  EXPECT_THROW(
      (void)extractor.extract(v, {.value = SplitValue::BranchLength}),
      InvalidArgument);
}

TEST(VectorCodecExtractor, SingleLeafUniverse) {
  VectorBipartitionExtractor extractor;
  const BipartitionSet& set = extractor.extract(TreeVector{});
  EXPECT_EQ(set.n_bits(), 1U);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.leaf_mask().count(), 1U);
}

}  // namespace
}  // namespace bfhrf::phylo
