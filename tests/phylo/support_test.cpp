// Support-value plumbing: parsing numeric internal labels, writing them
// back, surviving tree rebuilds, and feeding the support-weighted engine.
#include <gtest/gtest.h>

#include "core/bfhrf.hpp"
#include "core/branch_score.hpp"
#include "core/consensus.hpp"
#include "phylo/bipartition.hpp"
#include "phylo/newick.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::phylo {
namespace {

TEST(SupportTest, NumericInternalLabelsParsed) {
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("((A,B)95:0.1,(C,D)87.5:0.2,E);", taxa);
  std::size_t with_support = 0;
  double total = 0;
  for (NodeId id = 0; id < static_cast<NodeId>(t.num_nodes()); ++id) {
    if (t.node(id).has_support) {
      ++with_support;
      total += t.node(id).support;
    }
  }
  EXPECT_EQ(with_support, 2u);
  EXPECT_DOUBLE_EQ(total, 95 + 87.5);
}

TEST(SupportTest, NonNumericInternalLabelsIgnored) {
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("((A,B)cladeX,(C,D));", taxa);
  for (NodeId id = 0; id < static_cast<NodeId>(t.num_nodes()); ++id) {
    EXPECT_FALSE(t.node(id).has_support);
  }
  // And "cladeX" must not become a taxon.
  EXPECT_EQ(taxa->size(), 4u);
}

TEST(SupportTest, WriterEmitsSupportOnRequest) {
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("((A,B)95:0.5,(C,D)80:0.25);", taxa);
  const std::string without = write_newick(t);
  EXPECT_EQ(without.find("95"), std::string::npos);
  const std::string with =
      write_newick(t, NewickWriteOptions{.write_support = true});
  EXPECT_NE(with.find(")95"), std::string::npos);
  EXPECT_NE(with.find(")80"), std::string::npos);

  // Round trip: re-parsing recovers the same support values.
  TaxonSetPtr taxa2;
  const Tree back = test::tree_of(with, taxa2);
  double total = 0;
  for (NodeId id = 0; id < static_cast<NodeId>(back.num_nodes()); ++id) {
    if (back.node(id).has_support) {
      total += back.node(id).support;
    }
  }
  EXPECT_DOUBLE_EQ(total, 95 + 80);
}

TEST(SupportTest, SupportSurvivesUnarySuppression) {
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("(((A,B)90),(C,D)70);", taxa);
  double total = 0;
  for (NodeId id = 0; id < static_cast<NodeId>(t.num_nodes()); ++id) {
    if (t.node(id).has_support) {
      total += t.node(id).support;
    }
  }
  EXPECT_DOUBLE_EQ(total, 90 + 70);
}

TEST(SupportTest, ExtractionAttachesSupportValues) {
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("((A,B)90,(C,D)70,E);", taxa);
  const auto bips = extract_bipartitions(
      t, BipartitionOptions{.value = SplitValue::Support});
  ASSERT_EQ(bips.size(), 2u);
  EXPECT_TRUE(bips.has_values());
  double total = 0;
  for (std::size_t i = 0; i < bips.size(); ++i) {
    total += bips.value(i);
  }
  EXPECT_DOUBLE_EQ(total, 90 + 70);
}

TEST(SupportTest, RootedDuplicateTakesMaxSupport) {
  // Rooted-degree-2 tree: both root children describe the same unrooted
  // split; support merges by max, not sum.
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("((A,B)88,((C,D)70,E)92);", taxa);
  const auto bips = extract_bipartitions(
      t, BipartitionOptions{.value = SplitValue::Support});
  // Splits: {A,B}-canonical (dup of {C,D,E} side) and {C,D}.
  ASSERT_EQ(bips.size(), 2u);
  double max_seen = 0;
  for (std::size_t i = 0; i < bips.size(); ++i) {
    max_seen = std::max(max_seen, bips.value(i));
  }
  EXPECT_DOUBLE_EQ(max_seen, 92.0);  // max(88, 92), never 180
}

TEST(SupportTest, SupportWeightedScoreAgreesWithOracle) {
  // Build support-annotated collections and compare the engine against the
  // sequential oracle with SplitValue::Support.
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(3);
  std::vector<Tree> reference;
  for (int i = 0; i < 12; ++i) {
    Tree t = sim::yule_tree(taxa, rng);
    sim::perturb(t, rng, 2);
    for (NodeId id = 0; id < static_cast<NodeId>(t.num_nodes()); ++id) {
      if (!t.is_leaf(id) && !t.is_root(id)) {
        t.set_support(id, 50.0 + rng.uniform01() * 50.0);
      }
    }
    reference.push_back(std::move(t));
  }
  const core::BranchScoreOptions opts{
      .threads = 2, .include_trivial = false,
      .value = SplitValue::Support};
  core::BranchScoreBfhrf engine(taxa->size(), opts);
  engine.build(reference);
  const auto fast = engine.query(reference);
  const auto slow = core::sequential_avg_branch_score(reference, reference,
                                                      opts);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-9 * (1.0 + slow[i]));
  }
}

TEST(SupportTest, UnannotatedTreesRejectedBySupportEngine) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(4);
  const std::vector<Tree> bare{sim::yule_tree(taxa, rng)};
  core::BranchScoreBfhrf engine(
      taxa->size(),
      core::BranchScoreOptions{.value = SplitValue::Support});
  EXPECT_THROW(engine.build(bare), InvalidArgument);
}

TEST(SupportTest, ConsensusAnnotatesCladeFrequencies) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(5);
  const Tree base = sim::yule_tree(taxa, rng);
  std::vector<Tree> trees(8, base);
  sim::perturb(trees[7], rng, 5);  // one deviant

  core::Bfhrf engine(taxa->size());
  engine.build(trees);
  const Tree cons =
      core::consensus_tree(engine.store(), trees.size(), taxa);
  std::size_t annotated = 0;
  for (NodeId id = 0; id < static_cast<NodeId>(cons.num_nodes()); ++id) {
    if (cons.node(id).has_support) {
      ++annotated;
      EXPECT_GT(cons.node(id).support, 50.0);   // majority rule
      EXPECT_LE(cons.node(id).support, 100.0);
    }
  }
  EXPECT_GT(annotated, 0u);
  // And write_newick(write_support) emits them.
  const std::string s =
      write_newick(cons, NewickWriteOptions{.write_support = true});
  EXPECT_NE(s.find("100"), std::string::npos);  // unanimous clades exist
}

}  // namespace
}  // namespace bfhrf::phylo
