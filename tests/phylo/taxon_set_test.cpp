#include "phylo/taxon_set.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bfhrf::phylo {
namespace {

TEST(TaxonSetTest, AddAssignsSequentialIndices) {
  TaxonSet ts;
  EXPECT_EQ(ts.add_or_get("A"), 0);
  EXPECT_EQ(ts.add_or_get("B"), 1);
  EXPECT_EQ(ts.add_or_get("A"), 0);  // idempotent
  EXPECT_EQ(ts.size(), 2u);
}

TEST(TaxonSetTest, ConstructFromLabels) {
  const TaxonSet ts({"C", "A", "B"});
  EXPECT_EQ(ts.index_of("C"), 0);
  EXPECT_EQ(ts.index_of("A"), 1);
  EXPECT_EQ(ts.index_of("B"), 2);
  EXPECT_EQ(ts.label_of(2), "B");
}

TEST(TaxonSetTest, DuplicateLabelsRejected) {
  EXPECT_THROW(TaxonSet({"A", "A"}), InvalidArgument);
}

TEST(TaxonSetTest, FindAndContains) {
  TaxonSet ts({"x", "y"});
  EXPECT_TRUE(ts.contains("x"));
  EXPECT_FALSE(ts.contains("z"));
  EXPECT_EQ(ts.find("y"), 1);
  EXPECT_EQ(ts.find("z"), std::nullopt);
  EXPECT_THROW((void)ts.index_of("z"), InvalidArgument);
}

TEST(TaxonSetTest, LabelOfRangeChecked) {
  const TaxonSet ts({"a"});
  EXPECT_THROW((void)ts.label_of(-1), InvalidArgument);
  EXPECT_THROW((void)ts.label_of(1), InvalidArgument);
}

TEST(TaxonSetTest, FrozenRejectsNewLabels) {
  TaxonSet ts({"a", "b"});
  ts.freeze();
  EXPECT_TRUE(ts.frozen());
  EXPECT_EQ(ts.add_or_get("a"), 0);  // existing labels still resolve
  EXPECT_THROW((void)ts.add_or_get("c"), InvalidArgument);
}

TEST(TaxonSetTest, MakeNumbered) {
  const auto ts = TaxonSet::make_numbered(5, "sp");
  EXPECT_EQ(ts->size(), 5u);
  EXPECT_EQ(ts->label_of(0), "sp0");
  EXPECT_EQ(ts->label_of(4), "sp4");
}

TEST(TaxonSetTest, LabelsPreserveInsertionOrder) {
  TaxonSet ts;
  ts.add_or_get("zebra");
  ts.add_or_get("ant");
  EXPECT_EQ(ts.labels(), (std::vector<std::string>{"zebra", "ant"}));
}

}  // namespace
}  // namespace bfhrf::phylo
