#include "phylo/bipartition.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "phylo/newick.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::phylo {
namespace {

std::set<std::string> bip_strings(const BipartitionSet& s) {
  std::set<std::string> out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    out.insert(s.bitset(i).to_string());
  }
  return out;
}

TEST(BipartitionTest, PaperWorkedExample) {
  // Paper §II-B: T = ((A,B),(C,D)), T' = ((D,B),(C,A)). Each has exactly one
  // non-trivial bipartition and they differ, so RF(T,T') = 2 (Equation 1).
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D"});
  const Tree t = parse_newick("((A,B),(C,D));", taxa);
  const Tree tp = parse_newick("((D,B),(C,A));", taxa);

  const auto bt = extract_bipartitions(t);
  const auto btp = extract_bipartitions(tp);
  // Canonical side excludes taxon A (bit 0), printed A,B,C,D left->right.
  EXPECT_EQ(bip_strings(bt), (std::set<std::string>{"0011"}));
  EXPECT_EQ(bip_strings(btp), (std::set<std::string>{"0101"}));
  EXPECT_EQ(BipartitionSet::symmetric_difference_size(bt, btp), 2u);
  EXPECT_EQ(BipartitionSet::symmetric_difference_size(bt, bt), 0u);
}

TEST(BipartitionTest, CountsMatchTheory) {
  // Unrooted binary tree on n taxa: n-3 non-trivial, 2n-3 with trivial.
  const auto taxa = TaxonSet::make_numbered(20);
  util::Rng rng(5);
  for (int rep = 0; rep < 10; ++rep) {
    const Tree t = sim::uniform_tree(taxa, rng);
    EXPECT_EQ(extract_bipartitions(t).size(), 20u - 3);
    EXPECT_EQ(extract_bipartitions(
                  t, BipartitionOptions{.include_trivial = true})
                  .size(),
              2u * 20 - 3);
  }
}

TEST(BipartitionTest, RootedRepresentationGivesSameSplits) {
  // The same unrooted topology parsed rooted vs unrooted must agree.
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D", "E"});
  const Tree rooted = parse_newick("((A,B),((C,D),E));", taxa);
  const Tree unrooted = parse_newick("(A,B,((C,D),E));", taxa);
  EXPECT_EQ(bip_strings(extract_bipartitions(rooted)),
            bip_strings(extract_bipartitions(unrooted)));
}

TEST(BipartitionTest, RerootingInvariance) {
  // Any rotation of the Newick string around the same topology yields the
  // same canonical bipartition set.
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D", "E", "F"});
  const char* forms[] = {
      "(((A,B),C),(D,(E,F)));",
      "((A,B),C,(D,(E,F)));",
      "((E,F),D,(C,(A,B)));",
      "(A,B,(C,((E,F),D)));",
  };
  std::set<std::string> first;
  for (const char* nwk : forms) {
    const Tree t = parse_newick(nwk, taxa);
    const auto strs = bip_strings(extract_bipartitions(t));
    if (first.empty()) {
      first = strs;
    } else {
      EXPECT_EQ(strs, first) << nwk;
    }
  }
  EXPECT_EQ(first.size(), 3u);  // n-3 = 3
}

TEST(BipartitionTest, CanonicalBitOfLowestTaxonIsZero) {
  const auto taxa = TaxonSet::make_numbered(30);
  util::Rng rng(7);
  const Tree t = sim::yule_tree(taxa, rng);
  const auto bips = extract_bipartitions(t);
  for (std::size_t i = 0; i < bips.size(); ++i) {
    EXPECT_FALSE(bips.bitset(i).test(0));
  }
}

TEST(BipartitionTest, MultifurcatingTreeHasFewerSplits) {
  const auto taxa = TaxonSet::make_numbered(24);
  util::Rng rng(9);
  const Tree star = [&] {
    Tree t(taxa);
    const NodeId root = t.add_root();
    for (std::size_t i = 0; i < 24; ++i) {
      t.add_leaf(root, static_cast<TaxonId>(i));
    }
    return t;
  }();
  EXPECT_EQ(extract_bipartitions(star).size(), 0u);

  const Tree multi = sim::multifurcating_tree(taxa, rng, 0.5);
  const auto count = extract_bipartitions(multi).size();
  EXPECT_LT(count, 24u - 3);
}

TEST(BipartitionTest, ContainsFindsAllMembers) {
  const auto taxa = TaxonSet::make_numbered(40);
  util::Rng rng(13);
  const Tree a = sim::uniform_tree(taxa, rng);
  const Tree b = sim::uniform_tree(taxa, rng);
  const auto ba = extract_bipartitions(a);
  const auto bb = extract_bipartitions(b);
  std::size_t common = 0;
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_TRUE(ba.contains(ba[i]));
    common += bb.contains(ba[i]) ? std::size_t{1} : std::size_t{0};
  }
  EXPECT_EQ(common, BipartitionSet::intersection_size(ba, bb));
}

TEST(BipartitionTest, SymmetricDifferenceIsSymmetric) {
  const auto taxa = TaxonSet::make_numbered(50);
  util::Rng rng(17);
  const Tree a = sim::yule_tree(taxa, rng);
  const Tree b = sim::yule_tree(taxa, rng);
  const auto ba = extract_bipartitions(a);
  const auto bb = extract_bipartitions(b);
  EXPECT_EQ(BipartitionSet::symmetric_difference_size(ba, bb),
            BipartitionSet::symmetric_difference_size(bb, ba));
}

TEST(BipartitionTest, LeafMaskCoversTreeTaxa) {
  const auto taxa = TaxonSet::make_numbered(15);
  util::Rng rng(19);
  const Tree t = sim::uniform_tree(taxa, rng);
  const auto bips = extract_bipartitions(t);
  EXPECT_EQ(bips.leaf_mask().count(), 15u);
  EXPECT_EQ(bips.n_bits(), 15u);
}

TEST(BipartitionTest, AppendFinalizeDeduplicates) {
  BipartitionSet s(8);
  util::DynamicBitset a(8);
  a.set(2);
  a.set(3);
  util::DynamicBitset b(8);
  b.set(4);
  s.append(a.words());
  s.append(b.words());
  s.append(a.words());
  s.finalize();
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(a.words()));
  EXPECT_TRUE(s.contains(b.words()));
  // Sorted order.
  EXPECT_LT(util::compare_words(s[0], s[1]), 0);
}

TEST(BipartitionTest, CanonicalizeFlipsOnlyWhenLowestSet) {
  util::DynamicBitset universe(6);
  universe.flip_all();
  util::DynamicBitset m = util::DynamicBitset::from_string("110000");
  canonicalize_bipartition(m, universe);
  EXPECT_EQ(m.to_string(), "001111");
  canonicalize_bipartition(m, universe);  // idempotent once canonical
  EXPECT_EQ(m.to_string(), "001111");
}

TEST(BipartitionTest, CanonicalizeRespectsPartialLeafMask) {
  // Universe of 6 but the tree only contains taxa {1,2,4}: complementation
  // is relative to the tree's own leaf set.
  const util::DynamicBitset leaf_mask =
      util::DynamicBitset::from_string("011010");
  util::DynamicBitset m = util::DynamicBitset::from_string("010000");
  canonicalize_bipartition(m, leaf_mask);  // bit 1 (lowest leaf) set -> flip
  EXPECT_EQ(m.to_string(), "001010");
}

TEST(BipartitionTest, CompatibilityCases) {
  util::DynamicBitset universe(8);
  universe.flip_all();
  const auto bs = [](const char* s) {
    return util::DynamicBitset::from_string(s);
  };
  // Nested.
  EXPECT_TRUE(bipartitions_compatible(bs("00000011"), bs("00001111"),
                                      universe));
  // Disjoint.
  EXPECT_TRUE(bipartitions_compatible(bs("00000011"), bs("00111100"),
                                      universe));
  // Complementary union == universe.
  EXPECT_TRUE(bipartitions_compatible(bs("01110000"), bs("10001111"),
                                      universe));
  // Properly crossing: intersect, neither nested, union != universe.
  EXPECT_FALSE(
      bipartitions_compatible(bs("00000110"), bs("00000011"), universe));
}

TEST(BipartitionTest, SplitsOfATreeArePairwiseCompatible) {
  const auto taxa = TaxonSet::make_numbered(16);
  util::Rng rng(23);
  const Tree t = sim::uniform_tree(taxa, rng);
  const auto bips = extract_bipartitions(t);
  const auto& mask = bips.leaf_mask();
  for (std::size_t i = 0; i < bips.size(); ++i) {
    for (std::size_t j = i + 1; j < bips.size(); ++j) {
      EXPECT_TRUE(
          bipartitions_compatible(bips.bitset(i), bips.bitset(j), mask));
    }
  }
}

class BipartitionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BipartitionSweep, BinaryTreeCountAcrossSizes) {
  const std::size_t n = GetParam();
  const auto taxa = TaxonSet::make_numbered(n);
  util::Rng rng(n);
  const Tree t = sim::yule_tree(taxa, rng);
  EXPECT_EQ(extract_bipartitions(t).size(), n - 3);
  const Tree t2 = sim::caterpillar_tree(taxa, rng);
  EXPECT_EQ(extract_bipartitions(t2).size(), n - 3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BipartitionSweep,
                         ::testing::Values(4, 5, 8, 16, 48, 63, 64, 65, 100,
                                           144, 250, 513));

TEST(BipartitionTest, CrossWordBoundarySplit) {
  // 70 taxa: splits straddle the 64-bit word boundary.
  const auto taxa = TaxonSet::make_numbered(70);
  util::Rng rng(29);
  const Tree a = sim::uniform_tree(taxa, rng);
  const Tree b = sim::uniform_tree(taxa, rng);
  const auto ba = extract_bipartitions(a);
  EXPECT_EQ(ba.size(), 67u);
  EXPECT_EQ(ba.words_per_bipartition(), 2u);
  // Sanity: symmetric difference with self is 0, with other <= 2(n-3).
  EXPECT_EQ(BipartitionSet::symmetric_difference_size(ba, ba), 0u);
  const auto bb = extract_bipartitions(b);
  EXPECT_LE(BipartitionSet::symmetric_difference_size(ba, bb), 2u * 67);
}

TEST(BipartitionTest, UnsortedExtractionMatchesSortedSplitSet) {
  // The sort-free hot path (BipartitionOptions::sorted = false) must yield
  // exactly the same multiset of canonical splits, duplicate-free, across
  // tree shapes and key widths.
  const BipartitionOptions unsorted{.sorted = false};
  for (const std::size_t n : {std::size_t{5}, std::size_t{16},
                              std::size_t{70}, std::size_t{144}}) {
    const auto taxa = TaxonSet::make_numbered(n);
    util::Rng rng(n);
    for (int rep = 0; rep < 5; ++rep) {
      const Tree t = rep % 2 == 0 ? sim::uniform_tree(taxa, rng)
                                  : sim::yule_tree(taxa, rng);
      const auto expect = extract_bipartitions(t);
      const auto fast = extract_bipartitions(t, unsorted);
      EXPECT_EQ(fast.size(), expect.size()) << "n=" << n << " rep=" << rep;
      const auto strings = bip_strings(fast);
      EXPECT_EQ(strings.size(), fast.size()) << "duplicate split, n=" << n;
      EXPECT_EQ(strings, bip_strings(expect)) << "n=" << n << " rep=" << rep;
    }
  }
}

TEST(BipartitionTest, UnsortedExtractionDedupsDegree2Root) {
  // The two half-edges of a rooted-binary root describe one unrooted edge;
  // the unsorted path must drop one structurally (finalize isn't run).
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D"});
  const Tree t = parse_newick("((A,B),(C,D));", taxa);
  const auto fast =
      extract_bipartitions(t, BipartitionOptions{.sorted = false});
  EXPECT_EQ(fast.size(), 1u);
  EXPECT_EQ(bip_strings(fast), (std::set<std::string>{"0011"}));

  const BipartitionOptions trivial_unsorted{.include_trivial = true,
                                            .sorted = false};
  const auto triv = extract_bipartitions(t, trivial_unsorted);
  EXPECT_EQ(triv.size(), 2u * 4 - 3);
  EXPECT_EQ(bip_strings(triv),
            bip_strings(extract_bipartitions(
                t, BipartitionOptions{.include_trivial = true})));
}

TEST(BipartitionTest, UnsortedExtractionFallsBackOnUnaryNodes) {
  // A unary node replicates its child's mask, which the structural dedup
  // doesn't cover — such trees must fall back to the sorted finalize path
  // (the parser suppresses unary nodes, so build one directly).
  const auto taxa = TaxonSet::make_numbered(6);
  Tree t(taxa);
  const NodeId root = t.add_root();
  (void)t.add_leaf(root, 0);
  (void)t.add_leaf(root, 1);
  const NodeId unary = t.add_child(root);
  const NodeId inner = t.add_child(unary);  // unary -> inner: equal masks
  (void)t.add_leaf(inner, 2);
  (void)t.add_leaf(inner, 3);
  const NodeId inner2 = t.add_child(inner);
  (void)t.add_leaf(inner2, 4);
  (void)t.add_leaf(inner2, 5);

  const auto expect = extract_bipartitions(t);
  const auto fast =
      extract_bipartitions(t, BipartitionOptions{.sorted = false});
  EXPECT_EQ(fast.size(), expect.size());
  const auto strings = bip_strings(fast);
  EXPECT_EQ(strings.size(), fast.size()) << "duplicate split leaked through";
  EXPECT_EQ(strings, bip_strings(expect));
}

}  // namespace
}  // namespace bfhrf::phylo
