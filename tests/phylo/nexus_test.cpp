#include "phylo/nexus.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/rf.hpp"
#include "phylo/newick.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::phylo {
namespace {

TEST(NexusTest, MinimalTreesBlock) {
  std::istringstream in(
      "#NEXUS\n"
      "BEGIN TREES;\n"
      "  TREE t1 = ((A,B),(C,D));\n"
      "  TREE t2 = ((A,C),(B,D));\n"
      "END;\n");
  const NexusData data = read_nexus(in);
  ASSERT_EQ(data.trees.size(), 2u);
  EXPECT_EQ(data.tree_names, (std::vector<std::string>{"t1", "t2"}));
  EXPECT_EQ(data.taxa->size(), 4u);
  EXPECT_EQ(data.trees[0].num_leaves(), 4u);
  EXPECT_EQ(core::rf_distance(data.trees[0], data.trees[1]), 2u);
}

TEST(NexusTest, TranslateTableResolved) {
  std::istringstream in(
      "#NEXUS\n"
      "BEGIN TAXA;\n"
      "  DIMENSIONS NTAX=4;\n"
      "  TAXLABELS Homo Pan Mus Rattus;\n"
      "END;\n"
      "BEGIN TREES;\n"
      "  TRANSLATE\n"
      "    1 Homo,\n"
      "    2 Pan,\n"
      "    3 Mus,\n"
      "    4 Rattus;\n"
      "  TREE gene1 = [&U] ((1,2),(3,4));\n"
      "END;\n");
  const NexusData data = read_nexus(in);
  ASSERT_EQ(data.trees.size(), 1u);
  EXPECT_EQ(data.taxa->size(), 4u);
  EXPECT_TRUE(data.taxa->contains("Homo"));
  EXPECT_TRUE(data.taxa->contains("Rattus"));
  // The translated tree must equal the label-form tree.
  auto taxa = data.taxa;
  const Tree direct = parse_newick("((Homo,Pan),(Mus,Rattus));", taxa);
  EXPECT_EQ(core::rf_distance(data.trees[0], direct), 0u);
}

TEST(NexusTest, CaseInsensitiveKeywordsAndRootingComment) {
  std::istringstream in(
      "#nexus\n"
      "begin trees;\n"
      "  tree T = [&R] ((A:1,B:2):0.5,(C:1,D:1):0.5);\n"
      "end;\n");
  const NexusData data = read_nexus(in);
  ASSERT_EQ(data.trees.size(), 1u);
  EXPECT_EQ(data.trees[0].num_leaves(), 4u);
}

TEST(NexusTest, QuotedLabelsInTaxaAndTrees) {
  std::istringstream in(
      "#NEXUS\n"
      "BEGIN TAXA;\n"
      "  TAXLABELS 'Homo sapiens' 'it''s' C D;\n"
      "END;\n"
      "BEGIN TREES;\n"
      "  TREE t = (('Homo sapiens','it''s'),(C,D));\n"
      "END;\n");
  const NexusData data = read_nexus(in);
  EXPECT_TRUE(data.taxa->contains("Homo sapiens"));
  EXPECT_TRUE(data.taxa->contains("it's"));
  EXPECT_EQ(data.trees[0].num_leaves(), 4u);
}

TEST(NexusTest, UnknownBlocksSkipped) {
  std::istringstream in(
      "#NEXUS\n"
      "BEGIN CHARACTERS;\n"
      "  DIMENSIONS NCHAR=10;\n"
      "  MATRIX A 0101010101 B 1111100000;\n"
      "END;\n"
      "BEGIN TREES;\n"
      "  TREE t = ((A,B),(C,D));\n"
      "END;\n");
  const NexusData data = read_nexus(in);
  ASSERT_EQ(data.trees.size(), 1u);
  // CHARACTERS matrix tokens must not have leaked into the taxon set.
  EXPECT_EQ(data.taxa->size(), 4u);
}

TEST(NexusTest, DefaultTreeMarkerAndUtree) {
  std::istringstream in(
      "#NEXUS\n"
      "BEGIN TREES;\n"
      "  TREE * best = ((A,B),(C,D));\n"
      "  UTREE alt = ((A,C),(B,D));\n"
      "END;\n");
  const NexusData data = read_nexus(in);
  ASSERT_EQ(data.trees.size(), 2u);
  EXPECT_EQ(data.tree_names[0], "best");
  EXPECT_EQ(data.tree_names[1], "alt");
}

TEST(NexusTest, MalformedInputsThrow) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return read_nexus(in);
  };
  EXPECT_THROW((void)parse("not nexus at all"), ParseError);
  EXPECT_THROW((void)parse("#NEXUS\nBEGIN TREES;\nEND;\n"), ParseError);
  EXPECT_THROW((void)parse("#NEXUS\nBEGIN TREES;\nTREE t ((A,B));\nEND;"),
               ParseError);
  EXPECT_THROW(
      (void)parse("#NEXUS\nBEGIN TREES;\nTREE t = ((A,B),(C,D))"),
      ParseError);  // no terminating ';'
  EXPECT_THROW(
      (void)parse("#NEXUS\nBEGIN TREES;\nTRANSLATE 1 A, 2;\n"
                  "TREE t = ((1,2));\nEND;"),
      ParseError);
}

TEST(NexusTest, FileRoundTrip) {
  const auto taxa = TaxonSet::make_numbered(15, "species ");
  util::Rng rng(5);
  const auto trees = test::random_collection(taxa, 8, 3, rng, true);

  const std::string path = ::testing::TempDir() + "/bfhrf_roundtrip.nex";
  write_nexus_file(path, trees, taxa);
  const NexusData back = read_nexus_file(path);
  ASSERT_EQ(back.trees.size(), trees.size());
  EXPECT_EQ(back.taxa->size(), taxa->size());
  for (std::size_t i = 0; i < trees.size(); ++i) {
    // Same topology after the round trip (taxon ids may be permuted, so
    // compare via RF over a shared namespace reconstruction).
    auto shared = back.taxa;
    const Tree orig_reparsed =
        parse_newick(write_newick(trees[i]), shared);
    EXPECT_EQ(core::rf_distance(back.trees[i], orig_reparsed), 0u);
  }
}

TEST(NexusTest, SharedTaxonSetAcrossFormats) {
  // A NEXUS collection and a Newick query must land in one namespace so
  // they can be compared.
  const std::string path = ::testing::TempDir() + "/bfhrf_mixed.nex";
  {
    std::ofstream out(path);
    out << "#NEXUS\nBEGIN TREES;\n  TREE a = ((A,B),(C,D),E);\n"
           "  TREE b = ((A,C),(B,D),E);\nEND;\n";
  }
  const NexusData data = read_nexus_file(path);
  auto taxa = data.taxa;
  const Tree query = parse_newick("((A,B),(C,E),D);", taxa);
  EXPECT_EQ(core::rf_distance(data.trees[0], query) % 2, 0u);
}

}  // namespace
}  // namespace bfhrf::phylo
