#include "phylo/newick.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::phylo {
namespace {

TEST(NewickParseTest, SimpleQuartet) {
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("((A,B),(C,D));", taxa);
  EXPECT_EQ(t.num_leaves(), 4u);
  EXPECT_EQ(taxa->size(), 4u);
  EXPECT_TRUE(t.is_binary());
  t.validate();
}

TEST(NewickParseTest, BranchLengths) {
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("((A:0.1,B:0.2):0.3,(C:1e-2,D:2):4);", taxa);
  double total = 0;
  for (NodeId id = 0; id < static_cast<NodeId>(t.num_nodes()); ++id) {
    if (t.node(id).has_length) {
      total += t.node(id).length;
    }
  }
  EXPECT_NEAR(total, 0.1 + 0.2 + 0.3 + 0.01 + 2 + 4, 1e-12);
}

TEST(NewickParseTest, UnweightedTreesHaveNoLengths) {
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("((A,B),(C,D));", taxa);
  for (NodeId id = 0; id < static_cast<NodeId>(t.num_nodes()); ++id) {
    EXPECT_FALSE(t.node(id).has_length);
  }
}

TEST(NewickParseTest, Multifurcation) {
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("(A,B,C,D,E);", taxa);
  EXPECT_EQ(t.num_leaves(), 5u);
  EXPECT_EQ(t.num_children(t.root()), 5u);
  EXPECT_FALSE(t.is_binary());
}

TEST(NewickParseTest, QuotedLabels) {
  TaxonSetPtr taxa;
  const Tree t =
      test::tree_of("(('Homo sapiens',"
                    "'it''s a label'),(C,D));",
                    taxa);
  EXPECT_TRUE(taxa->contains("Homo sapiens"));
  EXPECT_TRUE(taxa->contains("it's a label"));
  EXPECT_EQ(t.num_leaves(), 4u);
}

TEST(NewickParseTest, CommentsIgnored) {
  TaxonSetPtr taxa;
  const Tree t =
      test::tree_of("((A[&support=1.0],B),(C,D))[nested [comment]];", taxa);
  EXPECT_EQ(t.num_leaves(), 4u);
  EXPECT_EQ(taxa->size(), 4u);
}

TEST(NewickParseTest, InternalLabelsIgnored) {
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("((A,B)90:0.1,(C,D)85:0.2);", taxa);
  EXPECT_EQ(t.num_leaves(), 4u);
  EXPECT_EQ(taxa->size(), 4u);  // 90/85 are not taxa
}

TEST(NewickParseTest, WhitespaceTolerant) {
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("  ( ( A , B ) ,\n ( C , D ) ) ;\n", taxa);
  EXPECT_EQ(t.num_leaves(), 4u);
}

TEST(NewickParseTest, SingleLeaf) {
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("A;", taxa);
  EXPECT_EQ(t.num_leaves(), 1u);
  EXPECT_TRUE(t.is_leaf(t.root()));
}

TEST(NewickParseTest, MissingSemicolonAccepted) {
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("((A,B),(C,D))", taxa);
  EXPECT_EQ(t.num_leaves(), 4u);
}

TEST(NewickParseTest, MalformedInputsThrow) {
  TaxonSetPtr taxa = std::make_shared<TaxonSet>();
  EXPECT_THROW((void)parse_newick("", taxa), ParseError);
  EXPECT_THROW((void)parse_newick("((A,B);", taxa), ParseError);
  EXPECT_THROW((void)parse_newick("(A,B));", taxa), ParseError);
  EXPECT_THROW((void)parse_newick("(A,,B);", taxa), ParseError);
  EXPECT_THROW((void)parse_newick("(A:x,B);", taxa), ParseError);
  EXPECT_THROW((void)parse_newick("(A,'unterminated);", taxa), ParseError);
  EXPECT_THROW((void)parse_newick("(A,B)[unclosed;", taxa), ParseError);
  EXPECT_THROW((void)parse_newick(";", taxa), ParseError);
  EXPECT_THROW((void)parse_newick("(,);", taxa), ParseError);
}

TEST(NewickParseTest, FrozenTaxonSetRejectsUnknownTaxa) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D"});
  taxa->freeze();
  EXPECT_NO_THROW((void)parse_newick("((A,B),(C,D));", taxa));
  EXPECT_THROW((void)parse_newick("((A,B),(C,E));", taxa), InvalidArgument);
}

TEST(NewickParseTest, RequireFullTaxonSet) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D"});
  const NewickParseOptions opts{.require_full_taxon_set = true};
  EXPECT_NO_THROW((void)parse_newick("((A,B),(C,D));", taxa, opts));
  EXPECT_THROW((void)parse_newick("(A,(B,C));", taxa, opts), ParseError);
}

TEST(NewickParseTest, UnaryNodesSuppressed) {
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("(((A,B)));", taxa);  // extra wrapping parens
  EXPECT_EQ(t.num_leaves(), 2u);
  EXPECT_EQ(t.num_children(t.root()), 2u);
  // Wrapping parens create unary chains; after suppression the tree is the
  // 2-leaf tree.
  TaxonSetPtr taxa2;
  const Tree t2 = test::tree_of("(((A,B)),(C));", taxa2);
  EXPECT_EQ(t2.num_leaves(), 3u);
  t2.validate();
  for (NodeId id = 0; id < static_cast<NodeId>(t2.num_nodes()); ++id) {
    if (!t2.is_leaf(id)) {
      EXPECT_GE(t2.num_children(id), 2u);
    }
  }
}

TEST(NewickWriteTest, RoundTripTopology) {
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("((A:1,B:2):0.5,(C:3,D:4):0.5,E:9);", taxa);
  const std::string out = write_newick(t);
  const Tree t2 = parse_newick(out, taxa);
  EXPECT_EQ(t2.num_leaves(), t.num_leaves());
  EXPECT_EQ(write_newick(t2), out);  // fixed point after one round trip
}

TEST(NewickWriteTest, QuotesSpecialLabels) {
  TaxonSetPtr taxa = std::make_shared<TaxonSet>();
  Tree t(taxa);
  const NodeId root = t.add_root();
  t.add_leaf(root, taxa->add_or_get("needs quote"));
  t.add_leaf(root, taxa->add_or_get("it's"));
  t.add_leaf(root, taxa->add_or_get("plain"));
  const std::string out = write_newick(t);
  EXPECT_NE(out.find("'needs quote'"), std::string::npos);
  EXPECT_NE(out.find("'it''s'"), std::string::npos);
  // Round trip preserves the labels.
  TaxonSetPtr taxa2 = std::make_shared<TaxonSet>();
  (void)parse_newick(out, taxa2);
  EXPECT_TRUE(taxa2->contains("needs quote"));
  EXPECT_TRUE(taxa2->contains("it's"));
}

TEST(NewickWriteTest, LengthsOmittedOnRequest) {
  TaxonSetPtr taxa;
  const Tree t = test::tree_of("((A:1,B:2):0.5,(C,D));", taxa);
  const std::string out =
      write_newick(t, NewickWriteOptions{.write_lengths = false});
  EXPECT_EQ(out.find(':'), std::string::npos);
}

TEST(NewickReaderTest, StreamsMultipleTrees) {
  std::istringstream in("((A,B),(C,D));\n((A,C),(B,D));\n((A,D),(B,C));\n");
  auto taxa = std::make_shared<TaxonSet>();
  NewickReader reader(in, taxa);
  std::size_t count = 0;
  while (auto t = reader.next()) {
    EXPECT_EQ(t->num_leaves(), 4u);
    ++count;
  }
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(reader.count(), 3u);
}

TEST(NewickReaderTest, HandlesSemicolonInQuotesAndComments) {
  std::istringstream in("(('a;b',B),(C,D));((A[;],B),(C,D));");
  auto taxa = std::make_shared<TaxonSet>();
  NewickReader reader(in, taxa);
  std::size_t count = 0;
  while (auto t = reader.next()) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_TRUE(taxa->contains("a;b"));
}

TEST(NewickReaderTest, TrailingRecordWithoutSemicolon) {
  std::istringstream in("((A,B),(C,D));((A,C),(B,D))");
  auto taxa = std::make_shared<TaxonSet>();
  NewickReader reader(in, taxa);
  std::size_t count = 0;
  while (auto t = reader.next()) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(NewickFileTest, WriteReadRoundTrip) {
  const auto taxa = TaxonSet::make_numbered(20);
  util::Rng rng(3);
  const auto trees = test::random_collection(taxa, 10, 3, rng, true);

  const std::string path = ::testing::TempDir() + "/bfhrf_newick_rt.nwk";
  write_newick_file(path, trees);
  auto taxa2 = std::make_shared<TaxonSet>();
  const auto back = read_newick_file(path, taxa2);
  ASSERT_EQ(back.size(), trees.size());
  EXPECT_EQ(taxa2->size(), taxa->size());
  for (const auto& t : back) {
    EXPECT_EQ(t.num_leaves(), 20u);
  }
}

TEST(NewickFileTest, MissingFileThrows) {
  auto taxa = std::make_shared<TaxonSet>();
  EXPECT_THROW((void)read_newick_file("/nonexistent/x.nwk", taxa),
               ParseError);
}

TEST(NewickParseTest, LargeRandomTreesRoundTrip) {
  const auto taxa = TaxonSet::make_numbered(500);
  util::Rng rng(11);
  for (int rep = 0; rep < 5; ++rep) {
    const Tree t = sim::uniform_tree(taxa, rng);
    const std::string s = write_newick(t);
    const Tree back = parse_newick(s, taxa);
    EXPECT_EQ(back.num_leaves(), 500u);
    EXPECT_EQ(write_newick(back), s);
  }
}

}  // namespace
}  // namespace bfhrf::phylo
