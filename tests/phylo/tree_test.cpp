#include "phylo/tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "phylo/newick.hpp"
#include "support/test_util.hpp"

namespace bfhrf::phylo {
namespace {

Tree build_quartet(TaxonSetPtr& taxa) {
  // ((A,B),(C,D)) rooted.
  taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D"});
  Tree t(taxa);
  const NodeId root = t.add_root();
  const NodeId left = t.add_child(root);
  const NodeId right = t.add_child(root);
  t.add_leaf(left, 0);
  t.add_leaf(left, 1);
  t.add_leaf(right, 2);
  t.add_leaf(right, 3);
  return t;
}

TEST(TreeTest, BuildAndCounts) {
  TaxonSetPtr taxa;
  const Tree t = build_quartet(taxa);
  EXPECT_EQ(t.num_nodes(), 7u);
  EXPECT_EQ(t.num_leaves(), 4u);
  EXPECT_TRUE(t.is_binary());
  EXPECT_FALSE(t.is_multifurcating());
  t.validate();
}

TEST(TreeTest, ChildrenOrder) {
  TaxonSetPtr taxa;
  const Tree t = build_quartet(taxa);
  const auto kids = t.children(t.root());
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(t.num_children(t.root()), 2u);
  EXPECT_FALSE(t.is_leaf(kids[0]));
}

TEST(TreeTest, PostorderChildrenBeforeParents) {
  TaxonSetPtr taxa;
  const Tree t = build_quartet(taxa);
  const auto order = t.postorder();
  ASSERT_EQ(order.size(), t.num_nodes());
  std::vector<int> position(t.num_nodes(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (NodeId id = 0; id < static_cast<NodeId>(t.num_nodes()); ++id) {
    if (!t.is_root(id)) {
      EXPECT_LT(position[static_cast<std::size_t>(id)],
                position[static_cast<std::size_t>(t.node(id).parent)]);
    }
  }
  EXPECT_EQ(order.back(), t.root());
}

TEST(TreeTest, LeavesAndTaxa) {
  TaxonSetPtr taxa;
  const Tree t = build_quartet(taxa);
  EXPECT_EQ(t.leaves().size(), 4u);
  EXPECT_EQ(t.leaf_taxa_sorted(), (std::vector<TaxonId>{0, 1, 2, 3}));
}

TEST(TreeTest, DerootMergesDegreeTwoRoot) {
  TaxonSetPtr taxa;
  Tree t = build_quartet(taxa);
  EXPECT_EQ(t.num_children(t.root()), 2u);
  t.deroot();
  EXPECT_EQ(t.num_children(t.root()), 3u);
  EXPECT_EQ(t.num_leaves(), 4u);
  EXPECT_TRUE(t.is_binary());
  t.validate();
  // Derooting twice is a no-op.
  const std::size_t nodes = t.num_nodes();
  t.deroot();
  EXPECT_EQ(t.num_nodes(), nodes);
}

TEST(TreeTest, DerootSumsBranchLengths) {
  TaxonSetPtr taxa;
  const Tree parsed = test::tree_of("((A:1,B:1):2,(C:1,D:1):3);", taxa);
  Tree t = parsed;
  t.deroot();
  // The two root edges (2 and 3) merge into one edge of length 5.
  double merged = 0;
  t.for_each_child(t.root(), [&](NodeId c) {
    if (!t.is_leaf(c)) {
      merged = t.node(c).length;
    }
  });
  EXPECT_DOUBLE_EQ(merged, 5.0);
}

TEST(TreeTest, SuppressUnaryMergesChains) {
  const auto taxa =
      std::make_shared<TaxonSet>(std::vector<std::string>{"A", "B"});
  Tree t(taxa);
  const NodeId root = t.add_root();
  const NodeId u1 = t.add_child(root);   // unary chain root->u1->u2
  const NodeId u2 = t.add_child(u1);
  t.set_length(u1, 1.0);
  t.set_length(u2, 2.0);
  const NodeId a = t.add_leaf(u2, 0);
  const NodeId b = t.add_leaf(u2, 1);
  t.set_length(a, 0.5);
  t.set_length(b, 0.5);

  t.suppress_unary();
  t.validate();
  EXPECT_EQ(t.num_leaves(), 2u);
  // root had one child (u1); u1 one child (u2) -> root absorbs the chain.
  EXPECT_EQ(t.num_children(t.root()), 2u);
  EXPECT_EQ(t.num_nodes(), 3u);
}

TEST(TreeTest, SplitEdgeInsertLeaf) {
  TaxonSetPtr taxa;
  Tree t = build_quartet(taxa);
  const TaxonId new_taxon = t.taxa()->add_or_get("E");

  // Split above the leaf carrying taxon 2 (C).
  NodeId c_leaf = kNoNode;
  for (const NodeId leaf : t.leaves()) {
    if (t.node(leaf).taxon == 2) {
      c_leaf = leaf;
    }
  }
  ASSERT_NE(c_leaf, kNoNode);
  const NodeId new_leaf = t.split_edge_insert_leaf(c_leaf, new_taxon);
  EXPECT_EQ(t.node(new_leaf).taxon, new_taxon);
  EXPECT_EQ(t.num_leaves(), 5u);
  EXPECT_TRUE(t.is_binary());
  t.validate();
}

TEST(TreeTest, SplitEdgeAtRootThrows) {
  TaxonSetPtr taxa;
  Tree t = build_quartet(taxa);
  EXPECT_THROW((void)t.split_edge_insert_leaf(t.root(), 0), InvalidArgument);
}

TEST(TreeTest, NumInternalEdges) {
  TaxonSetPtr taxa;
  Tree t = build_quartet(taxa);
  // ((A,B),(C,D)): one real internal edge (the rooted duplicate discounted).
  EXPECT_EQ(t.num_internal_edges(), 1u);
  t.deroot();
  EXPECT_EQ(t.num_internal_edges(), 1u);
}

TEST(TreeTest, ValidateCatchesDuplicateTaxa) {
  const auto taxa =
      std::make_shared<TaxonSet>(std::vector<std::string>{"A", "B"});
  Tree t(taxa);
  const NodeId root = t.add_root();
  t.add_leaf(root, 0);
  t.add_leaf(root, 0);
  EXPECT_THROW(t.validate(), InvariantError);
}

TEST(TreeTest, ValidateCatchesEmptyTree) {
  Tree t;
  EXPECT_THROW(t.validate(), InvariantError);
}

TEST(TreeTest, MemoryBytesGrowsWithNodes) {
  TaxonSetPtr taxa;
  const Tree t = build_quartet(taxa);
  EXPECT_GE(t.memory_bytes(), t.num_nodes() * sizeof(Tree::Node));
}

TEST(TreeTest, CopySemantics) {
  TaxonSetPtr taxa;
  const Tree t = build_quartet(taxa);
  Tree copy = t;
  copy.deroot();
  EXPECT_EQ(t.num_children(t.root()), 2u);   // original untouched
  EXPECT_EQ(copy.num_children(copy.root()), 3u);
  EXPECT_EQ(copy.taxa(), t.taxa());          // taxon set shared
}

TEST(TreeTest, DeepCaterpillarPostorderDoesNotOverflow) {
  const auto taxa = TaxonSet::make_numbered(5000);
  util::Rng rng(1);
  const Tree t = sim::caterpillar_tree(taxa, rng);
  EXPECT_EQ(t.num_leaves(), 5000u);
  EXPECT_EQ(t.postorder().size(), t.num_nodes());
  t.validate();
}

}  // namespace
}  // namespace bfhrf::phylo
