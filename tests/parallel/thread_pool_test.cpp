#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace bfhrf::parallel {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, PropagatesTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool recovers afterwards.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, SizeClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedButUnstartedTasks) {
  // Shutdown semantics contract: a destroyed pool finishes EVERY submitted
  // task, including ones still sitting in the queue when the destructor
  // requests stop (workers keep draining while the queue is non-empty).
  constexpr int kTasks = 64;
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  {
    ThreadPool pool(2);
    // Park both workers so everything submitted after this is guaranteed
    // to be queued-but-unstarted when the destructor runs.
    for (int i = 0; i < 2; ++i) {
      pool.submit([&] {
        while (!release.load()) {
          std::this_thread::yield();
        }
        ran.fetch_add(1);
      });
    }
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    release.store(true);
  }  // ~ThreadPool
  EXPECT_EQ(ran.load(), kTasks + 2);
}

TEST(ThreadPoolTest, DestructorWithBlockedWorkersAndQueueBacklog) {
  // Same contract under contention: the destructor is invoked while the
  // workers are mid-task and the backlog is deep; nothing is lost.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 300; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(ran.load(), 300);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, 4, [&](std::size_t i) { ++hits[i]; }, 7);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeIsNoOp) {
  int calls = 0;
  parallel_for(5, 5, 4, [&](std::size_t) { ++calls; });
  parallel_for(7, 3, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, SingleThreadRunsInline) {
  std::vector<std::size_t> order;
  parallel_for(0, 10, 1, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expect(10);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect);  // inline execution preserves order
}

TEST(ParallelForTest, PropagatesExceptions) {
  EXPECT_THROW(parallel_for(0, 100, 4,
                            [](std::size_t i) {
                              if (i == 37) {
                                throw std::runtime_error("x");
                              }
                            },
                            1),
               std::runtime_error);
}

TEST(ParallelForRankedTest, RanksAreWithinBounds) {
  constexpr std::size_t kThreads = 4;
  std::atomic<int> bad{0};
  parallel_for_ranked(0, 1000, kThreads, [&](std::size_t rank, std::size_t) {
    if (rank >= kThreads) {
      ++bad;
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(ParallelReduceTest, SumsMatchSequential) {
  constexpr std::size_t kN = 100000;
  const auto total = parallel_reduce<std::uint64_t>(
      0, kN, 4, [] { return std::uint64_t{0}; },
      [](std::uint64_t& acc, std::size_t i) { acc += i; },
      [](std::uint64_t& a, std::uint64_t& b) { a += b; });
  EXPECT_EQ(total, std::uint64_t{kN} * (kN - 1) / 2);
}

TEST(ParallelReduceTest, DeterministicAcrossThreadCounts) {
  constexpr std::size_t kN = 5000;
  const auto run = [&](std::size_t threads) {
    return parallel_reduce<std::uint64_t>(
        0, kN, threads, [] { return std::uint64_t{0}; },
        [](std::uint64_t& acc, std::size_t i) { acc += i * i; },
        [](std::uint64_t& a, std::uint64_t& b) { a += b; });
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(4), base);
  EXPECT_EQ(run(16), base);
}

TEST(EffectiveThreadsTest, ZeroMeansHardware) {
  EXPECT_GE(effective_threads(0), 1u);
  EXPECT_EQ(effective_threads(3), 3u);
}

TEST(ParallelForTest, ManyMoreThreadsThanItems) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(0, 3, 64, [&](std::size_t i) { ++hits[i]; }, 1);
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

}  // namespace
}  // namespace bfhrf::parallel
