#include "parallel/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/pipeline.hpp"

namespace bfhrf::parallel {
namespace {

TEST(BoundedQueueTest, FifoSingleThread) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.push(int{i}));
  }
  q.close();
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.pop(out));  // closed and drained
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.push(1));
  EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedQueueTest, PushFailsAfterClose) {
  BoundedQueue<int> q(4);
  q.close();
  EXPECT_FALSE(q.push(42));
  int out = 0;
  EXPECT_FALSE(q.pop(out));
}

TEST(BoundedQueueTest, CloseDrainsPendingItems) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.pop(out));
}

TEST(BoundedQueueTest, AbortDiscardsPendingItems) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.abort();
  EXPECT_TRUE(q.aborted());
  EXPECT_EQ(q.size(), 0u);
  int out = 0;
  EXPECT_FALSE(q.pop(out));
  EXPECT_FALSE(q.push(3));
}

TEST(BoundedQueueTest, ProducerBlocksUntilSpaceFreesUp) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(0));  // queue now full
  std::atomic<bool> second_pushed{false};
  std::jthread producer([&] {
    EXPECT_TRUE(q.push(1));  // blocks until the pop below
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());  // still blocked on the full queue
  int out = -1;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 0);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
}

TEST(BoundedQueueTest, ShutdownWhileFullUnblocksProducers) {
  // Producers blocked on a full queue must wake on close() and observe a
  // failed push; items already queued still drain.
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(7));
  std::atomic<int> failed_pushes{0};
  std::vector<std::jthread> producers;
  producers.reserve(3);
  for (int i = 0; i < 3; ++i) {
    producers.emplace_back([&q, &failed_pushes] {
      if (!q.push(99)) {
        failed_pushes.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producers.clear();  // join
  EXPECT_EQ(failed_pushes.load(), 3);
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(q.pop(out));
}

TEST(BoundedQueueTest, AbortWhileFullUnblocksProducers) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(7));
  std::atomic<bool> push_failed{false};
  std::jthread producer([&] {
    if (!q.push(99)) {
      push_failed.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.abort();
  producer.join();
  EXPECT_TRUE(push_failed.load());
  int out = 0;
  EXPECT_FALSE(q.pop(out));  // aborted queues discard even queued items
}

TEST(BoundedQueueTest, CloseWhileEmptyUnblocksConsumers) {
  // Consumers blocked on an empty queue must wake on close() and observe a
  // failed pop (closed-and-drained), not hang.
  BoundedQueue<int> q(4);
  std::atomic<int> failed_pops{0};
  std::vector<std::jthread> consumers;
  consumers.reserve(3);
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&q, &failed_pops] {
      int out = 0;
      if (!q.pop(out)) {
        failed_pops.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumers.clear();  // join
  EXPECT_EQ(failed_pops.load(), 3);
}

TEST(BoundedQueueTest, AbortWhileEmptyUnblocksConsumers) {
  BoundedQueue<int> q(4);
  std::atomic<bool> pop_failed{false};
  std::jthread consumer([&] {
    int out = 0;
    if (!q.pop(out)) {
      pop_failed.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.abort();
  consumer.join();
  EXPECT_TRUE(pop_failed.load());
}

TEST(BoundedQueueTest, AbortMidStreamUnblocksBothSides) {
  // Producers blocked on a full queue AND consumers racing pops must all
  // come unstuck when abort() lands mid-stream, with no further
  // successful operations afterwards.
  BoundedQueue<int> q(2);
  std::atomic<bool> stop_feeding{false};
  std::atomic<int> produced{0};
  std::atomic<int> consumed{0};

  std::vector<std::jthread> producers;
  std::vector<std::jthread> consumers;
  producers.reserve(2);
  consumers.reserve(2);
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&] {
      int i = 0;
      while (!stop_feeding.load() && q.push(int{i})) {
        ++i;
        produced.fetch_add(1);
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      int out = 0;
      // Slow consumers keep the queue mostly full, so producers block.
      while (q.pop(out)) {
        consumed.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  q.abort();
  stop_feeding.store(true);
  producers.clear();
  consumers.clear();

  EXPECT_TRUE(q.aborted());
  // Abort discards: some produced items may legitimately never be
  // consumed, but nothing is conjured from thin air.
  EXPECT_LE(consumed.load(), produced.load());
  int out = 0;
  EXPECT_FALSE(q.pop(out));
  EXPECT_FALSE(q.push(1));
}

TEST(BoundedQueueTest, MpmcStressPreservesEveryItem) {
  // 4 producers × 4 consumers over a deliberately tiny queue: every pushed
  // value must be popped exactly once, under heavy blocking on both sides.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  constexpr int kTotal = kProducers * kPerProducer;

  BoundedQueue<int> q(3);
  std::vector<std::atomic<int>> seen(kTotal);
  std::atomic<int> popped{0};

  std::vector<std::jthread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int item = -1;
      while (q.pop(item)) {
        seen[static_cast<std::size_t>(item)].fetch_add(1);
        popped.fetch_add(1);
      }
    });
  }
  {
    std::vector<std::jthread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&q, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          EXPECT_TRUE(q.push(p * kPerProducer + i));
        }
      });
    }
  }  // producers join
  q.close();
  consumers.clear();  // consumers join

  EXPECT_EQ(popped.load(), kTotal);
  for (int i = 0; i < kTotal; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

TEST(PipelineTest, InlineModeRunsOnCallingThreadInOrder) {
  const auto caller = std::this_thread::get_id();
  std::vector<int> consumed;
  pipeline_run<int>(
      /*consumers=*/0, /*queue_capacity=*/4,
      [](const PipelineEmit<int>& emit) {
        for (int i = 0; i < 10; ++i) {
          ASSERT_TRUE(emit(int{i}));
        }
      },
      [&](std::size_t rank, int& item) {
        EXPECT_EQ(rank, 0u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        consumed.push_back(item);
      });
  ASSERT_EQ(consumed.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(consumed[static_cast<std::size_t>(i)], i);
  }
}

TEST(PipelineTest, EveryItemConsumedExactlyOnce) {
  constexpr int kItems = 500;
  std::vector<std::atomic<int>> seen(kItems);
  pipeline_run<int>(
      /*consumers=*/3, /*queue_capacity=*/4,
      [](const PipelineEmit<int>& emit) {
        for (int i = 0; i < kItems; ++i) {
          ASSERT_TRUE(emit(int{i}));
        }
      },
      [&](std::size_t /*rank*/, int& item) {
        seen[static_cast<std::size_t>(item)].fetch_add(1);
      });
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

TEST(PipelineTest, ConsumerExceptionPropagatesWithoutDeadlock) {
  // The queue is tiny and the producer has far more items than capacity, so
  // without the abort protocol the producer would block forever on a full
  // queue after the consumer dies. The emit() false return must also reach
  // the producer so it stops early.
  std::atomic<int> emitted{0};
  const auto run = [&] {
    pipeline_run<int>(
        /*consumers=*/2, /*queue_capacity=*/2,
        [&](const PipelineEmit<int>& emit) {
          for (int i = 0; i < 100000; ++i) {
            if (!emit(int{i})) {
              return;  // pipeline aborted underneath us
            }
            emitted.fetch_add(1);
          }
        },
        [](std::size_t /*rank*/, int& item) {
          if (item == 5) {
            throw std::runtime_error("consumer boom");
          }
        });
  };
  EXPECT_THROW(run(), std::runtime_error);
  EXPECT_LT(emitted.load(), 100000);  // production stopped early
}

TEST(PipelineTest, ProducerExceptionPropagatesAndUnblocksConsumers) {
  const auto run = [] {
    pipeline_run<int>(
        /*consumers=*/2, /*queue_capacity=*/2,
        [](const PipelineEmit<int>& emit) {
          ASSERT_TRUE(emit(1));
          throw std::runtime_error("producer boom");
        },
        [](std::size_t /*rank*/, int& /*item*/) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        });
  };
  EXPECT_THROW(run(), std::runtime_error);
}

TEST(PipelineTest, EmptyStreamCompletes) {
  int consumed = 0;
  pipeline_run<int>(
      /*consumers=*/2, /*queue_capacity=*/4,
      [](const PipelineEmit<int>& /*emit*/) {},
      [&](std::size_t /*rank*/, int& /*item*/) { ++consumed; });
  EXPECT_EQ(consumed, 0);
}

}  // namespace
}  // namespace bfhrf::parallel
