// Streaming-engine equivalence: the pipelined producer/consumer path, the
// legacy barrier-batch path, and the in-memory span path must produce
// BIT-IDENTICAL per-tree averages for classic RF (all three accumulate
// integer-valued terms), regardless of thread count, queue capacity, or the
// scratch-reuse and batched-hash toggles.
#include <gtest/gtest.h>

#include <vector>

#include "core/bfhrf.hpp"
#include "core/tree_source.hpp"
#include "phylo/taxon_set.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

struct Collections {
  std::vector<Tree> reference;
  std::vector<Tree> queries;
  std::size_t n_bits = 0;
};

Collections make_collections(std::size_t n_taxa, std::size_t r,
                             std::size_t q, std::uint64_t seed) {
  const auto taxa = TaxonSet::make_numbered(n_taxa);
  util::Rng rng(seed);
  Collections c;
  c.reference = test::random_collection(taxa, r, 4, rng);
  c.queries = test::random_collection(taxa, q, 6, rng);
  c.n_bits = taxa->size();
  return c;
}

std::vector<double> run_engine(const Collections& c, BfhrfOptions opts,
                               bool stream) {
  Bfhrf engine(c.n_bits, opts);
  if (stream) {
    SpanTreeSource ref_source(c.reference);
    SpanTreeSource query_source(c.queries);
    engine.build(ref_source);
    return engine.query(query_source);
  }
  engine.build(c.reference);
  return engine.query(c.queries);
}

/// Baseline: fully sequential span path with every new fast path disabled.
std::vector<double> legacy_baseline(const Collections& c) {
  return run_engine(c,
                    BfhrfOptions{.threads = 1,
                                 .reuse_scratch = false,
                                 .batched_hash = false},
                    /*stream=*/false);
}

TEST(BfhrfStreamTest, PipelinedStreamMatchesSpanPathBitwise) {
  const Collections c = make_collections(18, 40, 13, 11);
  const auto expect = legacy_baseline(c);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    const auto got = run_engine(
        c,
        BfhrfOptions{.threads = threads,
                     .streaming = StreamingMode::Pipelined},
        /*stream=*/true);
    ASSERT_EQ(got.size(), expect.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expect[i]) << "threads=" << threads << " query " << i;
    }
  }
}

TEST(BfhrfStreamTest, BarrierStreamMatchesPipelinedStreamBitwise) {
  const Collections c = make_collections(16, 30, 9, 12);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    const auto barrier = run_engine(
        c,
        BfhrfOptions{.threads = threads,
                     .batch_size = 4,
                     .streaming = StreamingMode::BarrierBatch},
        /*stream=*/true);
    const auto pipelined = run_engine(
        c,
        BfhrfOptions{.threads = threads,
                     .streaming = StreamingMode::Pipelined},
        /*stream=*/true);
    ASSERT_EQ(barrier.size(), pipelined.size());
    for (std::size_t i = 0; i < barrier.size(); ++i) {
      EXPECT_EQ(barrier[i], pipelined[i])
          << "threads=" << threads << " query " << i;
    }
  }
}

TEST(BfhrfStreamTest, TinyQueueCapacityDoesNotChangeResults) {
  // Capacity 1 forces maximal producer/consumer blocking; results must not
  // depend on scheduling.
  const Collections c = make_collections(14, 25, 7, 13);
  const auto expect = legacy_baseline(c);
  const auto got = run_engine(c,
                              BfhrfOptions{.threads = 4,
                                           .streaming =
                                               StreamingMode::Pipelined,
                                           .queue_capacity = 1},
                              /*stream=*/true);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "query " << i;
  }
}

TEST(BfhrfStreamTest, ScratchReuseIsInvariant) {
  // Reusing per-worker extraction scratch across trees must be invisible:
  // same results with the toggle on and off, across repeated queries (a
  // warm extractor must not leak state from the previous tree).
  const Collections c = make_collections(20, 35, 11, 14);
  const auto without = run_engine(
      c, BfhrfOptions{.threads = 2, .reuse_scratch = false},
      /*stream=*/false);
  const auto with = run_engine(
      c, BfhrfOptions{.threads = 2, .reuse_scratch = true},
      /*stream=*/false);
  ASSERT_EQ(with.size(), without.size());
  for (std::size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(with[i], without[i]) << "query " << i;
  }

  // Re-querying through the same engine (same warm scratch) is stable.
  Bfhrf engine(c.n_bits, BfhrfOptions{.threads = 2});
  engine.build(c.reference);
  const auto first = engine.query(c.queries);
  const auto second = engine.query(c.queries);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "query " << i;
  }
}

TEST(BfhrfStreamTest, BatchedQueryIsInvariant) {
  // The frequency_many prefetch path and the legacy virtual per-split
  // lookup must agree bitwise (classic RF terms are integers in doubles).
  const Collections c = make_collections(70, 30, 9, 15);  // 2 words per key
  const auto legacy = run_engine(
      c, BfhrfOptions{.threads = 1, .batched_hash = false},
      /*stream=*/false);
  const auto batched = run_engine(
      c, BfhrfOptions{.threads = 1, .batched_hash = true},
      /*stream=*/false);
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(batched[i], legacy[i]) << "query " << i;
  }

  const Collections small = make_collections(24, 20, 7, 16);  // 1 word
  const auto legacy1 = run_engine(
      small, BfhrfOptions{.threads = 1, .batched_hash = false},
      /*stream=*/false);
  const auto batched1 = run_engine(
      small, BfhrfOptions{.threads = 1, .batched_hash = true},
      /*stream=*/false);
  for (std::size_t i = 0; i < legacy1.size(); ++i) {
    EXPECT_EQ(batched1[i], legacy1[i]) << "query " << i;
  }
}

TEST(BfhrfStreamTest, ExpectedUniqueHintDoesNotChangeResults) {
  const Collections c = make_collections(15, 30, 8, 17);
  const auto expect = legacy_baseline(c);

  Bfhrf sized(c.n_bits, BfhrfOptions{.threads = 2, .expected_unique = 4096});
  sized.build(c.reference);
  const auto got = sized.query(c.queries);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "query " << i;
  }
  // The hint pre-sizes; it must never undercount what was actually stored.
  EXPECT_EQ(sized.stats().unique_bipartitions,
            [&] {
              Bfhrf plain(c.n_bits, BfhrfOptions{.threads = 1});
              plain.build(c.reference);
              return plain.stats().unique_bipartitions;
            }());
}

TEST(BfhrfStreamTest, CompressedStoreStreamsThroughPipeline) {
  // Compressed stores have no frequency_many fast path; the pipeline and
  // scratch reuse must still hold exactly.
  const Collections c = make_collections(17, 25, 7, 18);
  const auto expect = legacy_baseline(c);
  const auto got = run_engine(c,
                              BfhrfOptions{.threads = 3,
                                           .compressed_keys = true,
                                           .streaming =
                                               StreamingMode::Pipelined},
                              /*stream=*/true);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "query " << i;
  }
}

}  // namespace
}  // namespace bfhrf::core
