#include "core/bit_matrix.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/all_pairs.hpp"
#include "phylo/bipartition.hpp"
#include "phylo/taxon_set.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

void expect_same(const RfMatrix& a, const RfMatrix& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a.size(); ++j) {
      ASSERT_EQ(a.at(i, j), b.at(i, j)) << "cell (" << i << "," << j << ")";
    }
  }
}

TEST(BitMatrixTest, EnginesMatchLegacyAcrossThreadCounts) {
  const auto taxa = TaxonSet::make_numbered(24);
  util::Rng rng(test::fuzz_seed(0xB17));
  const auto trees = test::random_collection(taxa, 30, 5, rng);
  const RfMatrix legacy =
      all_pairs_rf(trees, {.engine = AllPairsEngine::Legacy});
  for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    expect_same(legacy, all_pairs_rf(trees, {.threads = t,
                                             .engine =
                                                 AllPairsEngine::BitDense}));
    expect_same(legacy, all_pairs_rf(trees, {.threads = t,
                                             .engine =
                                                 AllPairsEngine::BitSparse}));
    expect_same(legacy,
                all_pairs_rf(trees, {.threads = t,
                                     .engine = AllPairsEngine::Auto}));
  }
}

TEST(BitMatrixTest, HardwareDefaultThreadsWork) {
  const auto taxa = TaxonSet::make_numbered(16);
  util::Rng rng(11);
  const auto trees = test::random_collection(taxa, 12, 4, rng);
  const RfMatrix a = all_pairs_rf(trees, {.threads = 1});
  // threads = 0 means hardware default (satellite fix: the doc and the
  // behaviour now agree with BfhrfOptions).
  const RfMatrix b = all_pairs_rf(trees, {.threads = 0});
  expect_same(a, b);
}

TEST(BitMatrixTest, SymmetryAndZeroDiagonal) {
  const auto taxa = TaxonSet::make_numbered(20);
  util::Rng rng(5);
  const auto trees = test::independent_collection(taxa, 16, rng);
  for (const AllPairsEngine e :
       {AllPairsEngine::BitDense, AllPairsEngine::BitSparse}) {
    const RfMatrix m = all_pairs_rf(trees, {.threads = 4, .engine = e});
    for (std::size_t i = 0; i < trees.size(); ++i) {
      EXPECT_EQ(m.at(i, i), 0U);
      for (std::size_t j = 0; j < trees.size(); ++j) {
        EXPECT_EQ(m.at(i, j), m.at(j, i));
      }
    }
  }
}

TEST(BitMatrixTest, MaxRfSaturation) {
  // Find a pair of independent trees with fully disjoint split sets; the
  // engines must report the saturated distance d_i + d_j for it.
  const auto taxa = TaxonSet::make_numbered(16);
  util::Rng rng(test::fuzz_seed(0x5A7));
  const phylo::BipartitionOptions bip_opts;
  std::vector<Tree> trees;
  std::optional<std::pair<std::size_t, std::size_t>> disjoint;
  for (int attempt = 0; attempt < 64 && !disjoint; ++attempt) {
    trees = test::independent_collection(taxa, 12, rng);
    std::vector<phylo::BipartitionSet> sets;
    sets.reserve(trees.size());
    for (const auto& t : trees) {
      sets.push_back(phylo::extract_bipartitions(t, bip_opts));
    }
    for (std::size_t i = 0; i < sets.size() && !disjoint; ++i) {
      for (std::size_t j = i + 1; j < sets.size() && !disjoint; ++j) {
        if (phylo::BipartitionSet::intersection_size(sets[i], sets[j]) == 0) {
          disjoint = {i, j};
        }
      }
    }
  }
  ASSERT_TRUE(disjoint.has_value())
      << "no disjoint pair in 64 independent collections";
  const auto [i, j] = *disjoint;
  const std::size_t d_i =
      phylo::extract_bipartitions(trees[i], bip_opts).size();
  const std::size_t d_j =
      phylo::extract_bipartitions(trees[j], bip_opts).size();
  for (const AllPairsEngine e :
       {AllPairsEngine::BitDense, AllPairsEngine::BitSparse}) {
    const RfMatrix m = all_pairs_rf(trees, {.threads = 2, .engine = e});
    EXPECT_EQ(m.at(i, j), d_i + d_j);
  }
}

TEST(BitMatrixTest, DensityThresholdBoundary) {
  // density() = memberships / (trees · width). 100 trees × 64 of 1024
  // unique splits each → density 1/16.
  UniverseStats stats{.trees = 100,
                      .universe_width = 1024,
                      .total_memberships = 100 * 64};
  ASSERT_DOUBLE_EQ(stats.density(), 1.0 / 16.0);

  // At the threshold exactly: dense (the comparison is >=).
  AllPairsOptions opts{.density_threshold = 1.0 / 16.0};
  EXPECT_EQ(pick_bit_engine(stats, opts), AllPairsEngine::BitDense);
  // Just below: sparse.
  opts.density_threshold = 1.0 / 16.0 + 1e-12;
  EXPECT_EQ(pick_bit_engine(stats, opts), AllPairsEngine::BitSparse);
  // Default threshold (0 = kDefaultDensityThreshold): 1/16 is denser.
  opts.density_threshold = 0.0;
  EXPECT_EQ(pick_bit_engine(stats, opts), AllPairsEngine::BitDense);

  // A wide universe where each row is one split in 100k: sparse.
  const UniverseStats sparse_stats{.trees = 10,
                                   .universe_width = 100000,
                                   .total_memberships = 10};
  EXPECT_EQ(pick_bit_engine(sparse_stats, opts), AllPairsEngine::BitSparse);

  // Explicit engine requests pass through regardless of density.
  opts.engine = AllPairsEngine::BitSparse;
  EXPECT_EQ(pick_bit_engine(stats, opts), AllPairsEngine::BitSparse);
  opts.engine = AllPairsEngine::BitDense;
  EXPECT_EQ(pick_bit_engine(sparse_stats, opts), AllPairsEngine::BitDense);

  // Degenerate universes have density 0 and pick sparse.
  const UniverseStats empty_stats{};
  EXPECT_EQ(empty_stats.density(), 0.0);
  EXPECT_EQ(pick_bit_engine(empty_stats, AllPairsOptions{}),
            AllPairsEngine::BitSparse);
}

TEST(BitMatrixTest, BitMatrixRfReportsUniverseStats) {
  const auto taxa = TaxonSet::make_numbered(14);
  util::Rng rng(9);
  const auto trees = test::random_collection(taxa, 10, 3, rng);
  std::vector<phylo::BipartitionSet> sets;
  sets.reserve(trees.size());
  std::uint64_t memberships = 0;
  for (const auto& t : trees) {
    sets.push_back(phylo::extract_bipartitions(t, {}));
    memberships += sets.back().size();
  }
  UniverseStats stats;
  const RfMatrix m = bit_matrix_rf(sets, {.threads = 2}, &stats);
  EXPECT_EQ(m.size(), trees.size());
  EXPECT_EQ(stats.trees, trees.size());
  EXPECT_EQ(stats.total_memberships, memberships);
  // The universe is at most the sum of rows and at least one tree's row.
  EXPECT_LE(stats.universe_width, memberships);
  EXPECT_GE(stats.universe_width, sets.front().size());
}

TEST(BitMatrixTest, TileRowsOverrideDoesNotChangeResults) {
  const auto taxa = TaxonSet::make_numbered(18);
  util::Rng rng(13);
  const auto trees = test::random_collection(taxa, 21, 4, rng);
  const RfMatrix base = all_pairs_rf(trees, {.threads = 1});
  for (const std::size_t tile_rows : {std::size_t{1}, std::size_t{3},
                                      std::size_t{1000}}) {
    for (const AllPairsEngine e :
         {AllPairsEngine::BitDense, AllPairsEngine::BitSparse}) {
      expect_same(base, all_pairs_rf(trees, {.threads = 4,
                                             .engine = e,
                                             .tile_rows = tile_rows}));
    }
  }
}

TEST(BitMatrixTest, ForcedSwarMatchesVectorized) {
  const auto taxa = TaxonSet::make_numbered(40);
  util::Rng rng(test::fuzz_seed(0x5135));
  const auto trees = test::random_collection(taxa, 24, 6, rng);
  for (const AllPairsEngine e :
       {AllPairsEngine::BitDense, AllPairsEngine::BitSparse}) {
    util::simd::set_force_level(util::simd::Level::Swar);
    const RfMatrix swar = all_pairs_rf(trees, {.threads = 2, .engine = e});
    util::simd::set_force_level(std::nullopt);
    const RfMatrix vec = all_pairs_rf(trees, {.threads = 2, .engine = e});
    expect_same(swar, vec);
  }
}

TEST(BitMatrixTest, SingleTreeCollection) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(21);
  const auto trees = test::random_collection(taxa, 1, 2, rng);
  for (const AllPairsEngine e :
       {AllPairsEngine::BitDense, AllPairsEngine::BitSparse}) {
    const RfMatrix m = all_pairs_rf(trees, {.engine = e});
    EXPECT_EQ(m.size(), 1U);
    EXPECT_EQ(m.at(0, 0), 0U);
  }
}

}  // namespace
}  // namespace bfhrf::core
