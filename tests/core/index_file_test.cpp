#include "core/index_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/bfhrf.hpp"
#include "core/serialize.hpp"
#include "support/test_util.hpp"
#include "util/error.hpp"
#include "util/group_table.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

/// Self-deleting scratch path under the system temp dir.
class TempFile {
 public:
  explicit TempFile(const char* tag) {
    path_ = (std::filesystem::temp_directory_path() /
             (std::string("bfhrf_index_test_") + tag + ".bfi"))
                .string();
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  [[nodiscard]] std::vector<char> bytes() const {
    std::ifstream in(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }
  void write_bytes(const std::vector<char>& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

 private:
  std::string path_;
};

struct BuiltEngine {
  phylo::TaxonSetPtr taxa;
  std::vector<Tree> reference;
  std::vector<Tree> queries;
};

BuiltEngine make_workload(std::size_t n, std::size_t r, std::size_t q,
                          std::uint64_t seed) {
  BuiltEngine w;
  w.taxa = TaxonSet::make_numbered(n);
  util::Rng rng(seed);
  w.reference = test::random_collection(w.taxa, r, 4, rng);
  w.queries = test::random_collection(w.taxa, q, 6, rng);
  return w;
}

TEST(IndexFileTest, HeaderLayoutIsPinned) {
  // These sizes ARE the on-disk format; a change is a format revision.
  EXPECT_EQ(sizeof(MappedHeader), 128u);
  EXPECT_EQ(sizeof(MappedShardRecord), 64u);
  EXPECT_EQ(kMappedSectionAlign % 16u, 0u);  // vector ctrl loads
}

TEST(IndexFileTest, MappedQueriesMatchMemoryAndV1Exactly) {
  const BuiltEngine w = make_workload(26, 30, 10, 3);
  Bfhrf engine(w.taxa->size(), {.shards = 1});
  engine.build(w.reference);
  const auto want = engine.query(w.queries);

  const TempFile mapped_file("roundtrip_map");
  const TempFile v1_file("roundtrip_v1");
  save_bfhrf_file(engine, mapped_file.path(), IndexFormat::Mapped);
  save_bfhrf_file(engine, v1_file.path(), IndexFormat::V1Stream);

  const Bfhrf mapped = load_bfhrf_file(mapped_file.path());
  const Bfhrf parsed = load_bfhrf_file(v1_file.path());

  // The mapped load serves in place; the v1 load rebuilt a table.
  EXPECT_NE(dynamic_cast<const MappedFrequencyStore*>(&mapped.store()),
            nullptr);
  EXPECT_EQ(dynamic_cast<const MappedFrequencyStore*>(&parsed.store()),
            nullptr);
  EXPECT_EQ(mapped.stats().reference_trees, engine.stats().reference_trees);
  EXPECT_EQ(mapped.stats().unique_bipartitions,
            engine.stats().unique_bipartitions);

  const auto from_map = mapped.query(w.queries);
  const auto from_v1 = parsed.query(w.queries);
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    EXPECT_EQ(from_map[i], want[i]) << "mapped query " << i;
    EXPECT_EQ(from_v1[i], want[i]) << "v1 query " << i;
  }
}

TEST(IndexFileTest, ShardedLayoutRoundTrips) {
  const BuiltEngine w = make_workload(20, 24, 8, 5);
  Bfhrf engine(w.taxa->size(), {.threads = 2, .shards = 4});
  engine.build(w.reference);
  const auto want = engine.query(w.queries);

  const TempFile file("sharded");
  save_bfhrf_file(engine, file.path(), IndexFormat::Mapped);
  const MappedIndex index(file.path());
  EXPECT_EQ(index.header().shard_count, 4u);
  EXPECT_EQ(index.header().unique_keys, engine.stats().unique_bipartitions);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(index.shard(s).ctrl_offset % kMappedSectionAlign, 0u);
    EXPECT_EQ(index.shard(s).slots_offset % kMappedSectionAlign, 0u);
    EXPECT_EQ(index.shard(s).keys_offset % kMappedSectionAlign, 0u);
  }

  const Bfhrf loaded = load_bfhrf_file(file.path());
  const auto got = loaded.query(w.queries);
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    EXPECT_EQ(got[i], want[i]);
  }
}

TEST(IndexFileTest, CompressedStoreRoundTrips) {
  const BuiltEngine w = make_workload(40, 20, 6, 7);
  Bfhrf engine(w.taxa->size(), {.compressed_keys = true});
  engine.build(w.reference);
  const auto want = engine.query(w.queries);

  const TempFile file("compressed");
  save_bfhrf_file(engine, file.path(), IndexFormat::Mapped);
  const Bfhrf loaded = load_bfhrf_file(file.path());
  const auto* store =
      dynamic_cast<const MappedFrequencyStore*>(&loaded.store());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->kind(), MappedStoreKind::Compressed);
  EXPECT_TRUE(loaded.options().compressed_keys);
  const auto got = loaded.query(w.queries);
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    EXPECT_EQ(got[i], want[i]);
  }
}

TEST(IndexFileTest, SaveCompactsTombstonedState) {
  const BuiltEngine w = make_workload(18, 18, 6, 9);
  DynamicBfhIndex index(w.taxa->size());
  const auto ids = index.add_trees(w.reference);
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    index.remove_tree(ids[i]);
  }
  const auto want = index.query(w.queries);

  const TempFile file("tombstones");
  write_index_file(index.store(),
                   IndexFileMeta{.reference_trees = index.tree_count()},
                   file.path());
  const MappedIndex mapped(file.path());
  for (std::size_t s = 0; s < mapped.header().shard_count; ++s) {
    for (const std::uint8_t byte : mapped.ctrl(s)) {
      ASSERT_NE(byte, util::kCtrlDeleted)
          << "writer persisted a DELETED ctrl byte";
    }
  }
  const Bfhrf loaded = load_bfhrf_file(file.path());
  const auto got = loaded.query(w.queries);
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    EXPECT_EQ(got[i], want[i]);
  }
}

TEST(IndexFileTest, WarmStartFromMappedFile) {
  const BuiltEngine w = make_workload(22, 20, 6, 11);
  Bfhrf engine(w.taxa->size(), {.shards = 1});
  engine.build(w.reference);
  const auto want = engine.query(w.queries);

  const TempFile file("warmstart");
  save_bfhrf_file(engine, file.path(), IndexFormat::Mapped);
  DynamicBfhIndex dynamic = DynamicBfhIndex::from_index_file(file.path());
  EXPECT_EQ(dynamic.stats().reference_trees, w.reference.size());
  const auto got = dynamic.query(w.queries);
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    EXPECT_EQ(got[i], want[i]);
  }
  // The warm-started index is mutable: adding and removing a tree keeps
  // exact equivalence with the engine's own state transitions.
  const std::size_t id = dynamic.add_tree(w.reference.front());
  dynamic.remove_tree(id);
  const auto after = dynamic.query(w.queries);
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    EXPECT_EQ(after[i], want[i]);
  }
}

TEST(IndexFileTest, RejectsForeignAndCorruptFiles) {
  const BuiltEngine w = make_workload(16, 10, 4, 13);
  Bfhrf engine(w.taxa->size(), {.shards = 1});
  engine.build(w.reference);
  const TempFile file("corrupt");
  save_bfhrf_file(engine, file.path(), IndexFormat::Mapped);
  const std::vector<char> good = file.bytes();
  ASSERT_GE(good.size(), sizeof(MappedHeader));

  {  // bad magic
    std::vector<char> bad = good;
    bad[0] = 'X';
    file.write_bytes(bad);
    EXPECT_THROW(MappedIndex{file.path()}, ParseError);
  }
  {  // unsupported version
    std::vector<char> bad = good;
    const std::uint32_t v = 999;
    std::memcpy(bad.data() + offsetof(MappedHeader, version), &v, sizeof v);
    file.write_bytes(bad);
    EXPECT_THROW(MappedIndex{file.path()}, ParseError);
  }
  {  // truncated mid-section
    std::vector<char> bad = good;
    bad.resize(bad.size() - 32);
    file.write_bytes(bad);
    EXPECT_THROW(MappedIndex{file.path()}, ParseError);
  }
  {  // truncated inside the header
    std::vector<char> bad = good;
    bad.resize(sizeof(MappedHeader) / 2);
    file.write_bytes(bad);
    EXPECT_THROW(MappedIndex{file.path()}, ParseError);
  }
  {  // misaligned section offset
    std::vector<char> bad = good;
    std::uint64_t off = 0;
    const std::size_t field =
        sizeof(MappedHeader) + offsetof(MappedShardRecord, ctrl_offset);
    std::memcpy(&off, bad.data() + field, sizeof off);
    off += 8;  // still in bounds, no longer 64-byte aligned
    std::memcpy(bad.data() + field, &off, sizeof off);
    file.write_bytes(bad);
    EXPECT_THROW(MappedIndex{file.path()}, ParseError);
  }
  {  // shard totals no longer match the header
    std::vector<char> bad = good;
    std::uint64_t live = 0;
    const std::size_t field =
        sizeof(MappedHeader) + offsetof(MappedShardRecord, live_keys);
    std::memcpy(&live, bad.data() + field, sizeof live);
    live += 1;
    std::memcpy(bad.data() + field, &live, sizeof live);
    file.write_bytes(bad);
    EXPECT_THROW(MappedIndex{file.path()}, ParseError);
  }
  // A v1 stream is not a mapped file; the mapped loader must refuse it
  // (the sniffing load_bfhrf_file entry point handles both).
  file.write_bytes(good);
  save_bfhrf_file(engine, file.path(), IndexFormat::V1Stream);
  EXPECT_THROW(MappedIndex{file.path()}, ParseError);
  EXPECT_NO_THROW(load_bfhrf_file(file.path()));
}

TEST(IndexFileTest, SavingAMappedEngineToMappedFormatThrows) {
  const BuiltEngine w = make_workload(16, 8, 2, 17);
  Bfhrf engine(w.taxa->size(), {.shards = 1});
  engine.build(w.reference);
  const TempFile file("remap");
  save_bfhrf_file(engine, file.path(), IndexFormat::Mapped);
  const Bfhrf mapped = load_bfhrf_file(file.path());
  const TempFile second("remap2");
  // Its file already IS the mapped form; re-serializing the read-only
  // store is an error, but the v1 stream (via for_each_key) still works.
  EXPECT_THROW(save_bfhrf_file(mapped, second.path(), IndexFormat::Mapped),
               InvalidArgument);
  EXPECT_NO_THROW(
      save_bfhrf_file(mapped, second.path(), IndexFormat::V1Stream));
  const Bfhrf reparsed = load_bfhrf_file(second.path());
  EXPECT_EQ(reparsed.stats().unique_bipartitions,
            engine.stats().unique_bipartitions);
}

TEST(IndexFileTest, MapAdviceDoesNotChangeContents) {
  // madvise is purely a paging hint: every readahead policy must serve
  // the same header and the same frequencies, bit for bit.
  const BuiltEngine w = make_workload(20, 12, 4, 23);
  Bfhrf engine(w.taxa->size(), {.shards = 2});
  engine.build(w.reference);
  const TempFile file("advice");
  save_bfhrf_file(engine, file.path(), IndexFormat::Mapped);

  const MappedFrequencyStore plain(file.path());
  const MappedFrequencyStore willneed(file.path(), MapAdvice::WillNeed);
  const MappedFrequencyStore sequential(file.path(), MapAdvice::Sequential);
  for (const MappedFrequencyStore* s : {&willneed, &sequential}) {
    EXPECT_EQ(s->unique_count(), plain.unique_count());
    EXPECT_EQ(s->total_count(), plain.total_count());
    EXPECT_EQ(s->shard_count(), plain.shard_count());
    EXPECT_EQ(s->reference_trees(), plain.reference_trees());
    plain.for_each_key([&](util::ConstWordSpan key, std::uint32_t count) {
      EXPECT_EQ(s->frequency(key), count);
    });
  }
}

TEST(IndexFileTest, MappedStoreIsReadOnly) {
  const BuiltEngine w = make_workload(16, 8, 2, 19);
  Bfhrf engine(w.taxa->size(), {.shards = 1});
  engine.build(w.reference);
  const TempFile file("readonly");
  save_bfhrf_file(engine, file.path(), IndexFormat::Mapped);
  Bfhrf mapped = load_bfhrf_file(file.path());
  // Mutating a mapped engine (e.g. building more trees into it) throws.
  EXPECT_THROW(mapped.build(std::span<const Tree>(w.reference)), Error);
}

}  // namespace
}  // namespace bfhrf::core
