#include "core/compressed_hash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/bfhrf.hpp"
#include "core/consensus.hpp"
#include "core/frequency_hash.hpp"
#include "core/rf.hpp"
#include "support/test_util.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::Tree;

util::DynamicBitset key(std::size_t n_bits, std::initializer_list<int> bits) {
  util::DynamicBitset b(n_bits);
  for (const int i : bits) {
    b.set(static_cast<std::size_t>(i));
  }
  return b;
}

TEST(CompressedHashTest, AddAndLookup) {
  CompressedFrequencyHash h(100);
  const auto a = key(100, {1, 2});
  const auto b = key(100, {64, 65});
  h.add(a.words());
  h.add(a.words());
  h.add(b.words(), 3);
  EXPECT_EQ(h.frequency(a.words()), 2u);
  EXPECT_EQ(h.frequency(b.words()), 3u);
  EXPECT_EQ(h.unique_count(), 2u);
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_EQ(h.frequency(key(100, {9}).words()), 0u);
}

TEST(CompressedHashTest, MirrorsRawHashUnderRandomLoad) {
  constexpr std::size_t kBits = 150;
  FrequencyHash raw(kBits);
  CompressedFrequencyHash comp(kBits);
  util::Rng rng(7);
  std::vector<util::DynamicBitset> keys;
  for (int i = 0; i < 3000; ++i) {
    util::DynamicBitset b(kBits);
    for (int j = 0; j < 4; ++j) {
      b.set(rng.below(kBits));
    }
    raw.add(b.words());
    comp.add(b.words());
    keys.push_back(std::move(b));
  }
  EXPECT_EQ(comp.unique_count(), raw.unique_count());
  EXPECT_EQ(comp.total_count(), raw.total_count());
  for (const auto& k : keys) {
    EXPECT_EQ(comp.frequency(k.words()), raw.frequency(k.words()));
  }
}

TEST(CompressedHashTest, ForEachKeyDecodesExactKeys) {
  constexpr std::size_t kBits = 96;
  CompressedFrequencyHash h(kBits);
  util::Rng rng(11);
  std::map<std::string, std::uint32_t> mirror;
  for (int i = 0; i < 300; ++i) {
    util::DynamicBitset b(kBits);
    b.set(rng.below(kBits));
    b.set(rng.below(kBits));
    h.add(b.words());
    ++mirror[b.to_string()];
  }
  std::map<std::string, std::uint32_t> seen;
  h.for_each_key([&](util::ConstWordSpan words, std::uint32_t count) {
    seen[util::DynamicBitset(kBits, words).to_string()] = count;
  });
  EXPECT_EQ(seen, mirror);
}

TEST(CompressedHashTest, MergeCombines) {
  CompressedFrequencyHash a(80);
  CompressedFrequencyHash b(80);
  a.add(key(80, {1}).words(), 2);
  b.add(key(80, {1}).words(), 3);
  b.add(key(80, {2}).words(), 1);
  a.merge_from(b);
  EXPECT_EQ(a.frequency(key(80, {1}).words()), 5u);
  EXPECT_EQ(a.frequency(key(80, {2}).words()), 1u);
  EXPECT_EQ(a.total_count(), 6u);
}

TEST(CompressedHashTest, MergeTypeMismatchThrows) {
  CompressedFrequencyHash a(80);
  FrequencyHash raw(80);
  EXPECT_THROW(a.merge_from(raw), InvalidArgument);
  EXPECT_THROW(raw.merge_from(a), InvalidArgument);
  CompressedFrequencyHash other(90);
  EXPECT_THROW(a.merge_from(other), InvalidArgument);
}

TEST(CompressedHashTest, WeightedTotalsSurviveMerge) {
  CompressedFrequencyHash a(64);
  CompressedFrequencyHash b(64);
  a.add_weighted(key(64, {1}).words(), 2, 0.5);
  b.add_weighted(key(64, {2}).words(), 3, 2.0);
  a.merge_from(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), 2 * 0.5 + 3 * 2.0);
}

TEST(CompressedHashTest, UsesLessKeyMemoryOnLargeUniverses) {
  constexpr std::size_t kTaxa = 500;
  const auto taxa = phylo::TaxonSet::make_numbered(kTaxa);
  util::Rng rng(5);
  const auto trees = test::random_collection(taxa, 100, 5, rng);

  FrequencyHash raw(kTaxa);
  CompressedFrequencyHash comp(kTaxa);
  for (const auto& t : trees) {
    const auto bips = phylo::extract_bipartitions(t);
    bips.for_each([&](util::ConstWordSpan w) {
      raw.add(w);
      comp.add(w);
    });
  }
  EXPECT_EQ(comp.unique_count(), raw.unique_count());
  // Mean encoded key beats the 64-byte raw key at n=500. (The win depends
  // on split depth: shallow clades cost a few bytes, balanced ones less so
  // — bench_ablation_hash A4c quantifies the distribution.)
  const double raw_key_bytes =
      static_cast<double>(util::words_for_bits(kTaxa)) * 8.0;
  EXPECT_LT(comp.mean_key_bytes(), 0.9 * raw_key_bytes);
}

// --- engine-level integration -------------------------------------------

TEST(CompressedHashTest, BfhrfResultsIdenticalWithCompressedKeys) {
  const auto taxa = phylo::TaxonSet::make_numbered(40);
  util::Rng rng(13);
  const auto reference = test::random_collection(taxa, 30, 4, rng);
  const auto queries = test::random_collection(taxa, 10, 6, rng);

  const auto raw = bfhrf_average_rf(queries, reference);
  const auto comp = bfhrf_average_rf(queries, reference,
                                     {.compressed_keys = true});
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(comp[i], raw[i]);
  }
}

TEST(CompressedHashTest, ParallelCompressedBuildMatchesSequential) {
  const auto taxa = phylo::TaxonSet::make_numbered(24);
  util::Rng rng(17);
  const auto reference = test::random_collection(taxa, 40, 3, rng);
  const auto queries = test::random_collection(taxa, 8, 5, rng);

  const auto seq = bfhrf_average_rf(queries, reference,
                                    {.threads = 1, .compressed_keys = true});
  const auto par = bfhrf_average_rf(queries, reference,
                                    {.threads = 4, .compressed_keys = true});
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(par[i], seq[i]);
  }
}

TEST(CompressedHashTest, ConsensusWorksOffCompressedStore) {
  const auto taxa = phylo::TaxonSet::make_numbered(14);
  util::Rng rng(19);
  const Tree base = sim::yule_tree(taxa, rng);
  const std::vector<Tree> trees(9, base);
  Bfhrf engine(taxa->size(), {.compressed_keys = true});
  engine.build(trees);
  const Tree cons = consensus_tree(engine.store(), trees.size(), taxa);
  EXPECT_EQ(rf_distance(cons, base), 0u);
}

TEST(CompressedHashTest, VariantWeightsWorkWithCompressedKeys) {
  const auto taxa = phylo::TaxonSet::make_numbered(16);
  util::Rng rng(23);
  const auto reference = test::random_collection(taxa, 15, 3, rng);
  const auto queries = test::random_collection(taxa, 5, 4, rng);
  const InformationWeightedRf variant(16);

  BfhrfOptions raw_opts;
  raw_opts.variant = &variant;
  BfhrfOptions comp_opts = raw_opts;
  comp_opts.compressed_keys = true;
  const auto raw = bfhrf_average_rf(queries, reference, raw_opts);
  const auto comp = bfhrf_average_rf(queries, reference, comp_opts);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_NEAR(comp[i], raw[i], 1e-9);
  }
}

// --- removal / tombstones / compaction --------------------------------------

TEST(CompressedHashTest, RemoveDecrementsAndErasesAtZero) {
  CompressedFrequencyHash h(100);
  const auto a = key(100, {1, 2});
  const auto b = key(100, {64, 65});
  h.add(a.words(), 3);
  h.add(b.words());
  h.remove(a.words(), 2);
  EXPECT_EQ(h.frequency(a.words()), 1u);
  EXPECT_EQ(h.tombstone_count(), 0u);
  h.remove(a.words());
  EXPECT_EQ(h.frequency(a.words()), 0u);
  EXPECT_EQ(h.unique_count(), 1u);
  EXPECT_EQ(h.total_count(), 1u);
  EXPECT_EQ(h.tombstone_count(), 1u);
  // The dead encoding lingers in the byte arena, but the slot is reusable.
  h.add(a.words());
  EXPECT_EQ(h.frequency(a.words()), 1u);
  EXPECT_EQ(h.tombstone_count(), 0u);
}

TEST(CompressedHashTest, RemoveNeverUnderflows) {
  CompressedFrequencyHash h(100);
  const auto a = key(100, {1, 2});
  h.add(a.words(), 2);
  EXPECT_THROW(h.remove(a.words(), 3), InvalidArgument);
  EXPECT_EQ(h.frequency(a.words()), 2u);
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_THROW(h.remove(key(100, {5}).words()), InvalidArgument);
  EXPECT_EQ(h.unique_count(), 1u);
}

TEST(CompressedHashTest, CompactionPreservesContents) {
  constexpr std::size_t kBits = 80;
  CompressedFrequencyHash h(kBits);
  std::vector<util::DynamicBitset> keys;
  for (int i = 0; i < 20; ++i) {
    for (int j = i + 1; j < 21; ++j) {
      keys.push_back(key(kBits, {i, j}));  // 210 distinct keys
    }
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    h.add(keys[i].words(), static_cast<std::uint32_t>(1 + i % 4));
  }
  // Fully erase every fourth key, staying under the auto-compaction ratio
  // so the explicit compact() below is the one reclaiming the arena.
  for (std::size_t i = 0; i < keys.size(); i += 4) {
    h.remove(keys[i].words(), static_cast<std::uint32_t>(1 + i % 4));
  }
  ASSERT_GT(h.tombstone_count(), 0u);

  const auto image = [&h] {
    std::vector<std::pair<std::string, std::uint32_t>> img;
    h.for_each_key([&](util::ConstWordSpan k, std::uint32_t freq) {
      img.emplace_back(
          std::string(reinterpret_cast<const char*>(k.data()),
                      k.size() * sizeof(std::uint64_t)),
          freq);
    });
    std::sort(img.begin(), img.end());
    return img;
  };
  const auto before = image();
  const std::uint64_t total = h.total_count();
  const std::size_t bytes_before = h.memory_bytes();
  h.compact();
  EXPECT_EQ(h.tombstone_count(), 0u);
  EXPECT_EQ(h.total_count(), total);
  EXPECT_LE(h.memory_bytes(), bytes_before);  // dead encodings dropped
  EXPECT_EQ(image(), before);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(h.frequency(keys[i].words()),
              i % 4 == 0 ? 0u : static_cast<std::uint32_t>(1 + i % 4));
  }
}

}  // namespace
}  // namespace bfhrf::core
