#include "core/variants.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bfhrf.hpp"
#include "core/sequential_rf.hpp"
#include "phylo/bipartition.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

BipartitionRef ref_of(const util::DynamicBitset& b) {
  return BipartitionRef{b.words(), b.size(), b.count()};
}

TEST(VariantsTest, ClassicKeepsEverythingAtUnitWeight) {
  const ClassicRf v;
  util::DynamicBitset b(20);
  b.set(3);
  b.set(4);
  EXPECT_TRUE(v.keep(ref_of(b)));
  EXPECT_DOUBLE_EQ(v.weight(ref_of(b)), 1.0);
  EXPECT_EQ(v.name(), "classic");
}

TEST(VariantsTest, SizeFilterUsesSmallerSide) {
  const SizeFilteredRf v(3, 5);
  util::DynamicBitset small(20);
  small.set(1);
  small.set(2);  // smaller side 2 < 3
  EXPECT_FALSE(v.keep(ref_of(small)));

  util::DynamicBitset mid(20);
  for (int i = 1; i <= 4; ++i) {
    mid.set(static_cast<std::size_t>(i));  // smaller side 4 in [3,5]
  }
  EXPECT_TRUE(v.keep(ref_of(mid)));

  // A side of 16 of 20 has smaller side 4 -> kept (complement symmetric).
  util::DynamicBitset big(20);
  big.flip_all();
  big.reset(0);
  big.reset(1);
  big.reset(2);
  big.reset(3);
  EXPECT_TRUE(v.keep(ref_of(big)));
}

TEST(VariantsTest, InformationWeightIncreasesWithBalance) {
  const InformationWeightedRf v(20);
  util::DynamicBitset skewed(20);
  skewed.set(1);
  skewed.set(2);
  util::DynamicBitset balanced(20);
  for (int i = 1; i <= 10; ++i) {
    balanced.set(static_cast<std::size_t>(i));
  }
  EXPECT_GT(v.weight(ref_of(balanced)), v.weight(ref_of(skewed)));
  EXPECT_GT(v.weight(ref_of(skewed)), 0.0);
}

TEST(VariantsTest, InformationWeightSymmetricInSides) {
  const InformationWeightedRf v(16);
  util::DynamicBitset side5(16);
  for (int i = 1; i <= 5; ++i) {
    side5.set(static_cast<std::size_t>(i));
  }
  util::DynamicBitset side11(16);  // the complementary side size, 16-5
  for (int i = 1; i <= 11; ++i) {
    side11.set(static_cast<std::size_t>(i));
  }
  EXPECT_DOUBLE_EQ(v.weight(ref_of(side5)), v.weight(ref_of(side11)));
}

TEST(VariantsTest, InformationWeightNeedsFourTaxa) {
  EXPECT_THROW(InformationWeightedRf(3), InvalidArgument);
}

TEST(VariantsTest, LambdaVariantDelegates) {
  const LambdaRf v(
      "custom", [](const BipartitionRef& b) { return b.ones >= 3; },
      [](const BipartitionRef& b) { return static_cast<double>(b.ones); });
  util::DynamicBitset two(10);
  two.set(1);
  two.set(2);
  util::DynamicBitset three(10);
  three.set(1);
  three.set(2);
  three.set(3);
  EXPECT_FALSE(v.keep(ref_of(two)));
  EXPECT_TRUE(v.keep(ref_of(three)));
  EXPECT_DOUBLE_EQ(v.weight(ref_of(three)), 3.0);
  EXPECT_EQ(v.name(), "custom");
}

TEST(VariantsTest, LambdaNullHooksDefault) {
  const LambdaRf v("noop", nullptr, nullptr);
  util::DynamicBitset b(10);
  b.set(2);
  EXPECT_TRUE(v.keep(ref_of(b)));
  EXPECT_DOUBLE_EQ(v.weight(ref_of(b)), 1.0);
}

// --- end-to-end: variants behave identically in BFHRF and SequentialRF ---

TEST(VariantsTest, SizeFilteredBfhrfMatchesSequential) {
  const auto taxa = TaxonSet::make_numbered(16);
  util::Rng rng(1);
  const auto reference = test::random_collection(taxa, 15, 4, rng);
  const auto queries = test::random_collection(taxa, 6, 5, rng);

  const SizeFilteredRf variant(2, 5);
  BfhrfOptions bopts;
  bopts.variant = &variant;
  const auto bfh = bfhrf_average_rf(queries, reference, bopts);

  SequentialRfOptions sopts;
  sopts.variant = &variant;
  const auto seq = sequential_avg_rf(queries, reference, sopts);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_NEAR(bfh[i], seq.avg_rf[i], 1e-9);
  }
}

TEST(VariantsTest, InformationWeightedBfhrfMatchesSequential) {
  const auto taxa = TaxonSet::make_numbered(14);
  util::Rng rng(2);
  const auto reference = test::random_collection(taxa, 12, 4, rng);
  const auto queries = test::random_collection(taxa, 5, 4, rng);

  const InformationWeightedRf variant(14);
  BfhrfOptions bopts;
  bopts.variant = &variant;
  bopts.threads = 2;
  const auto bfh = bfhrf_average_rf(queries, reference, bopts);

  SequentialRfOptions sopts;
  sopts.variant = &variant;
  const auto seq = sequential_avg_rf(queries, reference, sopts);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_NEAR(bfh[i], seq.avg_rf[i], 1e-6);
  }
}

TEST(VariantsTest, FilterEverythingGivesZero) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(3);
  const auto reference = test::random_collection(taxa, 8, 3, rng);
  const LambdaRf drop_all("drop-all",
                          [](const BipartitionRef&) { return false; },
                          nullptr);
  BfhrfOptions opts;
  opts.variant = &drop_all;
  const auto got = bfhrf_average_rf(reference, reference, opts);
  for (const double v : got) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(VariantsTest, UnitWeightVariantEqualsClassic) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(4);
  const auto reference = test::random_collection(taxa, 10, 3, rng);
  const auto queries = test::random_collection(taxa, 4, 3, rng);
  const LambdaRf unit("unit", nullptr, nullptr);
  BfhrfOptions opts;
  opts.variant = &unit;
  const auto with = bfhrf_average_rf(queries, reference, opts);
  const auto classic = bfhrf_average_rf(queries, reference);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(with[i], classic[i]);
  }
}

TEST(VariantsTest, WeightedSymmetricDifferenceSelfIsZero) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(5);
  const Tree t = sim::yule_tree(taxa, rng);
  const auto bips = phylo::extract_bipartitions(t);
  const InformationWeightedRf v(12);
  EXPECT_DOUBLE_EQ(weighted_symmetric_difference(bips, bips, v), 0.0);
}

TEST(VariantsTest, SizeFilterNameIsDescriptive) {
  const SizeFilteredRf v(2, 7);
  EXPECT_EQ(v.name(), "size-filtered[2,7]");
}

}  // namespace
}  // namespace bfhrf::core
