#include "core/sequential_rf.hpp"

#include <gtest/gtest.h>

#include "core/tree_source.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

TEST(SequentialRfTest, MatchesBruteForce) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(1);
  const auto reference = test::random_collection(taxa, 12, 3, rng);
  const auto queries = test::random_collection(taxa, 5, 4, rng);
  const auto result = sequential_avg_rf(queries, reference);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    double sum = 0;
    for (const auto& r : reference) {
      sum += static_cast<double>(rf_distance(queries[i], r));
    }
    EXPECT_DOUBLE_EQ(result.avg_rf[i],
                     sum / static_cast<double>(reference.size()));
  }
}

TEST(SequentialRfTest, EmptyReferenceThrows) {
  const auto taxa = TaxonSet::make_numbered(8);
  util::Rng rng(2);
  const auto queries = test::random_collection(taxa, 3, 2, rng);
  EXPECT_THROW((void)sequential_avg_rf(queries, {}), InvalidArgument);
}

TEST(SequentialRfTest, EmptyQueriesGiveEmptyResult) {
  const auto taxa = TaxonSet::make_numbered(8);
  util::Rng rng(3);
  const auto reference = test::random_collection(taxa, 5, 2, rng);
  const auto result = sequential_avg_rf({}, reference);
  EXPECT_TRUE(result.avg_rf.empty());
  EXPECT_GT(result.reference_memory_bytes, 0u);
}

TEST(SequentialRfTest, MemoryAccountingGrowsWithR) {
  // The DS memory column (Table I: O(n²r)) comes from this counter.
  const auto taxa = TaxonSet::make_numbered(16);
  util::Rng rng(4);
  const auto trees = test::random_collection(taxa, 40, 3, rng);
  const auto small = sequential_avg_rf(
      std::span<const Tree>(trees.data(), 1),
      std::span<const Tree>(trees.data(), 10));
  const auto large = sequential_avg_rf(
      std::span<const Tree>(trees.data(), 1),
      std::span<const Tree>(trees.data(), 40));
  EXPECT_NEAR(static_cast<double>(large.reference_memory_bytes) /
                  static_cast<double>(small.reference_memory_bytes),
              4.0, 0.5);
}

TEST(SequentialRfTest, DayEngineRejectsVariants) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(5);
  const auto trees = test::random_collection(taxa, 5, 2, rng);
  const SizeFilteredRf variant(2, 4);
  SequentialRfOptions opts;
  opts.engine = PairwiseEngine::Day;
  opts.variant = &variant;
  EXPECT_THROW((void)sequential_avg_rf(trees, trees, opts), InvalidArgument);
}

TEST(SequentialRfTest, NormalizationConventions) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(6);
  const auto trees = test::random_collection(taxa, 8, 4, rng);
  const auto raw = sequential_avg_rf(trees, trees);
  const auto half =
      sequential_avg_rf(trees, trees, {.norm = RfNorm::HalfSum});
  const auto scaled =
      sequential_avg_rf(trees, trees, {.norm = RfNorm::MaxScaled});
  for (std::size_t i = 0; i < trees.size(); ++i) {
    EXPECT_DOUBLE_EQ(half.avg_rf[i], raw.avg_rf[i] / 2.0);
    EXPECT_GE(scaled.avg_rf[i], 0.0);
    EXPECT_LE(scaled.avg_rf[i], 1.0);
  }
}

TEST(SequentialRfTest, MaxScaledWithDayEngineMatchesSetEngine) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(7);
  const auto trees = test::random_collection(taxa, 8, 4, rng);
  const auto set_engine =
      sequential_avg_rf(trees, trees, {.norm = RfNorm::MaxScaled});
  const auto day_engine = sequential_avg_rf(
      trees, trees,
      {.engine = PairwiseEngine::Day, .norm = RfNorm::MaxScaled});
  for (std::size_t i = 0; i < trees.size(); ++i) {
    EXPECT_NEAR(day_engine.avg_rf[i], set_engine.avg_rf[i], 1e-12);
  }
}

class BatchSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchSweep, StreamingQMatchesSpanAcrossThreadCounts) {
  const std::size_t threads = GetParam();
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(8);
  const auto reference = test::random_collection(taxa, 15, 3, rng);
  const auto queries = test::random_collection(taxa, 23, 4, rng);

  const auto direct = sequential_avg_rf(queries, reference);
  SpanTreeSource source(queries);
  const auto streamed =
      sequential_avg_rf(source, reference, {.threads = threads});
  ASSERT_EQ(streamed.avg_rf.size(), direct.avg_rf.size());
  for (std::size_t i = 0; i < direct.avg_rf.size(); ++i) {
    EXPECT_DOUBLE_EQ(streamed.avg_rf[i], direct.avg_rf[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BatchSweep, ::testing::Values(1, 2, 5, 9));

TEST(SequentialRfTest, WeightedSymmetricDifferenceAgainstManual) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D", "E", "F"});
  const Tree t1 = phylo::parse_newick("(((A,B),C),((D,E),F));", taxa);
  const Tree t2 = phylo::parse_newick("(((A,C),B),((D,F),E));", taxa);
  const auto b1 = phylo::extract_bipartitions(t1);
  const auto b2 = phylo::extract_bipartitions(t2);
  // Unit weights: symmetric difference size.
  const LambdaRf unit("unit", nullptr, nullptr);
  EXPECT_DOUBLE_EQ(
      weighted_symmetric_difference(b1, b2, unit),
      static_cast<double>(
          phylo::BipartitionSet::symmetric_difference_size(b1, b2)));
  // Constant weight 2 doubles it.
  const LambdaRf twice("twice", nullptr,
                       [](const BipartitionRef&) { return 2.0; });
  EXPECT_DOUBLE_EQ(
      weighted_symmetric_difference(b1, b2, twice),
      2.0 * static_cast<double>(
                phylo::BipartitionSet::symmetric_difference_size(b1, b2)));
}

}  // namespace
}  // namespace bfhrf::core
