#include "core/rf.hpp"

#include <gtest/gtest.h>

#include "phylo/newick.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::parse_newick;
using phylo::TaxonSet;
using phylo::TaxonSetPtr;
using phylo::Tree;

TEST(RfTest, PaperExampleEqualsTwo) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D"});
  const Tree t = parse_newick("((A,B),(C,D));", taxa);
  const Tree tp = parse_newick("((D,B),(C,A));", taxa);
  EXPECT_EQ(rf_distance(t, tp), 2u);
}

TEST(RfTest, IdenticalTreesAreAtDistanceZero) {
  const auto taxa = TaxonSet::make_numbered(30);
  util::Rng rng(1);
  const Tree t = sim::yule_tree(taxa, rng);
  EXPECT_EQ(rf_distance(t, t), 0u);
}

TEST(RfTest, DifferentTaxonSetsRejected) {
  TaxonSetPtr ta;
  TaxonSetPtr tb;
  const Tree a = test::tree_of("((A,B),(C,D));", ta);
  const Tree b = test::tree_of("((A,B),(C,D));", tb);
  EXPECT_THROW((void)rf_distance(a, b), InvalidArgument);
}

TEST(RfTest, MetricAxiomsOnRandomTrees) {
  const auto taxa = TaxonSet::make_numbered(24);
  util::Rng rng(2);
  for (int rep = 0; rep < 30; ++rep) {
    const Tree a = sim::uniform_tree(taxa, rng);
    const Tree b = sim::uniform_tree(taxa, rng);
    const Tree c = sim::uniform_tree(taxa, rng);
    const auto ab = rf_distance(a, b);
    const auto ba = rf_distance(b, a);
    const auto ac = rf_distance(a, c);
    const auto cb = rf_distance(c, b);
    EXPECT_EQ(ab, ba);                 // symmetry
    EXPECT_LE(ab, ac + cb);            // triangle inequality
    EXPECT_EQ(rf_distance(a, a), 0u);  // identity
  }
}

TEST(RfTest, MaxDistanceIsTwiceInternalEdges) {
  // Caterpillar vs "anti" trees frequently hit the maximum 2(n-3); at
  // minimum RF is bounded by it.
  const auto taxa = TaxonSet::make_numbered(16);
  util::Rng rng(3);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree a = sim::uniform_tree(taxa, rng);
    const Tree b = sim::uniform_tree(taxa, rng);
    EXPECT_LE(rf_distance(a, b), 2u * (16 - 3));
  }
}

TEST(RfTest, RfIsEvenForBinaryTreesOnSameTaxa) {
  // |B(a)| == |B(b)| == n-3 implies the symmetric difference is even.
  const auto taxa = TaxonSet::make_numbered(20);
  util::Rng rng(4);
  for (int rep = 0; rep < 30; ++rep) {
    const Tree a = sim::yule_tree(taxa, rng);
    const Tree b = sim::yule_tree(taxa, rng);
    EXPECT_EQ(rf_distance(a, b) % 2, 0u);
  }
}

TEST(RfTest, OneNniMoveCostsAtMostTwo) {
  const auto taxa = TaxonSet::make_numbered(25);
  util::Rng rng(5);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree a = sim::yule_tree(taxa, rng);
    Tree b = a;
    sim::random_nni(b, rng);
    EXPECT_LE(rf_distance(a, b), 2u);
  }
}

TEST(RfTest, TrivialSplitsDoNotChangeDistance) {
  const auto taxa = TaxonSet::make_numbered(18);
  util::Rng rng(6);
  const Tree a = sim::uniform_tree(taxa, rng);
  const Tree b = sim::uniform_tree(taxa, rng);
  const phylo::BipartitionOptions with{.include_trivial = true};
  const auto ba = phylo::extract_bipartitions(a, with);
  const auto bb = phylo::extract_bipartitions(b, with);
  EXPECT_EQ(phylo::BipartitionSet::symmetric_difference_size(ba, bb),
            rf_distance(a, b));
}

TEST(RfTest, ApplyNormConventions) {
  EXPECT_DOUBLE_EQ(apply_norm(10.0, 20.0, RfNorm::None), 10.0);
  EXPECT_DOUBLE_EQ(apply_norm(10.0, 20.0, RfNorm::HalfSum), 5.0);
  EXPECT_DOUBLE_EQ(apply_norm(10.0, 20.0, RfNorm::MaxScaled), 0.5);
  EXPECT_DOUBLE_EQ(apply_norm(10.0, 0.0, RfNorm::MaxScaled), 0.0);
}

TEST(RfTest, MaxRfAccessor) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(7);
  const Tree a = sim::yule_tree(taxa, rng);
  const Tree b = sim::yule_tree(taxa, rng);
  const auto ba = phylo::extract_bipartitions(a);
  const auto bb = phylo::extract_bipartitions(b);
  EXPECT_EQ(max_rf(ba, bb), (12u - 3) * 2);
  EXPECT_GE(max_rf(ba, bb), rf_distance(ba, bb));
}

TEST(RfTest, MultifurcatingVsBinary) {
  // A multifurcating tree's splits are a subset scenario: distance counts
  // resolved-but-absent splits once each.
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D", "E"});
  const Tree binary = parse_newick("((A,B),(C,D),E);", taxa);
  const Tree star = parse_newick("(A,B,C,D,E);", taxa);
  // binary has 2 splits, star has 0, nothing shared: RF = 2.
  EXPECT_EQ(rf_distance(binary, star), 2u);
}

TEST(RfTest, ContractionDistanceMatchesLostSplits) {
  const auto taxa = TaxonSet::make_numbered(40);
  util::Rng rng(8);
  const phylo::Tree full = sim::yule_tree(taxa, rng);
  const phylo::Tree collapsed = sim::multifurcating_tree(taxa, rng, 0.3);
  const auto bf = phylo::extract_bipartitions(full);
  const auto bc = phylo::extract_bipartitions(collapsed);
  // Symmetric difference equals |A|+|B| - 2|A∩B| always; spot check here.
  const auto common = phylo::BipartitionSet::intersection_size(bf, bc);
  EXPECT_EQ(rf_distance(full, collapsed), bf.size() + bc.size() - 2 * common);
}

}  // namespace
}  // namespace bfhrf::core
