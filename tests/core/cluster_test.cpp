#include "core/cluster.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/all_pairs.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

/// Two well-separated tree families over one namespace: family labels are
/// the ground truth the clustering must recover.
struct Mixture {
  std::vector<Tree> trees;
  std::vector<std::uint32_t> truth;
  RfMatrix matrix;
};

Mixture make_mixture(std::size_t per_family, std::size_t families,
                     std::uint64_t seed) {
  const auto taxa = TaxonSet::make_numbered(24);
  util::Rng rng(seed);
  Mixture mix;
  for (std::size_t f = 0; f < families; ++f) {
    const Tree base = sim::uniform_tree(taxa, rng);
    for (std::size_t i = 0; i < per_family; ++i) {
      Tree t = base;
      sim::perturb(t, rng, 1);  // tight families, far-apart centers
      mix.trees.push_back(std::move(t));
      mix.truth.push_back(static_cast<std::uint32_t>(f));
    }
  }
  mix.matrix = all_pairs_rf(mix.trees, {.threads = 2});
  return mix;
}

/// Fraction of pairs on which two labelings agree (Rand index).
double rand_index(const std::vector<std::uint32_t>& a,
                  const std::vector<std::uint32_t>& b) {
  std::size_t agree = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      ++total;
      agree += ((a[i] == a[j]) == (b[i] == b[j])) ? std::size_t{1}
                                                  : std::size_t{0};
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(agree) / static_cast<double>(total);
}

class LinkageSweep : public ::testing::TestWithParam<Linkage> {};

TEST_P(LinkageSweep, RecoversPlantedFamilies) {
  const Mixture mix = make_mixture(10, 3, 42);
  const Dendrogram dendro = hierarchical_cluster(mix.matrix, GetParam());
  EXPECT_EQ(dendro.merges.size(), mix.trees.size() - 1);
  const auto labels = dendro.cut(3);
  EXPECT_GE(rand_index(labels, mix.truth), 0.99);
}

TEST_P(LinkageSweep, CutProducesExactlyKClusters) {
  const Mixture mix = make_mixture(6, 2, 7);
  const Dendrogram dendro = hierarchical_cluster(mix.matrix, GetParam());
  for (std::size_t k = 1; k <= mix.trees.size(); ++k) {
    const auto labels = dendro.cut(k);
    std::set<std::uint32_t> distinct(labels.begin(), labels.end());
    EXPECT_EQ(distinct.size(), k) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Linkages, LinkageSweep,
                         ::testing::Values(Linkage::Single, Linkage::Complete,
                                           Linkage::Average),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case Linkage::Single:
                               return "single";
                             case Linkage::Complete:
                               return "complete";
                             case Linkage::Average:
                               return "average";
                           }
                           return "?";
                         });

TEST(ClusterTest, DendrogramHeightsMonotoneAfterSort) {
  const Mixture mix = make_mixture(8, 2, 11);
  const Dendrogram dendro =
      hierarchical_cluster(mix.matrix, Linkage::Average);
  // For a reducible linkage, every merge's height is >= both children's.
  std::vector<double> height_of(mix.trees.size() + dendro.merges.size(), 0.0);
  for (std::size_t m = 0; m < dendro.merges.size(); ++m) {
    const auto& merge = dendro.merges[m];
    EXPECT_GE(merge.height, height_of[merge.left] - 1e-9);
    EXPECT_GE(merge.height, height_of[merge.right] - 1e-9);
    height_of[mix.trees.size() + m] = merge.height;
  }
}

TEST(ClusterTest, CutBoundsChecked) {
  const Mixture mix = make_mixture(4, 2, 13);
  const Dendrogram dendro =
      hierarchical_cluster(mix.matrix, Linkage::Single);
  EXPECT_THROW((void)dendro.cut(0), InvalidArgument);
  EXPECT_THROW((void)dendro.cut(mix.trees.size() + 1), InvalidArgument);
}

TEST(ClusterTest, SingletonMatrix) {
  const RfMatrix m(1);
  const Dendrogram dendro = hierarchical_cluster(m, Linkage::Single);
  EXPECT_TRUE(dendro.merges.empty());
  EXPECT_EQ(dendro.cut(1), (std::vector<std::uint32_t>{0}));
}

TEST(ClusterTest, KMedoidsRecoversPlantedFamilies) {
  const Mixture mix = make_mixture(10, 3, 17);
  util::Rng rng(5);
  const KMedoidsResult result = k_medoids(mix.matrix, 3, rng);
  EXPECT_EQ(result.labels.size(), mix.trees.size());
  EXPECT_EQ(result.medoids.size(), 3u);
  EXPECT_GE(rand_index(result.labels, mix.truth), 0.95);
  // Medoids label themselves.
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(result.labels[result.medoids[c]], c);
  }
}

TEST(ClusterTest, KMedoidsCostNeverIncreasesWithMoreClusters) {
  const Mixture mix = make_mixture(8, 2, 19);
  util::Rng rng(6);
  double prev = std::numeric_limits<double>::infinity();
  for (const std::size_t k : {1u, 2u, 4u}) {
    util::Rng local = rng.fork();
    const auto result = k_medoids(mix.matrix, k, local);
    EXPECT_LE(result.total_cost, prev + 1e-9);
    prev = result.total_cost;
  }
}

TEST(ClusterTest, KMedoidsBoundsChecked) {
  const RfMatrix m(3);
  util::Rng rng(7);
  EXPECT_THROW((void)k_medoids(m, 0, rng), InvalidArgument);
  EXPECT_THROW((void)k_medoids(m, 4, rng), InvalidArgument);
}

}  // namespace
}  // namespace bfhrf::core
