#include "core/matrix_io.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/all_pairs.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace bfhrf::core {
namespace {

TEST(MatrixIoTest, PhylipShape) {
  RfMatrix m(3);
  m.set(0, 1, 2);
  m.set(0, 2, 4);
  m.set(1, 2, 6);
  const std::vector<std::string> names{"alpha", "beta", "gamma"};
  std::ostringstream out;
  write_phylip_matrix(out, m, names);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(util::trim(line), "3");
  std::getline(in, line);
  EXPECT_TRUE(util::starts_with(line, "alpha"));
  // Row 0: 0 2 4.
  const auto fields = util::split(std::string(util::trim(line)), '\t');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(util::split(fields[1], ' '),
            (std::vector<std::string>{"0", "2", "4"}));
}

TEST(MatrixIoTest, StrictNamesPadded) {
  RfMatrix m(2);
  m.set(0, 1, 1);
  const std::vector<std::string> names{"ab", "a_very_long_name"};
  std::ostringstream out;
  write_phylip_matrix(out, m, names, {.strict_names = true});
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 10), "ab        ");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 10), "a_very_lon");
}

TEST(MatrixIoTest, EmptyNamesDefaulted) {
  RfMatrix m(2);
  m.set(0, 1, 3);
  std::ostringstream out;
  write_phylip_matrix(out, m, {});
  EXPECT_NE(out.str().find("t0"), std::string::npos);
  EXPECT_NE(out.str().find("t1"), std::string::npos);
}

TEST(MatrixIoTest, NameCountMismatchThrows) {
  RfMatrix m(3);
  const std::vector<std::string> names{"only", "two"};
  std::ostringstream out;
  EXPECT_THROW(write_phylip_matrix(out, m, names), InvalidArgument);
}

TEST(MatrixIoTest, FileRoundTripParsesBack) {
  const auto taxa = phylo::TaxonSet::make_numbered(10);
  util::Rng rng(1);
  const auto trees = test::random_collection(taxa, 6, 3, rng);
  const RfMatrix m = all_pairs_rf(trees);
  std::vector<std::string> names;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    names.push_back("tree" + std::to_string(i));
  }
  const std::string path = ::testing::TempDir() + "/bfhrf_matrix.phy";
  write_phylip_matrix_file(path, m, names);

  std::ifstream in(path);
  std::size_t count = 0;
  in >> count;
  ASSERT_EQ(count, trees.size());
  for (std::size_t i = 0; i < count; ++i) {
    std::string name;
    in >> name;
    EXPECT_EQ(name, names[i]);
    for (std::size_t j = 0; j < count; ++j) {
      double v = -1;
      in >> v;
      EXPECT_DOUBLE_EQ(v, static_cast<double>(m.at(i, j)));
    }
  }
}

}  // namespace
}  // namespace bfhrf::core
