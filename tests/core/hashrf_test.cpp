#include "core/hashrf.hpp"

#include <gtest/gtest.h>

#include "core/bfhrf.hpp"
#include "core/rf.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

TEST(HashRfTest, ExactMatrixMatchesPairwiseRf) {
  const auto taxa = TaxonSet::make_numbered(14);
  util::Rng rng(1);
  const auto trees = test::random_collection(taxa, 12, 4, rng);
  const auto result = hash_rf(trees);
  for (std::size_t i = 0; i < trees.size(); ++i) {
    for (std::size_t j = 0; j < trees.size(); ++j) {
      EXPECT_EQ(result.matrix.at(i, j), rf_distance(trees[i], trees[j]))
          << i << "," << j;
    }
  }
}

TEST(HashRfTest, AvgRfMatchesBfhrfWhenQIsR) {
  const auto taxa = TaxonSet::make_numbered(16);
  util::Rng rng(2);
  const auto trees = test::random_collection(taxa, 20, 5, rng);
  const auto hashrf = hash_rf(trees);
  const auto bfh = bfhrf_average_rf(trees, trees);
  ASSERT_EQ(hashrf.avg_rf.size(), bfh.size());
  for (std::size_t i = 0; i < bfh.size(); ++i) {
    EXPECT_DOUBLE_EQ(hashrf.avg_rf[i], bfh[i]);
  }
}

TEST(HashRfTest, MatrixIsSymmetricWithZeroDiagonal) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(3);
  const auto trees = test::independent_collection(taxa, 8, rng);
  const auto result = hash_rf(trees);
  for (std::size_t i = 0; i < trees.size(); ++i) {
    EXPECT_EQ(result.matrix.at(i, i), 0u);
    for (std::size_t j = 0; j < trees.size(); ++j) {
      EXPECT_EQ(result.matrix.at(i, j), result.matrix.at(j, i));
    }
  }
}

TEST(HashRfTest, CompressedModeWithWideFingerprintUsuallyExact) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(4);
  const auto trees = test::random_collection(taxa, 15, 3, rng);
  const auto exact = hash_rf(trees);
  HashRfOptions opts;
  opts.mode = HashRfOptions::Mode::Compressed;
  opts.fingerprint_bits = 62;
  const auto compressed = hash_rf(trees, opts);
  for (std::size_t i = 0; i < trees.size(); ++i) {
    for (std::size_t j = 0; j < trees.size(); ++j) {
      EXPECT_EQ(compressed.matrix.at(i, j), exact.matrix.at(i, j));
    }
  }
}

TEST(HashRfTest, NarrowFingerprintCausesCollisions) {
  // With an 8-bit fingerprint and hundreds of distinct splits, collisions
  // merge bipartitions and RF is underestimated somewhere — the error mode
  // the paper calls out in HashRF-style compression (§III-C).
  const auto taxa = TaxonSet::make_numbered(32);
  util::Rng rng(5);
  const auto trees = test::independent_collection(taxa, 30, rng);
  const auto exact = hash_rf(trees);
  HashRfOptions opts;
  opts.mode = HashRfOptions::Mode::Compressed;
  opts.fingerprint_bits = 8;
  const auto lossy = hash_rf(trees, opts);

  std::size_t disagreements = 0;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    for (std::size_t j = i + 1; j < trees.size(); ++j) {
      disagreements += (lossy.matrix.at(i, j) != exact.matrix.at(i, j))
                           ? std::size_t{1}
                           : std::size_t{0};
    }
  }
  EXPECT_GT(disagreements, 0u);
  EXPECT_LT(lossy.unique_bipartitions, exact.unique_bipartitions);
}

TEST(HashRfTest, UniqueBipartitionCountMatchesFrequencyHash) {
  const auto taxa = TaxonSet::make_numbered(18);
  util::Rng rng(6);
  const auto trees = test::random_collection(taxa, 25, 4, rng);
  const auto result = hash_rf(trees);
  Bfhrf engine(taxa->size());
  engine.build(trees);
  EXPECT_EQ(result.unique_bipartitions, engine.stats().unique_bipartitions);
}

TEST(HashRfTest, MatrixMemoryGrowsQuadratically) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(7);
  const auto trees = test::random_collection(taxa, 40, 2, rng);
  const auto small =
      hash_rf(std::span<const Tree>(trees.data(), 10));
  const auto large =
      hash_rf(std::span<const Tree>(trees.data(), 40));
  // 4x trees -> ~16x matrix bytes.
  EXPECT_NEAR(static_cast<double>(large.matrix_memory_bytes) /
                  static_cast<double>(small.matrix_memory_bytes),
              16.0, 2.0);
}

TEST(HashRfTest, EmptyCollectionThrows) {
  EXPECT_THROW((void)hash_rf({}), InvalidArgument);
}

TEST(HashRfTest, MixedTaxonSetsRejected) {
  const auto ta = TaxonSet::make_numbered(8);
  const auto tb = TaxonSet::make_numbered(8);
  util::Rng rng(8);
  std::vector<Tree> trees;
  trees.push_back(sim::yule_tree(ta, rng));
  trees.push_back(sim::yule_tree(tb, rng));
  EXPECT_THROW((void)hash_rf(trees), InvalidArgument);
}

TEST(HashRfTest, SingleTreeCollection) {
  const auto taxa = TaxonSet::make_numbered(9);
  util::Rng rng(9);
  const std::vector<Tree> trees{sim::yule_tree(taxa, rng)};
  const auto result = hash_rf(trees);
  EXPECT_EQ(result.matrix.size(), 1u);
  EXPECT_DOUBLE_EQ(result.avg_rf[0], 0.0);
  EXPECT_EQ(result.unique_bipartitions, 9u - 3);
}

TEST(HashRfTest, SeedChangesNothingInExactMode) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(10);
  const auto trees = test::random_collection(taxa, 10, 3, rng);
  const auto a = hash_rf(trees, {.seed = 1});
  const auto b = hash_rf(trees, {.seed = 999});
  for (std::size_t i = 0; i < trees.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.avg_rf[i], b.avg_rf[i]);
  }
}

}  // namespace
}  // namespace bfhrf::core
