// Vector-ingest equivalence: the VectorSource family (spans, .p2v files,
// the Tree-decoding adapter) and the engine's direct-from-vector build and
// query paths must be BIT-IDENTICAL to the Tree ingest paths — the codec
// preserves every unrooted bipartition, and downstream of extraction both
// forms share one insertion/query tail. Also pins the size_hint contract:
// exact from a counted .p2v header, semicolon-estimated for Newick files.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/bfhrf.hpp"
#include "core/tree_source.hpp"
#include "phylo/bipartition.hpp"
#include "phylo/taxon_set.hpp"
#include "phylo/vector_codec.hpp"
#include "support/test_util.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;
using phylo::Tree;
using phylo::TreeVector;

/// Self-deleting scratch path under the system temp dir.
class TempFile {
 public:
  explicit TempFile(const char* tag) {
    path_ = (std::filesystem::temp_directory_path() /
             (std::string("bfhrf_vector_source_test_") + tag))
                .string();
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

struct Collections {
  phylo::TaxonSetPtr taxa;
  std::vector<Tree> reference;
  std::vector<Tree> queries;
  std::vector<TreeVector> reference_vectors;
  std::vector<TreeVector> query_vectors;
  std::size_t n_bits = 0;
};

Collections make_collections(std::size_t n_taxa, std::size_t r,
                             std::size_t q, std::uint64_t seed) {
  Collections c;
  c.taxa = TaxonSet::make_numbered(n_taxa);
  util::Rng rng(seed);
  c.reference = test::random_collection(c.taxa, r, 4, rng);
  c.queries = test::random_collection(c.taxa, q, 6, rng);
  c.n_bits = c.taxa->size();
  for (const Tree& t : c.reference) {
    c.reference_vectors.push_back(phylo::tree_to_vector(t));
  }
  for (const Tree& t : c.queries) {
    c.query_vectors.push_back(phylo::tree_to_vector(t));
  }
  return c;
}

/// Baseline: the in-memory Tree span path.
std::vector<double> tree_baseline(const Collections& c, BfhrfOptions opts) {
  Bfhrf engine(c.n_bits, opts);
  engine.build(c.reference);
  return engine.query(c.queries);
}

/// Direct vector path over in-memory rows (build and query).
std::vector<double> vector_run(const Collections& c, BfhrfOptions opts) {
  Bfhrf engine(c.n_bits, opts);
  SpanVectorSource ref(c.reference_vectors, c.n_bits);
  SpanVectorSource queries(c.query_vectors, c.n_bits);
  engine.build(ref);
  return engine.query(queries);
}

void expect_bitwise(const std::vector<double>& got,
                    const std::vector<double>& expect, const char* what) {
  ASSERT_EQ(got.size(), expect.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << what << " query " << i;
  }
}

TEST(VectorSourceTest, P2vFileHintIsExactAndResetRewinds) {
  const Collections c = make_collections(11, 17, 0, 21);
  TempFile file("hint.p2v");
  phylo::write_p2v_file(file.path(), c.reference);

  P2vFileSource source(file.path());
  EXPECT_EQ(source.n_taxa(), c.n_bits);
  ASSERT_TRUE(source.size_hint().has_value());
  EXPECT_EQ(*source.size_hint(), c.reference.size());  // exact, not estimated
  EXPECT_EQ(source.header().labels.size(), c.n_bits);

  for (int pass = 0; pass < 2; ++pass) {
    TreeVector row;
    std::size_t seen = 0;
    while (source.next(row)) {
      ASSERT_LT(seen, c.reference_vectors.size());
      EXPECT_EQ(row, c.reference_vectors[seen]) << "pass " << pass;
      ++seen;
    }
    EXPECT_EQ(seen, c.reference.size()) << "pass " << pass;
    source.reset();
  }
}

TEST(VectorSourceTest, P2vFileRejectsTruncation) {
  const Collections c = make_collections(7, 5, 0, 22);
  TempFile file("trunc.p2v");
  phylo::write_p2v_file(file.path(), c.reference);

  std::ifstream in(file.path(), std::ios::binary);
  std::vector<char> bytes{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
  in.close();
  bytes.resize(bytes.size() - 3);  // cut into the last record
  std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  P2vFileSource source(file.path());
  TreeVector row;
  EXPECT_THROW(
      {
        while (source.next(row)) {
        }
      },
      ParseError);
}

TEST(VectorSourceTest, FileTreeSourceCountsSemicolons) {
  TempFile file("trees.nwk");
  {
    std::ofstream out(file.path());
    out << "(t0,(t1,t2),t3);\n";
    out << "((t0,t1),(t2,t3));\n";
    out << "((t0,t3),(t1,t2));\n";
  }
  const auto taxa = TaxonSet::make_numbered(4);
  FileTreeSource source(file.path(), taxa);
  ASSERT_TRUE(source.size_hint().has_value());
  EXPECT_EQ(*source.size_hint(), 3u);
  Tree t;
  std::size_t seen = 0;
  while (source.next(t)) {
    ++seen;
  }
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(*source.size_hint(), 3u);  // cached hint survives the stream
}

TEST(VectorSourceTest, VectorTreeSourceDecodesEveryRow) {
  const Collections c = make_collections(13, 9, 0, 23);
  SpanVectorSource rows(c.reference_vectors, c.n_bits);
  VectorTreeSource adapter(rows, c.taxa);
  ASSERT_TRUE(adapter.size_hint().has_value());
  EXPECT_EQ(*adapter.size_hint(), c.reference.size());

  Tree t;
  std::size_t seen = 0;
  while (adapter.next(t)) {
    // Decoded trees carry the full unrooted split set of the original.
    const auto got = phylo::extract_bipartitions(t);
    const auto expect = phylo::extract_bipartitions(c.reference[seen]);
    ASSERT_EQ(got.size(), expect.size()) << "tree " << seen;
    for (std::size_t i = 0; i < got.size(); ++i) {
      const auto a = got[i];
      const auto b = expect[i];
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "tree " << seen << " split " << i;
    }
    ++seen;
  }
  EXPECT_EQ(seen, c.reference.size());

  SpanVectorSource narrow(c.reference_vectors, c.n_bits);
  EXPECT_THROW(VectorTreeSource(narrow, TaxonSet::make_numbered(c.n_bits + 1)),
               InvalidArgument);
}

TEST(VectorSourceTest, DirectVectorBuildAndQueryMatchTreePathBitwise) {
  const Collections c = make_collections(20, 40, 12, 24);
  const auto expect = tree_baseline(c, BfhrfOptions{.threads = 1});

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const StreamingMode mode :
         {StreamingMode::Pipelined, StreamingMode::BarrierBatch}) {
      const auto got = vector_run(
          c, BfhrfOptions{.threads = threads, .streaming = mode});
      expect_bitwise(got, expect, "direct vector path");
    }
  }
}

TEST(VectorSourceTest, ShardedAndCompressedVectorBuildsMatch) {
  const Collections c = make_collections(18, 30, 9, 25);
  const auto expect = tree_baseline(c, BfhrfOptions{.threads = 1});

  const auto sharded =
      vector_run(c, BfhrfOptions{.threads = 4, .shards = 4});
  expect_bitwise(sharded, expect, "sharded vector build");

  const auto compressed =
      vector_run(c, BfhrfOptions{.threads = 2, .compressed_keys = true});
  expect_bitwise(compressed, expect, "compressed vector build");
}

TEST(VectorSourceTest, WeightedVariantAgreesAcrossIngestForms) {
  // Variants force sorted arenas on both paths, so even floating-point
  // weight sums accumulate in the same order and stay bit-identical.
  const Collections c = make_collections(16, 20, 7, 26);
  const InformationWeightedRf variant(16);
  BfhrfOptions opts{.threads = 2};
  opts.variant = &variant;
  const auto expect = tree_baseline(c, opts);
  const auto got = vector_run(c, opts);
  expect_bitwise(got, expect, "weighted variant vector path");
}

TEST(VectorSourceTest, P2vCorpusFeedsTheEngine) {
  const Collections c = make_collections(15, 25, 8, 27);
  TempFile file("engine.p2v");
  phylo::write_p2v_file(file.path(), c.reference);

  const auto expect = tree_baseline(c, BfhrfOptions{.threads = 1});
  Bfhrf engine(c.n_bits, BfhrfOptions{.threads = 3});
  P2vFileSource source(file.path());
  engine.build(source);
  const auto got = engine.query(c.queries);
  expect_bitwise(got, expect, "p2v corpus build");

  // Width mismatch is rejected before any row is consumed.
  Bfhrf narrow(c.n_bits + 1, BfhrfOptions{.threads = 1});
  source.reset();
  EXPECT_THROW(narrow.build(source), InvalidArgument);
}

}  // namespace
}  // namespace bfhrf::core
