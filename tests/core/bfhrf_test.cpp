#include "core/bfhrf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/sequential_rf.hpp"
#include "core/tree_source.hpp"
#include "phylo/newick.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

/// Ground truth: brute-force average RF via pairwise distances.
std::vector<double> brute_force(std::span<const Tree> queries,
                                std::span<const Tree> reference) {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const auto& q : queries) {
    double sum = 0;
    for (const auto& r : reference) {
      sum += static_cast<double>(rf_distance(q, r));
    }
    out.push_back(sum / static_cast<double>(reference.size()));
  }
  return out;
}

TEST(BfhrfTest, MatchesBruteForceOnSmallCollection) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(1);
  const auto reference = test::random_collection(taxa, 20, 3, rng);
  const auto queries = test::random_collection(taxa, 7, 5, rng);

  const auto expect = brute_force(queries, reference);
  const auto got = bfhrf_average_rf(queries, reference);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], expect[i]) << "query " << i;
  }
}

TEST(BfhrfTest, QIsRMatchesBruteForce) {
  // The paper's experimental setting: Q == R.
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(2);
  const auto trees = test::random_collection(taxa, 15, 4, rng);
  const auto expect = brute_force(trees, trees);
  const auto got = bfhrf_average_rf(trees, trees);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], expect[i]);
  }
}

TEST(BfhrfTest, AgreesWithSequentialRf) {
  const auto taxa = TaxonSet::make_numbered(16);
  util::Rng rng(3);
  const auto reference = test::random_collection(taxa, 30, 4, rng);
  const auto queries = test::independent_collection(taxa, 9, rng);

  const auto seq = sequential_avg_rf(queries, reference);
  const auto bfh = bfhrf_average_rf(queries, reference);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(bfh[i], seq.avg_rf[i]);
  }
}

class BfhrfThreadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BfhrfThreadSweep, ThreadCountDoesNotChangeResults) {
  const std::size_t threads = GetParam();
  const auto taxa = TaxonSet::make_numbered(14);
  util::Rng rng(4);
  const auto reference = test::random_collection(taxa, 25, 3, rng);
  const auto queries = test::random_collection(taxa, 11, 6, rng);

  const auto base = bfhrf_average_rf(queries, reference, {.threads = 1});
  const auto par =
      bfhrf_average_rf(queries, reference, {.threads = threads});
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(par[i], base[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BfhrfThreadSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(BfhrfTest, StreamingBuildMatchesInMemory) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(5);
  const auto reference = test::random_collection(taxa, 40, 3, rng);
  const auto queries = test::random_collection(taxa, 6, 4, rng);

  Bfhrf in_memory(taxa->size());
  in_memory.build(reference);

  Bfhrf streaming(taxa->size(), {.threads = 2, .batch_size = 7});
  SpanTreeSource source(reference);
  streaming.build(source);

  EXPECT_EQ(streaming.stats().reference_trees,
            in_memory.stats().reference_trees);
  EXPECT_EQ(streaming.stats().unique_bipartitions,
            in_memory.stats().unique_bipartitions);
  EXPECT_EQ(streaming.stats().total_bipartitions,
            in_memory.stats().total_bipartitions);

  const auto a = in_memory.query(queries);
  const auto b = streaming.query(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(BfhrfTest, StreamingQueryPreservesOrder) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(6);
  const auto reference = test::random_collection(taxa, 20, 3, rng);
  const auto queries = test::random_collection(taxa, 33, 5, rng);

  Bfhrf engine(taxa->size(), {.threads = 3, .batch_size = 4});
  engine.build(reference);
  const auto direct = engine.query(queries);
  SpanTreeSource source(queries);
  const auto streamed = engine.query(source);
  ASSERT_EQ(streamed.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(streamed[i], direct[i]);
  }
}

TEST(BfhrfTest, QueryOneMatchesBatch) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(7);
  const auto reference = test::random_collection(taxa, 12, 3, rng);
  const auto queries = test::random_collection(taxa, 5, 3, rng);
  Bfhrf engine(taxa->size());
  engine.build(reference);
  const auto batch = engine.query(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(engine.query_one(queries[i]), batch[i]);
  }
}

TEST(BfhrfTest, IdenticalCollectionsGiveZero) {
  const auto taxa = TaxonSet::make_numbered(15);
  util::Rng rng(8);
  const Tree one = sim::yule_tree(taxa, rng);
  const std::vector<Tree> reference(10, one);
  Bfhrf engine(taxa->size());
  engine.build(reference);
  EXPECT_DOUBLE_EQ(engine.query_one(one), 0.0);
}

TEST(BfhrfTest, DisjointSplitsGiveMaximum) {
  // Caterpillar vs its "reversed-pairing" tree share no non-trivial splits
  // in this fixed example; average RF equals 2(n-3).
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D", "E", "F"});
  const Tree a = phylo::parse_newick("(((((A,B),C),D),E),F);", taxa);
  const Tree b = phylo::parse_newick("(((((A,F),C),E),B),D);", taxa);
  const std::vector<Tree> reference(4, b);
  Bfhrf engine(taxa->size());
  engine.build(reference);
  const double d = engine.query_one(a);
  EXPECT_DOUBLE_EQ(d, static_cast<double>(rf_distance(a, b)));
}

TEST(BfhrfTest, StatsReflectCollection) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(9);
  const auto reference = test::random_collection(taxa, 25, 2, rng);
  Bfhrf engine(taxa->size());
  engine.build(reference);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.reference_trees, 25u);
  // Binary trees on 12 taxa: 9 splits each.
  EXPECT_EQ(stats.total_bipartitions, 25u * 9);
  EXPECT_GE(stats.unique_bipartitions, 9u);
  EXPECT_LE(stats.unique_bipartitions, 25u * 9);
  EXPECT_GT(stats.hash_memory_bytes, 0u);
}

TEST(BfhrfTest, QueryBeforeBuildThrows) {
  const auto taxa = TaxonSet::make_numbered(8);
  util::Rng rng(10);
  const Tree t = sim::yule_tree(taxa, rng);
  const Bfhrf engine(taxa->size());
  EXPECT_THROW((void)engine.query_one(t), InvalidArgument);
}

TEST(BfhrfTest, UniverseWidthMismatchThrows) {
  const auto taxa = TaxonSet::make_numbered(8);
  util::Rng rng(11);
  const Tree t = sim::yule_tree(taxa, rng);
  Bfhrf engine(9);  // wrong width
  const std::vector<Tree> ref{t};
  EXPECT_THROW(engine.build(ref), InvalidArgument);
}

TEST(BfhrfTest, EmptyReferenceThrows) {
  EXPECT_THROW((void)bfhrf_average_rf({}, {}), InvalidArgument);
}

TEST(BfhrfTest, HalfSumNormHalvesValues) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(12);
  const auto reference = test::random_collection(taxa, 10, 4, rng);
  const auto queries = test::random_collection(taxa, 4, 4, rng);
  const auto raw = bfhrf_average_rf(queries, reference);
  const auto half =
      bfhrf_average_rf(queries, reference, {.norm = RfNorm::HalfSum});
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_DOUBLE_EQ(half[i], raw[i] / 2.0);
  }
}

TEST(BfhrfTest, MaxScaledNormInUnitRange) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(13);
  const auto reference = test::independent_collection(taxa, 10, rng);
  const auto queries = test::independent_collection(taxa, 5, rng);
  const auto scaled =
      bfhrf_average_rf(queries, reference, {.norm = RfNorm::MaxScaled});
  for (const double v : scaled) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(BfhrfTest, MultifurcatingTreesSupported) {
  const auto taxa = TaxonSet::make_numbered(14);
  util::Rng rng(14);
  std::vector<Tree> reference;
  for (int i = 0; i < 12; ++i) {
    reference.push_back(sim::multifurcating_tree(taxa, rng, 0.3));
  }
  std::vector<Tree> queries;
  for (int i = 0; i < 5; ++i) {
    queries.push_back(sim::multifurcating_tree(taxa, rng, 0.5));
  }
  const auto expect = brute_force(queries, reference);
  const auto got = bfhrf_average_rf(queries, reference, {.threads = 2});
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], expect[i]);
  }
}

TEST(BfhrfTest, IncludeTrivialChangesNothingForFixedTaxa) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(15);
  const auto reference = test::random_collection(taxa, 8, 3, rng);
  const auto queries = test::random_collection(taxa, 4, 3, rng);
  const auto without = bfhrf_average_rf(queries, reference);
  const auto with =
      bfhrf_average_rf(queries, reference, {.include_trivial = true});
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_DOUBLE_EQ(with[i], without[i]);
  }
}

TEST(BfhrfTest, IncrementalBuildAccumulates) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(16);
  const auto all = test::random_collection(taxa, 20, 3, rng);
  const std::span<const Tree> first(all.data(), 12);
  const std::span<const Tree> second(all.data() + 12, 8);

  Bfhrf split_build(taxa->size());
  split_build.build(first);
  split_build.build(second);

  Bfhrf one_build(taxa->size());
  one_build.build(all);

  const auto queries = test::random_collection(taxa, 5, 4, rng);
  const auto a = split_build.query(queries);
  const auto b = one_build.query(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

}  // namespace
}  // namespace bfhrf::core
