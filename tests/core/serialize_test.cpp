#include "core/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

TEST(SerializeTest, RoundTripPreservesQueries) {
  const auto taxa = TaxonSet::make_numbered(18);
  util::Rng rng(1);
  const auto reference = test::random_collection(taxa, 30, 4, rng);
  const auto queries = test::random_collection(taxa, 10, 6, rng);

  Bfhrf original(taxa->size(), {.threads = 2});
  original.build(reference);
  const auto want = original.query(queries);

  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_bfhrf(original, buffer);
  const Bfhrf restored = load_bfhrf(buffer, {.threads = 3});

  EXPECT_EQ(restored.stats().reference_trees,
            original.stats().reference_trees);
  EXPECT_EQ(restored.stats().unique_bipartitions,
            original.stats().unique_bipartitions);
  EXPECT_EQ(restored.stats().total_bipartitions,
            original.stats().total_bipartitions);

  const auto got = restored.query(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], want[i]);
  }
}

TEST(SerializeTest, RoundTripCompressedStore) {
  const auto taxa = TaxonSet::make_numbered(40);
  util::Rng rng(2);
  const auto reference = test::random_collection(taxa, 20, 4, rng);
  const auto queries = test::random_collection(taxa, 6, 5, rng);

  Bfhrf original(taxa->size(), {.compressed_keys = true});
  original.build(reference);
  const auto want = original.query(queries);

  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_bfhrf(original, buffer);
  const Bfhrf restored = load_bfhrf(buffer);
  // The kind travels with the file.
  EXPECT_TRUE(restored.options().compressed_keys);
  const auto got = restored.query(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], want[i]);
  }
}

TEST(SerializeTest, IncludeTrivialConventionTravels) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(3);
  const auto reference = test::random_collection(taxa, 10, 3, rng);
  Bfhrf original(taxa->size(), {.include_trivial = true});
  original.build(reference);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_bfhrf(original, buffer);
  const Bfhrf restored = load_bfhrf(buffer);
  EXPECT_TRUE(restored.options().include_trivial);
  EXPECT_EQ(restored.stats().total_bipartitions,
            original.stats().total_bipartitions);
}

TEST(SerializeTest, FileRoundTrip) {
  const auto taxa = TaxonSet::make_numbered(14);
  util::Rng rng(4);
  const auto reference = test::random_collection(taxa, 15, 3, rng);
  Bfhrf original(taxa->size());
  original.build(reference);

  const std::string path = ::testing::TempDir() + "/bfhrf_index.bfh";
  save_bfhrf_file(original, path);
  const Bfhrf restored = load_bfhrf_file(path, {.threads = 2});
  const Tree probe = sim::uniform_tree(taxa, rng);
  EXPECT_DOUBLE_EQ(restored.query_one(probe), original.query_one(probe));
}

TEST(SerializeTest, UnbuiltEngineRejected) {
  const Bfhrf empty(10);
  std::ostringstream out(std::ios::binary);
  EXPECT_THROW(save_bfhrf(empty, out), InvalidArgument);
}

TEST(SerializeTest, CorruptStreamsRejected) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(5);
  const auto reference = test::random_collection(taxa, 8, 3, rng);
  Bfhrf original(taxa->size());
  original.build(reference);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_bfhrf(original, buffer);
  const std::string blob = buffer.str();

  {  // bad magic
    std::istringstream bad("XXXX" + blob.substr(4), std::ios::binary);
    EXPECT_THROW((void)load_bfhrf(bad), ParseError);
  }
  {  // truncated at every prefix length (never crashes, always throws)
    for (const std::size_t cut :
         {std::size_t{0}, std::size_t{3}, std::size_t{10}, std::size_t{30},
          blob.size() - 5}) {
      std::istringstream truncated(blob.substr(0, cut), std::ios::binary);
      EXPECT_THROW((void)load_bfhrf(truncated), ParseError) << cut;
    }
  }
  {  // flipped count byte breaks the total check
    std::string mutated = blob;
    mutated[mutated.size() - 9] =
        static_cast<char>(mutated[mutated.size() - 9] + 1);
    std::istringstream bad(mutated, std::ios::binary);
    EXPECT_THROW((void)load_bfhrf(bad), ParseError);
  }
  {  // missing file
    EXPECT_THROW((void)load_bfhrf_file("/nonexistent/x.bfh"), Error);
  }
}

TEST(SerializeTest, IncrementalBuildAfterLoad) {
  // A loaded index can keep growing (build-once, extend-later).
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(6);
  const auto first = test::random_collection(taxa, 10, 3, rng);
  const auto second = test::random_collection(taxa, 7, 3, rng);
  const auto queries = test::random_collection(taxa, 4, 4, rng);

  Bfhrf full(taxa->size());
  full.build(first);
  full.build(second);
  const auto want = full.query(queries);

  Bfhrf part(taxa->size());
  part.build(first);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_bfhrf(part, buffer);
  Bfhrf resumed = load_bfhrf(buffer);
  resumed.build(second);
  const auto got = resumed.query(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], want[i]);
  }
}

}  // namespace
}  // namespace bfhrf::core
