#include "core/sharded_hash.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/bfhrf.hpp"
#include "core/frequency_hash.hpp"
#include "core/tree_source.hpp"
#include "support/test_util.hpp"
#include "util/bitset.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;

TEST(ShardOfTest, ZeroBitsRoutesEverythingToShardZero) {
  EXPECT_EQ(shard_of(0, 0), 0u);
  EXPECT_EQ(shard_of(~std::uint64_t{0}, 0), 0u);
}

TEST(ShardOfTest, TopBitsSelectTheShard) {
  // With b bits, the shard is the top b bits of the fingerprint —
  // disjoint from the low bits the in-shard probe consumes.
  EXPECT_EQ(shard_of(std::uint64_t{1} << 63, 1), 1u);
  EXPECT_EQ(shard_of(std::uint64_t{1} << 62, 1), 0u);
  EXPECT_EQ(shard_of(std::uint64_t{0xF} << 60, 4), 15u);
  EXPECT_EQ(shard_of(std::uint64_t{0x5} << 60, 4), 5u);
}

TEST(ShardedHashTest, RoundsShardCountToPowerOfTwo) {
  const ShardedFrequencyHash h3(64, 3);
  EXPECT_EQ(h3.shard_count(), 4u);
  EXPECT_EQ(h3.shard_bits(), 2u);
  const ShardedFrequencyHash h1(64, 0);
  EXPECT_EQ(h1.shard_count(), 1u);
  EXPECT_EQ(h1.shard_bits(), 0u);
}

TEST(ShardedHashTest, MatchesSingleTableOnRandomKeys) {
  const std::size_t n_bits = 100;
  const std::size_t wp = util::words_for_bits(n_bits);
  util::Rng rng(7);
  std::vector<std::uint64_t> keys;
  const std::size_t count = 500;
  for (std::size_t i = 0; i < count * wp; ++i) {
    keys.push_back(rng());
  }

  FrequencyHash single(n_bits);
  ShardedFrequencyHash sharded(n_bits, 8);
  // Insert every key twice through different entry points so routing is
  // exercised on both the scalar and batched paths.
  for (std::size_t i = 0; i < count; ++i) {
    single.add({keys.data() + i * wp, wp}, 1);
    sharded.add_weighted({keys.data() + i * wp, wp}, 1, 1.0);
  }
  single.add_many(keys.data(), count, nullptr);
  sharded.add_many(keys.data(), count, nullptr);

  EXPECT_EQ(sharded.unique_count(), single.unique_count());
  EXPECT_EQ(sharded.total_count(), single.total_count());
  EXPECT_DOUBLE_EQ(sharded.total_weight(), single.total_weight());
  for (std::size_t i = 0; i < count; ++i) {
    const util::ConstWordSpan key{keys.data() + i * wp, wp};
    EXPECT_EQ(sharded.frequency(key), single.frequency(key));
  }
  // Shard totals must partition the global totals.
  std::size_t unique_sum = 0;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    unique_sum += sharded.shard(s).unique_count();
  }
  EXPECT_EQ(unique_sum, sharded.unique_count());
  EXPECT_GE(sharded.shard_skew(), 1.0);
}

TEST(BfhIndexViewTest, RoutedLookupMatchesPerShardLookup) {
  const std::size_t n_bits = 72;
  const std::size_t wp = util::words_for_bits(n_bits);
  util::Rng rng(11);
  std::vector<std::uint64_t> keys;
  const std::size_t count = 300;
  for (std::size_t i = 0; i < count * wp; ++i) {
    keys.push_back(rng());
  }
  ShardedFrequencyHash sharded(n_bits, 4);
  sharded.add_many(keys.data(), count, nullptr);

  const BfhIndexView view(sharded);
  ASSERT_TRUE(view.valid());
  EXPECT_EQ(view.shard_count(), 4u);
  std::vector<std::uint32_t> freqs(count);
  view.frequency_many(keys.data(), count, freqs.data());
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(freqs[i], sharded.frequency({keys.data() + i * wp, wp}));
  }
  // Missing keys resolve to zero through the routed pipeline too.
  std::vector<std::uint64_t> missing(8 * wp);
  for (auto& w : missing) {
    w = rng() | (std::uint64_t{1} << 63);
  }
  std::vector<std::uint32_t> zero(8);
  view.frequency_many(missing.data(), 8, zero.data());
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(zero[i], sharded.frequency({missing.data() + i * wp, wp}));
  }
}

TEST(ShardedEngineTest, ShardedBuildMatchesSingleTableEngine) {
  const auto taxa = TaxonSet::make_numbered(30);
  util::Rng rng(21);
  const auto reference = test::random_collection(taxa, 40, 4, rng);
  const auto queries = test::random_collection(taxa, 12, 6, rng);

  Bfhrf single(taxa->size(), {.threads = 1, .shards = 1});
  single.build(reference);
  const auto want = single.query(queries);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Bfhrf sharded(taxa->size(), {.threads = threads, .shards = 8});
    sharded.build(reference);
    ASSERT_NE(dynamic_cast<const ShardedFrequencyHash*>(&sharded.store()),
              nullptr);
    EXPECT_EQ(sharded.stats().unique_bipartitions,
              single.stats().unique_bipartitions);
    EXPECT_EQ(sharded.stats().total_bipartitions,
              single.stats().total_bipartitions);
    const auto got = sharded.query(queries);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "threads=" << threads << " query " << i;
    }
  }
}

TEST(ShardedEngineTest, PinnedStreamingShardedBuildMatches) {
  const auto taxa = TaxonSet::make_numbered(24);
  util::Rng rng(31);
  const auto reference = test::random_collection(taxa, 30, 4, rng);
  const auto queries = test::random_collection(taxa, 8, 5, rng);

  Bfhrf single(taxa->size(), {.threads = 1, .shards = 1});
  single.build(reference);
  const auto want = single.query(queries);

  Bfhrf sharded(taxa->size(),
                {.threads = 4, .shards = 4, .pin_build_threads = true});
  SpanTreeSource source(reference);
  sharded.build(source);
  const auto got = sharded.query(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i], want[i]);
  }
}

TEST(ShardedEngineTest, ShardsRejectVariantAndCompressedStores) {
  EXPECT_THROW(Bfhrf(16, {.compressed_keys = true, .shards = 4}),
               InvalidArgument);
  const RfVariant& v = classic_rf();
  EXPECT_THROW(Bfhrf(16, {.variant = &v, .shards = 4}), InvalidArgument);
  // shards <= 1 with either is fine (explicitly unsharded).
  EXPECT_NO_THROW(Bfhrf(16, {.compressed_keys = true, .shards = 1}));
}

TEST(ShardedEngineTest, MergeFromReplaysAcrossShardShapes) {
  const std::size_t n_bits = 48;
  const std::size_t wp = util::words_for_bits(n_bits);
  util::Rng rng(41);
  std::vector<std::uint64_t> keys;
  const std::size_t count = 200;
  for (std::size_t i = 0; i < count * wp; ++i) {
    keys.push_back(rng());
  }
  ShardedFrequencyHash a(n_bits, 2);
  ShardedFrequencyHash b(n_bits, 8);  // different shape: replay merge
  a.add_many(keys.data(), count / 2, nullptr);
  b.add_many(keys.data() + (count / 2) * wp, count - count / 2, nullptr);
  a.merge_from(b);

  FrequencyHash all(n_bits);
  all.add_many(keys.data(), count, nullptr);
  EXPECT_EQ(a.unique_count(), all.unique_count());
  EXPECT_EQ(a.total_count(), all.total_count());
  for (std::size_t i = 0; i < count; ++i) {
    const util::ConstWordSpan key{keys.data() + i * wp, wp};
    EXPECT_EQ(a.frequency(key), all.frequency(key));
  }
}

}  // namespace
}  // namespace bfhrf::core
