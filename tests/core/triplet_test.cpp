#include "core/triplet.hpp"

#include <gtest/gtest.h>

#include "core/rf.hpp"
#include "phylo/newick.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

TEST(TripletTest, IdenticalTreesAtZero) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(1);
  const Tree t = sim::yule_tree(taxa, rng);
  const auto d = triplet_distance(t, t);
  EXPECT_EQ(d.different, 0u);
  EXPECT_EQ(d.total, 12u * 11 * 10 / 6);
}

TEST(TripletTest, HandWorkedFourTaxa) {
  // Rooted trees on {A,B,C,D}: ((A,B),(C,D)) vs ((A,C),(B,D)).
  // Triplets: ABC, ABD, ACD, BCD — every one resolves differently
  // (e.g. ABC: ab|c vs ac|b).
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D"});
  const Tree t1 = phylo::parse_newick("((A,B),(C,D));", taxa);
  const Tree t2 = phylo::parse_newick("((A,C),(B,D));", taxa);
  const auto d = triplet_distance(t1, t2);
  EXPECT_EQ(d.total, 4u);
  EXPECT_EQ(d.different, 4u);
  EXPECT_DOUBLE_EQ(d.normalized(), 1.0);
}

TEST(TripletTest, SingleCherrySwapCountsAffectedTriplets) {
  // ((A,B),C,D... caterpillar vs swap of one cherry leaf with an outsider.
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D", "E"});
  const Tree t1 = phylo::parse_newick("((((A,B),C),D),E);", taxa);
  const Tree t2 = phylo::parse_newick("((((A,C),B),D),E);", taxa);
  const auto d = triplet_distance(t1, t2);
  // Only triplets containing at least two of {A,B,C} can change; the
  // single changed resolution is ABC (ab|c vs ac|b) plus none other:
  // ABD: in both trees lca(A,B) vs ... t1: ab|d; t2: lca(A,B) is the
  // 3-clade root, lca(A,D)=lca(B,D) deeper root -> still ab|d. Same for
  // ABE, ACD, ACE (ac|d / ac|e in both? t1: lca(A,C) = 3-clade, deeper
  // than lca with D/E -> ac|d; t2: ac|d too). The distance is exactly 1.
  EXPECT_EQ(d.different, 1u);
}

TEST(TripletTest, StarTreeIsAllUnresolvedVsResolved) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D", "E"});
  const Tree star = phylo::parse_newick("(A,B,C,D,E);", taxa);
  const Tree resolved = phylo::parse_newick("((((A,B),C),D),E);", taxa);
  const auto self = triplet_distance(star, star);
  EXPECT_EQ(self.different, 0u);
  const auto d = triplet_distance(star, resolved);
  // Every triplet is unresolved in the star, resolved in the caterpillar.
  EXPECT_EQ(d.different, d.total);
}

TEST(TripletTest, SymmetryAndBounds) {
  const auto taxa = TaxonSet::make_numbered(15);
  util::Rng rng(2);
  for (int rep = 0; rep < 15; ++rep) {
    const Tree a = sim::uniform_tree(taxa, rng);
    const Tree b = sim::uniform_tree(taxa, rng);
    const auto ab = triplet_distance(a, b);
    const auto ba = triplet_distance(b, a);
    EXPECT_EQ(ab.different, ba.different);
    EXPECT_LE(ab.different, ab.total);
  }
}

TEST(TripletTest, CorrelatesWithRf) {
  // Across a perturbation gradient, triplet distance and RF must rank the
  // same way (both are topology divergence measures).
  const auto taxa = TaxonSet::make_numbered(20);
  util::Rng rng(3);
  const Tree base = sim::yule_tree(taxa, rng);
  Tree near = base;
  sim::perturb(near, rng, 1);
  Tree far = base;
  sim::perturb(far, rng, 25);
  const auto d_near = triplet_distance(base, near);
  const auto d_far = triplet_distance(base, far);
  EXPECT_LE(d_near.different, d_far.different);
  EXPECT_LE(rf_distance(base, near), rf_distance(base, far));
}

TEST(TripletTest, MismatchedInputsThrow) {
  const auto ta = TaxonSet::make_numbered(8);
  const auto tb = TaxonSet::make_numbered(8);
  util::Rng rng(4);
  const Tree a = sim::yule_tree(ta, rng);
  const Tree b = sim::yule_tree(tb, rng);
  EXPECT_THROW((void)triplet_distance(a, b), InvalidArgument);

  // Same universe, different leaf subsets.
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D", "E"});
  const Tree four = phylo::parse_newick("((A,B),(C,D));", taxa);
  const Tree five = phylo::parse_newick("((A,B),(C,(D,E)));", taxa);
  EXPECT_THROW((void)triplet_distance(four, five), InvalidArgument);
}

TEST(TripletTest, LcaDepthTableBasics) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D"});
  const Tree t = phylo::parse_newick("((A,B),(C,D));", taxa);
  const LcaDepthTable table(t);
  // Root depth 0; cherries at depth 1.
  EXPECT_EQ(table.lca_depth(0, 1), 1);  // A,B
  EXPECT_EQ(table.lca_depth(2, 3), 1);  // C,D
  EXPECT_EQ(table.lca_depth(0, 2), 0);  // across the root
  EXPECT_EQ(table.lca_depth(1, 3), 0);
  EXPECT_EQ(table.lca_depth(0, 2), table.lca_depth(2, 0));
}

}  // namespace
}  // namespace bfhrf::core
