// DynamicBfhIndex unit tests (core/bfhrf.hpp): id lifecycle, delta
// accounting, and equivalence of the incrementally-maintained index with a
// from-scratch Bfhrf build. The randomized long-run interleavings live in
// the qc dynamic oracle (src/qc/dynamic.cpp); this suite pins the API
// contracts with small deterministic cases.
#include <gtest/gtest.h>

#include <vector>

#include "core/bfhrf.hpp"
#include "core/frequency_hash.hpp"
#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"
#include "sim/generators.hpp"
#include "sim/moves.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::Tree;

std::vector<Tree> make_trees(const phylo::TaxonSetPtr& taxa, std::size_t r,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Tree> trees;
  trees.reserve(r);
  for (std::size_t i = 0; i < r; ++i) {
    trees.push_back(i % 2 == 0 ? sim::yule_tree(taxa, rng)
                               : sim::uniform_tree(taxa, rng));
  }
  return trees;
}

/// avgRF of `probes` against `reference` through a from-scratch build.
std::vector<double> rebuilt_answers(const phylo::TaxonSetPtr& taxa,
                                    std::span<const Tree> reference,
                                    std::span<const Tree> probes) {
  Bfhrf fresh(taxa->size());
  fresh.build(reference);
  return fresh.query(probes);
}

TEST(DynamicBfhTest, AddedTreesMatchFreshBuild) {
  const auto taxa = phylo::TaxonSet::make_numbered(12);
  const auto trees = make_trees(taxa, 6, 0xA11);
  const auto probes = make_trees(taxa, 3, 0xB22);

  DynamicBfhIndex index(taxa->size());
  const auto ids = index.add_trees(trees);
  ASSERT_EQ(ids.size(), trees.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], i);  // ids are dense and stable
    EXPECT_TRUE(index.is_live(ids[i]));
  }
  EXPECT_EQ(index.tree_count(), trees.size());
  EXPECT_EQ(index.query(probes), rebuilt_answers(taxa, trees, probes));
}

TEST(DynamicBfhTest, RemovalMatchesFreshBuildOfSurvivors) {
  const auto taxa = phylo::TaxonSet::make_numbered(10);
  auto trees = make_trees(taxa, 5, 0xC33);
  const auto probes = make_trees(taxa, 3, 0xD44);

  DynamicBfhIndex index(taxa->size());
  const auto ids = index.add_trees(trees);
  index.remove_tree(ids[1]);
  index.remove_trees(std::vector<std::size_t>{ids[3]});

  EXPECT_FALSE(index.is_live(ids[1]));
  EXPECT_FALSE(index.is_live(ids[3]));
  EXPECT_EQ(index.tree_count(), 3u);

  const std::vector<Tree> survivors = {trees[0], trees[2], trees[4]};
  EXPECT_EQ(index.query(probes), rebuilt_answers(taxa, survivors, probes));
}

TEST(DynamicBfhTest, IdsStayDenseAfterRemoval) {
  const auto taxa = phylo::TaxonSet::make_numbered(8);
  const auto trees = make_trees(taxa, 3, 0xE55);
  DynamicBfhIndex index(taxa->size());
  const auto ids = index.add_trees(trees);
  index.remove_tree(ids[0]);
  // Dead ids are never reissued: the next add gets a fresh one.
  EXPECT_EQ(index.add_tree(trees[0]), trees.size());
  EXPECT_TRUE(index.is_live(trees.size()));
  EXPECT_FALSE(index.is_live(ids[0]));
}

TEST(DynamicBfhTest, UnknownOrDeadIdsThrow) {
  const auto taxa = phylo::TaxonSet::make_numbered(8);
  const auto trees = make_trees(taxa, 2, 0xF66);
  DynamicBfhIndex index(taxa->size());
  const auto ids = index.add_trees(trees);

  EXPECT_THROW(index.remove_tree(99), InvalidArgument);
  EXPECT_THROW(index.replace_tree(99, trees[0]), InvalidArgument);
  index.remove_tree(ids[0]);
  EXPECT_THROW(index.remove_tree(ids[0]), InvalidArgument);  // double free
  EXPECT_THROW(index.replace_tree(ids[0], trees[0]), InvalidArgument);
}

TEST(DynamicBfhTest, IdenticalReplacementTouchesNothing) {
  const auto taxa = phylo::TaxonSet::make_numbered(12);
  const auto trees = make_trees(taxa, 4, 0x177);
  DynamicBfhIndex index(taxa->size());
  const auto ids = index.add_trees(trees);

  const auto delta = index.replace_tree(ids[2], trees[2]);
  EXPECT_EQ(delta.keys_removed, 0u);
  EXPECT_EQ(delta.keys_added, 0u);
  EXPECT_GT(delta.keys_shared, 0u);  // every kept split matched
  EXPECT_EQ(index.tree_count(), trees.size());
}

TEST(DynamicBfhTest, NniReplacementIsBoundedAndCorrect) {
  const auto taxa = phylo::TaxonSet::make_numbered(14);
  auto trees = make_trees(taxa, 4, 0x288);
  const auto probes = make_trees(taxa, 3, 0x399);
  DynamicBfhIndex index(taxa->size());
  const auto ids = index.add_trees(trees);

  util::Rng rng(0x4AA);
  Tree next = trees[1];
  const bool changed = sim::random_nni(next, rng);
  const auto delta = index.replace_tree(ids[1], next);
  if (changed) {
    // One NNI swaps at most one internal bipartition.
    EXPECT_LE(delta.keys_removed, 1u);
    EXPECT_LE(delta.keys_added, 1u);
  } else {
    EXPECT_EQ(delta.keys_removed + delta.keys_added, 0u);
  }

  std::vector<Tree> current = trees;
  current[1] = next;
  EXPECT_EQ(index.query(probes), rebuilt_answers(taxa, current, probes));
}

TEST(DynamicBfhTest, CompactPreservesQueriesAndClearsTombstones) {
  const auto taxa = phylo::TaxonSet::make_numbered(12);
  const auto trees = make_trees(taxa, 8, 0x5BB);
  const auto probes = make_trees(taxa, 3, 0x6CC);
  DynamicBfhIndex index(taxa->size());
  const auto ids = index.add_trees(trees);
  index.remove_trees(std::vector<std::size_t>{ids[0], ids[5]});

  const std::vector<double> before = index.query(probes);
  index.compact();
  const auto* hash = dynamic_cast<const FrequencyHash*>(&index.store());
  ASSERT_NE(hash, nullptr);
  EXPECT_EQ(hash->tombstone_count(), 0u);
  EXPECT_EQ(index.query(probes), before);
}

TEST(DynamicBfhTest, CompressedStoreSupportsTheFullLifecycle) {
  const auto taxa = phylo::TaxonSet::make_numbered(12);
  auto trees = make_trees(taxa, 5, 0x7DD);
  const auto probes = make_trees(taxa, 3, 0x8EE);
  BfhrfOptions opts;
  opts.compressed_keys = true;
  DynamicBfhIndex index(taxa->size(), opts);
  const auto ids = index.add_trees(trees);
  index.remove_tree(ids[2]);
  util::Rng rng(0x9FF);
  Tree next = trees[4];
  sim::random_spr_leaf(next, rng);
  index.replace_tree(ids[4], next);
  index.compact();

  std::vector<Tree> current = {trees[0], trees[1], trees[3], next};
  Bfhrf fresh(taxa->size(), opts);
  fresh.build(current);
  EXPECT_EQ(index.query(probes), fresh.query(probes));
}

}  // namespace
}  // namespace bfhrf::core
