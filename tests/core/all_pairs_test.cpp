#include "core/all_pairs.hpp"

#include <gtest/gtest.h>

#include "core/hashrf.hpp"
#include "core/rf.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

TEST(AllPairsTest, MatchesPairwiseRf) {
  const auto taxa = TaxonSet::make_numbered(14);
  util::Rng rng(1);
  const auto trees = test::random_collection(taxa, 15, 4, rng);
  const RfMatrix m = all_pairs_rf(trees);
  for (std::size_t i = 0; i < trees.size(); ++i) {
    for (std::size_t j = 0; j < trees.size(); ++j) {
      EXPECT_EQ(m.at(i, j), rf_distance(trees[i], trees[j]));
    }
  }
}

TEST(AllPairsTest, MatchesHashRfExactMatrix) {
  const auto taxa = TaxonSet::make_numbered(20);
  util::Rng rng(2);
  const auto trees = test::random_collection(taxa, 25, 5, rng);
  const RfMatrix ours = all_pairs_rf(trees, {.threads = 4});
  const auto hashrf = hash_rf(trees);
  for (std::size_t i = 0; i < trees.size(); ++i) {
    for (std::size_t j = 0; j < trees.size(); ++j) {
      EXPECT_EQ(ours.at(i, j), hashrf.matrix.at(i, j));
    }
  }
}

TEST(AllPairsTest, ThreadCountIrrelevant) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(3);
  const auto trees = test::random_collection(taxa, 18, 3, rng);
  const RfMatrix a = all_pairs_rf(trees, {.threads = 1});
  const RfMatrix b = all_pairs_rf(trees, {.threads = 8});
  for (std::size_t i = 0; i < trees.size(); ++i) {
    for (std::size_t j = 0; j < trees.size(); ++j) {
      EXPECT_EQ(a.at(i, j), b.at(i, j));
    }
  }
}

TEST(AllPairsTest, EmptyAndMixedInputsRejected) {
  EXPECT_THROW((void)all_pairs_rf({}), InvalidArgument);
  const auto ta = TaxonSet::make_numbered(6);
  const auto tb = TaxonSet::make_numbered(6);
  util::Rng rng(4);
  std::vector<Tree> mixed;
  mixed.push_back(sim::yule_tree(ta, rng));
  mixed.push_back(sim::yule_tree(tb, rng));
  EXPECT_THROW((void)all_pairs_rf(mixed), InvalidArgument);
}

TEST(AllPairsTest, SingleTree) {
  const auto taxa = TaxonSet::make_numbered(8);
  util::Rng rng(5);
  const std::vector<Tree> one{sim::yule_tree(taxa, rng)};
  const RfMatrix m = all_pairs_rf(one);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at(0, 0), 0u);
}

}  // namespace
}  // namespace bfhrf::core
