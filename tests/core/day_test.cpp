#include "core/day.hpp"

#include <gtest/gtest.h>

#include "core/rf.hpp"
#include "phylo/newick.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

TEST(DayTest, PaperExample) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D"});
  const Tree t = phylo::parse_newick("((A,B),(C,D));", taxa);
  const Tree tp = phylo::parse_newick("((D,B),(C,A));", taxa);
  EXPECT_EQ(day_rf(t, tp), 2u);
  EXPECT_EQ(day_rf(t, t), 0u);
}

TEST(DayTest, MatchesSetBasedRfOnRandomBinaryTrees) {
  const auto taxa = TaxonSet::make_numbered(32);
  util::Rng rng(1);
  for (int rep = 0; rep < 200; ++rep) {
    const Tree a = sim::uniform_tree(taxa, rng);
    const Tree b = sim::uniform_tree(taxa, rng);
    ASSERT_EQ(day_rf(a, b), rf_distance(a, b)) << "rep " << rep;
  }
}

TEST(DayTest, MatchesSetBasedRfOnPerturbedTrees) {
  // Clustered collections share many splits — the regime where cluster
  // table hits dominate.
  const auto taxa = TaxonSet::make_numbered(40);
  util::Rng rng(2);
  const Tree base = sim::yule_tree(taxa, rng);
  for (int rep = 0; rep < 100; ++rep) {
    Tree b = base;
    sim::perturb(b, rng, static_cast<std::size_t>(1 + rep % 6));
    ASSERT_EQ(day_rf(base, b), rf_distance(base, b)) << "rep " << rep;
  }
}

TEST(DayTest, MatchesSetBasedRfOnMultifurcatingTrees) {
  const auto taxa = TaxonSet::make_numbered(24);
  util::Rng rng(3);
  for (int rep = 0; rep < 100; ++rep) {
    const Tree a = sim::multifurcating_tree(taxa, rng, 0.3);
    const Tree b = sim::multifurcating_tree(taxa, rng, 0.5);
    ASSERT_EQ(day_rf(a, b), rf_distance(a, b)) << "rep " << rep;
  }
}

TEST(DayTest, MatchesSetBasedRfOnCaterpillars) {
  const auto taxa = TaxonSet::make_numbered(30);
  util::Rng rng(4);
  for (int rep = 0; rep < 50; ++rep) {
    const Tree a = sim::caterpillar_tree(taxa, rng);
    const Tree b = sim::caterpillar_tree(taxa, rng);
    ASSERT_EQ(day_rf(a, b), rf_distance(a, b)) << "rep " << rep;
  }
}

TEST(DayTest, RootingInvariance) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D", "E", "F"});
  const Tree rooted =
      phylo::parse_newick("(((A,B),C),(D,(E,F)));", taxa);
  const Tree unrooted =
      phylo::parse_newick("((E,F),D,(C,(A,B)));", taxa);
  EXPECT_EQ(day_rf(rooted, unrooted), 0u);
  const Tree other = phylo::parse_newick("(((A,C),B),(D,(E,F)));", taxa);
  EXPECT_EQ(day_rf(rooted, other), rf_distance(rooted, other));
  EXPECT_EQ(day_rf(unrooted, other), rf_distance(rooted, other));
}

TEST(DayTest, TableReusableAcrossQueries) {
  const auto taxa = TaxonSet::make_numbered(20);
  util::Rng rng(5);
  const Tree base = sim::yule_tree(taxa, rng);
  const DayTable table(base);
  EXPECT_EQ(table.base_bipartitions(), 20u - 3);
  for (int rep = 0; rep < 30; ++rep) {
    const Tree other = sim::uniform_tree(taxa, rng);
    EXPECT_EQ(table.rf_against(other), rf_distance(base, other));
  }
}

TEST(DayTest, MaxRfMatchesSetSizes) {
  const auto taxa = TaxonSet::make_numbered(15);
  util::Rng rng(6);
  const Tree a = sim::yule_tree(taxa, rng);
  const Tree b = sim::multifurcating_tree(taxa, rng, 0.4);
  const DayTable table(a);
  const auto [rf, max] = table.rf_and_max(b);
  const auto ba = phylo::extract_bipartitions(a);
  const auto bb = phylo::extract_bipartitions(b);
  EXPECT_EQ(rf, rf_distance(ba, bb));
  EXPECT_EQ(max, ba.size() + bb.size());
}

TEST(DayTest, DifferentLeafSetsThrow) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(7);
  const Tree full = sim::yule_tree(taxa, rng);
  // Build a tree missing one taxon over the same universe.
  util::DynamicBitset keep(10);
  keep.flip_all();
  keep.reset(9);
  Tree pruned = full;
  {
    // quick prune: reuse newick round trip through restriction in tests of
    // restrict; here build a 4-taxon tree manually.
    auto sub = Tree(taxa);
    const auto root = sub.add_root();
    sub.add_leaf(root, 0);
    sub.add_leaf(root, 1);
    sub.add_leaf(root, 2);
    pruned = sub;
  }
  const DayTable table(full);
  EXPECT_THROW((void)table.rf_against(pruned), InvalidArgument);
}

TEST(DayTest, TinyTreesThrowOrReturnZero) {
  auto taxa =
      std::make_shared<TaxonSet>(std::vector<std::string>{"A", "B", "C"});
  const Tree t = phylo::parse_newick("(A,B,C);", taxa);
  // 3 taxa: no non-trivial splits, distance 0 to any same-taxa tree.
  EXPECT_EQ(day_rf(t, t), 0u);
}

class DayPropertySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DayPropertySweep, AgreesWithSetBasedAcrossSizes) {
  const std::size_t n = GetParam();
  const auto taxa = TaxonSet::make_numbered(n);
  util::Rng rng(n * 7 + 1);
  for (int rep = 0; rep < 25; ++rep) {
    const Tree a = sim::uniform_tree(taxa, rng);
    Tree b = a;
    sim::perturb(b, rng, static_cast<std::size_t>(rep) % 8);
    ASSERT_EQ(day_rf(a, b), rf_distance(a, b))
        << "n=" << n << " rep=" << rep;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DayPropertySweep,
                         ::testing::Values(4, 5, 6, 8, 12, 16, 33, 64, 65,
                                           100, 144));

}  // namespace
}  // namespace bfhrf::core
