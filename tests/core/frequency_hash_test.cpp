#include "core/frequency_hash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/bitset.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

util::DynamicBitset key(std::size_t n_bits, std::initializer_list<int> bits) {
  util::DynamicBitset b(n_bits);
  for (const int i : bits) {
    b.set(static_cast<std::size_t>(i));
  }
  return b;
}

TEST(FrequencyHashTest, EmptyHash) {
  const FrequencyHash h(100);
  EXPECT_EQ(h.unique_count(), 0u);
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  EXPECT_EQ(h.frequency(key(100, {1, 2}).words()), 0u);
}

TEST(FrequencyHashTest, AddAndLookup) {
  FrequencyHash h(100);
  const auto a = key(100, {1, 2});
  const auto b = key(100, {64, 65});
  h.add(a.words());
  h.add(a.words());
  h.add(b.words(), 3);
  EXPECT_EQ(h.frequency(a.words()), 2u);
  EXPECT_EQ(h.frequency(b.words()), 3u);
  EXPECT_EQ(h.unique_count(), 2u);
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_DOUBLE_EQ(h.total_weight(), 5.0);  // unit weights
}

TEST(FrequencyHashTest, AbsentKeyIsZero) {
  FrequencyHash h(64);
  h.add(key(64, {0}).words());
  EXPECT_EQ(h.frequency(key(64, {1}).words()), 0u);
}

TEST(FrequencyHashTest, GrowthPreservesContents) {
  constexpr std::size_t kBits = 200;
  FrequencyHash h(kBits);  // default small table, forced to grow
  util::Rng rng(42);
  std::map<std::string, std::uint32_t> mirror;
  for (int i = 0; i < 5000; ++i) {
    util::DynamicBitset b(kBits);
    for (int j = 0; j < 5; ++j) {
      b.set(rng.below(kBits));
    }
    h.add(b.words());
    ++mirror[b.to_string()];
  }
  EXPECT_EQ(h.unique_count(), mirror.size());
  EXPECT_EQ(h.total_count(), 5000u);
  for (const auto& [s, count] : mirror) {
    EXPECT_EQ(h.frequency(util::DynamicBitset::from_string(s).words()),
              count);
  }
  EXPECT_LE(h.load_factor(), 0.7 + 1e-9);
}

TEST(FrequencyHashTest, CollisionFreeUnderAdversarialKeys) {
  // Dense similar keys (single-bit differences) must never merge.
  constexpr std::size_t kBits = 256;
  FrequencyHash h(kBits);
  for (std::size_t i = 0; i < kBits; ++i) {
    h.add(key(kBits, {static_cast<int>(i)}).words());
  }
  EXPECT_EQ(h.unique_count(), kBits);
  for (std::size_t i = 0; i < kBits; ++i) {
    EXPECT_EQ(h.frequency(key(kBits, {static_cast<int>(i)}).words()), 1u);
  }
}

TEST(FrequencyHashTest, ExpectedUniquePresizesTable) {
  FrequencyHash h(64, 10000);
  const std::size_t before = h.memory_bytes();
  for (int i = 0; i < 64; ++i) {
    h.add(key(64, {i}).words());
  }
  // Presized: no slot-table or arena reallocation while under capacity.
  EXPECT_EQ(h.memory_bytes(), before);
}

TEST(FrequencyHashTest, MergeCombinesCounts) {
  FrequencyHash a(100);
  FrequencyHash b(100);
  const auto k1 = key(100, {1, 2});
  const auto k2 = key(100, {3, 4});
  const auto k3 = key(100, {5, 6});
  a.add(k1.words(), 2);
  a.add(k2.words(), 1);
  b.add(k2.words(), 5);
  b.add(k3.words(), 7);
  a.merge(b);
  EXPECT_EQ(a.frequency(k1.words()), 2u);
  EXPECT_EQ(a.frequency(k2.words()), 6u);
  EXPECT_EQ(a.frequency(k3.words()), 7u);
  EXPECT_EQ(a.unique_count(), 3u);
  EXPECT_EQ(a.total_count(), 15u);
  EXPECT_DOUBLE_EQ(a.total_weight(), 15.0);
}

TEST(FrequencyHashTest, MergeWidthMismatchThrows) {
  FrequencyHash a(100);
  FrequencyHash b(200);
  EXPECT_THROW(a.merge(b), InvalidArgument);
}

TEST(FrequencyHashTest, MergePreservesWeightedTotals) {
  FrequencyHash a(64);
  FrequencyHash b(64);
  a.add_weighted(key(64, {1}).words(), 2, 0.5);
  b.add_weighted(key(64, {2}).words(), 3, 2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), 2 * 0.5 + 3 * 2.0);
  EXPECT_EQ(a.total_count(), 5u);
}

TEST(FrequencyHashTest, ForEachVisitsEveryUniqueKeyOnce) {
  FrequencyHash h(128);
  util::Rng rng(7);
  std::map<std::string, std::uint32_t> mirror;
  for (int i = 0; i < 500; ++i) {
    util::DynamicBitset b(128);
    b.set(rng.below(128));
    b.set(rng.below(128));
    h.add(b.words());
    ++mirror[b.to_string()];
  }
  std::map<std::string, std::uint32_t> seen;
  h.for_each([&](util::ConstWordSpan words, std::uint32_t count) {
    const util::DynamicBitset b(128, words);
    seen[b.to_string()] = count;
  });
  EXPECT_EQ(seen, mirror);
}

TEST(FrequencyHashTest, WeightedTotals) {
  FrequencyHash h(64);
  h.add_weighted(key(64, {1}).words(), 1, 2.5);
  h.add_weighted(key(64, {1}).words(), 1, 2.5);
  h.add_weighted(key(64, {2}).words(), 1, 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 6.0);
  EXPECT_EQ(h.total_count(), 3u);
  EXPECT_EQ(h.frequency(key(64, {1}).words()), 2u);
}

TEST(FrequencyHashTest, MemoryGrowsWithUniqueKeysNotTotalCount) {
  FrequencyHash repeated(128);
  FrequencyHash unique(128);
  util::Rng rng(11);
  const auto k = key(128, {1, 2, 3});
  for (int i = 0; i < 2000; ++i) {
    repeated.add(k.words());
    util::DynamicBitset b(128);
    b.set(rng.below(128));
    b.set(rng.below(128));
    b.set(i % 128 == 0 ? 1u : static_cast<std::size_t>(rng.below(128)));
    unique.add(b.words());
  }
  EXPECT_LT(repeated.memory_bytes(), unique.memory_bytes());
  EXPECT_EQ(repeated.unique_count(), 1u);
}

class FrequencyHashWidthSweep : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(FrequencyHashWidthSweep, RandomInsertLookupConsistency) {
  const std::size_t n_bits = GetParam();
  FrequencyHash h(n_bits);
  util::Rng rng(n_bits);
  std::map<std::string, std::uint32_t> mirror;
  for (int i = 0; i < 800; ++i) {
    util::DynamicBitset b(n_bits);
    const std::size_t ones = 1 + rng.below(std::min<std::size_t>(n_bits, 8));
    for (std::size_t j = 0; j < ones; ++j) {
      b.set(rng.below(n_bits));
    }
    h.add(b.words());
    ++mirror[b.to_string()];
  }
  for (const auto& [s, count] : mirror) {
    EXPECT_EQ(h.frequency(util::DynamicBitset::from_string(s).words()),
              count);
  }
  EXPECT_EQ(h.unique_count(), mirror.size());
}

INSTANTIATE_TEST_SUITE_P(Widths, FrequencyHashWidthSweep,
                         ::testing::Values(8, 48, 64, 65, 100, 144, 128, 250,
                                           1000));

TEST(FrequencyHashTest, AddManyAtExactLoadBoundaryGrowsUpFrontOnly) {
  // A 16-slot table holds at most floor(0.7 * 16) = 11 resident keys.
  FrequencyHash h(64, 1);
  ASSERT_EQ(h.capacity_slots(), 16u);
  for (std::uint64_t k = 1; k <= 3; ++k) {
    h.add(util::ConstWordSpan{&k, 1});
  }
  // A batch landing EXACTLY on the boundary must not grow: 3 + 8 = 11.
  std::vector<std::uint64_t> batch;
  for (std::uint64_t k = 100; k < 108; ++k) {
    batch.push_back(k);
  }
  h.add_many(batch.data(), batch.size(), nullptr);
  EXPECT_EQ(h.unique_count(), 11u);
  EXPECT_EQ(h.capacity_slots(), 16u);
  EXPECT_LE(h.load_factor(), 0.7);
  // One key past the boundary doubles the table — before the batch runs,
  // so no prefetched line is ever invalidated mid-pipeline.
  const std::uint64_t extra = 999;
  h.add_many(&extra, 1, nullptr);
  EXPECT_EQ(h.capacity_slots(), 32u);
  EXPECT_EQ(h.unique_count(), 12u);
  // Every key survived the boundary dance with its exact count.
  for (std::uint64_t k = 1; k <= 3; ++k) {
    EXPECT_EQ(h.frequency(util::ConstWordSpan{&k, 1}), 1u);
  }
  for (const std::uint64_t k : batch) {
    EXPECT_EQ(h.frequency(util::ConstWordSpan{&k, 1}), 1u);
  }
  EXPECT_EQ(h.frequency(util::ConstWordSpan{&extra, 1}), 1u);
}

TEST(FrequencyHashTest, MergeWeightedRandomizedPreservesTotals) {
  // Weight is a pure function of the key (the merge() contract), so the
  // merged weighted mass must equal the sum of both sides' masses exactly
  // up to floating-point association.
  util::Rng rng(0x77);
  const std::size_t n_bits = 96;
  const auto weight_of = [](const util::DynamicBitset& b) {
    return 0.25 + static_cast<double>(b.count());
  };
  FrequencyHash a(n_bits);
  FrequencyHash b(n_bits);
  std::map<std::string, std::uint64_t> mirror;
  double expected_weight = 0;
  for (int op = 0; op < 400; ++op) {
    util::DynamicBitset k(n_bits);
    const std::size_t ones = 1 + rng.below(6);
    for (std::size_t j = 0; j < ones; ++j) {
      k.set(rng.below(n_bits));
    }
    const auto count = static_cast<std::uint32_t>(1 + rng.below(3));
    FrequencyHash& target = (op % 2 == 0) ? a : b;
    target.add_weighted(k.words(), count, weight_of(k));
    mirror[k.to_string()] += count;
    expected_weight += static_cast<double>(count) * weight_of(k);
  }
  const std::uint64_t expected_total = a.total_count() + b.total_count();
  a.merge(b);
  EXPECT_EQ(a.total_count(), expected_total);
  EXPECT_EQ(a.unique_count(), mirror.size());
  EXPECT_NEAR(a.total_weight(), expected_weight,
              1e-9 * std::abs(expected_weight));
  for (const auto& [s, count] : mirror) {
    EXPECT_EQ(a.frequency(util::DynamicBitset::from_string(s).words()),
              count);
  }
}

TEST(FrequencyHashTest, ProbeStatsReflectResidentKeys) {
  FrequencyHash h(64);
  EXPECT_EQ(h.probe_stats().max_groups, 0u);
  util::Rng rng(0x99);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t k = rng();
    h.add(util::ConstWordSpan{&k, 1});
  }
  const auto stats = h.probe_stats();
  EXPECT_GE(stats.mean_groups, 1.0);
  EXPECT_GE(stats.max_groups, 1u);
  EXPECT_LE(stats.mean_groups, static_cast<double>(stats.max_groups));
  // A probe can never walk more groups than the directory holds.
  EXPECT_LE(stats.max_groups, h.capacity_slots() / 16);
}

// --- removal / tombstones / compaction --------------------------------------

TEST(FrequencyHashTest, RemoveDecrementsAndErasesAtZero) {
  FrequencyHash h(100);
  const auto a = key(100, {1, 2});
  const auto b = key(100, {64, 65});
  h.add(a.words(), 3);
  h.add(b.words());
  h.remove(a.words(), 2);
  EXPECT_EQ(h.frequency(a.words()), 1u);
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_EQ(h.tombstone_count(), 0u);  // still live: no tombstone yet
  h.remove(a.words());
  EXPECT_EQ(h.frequency(a.words()), 0u);  // erased keys read zero
  EXPECT_EQ(h.unique_count(), 1u);
  EXPECT_EQ(h.total_count(), 1u);
  EXPECT_DOUBLE_EQ(h.total_weight(), 1.0);
  EXPECT_EQ(h.tombstone_count(), 1u);
  // The tombstoned slot is reusable: the key can come straight back.
  h.add(a.words());
  EXPECT_EQ(h.frequency(a.words()), 1u);
  EXPECT_EQ(h.tombstone_count(), 0u);
}

TEST(FrequencyHashTest, RemoveNeverUnderflows) {
  FrequencyHash h(100);
  const auto a = key(100, {1, 2});
  h.add(a.words(), 2);
  EXPECT_THROW(h.remove(a.words(), 3), InvalidArgument);
  EXPECT_EQ(h.frequency(a.words()), 2u);  // untouched on failure
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_THROW(h.remove(key(100, {5}).words()), InvalidArgument);  // unknown
  EXPECT_EQ(h.unique_count(), 1u);
}

TEST(FrequencyHashTest, RemoveManyDrainsExactlyToZero) {
  constexpr std::size_t kBits = 96;
  const std::size_t words = util::words_for_bits(kBits);
  FrequencyHash h(kBits);
  util::Rng rng(0x1234);
  std::vector<std::uint64_t> arena;
  for (int i = 0; i < 300; ++i) {
    util::DynamicBitset b(kBits);
    b.set(rng.below(kBits));
    b.set(rng.below(kBits));
    arena.insert(arena.end(), b.words().begin(), b.words().end());
  }
  const std::size_t count = arena.size() / words;
  h.add_many(arena.data(), count, nullptr);
  EXPECT_GT(h.unique_count(), 0u);
  // Batched removal of the exact add sequence drains the table; repeated
  // keys in the arena decrement once per occurrence, never below zero.
  h.remove_many(arena.data(), count, nullptr);
  EXPECT_EQ(h.unique_count(), 0u);
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  // Everything is gone, so a further batched removal must refuse.
  EXPECT_THROW(h.remove_many(arena.data(), 1, nullptr), InvalidArgument);
}

TEST(FrequencyHashTest, CompactionPreservesContents) {
  constexpr std::size_t kBits = 80;
  FrequencyHash h(kBits);
  std::vector<util::DynamicBitset> keys;
  for (int i = 0; i < 20; ++i) {
    for (int j = i + 1; j < 21; ++j) {
      keys.push_back(key(kBits, {i, j}));  // 210 distinct keys
    }
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    h.add(keys[i].words(), static_cast<std::uint32_t>(1 + i % 4));
  }
  // Fully erase every fourth key: enough tombstones to make compaction
  // observable, few enough to stay under the auto-compaction ratio.
  for (std::size_t i = 0; i < keys.size(); i += 4) {
    h.remove(keys[i].words(), static_cast<std::uint32_t>(1 + i % 4));
  }
  ASSERT_GT(h.tombstone_count(), 0u);

  const auto image = [&h] {
    std::vector<std::pair<std::string, std::uint32_t>> img;
    h.for_each([&](util::ConstWordSpan k, std::uint32_t freq) {
      img.emplace_back(
          std::string(reinterpret_cast<const char*>(k.data()),
                      k.size() * sizeof(std::uint64_t)),
          freq);
    });
    std::sort(img.begin(), img.end());
    return img;
  };
  const auto before = image();
  const std::uint64_t total = h.total_count();
  h.compact();
  EXPECT_EQ(h.tombstone_count(), 0u);
  EXPECT_EQ(h.total_count(), total);
  EXPECT_EQ(image(), before);  // same key/count multiset
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(h.frequency(keys[i].words()),
              i % 4 == 0 ? 0u : static_cast<std::uint32_t>(1 + i % 4));
  }
}

TEST(FrequencyHashTest, HeavyRemovalTriggersAutoCompaction) {
  constexpr std::size_t kBits = 80;
  FrequencyHash h(kBits);
  std::vector<util::DynamicBitset> keys;
  for (int i = 0; i < 20; ++i) {
    for (int j = i + 1; j < 21; ++j) {
      keys.push_back(key(kBits, {i, j}));
    }
  }
  for (const auto& k : keys) {
    h.add(k.words());
  }
  // Erase all but ten. The ratio check runs after every removal, so the
  // table can never sit above the compaction threshold.
  for (std::size_t i = 0; i + 10 < keys.size(); ++i) {
    h.remove(keys[i].words());
    EXPECT_LE(h.tombstone_ratio(), 0.25);
  }
  EXPECT_LT(h.tombstone_count(), keys.size() - 10);  // compaction fired
  EXPECT_EQ(h.unique_count(), 10u);
}

}  // namespace
}  // namespace bfhrf::core
