#include "core/frequency_hash.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

util::DynamicBitset key(std::size_t n_bits, std::initializer_list<int> bits) {
  util::DynamicBitset b(n_bits);
  for (const int i : bits) {
    b.set(static_cast<std::size_t>(i));
  }
  return b;
}

TEST(FrequencyHashTest, EmptyHash) {
  const FrequencyHash h(100);
  EXPECT_EQ(h.unique_count(), 0u);
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  EXPECT_EQ(h.frequency(key(100, {1, 2}).words()), 0u);
}

TEST(FrequencyHashTest, AddAndLookup) {
  FrequencyHash h(100);
  const auto a = key(100, {1, 2});
  const auto b = key(100, {64, 65});
  h.add(a.words());
  h.add(a.words());
  h.add(b.words(), 3);
  EXPECT_EQ(h.frequency(a.words()), 2u);
  EXPECT_EQ(h.frequency(b.words()), 3u);
  EXPECT_EQ(h.unique_count(), 2u);
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_DOUBLE_EQ(h.total_weight(), 5.0);  // unit weights
}

TEST(FrequencyHashTest, AbsentKeyIsZero) {
  FrequencyHash h(64);
  h.add(key(64, {0}).words());
  EXPECT_EQ(h.frequency(key(64, {1}).words()), 0u);
}

TEST(FrequencyHashTest, GrowthPreservesContents) {
  constexpr std::size_t kBits = 200;
  FrequencyHash h(kBits);  // default small table, forced to grow
  util::Rng rng(42);
  std::map<std::string, std::uint32_t> mirror;
  for (int i = 0; i < 5000; ++i) {
    util::DynamicBitset b(kBits);
    for (int j = 0; j < 5; ++j) {
      b.set(rng.below(kBits));
    }
    h.add(b.words());
    ++mirror[b.to_string()];
  }
  EXPECT_EQ(h.unique_count(), mirror.size());
  EXPECT_EQ(h.total_count(), 5000u);
  for (const auto& [s, count] : mirror) {
    EXPECT_EQ(h.frequency(util::DynamicBitset::from_string(s).words()),
              count);
  }
  EXPECT_LE(h.load_factor(), 0.7 + 1e-9);
}

TEST(FrequencyHashTest, CollisionFreeUnderAdversarialKeys) {
  // Dense similar keys (single-bit differences) must never merge.
  constexpr std::size_t kBits = 256;
  FrequencyHash h(kBits);
  for (std::size_t i = 0; i < kBits; ++i) {
    h.add(key(kBits, {static_cast<int>(i)}).words());
  }
  EXPECT_EQ(h.unique_count(), kBits);
  for (std::size_t i = 0; i < kBits; ++i) {
    EXPECT_EQ(h.frequency(key(kBits, {static_cast<int>(i)}).words()), 1u);
  }
}

TEST(FrequencyHashTest, ExpectedUniquePresizesTable) {
  FrequencyHash h(64, 10000);
  const std::size_t before = h.memory_bytes();
  for (int i = 0; i < 64; ++i) {
    h.add(key(64, {i}).words());
  }
  // Presized: no slot-table or arena reallocation while under capacity.
  EXPECT_EQ(h.memory_bytes(), before);
}

TEST(FrequencyHashTest, MergeCombinesCounts) {
  FrequencyHash a(100);
  FrequencyHash b(100);
  const auto k1 = key(100, {1, 2});
  const auto k2 = key(100, {3, 4});
  const auto k3 = key(100, {5, 6});
  a.add(k1.words(), 2);
  a.add(k2.words(), 1);
  b.add(k2.words(), 5);
  b.add(k3.words(), 7);
  a.merge(b);
  EXPECT_EQ(a.frequency(k1.words()), 2u);
  EXPECT_EQ(a.frequency(k2.words()), 6u);
  EXPECT_EQ(a.frequency(k3.words()), 7u);
  EXPECT_EQ(a.unique_count(), 3u);
  EXPECT_EQ(a.total_count(), 15u);
  EXPECT_DOUBLE_EQ(a.total_weight(), 15.0);
}

TEST(FrequencyHashTest, MergeWidthMismatchThrows) {
  FrequencyHash a(100);
  FrequencyHash b(200);
  EXPECT_THROW(a.merge(b), InvalidArgument);
}

TEST(FrequencyHashTest, MergePreservesWeightedTotals) {
  FrequencyHash a(64);
  FrequencyHash b(64);
  a.add_weighted(key(64, {1}).words(), 2, 0.5);
  b.add_weighted(key(64, {2}).words(), 3, 2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), 2 * 0.5 + 3 * 2.0);
  EXPECT_EQ(a.total_count(), 5u);
}

TEST(FrequencyHashTest, ForEachVisitsEveryUniqueKeyOnce) {
  FrequencyHash h(128);
  util::Rng rng(7);
  std::map<std::string, std::uint32_t> mirror;
  for (int i = 0; i < 500; ++i) {
    util::DynamicBitset b(128);
    b.set(rng.below(128));
    b.set(rng.below(128));
    h.add(b.words());
    ++mirror[b.to_string()];
  }
  std::map<std::string, std::uint32_t> seen;
  h.for_each([&](util::ConstWordSpan words, std::uint32_t count) {
    const util::DynamicBitset b(128, words);
    seen[b.to_string()] = count;
  });
  EXPECT_EQ(seen, mirror);
}

TEST(FrequencyHashTest, WeightedTotals) {
  FrequencyHash h(64);
  h.add_weighted(key(64, {1}).words(), 1, 2.5);
  h.add_weighted(key(64, {1}).words(), 1, 2.5);
  h.add_weighted(key(64, {2}).words(), 1, 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 6.0);
  EXPECT_EQ(h.total_count(), 3u);
  EXPECT_EQ(h.frequency(key(64, {1}).words()), 2u);
}

TEST(FrequencyHashTest, MemoryGrowsWithUniqueKeysNotTotalCount) {
  FrequencyHash repeated(128);
  FrequencyHash unique(128);
  util::Rng rng(11);
  const auto k = key(128, {1, 2, 3});
  for (int i = 0; i < 2000; ++i) {
    repeated.add(k.words());
    util::DynamicBitset b(128);
    b.set(rng.below(128));
    b.set(rng.below(128));
    b.set(i % 128 == 0 ? 1u : static_cast<std::size_t>(rng.below(128)));
    unique.add(b.words());
  }
  EXPECT_LT(repeated.memory_bytes(), unique.memory_bytes());
  EXPECT_EQ(repeated.unique_count(), 1u);
}

class FrequencyHashWidthSweep : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(FrequencyHashWidthSweep, RandomInsertLookupConsistency) {
  const std::size_t n_bits = GetParam();
  FrequencyHash h(n_bits);
  util::Rng rng(n_bits);
  std::map<std::string, std::uint32_t> mirror;
  for (int i = 0; i < 800; ++i) {
    util::DynamicBitset b(n_bits);
    const std::size_t ones = 1 + rng.below(std::min<std::size_t>(n_bits, 8));
    for (std::size_t j = 0; j < ones; ++j) {
      b.set(rng.below(n_bits));
    }
    h.add(b.words());
    ++mirror[b.to_string()];
  }
  for (const auto& [s, count] : mirror) {
    EXPECT_EQ(h.frequency(util::DynamicBitset::from_string(s).words()),
              count);
  }
  EXPECT_EQ(h.unique_count(), mirror.size());
}

INSTANTIATE_TEST_SUITE_P(Widths, FrequencyHashWidthSweep,
                         ::testing::Values(8, 48, 64, 65, 100, 144, 128, 250,
                                           1000));

TEST(FrequencyHashTest, AddManyAtExactLoadBoundaryGrowsUpFrontOnly) {
  // A 16-slot table holds at most floor(0.7 * 16) = 11 resident keys.
  FrequencyHash h(64, 1);
  ASSERT_EQ(h.capacity_slots(), 16u);
  for (std::uint64_t k = 1; k <= 3; ++k) {
    h.add(util::ConstWordSpan{&k, 1});
  }
  // A batch landing EXACTLY on the boundary must not grow: 3 + 8 = 11.
  std::vector<std::uint64_t> batch;
  for (std::uint64_t k = 100; k < 108; ++k) {
    batch.push_back(k);
  }
  h.add_many(batch.data(), batch.size(), nullptr);
  EXPECT_EQ(h.unique_count(), 11u);
  EXPECT_EQ(h.capacity_slots(), 16u);
  EXPECT_LE(h.load_factor(), 0.7);
  // One key past the boundary doubles the table — before the batch runs,
  // so no prefetched line is ever invalidated mid-pipeline.
  const std::uint64_t extra = 999;
  h.add_many(&extra, 1, nullptr);
  EXPECT_EQ(h.capacity_slots(), 32u);
  EXPECT_EQ(h.unique_count(), 12u);
  // Every key survived the boundary dance with its exact count.
  for (std::uint64_t k = 1; k <= 3; ++k) {
    EXPECT_EQ(h.frequency(util::ConstWordSpan{&k, 1}), 1u);
  }
  for (const std::uint64_t k : batch) {
    EXPECT_EQ(h.frequency(util::ConstWordSpan{&k, 1}), 1u);
  }
  EXPECT_EQ(h.frequency(util::ConstWordSpan{&extra, 1}), 1u);
}

TEST(FrequencyHashTest, MergeWeightedRandomizedPreservesTotals) {
  // Weight is a pure function of the key (the merge() contract), so the
  // merged weighted mass must equal the sum of both sides' masses exactly
  // up to floating-point association.
  util::Rng rng(0x77);
  const std::size_t n_bits = 96;
  const auto weight_of = [](const util::DynamicBitset& b) {
    return 0.25 + static_cast<double>(b.count());
  };
  FrequencyHash a(n_bits);
  FrequencyHash b(n_bits);
  std::map<std::string, std::uint64_t> mirror;
  double expected_weight = 0;
  for (int op = 0; op < 400; ++op) {
    util::DynamicBitset k(n_bits);
    const std::size_t ones = 1 + rng.below(6);
    for (std::size_t j = 0; j < ones; ++j) {
      k.set(rng.below(n_bits));
    }
    const auto count = static_cast<std::uint32_t>(1 + rng.below(3));
    FrequencyHash& target = (op % 2 == 0) ? a : b;
    target.add_weighted(k.words(), count, weight_of(k));
    mirror[k.to_string()] += count;
    expected_weight += static_cast<double>(count) * weight_of(k);
  }
  const std::uint64_t expected_total = a.total_count() + b.total_count();
  a.merge(b);
  EXPECT_EQ(a.total_count(), expected_total);
  EXPECT_EQ(a.unique_count(), mirror.size());
  EXPECT_NEAR(a.total_weight(), expected_weight,
              1e-9 * std::abs(expected_weight));
  for (const auto& [s, count] : mirror) {
    EXPECT_EQ(a.frequency(util::DynamicBitset::from_string(s).words()),
              count);
  }
}

TEST(FrequencyHashTest, ProbeStatsReflectResidentKeys) {
  FrequencyHash h(64);
  EXPECT_EQ(h.probe_stats().max_groups, 0u);
  util::Rng rng(0x99);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t k = rng();
    h.add(util::ConstWordSpan{&k, 1});
  }
  const auto stats = h.probe_stats();
  EXPECT_GE(stats.mean_groups, 1.0);
  EXPECT_GE(stats.max_groups, 1u);
  EXPECT_LE(stats.mean_groups, static_cast<double>(stats.max_groups));
  // A probe can never walk more groups than the directory holds.
  EXPECT_LE(stats.max_groups, h.capacity_slots() / 16);
}

}  // namespace
}  // namespace bfhrf::core
