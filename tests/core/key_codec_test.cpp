#include "core/key_codec.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "phylo/bipartition.hpp"
#include "sim/generators.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

TEST(VarintTest, RoundTripValues) {
  const std::uint64_t values[] = {0,    1,    127,        128,
                                  300,  1u << 14,  (1u << 14) + 1,
                                  ~std::uint64_t{0}, 0x123456789abcdefULL};
  for (const std::uint64_t v : values) {
    std::vector<std::byte> bytes;
    put_varint(v, bytes);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(bytes, pos), v);
    EXPECT_EQ(pos, bytes.size());
  }
}

TEST(VarintTest, TruncatedThrows) {
  std::vector<std::byte> bytes;
  put_varint(300, bytes);
  bytes.pop_back();
  std::size_t pos = 0;
  EXPECT_THROW((void)get_varint(bytes, pos), ParseError);
}

TEST(VarintTest, OverlongThrows) {
  // 11 continuation bytes exceed a 64-bit value.
  std::vector<std::byte> bytes(11, std::byte{0x80});
  std::size_t pos = 0;
  EXPECT_THROW((void)get_varint(bytes, pos), ParseError);
}

TEST(KeyCodecTest, RoundTripsSparseKeys) {
  constexpr std::size_t kBits = 200;
  const SparseKeyCodec codec(kBits);
  util::Rng rng(1);
  for (int rep = 0; rep < 200; ++rep) {
    util::DynamicBitset key(kBits);
    const std::size_t ones = rng.below(kBits);
    for (std::size_t i = 0; i < ones; ++i) {
      key.set(rng.below(kBits));
    }
    std::vector<std::byte> bytes;
    const std::size_t len = codec.encode(key.words(), bytes);
    EXPECT_EQ(len, bytes.size());
    EXPECT_LE(len, codec.max_encoded_size());

    util::DynamicBitset back(kBits);
    EXPECT_EQ(codec.decode(bytes, back), bytes.size());
    EXPECT_EQ(back, key) << "rep " << rep;
    EXPECT_EQ(codec.encoded_size(bytes), bytes.size());
  }
}

TEST(KeyCodecTest, EncodingIsCanonical) {
  // Equal keys -> identical byte strings (required for hashing on bytes).
  constexpr std::size_t kBits = 100;
  const SparseKeyCodec codec(kBits);
  util::DynamicBitset a(kBits);
  a.set(5);
  a.set(70);
  util::DynamicBitset b(kBits);
  b.set(70);
  b.set(5);
  std::vector<std::byte> ea;
  std::vector<std::byte> eb;
  codec.encode(a.words(), ea);
  codec.encode(b.words(), eb);
  EXPECT_EQ(ea, eb);
}

TEST(KeyCodecTest, DenseKeysStoreClearBits) {
  constexpr std::size_t kBits = 128;
  const SparseKeyCodec codec(kBits);
  util::DynamicBitset dense(kBits);
  dense.flip_all();
  dense.reset(3);
  dense.reset(90);
  std::vector<std::byte> bytes;
  codec.encode(dense.words(), bytes);
  // 2 clear bits -> flag + count + 2 small varints: a handful of bytes,
  // far below the 16-byte raw form.
  EXPECT_LE(bytes.size(), 6u);
  util::DynamicBitset back(kBits);
  codec.decode(bytes, back);
  EXPECT_EQ(back, dense);
}

TEST(KeyCodecTest, EmptyAndFullKeys) {
  constexpr std::size_t kBits = 70;
  const SparseKeyCodec codec(kBits);
  util::DynamicBitset empty(kBits);
  util::DynamicBitset full(kBits);
  full.flip_all();
  for (const auto& key : {empty, full}) {
    std::vector<std::byte> bytes;
    codec.encode(key.words(), bytes);
    util::DynamicBitset back(kBits);
    codec.decode(bytes, back);
    EXPECT_EQ(back, key);
  }
}

TEST(KeyCodecTest, MalformedInputsThrow) {
  const SparseKeyCodec codec(64);
  util::DynamicBitset out(64);
  EXPECT_THROW((void)codec.decode({}, out), ParseError);
  // Bad flag byte.
  std::vector<std::byte> bad{std::byte{7}, std::byte{0}};
  EXPECT_THROW((void)codec.decode(bad, out), ParseError);
  // Count exceeding the universe.
  std::vector<std::byte> huge{std::byte{0}};
  put_varint(1000, huge);
  EXPECT_THROW((void)codec.decode(huge, out), ParseError);
  EXPECT_THROW((void)codec.encoded_size(huge), ParseError);
  // Index out of range.
  std::vector<std::byte> oob{std::byte{0}};
  put_varint(1, oob);
  put_varint(64, oob);
  EXPECT_THROW((void)codec.decode(oob, out), ParseError);
}

TEST(KeyCodecTest, RealBipartitionsCompressWell) {
  // Clustered splits on a large universe: mean encoded size far below raw.
  constexpr std::size_t kTaxa = 500;
  const auto taxa = phylo::TaxonSet::make_numbered(kTaxa);
  util::Rng rng(9);
  const SparseKeyCodec codec(kTaxa);
  const std::size_t raw_bytes = util::words_for_bits(kTaxa) * 8;
  std::size_t total = 0;
  std::size_t count = 0;
  for (int t = 0; t < 10; ++t) {
    const auto tree = sim::yule_tree(taxa, rng);
    const auto bips = phylo::extract_bipartitions(tree);
    util::DynamicBitset back(kTaxa);
    for (std::size_t i = 0; i < bips.size(); ++i) {
      std::vector<std::byte> bytes;
      codec.encode(bips[i], bytes);
      total += bytes.size();
      ++count;
      codec.decode(bytes, back);
      EXPECT_TRUE(util::equal_words(back.words(), bips[i]));
    }
  }
  const double mean = static_cast<double>(total) /
                      static_cast<double>(count);
  EXPECT_LT(mean, static_cast<double>(raw_bytes) / 2.0);
}

TEST(KeyCodecTest, BackToBackDecodingViaEncodedSize) {
  // Multiple keys in one buffer, walked by encoded_size.
  constexpr std::size_t kBits = 90;
  const SparseKeyCodec codec(kBits);
  util::Rng rng(3);
  std::vector<util::DynamicBitset> keys;
  std::vector<std::byte> buffer;
  for (int i = 0; i < 20; ++i) {
    util::DynamicBitset k(kBits);
    for (int j = 0; j < 5; ++j) {
      k.set(rng.below(kBits));
    }
    codec.encode(k.words(), buffer);
    keys.push_back(std::move(k));
  }
  std::size_t pos = 0;
  util::DynamicBitset back(kBits);
  for (const auto& k : keys) {
    const ByteSpan rest{buffer.data() + pos, buffer.size() - pos};
    const std::size_t len = codec.encoded_size(rest);
    codec.decode(rest.subspan(0, len), back);
    EXPECT_EQ(back, k);
    pos += len;
  }
  EXPECT_EQ(pos, buffer.size());
}

}  // namespace
}  // namespace bfhrf::core
