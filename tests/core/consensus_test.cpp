#include "core/consensus.hpp"

#include <gtest/gtest.h>

#include "core/bfhrf.hpp"
#include "core/rf.hpp"
#include "phylo/bipartition.hpp"
#include "phylo/newick.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

Tree consensus_of(const std::vector<Tree>& trees, double threshold = 0.5) {
  Bfhrf engine(trees.front().taxa()->size());
  engine.build(trees);
  return consensus_tree(engine.store(), trees.size(), trees.front().taxa(),
                        ConsensusOptions{.threshold = threshold});
}

TEST(ConsensusTest, IdenticalTreesReproduceTopology) {
  const auto taxa = TaxonSet::make_numbered(16);
  util::Rng rng(1);
  const Tree t = sim::yule_tree(taxa, rng);
  const std::vector<Tree> trees(7, t);
  const Tree cons = consensus_of(trees);
  EXPECT_EQ(rf_distance(cons, t), 0u);
  EXPECT_EQ(cons.num_leaves(), 16u);
}

TEST(ConsensusTest, MajoritySplitsAppear) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D", "E"});
  std::vector<Tree> trees;
  // {A,B} clade in 3 of 4 trees; {C,D} in 2 of 4.
  trees.push_back(phylo::parse_newick("((A,B),(C,D),E);", taxa));
  trees.push_back(phylo::parse_newick("((A,B),(C,E),D);", taxa));
  trees.push_back(phylo::parse_newick("((A,B),(D,E),C);", taxa));
  trees.push_back(phylo::parse_newick("((A,C),(B,D),E);", taxa));

  const Tree cons = consensus_of(trees);
  const auto bips = phylo::extract_bipartitions(cons);
  // {A,B}: canonical side excludes A -> mask {C,D,E} is... side {A,B}
  // flipped to exclude taxon 0 (A) -> {C,D,E} = 00111.
  bool found_ab = false;
  for (std::size_t i = 0; i < bips.size(); ++i) {
    found_ab |= (bips.bitset(i).to_string() == "00111");
  }
  EXPECT_TRUE(found_ab);
  // {C,D} appears in only 2/4 -> not in the strict-majority consensus.
  for (std::size_t i = 0; i < bips.size(); ++i) {
    EXPECT_NE(bips.bitset(i).to_string(), "00110");
  }
}

TEST(ConsensusTest, StarWhenNoMajority) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D"});
  std::vector<Tree> trees;
  trees.push_back(phylo::parse_newick("((A,B),(C,D));", taxa));
  trees.push_back(phylo::parse_newick("((A,C),(B,D));", taxa));
  trees.push_back(phylo::parse_newick("((A,D),(B,C));", taxa));
  const Tree cons = consensus_of(trees);
  EXPECT_EQ(phylo::extract_bipartitions(cons).size(), 0u);  // star tree
  EXPECT_EQ(cons.num_leaves(), 4u);
}

TEST(ConsensusTest, GreedyResolvesMoreThanMajority) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D", "E", "F"});
  std::vector<Tree> trees;
  trees.push_back(phylo::parse_newick("(((A,B),(C,D)),(E,F));", taxa));
  trees.push_back(phylo::parse_newick("(((A,B),C),(D,(E,F)));", taxa));
  trees.push_back(phylo::parse_newick("(((A,C),B),((D,E),F));", taxa));
  trees.push_back(phylo::parse_newick("(((A,C),D),(B,(E,F)));", taxa));

  const Tree majority = consensus_of(trees, 0.5);
  const Tree greedy = consensus_of(trees, 0.0);
  EXPECT_GE(phylo::extract_bipartitions(greedy).size(),
            phylo::extract_bipartitions(majority).size());
  greedy.validate();
  // Greedy output must still be a valid tree whose splits are compatible.
  const auto gb = phylo::extract_bipartitions(greedy);
  for (std::size_t i = 0; i < gb.size(); ++i) {
    for (std::size_t j = i + 1; j < gb.size(); ++j) {
      EXPECT_TRUE(phylo::bipartitions_compatible(gb.bitset(i), gb.bitset(j),
                                                 gb.leaf_mask()));
    }
  }
}

TEST(ConsensusTest, ConsensusMinimizesAvgRfAmongCandidates) {
  // The majority-rule tree should score no worse (in average RF against the
  // collection) than a random tree — the "best summary" intuition that
  // motivates the paper's search workloads.
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(2);
  const auto trees = test::random_collection(taxa, 30, 2, rng);
  const Tree cons = consensus_of(trees);

  Bfhrf engine(taxa->size());
  engine.build(trees);
  const double cons_score = engine.query_one(cons);
  double random_total = 0;
  constexpr int kRandom = 10;
  for (int i = 0; i < kRandom; ++i) {
    random_total += engine.query_one(sim::uniform_tree(taxa, rng));
  }
  EXPECT_LE(cons_score, random_total / kRandom);
}

TEST(ConsensusTest, ThresholdOneKeepsOnlyUnanimousSplits) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(3);
  const Tree base = sim::yule_tree(taxa, rng);
  std::vector<Tree> trees(6, base);
  sim::perturb(trees[5], rng, 4);  // one deviant tree

  // threshold just under 1.0: only splits in all 6 trees survive.
  const Tree cons = consensus_of(trees, 0.99);
  const auto cb = phylo::extract_bipartitions(cons);
  const auto bb = phylo::extract_bipartitions(base);
  const auto db = phylo::extract_bipartitions(trees[5]);
  const std::size_t unanimous =
      phylo::BipartitionSet::intersection_size(bb, db);
  EXPECT_EQ(cb.size(), unanimous);
}

TEST(ConsensusTest, EmptyCollectionThrows) {
  const auto taxa = TaxonSet::make_numbered(5);
  const FrequencyHash hash(5);
  EXPECT_THROW((void)consensus_tree(hash, 0, taxa), InvalidArgument);
}

TEST(ConsensusTest, ValidTreeOnLargeNoisyCollection) {
  const auto taxa = TaxonSet::make_numbered(50);
  util::Rng rng(4);
  const auto trees = test::random_collection(taxa, 100, 8, rng);
  const Tree cons = consensus_of(trees);
  cons.validate();
  EXPECT_EQ(cons.num_leaves(), 50u);
  // All splits must be mutually compatible (it is a tree, so trivially so,
  // but extraction must also succeed).
  (void)phylo::extract_bipartitions(cons);
}

}  // namespace
}  // namespace bfhrf::core
