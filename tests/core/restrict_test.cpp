#include "core/restrict.hpp"

#include <gtest/gtest.h>

#include "core/bfhrf.hpp"
#include "core/rf.hpp"
#include "phylo/bipartition.hpp"
#include "phylo/newick.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;
using phylo::TaxonSetPtr;
using phylo::Tree;

TEST(RestrictTest, PruneSingleLeaf) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D", "E"});
  const Tree t = phylo::parse_newick("((A,B),((C,D),E));", taxa);
  util::DynamicBitset keep(5);
  keep.flip_all();
  keep.reset(4);  // drop E
  const Tree pruned = restrict_to_taxa(t, keep);
  pruned.validate();
  EXPECT_EQ(pruned.num_leaves(), 4u);
  EXPECT_EQ(pruned.leaf_taxa_sorted(),
            (std::vector<phylo::TaxonId>{0, 1, 2, 3}));
  // Topology: ((A,B),(C,D)) — one non-trivial split {C,D}.
  const Tree want = phylo::parse_newick("((A,B),(C,D));", taxa);
  EXPECT_EQ(rf_distance(pruned, want), 0u);
}

TEST(RestrictTest, BranchLengthsSumAcrossSuppressedNodes) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D"});
  const Tree t = phylo::parse_newick("((A:1,B:2):3,(C:4,D:5):6);", taxa);
  util::DynamicBitset keep(4);
  keep.set(0);
  keep.set(2);
  keep.set(3);  // drop B; A's parent becomes unary, its 3 merges into A's 1
  const Tree pruned = restrict_to_taxa(t, keep);
  pruned.validate();
  EXPECT_EQ(pruned.num_leaves(), 3u);
  double a_len = -1;
  for (const auto leaf : pruned.leaves()) {
    if (pruned.node(leaf).taxon == 0) {
      a_len = pruned.node(leaf).length;
    }
  }
  EXPECT_DOUBLE_EQ(a_len, 1.0 + 3.0);
}

TEST(RestrictTest, KeepingEverythingIsIdentityTopology) {
  const auto taxa = TaxonSet::make_numbered(15);
  util::Rng rng(1);
  const Tree t = sim::yule_tree(taxa, rng);
  util::DynamicBitset keep(15);
  keep.flip_all();
  const Tree same = restrict_to_taxa(t, keep);
  EXPECT_EQ(rf_distance(t, same), 0u);
}

TEST(RestrictTest, FewerThanTwoTaxaThrows) {
  const auto taxa = TaxonSet::make_numbered(6);
  util::Rng rng(2);
  const Tree t = sim::yule_tree(taxa, rng);
  util::DynamicBitset keep(6);
  keep.set(0);
  EXPECT_THROW((void)restrict_to_taxa(t, keep), InvalidArgument);
}

TEST(RestrictTest, MaskWidthMismatchThrows) {
  const auto taxa = TaxonSet::make_numbered(6);
  util::Rng rng(3);
  const Tree t = sim::yule_tree(taxa, rng);
  EXPECT_THROW((void)restrict_to_taxa(t, util::DynamicBitset(5)),
               InvalidArgument);
}

TEST(RestrictTest, RestrictionCommutesWithSplitRestriction) {
  // Splits of the restricted tree == splits of the original restricted to
  // the kept taxa (dropping those that become trivial).
  const auto taxa = TaxonSet::make_numbered(20);
  util::Rng rng(4);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree t = sim::uniform_tree(taxa, rng);
    util::DynamicBitset keep(20);
    keep.flip_all();
    // Drop 5 random taxa.
    for (int d = 0; d < 5; ++d) {
      keep.reset(rng.below(20));
    }
    if (keep.count() < 4) {
      continue;
    }
    const Tree pruned = restrict_to_taxa(t, keep);
    pruned.validate();
    EXPECT_EQ(pruned.num_leaves(), keep.count());

    // Every split of the pruned tree must be the restriction of some split
    // of the original.
    const auto pruned_bips = phylo::extract_bipartitions(pruned);
    const auto full_bips = phylo::extract_bipartitions(t);
    const std::size_t lowest = keep.find_first();
    for (std::size_t i = 0; i < pruned_bips.size(); ++i) {
      const auto pb = pruned_bips.bitset(i);
      bool found = false;
      for (std::size_t j = 0; j < full_bips.size() && !found; ++j) {
        util::DynamicBitset fb = full_bips.bitset(j);
        fb &= keep;
        // Normalize the restriction the same way (relative to kept taxa).
        if (fb.test(lowest)) {
          fb ^= keep;
        }
        found = (fb == pb);
      }
      EXPECT_TRUE(found) << "rep " << rep << " split " << i;
    }
  }
}

TEST(RestrictTest, CommonTaxaIntersects) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D", "E", "F"});
  std::vector<Tree> trees;
  trees.push_back(phylo::parse_newick("((A,B),(C,D));", taxa));
  trees.push_back(phylo::parse_newick("((A,C),(D,E));", taxa));
  trees.push_back(phylo::parse_newick("((A,D),(C,F));", taxa));
  // tree1 has {A,B,C,D}, tree2 {A,C,D,E}, tree3 {A,C,D,F} -> {A,C,D}.
  const auto common = common_taxa(trees);
  EXPECT_EQ(common.count(), 3u);
  EXPECT_TRUE(common.test(0));  // A
  EXPECT_TRUE(common.test(2));  // C
  EXPECT_TRUE(common.test(3));  // D
}

TEST(RestrictTest, UnionTaxaUnions) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D", "E"});
  std::vector<Tree> trees;
  trees.push_back(phylo::parse_newick("((A,B),(C,D));", taxa));
  trees.push_back(phylo::parse_newick("((A,B),(C,E));", taxa));
  const auto all = union_taxa(trees);
  EXPECT_EQ(all.count(), 5u);
}

TEST(RestrictTest, RestrictToCommonTaxaEnablesComparison) {
  // Variable-taxa workflow end-to-end: trees missing different taxa are
  // restricted to the shared core, then compared by any engine.
  const auto taxa = TaxonSet::make_numbered(20);
  util::Rng rng(5);
  const Tree base = sim::yule_tree(taxa, rng);
  std::vector<Tree> trees;
  for (int i = 0; i < 10; ++i) {
    util::DynamicBitset keep(20);
    keep.flip_all();
    keep.reset(10 + static_cast<std::size_t>(i % 4));  // drop one high taxon
    Tree t = restrict_to_taxa(base, keep);
    sim::perturb(t, rng, 2);
    trees.push_back(std::move(t));
  }
  const auto restricted = restrict_to_common_taxa(trees);
  ASSERT_EQ(restricted.size(), trees.size());
  const std::size_t core = common_taxa(trees).count();
  for (const auto& t : restricted) {
    EXPECT_EQ(t.num_leaves(), core);
  }
  // All engines now accept them (Q == R run):
  const auto avg = bfhrf_average_rf(restricted, restricted);
  EXPECT_EQ(avg.size(), restricted.size());
}

TEST(RestrictTest, TooFewSharedTaxaThrows) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D", "E", "F"});
  std::vector<Tree> trees;
  trees.push_back(phylo::parse_newick("((A,B),(C,D));", taxa));
  trees.push_back(phylo::parse_newick("((E,F),(C,D));", taxa));
  // Shared taxa: {C,D} -> fewer than 4.
  EXPECT_THROW((void)restrict_to_common_taxa(trees), InvalidArgument);
}

}  // namespace
}  // namespace bfhrf::core
