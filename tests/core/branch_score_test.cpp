#include "core/branch_score.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "phylo/newick.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

std::vector<Tree> weighted_collection(const phylo::TaxonSetPtr& taxa,
                                      std::size_t count, std::size_t moves,
                                      util::Rng& rng) {
  return test::random_collection(taxa, count, moves, rng,
                                 /*branch_lengths=*/true);
}

TEST(BranchScoreTest, IdenticalTreesScoreZero) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(1);
  const Tree t =
      sim::yule_tree(taxa, rng, sim::GeneratorOptions{.branch_lengths = true});
  EXPECT_DOUBLE_EQ(branch_score_squared(t, t), 0.0);
}

TEST(BranchScoreTest, HandWorkedQuartet) {
  // T : ((A:1,B:1):0.5,(C:1,D:1):0.5)  internal split {C,D} len 1.0 derooted
  // T': ((A:2,B:1):0.25,(C:1,D:3):0.25) same topology, different lengths.
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D"});
  const Tree t = phylo::parse_newick("((A:1,B:1):0.5,(C:1,D:1):0.5);", taxa);
  const Tree tp =
      phylo::parse_newick("((A:2,B:1):0.25,(C:1,D:3):0.25);", taxa);
  // Leaf edges: A (1-2)^2 = 1, B 0, C 0, D (1-3)^2 = 4.
  // Internal {C,D}: lengths merge across the root: 1.0 vs 0.5 -> 0.25.
  EXPECT_DOUBLE_EQ(branch_score_squared(t, tp), 1.0 + 4.0 + 0.25);

  // Without trivial splits only the internal edge counts.
  const BranchScoreOptions no_trivial{.threads = 1,
                                      .include_trivial = false};
  EXPECT_DOUBLE_EQ(branch_score_squared(t, tp, no_trivial), 0.25);
}

TEST(BranchScoreTest, DisjointTopologiesSumSquaredLengths) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D"});
  const Tree t = phylo::parse_newick("((A,B):2,C,D);", taxa);
  const Tree tp = phylo::parse_newick("((A,C):3,B,D);", taxa);
  const BranchScoreOptions no_trivial{.threads = 1,
                                      .include_trivial = false};
  // Splits disjoint: 2² + 3².
  EXPECT_DOUBLE_EQ(branch_score_squared(t, tp, no_trivial), 4.0 + 9.0);
}

TEST(BranchScoreTest, SymmetricMetricProperties) {
  const auto taxa = TaxonSet::make_numbered(16);
  util::Rng rng(2);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree a = sim::yule_tree(
        taxa, rng, sim::GeneratorOptions{.branch_lengths = true});
    const Tree b = sim::yule_tree(
        taxa, rng, sim::GeneratorOptions{.branch_lengths = true});
    EXPECT_DOUBLE_EQ(branch_score_squared(a, b), branch_score_squared(b, a));
    EXPECT_GE(branch_score_squared(a, b), 0.0);
  }
}

TEST(BranchScoreTest, EngineMatchesSequentialOracle) {
  const auto taxa = TaxonSet::make_numbered(14);
  util::Rng rng(3);
  const auto reference = weighted_collection(taxa, 20, 3, rng);
  const auto queries = weighted_collection(taxa, 7, 5, rng);

  BranchScoreBfhrf engine(taxa->size());
  engine.build(reference);
  const auto fast = engine.query(queries);
  const auto slow = sequential_avg_branch_score(queries, reference);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-9 * (1.0 + std::abs(slow[i])));
  }
}

TEST(BranchScoreTest, EngineMatchesOracleWithoutTrivialSplits) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(4);
  const auto reference = weighted_collection(taxa, 15, 4, rng);
  const auto queries = weighted_collection(taxa, 5, 4, rng);
  const BranchScoreOptions opts{.threads = 2, .include_trivial = false};

  BranchScoreBfhrf engine(taxa->size(), opts);
  engine.build(reference);
  const auto fast = engine.query(queries);
  const auto slow = sequential_avg_branch_score(queries, reference, opts);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-9 * (1.0 + std::abs(slow[i])));
  }
}

TEST(BranchScoreTest, ThreadsDoNotChangeResults) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(5);
  const auto reference = weighted_collection(taxa, 12, 3, rng);
  const auto queries = weighted_collection(taxa, 6, 3, rng);
  BranchScoreBfhrf seq(taxa->size(), {.threads = 1});
  BranchScoreBfhrf par(taxa->size(), {.threads = 4});
  seq.build(reference);
  par.build(reference);
  const auto a = seq.query(queries);
  const auto b = par.query(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(BranchScoreTest, SelfQueryInCollectionIsConsistent) {
  // For Q == R, a tree's mean squared score must equal the oracle's.
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(6);
  const auto trees = weighted_collection(taxa, 10, 4, rng);
  BranchScoreBfhrf engine(taxa->size());
  engine.build(trees);
  const auto fast = engine.query(trees);
  const auto slow = sequential_avg_branch_score(trees, trees);
  for (std::size_t i = 0; i < trees.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-9 * (1.0 + std::abs(slow[i])));
  }
}

TEST(BranchScoreTest, UnweightedTreesRejected) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(7);
  const std::vector<Tree> bare{sim::yule_tree(taxa, rng)};
  BranchScoreBfhrf engine(taxa->size());
  EXPECT_THROW(engine.build(bare), InvalidArgument);
}

TEST(BranchScoreTest, QueryBeforeBuildThrows) {
  const auto taxa = TaxonSet::make_numbered(8);
  util::Rng rng(8);
  const Tree t =
      sim::yule_tree(taxa, rng, sim::GeneratorOptions{.branch_lengths = true});
  const BranchScoreBfhrf engine(taxa->size());
  EXPECT_THROW((void)engine.query_one(t), InvalidArgument);
}

TEST(BranchScoreTest, ScalingLengthsScalesScoreQuadratically) {
  auto taxa = std::make_shared<TaxonSet>(
      std::vector<std::string>{"A", "B", "C", "D", "E"});
  const Tree a = phylo::parse_newick("((A:1,B:2):1,(C:1,D:1):2,E:1);", taxa);
  const Tree b = phylo::parse_newick("((A:2,B:4):2,(C:2,D:2):4,E:2);", taxa);
  // b is a with all lengths doubled: BS²(a,b) = Σ l² of a.
  const double base = branch_score_squared(a, a);
  EXPECT_DOUBLE_EQ(base, 0.0);
  const double d = branch_score_squared(a, b);
  double sum_sq = 0;
  for (const double l : {1.0, 2.0, 1.0, 1.0, 1.0, 2.0, 1.0}) {
    sum_sq += l * l;
  }
  EXPECT_DOUBLE_EQ(d, sum_sq);
}

TEST(BranchScoreTest, StatsExposed) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(9);
  const auto trees = weighted_collection(taxa, 8, 2, rng);
  BranchScoreBfhrf engine(taxa->size());
  engine.build(trees);
  EXPECT_EQ(engine.reference_trees(), 8u);
  EXPECT_GE(engine.unique_splits(), 10u + 10u - 3u);  // >= one tree's splits
  EXPECT_GT(engine.memory_bytes(), 0u);
}

}  // namespace
}  // namespace bfhrf::core
