// Shared helpers for the bfhrf test suites.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "phylo/newick.hpp"
#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"
#include "sim/generators.hpp"
#include "sim/moves.hpp"
#include "util/rng.hpp"

namespace bfhrf::test {

inline std::string hex_seed(std::uint64_t seed) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llX",
                static_cast<unsigned long long>(seed));
  return buf;
}

/// Seed for a randomized test. BFHRF_FUZZ_SEED (set directly or via the
/// `--seed=N` flag handled in support/test_main.cpp; decimal or 0x-hex)
/// overrides `default_seed`. The seed is announced on stdout so a run that
/// dies before gtest reports is still reproducible; pair it with a
/// SCOPED_TRACE so ordinary assertion failures carry it too.
inline std::uint64_t fuzz_seed(std::uint64_t default_seed) {
  const char* env = std::getenv("BFHRF_FUZZ_SEED");
  const std::uint64_t seed = (env != nullptr && *env != '\0')
                                 ? std::strtoull(env, nullptr, 0)
                                 : default_seed;
  std::printf("[fuzz] seed=%s (replay with --seed=%s)\n",
              hex_seed(seed).c_str(), hex_seed(seed).c_str());
  return seed;
}

/// Parse a Newick string over a fresh taxon set.
inline phylo::Tree tree_of(const std::string& newick,
                           phylo::TaxonSetPtr& taxa_out) {
  taxa_out = std::make_shared<phylo::TaxonSet>();
  return phylo::parse_newick(newick, taxa_out);
}

/// Parse a Newick string over an existing taxon set.
inline phylo::Tree tree_of(const std::string& newick,
                           const phylo::TaxonSetPtr& taxa) {
  return phylo::parse_newick(newick, taxa);
}

/// A random collection clustered around one base topology — the shape of
/// real gene-tree data (and of the paper's simulated sets).
inline std::vector<phylo::Tree> random_collection(
    const phylo::TaxonSetPtr& taxa, std::size_t count, std::size_t moves,
    util::Rng& rng, bool branch_lengths = false) {
  const sim::GeneratorOptions opts{.branch_lengths = branch_lengths};
  const phylo::Tree base = sim::yule_tree(taxa, rng, opts);
  std::vector<phylo::Tree> trees;
  trees.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    phylo::Tree t = base;
    sim::perturb(t, rng, moves);
    trees.push_back(std::move(t));
  }
  return trees;
}

/// Fully independent random trees (maximally spread collection).
inline std::vector<phylo::Tree> independent_collection(
    const phylo::TaxonSetPtr& taxa, std::size_t count, util::Rng& rng) {
  std::vector<phylo::Tree> trees;
  trees.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trees.push_back(sim::uniform_tree(taxa, rng));
  }
  return trees;
}

}  // namespace bfhrf::test
