// Shared helpers for the bfhrf test suites.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "phylo/newick.hpp"
#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"
#include "sim/generators.hpp"
#include "sim/moves.hpp"
#include "util/rng.hpp"

namespace bfhrf::test {

/// Parse a Newick string over a fresh taxon set.
inline phylo::Tree tree_of(const std::string& newick,
                           phylo::TaxonSetPtr& taxa_out) {
  taxa_out = std::make_shared<phylo::TaxonSet>();
  return phylo::parse_newick(newick, taxa_out);
}

/// Parse a Newick string over an existing taxon set.
inline phylo::Tree tree_of(const std::string& newick,
                           const phylo::TaxonSetPtr& taxa) {
  return phylo::parse_newick(newick, taxa);
}

/// A random collection clustered around one base topology — the shape of
/// real gene-tree data (and of the paper's simulated sets).
inline std::vector<phylo::Tree> random_collection(
    const phylo::TaxonSetPtr& taxa, std::size_t count, std::size_t moves,
    util::Rng& rng, bool branch_lengths = false) {
  const sim::GeneratorOptions opts{.branch_lengths = branch_lengths};
  const phylo::Tree base = sim::yule_tree(taxa, rng, opts);
  std::vector<phylo::Tree> trees;
  trees.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    phylo::Tree t = base;
    sim::perturb(t, rng, moves);
    trees.push_back(std::move(t));
  }
  return trees;
}

/// Fully independent random trees (maximally spread collection).
inline std::vector<phylo::Tree> independent_collection(
    const phylo::TaxonSetPtr& taxa, std::size_t count, util::Rng& rng) {
  std::vector<phylo::Tree> trees;
  trees.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trees.push_back(sim::uniform_tree(taxa, rng));
  }
  return trees;
}

}  // namespace bfhrf::test
