// Shared gtest main for every bfhrf test binary.
//
// Adds one flag on top of the stock runner: `--seed=N` (decimal or
// 0x-prefixed hex) is exported as BFHRF_FUZZ_SEED before gtest parses the
// command line, so the randomized suites (see support/test_util.hpp's
// fuzz_seed) can replay a failing run exactly:
//
//   ./bfhrf_fuzz_tests --seed=0xF422
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      ::setenv("BFHRF_FUZZ_SEED", argv[i] + 7, /*overwrite=*/1);
      continue;  // strip it: gtest rejects unknown flags
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  argv[argc] = nullptr;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
