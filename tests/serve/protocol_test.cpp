// Wire-protocol conformance: golden byte layouts, encode/decode
// roundtrips, and the robustness contract — truncated, oversized,
// trailing-garbage, and random payloads must raise ParseError (never
// crash, never over-read, never balloon memory on a hostile count).
#include "serve/protocol.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "support/test_util.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bfhrf::serve {
namespace {

Bytes bytes(std::initializer_list<int> vals) {
  Bytes out;
  for (const int v : vals) {
    out.push_back(static_cast<std::uint8_t>(v));
  }
  return out;
}

// --- golden byte layouts (the on-the-wire ABI; changing these is a
// protocol version bump, not a refactor) ------------------------------------

TEST(ServeProtocolGolden, PingRequestIsOneOpcodeByte) {
  EXPECT_EQ(encode(PingRequest{}), bytes({0x01}));
  EXPECT_EQ(encode(StatsRequest{}), bytes({0x03}));
  EXPECT_EQ(encode(ShutdownRequest{}), bytes({0x05}));
}

TEST(ServeProtocolGolden, QueryRequestLayout) {
  // op=2 | count=1 | len=6 | "(a,b);"  — all u32s little-endian.
  const Bytes got = encode(QueryRequest{{"(a,b);"}});
  const Bytes want = bytes({0x02, 1, 0, 0, 0, 6, 0, 0, 0,
                            '(', 'a', ',', 'b', ')', ';'});
  EXPECT_EQ(got, want);
}

TEST(ServeProtocolGolden, PublishRequestLayout) {
  const Bytes got = encode(PublishRequest{"/x"});
  EXPECT_EQ(got, bytes({0x04, 2, 0, 0, 0, '/', 'x'}));
}

TEST(ServeProtocolGolden, QueryResultLayout) {
  // status=0 | version u64 | count u32 | f64 bits. 0.5 = 0x3FE0...0.
  QueryResult res;
  res.snapshot_version = 3;
  res.avg_rf = {0.5};
  const Bytes want = bytes({0x00, 3, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0,
                            0, 0, 0, 0, 0, 0, 0xE0, 0x3F});
  EXPECT_EQ(encode(res), want);
}

TEST(ServeProtocolGolden, ErrorResultLayout) {
  const Bytes got = encode(ErrorResult{Status::BadRequest, "no"});
  EXPECT_EQ(got, bytes({0x01, 2, 0, 0, 0, 'n', 'o'}));
}

// --- roundtrips -------------------------------------------------------------

TEST(ServeProtocol, RequestRoundtrips) {
  const QueryRequest query{{"((a,b),c);", "(a,(b,c));", ""}};
  const Request decoded = decode_request(encode(query));
  const auto* q = std::get_if<QueryRequest>(&decoded);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->newicks, query.newicks);

  EXPECT_TRUE(std::holds_alternative<PingRequest>(
      decode_request(encode(PingRequest{}))));
  EXPECT_TRUE(std::holds_alternative<StatsRequest>(
      decode_request(encode(StatsRequest{}))));
  EXPECT_TRUE(std::holds_alternative<ShutdownRequest>(
      decode_request(encode(ShutdownRequest{}))));
  const Request pub = decode_request(encode(PublishRequest{"/tmp/i.bfh"}));
  ASSERT_TRUE(std::holds_alternative<PublishRequest>(pub));
  EXPECT_EQ(std::get<PublishRequest>(pub).path, "/tmp/i.bfh");
}

TEST(ServeProtocol, ResponseRoundtrips) {
  QueryResult query;
  query.snapshot_version = 42;
  query.avg_rf = {0.0, 17.25, -0.0, 1e300};
  const QueryResult q2 = decode_query_result(encode(query));
  EXPECT_EQ(q2.snapshot_version, 42u);
  ASSERT_EQ(q2.avg_rf.size(), query.avg_rf.size());
  for (std::size_t i = 0; i < q2.avg_rf.size(); ++i) {
    // Bit-identical transport, signed zero included.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(q2.avg_rf[i]),
              std::bit_cast<std::uint64_t>(query.avg_rf[i]));
  }

  StatsResult stats;
  stats.snapshot_version = 7;
  stats.taxa = 100;
  stats.reference_trees = 20;
  stats.unique_bipartitions = 1234;
  stats.total_bipartitions = 5678;
  const StatsResult s2 = decode_stats_result(encode(stats));
  EXPECT_EQ(s2.snapshot_version, 7u);
  EXPECT_EQ(s2.taxa, 100u);
  EXPECT_EQ(s2.reference_trees, 20u);
  EXPECT_EQ(s2.unique_bipartitions, 1234u);
  EXPECT_EQ(s2.total_bipartitions, 5678u);

  EXPECT_EQ(decode_publish_result(encode(PublishResult{9})).snapshot_version,
            9u);
  decode_ok_empty(encode_ok());

  const ErrorResult err =
      decode_error(encode(ErrorResult{Status::ShuttingDown, "bye"}));
  EXPECT_EQ(err.status, Status::ShuttingDown);
  EXPECT_EQ(err.message, "bye");
}

// --- malformed payloads -----------------------------------------------------

TEST(ServeProtocolMalformed, EmptyAndUnknownOpcode) {
  EXPECT_THROW((void)decode_request({}), ParseError);
  EXPECT_THROW((void)decode_request(bytes({0x77})), ParseError);
  EXPECT_THROW((void)decode_request(bytes({0x00})), ParseError);
}

TEST(ServeProtocolMalformed, TrailingGarbageRejected) {
  Bytes ping = encode(PingRequest{});
  ping.push_back(0xAB);
  EXPECT_THROW((void)decode_request(ping), ParseError);

  Bytes ok = encode_ok();
  ok.push_back(0x00);
  EXPECT_THROW(decode_ok_empty(ok), ParseError);
}

TEST(ServeProtocolMalformed, TruncatedBodies) {
  // Query op with a count but no strings.
  EXPECT_THROW((void)decode_request(bytes({0x02, 2, 0, 0, 0})), ParseError);
  // String length pointing past the payload.
  EXPECT_THROW((void)decode_request(
                   bytes({0x02, 1, 0, 0, 0, 50, 0, 0, 0, 'x'})),
               ParseError);
  // Publish path truncated mid-length-field.
  EXPECT_THROW((void)decode_request(bytes({0x04, 5, 0})), ParseError);
  // Query result cut inside a double.
  Bytes res = encode(QueryResult{1, {2.0}});
  res.resize(res.size() - 3);
  EXPECT_THROW((void)decode_query_result(res), ParseError);
}

TEST(ServeProtocolMalformed, HostileCountRejectedBeforeAllocation) {
  // count = 0xFFFFFFFF with a near-empty payload must throw, not reserve
  // 4 billion entries.
  EXPECT_THROW((void)decode_request(bytes({0x02, 0xFF, 0xFF, 0xFF, 0xFF})),
               ParseError);
  EXPECT_THROW(
      (void)decode_query_result(bytes({0x00, 1, 0, 0, 0, 0, 0, 0, 0,
                                       0xFF, 0xFF, 0xFF, 0xFF})),
      ParseError);
}

TEST(ServeProtocolMalformed, StatusByteValidation) {
  EXPECT_THROW((void)response_status({}), ParseError);
  EXPECT_THROW((void)response_status(bytes({0x09})), ParseError);
  // decode_error on an Ok payload is a caller bug surfaced as ParseError.
  EXPECT_THROW((void)decode_error(encode_ok()), ParseError);
  // Ok-decoders on an error payload report the mismatch.
  EXPECT_THROW((void)decode_query_result(
                   encode(ErrorResult{Status::ServerError, "x"})),
               ParseError);
}

// --- stream framing over a socketpair ---------------------------------------

class FramePipe : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    close_writer();
    ::close(fds_[0]);
  }
  void close_writer() {
    if (fds_[1] >= 0) {
      ::close(fds_[1]);
      fds_[1] = -1;
    }
  }
  void send_raw(const Bytes& b) {
    ASSERT_EQ(::send(fds_[1], b.data(), b.size(), 0),
              static_cast<ssize_t>(b.size()));
  }

  int fds_[2] = {-1, -1};
};

TEST_F(FramePipe, RoundtripThenCleanEof) {
  const Bytes payload = encode(QueryRequest{{"(a,b);"}});
  write_frame(fds_[1], payload);
  close_writer();

  Bytes got;
  ASSERT_TRUE(read_frame(fds_[0], got));
  EXPECT_EQ(got, payload);
  EXPECT_FALSE(read_frame(fds_[0], got));  // EOF at a frame boundary
}

TEST_F(FramePipe, TruncatedHeaderIsParseError) {
  send_raw(bytes({0x05, 0x00}));
  close_writer();
  Bytes got;
  EXPECT_THROW((void)read_frame(fds_[0], got), ParseError);
}

TEST_F(FramePipe, TruncatedBodyIsParseError) {
  send_raw(bytes({10, 0, 0, 0, 'a', 'b', 'c'}));  // announces 10, sends 3
  close_writer();
  Bytes got;
  EXPECT_THROW((void)read_frame(fds_[0], got), ParseError);
}

TEST_F(FramePipe, ZeroLengthFrameIsParseError) {
  send_raw(bytes({0, 0, 0, 0}));
  close_writer();
  Bytes got;
  EXPECT_THROW((void)read_frame(fds_[0], got), ParseError);
}

TEST_F(FramePipe, OversizedFrameIsParseError) {
  send_raw(bytes({0xFF, 0xFF, 0xFF, 0x7F}));  // ~2 GiB announcement
  close_writer();
  Bytes got;
  EXPECT_THROW((void)read_frame(fds_[0], got, /*max_bytes=*/1 << 20),
               ParseError);
}

// --- seeded fuzz ------------------------------------------------------------

TEST(ServeProtocolFuzz, RandomPayloadsNeverCrash) {
  util::Rng rng(test::fuzz_seed(0xF7A3E5));
  SCOPED_TRACE("replay with --seed (see [fuzz] line above)");
  for (int iter = 0; iter < 3000; ++iter) {
    Bytes payload(rng.below(64));
    for (auto& b : payload) {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
    try {
      (void)decode_request(payload);
    } catch (const ParseError&) {
      // expected for almost all inputs
    }
    try {
      (void)decode_query_result(payload);
    } catch (const ParseError&) {
    }
    try {
      (void)decode_error(payload);
    } catch (const ParseError&) {
    }
  }
}

TEST(ServeProtocolFuzz, MutatedValidRequestsNeverCrash) {
  util::Rng rng(test::fuzz_seed(0xC0FFEE));
  SCOPED_TRACE("replay with --seed (see [fuzz] line above)");
  const Bytes base = encode(QueryRequest{{"((a,b),(c,d));", "(a,b);"}});
  for (int iter = 0; iter < 3000; ++iter) {
    Bytes mutated = base;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    try {
      const Request req = decode_request(mutated);
      // A surviving decode must still be internally consistent.
      if (const auto* q = std::get_if<QueryRequest>(&req)) {
        for (const std::string& s : q->newicks) {
          EXPECT_LE(s.size(), mutated.size());
        }
      }
    } catch (const ParseError&) {
    }
  }
}

}  // namespace
}  // namespace bfhrf::serve
