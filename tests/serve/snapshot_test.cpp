// SnapshotSlot RCU semantics and the IndexSnapshot immutability contract.
#include "core/snapshot.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/serialize.hpp"
#include "parallel/snapshot_slot.hpp"
#include "phylo/newick.hpp"
#include "support/test_util.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bfhrf {
namespace {

using parallel::SnapshotSlot;

TEST(SnapshotSlotTest, EmptySlotYieldsInvalidHandle) {
  SnapshotSlot<int> slot;
  EXPECT_EQ(slot.version(), 0u);
  const auto h = slot.acquire();
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h);
  EXPECT_EQ(h.version(), 0u);
}

TEST(SnapshotSlotTest, PublishAssignsMonotonicVersions) {
  SnapshotSlot<int> slot;
  EXPECT_EQ(slot.publish(std::make_shared<const int>(10)), 1u);
  EXPECT_EQ(slot.publish(std::make_shared<const int>(20)), 2u);
  EXPECT_EQ(slot.version(), 2u);
  const auto h = slot.acquire();
  ASSERT_TRUE(h);
  EXPECT_EQ(*h, 20);
  EXPECT_EQ(h.version(), 2u);
}

TEST(SnapshotSlotTest, HandlePinsRetiredVersionUntilDropped) {
  SnapshotSlot<int> slot;
  auto first = std::make_shared<const int>(1);
  std::weak_ptr<const int> watch = first;
  slot.publish(std::move(first));

  auto lease = slot.acquire();
  ASSERT_TRUE(lease);
  slot.publish(std::make_shared<const int>(2));

  // The swap retired version 1, but the outstanding lease keeps it alive
  // and bit-identical; only dropping the last lease destroys it.
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(*lease, 1);
  EXPECT_EQ(lease.version(), 1u);
  EXPECT_EQ(*slot.acquire(), 2);

  lease = {};
  EXPECT_TRUE(watch.expired());
}

TEST(SnapshotSlotTest, PublishingNullClearsTheSlot) {
  SnapshotSlot<int> slot;
  slot.publish(std::make_shared<const int>(5));
  EXPECT_EQ(slot.publish(nullptr), 2u);
  EXPECT_FALSE(slot.acquire());
  EXPECT_EQ(slot.version(), 2u);
}

TEST(SnapshotSlotTest, HandleCopiesShareThePin) {
  SnapshotSlot<std::string> slot;
  slot.publish(std::make_shared<const std::string>("v1"));
  auto a = slot.acquire();
  auto b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  slot.publish(std::make_shared<const std::string>("v2"));
  a = {};
  ASSERT_TRUE(b);
  EXPECT_EQ(*b, "v1");
}

// --- IndexSnapshot ----------------------------------------------------------

class IndexSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    taxa_ = phylo::TaxonSet::make_numbered(16);
    util::Rng rng(0xBEEF);
    reference_ = test::random_collection(taxa_, 12, 3, rng);
    queries_ = test::random_collection(taxa_, 5, 6, rng);
  }

  phylo::TaxonSetPtr taxa_;
  std::vector<phylo::Tree> reference_;
  std::vector<phylo::Tree> queries_;
};

TEST_F(IndexSnapshotTest, BuildMatchesDirectEngine) {
  core::Bfhrf direct(taxa_->size());
  direct.build(reference_);

  const auto snap = core::IndexSnapshot::build(taxa_, reference_);
  EXPECT_TRUE(taxa_->frozen());
  EXPECT_EQ(snap->source(), "inline");
  for (const phylo::Tree& q : queries_) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(snap->query_one(q)),
              std::bit_cast<std::uint64_t>(direct.query_one(q)));
  }
}

TEST_F(IndexSnapshotTest, QueryNewickRoundtripsThroughText) {
  const auto snap = core::IndexSnapshot::build(taxa_, reference_);
  for (const phylo::Tree& q : queries_) {
    const double via_text = snap->query_newick(phylo::write_newick(q));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(via_text),
              std::bit_cast<std::uint64_t>(snap->query_one(q)));
  }
}

TEST_F(IndexSnapshotTest, QueryNewickRejectsForeignTaxaAndGarbage) {
  const auto snap = core::IndexSnapshot::build(taxa_, reference_);
  EXPECT_THROW((void)snap->query_newick("((t0,t1),unknown_taxon);"),
               Error);
  EXPECT_THROW((void)snap->query_newick("((((;"), ParseError);
}

TEST_F(IndexSnapshotTest, OpenRestoresIdenticalAnswers) {
  const auto built = core::IndexSnapshot::build(taxa_, reference_);
  const std::string path =
      ::testing::TempDir() + "snapshot_test_index.bfh";
  core::save_bfhrf_file(built->engine(), path);

  const auto opened = core::IndexSnapshot::open(path, taxa_);
  EXPECT_EQ(opened->source(), path);
  for (const phylo::Tree& q : queries_) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(opened->query_one(q)),
              std::bit_cast<std::uint64_t>(built->query_one(q)));
  }
  std::remove(path.c_str());
}

TEST_F(IndexSnapshotTest, WidthMismatchIsRejected) {
  core::Bfhrf engine(taxa_->size());
  engine.build(reference_);
  const auto wrong = phylo::TaxonSet::make_numbered(taxa_->size() + 3);
  EXPECT_THROW(core::IndexSnapshot(std::move(engine), wrong, "x"),
               InvalidArgument);
  EXPECT_THROW((void)core::IndexSnapshot::build(nullptr, reference_),
               InvalidArgument);
}

}  // namespace
}  // namespace bfhrf
