// Loopback end-to-end coverage of the RF query daemon: the full
// start → query → hot-swap → query → shutdown lifecycle, protocol error
// handling over a real socket, and the connection-survival contract for
// malformed frames.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/serialize.hpp"
#include "phylo/newick.hpp"
#include "serve/client.hpp"
#include "support/test_util.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bfhrf::serve {
namespace {

class RfServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    taxa_ = phylo::TaxonSet::make_numbered(20);
    util::Rng rng(0x5E12FE);
    reference_ = test::random_collection(taxa_, 15, 3, rng);
    alternate_ = test::random_collection(taxa_, 9, 5, rng);
    queries_ = test::random_collection(taxa_, 6, 7, rng);
    for (const phylo::Tree& q : queries_) {
      query_text_.push_back(phylo::write_newick(q));
    }
    snapshot_ = core::IndexSnapshot::build(taxa_, reference_);
  }

  /// Publish the fixture snapshot, start on an ephemeral loopback port.
  void start(ServeOptions opts = {}) {
    server_ = std::make_unique<RfServer>(opts);
    server_->publish(snapshot_);
    server_->start();
  }

  [[nodiscard]] RfClient connect() const {
    return {"127.0.0.1", server_->port()};
  }

  phylo::TaxonSetPtr taxa_;
  std::vector<phylo::Tree> reference_;
  std::vector<phylo::Tree> alternate_;
  std::vector<phylo::Tree> queries_;
  std::vector<std::string> query_text_;
  std::shared_ptr<const core::IndexSnapshot> snapshot_;
  std::unique_ptr<RfServer> server_;
};

TEST_F(RfServerTest, StartWithoutSnapshotThrows) {
  RfServer server;
  EXPECT_THROW(server.start(), InvalidArgument);
}

TEST_F(RfServerTest, PingStatsQueryRoundtrip) {
  start();
  RfClient client = connect();
  client.ping();

  const StatsResult stats = client.stats();
  EXPECT_EQ(stats.snapshot_version, 1u);
  EXPECT_EQ(stats.taxa, taxa_->size());
  EXPECT_EQ(stats.reference_trees, reference_.size());
  EXPECT_GT(stats.unique_bipartitions, 0u);

  const QueryResult result = client.query(query_text_);
  EXPECT_EQ(result.snapshot_version, 1u);
  ASSERT_EQ(result.avg_rf.size(), queries_.size());
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    // The wire answer must be BIT-identical to a direct in-process query.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(result.avg_rf[i]),
              std::bit_cast<std::uint64_t>(snapshot_->query_one(queries_[i])))
        << "query " << i;
  }
}

TEST_F(RfServerTest, PublishOpcodeHotSwapsUnderALiveConnection) {
  start();
  RfClient client = connect();

  const QueryResult before = client.query(query_text_);
  EXPECT_EQ(before.snapshot_version, 1u);

  // Build an index over a DIFFERENT collection (same namespace), save it,
  // and swap the daemon onto it through the wire protocol.
  core::Bfhrf alt_engine(taxa_->size());
  alt_engine.build(alternate_);
  const std::string path = ::testing::TempDir() + "server_test_alt.bfh";
  core::save_bfhrf_file(alt_engine, path);

  const PublishResult pub = client.publish(path);
  EXPECT_EQ(pub.snapshot_version, 2u);

  const QueryResult after = client.query(query_text_);
  EXPECT_EQ(after.snapshot_version, 2u);
  ASSERT_EQ(after.avg_rf.size(), queries_.size());
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(after.avg_rf[i]),
              std::bit_cast<std::uint64_t>(alt_engine.query_one(queries_[i])));
  }
  std::remove(path.c_str());
}

TEST_F(RfServerTest, BadTreeTextIsBadRequestAndConnectionSurvives) {
  start();
  RfClient client = connect();
  try {
    (void)client.query({"((((not a tree"});
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.status(), Status::BadRequest);
  }
  // Same connection keeps working: the frame boundary was intact.
  client.ping();
  EXPECT_EQ(client.query(query_text_).avg_rf.size(), queries_.size());
}

TEST_F(RfServerTest, UnknownOpcodeIsBadRequestAndConnectionSurvives) {
  start();
  RfClient client = connect();
  const Bytes response = client.roundtrip_raw({0x7E, 0x01, 0x02});
  EXPECT_EQ(response_status(response), Status::BadRequest);
  client.ping();
}

TEST_F(RfServerTest, OversizedFrameClosesTheConnectionDeliberately) {
  ServeOptions opts;
  opts.max_frame_bytes = 256;
  start(opts);
  RfClient client = connect();
  // An announcement over the limit poisons the byte stream; the server
  // answers with a best-effort BadRequest and then drops the connection —
  // the NEXT exchange on it fails instead of hanging.
  const Bytes response = client.roundtrip_raw(Bytes(300, 0x41));
  EXPECT_EQ(response_status(response), Status::BadRequest);
  EXPECT_THROW((void)client.roundtrip_raw(encode(PingRequest{})), Error);
  // A fresh connection is unaffected.
  RfClient again = connect();
  again.ping();
}

TEST_F(RfServerTest, AdminOpcodesCanBeDisabled) {
  ServeOptions opts;
  opts.allow_admin = false;
  start(opts);
  RfClient client = connect();
  try {
    client.shutdown_server();
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.status(), Status::BadRequest);
  }
  EXPECT_TRUE(server_->running());
  client.ping();
}

TEST_F(RfServerTest, ShutdownOpcodeDrainsAndStops) {
  start();
  {
    RfClient client = connect();
    client.shutdown_server();  // Ok response arrives BEFORE the stop
  }
  server_->wait();
  EXPECT_FALSE(server_->running());
  server_->stop();
  EXPECT_THROW((RfClient{"127.0.0.1", server_->port()}), Error);
}

TEST_F(RfServerTest, InProcessPublishTagsSubsequentQueries) {
  start();
  RfClient client = connect();
  EXPECT_EQ(client.query(query_text_).snapshot_version, 1u);
  const std::uint64_t v2 =
      server_->publish(core::IndexSnapshot::build(taxa_, alternate_));
  EXPECT_EQ(v2, 2u);
  EXPECT_EQ(client.query(query_text_).snapshot_version, 2u);
  EXPECT_EQ(server_->current().version(), 2u);
}

TEST_F(RfServerTest, PipelinedRequestsAreAnsweredInRequestOrder) {
  // The protocol promises responses in request order per connection
  // (protocol.hpp) — a pipelining client decodes bodies by position, so a
  // swap would silently hand it wrong results. Fire a burst of requests
  // without reading any responses: with several workers racing, requests
  // routinely COMPLETE out of order, and the per-session reorder staging
  // in send_response must put the wire back in admission order. Request i
  // carries i+1 copies of the same query, so the response's count field
  // identifies which request it answers.
  ServeOptions opts;
  opts.workers = 4;
  start(opts);
  RfClient client = connect();

  constexpr std::size_t kPipelined = 32;
  const std::uint64_t expected =
      std::bit_cast<std::uint64_t>(snapshot_->query_one(queries_[0]));
  for (std::size_t i = 0; i < kPipelined; ++i) {
    client.send_frame(encode(
        QueryRequest{std::vector<std::string>(i + 1, query_text_[0])}));
  }
  for (std::size_t i = 0; i < kPipelined; ++i) {
    const QueryResult res = decode_query_result(client.recv_frame());
    ASSERT_EQ(res.avg_rf.size(), i + 1)
        << "response " << i << " answered out of request order";
    for (const double rf : res.avg_rf) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(rf), expected);
    }
  }
  client.ping();  // the connection is still in lockstep-usable shape
}

TEST_F(RfServerTest, PipelinedBadRequestKeepsItsSlotInTheResponseOrder) {
  // A malformed-but-framed request is answered by a worker like any other;
  // its error response must hold the same position in the wire order.
  ServeOptions opts;
  opts.workers = 4;
  start(opts);
  RfClient client = connect();
  client.send_frame(encode(QueryRequest{{query_text_[0]}}));
  client.send_frame({0x7E});  // unknown opcode -> BadRequest
  client.send_frame(encode(QueryRequest{{query_text_[0], query_text_[1]}}));
  EXPECT_EQ(decode_query_result(client.recv_frame()).avg_rf.size(), 1u);
  EXPECT_EQ(response_status(client.recv_frame()), Status::BadRequest);
  EXPECT_EQ(decode_query_result(client.recv_frame()).avg_rf.size(), 2u);
}

TEST_F(RfServerTest, ManySequentialConnections) {
  start();
  for (int i = 0; i < 20; ++i) {
    RfClient client = connect();
    client.ping();
    const QueryResult r = client.query({query_text_[0]});
    ASSERT_EQ(r.avg_rf.size(), 1u);
  }
}

}  // namespace
}  // namespace bfhrf::serve
