// Snapshot-swap stress: readers hammer the slot / the daemon while a
// writer publishes a stream of new versions. The oracle is bit-identity —
// every answer must match the direct in-process answer for the exact
// version that produced it — and the zero-drop contract: every issued
// request gets an Ok response (swaps never block or fail in-flight work).
//
// Runs under the parallel (TSan) tier via the serve-parallel label.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/serialize.hpp"
#include "core/snapshot.hpp"
#include "parallel/snapshot_slot.hpp"
#include "phylo/newick.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/test_util.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bfhrf::serve {
namespace {

// --- pure SnapshotSlot stress (no sockets; the RCU core alone) --------------

TEST(SnapshotSlotStress, ReadersAlwaysSeeAConsistentVersionedValue) {
  // The payload encodes the version that published it, so any tearing
  // between the value and the version tag is detectable.
  parallel::SnapshotSlot<std::uint64_t> slot;
  slot.publish(std::make_shared<const std::uint64_t>(1));

  constexpr int kReaders = 4;
  constexpr std::uint64_t kPublishes = 400;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto h = slot.acquire();
        ASSERT_TRUE(h.valid());
        ASSERT_EQ(*h, h.version());              // value/version atomicity
        ASSERT_GE(h.version(), last_version);    // monotonic publication
        last_version = h.version();
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Keep publishing until the readers have genuinely overlapped the
  // writes (not just a fixed count the scheduler could let finish before
  // any reader runs), with a generous cap as a hang backstop.
  std::uint64_t published = 1;
  while ((published < kPublishes ||
          reads.load(std::memory_order_relaxed) < 5000) &&
         published < 2'000'000) {
    ++published;
    ASSERT_EQ(slot.publish(std::make_shared<const std::uint64_t>(published)),
              published);
  }
  stop.store(true);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_GE(reads.load(), 5000u);
  EXPECT_GE(published, kPublishes);
}

TEST(SnapshotSlotStress, RetiredVersionsDrainWithTheirLastReader) {
  parallel::SnapshotSlot<int> slot;
  std::vector<std::weak_ptr<const int>> watch;
  std::vector<parallel::SnapshotSlot<int>::Handle> held;
  for (int i = 0; i < 16; ++i) {
    auto value = std::make_shared<const int>(i);
    watch.emplace_back(value);
    slot.publish(std::move(value));
    held.push_back(slot.acquire());  // one lease per version
  }
  // Every retired version is still pinned by its lease.
  for (int i = 0; i < 15; ++i) {
    EXPECT_FALSE(watch[static_cast<std::size_t>(i)].expired()) << i;
  }
  // Dropping leases newest-to-oldest drains them one by one.
  for (int i = 15; i >= 0; --i) {
    held.pop_back();
    const bool is_current = (i == 15);  // the slot itself pins the newest
    EXPECT_EQ(watch[static_cast<std::size_t>(i)].expired(), !is_current)
        << i;
  }
}

// --- snapshot construction over a live, shared namespace --------------------

TEST(ServeSwapStress, SnapshotBuildOverLiveNamespaceSkipsTheFreezeWrite) {
  const auto taxa = phylo::TaxonSet::make_numbered(8);
  util::Rng rng(test::fuzz_seed(0xF0F0));
  const std::vector<phylo::Tree> reference =
      test::random_collection(taxa, 6, 3, rng);
  const auto first = core::IndexSnapshot::build(taxa, reference);
  ASSERT_TRUE(taxa->frozen());

  // A reader hammers the not-found lookup path, which READS the frozen
  // flag with no synchronization against snapshot construction — exactly
  // what a query worker does while another worker services a Publish over
  // the current snapshot's namespace. Building more snapshots over the
  // already-frozen set must SKIP the freeze() write (a plain store), or
  // TSan flags the write/read race here.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_THROW((void)taxa->add_or_get("zz_unknown"), InvalidArgument);
    }
  });
  for (int i = 0; i < 50; ++i) {
    const auto snap = core::IndexSnapshot::build(taxa, reference);
    ASSERT_TRUE(taxa->frozen());
  }
  stop.store(true);
  reader.join();
}

// --- full-daemon stress: concurrent clients vs a publishing writer ----------

TEST(ServeSwapStress, ConcurrentClientsSeeBitIdenticalAnswersAcrossSwaps) {
  constexpr std::size_t kVariants = 3;
  constexpr std::size_t kSwaps = 12;   // >= 10 per the acceptance contract
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 50;

  const auto taxa = phylo::TaxonSet::make_numbered(16);
  util::Rng rng(test::fuzz_seed(0x51A9));
  SCOPED_TRACE("replay with --seed (see [fuzz] line above)");

  // kVariants distinct collections over ONE namespace; queries as text.
  std::vector<std::shared_ptr<const core::IndexSnapshot>> snaps;
  for (std::size_t k = 0; k < kVariants; ++k) {
    snaps.push_back(core::IndexSnapshot::build(
        taxa, test::random_collection(taxa, 10, 3 + k, rng),
        {}, "variant-" + std::to_string(k)));
  }
  std::vector<phylo::Tree> queries = test::random_collection(taxa, 4, 6, rng);
  std::vector<std::string> query_text;
  for (const phylo::Tree& q : queries) {
    query_text.push_back(phylo::write_newick(q));
  }

  // The oracle: expected bit patterns per variant per query, computed
  // directly (no server involved).
  std::vector<std::vector<std::uint64_t>> expected(kVariants);
  for (std::size_t k = 0; k < kVariants; ++k) {
    for (const phylo::Tree& q : queries) {
      expected[k].push_back(
          std::bit_cast<std::uint64_t>(snaps[k]->query_one(q)));
    }
  }

  // Saved copies of each variant, so the writer can also exercise the
  // publish_file path: IndexSnapshot::open over the LIVE snapshot's shared
  // TaxonSet while readers parse queries against it — the freeze() write
  // skip in IndexSnapshot's constructor is what keeps that race-free
  // (TSan guards the contract here).
  std::vector<std::string> paths;
  for (std::size_t k = 0; k < kVariants; ++k) {
    paths.push_back(::testing::TempDir() + "swap_stress_" +
                    std::to_string(k) + ".bfh");
    core::save_bfhrf_file(snaps[k]->engine(), paths[k]);
  }

  ServeOptions opts;
  opts.workers = 3;
  RfServer server(opts);
  server.publish(snaps[0]);  // version 1 -> variant 0
  server.start();

  std::atomic<bool> failed{false};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      RfClient client("127.0.0.1", server.port());
      for (int r = 0; r < kRequestsPerClient; ++r) {
        if (r % 8 == 7) {
          // An unknown taxon takes the not-found path through
          // TaxonSet::add_or_get, which READS frozen_ — concurrently with
          // the writer's publish_file snapshot construction over the same
          // namespace. TSan checks that construction never re-writes the
          // frozen flag on a live set.
          try {
            (void)client.query({"(t0,(zz_not_a_taxon,t1));"});
            failed.store(true);
            FAIL() << "unknown taxon was accepted";
          } catch (const ServeError& e) {
            ASSERT_EQ(e.status(), Status::BadRequest);
          }
        }
        const QueryResult res = client.query(query_text);
        // Versions are assigned sequentially from 1 and published
        // cyclically, so version v served variant (v-1) % kVariants.
        const std::size_t k =
            static_cast<std::size_t>(res.snapshot_version - 1) % kVariants;
        ASSERT_EQ(res.avg_rf.size(), query_text.size());
        for (std::size_t i = 0; i < res.avg_rf.size(); ++i) {
          const std::uint64_t got =
              std::bit_cast<std::uint64_t>(res.avg_rf[i]);
          if (got != expected[k][i]) {
            failed.store(true);
            FAIL() << "version " << res.snapshot_version << " query " << i
                   << ": bits " << got << " != " << expected[k][i];
          }
        }
        answered.fetch_add(1);
      }
    });
  }

  // Writer: publish swaps while the clients are in flight, alternating
  // prebuilt snapshots with file loads over the live namespace. Loaded
  // engines answer bit-identically to built ones (the persistence oracle's
  // contract), so the version -> variant mapping is unchanged.
  for (std::size_t s = 1; s <= kSwaps; ++s) {
    if (s % 2 == 0) {
      server.publish_file(paths[s % kVariants]);  // version s+1
    } else {
      server.publish(snaps[s % kVariants]);  // version s+1 -> (s % kVariants)
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  for (std::thread& t : clients) {
    t.join();
  }
  server.stop();
  for (const std::string& path : paths) {
    std::remove(path.c_str());
  }

  EXPECT_FALSE(failed.load());
  // Zero dropped: every single request came back Ok (a ShuttingDown or
  // transport error would have thrown inside the client thread).
  EXPECT_EQ(answered.load(),
            static_cast<std::uint64_t>(kClients) * kRequestsPerClient);
  EXPECT_GE(server.current().version(), kSwaps + 1);
}

}  // namespace
}  // namespace bfhrf::serve
