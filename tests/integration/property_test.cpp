// Cross-engine property suite: for randomized (n, r, q, topology class,
// thread count) configurations, every RF engine in the library must return
// exactly the same *full pairwise matrix* — not just the average vectors —
// via the qc differential oracle. This is the paper's §III-C accuracy
// claim, checked mechanically. Seeds follow the BFHRF_FUZZ_SEED / --seed
// replay convention.
#include <gtest/gtest.h>

#include <tuple>

#include "core/bfhrf.hpp"
#include "core/day.hpp"
#include "core/hashrf.hpp"
#include "core/sequential_rf.hpp"
#include "qc/oracle.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

struct Config {
  std::size_t n;
  std::size_t r;
  std::size_t moves;
  bool multifurcate;
};

class EngineEquivalence : public ::testing::TestWithParam<Config> {};

std::vector<Tree> make_collection(const phylo::TaxonSetPtr& taxa,
                                  const Config& cfg, util::Rng& rng) {
  if (!cfg.multifurcate) {
    return test::random_collection(taxa, cfg.r, cfg.moves, rng);
  }
  std::vector<Tree> trees;
  trees.reserve(cfg.r);
  for (std::size_t i = 0; i < cfg.r; ++i) {
    trees.push_back(sim::multifurcating_tree(taxa, rng, 0.25));
  }
  return trees;
}

TEST_P(EngineEquivalence, FullPairwiseMatricesAgreeBitForBit) {
  // Every engine family and mode, cross-checked cell-by-cell against the
  // sequential BipartitionSet oracle across thread counts.
  const Config cfg = GetParam();
  const auto taxa = TaxonSet::make_numbered(cfg.n);
  const std::uint64_t seed = test::fuzz_seed(cfg.n * 1000 + cfg.r);
  SCOPED_TRACE("seed=" + test::hex_seed(seed));
  util::Rng rng(seed);
  const auto trees = make_collection(taxa, cfg, rng);

  qc::OracleOptions opts;
  opts.seed = seed;
  const qc::OracleReport report = qc::cross_check(trees, {}, opts);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.cells_checked, 0u);
}

TEST_P(EngineEquivalence, SplitWorkloadMatricesAgreeBitForBit) {
  // Same oracle, but with a genuine Q-vs-R split so the query paths see a
  // reference hash they did not build.
  const Config cfg = GetParam();
  const auto taxa = TaxonSet::make_numbered(cfg.n);
  const std::uint64_t seed = test::fuzz_seed(cfg.n * 1000 + cfg.r + 7);
  SCOPED_TRACE("seed=" + test::hex_seed(seed));
  util::Rng rng(seed);
  const auto reference = make_collection(taxa, cfg, rng);
  const auto queries = make_collection(taxa, cfg, rng);

  qc::OracleOptions opts;
  opts.seed = seed;
  const qc::OracleReport report = qc::cross_check(reference, queries, opts);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_P(EngineEquivalence, AllEnginesProduceIdenticalAverages) {
  const Config cfg = GetParam();
  const auto taxa = TaxonSet::make_numbered(cfg.n);
  util::Rng rng(cfg.n * 1000 + cfg.r);
  const auto trees = make_collection(taxa, cfg, rng);

  const auto ds = core::sequential_avg_rf(trees, trees);
  const auto dsmp = core::sequential_avg_rf(trees, trees, {.threads = 4});
  const auto hashrf = core::hash_rf(trees);
  const auto bfh1 = core::bfhrf_average_rf(trees, trees, {.threads = 1});
  const auto bfh4 = core::bfhrf_average_rf(trees, trees, {.threads = 4});

  for (std::size_t i = 0; i < trees.size(); ++i) {
    ASSERT_DOUBLE_EQ(ds.avg_rf[i], dsmp.avg_rf[i]) << "tree " << i;
    ASSERT_DOUBLE_EQ(ds.avg_rf[i], hashrf.avg_rf[i]) << "tree " << i;
    ASSERT_DOUBLE_EQ(ds.avg_rf[i], bfh1[i]) << "tree " << i;
    ASSERT_DOUBLE_EQ(ds.avg_rf[i], bfh4[i]) << "tree " << i;
  }
}

TEST_P(EngineEquivalence, DayEngineAgreesOnBinaryTrees) {
  const Config cfg = GetParam();
  if (cfg.multifurcate) {
    GTEST_SKIP() << "Day engine covered by binary configs here";
  }
  const auto taxa = TaxonSet::make_numbered(cfg.n);
  util::Rng rng(cfg.n * 77 + cfg.r);
  const auto trees = make_collection(taxa, cfg, rng);

  const auto ds = core::sequential_avg_rf(trees, trees);
  const auto day = core::sequential_avg_rf(
      trees, trees, {.engine = core::PairwiseEngine::Day});
  for (std::size_t i = 0; i < trees.size(); ++i) {
    ASSERT_DOUBLE_EQ(ds.avg_rf[i], day.avg_rf[i]) << "tree " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, EngineEquivalence,
    ::testing::Values(Config{5, 6, 2, false}, Config{8, 10, 3, false},
                      Config{12, 14, 4, false}, Config{16, 10, 6, false},
                      Config{33, 8, 5, false}, Config{48, 6, 4, false},
                      Config{64, 6, 4, false}, Config{65, 6, 4, false},
                      Config{100, 5, 8, false}, Config{10, 12, 0, false},
                      Config{12, 10, 3, true}, Config{20, 8, 0, true},
                      Config{70, 6, 0, true}),
    [](const ::testing::TestParamInfo<Config>& param_info) {
      const Config& c = param_info.param;
      return "n" + std::to_string(c.n) + "_r" + std::to_string(c.r) +
             "_m" + std::to_string(c.moves) +
             (c.multifurcate ? "_multi" : "_bin");
    });

TEST(PropertyTest, BfhrfSumIdentityHoldsOnIndependentTrees) {
  // Σ_i avgRF(T_i) computed by BFHRF equals the mean of the full pairwise
  // matrix computed by HashRF (a global cross-check on the accounting).
  const auto taxa = TaxonSet::make_numbered(22);
  util::Rng rng(123);
  const auto trees = test::independent_collection(taxa, 18, rng);
  const auto bfh = core::bfhrf_average_rf(trees, trees);
  const auto hashrf = core::hash_rf(trees);

  double bfh_total = 0;
  double matrix_total = 0;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    bfh_total += bfh[i];
    for (std::size_t j = 0; j < trees.size(); ++j) {
      matrix_total += hashrf.matrix.at(i, j);
    }
  }
  EXPECT_NEAR(bfh_total, matrix_total / static_cast<double>(trees.size()),
              1e-9);
}

TEST(PropertyTest, ReferenceOrderIsIrrelevant) {
  const auto taxa = TaxonSet::make_numbered(14);
  util::Rng rng(321);
  auto trees = test::random_collection(taxa, 20, 4, rng);
  const auto queries = test::random_collection(taxa, 5, 5, rng);
  const auto before = core::bfhrf_average_rf(queries, trees);
  rng.shuffle(trees);
  const auto after = core::bfhrf_average_rf(queries, trees);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(before[i], after[i]);
  }
}

TEST(PropertyTest, DuplicatingReferenceKeepsAverages) {
  // avg over [R, R] equals avg over R — frequency doubling cancels.
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(55);
  const auto trees = test::random_collection(taxa, 10, 3, rng);
  std::vector<Tree> doubled = trees;
  doubled.insert(doubled.end(), trees.begin(), trees.end());
  const auto queries = test::random_collection(taxa, 4, 4, rng);
  const auto single = core::bfhrf_average_rf(queries, trees);
  const auto twice = core::bfhrf_average_rf(queries, doubled);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(single[i], twice[i]);
  }
}

TEST(PropertyTest, AddingPerfectMatchLowersAverage) {
  const auto taxa = TaxonSet::make_numbered(14);
  util::Rng rng(77);
  const auto trees = test::independent_collection(taxa, 10, rng);
  const Tree query = sim::uniform_tree(taxa, rng);

  const auto base = core::bfhrf_average_rf({&query, 1}, trees);
  std::vector<Tree> extended = trees;
  extended.push_back(query);  // the query itself joins R
  const auto lowered = core::bfhrf_average_rf({&query, 1}, extended);
  EXPECT_LT(lowered[0], base[0]);
}

}  // namespace
}  // namespace bfhrf
