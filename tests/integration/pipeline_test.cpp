// End-to-end pipelines: Newick files on disk -> streaming sources ->
// engines -> identical answers across every implementation.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include <unistd.h>

#include "core/bfhrf.hpp"
#include "core/day.hpp"
#include "core/hashrf.hpp"
#include "core/sequential_rf.hpp"
#include "core/tree_source.hpp"
#include "phylo/newick.hpp"
#include "sim/datasets.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf {
namespace {

using core::Bfhrf;
using phylo::TaxonSet;
using phylo::Tree;

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    taxa_ = TaxonSet::make_numbered(18);
    util::Rng rng(99);
    reference_ = test::random_collection(taxa_, 40, 4, rng, true);
    queries_ = test::random_collection(taxa_, 15, 6, rng, true);
    // ctest runs each TEST_F as its own process, concurrently; the paths
    // must be per-process or parallel runs race on the shared tmp dir.
    const std::string tag = std::to_string(::getpid());
    ref_path_ = dir_ + "/bfhrf_ref_" + tag + ".nwk";
    query_path_ = dir_ + "/bfhrf_query_" + tag + ".nwk";
    phylo::write_newick_file(ref_path_, reference_);
    phylo::write_newick_file(query_path_, queries_);
  }

  std::string dir_;
  phylo::TaxonSetPtr taxa_;
  std::vector<Tree> reference_;
  std::vector<Tree> queries_;
  std::string ref_path_;
  std::string query_path_;
};

TEST_F(PipelineTest, FileStreamingMatchesInMemory) {
  Bfhrf from_memory(taxa_->size(), {.threads = 2});
  from_memory.build(reference_);
  const auto want = from_memory.query(queries_);

  Bfhrf from_files(taxa_->size(), {.threads = 2, .batch_size = 8});
  core::FileTreeSource ref_source(ref_path_, taxa_);
  from_files.build(ref_source);
  core::FileTreeSource query_source(query_path_, taxa_);
  const auto got = from_files.query(query_source);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], want[i]);
  }
}

TEST_F(PipelineTest, FileSourceResetsCleanly) {
  core::FileTreeSource source(ref_path_, taxa_);
  std::size_t first_pass = 0;
  Tree t;
  while (source.next(t)) {
    ++first_pass;
  }
  source.reset();
  std::size_t second_pass = 0;
  while (source.next(t)) {
    ++second_pass;
  }
  EXPECT_EQ(first_pass, reference_.size());
  EXPECT_EQ(second_pass, reference_.size());
}

TEST_F(PipelineTest, AllEnginesAgreeOnQIsR) {
  // DS == DSMP == HashRF row-means == BFHRF, on the same file-backed data.
  const auto ds = core::sequential_avg_rf(reference_, reference_,
                                          {.threads = 1});
  const auto dsmp = core::sequential_avg_rf(reference_, reference_,
                                            {.threads = 4});
  const auto day = core::sequential_avg_rf(
      reference_, reference_,
      {.threads = 1, .engine = core::PairwiseEngine::Day});
  const auto hashrf = core::hash_rf(reference_);
  const auto bfh = core::bfhrf_average_rf(reference_, reference_,
                                          {.threads = 2});

  for (std::size_t i = 0; i < reference_.size(); ++i) {
    EXPECT_DOUBLE_EQ(ds.avg_rf[i], dsmp.avg_rf[i]) << i;
    EXPECT_DOUBLE_EQ(ds.avg_rf[i], day.avg_rf[i]) << i;
    EXPECT_DOUBLE_EQ(ds.avg_rf[i], hashrf.avg_rf[i]) << i;
    EXPECT_DOUBLE_EQ(ds.avg_rf[i], bfh[i]) << i;
  }
}

TEST_F(PipelineTest, AllEnginesAgreeOnDisjointQandR) {
  // HashRF cannot do different Q/R (the paper's §VII-D complaint); the
  // other three must agree.
  const auto ds = core::sequential_avg_rf(queries_, reference_);
  const auto day = core::sequential_avg_rf(
      queries_, reference_, {.engine = core::PairwiseEngine::Day});
  const auto bfh = core::bfhrf_average_rf(queries_, reference_);
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    EXPECT_DOUBLE_EQ(ds.avg_rf[i], day.avg_rf[i]) << i;
    EXPECT_DOUBLE_EQ(ds.avg_rf[i], bfh[i]) << i;
  }
}

TEST_F(PipelineTest, StreamingSequentialMatchesSpan) {
  core::FileTreeSource query_source(query_path_, taxa_);
  const auto streamed =
      core::sequential_avg_rf(query_source, reference_, {.threads = 2});
  const auto direct = core::sequential_avg_rf(queries_, reference_);
  ASSERT_EQ(streamed.avg_rf.size(), direct.avg_rf.size());
  for (std::size_t i = 0; i < direct.avg_rf.size(); ++i) {
    EXPECT_DOUBLE_EQ(streamed.avg_rf[i], direct.avg_rf[i]);
  }
}

TEST_F(PipelineTest, FrozenTaxaCatchForeignTrees) {
  auto frozen = std::make_shared<TaxonSet>(taxa_->labels());
  frozen->freeze();
  core::FileTreeSource source(ref_path_, frozen);
  Tree t;
  EXPECT_TRUE(source.next(t));  // known taxa stream fine

  const std::string bad_path =
      dir_ + "/bfhrf_bad_" + std::to_string(::getpid()) + ".nwk";
  {
    std::ofstream out(bad_path);
    out << "((t0,t1),(t2,WRONG));\n";
  }
  core::FileTreeSource bad(bad_path, frozen);
  EXPECT_THROW((void)bad.next(t), InvalidArgument);
}

TEST(PipelineDatasetTest, GeneratedDatasetThroughAllEngines) {
  const sim::Dataset ds = sim::generate(sim::variable_trees(25));
  const auto seq = core::sequential_avg_rf(ds.trees, ds.trees);
  const auto hashrf = core::hash_rf(ds.trees);
  const auto bfh = core::bfhrf_average_rf(ds.trees, ds.trees);
  for (std::size_t i = 0; i < ds.trees.size(); ++i) {
    EXPECT_DOUBLE_EQ(seq.avg_rf[i], hashrf.avg_rf[i]);
    EXPECT_DOUBLE_EQ(seq.avg_rf[i], bfh[i]);
  }
}

TEST(PipelineDatasetTest, UnweightedInsectLikeParsesEverywhere) {
  // The property that broke the original HashRF: trees without branch
  // lengths. Every engine here must handle them.
  const sim::Dataset ds = sim::generate(sim::insect_like(12));
  const auto bfh = core::bfhrf_average_rf(ds.trees, ds.trees);
  const auto hashrf = core::hash_rf(ds.trees);
  for (std::size_t i = 0; i < ds.trees.size(); ++i) {
    EXPECT_DOUBLE_EQ(bfh[i], hashrf.avg_rf[i]);
  }
}

TEST(PipelineScaleTest, MediumCollectionStaysExact) {
  // A larger smoke test: n=48 avian-like shape, r=300, Q==R.
  const sim::Dataset ds = sim::generate(sim::avian_like(300));
  core::Bfhrf engine(ds.taxa->size(), {.threads = 4});
  engine.build(ds.trees);
  const auto bfh = engine.query(ds.trees);

  // Spot-check 10 trees against brute force.
  util::Rng rng(7);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t i = rng.below(ds.trees.size());
    double sum = 0;
    core::DayTable table(ds.trees[i]);
    for (const auto& r : ds.trees) {
      sum += static_cast<double>(table.rf_against(r));
    }
    EXPECT_DOUBLE_EQ(bfh[i], sum / static_cast<double>(ds.trees.size()));
  }
}

}  // namespace
}  // namespace bfhrf
