// Robustness ("fuzz-lite") suite: randomly corrupted inputs must either
// parse to a valid tree or throw a typed bfhrf::Error — never crash,
// hang, or corrupt state. Every test draws its seed through
// test::fuzz_seed, so the defaults are deterministic yet any failure can
// be replayed with `--seed=N` (or BFHRF_FUZZ_SEED); the seed is printed
// up front and attached to assertion traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/bfhrf.hpp"
#include "core/frequency_hash.hpp"
#include "phylo/newick.hpp"
#include "phylo/nexus.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf {
namespace {

/// Apply `edits` random single-character mutations (replace/insert/delete).
std::string mutate(std::string s, std::size_t edits, util::Rng& rng) {
  static constexpr char kAlphabet[] = "(),;:'[]ABC012. \t_-e";
  for (std::size_t e = 0; e < edits && !s.empty(); ++e) {
    const std::size_t pos = rng.below(s.size());
    switch (rng.below(3)) {
      case 0:
        s[pos] = kAlphabet[rng.below(sizeof kAlphabet - 1)];
        break;
      case 1:
        s.insert(pos, 1, kAlphabet[rng.below(sizeof kAlphabet - 1)]);
        break;
      default:
        s.erase(pos, 1);
        break;
    }
  }
  return s;
}

TEST(FuzzTest, MutatedNewickNeverCrashes) {
  const std::uint64_t seed = test::fuzz_seed(0xF422);
  SCOPED_TRACE("seed=" + test::hex_seed(seed));
  util::Rng rng(seed);
  const auto taxa = phylo::TaxonSet::make_numbered(12);
  const std::string base =
      phylo::write_newick(sim::yule_tree(taxa, rng));

  std::size_t parsed = 0;
  std::size_t rejected = 0;
  for (int rep = 0; rep < 2000; ++rep) {
    const std::string input = mutate(base, 1 + rng.below(6), rng);
    auto scratch = std::make_shared<phylo::TaxonSet>();
    try {
      const phylo::Tree t = phylo::parse_newick(input, scratch);
      t.validate();  // anything accepted must be structurally sound
      ++parsed;
    } catch (const Error&) {
      ++rejected;
    }
  }
  // Both outcomes must occur — all-rejected would mean the mutator is too
  // harsh to exercise the accept path, all-accepted that errors are eaten.
  EXPECT_GT(parsed, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(FuzzTest, MutatedNexusNeverCrashes) {
  const std::uint64_t seed = test::fuzz_seed(0xF423);
  SCOPED_TRACE("seed=" + test::hex_seed(seed));
  util::Rng rng(seed);
  const std::string base =
      "#NEXUS\nBEGIN TAXA;\n TAXLABELS A B C D E;\nEND;\n"
      "BEGIN TREES;\n TRANSLATE 1 A, 2 B, 3 C, 4 D, 5 E;\n"
      " TREE t = [&U] ((1,2),(3,4),5);\nEND;\n";
  std::size_t parsed = 0;
  std::size_t rejected = 0;
  for (int rep = 0; rep < 1000; ++rep) {
    const std::string input = mutate(base, 1 + rng.below(8), rng);
    std::istringstream in(input);
    try {
      const phylo::NexusData data = phylo::read_nexus(in);
      for (const auto& t : data.trees) {
        EXPECT_GT(t.num_leaves(), 0u);
      }
      ++parsed;
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_GT(parsed, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(FuzzTest, TruncatedNewickAlwaysRejectedOrValid) {
  const std::uint64_t seed = test::fuzz_seed(0xF424);
  SCOPED_TRACE("seed=" + test::hex_seed(seed));
  util::Rng rng(seed);
  const auto taxa = phylo::TaxonSet::make_numbered(20);
  const std::string base = phylo::write_newick(
      sim::yule_tree(taxa, rng, sim::GeneratorOptions{.branch_lengths = true}));
  for (std::size_t cut = 0; cut < base.size(); ++cut) {
    auto scratch = std::make_shared<phylo::TaxonSet>();
    try {
      const phylo::Tree t =
          phylo::parse_newick(base.substr(0, cut), scratch);
      t.validate();
    } catch (const Error&) {
      // expected for most prefixes
    }
  }
}

TEST(FuzzTest, GarbageBytesRejected) {
  const std::uint64_t seed = test::fuzz_seed(0xF425);
  SCOPED_TRACE("seed=" + test::hex_seed(seed));
  util::Rng rng(seed);
  for (int rep = 0; rep < 500; ++rep) {
    std::string garbage(1 + rng.below(64), '\0');
    for (auto& c : garbage) {
      c = static_cast<char>(32 + rng.below(95));
    }
    auto scratch = std::make_shared<phylo::TaxonSet>();
    try {
      const phylo::Tree t = phylo::parse_newick(garbage, scratch);
      t.validate();
    } catch (const Error&) {
    }
  }
}

TEST(FuzzTest, EngineSurvivesAdversarialCollections) {
  // Collections mixing tiny trees, stars, caterpillars and multifurcations
  // over one namespace: every engine path must stay exact or throw typed.
  const auto taxa = phylo::TaxonSet::make_numbered(9);
  const std::uint64_t seed = test::fuzz_seed(0xF426);
  SCOPED_TRACE("seed=" + test::hex_seed(seed));
  util::Rng rng(seed);
  std::vector<phylo::Tree> zoo;
  zoo.push_back(sim::caterpillar_tree(taxa, rng));
  zoo.push_back(sim::multifurcating_tree(taxa, rng, 0.9));
  zoo.push_back(sim::multifurcating_tree(taxa, rng, 0.0));
  {
    phylo::Tree star(taxa);
    const auto root = star.add_root();
    for (phylo::TaxonId i = 0; i < 9; ++i) {
      star.add_leaf(root, i);
    }
    zoo.push_back(std::move(star));
  }
  const auto avg = core::bfhrf_average_rf(zoo, zoo, {.threads = 2});
  ASSERT_EQ(avg.size(), zoo.size());
  for (const double v : avg) {
    EXPECT_GE(v, 0.0);
  }
  // Compressed path agrees on the zoo too.
  const auto comp =
      core::bfhrf_average_rf(zoo, zoo, {.compressed_keys = true});
  for (std::size_t i = 0; i < avg.size(); ++i) {
    EXPECT_DOUBLE_EQ(comp[i], avg[i]);
  }
}

TEST(FuzzTest, FrequencyHashInvariantsUnderRandomOps) {
  // The group-probed table is insert-only (no tombstones), so a random mix
  // of single adds, weighted adds, batched adds, reserves, and merges must
  // keep four invariants at every step: load factor never exceeds 0.7,
  // every mirrored key looks up to its exact count, for_each visits each
  // unique key exactly once, and counts never decrease.
  const std::uint64_t seed = test::fuzz_seed(0xF425);
  SCOPED_TRACE("seed=" + test::hex_seed(seed));
  util::Rng rng(seed);
  const std::size_t n_bits = 80;  // two words: exercises the memcmp verify

  core::FrequencyHash hash(n_bits);
  std::map<std::string, std::uint64_t> mirror;
  std::uint64_t total = 0;

  const auto random_key = [&] {
    util::DynamicBitset b(n_bits);
    const std::size_t ones = 1 + rng.below(5);
    for (std::size_t j = 0; j < ones; ++j) {
      b.set(rng.below(n_bits));
    }
    return b;
  };

  for (int op = 0; op < 600; ++op) {
    switch (rng.below(5)) {
      case 0: {  // single add
        const auto k = random_key();
        hash.add(k.words());
        mirror[k.to_string()] += 1;
        total += 1;
        break;
      }
      case 1: {  // weighted add (weight a pure function of the key)
        const auto k = random_key();
        const auto count = static_cast<std::uint32_t>(1 + rng.below(4));
        hash.add_weighted(k.words(), count,
                          0.5 + static_cast<double>(k.count()));
        mirror[k.to_string()] += count;
        total += count;
        break;
      }
      case 2: {  // batched add
        const std::size_t batch = 1 + rng.below(64);
        std::vector<std::uint64_t> arena;
        for (std::size_t i = 0; i < batch; ++i) {
          const auto k = random_key();
          arena.insert(arena.end(), k.words().begin(), k.words().end());
          mirror[k.to_string()] += 1;
        }
        hash.add_many(arena.data(), batch, nullptr);
        total += batch;
        break;
      }
      case 3: {  // reserve must never disturb contents
        hash.reserve(hash.unique_count() + rng.below(128));
        break;
      }
      default: {  // merge in a small side table
        core::FrequencyHash side(n_bits);
        const std::size_t adds = 1 + rng.below(16);
        for (std::size_t i = 0; i < adds; ++i) {
          const auto k = random_key();
          side.add(k.words());
          mirror[k.to_string()] += 1;
        }
        hash.merge(side);
        total += adds;
        break;
      }
    }
    ASSERT_LE(hash.load_factor(), 0.7) << "op=" << op;
    ASSERT_EQ(hash.total_count(), total) << "op=" << op;
    ASSERT_EQ(hash.unique_count(), mirror.size()) << "op=" << op;
  }

  // Mirror-exact lookups and a one-visit-per-key iteration image.
  std::size_t visited = 0;
  hash.for_each([&](util::ConstWordSpan key, std::uint32_t count) {
    ++visited;
    const auto s = util::DynamicBitset(n_bits, key).to_string();
    const auto it = mirror.find(s);
    ASSERT_NE(it, mirror.end());
    EXPECT_EQ(count, it->second);
  });
  EXPECT_EQ(visited, hash.unique_count());
  for (const auto& [s, count] : mirror) {
    EXPECT_EQ(hash.frequency(util::DynamicBitset::from_string(s).words()),
              count);
  }
}

}  // namespace
}  // namespace bfhrf
