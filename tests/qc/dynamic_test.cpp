// Delta-vs-rebuild oracle self-tests (qc/dynamic.hpp): the randomized
// add/remove/replace/compact sequences must pass on both store kinds, the
// report must carry the replay seed, and the multi-threaded probe path
// must agree with the single-threaded one.
#include "qc/dynamic.hpp"

#include <gtest/gtest.h>

#include <string>

namespace bfhrf::qc {
namespace {

DynamicOracleOptions small_opts() {
  DynamicOracleOptions opts;
  opts.sequences = 2;
  opts.n = 10;
  opts.initial_trees = 4;
  opts.ops = 10;
  opts.probes = 4;
  return opts;
}

TEST(DynamicOracleTest, PassesOnBothStoreKinds) {
  for (const bool compressed : {false, true}) {
    DynamicOracleOptions opts = small_opts();
    opts.compressed_keys = compressed;
    const DynamicOracleReport report = check_dynamic_equivalence(opts);
    EXPECT_TRUE(report.ok())
        << (report.failures.empty() ? "" : report.failures.front());
    EXPECT_EQ(report.sequences_run, opts.sequences);
    EXPECT_EQ(report.operations, opts.sequences * opts.ops);
    // One equivalence check after init plus one per op, per sequence.
    EXPECT_EQ(report.checks, opts.sequences * (opts.ops + 1));
  }
}

TEST(DynamicOracleTest, MultithreadedProbesAgree) {
  DynamicOracleOptions opts = small_opts();
  opts.threads = 4;
  const DynamicOracleReport report = check_dynamic_equivalence(opts);
  EXPECT_TRUE(report.ok())
      << (report.failures.empty() ? "" : report.failures.front());
}

TEST(DynamicOracleTest, SummaryCarriesReplaySeed) {
  DynamicOracleOptions opts = small_opts();
  opts.sequences = 1;
  opts.ops = 2;
  opts.seed = 0xABCD;
  const DynamicOracleReport report = check_dynamic_equivalence(opts);
  EXPECT_NE(report.summary().find("0xABCD"), std::string::npos)
      << report.summary();
  EXPECT_EQ(report.seed, 0xABCDu);
}

TEST(DynamicOracleTest, TrivialSplitsModeAlsoPasses) {
  DynamicOracleOptions opts = small_opts();
  opts.sequences = 1;
  opts.include_trivial = true;
  const DynamicOracleReport report = check_dynamic_equivalence(opts);
  EXPECT_TRUE(report.ok())
      << (report.failures.empty() ? "" : report.failures.front());
}

}  // namespace
}  // namespace bfhrf::qc
