#include "qc/harness.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "phylo/newick.hpp"
#include "qc/artifact.hpp"
#include "support/test_util.hpp"
#include "util/error.hpp"

namespace bfhrf::qc {
namespace {

using phylo::Tree;

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(HarnessTest, GeneratedWorkloadsPassEveryKind) {
  for (const WorkloadKind kind :
       {WorkloadKind::Clustered, WorkloadKind::Independent,
        WorkloadKind::Multifurcating, WorkloadKind::Mixed}) {
    HarnessOptions opts;
    opts.n = 10;
    opts.r = 6;
    opts.q = 4;
    opts.seed = test::fuzz_seed(0xa1 + static_cast<std::uint64_t>(kind));
    opts.kind = kind;
    SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(kind)) +
                 " seed=" + test::hex_seed(opts.seed));
    const HarnessResult result = verify_generated(opts);
    EXPECT_TRUE(result.passed) << result.summary();
    EXPECT_NE(result.summary().find("PASS"), std::string::npos);
  }
}

TEST(HarnessTest, WorkloadsAreDeterministicInTheSeed) {
  HarnessOptions opts;
  opts.n = 9;
  opts.r = 5;
  opts.q = 3;
  opts.seed = 0xD5;
  const Workload a = make_workload(opts);
  const Workload b = make_workload(opts);
  ASSERT_EQ(a.reference.size(), b.reference.size());
  for (std::size_t i = 0; i < a.reference.size(); ++i) {
    EXPECT_EQ(phylo::write_newick(a.reference[i]),
              phylo::write_newick(b.reference[i]));
  }
  opts.seed = 0xD6;
  const Workload c = make_workload(opts);
  bool any_differ = false;
  for (std::size_t i = 0; i < a.reference.size(); ++i) {
    any_differ = any_differ || phylo::write_newick(a.reference[i]) !=
                                   phylo::write_newick(c.reference[i]);
  }
  EXPECT_TRUE(any_differ);
}

TEST(HarnessTest, WorkloadValidation) {
  HarnessOptions opts;
  opts.n = 3;
  EXPECT_THROW(make_workload(opts), InvalidArgument);
  opts.n = 8;
  opts.r = 0;
  EXPECT_THROW(make_workload(opts), InvalidArgument);
}

TEST(HarnessTest, VerifyCollectionHandlesTheSplitSetting) {
  HarnessOptions opts;
  opts.n = 10;
  opts.r = 5;
  opts.q = 4;
  opts.seed = 0xD7;
  const Workload w = make_workload(opts);
  const HarnessResult result =
      verify_collection(w.reference, w.queries, opts);
  EXPECT_TRUE(result.passed) << result.summary();
  EXPECT_TRUE(result.messages.empty());
  EXPECT_TRUE(result.artifact_path.empty());
}

TEST(ArtifactTest, RoundTripsAllFields) {
  HarnessOptions wopts;
  wopts.n = 8;
  wopts.r = 3;
  wopts.q = 0;
  wopts.seed = 0xD8;
  const Workload w = make_workload(wopts);

  Artifact a;
  a.seed = 0x1F2E;
  a.thread_counts = {1, 4};
  a.include_trivial = true;
  a.note = "first divergence\nsecond line";  // newline must be sanitized
  a.taxa = w.taxa;
  a.trees = w.reference;

  const std::string path = temp_path("artifact_roundtrip.repro");
  write_artifact(path, a);
  const Artifact back = read_artifact(path);

  EXPECT_EQ(back.seed, 0x1F2EULL);
  EXPECT_EQ(back.thread_counts, (std::vector<std::size_t>{1, 4}));
  EXPECT_TRUE(back.include_trivial);
  EXPECT_EQ(back.note, "first divergence second line");
  ASSERT_EQ(back.taxa->size(), w.taxa->size());
  ASSERT_EQ(back.trees.size(), a.trees.size());
  for (std::size_t i = 0; i < a.trees.size(); ++i) {
    EXPECT_EQ(phylo::write_newick(back.trees[i]),
              phylo::write_newick(a.trees[i]));
  }
  std::remove(path.c_str());
}

TEST(ArtifactTest, RejectsMalformedFiles) {
  const std::string path = temp_path("artifact_bad.repro");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# comment\nbogus_key 1\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(read_artifact(path), ParseError);
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("seed 0x1\n", f);  // no trees
    std::fclose(f);
  }
  EXPECT_THROW(read_artifact(path), ParseError);
  std::remove(path.c_str());
  EXPECT_THROW(read_artifact(path), Error);  // missing file
}

TEST(ArtifactTest, ReplayVerifiesTheStoredCollection) {
  HarnessOptions wopts;
  wopts.n = 9;
  wopts.r = 4;
  wopts.q = 0;
  wopts.seed = 0xD9;
  const Workload w = make_workload(wopts);

  Artifact a;
  a.seed = wopts.seed;
  a.taxa = w.taxa;
  a.trees = w.reference;
  const std::string path = temp_path("artifact_replay.repro");
  write_artifact(path, a);

  // A healthy library: replaying a healthy collection passes, and the
  // artifact's configuration is what runs.
  const HarnessResult result = replay_artifact(path);
  EXPECT_TRUE(result.passed) << result.summary();
  EXPECT_EQ(result.oracle.seed, wopts.seed);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bfhrf::qc
