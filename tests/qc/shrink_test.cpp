#include "qc/shrink.hpp"

#include <gtest/gtest.h>

#include "core/restrict.hpp"
#include "support/test_util.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bfhrf::qc {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

std::vector<Tree> collection(std::size_t n, std::size_t count,
                             std::uint64_t seed) {
  const auto taxa = TaxonSet::make_numbered(n);
  util::Rng rng(seed);
  return test::random_collection(taxa, count, 3, rng);
}

TEST(ShrinkTest, DropsTreesDownToTheMinimalCount) {
  const auto trees = collection(10, 12, 1);
  // "Fails" whenever at least two trees are present: 1-minimal result is 2.
  const auto result = shrink_failure(
      trees, [](std::span<const Tree> c) { return c.size() >= 2; });
  EXPECT_EQ(result.trees.size(), 2u);
  EXPECT_GT(result.predicate_calls, 0u);
  EXPECT_FALSE(result.hit_call_limit);
}

TEST(ShrinkTest, DropsTaxaDownToTheFloor) {
  const auto trees = collection(12, 3, 2);
  // Failure depends only on the collection being non-empty, so taxa can be
  // pruned all the way to the configured floor.
  ShrinkOptions opts;
  opts.min_taxa = 5;
  const auto result = shrink_failure(
      trees, [](std::span<const Tree> c) { return !c.empty(); }, opts);
  EXPECT_EQ(result.trees.size(), 1u);
  EXPECT_LE(result.taxa_remaining, 5u);
  for (const Tree& t : result.trees) {
    t.validate();
  }
}

TEST(ShrinkTest, PreservesAFailureTiedToOneTaxon) {
  const auto trees = collection(10, 6, 3);
  // Failure requires taxon 7 to survive in some tree; the shrinker must
  // keep it while removing nearly everything else.
  const auto needs_taxon7 = [](std::span<const Tree> c) {
    for (const Tree& t : c) {
      for (const auto leaf : t.leaves()) {
        if (t.node(leaf).taxon == 7) {
          return true;
        }
      }
    }
    return false;
  };
  const auto result = shrink_failure(trees, needs_taxon7);
  ASSERT_FALSE(result.trees.empty());
  EXPECT_TRUE(needs_taxon7(result.trees));
  EXPECT_EQ(result.trees.size(), 1u);
  EXPECT_LE(result.taxa_remaining, 5u);
}

TEST(ShrinkTest, CollapsesInternalEdges) {
  const auto trees = collection(12, 1, 4);
  const auto result = shrink_failure(
      trees, [](std::span<const Tree> c) { return !c.empty(); });
  ASSERT_EQ(result.trees.size(), 1u);
  // With a content-free predicate the single survivor collapses toward a
  // star over the minimum taxa: no internal non-root structure remains.
  std::size_t internal = 0;
  const Tree& t = result.trees[0];
  for (phylo::NodeId id = 0; id < static_cast<phylo::NodeId>(t.num_nodes());
       ++id) {
    if (!t.is_leaf(id) && !t.is_root(id)) {
      ++internal;
    }
  }
  EXPECT_EQ(internal, 0u);
}

TEST(ShrinkTest, ThrowingPredicateCandidatesAreSkipped) {
  const auto trees = collection(8, 6, 5);
  // Candidates smaller than the original throw; only the original
  // "fails" — so the shrinker must return it unchanged rather than crash.
  const std::size_t original = trees.size();
  const auto result = shrink_failure(trees, [&](std::span<const Tree> c) {
    if (c.size() < original) {
      throw Error("engine exploded on this candidate");
    }
    return true;
  });
  EXPECT_EQ(result.trees.size(), original);
}

TEST(ShrinkTest, RejectsAPassingInput) {
  const auto trees = collection(8, 4, 6);
  EXPECT_THROW(
      shrink_failure(trees, [](std::span<const Tree>) { return false; }),
      InvalidArgument);
  EXPECT_THROW(shrink_failure({}, [](std::span<const Tree>) { return true; }),
               InvalidArgument);
}

TEST(ShrinkTest, HonorsThePredicateBudget) {
  const auto trees = collection(10, 10, 7);
  ShrinkOptions opts;
  opts.max_predicate_calls = 3;
  const auto result = shrink_failure(
      trees, [](std::span<const Tree> c) { return c.size() >= 2; }, opts);
  EXPECT_TRUE(result.hit_call_limit);
  EXPECT_LE(result.predicate_calls, 3u);
  EXPECT_GE(result.trees.size(), 2u);  // still a failing collection
}

}  // namespace
}  // namespace bfhrf::qc
