#include "qc/metamorphic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/rf.hpp"
#include "qc/tree_ops.hpp"
#include "support/test_util.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bfhrf::qc {
namespace {

using phylo::TaxonId;
using phylo::TaxonSet;
using phylo::Tree;

TEST(MetamorphicTest, AllInvariantsHoldOnBinaryCollections) {
  const auto taxa = TaxonSet::make_numbered(16);
  const std::uint64_t seed = test::fuzz_seed(0x3e7a);
  SCOPED_TRACE("seed=" + test::hex_seed(seed));
  util::Rng rng(seed);
  const auto trees = test::random_collection(taxa, 10, 4, rng);

  InvariantOptions opts;
  opts.seed = seed;
  const InvariantReport report = check_invariants(trees, opts);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.invariants_run.size(), 9u);
  EXPECT_GT(report.checks, 0u);
}

TEST(MetamorphicTest, VectorCodecInvariantChecksBinaryCollections) {
  const auto taxa = TaxonSet::make_numbered(13);
  const std::uint64_t seed = test::fuzz_seed(0x3e7e);
  SCOPED_TRACE("seed=" + test::hex_seed(seed));
  util::Rng rng(seed);
  const auto trees = test::random_collection(taxa, 7, 5, rng);

  InvariantOptions opts;
  opts.seed = seed;
  opts.samples = trees.size();
  InvariantReport report;
  check_vector_codec(trees, rng, opts, report);
  EXPECT_TRUE(report.ok()) << report.summary();
  // Two per-tree checks plus the full pairwise matrix comparison.
  EXPECT_GE(report.checks, 2 * trees.size() +
                               trees.size() * (trees.size() - 1) / 2);
}

TEST(MetamorphicTest, AllInvariantsHoldOnMultifurcatingCollections) {
  const auto taxa = TaxonSet::make_numbered(14);
  const std::uint64_t seed = test::fuzz_seed(0x3e7b);
  SCOPED_TRACE("seed=" + test::hex_seed(seed));
  util::Rng rng(seed);
  std::vector<Tree> trees;
  for (int i = 0; i < 8; ++i) {
    trees.push_back(sim::multifurcating_tree(taxa, rng, 0.35));
  }
  InvariantOptions opts;
  opts.seed = seed;
  const InvariantReport report = check_invariants(trees, opts);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(MetamorphicTest, SummaryEchoesSeedOnFailure) {
  InvariantReport report;
  report.seed = 0xFACE;
  report.failures.push_back({"pruning", "synthetic"});
  const std::string s = report.summary();
  EXPECT_NE(s.find("pruning: synthetic"), std::string::npos) << s;
  EXPECT_NE(s.find("--seed=0xFACE"), std::string::npos) << s;
}

// --- tree_ops building blocks -----------------------------------------

TEST(TreeOpsTest, RelabelingPreservesRfDistances) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(0x3e7c);
  const auto trees = test::random_collection(taxa, 4, 3, rng);

  std::vector<TaxonId> perm(taxa->size());
  std::iota(perm.begin(), perm.end(), TaxonId{0});
  rng.shuffle(perm);

  const Tree a = relabel_taxa(trees[0], perm);
  const Tree b = relabel_taxa(trees[1], perm);
  EXPECT_EQ(core::rf_distance(a, b), core::rf_distance(trees[0], trees[1]));
}

TEST(TreeOpsTest, RerootingIsRfInvisible) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(0x3e7d);
  const Tree t = sim::yule_tree(taxa, rng);
  for (const auto node : internal_nonroot_nodes(t)) {
    const Tree rerooted = reroot_at(t, node);
    rerooted.validate();
    EXPECT_EQ(core::rf_distance(t, rerooted), 0u);
  }
}

TEST(TreeOpsTest, RerootingAtALeafIsRejected) {
  const auto taxa = TaxonSet::make_numbered(6);
  util::Rng rng(0x3e7e);
  const Tree t = sim::yule_tree(taxa, rng);
  EXPECT_THROW(reroot_at(t, t.leaves().front()), InvalidArgument);
}

TEST(TreeOpsTest, CollapseRemovesExactlyOneBipartition) {
  const auto taxa = TaxonSet::make_numbered(10);
  util::Rng rng(0x3e7f);
  const Tree t = sim::yule_tree(taxa, rng);
  const auto internals = internal_nonroot_nodes(t);
  ASSERT_FALSE(internals.empty());
  const Tree collapsed = collapse_internal_node(t, internals.front());
  collapsed.validate();
  EXPECT_EQ(collapsed.num_leaves(), t.num_leaves());
  EXPECT_EQ(core::rf_distance(t, collapsed), 1u);
}

TEST(TreeOpsTest, RiffleCaterpillarSaturatesRf) {
  const auto taxa = TaxonSet::make_numbered(9);
  std::vector<TaxonId> identity(taxa->size());
  std::iota(identity.begin(), identity.end(), TaxonId{0});
  const Tree a = caterpillar_with_order(taxa, identity);
  const Tree b = caterpillar_with_order(taxa, riffle_order(taxa->size()));
  EXPECT_EQ(core::rf_distance(a, b), 2u * (taxa->size() - 3));
}

TEST(TreeOpsTest, RiffleOrderIsAPermutation) {
  for (std::size_t n : {4u, 5u, 8u, 13u}) {
    auto order = riffle_order(n);
    ASSERT_EQ(order.size(), n);
    std::sort(order.begin(), order.end());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(order[i], static_cast<TaxonId>(i));
    }
  }
}

}  // namespace
}  // namespace bfhrf::qc
