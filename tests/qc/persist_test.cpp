#include "qc/persist.hpp"

#include <gtest/gtest.h>

#include "support/test_util.hpp"

namespace bfhrf::qc {
namespace {

TEST(PersistOracleTest, DefaultConfigurationPasses) {
  PersistOracleOptions opts;
  opts.seed = test::fuzz_seed(0xA11ce);
  opts.n = 20;
  opts.r = 20;
  opts.q = 8;
  SCOPED_TRACE("seed " + test::hex_seed(opts.seed));
  const auto report = check_persist_equivalence(opts);
  for (const auto& f : report.failures) {
    ADD_FAILURE() << f;
  }
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.checks, 0u);
  EXPECT_GT(report.round_trips, 0u);
}

TEST(PersistOracleTest, TrivialSplitsModeAlsoPasses) {
  PersistOracleOptions opts;
  opts.seed = 0xBee;
  opts.n = 14;
  opts.r = 12;
  opts.q = 5;
  opts.include_trivial = true;
  opts.shard_counts = {4};
  const auto report = check_persist_equivalence(opts);
  for (const auto& f : report.failures) {
    ADD_FAILURE() << f;
  }
  EXPECT_TRUE(report.ok());
}

TEST(PersistOracleTest, SummaryCarriesSeed) {
  PersistOracleOptions opts;
  opts.seed = 0xCafe;
  opts.n = 10;
  opts.r = 6;
  opts.q = 3;
  opts.shard_counts = {2};
  const auto report = check_persist_equivalence(opts);
  EXPECT_NE(report.summary().find("0xCAFE"), std::string::npos);
}

}  // namespace
}  // namespace bfhrf::qc
