#include "qc/oracle.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "phylo/taxon_set.hpp"
#include "support/test_util.hpp"
#include "util/rng.hpp"

namespace bfhrf::qc {
namespace {

using phylo::TaxonSet;
using phylo::Tree;

bool ran_engine(const OracleReport& report, const std::string& label) {
  return std::find(report.engines.begin(), report.engines.end(), label) !=
         report.engines.end();
}

TEST(OracleTest, CompareMatricesRecordsEveryMismatchingCell) {
  core::RfMatrix expected(3);
  core::RfMatrix actual(3);
  expected.set(0, 1, 4);
  actual.set(0, 1, 4);
  expected.set(0, 2, 2);
  actual.set(0, 2, 6);  // mismatch
  expected.set(1, 2, 8);
  actual.set(1, 2, 0);  // mismatch

  OracleReport report;
  compare_matrices("engine-x", "oracle", expected, actual, report);
  ASSERT_EQ(report.divergences.size(), 2u);
  EXPECT_EQ(report.divergences[0].engine, "engine-x");
  EXPECT_EQ(report.divergences[0].expected, 2.0);
  EXPECT_EQ(report.divergences[0].actual, 6.0);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.cells_checked, 3u);
}

TEST(OracleTest, CompareMatricesHonorsTheMismatchLimit) {
  core::RfMatrix expected(6);
  core::RfMatrix actual(6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) {
      actual.set(i, j, 9);  // every cell wrong
    }
  }
  OracleReport report;
  compare_matrices("engine-x", "oracle", expected, actual, report,
                   /*limit=*/4);
  EXPECT_EQ(report.divergences.size(), 4u);
}

TEST(OracleTest, SelfCrossCheckPassesOnBinaryCollections) {
  const auto taxa = TaxonSet::make_numbered(14);
  const std::uint64_t seed = test::fuzz_seed(0xacc1);
  SCOPED_TRACE("seed=" + test::hex_seed(seed));
  util::Rng rng(seed);
  const auto trees = test::random_collection(taxa, 10, 3, rng);

  OracleOptions opts;
  opts.seed = seed;
  const OracleReport report = cross_check(trees, {}, opts);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.trees, 10u);
  EXPECT_GT(report.cells_checked, 0u);

  // Binary workload: every engine family must have run, including Day.
  EXPECT_TRUE(ran_engine(report, "sequential"));
  EXPECT_TRUE(ran_engine(report, "day"));
  EXPECT_TRUE(ran_engine(report, "hashrf/exact"));
  EXPECT_TRUE(ran_engine(report, "bfhrf/span/t1"));
  EXPECT_TRUE(ran_engine(report, "bfhrf/compressed-keys"));
  EXPECT_TRUE(ran_engine(report, "bfhrf/stream-pipelined/t2"));
}

TEST(OracleTest, DayEngineIsSkippedOnMultifurcatingCollections) {
  const auto taxa = TaxonSet::make_numbered(12);
  util::Rng rng(0xacc2);
  std::vector<Tree> trees;
  for (int i = 0; i < 6; ++i) {
    trees.push_back(sim::multifurcating_tree(taxa, rng, 0.4));
  }
  const OracleReport report = cross_check(trees, {}, {});
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_FALSE(ran_engine(report, "day"));
  EXPECT_TRUE(ran_engine(report, "sequential"));
}

TEST(OracleTest, SplitWorkloadChecksQueryAverages) {
  const auto taxa = TaxonSet::make_numbered(10);
  const std::uint64_t seed = test::fuzz_seed(0xacc3);
  SCOPED_TRACE("seed=" + test::hex_seed(seed));
  util::Rng rng(seed);
  const auto reference = test::random_collection(taxa, 8, 2, rng);
  const auto queries = test::independent_collection(taxa, 5, rng);

  OracleOptions opts;
  opts.seed = seed;
  const OracleReport report = cross_check(reference, queries, opts);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.trees, 13u);
}

TEST(OracleTest, SummaryEchoesTheSeedForReplay) {
  OracleReport report;
  report.seed = 0xBEEF;
  report.divergences.push_back({"e", "b", 1, 2, 3.0, 4.0});
  const std::string s = report.summary();
  EXPECT_NE(s.find("0xBEEF"), std::string::npos) << s;
  EXPECT_NE(s.find("--seed=0xBEEF"), std::string::npos) << s;
}

TEST(OracleTest, MatrixOnlyCheckCoversEngineFamilies) {
  const auto taxa = TaxonSet::make_numbered(9);
  util::Rng rng(0xacc4);
  const auto trees = test::random_collection(taxa, 6, 2, rng);
  const OracleReport report = cross_check_matrix(trees, {});
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(ran_engine(report, "all_pairs/legacy/t2"));
  EXPECT_TRUE(ran_engine(report, "all_pairs/dense/t2"));
  EXPECT_TRUE(ran_engine(report, "all_pairs/sparse/t2"));
  EXPECT_TRUE(ran_engine(report, "bfhrf/span/legacy-paths"));
}

TEST(OracleTest, IncludeTrivialModeAgreesToo) {
  const auto taxa = TaxonSet::make_numbered(8);
  util::Rng rng(0xacc5);
  const auto trees = test::random_collection(taxa, 6, 2, rng);
  OracleOptions opts;
  opts.include_trivial = true;
  const OracleReport report = cross_check(trees, {}, opts);
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace bfhrf::qc
