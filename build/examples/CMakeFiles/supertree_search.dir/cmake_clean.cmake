file(REMOVE_RECURSE
  "CMakeFiles/supertree_search.dir/supertree_search.cpp.o"
  "CMakeFiles/supertree_search.dir/supertree_search.cpp.o.d"
  "supertree_search"
  "supertree_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supertree_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
