# Empty compiler generated dependencies file for supertree_search.
# This may be replaced when dependencies are built.
