file(REMOVE_RECURSE
  "CMakeFiles/variants_demo.dir/variants_demo.cpp.o"
  "CMakeFiles/variants_demo.dir/variants_demo.cpp.o.d"
  "variants_demo"
  "variants_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variants_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
