# Empty dependencies file for variants_demo.
# This may be replaced when dependencies are built.
