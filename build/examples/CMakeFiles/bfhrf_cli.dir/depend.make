# Empty dependencies file for bfhrf_cli.
# This may be replaced when dependencies are built.
