file(REMOVE_RECURSE
  "CMakeFiles/bfhrf_cli.dir/bfhrf_cli.cpp.o"
  "CMakeFiles/bfhrf_cli.dir/bfhrf_cli.cpp.o.d"
  "bfhrf_cli"
  "bfhrf_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfhrf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
