# Empty compiler generated dependencies file for bfhrf_generate.
# This may be replaced when dependencies are built.
