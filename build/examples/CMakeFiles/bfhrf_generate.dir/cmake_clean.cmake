file(REMOVE_RECURSE
  "CMakeFiles/bfhrf_generate.dir/bfhrf_generate.cpp.o"
  "CMakeFiles/bfhrf_generate.dir/bfhrf_generate.cpp.o.d"
  "bfhrf_generate"
  "bfhrf_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfhrf_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
