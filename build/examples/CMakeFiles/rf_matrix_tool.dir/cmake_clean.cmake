file(REMOVE_RECURSE
  "CMakeFiles/rf_matrix_tool.dir/rf_matrix_tool.cpp.o"
  "CMakeFiles/rf_matrix_tool.dir/rf_matrix_tool.cpp.o.d"
  "rf_matrix_tool"
  "rf_matrix_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_matrix_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
