# Empty compiler generated dependencies file for rf_matrix_tool.
# This may be replaced when dependencies are built.
