file(REMOVE_RECURSE
  "CMakeFiles/cluster_trees.dir/cluster_trees.cpp.o"
  "CMakeFiles/cluster_trees.dir/cluster_trees.cpp.o.d"
  "cluster_trees"
  "cluster_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
