# Empty dependencies file for cluster_trees.
# This may be replaced when dependencies are built.
