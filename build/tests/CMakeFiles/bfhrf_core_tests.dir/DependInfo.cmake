
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/all_pairs_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/all_pairs_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/all_pairs_test.cpp.o.d"
  "/root/repo/tests/core/bfhrf_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/bfhrf_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/bfhrf_test.cpp.o.d"
  "/root/repo/tests/core/branch_score_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/branch_score_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/branch_score_test.cpp.o.d"
  "/root/repo/tests/core/cluster_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/cluster_test.cpp.o.d"
  "/root/repo/tests/core/compressed_hash_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/compressed_hash_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/compressed_hash_test.cpp.o.d"
  "/root/repo/tests/core/consensus_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/consensus_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/consensus_test.cpp.o.d"
  "/root/repo/tests/core/day_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/day_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/day_test.cpp.o.d"
  "/root/repo/tests/core/frequency_hash_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/frequency_hash_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/frequency_hash_test.cpp.o.d"
  "/root/repo/tests/core/hashrf_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/hashrf_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/hashrf_test.cpp.o.d"
  "/root/repo/tests/core/key_codec_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/key_codec_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/key_codec_test.cpp.o.d"
  "/root/repo/tests/core/matrix_io_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/matrix_io_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/matrix_io_test.cpp.o.d"
  "/root/repo/tests/core/restrict_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/restrict_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/restrict_test.cpp.o.d"
  "/root/repo/tests/core/rf_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/rf_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/rf_test.cpp.o.d"
  "/root/repo/tests/core/sequential_rf_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/sequential_rf_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/sequential_rf_test.cpp.o.d"
  "/root/repo/tests/core/serialize_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/serialize_test.cpp.o.d"
  "/root/repo/tests/core/triplet_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/triplet_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/triplet_test.cpp.o.d"
  "/root/repo/tests/core/variants_test.cpp" "tests/CMakeFiles/bfhrf_core_tests.dir/core/variants_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_core_tests.dir/core/variants_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bfhrf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bfhrf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phylo/CMakeFiles/bfhrf_phylo.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/bfhrf_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bfhrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
