# Empty compiler generated dependencies file for bfhrf_core_tests.
# This may be replaced when dependencies are built.
