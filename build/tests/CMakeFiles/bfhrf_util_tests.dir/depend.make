# Empty dependencies file for bfhrf_util_tests.
# This may be replaced when dependencies are built.
