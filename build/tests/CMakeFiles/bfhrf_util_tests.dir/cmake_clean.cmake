file(REMOVE_RECURSE
  "CMakeFiles/bfhrf_util_tests.dir/util/bitset_test.cpp.o"
  "CMakeFiles/bfhrf_util_tests.dir/util/bitset_test.cpp.o.d"
  "CMakeFiles/bfhrf_util_tests.dir/util/hash_test.cpp.o"
  "CMakeFiles/bfhrf_util_tests.dir/util/hash_test.cpp.o.d"
  "CMakeFiles/bfhrf_util_tests.dir/util/misc_test.cpp.o"
  "CMakeFiles/bfhrf_util_tests.dir/util/misc_test.cpp.o.d"
  "CMakeFiles/bfhrf_util_tests.dir/util/rng_test.cpp.o"
  "CMakeFiles/bfhrf_util_tests.dir/util/rng_test.cpp.o.d"
  "bfhrf_util_tests"
  "bfhrf_util_tests.pdb"
  "bfhrf_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfhrf_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
