file(REMOVE_RECURSE
  "CMakeFiles/bfhrf_sim_tests.dir/sim/datasets_test.cpp.o"
  "CMakeFiles/bfhrf_sim_tests.dir/sim/datasets_test.cpp.o.d"
  "CMakeFiles/bfhrf_sim_tests.dir/sim/generators_test.cpp.o"
  "CMakeFiles/bfhrf_sim_tests.dir/sim/generators_test.cpp.o.d"
  "CMakeFiles/bfhrf_sim_tests.dir/sim/moves_test.cpp.o"
  "CMakeFiles/bfhrf_sim_tests.dir/sim/moves_test.cpp.o.d"
  "bfhrf_sim_tests"
  "bfhrf_sim_tests.pdb"
  "bfhrf_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfhrf_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
