# Empty compiler generated dependencies file for bfhrf_sim_tests.
# This may be replaced when dependencies are built.
