
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/datasets_test.cpp" "tests/CMakeFiles/bfhrf_sim_tests.dir/sim/datasets_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_sim_tests.dir/sim/datasets_test.cpp.o.d"
  "/root/repo/tests/sim/generators_test.cpp" "tests/CMakeFiles/bfhrf_sim_tests.dir/sim/generators_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_sim_tests.dir/sim/generators_test.cpp.o.d"
  "/root/repo/tests/sim/moves_test.cpp" "tests/CMakeFiles/bfhrf_sim_tests.dir/sim/moves_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_sim_tests.dir/sim/moves_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bfhrf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bfhrf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phylo/CMakeFiles/bfhrf_phylo.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/bfhrf_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bfhrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
