# Empty compiler generated dependencies file for bfhrf_integration_tests.
# This may be replaced when dependencies are built.
