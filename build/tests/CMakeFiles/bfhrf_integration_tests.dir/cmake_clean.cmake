file(REMOVE_RECURSE
  "CMakeFiles/bfhrf_integration_tests.dir/integration/fuzz_test.cpp.o"
  "CMakeFiles/bfhrf_integration_tests.dir/integration/fuzz_test.cpp.o.d"
  "CMakeFiles/bfhrf_integration_tests.dir/integration/pipeline_test.cpp.o"
  "CMakeFiles/bfhrf_integration_tests.dir/integration/pipeline_test.cpp.o.d"
  "CMakeFiles/bfhrf_integration_tests.dir/integration/property_test.cpp.o"
  "CMakeFiles/bfhrf_integration_tests.dir/integration/property_test.cpp.o.d"
  "bfhrf_integration_tests"
  "bfhrf_integration_tests.pdb"
  "bfhrf_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfhrf_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
