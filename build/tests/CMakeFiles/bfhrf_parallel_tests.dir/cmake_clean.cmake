file(REMOVE_RECURSE
  "CMakeFiles/bfhrf_parallel_tests.dir/parallel/thread_pool_test.cpp.o"
  "CMakeFiles/bfhrf_parallel_tests.dir/parallel/thread_pool_test.cpp.o.d"
  "bfhrf_parallel_tests"
  "bfhrf_parallel_tests.pdb"
  "bfhrf_parallel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfhrf_parallel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
