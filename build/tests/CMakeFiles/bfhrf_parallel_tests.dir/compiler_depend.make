# Empty compiler generated dependencies file for bfhrf_parallel_tests.
# This may be replaced when dependencies are built.
