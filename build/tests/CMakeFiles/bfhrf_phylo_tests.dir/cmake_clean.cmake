file(REMOVE_RECURSE
  "CMakeFiles/bfhrf_phylo_tests.dir/phylo/bipartition_test.cpp.o"
  "CMakeFiles/bfhrf_phylo_tests.dir/phylo/bipartition_test.cpp.o.d"
  "CMakeFiles/bfhrf_phylo_tests.dir/phylo/newick_test.cpp.o"
  "CMakeFiles/bfhrf_phylo_tests.dir/phylo/newick_test.cpp.o.d"
  "CMakeFiles/bfhrf_phylo_tests.dir/phylo/nexus_test.cpp.o"
  "CMakeFiles/bfhrf_phylo_tests.dir/phylo/nexus_test.cpp.o.d"
  "CMakeFiles/bfhrf_phylo_tests.dir/phylo/support_test.cpp.o"
  "CMakeFiles/bfhrf_phylo_tests.dir/phylo/support_test.cpp.o.d"
  "CMakeFiles/bfhrf_phylo_tests.dir/phylo/taxon_set_test.cpp.o"
  "CMakeFiles/bfhrf_phylo_tests.dir/phylo/taxon_set_test.cpp.o.d"
  "CMakeFiles/bfhrf_phylo_tests.dir/phylo/tree_test.cpp.o"
  "CMakeFiles/bfhrf_phylo_tests.dir/phylo/tree_test.cpp.o.d"
  "bfhrf_phylo_tests"
  "bfhrf_phylo_tests.pdb"
  "bfhrf_phylo_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfhrf_phylo_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
