# Empty dependencies file for bfhrf_phylo_tests.
# This may be replaced when dependencies are built.
