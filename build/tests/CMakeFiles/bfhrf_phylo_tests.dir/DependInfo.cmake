
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/phylo/bipartition_test.cpp" "tests/CMakeFiles/bfhrf_phylo_tests.dir/phylo/bipartition_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_phylo_tests.dir/phylo/bipartition_test.cpp.o.d"
  "/root/repo/tests/phylo/newick_test.cpp" "tests/CMakeFiles/bfhrf_phylo_tests.dir/phylo/newick_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_phylo_tests.dir/phylo/newick_test.cpp.o.d"
  "/root/repo/tests/phylo/nexus_test.cpp" "tests/CMakeFiles/bfhrf_phylo_tests.dir/phylo/nexus_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_phylo_tests.dir/phylo/nexus_test.cpp.o.d"
  "/root/repo/tests/phylo/support_test.cpp" "tests/CMakeFiles/bfhrf_phylo_tests.dir/phylo/support_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_phylo_tests.dir/phylo/support_test.cpp.o.d"
  "/root/repo/tests/phylo/taxon_set_test.cpp" "tests/CMakeFiles/bfhrf_phylo_tests.dir/phylo/taxon_set_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_phylo_tests.dir/phylo/taxon_set_test.cpp.o.d"
  "/root/repo/tests/phylo/tree_test.cpp" "tests/CMakeFiles/bfhrf_phylo_tests.dir/phylo/tree_test.cpp.o" "gcc" "tests/CMakeFiles/bfhrf_phylo_tests.dir/phylo/tree_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bfhrf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bfhrf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phylo/CMakeFiles/bfhrf_phylo.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/bfhrf_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bfhrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
