# Empty dependencies file for bench_table3_insect.
# This may be replaced when dependencies are built.
