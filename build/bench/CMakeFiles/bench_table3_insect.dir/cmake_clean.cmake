file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_insect.dir/table3_insect.cpp.o"
  "CMakeFiles/bench_table3_insect.dir/table3_insect.cpp.o.d"
  "bench_table3_insect"
  "bench_table3_insect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_insect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
