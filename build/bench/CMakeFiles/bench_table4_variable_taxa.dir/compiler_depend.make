# Empty compiler generated dependencies file for bench_table4_variable_taxa.
# This may be replaced when dependencies are built.
