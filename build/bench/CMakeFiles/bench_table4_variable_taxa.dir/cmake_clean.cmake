file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_variable_taxa.dir/table4_variable_taxa.cpp.o"
  "CMakeFiles/bench_table4_variable_taxa.dir/table4_variable_taxa.cpp.o.d"
  "bench_table4_variable_taxa"
  "bench_table4_variable_taxa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_variable_taxa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
