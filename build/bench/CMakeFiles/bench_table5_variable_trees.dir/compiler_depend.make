# Empty compiler generated dependencies file for bench_table5_variable_trees.
# This may be replaced when dependencies are built.
