file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_variable_trees.dir/table5_variable_trees.cpp.o"
  "CMakeFiles/bench_table5_variable_trees.dir/table5_variable_trees.cpp.o.d"
  "bench_table5_variable_trees"
  "bench_table5_variable_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_variable_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
