# Empty compiler generated dependencies file for bench_fig1_avian.
# This may be replaced when dependencies are built.
