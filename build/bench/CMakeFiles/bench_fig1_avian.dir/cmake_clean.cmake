file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_avian.dir/fig1_avian.cpp.o"
  "CMakeFiles/bench_fig1_avian.dir/fig1_avian.cpp.o.d"
  "bench_fig1_avian"
  "bench_fig1_avian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_avian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
