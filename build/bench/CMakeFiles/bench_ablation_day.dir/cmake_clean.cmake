file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_day.dir/ablation_day.cpp.o"
  "CMakeFiles/bench_ablation_day.dir/ablation_day.cpp.o.d"
  "bench_ablation_day"
  "bench_ablation_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
