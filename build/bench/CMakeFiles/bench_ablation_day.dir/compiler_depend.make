# Empty compiler generated dependencies file for bench_ablation_day.
# This may be replaced when dependencies are built.
