file(REMOVE_RECURSE
  "libbfhrf_bench_common.a"
)
