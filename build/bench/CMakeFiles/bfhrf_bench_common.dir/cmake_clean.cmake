file(REMOVE_RECURSE
  "CMakeFiles/bfhrf_bench_common.dir/common.cpp.o"
  "CMakeFiles/bfhrf_bench_common.dir/common.cpp.o.d"
  "CMakeFiles/bfhrf_bench_common.dir/sweep.cpp.o"
  "CMakeFiles/bfhrf_bench_common.dir/sweep.cpp.o.d"
  "libbfhrf_bench_common.a"
  "libbfhrf_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfhrf_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
