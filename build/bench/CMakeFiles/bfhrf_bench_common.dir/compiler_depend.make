# Empty compiler generated dependencies file for bfhrf_bench_common.
# This may be replaced when dependencies are built.
