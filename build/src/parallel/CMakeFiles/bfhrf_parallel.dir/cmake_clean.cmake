file(REMOVE_RECURSE
  "CMakeFiles/bfhrf_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/bfhrf_parallel.dir/thread_pool.cpp.o.d"
  "libbfhrf_parallel.a"
  "libbfhrf_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfhrf_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
