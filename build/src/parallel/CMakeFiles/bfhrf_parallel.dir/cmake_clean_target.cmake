file(REMOVE_RECURSE
  "libbfhrf_parallel.a"
)
