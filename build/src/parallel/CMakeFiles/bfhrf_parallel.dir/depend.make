# Empty dependencies file for bfhrf_parallel.
# This may be replaced when dependencies are built.
