file(REMOVE_RECURSE
  "libbfhrf_core.a"
)
