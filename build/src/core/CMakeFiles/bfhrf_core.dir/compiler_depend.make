# Empty compiler generated dependencies file for bfhrf_core.
# This may be replaced when dependencies are built.
