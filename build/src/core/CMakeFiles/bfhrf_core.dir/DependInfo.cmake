
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/all_pairs.cpp" "src/core/CMakeFiles/bfhrf_core.dir/all_pairs.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/all_pairs.cpp.o.d"
  "/root/repo/src/core/bfhrf.cpp" "src/core/CMakeFiles/bfhrf_core.dir/bfhrf.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/bfhrf.cpp.o.d"
  "/root/repo/src/core/branch_score.cpp" "src/core/CMakeFiles/bfhrf_core.dir/branch_score.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/branch_score.cpp.o.d"
  "/root/repo/src/core/cluster.cpp" "src/core/CMakeFiles/bfhrf_core.dir/cluster.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/cluster.cpp.o.d"
  "/root/repo/src/core/compressed_hash.cpp" "src/core/CMakeFiles/bfhrf_core.dir/compressed_hash.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/compressed_hash.cpp.o.d"
  "/root/repo/src/core/consensus.cpp" "src/core/CMakeFiles/bfhrf_core.dir/consensus.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/consensus.cpp.o.d"
  "/root/repo/src/core/day.cpp" "src/core/CMakeFiles/bfhrf_core.dir/day.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/day.cpp.o.d"
  "/root/repo/src/core/frequency_hash.cpp" "src/core/CMakeFiles/bfhrf_core.dir/frequency_hash.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/frequency_hash.cpp.o.d"
  "/root/repo/src/core/hashrf.cpp" "src/core/CMakeFiles/bfhrf_core.dir/hashrf.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/hashrf.cpp.o.d"
  "/root/repo/src/core/key_codec.cpp" "src/core/CMakeFiles/bfhrf_core.dir/key_codec.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/key_codec.cpp.o.d"
  "/root/repo/src/core/matrix_io.cpp" "src/core/CMakeFiles/bfhrf_core.dir/matrix_io.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/matrix_io.cpp.o.d"
  "/root/repo/src/core/restrict.cpp" "src/core/CMakeFiles/bfhrf_core.dir/restrict.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/restrict.cpp.o.d"
  "/root/repo/src/core/rf.cpp" "src/core/CMakeFiles/bfhrf_core.dir/rf.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/rf.cpp.o.d"
  "/root/repo/src/core/sequential_rf.cpp" "src/core/CMakeFiles/bfhrf_core.dir/sequential_rf.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/sequential_rf.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/bfhrf_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/serialize.cpp.o.d"
  "/root/repo/src/core/tree_source.cpp" "src/core/CMakeFiles/bfhrf_core.dir/tree_source.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/tree_source.cpp.o.d"
  "/root/repo/src/core/triplet.cpp" "src/core/CMakeFiles/bfhrf_core.dir/triplet.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/triplet.cpp.o.d"
  "/root/repo/src/core/variants.cpp" "src/core/CMakeFiles/bfhrf_core.dir/variants.cpp.o" "gcc" "src/core/CMakeFiles/bfhrf_core.dir/variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phylo/CMakeFiles/bfhrf_phylo.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/bfhrf_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bfhrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
