file(REMOVE_RECURSE
  "libbfhrf_util.a"
)
