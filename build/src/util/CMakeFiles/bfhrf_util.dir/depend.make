# Empty dependencies file for bfhrf_util.
# This may be replaced when dependencies are built.
