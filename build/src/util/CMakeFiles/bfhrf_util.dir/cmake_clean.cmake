file(REMOVE_RECURSE
  "CMakeFiles/bfhrf_util.dir/bitset.cpp.o"
  "CMakeFiles/bfhrf_util.dir/bitset.cpp.o.d"
  "CMakeFiles/bfhrf_util.dir/memory.cpp.o"
  "CMakeFiles/bfhrf_util.dir/memory.cpp.o.d"
  "CMakeFiles/bfhrf_util.dir/rng.cpp.o"
  "CMakeFiles/bfhrf_util.dir/rng.cpp.o.d"
  "CMakeFiles/bfhrf_util.dir/string_util.cpp.o"
  "CMakeFiles/bfhrf_util.dir/string_util.cpp.o.d"
  "CMakeFiles/bfhrf_util.dir/table.cpp.o"
  "CMakeFiles/bfhrf_util.dir/table.cpp.o.d"
  "libbfhrf_util.a"
  "libbfhrf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfhrf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
