file(REMOVE_RECURSE
  "CMakeFiles/bfhrf_phylo.dir/bipartition.cpp.o"
  "CMakeFiles/bfhrf_phylo.dir/bipartition.cpp.o.d"
  "CMakeFiles/bfhrf_phylo.dir/newick.cpp.o"
  "CMakeFiles/bfhrf_phylo.dir/newick.cpp.o.d"
  "CMakeFiles/bfhrf_phylo.dir/nexus.cpp.o"
  "CMakeFiles/bfhrf_phylo.dir/nexus.cpp.o.d"
  "CMakeFiles/bfhrf_phylo.dir/taxon_set.cpp.o"
  "CMakeFiles/bfhrf_phylo.dir/taxon_set.cpp.o.d"
  "CMakeFiles/bfhrf_phylo.dir/tree.cpp.o"
  "CMakeFiles/bfhrf_phylo.dir/tree.cpp.o.d"
  "libbfhrf_phylo.a"
  "libbfhrf_phylo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfhrf_phylo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
