file(REMOVE_RECURSE
  "libbfhrf_phylo.a"
)
