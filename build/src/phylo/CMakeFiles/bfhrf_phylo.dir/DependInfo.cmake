
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phylo/bipartition.cpp" "src/phylo/CMakeFiles/bfhrf_phylo.dir/bipartition.cpp.o" "gcc" "src/phylo/CMakeFiles/bfhrf_phylo.dir/bipartition.cpp.o.d"
  "/root/repo/src/phylo/newick.cpp" "src/phylo/CMakeFiles/bfhrf_phylo.dir/newick.cpp.o" "gcc" "src/phylo/CMakeFiles/bfhrf_phylo.dir/newick.cpp.o.d"
  "/root/repo/src/phylo/nexus.cpp" "src/phylo/CMakeFiles/bfhrf_phylo.dir/nexus.cpp.o" "gcc" "src/phylo/CMakeFiles/bfhrf_phylo.dir/nexus.cpp.o.d"
  "/root/repo/src/phylo/taxon_set.cpp" "src/phylo/CMakeFiles/bfhrf_phylo.dir/taxon_set.cpp.o" "gcc" "src/phylo/CMakeFiles/bfhrf_phylo.dir/taxon_set.cpp.o.d"
  "/root/repo/src/phylo/tree.cpp" "src/phylo/CMakeFiles/bfhrf_phylo.dir/tree.cpp.o" "gcc" "src/phylo/CMakeFiles/bfhrf_phylo.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bfhrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
