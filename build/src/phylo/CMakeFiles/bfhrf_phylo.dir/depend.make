# Empty dependencies file for bfhrf_phylo.
# This may be replaced when dependencies are built.
