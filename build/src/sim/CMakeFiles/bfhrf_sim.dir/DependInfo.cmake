
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/datasets.cpp" "src/sim/CMakeFiles/bfhrf_sim.dir/datasets.cpp.o" "gcc" "src/sim/CMakeFiles/bfhrf_sim.dir/datasets.cpp.o.d"
  "/root/repo/src/sim/generators.cpp" "src/sim/CMakeFiles/bfhrf_sim.dir/generators.cpp.o" "gcc" "src/sim/CMakeFiles/bfhrf_sim.dir/generators.cpp.o.d"
  "/root/repo/src/sim/moves.cpp" "src/sim/CMakeFiles/bfhrf_sim.dir/moves.cpp.o" "gcc" "src/sim/CMakeFiles/bfhrf_sim.dir/moves.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bfhrf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/phylo/CMakeFiles/bfhrf_phylo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bfhrf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/bfhrf_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
