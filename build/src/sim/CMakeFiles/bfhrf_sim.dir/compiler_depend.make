# Empty compiler generated dependencies file for bfhrf_sim.
# This may be replaced when dependencies are built.
