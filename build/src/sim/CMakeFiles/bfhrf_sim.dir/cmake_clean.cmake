file(REMOVE_RECURSE
  "CMakeFiles/bfhrf_sim.dir/datasets.cpp.o"
  "CMakeFiles/bfhrf_sim.dir/datasets.cpp.o.d"
  "CMakeFiles/bfhrf_sim.dir/generators.cpp.o"
  "CMakeFiles/bfhrf_sim.dir/generators.cpp.o.d"
  "CMakeFiles/bfhrf_sim.dir/moves.cpp.o"
  "CMakeFiles/bfhrf_sim.dir/moves.cpp.o.d"
  "libbfhrf_sim.a"
  "libbfhrf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfhrf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
