file(REMOVE_RECURSE
  "libbfhrf_sim.a"
)
