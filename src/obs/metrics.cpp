#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_map>

namespace bfhrf::obs {
namespace {

std::atomic<bool> g_runtime_enabled{true};

HistogramSpec sanitize(HistogramSpec spec) {
  if (!(spec.min > 0)) {
    spec.min = 1e-6;
  }
  if (!(spec.factor > 1.0)) {
    spec.factor = 2.0;
  }
  spec.buckets = std::clamp<std::size_t>(spec.buckets, 1, 512);
  return spec;
}

}  // namespace

std::vector<double> bucket_edges(const HistogramSpec& spec_in) {
  const HistogramSpec spec = sanitize(spec_in);
  std::vector<double> edges(spec.buckets);
  double e = spec.min;
  for (std::size_t i = 0; i < spec.buckets; ++i) {
    edges[i] = e;
    e *= spec.factor;
  }
  return edges;
}

void set_enabled(bool on) noexcept {
  g_runtime_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() noexcept {
  return compiled_in() && g_runtime_enabled.load(std::memory_order_relaxed);
}

#if BFHRF_OBS_ENABLED

namespace {

constexpr std::size_t kMaxSpans = 8192;

struct HistAgg {
  std::vector<std::uint64_t> buckets;  ///< edges.size()+1 entries
  std::uint64_t count = 0;
  double sum = 0;
  double vmin = std::numeric_limits<double>::infinity();
  double vmax = -std::numeric_limits<double>::infinity();
};

struct Registry {
  std::mutex mu;

  std::unordered_map<std::string, std::uint32_t> counter_ids;
  std::vector<std::string> counter_names;
  std::vector<std::uint64_t> counters;

  std::unordered_map<std::string, std::uint32_t> gauge_ids;
  std::vector<std::string> gauge_names;
  std::vector<double> gauges;

  std::unordered_map<std::string, std::uint32_t> hist_ids;
  std::vector<std::string> hist_names;
  std::vector<std::vector<double>> hist_edges;  ///< immutable per id
  std::vector<HistAgg> hists;

  std::vector<SpanRecord> spans;
  std::uint64_t spans_dropped = 0;

  /// Bumped by reset(); sinks stamped with an older epoch discard on flush.
  std::atomic<std::uint64_t> epoch{0};

  std::atomic<std::uint32_t> next_thread_ord{0};
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
};

// Leaked intentionally: thread-local sinks flush from thread-exit
// destructors whose order against static destruction is unspecified.
Registry& reg() {
  static Registry* const r = new Registry();
  return *r;
}

struct LocalHist {
  bool init = false;
  std::vector<double> edges;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0;
  double vmin = std::numeric_limits<double>::infinity();
  double vmax = -std::numeric_limits<double>::infinity();
};

struct ThreadSink {
  std::vector<std::uint64_t> counters;
  std::vector<LocalHist> hists;
  std::uint64_t epoch = 0;
  bool dirty = false;

  ~ThreadSink() { flush_thread(); }
};

ThreadSink& sink() {
  thread_local ThreadSink s;
  return s;
}

void touch(ThreadSink& s) {
  if (!s.dirty) {
    s.dirty = true;
    s.epoch = reg().epoch.load(std::memory_order_relaxed);
  }
}

std::uint32_t thread_ordinal() {
  thread_local const std::uint32_t ord =
      reg().next_thread_ord.fetch_add(1, std::memory_order_relaxed);
  return ord;
}

}  // namespace

namespace detail {

void counter_inc(std::uint32_t id, std::uint64_t n) noexcept {
  if (!g_runtime_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  ThreadSink& s = sink();
  touch(s);
  if (s.counters.size() <= id) {
    s.counters.resize(id + 1, 0);
  }
  s.counters[id] += n;
}

void gauge_set(std::uint32_t id, double v) noexcept {
  if (!g_runtime_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  Registry& r = reg();
  const std::lock_guard lock(r.mu);
  r.gauges[id] = v;
}

void histogram_observe(std::uint32_t id, double v) noexcept {
  if (!g_runtime_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  ThreadSink& s = sink();
  touch(s);
  if (s.hists.size() <= id) {
    s.hists.resize(id + 1);
  }
  LocalHist& h = s.hists[id];
  if (!h.init) {
    Registry& r = reg();
    const std::lock_guard lock(r.mu);
    h.edges = r.hist_edges[id];
    h.buckets.assign(h.edges.size() + 1, 0);
    h.init = true;
  }
  const auto it = std::lower_bound(h.edges.begin(), h.edges.end(), v);
  const auto idx = static_cast<std::size_t>(it - h.edges.begin());
  ++h.buckets[idx];
  ++h.count;
  h.sum += v;
  h.vmin = std::min(h.vmin, v);
  h.vmax = std::max(h.vmax, v);
}

}  // namespace detail

Counter counter(std::string_view name) {
  Registry& r = reg();
  const std::lock_guard lock(r.mu);
  const auto [it, inserted] = r.counter_ids.try_emplace(
      std::string(name), static_cast<std::uint32_t>(r.counters.size()));
  if (inserted) {
    r.counter_names.emplace_back(name);
    r.counters.push_back(0);
  }
  return Counter(it->second);
}

Gauge gauge(std::string_view name) {
  Registry& r = reg();
  const std::lock_guard lock(r.mu);
  const auto [it, inserted] = r.gauge_ids.try_emplace(
      std::string(name), static_cast<std::uint32_t>(r.gauges.size()));
  if (inserted) {
    r.gauge_names.emplace_back(name);
    r.gauges.push_back(0.0);
  }
  return Gauge(it->second);
}

Histogram histogram(std::string_view name, HistogramSpec spec) {
  Registry& r = reg();
  const std::lock_guard lock(r.mu);
  const auto [it, inserted] = r.hist_ids.try_emplace(
      std::string(name), static_cast<std::uint32_t>(r.hists.size()));
  if (inserted) {
    r.hist_names.emplace_back(name);
    auto edges = bucket_edges(spec);
    r.hists.push_back(HistAgg{
        .buckets = std::vector<std::uint64_t>(edges.size() + 1, 0)});
    r.hist_edges.push_back(std::move(edges));
  }
  return Histogram(it->second);
}

TraceSpan::TraceSpan(std::string_view name) noexcept {
  if (enabled()) {
    name_ = name;
    start_ = std::chrono::steady_clock::now();
    active_ = true;
  }
}

TraceSpan::~TraceSpan() {
  if (!active_) {
    return;
  }
  const auto end = std::chrono::steady_clock::now();
  const std::uint32_t ord = thread_ordinal();
  Registry& r = reg();
  const auto start_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(start_ - r.t0)
          .count());
  const auto dur_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count());
  const std::lock_guard lock(r.mu);
  if (r.spans.size() < kMaxSpans) {
    r.spans.push_back(SpanRecord{std::string(name_), start_ns, dur_ns, ord});
  } else {
    ++r.spans_dropped;
  }
}

void flush_thread() noexcept {
  ThreadSink& s = sink();
  if (!s.dirty) {
    return;
  }
  Registry& r = reg();
  {
    const std::lock_guard lock(r.mu);
    if (s.epoch == r.epoch.load(std::memory_order_relaxed)) {
      for (std::size_t id = 0; id < s.counters.size(); ++id) {
        r.counters[id] += s.counters[id];
      }
      for (std::size_t id = 0; id < s.hists.size(); ++id) {
        const LocalHist& h = s.hists[id];
        if (h.count == 0) {
          continue;
        }
        HistAgg& a = r.hists[id];
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
          a.buckets[b] += h.buckets[b];
        }
        a.count += h.count;
        a.sum += h.sum;
        a.vmin = std::min(a.vmin, h.vmin);
        a.vmax = std::max(a.vmax, h.vmax);
      }
    }
  }
  std::fill(s.counters.begin(), s.counters.end(), 0);
  for (LocalHist& h : s.hists) {
    std::fill(h.buckets.begin(), h.buckets.end(), 0);
    h.count = 0;
    h.sum = 0;
    h.vmin = std::numeric_limits<double>::infinity();
    h.vmax = -std::numeric_limits<double>::infinity();
  }
  s.dirty = false;
}

Snapshot snapshot() {
  flush_thread();
  Snapshot out;
  out.enabled = enabled();
  Registry& r = reg();
  const std::lock_guard lock(r.mu);
  out.counters.reserve(r.counters.size());
  for (std::size_t id = 0; id < r.counters.size(); ++id) {
    out.counters.emplace_back(r.counter_names[id], r.counters[id]);
  }
  out.gauges.reserve(r.gauges.size());
  for (std::size_t id = 0; id < r.gauges.size(); ++id) {
    out.gauges.emplace_back(r.gauge_names[id], r.gauges[id]);
  }
  out.histograms.reserve(r.hists.size());
  for (std::size_t id = 0; id < r.hists.size(); ++id) {
    const HistAgg& a = r.hists[id];
    HistogramSnapshot h;
    h.edges = r.hist_edges[id];
    h.buckets = a.buckets;
    h.count = a.count;
    h.sum = a.sum;
    h.min = a.count == 0 ? 0.0 : a.vmin;
    h.max = a.count == 0 ? 0.0 : a.vmax;
    out.histograms.emplace_back(r.hist_names[id], std::move(h));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  out.spans = r.spans;
  out.spans_dropped = r.spans_dropped;
  return out;
}

std::uint64_t counter_value(std::string_view name) {
  flush_thread();
  Registry& r = reg();
  const std::lock_guard lock(r.mu);
  const auto it = r.counter_ids.find(std::string(name));
  return it == r.counter_ids.end() ? 0 : r.counters[it->second];
}

void reset() noexcept {
  Registry& r = reg();
  {
    const std::lock_guard lock(r.mu);
    std::fill(r.counters.begin(), r.counters.end(), 0);
    std::fill(r.gauges.begin(), r.gauges.end(), 0.0);
    for (HistAgg& a : r.hists) {
      std::fill(a.buckets.begin(), a.buckets.end(), 0);
      a.count = 0;
      a.sum = 0;
      a.vmin = std::numeric_limits<double>::infinity();
      a.vmax = -std::numeric_limits<double>::infinity();
    }
    r.spans.clear();
    r.spans_dropped = 0;
    r.epoch.fetch_add(1, std::memory_order_relaxed);
  }
  // Drop this thread's pending deltas too (its epoch is now stale, but
  // clearing eagerly keeps the next flush cheap).
  ThreadSink& s = sink();
  std::fill(s.counters.begin(), s.counters.end(), 0);
  for (LocalHist& h : s.hists) {
    std::fill(h.buckets.begin(), h.buckets.end(), 0);
    h.count = 0;
    h.sum = 0;
    h.vmin = std::numeric_limits<double>::infinity();
    h.vmax = -std::numeric_limits<double>::infinity();
  }
  s.dirty = false;
}

#else  // !BFHRF_OBS_ENABLED — inert stubs; the API stays link-compatible.

Counter counter(std::string_view) { return Counter(); }
Gauge gauge(std::string_view) { return Gauge(); }
Histogram histogram(std::string_view, HistogramSpec) { return Histogram(); }

TraceSpan::TraceSpan(std::string_view) noexcept {}
TraceSpan::~TraceSpan() = default;

void flush_thread() noexcept {}

Snapshot snapshot() {
  Snapshot out;
  out.enabled = false;
  return out;
}

std::uint64_t counter_value(std::string_view) { return 0; }

void reset() noexcept {}

#endif  // BFHRF_OBS_ENABLED

// --- JSON export (pure formatting; compiled in both modes) ------------------

namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    os << static_cast<long long>(v);
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace

void dump(std::ostream& os, const Snapshot& snap) {
  os << "{\n";
  os << "  \"version\": 1,\n";
  os << "  \"compiled\": " << (snap.compiled ? "true" : "false") << ",\n";
  os << "  \"enabled\": " << (snap.enabled ? "true" : "false") << ",\n";

  os << "  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    write_escaped(os, snap.counters[i].first);
    os << ": " << snap.counters[i].second;
  }
  os << (snap.counters.empty() ? "},\n" : "\n  },\n");

  os << "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    write_escaped(os, snap.gauges[i].first);
    os << ": ";
    write_number(os, snap.gauges[i].second);
  }
  os << (snap.gauges.empty() ? "},\n" : "\n  },\n");

  os << "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, h] = snap.histograms[i];
    os << (i == 0 ? "\n    " : ",\n    ");
    write_escaped(os, name);
    os << ": {\"count\": " << h.count << ", \"sum\": ";
    write_number(os, h.sum);
    os << ", \"min\": ";
    write_number(os, h.min);
    os << ", \"max\": ";
    write_number(os, h.max);
    os << ", \"edges\": [";
    for (std::size_t j = 0; j < h.edges.size(); ++j) {
      if (j != 0) {
        os << ", ";
      }
      write_number(os, h.edges[j]);
    }
    os << "], \"buckets\": [";
    for (std::size_t j = 0; j < h.buckets.size(); ++j) {
      if (j != 0) {
        os << ", ";
      }
      os << h.buckets[j];
    }
    os << "]}";
  }
  os << (snap.histograms.empty() ? "},\n" : "\n  },\n");

  os << "  \"spans\": [";
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const SpanRecord& s = snap.spans[i];
    os << (i == 0 ? "\n    " : ",\n    ");
    os << "{\"name\": ";
    write_escaped(os, s.name);
    os << ", \"thread\": " << s.thread
       << ", \"start_us\": " << s.start_ns / 1000
       << ", \"dur_us\": " << s.dur_ns / 1000 << "}";
  }
  os << (snap.spans.empty() ? "],\n" : "\n  ],\n");

  os << "  \"spans_dropped\": " << snap.spans_dropped << "\n";
  os << "}\n";
}

void dump(std::ostream& os) { dump(os, snapshot()); }

std::string dump_string(const Snapshot& snap) {
  std::ostringstream os;
  dump(os, snap);
  return os.str();
}

std::string dump_string() { return dump_string(snapshot()); }

}  // namespace bfhrf::obs
