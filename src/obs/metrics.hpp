// Engine-wide observability: metrics registry, RAII timers, trace spans,
// and a JSON exporter.
//
// Design (ISSUE 1 tentpole):
//  * HANDLES, NOT STRINGS, ON THE HOT PATH. counter()/gauge()/histogram()
//    intern a name into the global registry once (locked) and return a
//    cheap index handle. Increments write to a THREAD-LOCAL sink — no
//    atomics, no locks — and are folded into the registry when the thread
//    flushes (scope exit, task completion, thread exit, or snapshot()).
//  * MERGE IS ASSOCIATIVE AND COMMUTATIVE. Counters add, histograms add
//    bucket-wise (sum/count/min/max fold), so per-worker sinks can flush
//    in any order without losing or reordering increments.
//  * HISTOGRAMS use fixed log-spaced buckets: upper edges
//    min·factor^i for i in [0, buckets); values land in the first bucket
//    whose edge is >= v ("le" semantics); larger values go to an implicit
//    overflow bucket.
//  * TRACE SPANS are coarse phase markers (build/query/merge), recorded
//    into a bounded global buffer with a per-thread ordinal; overflow is
//    counted, never blocking.
//  * COMPILE-TIME GATE. With -DBFHRF_OBS=OFF (BFHRF_OBS_ENABLED == 0)
//    every handle method is an empty inline body and the instrumentation
//    compiles to nothing; the API surface stays identical so call sites
//    need no #ifdefs. A runtime kill switch (set_enabled) additionally
//    lets one binary compare instrumented vs uninstrumented runs.
//
// Naming convention: <layer>.<component>.<metric>, lower_snake_case, e.g.
// "core.frequency_hash.probes". See docs/OBSERVABILITY.md for the full
// catalogue.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef BFHRF_OBS_ENABLED
#define BFHRF_OBS_ENABLED 1
#endif

namespace bfhrf::obs {

/// True when the observability layer is compiled in (-DBFHRF_OBS=ON).
[[nodiscard]] constexpr bool compiled_in() noexcept {
  return BFHRF_OBS_ENABLED != 0;
}

/// Runtime kill switch (default on). Compile-time OFF overrides this.
void set_enabled(bool on) noexcept;
[[nodiscard]] bool enabled() noexcept;

/// Log-spaced histogram bucket layout: finite upper edges
/// min, min·factor, …, min·factor^(buckets-1), plus an overflow bucket.
struct HistogramSpec {
  double min = 1e-6;       ///< first bucket upper edge (> 0)
  double factor = 2.0;     ///< edge ratio (> 1)
  std::size_t buckets = 40;  ///< finite bucket count (clamped to [1, 512])
};

/// The finite upper edges a spec produces (exact repeated multiplication).
[[nodiscard]] std::vector<double> bucket_edges(const HistogramSpec& spec);

namespace detail {
inline constexpr std::uint32_t kInvalidId = 0xffffffffU;
#if BFHRF_OBS_ENABLED
void counter_inc(std::uint32_t id, std::uint64_t n) noexcept;
void gauge_set(std::uint32_t id, double v) noexcept;
void histogram_observe(std::uint32_t id, double v) noexcept;
#endif
}  // namespace detail

/// Monotonic counter handle. Copyable, trivially cheap; default-constructed
/// handles are inert.
class Counter {
 public:
  constexpr Counter() = default;

  void inc(std::uint64_t n = 1) const noexcept {
#if BFHRF_OBS_ENABLED
    if (id_ != detail::kInvalidId && n != 0) {
      detail::counter_inc(id_, n);
    }
#else
    (void)n;
#endif
  }

 private:
  friend Counter counter(std::string_view name);
  explicit constexpr Counter(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = detail::kInvalidId;
};

/// Last-write-wins gauge (resident bytes, load factors, …). set() takes the
/// registry lock — keep it off per-item hot paths.
class Gauge {
 public:
  constexpr Gauge() = default;

  void set(double v) const noexcept {
#if BFHRF_OBS_ENABLED
    if (id_ != detail::kInvalidId) {
      detail::gauge_set(id_, v);
    }
#else
    (void)v;
#endif
  }

 private:
  friend Gauge gauge(std::string_view name);
  explicit constexpr Gauge(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = detail::kInvalidId;
};

/// Histogram handle; observe() writes to the thread-local sink.
class Histogram {
 public:
  constexpr Histogram() = default;

  void observe(double v) const noexcept {
#if BFHRF_OBS_ENABLED
    if (id_ != detail::kInvalidId) {
      detail::histogram_observe(id_, v);
    }
#else
    (void)v;
#endif
  }

 private:
  friend Histogram histogram(std::string_view name, HistogramSpec spec);
  explicit constexpr Histogram(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = detail::kInvalidId;
};

/// Intern `name` in the registry (first call registers; later calls return
/// the same handle). Thread-safe; intended for static-init at call sites.
[[nodiscard]] Counter counter(std::string_view name);
[[nodiscard]] Gauge gauge(std::string_view name);
[[nodiscard]] Histogram histogram(std::string_view name,
                                  HistogramSpec spec = {});

/// RAII wall-clock timer: observes elapsed seconds into a histogram at
/// scope exit. seconds() is monotonic within the scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram h) noexcept
      : h_(h)
#if BFHRF_OBS_ENABLED
        ,
        start_(std::chrono::steady_clock::now())
#endif
  {
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { h_.observe(seconds()); }

  [[nodiscard]] double seconds() const noexcept {
#if BFHRF_OBS_ENABLED
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
#else
    return 0.0;
#endif
  }

 private:
  Histogram h_;
#if BFHRF_OBS_ENABLED
  std::chrono::steady_clock::time_point start_;
#endif
};

/// Lightweight trace span: records (name, start, duration, thread ordinal)
/// into a bounded global buffer at scope exit. Coarse-grained by design —
/// one span per phase, not per item.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

 private:
#if BFHRF_OBS_ENABLED
  std::string_view name_;
  std::chrono::steady_clock::time_point start_;
  bool active_ = false;
#endif
};

/// Merge the calling thread's local sink into the global registry.
void flush_thread() noexcept;

/// RAII flush: merges the current thread's sink into the registry at scope
/// exit. Worker threads get this automatically (thread-exit flush and the
/// ThreadPool's per-task flush); use it for hand-rolled threads.
class ScopedThreadSink {
 public:
  ScopedThreadSink() = default;
  ScopedThreadSink(const ScopedThreadSink&) = delete;
  ScopedThreadSink& operator=(const ScopedThreadSink&) = delete;
  ~ScopedThreadSink() { flush_thread(); }
};

// --- snapshot & export ------------------------------------------------------

struct HistogramSnapshot {
  std::vector<double> edges;           ///< finite bucket upper bounds
  std::vector<std::uint64_t> buckets;  ///< edges.size()+1; last = overflow
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;  ///< 0 when count == 0
  double max = 0;
};

struct SpanRecord {
  std::string name;
  std::uint64_t start_ns = 0;  ///< offset from the registry epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t thread = 0;  ///< per-thread ordinal, not an OS id
};

/// A consistent copy of the registry, names sorted for deterministic
/// export. Flushes the calling thread's sink first.
struct Snapshot {
  bool compiled = compiled_in();
  bool enabled = true;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  std::vector<SpanRecord> spans;
  std::uint64_t spans_dropped = 0;
};

[[nodiscard]] Snapshot snapshot();

/// Look up a single aggregated counter value (0 if unknown). Flushes the
/// calling thread first. Test/diagnostic convenience.
[[nodiscard]] std::uint64_t counter_value(std::string_view name);

/// Zero all aggregated values and drop spans; registrations (names and
/// handles) survive. Pending sinks of OTHER threads are invalidated via an
/// epoch bump — call this only on a quiescent system (tests, bench setup).
void reset() noexcept;

/// Serialize a snapshot as deterministic JSON (keys sorted; times in
/// integer microseconds). The zero-argument overload snapshots first.
void dump(std::ostream& os, const Snapshot& snap);
void dump(std::ostream& os);
[[nodiscard]] std::string dump_string(const Snapshot& snap);
[[nodiscard]] std::string dump_string();

}  // namespace bfhrf::obs
