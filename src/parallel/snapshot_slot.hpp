// SnapshotSlot: RCU-style publish/acquire of immutable versioned values.
//
// The query server (src/serve) serves a built BFH index to many concurrent
// readers while a writer occasionally publishes a replacement (a full
// reload or a DynamicBfhIndex delta publish). The classic answer is
// read-copy-update: readers acquire a reference to the CURRENT version
// without taking any lock the writer can hold, the writer swaps in the next
// version with one atomic pointer store, and a retired version is destroyed
// only when its last reader drains.
//
// This is exactly the shared_ptr reclamation model, so the slot is a thin
// veneer over std::atomic<std::shared_ptr<const Versioned>>:
//
//  * acquire() — one atomic load plus a reference-count increment. Never
//    blocks on publish(); an in-flight reader keeps its snapshot alive (and
//    bit-identical) for as long as it holds the handle, regardless of how
//    many publishes happen meanwhile.
//  * publish() — builds the next Versioned wrapper and atomically stores
//    it. The PREVIOUS version is not torn down here: its control block
//    lives until the last outstanding handle releases, which is the
//    epoch-drain retirement the server relies on ("old snapshots retired
//    when their last reader drains").
//
// Versions are assigned by the slot (monotonic from 1), so readers can tag
// results with the exact index generation that produced them.
//
// Observability (docs/OBSERVABILITY.md): parallel.snapshot.publishes
// counter and parallel.snapshot.version gauge — both writer-side only, so
// the read path stays instrumentation-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"

namespace bfhrf::parallel {

namespace detail {
struct SnapshotMetrics {
  obs::Counter publishes = obs::counter("parallel.snapshot.publishes");
  obs::Gauge version = obs::gauge("parallel.snapshot.version");
};

inline const SnapshotMetrics& snapshot_metrics() {
  static const SnapshotMetrics m;
  return m;
}
}  // namespace detail

template <typename T>
class SnapshotSlot {
  struct Versioned {
    std::shared_ptr<const T> value;
    std::uint64_t version = 0;
  };

 public:
  /// A reader's lease on one version. Holding it pins the value: publish()
  /// never invalidates an outstanding handle. Cheap to copy (refcount).
  class Handle {
   public:
    Handle() = default;

    [[nodiscard]] bool valid() const noexcept { return rec_ != nullptr; }
    explicit operator bool() const noexcept { return valid(); }

    /// The pinned value; only meaningful when valid().
    [[nodiscard]] const T& operator*() const noexcept { return *rec_->value; }
    [[nodiscard]] const T* operator->() const noexcept {
      return rec_->value.get();
    }
    [[nodiscard]] const std::shared_ptr<const T>& value() const noexcept {
      return rec_->value;
    }

    /// Generation number assigned at publish (0 when invalid).
    [[nodiscard]] std::uint64_t version() const noexcept {
      return rec_ != nullptr ? rec_->version : 0;
    }

   private:
    friend class SnapshotSlot;
    explicit Handle(std::shared_ptr<const Versioned> rec)
        : rec_(std::move(rec)) {}
    std::shared_ptr<const Versioned> rec_;
  };

  SnapshotSlot() = default;
  SnapshotSlot(const SnapshotSlot&) = delete;
  SnapshotSlot& operator=(const SnapshotSlot&) = delete;

  /// Swap in `next` as the current version; returns its version number.
  /// Readers already inside acquire()d handles keep the previous version
  /// alive until they drop it. Publishing nullptr is allowed (takes the
  /// slot back to "nothing published"; version still advances).
  std::uint64_t publish(std::shared_ptr<const T> next) {
    const std::uint64_t v = next_version_.fetch_add(1) + 1;
    auto rec = std::make_shared<const Versioned>(
        Versioned{std::move(next), v});
    slot_.store(std::move(rec), std::memory_order_release);
    const detail::SnapshotMetrics& m = detail::snapshot_metrics();
    m.publishes.inc();
    m.version.set(static_cast<double>(v));
    return v;
  }

  /// Lease the current version (invalid handle if nothing published yet or
  /// the last publish was nullptr). Wait-free with respect to publishers.
  [[nodiscard]] Handle acquire() const {
    std::shared_ptr<const Versioned> rec =
        slot_.load(std::memory_order_acquire);
    if (rec == nullptr || rec->value == nullptr) {
      return Handle{};
    }
    return Handle{std::move(rec)};
  }

  /// Version of the most recent publish (0 = nothing ever published).
  [[nodiscard]] std::uint64_t version() const noexcept {
    return next_version_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::shared_ptr<const Versioned>> slot_;
  std::atomic<std::uint64_t> next_version_{0};
};

}  // namespace bfhrf::parallel
