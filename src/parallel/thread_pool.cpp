#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace bfhrf::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this](const std::stop_token& st) { worker_loop(st); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& w : workers_) {
    w.request_stop();
  }
  cv_task_.notify_all();
  // jthread joins on destruction.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    const std::exception_ptr e = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop(const std::stop_token& st) {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, st, [this] { return !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop requested and queue drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard lock(mu_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    {
      const std::lock_guard lock(mu_);
      if (--in_flight_ == 0) {
        cv_idle_.notify_all();
      }
    }
  }
}

std::size_t effective_threads(std::size_t requested) noexcept {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for_ranked(
    std::size_t begin, std::size_t end, std::size_t threads,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (begin >= end) {
    return;
  }
  const std::size_t t =
      std::min(effective_threads(threads), (end - begin + grain - 1) / grain);
  if (t <= 1) {
    for (std::size_t i = begin; i < end; ++i) {
      fn(0, i);
    }
    return;
  }

  std::atomic<std::size_t> cursor{begin};
  std::exception_ptr first_error;
  std::mutex err_mu;

  const auto body = [&](std::size_t rank) {
    try {
      while (true) {
        const std::size_t chunk_begin =
            cursor.fetch_add(grain, std::memory_order_relaxed);
        if (chunk_begin >= end) {
          return;
        }
        const std::size_t chunk_end = std::min(end, chunk_begin + grain);
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          fn(rank, i);
        }
      }
    } catch (...) {
      const std::lock_guard lock(err_mu);
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  };

  {
    std::vector<std::jthread> workers;
    workers.reserve(t - 1);
    for (std::size_t rank = 1; rank < t; ++rank) {
      workers.emplace_back([&body, rank] { body(rank); });
    }
    body(0);
    // workers join here
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t threads,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for_ranked(
      begin, end, threads,
      [&fn](std::size_t, std::size_t i) { fn(i); }, grain);
}

}  // namespace bfhrf::parallel
