#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace bfhrf::parallel {
namespace {

// Pool-level series (totals across all pools in the process).
const obs::Counter g_pool_tasks = obs::counter("parallel.pool.tasks");
const obs::Counter g_pool_waits = obs::counter("parallel.pool.waits");
const obs::Counter g_pool_idle_us = obs::counter("parallel.pool.idle_us");

// parallel_for layer: chunk handout over the atomic cursor.
const obs::Counter g_pf_invocations = obs::counter("parallel.for.invocations");
const obs::Counter g_pf_items = obs::counter("parallel.for.items");
const obs::Counter g_pf_chunks = obs::counter("parallel.for.chunks");
const obs::Counter g_pf_steals = obs::counter("parallel.for.steals");

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  pending_.resize(threads);
  cumulative_.resize(threads);
  worker_task_counters_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    worker_task_counters_.push_back(
        obs::counter("parallel.pool.worker." + std::to_string(i) + ".tasks"));
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this, i](const std::stop_token& st) { worker_loop(st, i); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& w : workers_) {
    w.request_stop();
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
  {
    const std::lock_guard lock(mu_);
    drain_stats_locked();
  }
  obs::flush_thread();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  drain_stats_locked();
  if (first_error_) {
    const std::exception_ptr e = std::exchange(first_error_, nullptr);
    lock.unlock();
    obs::flush_thread();
    std::rethrow_exception(e);
  }
  lock.unlock();
  obs::flush_thread();
}

std::vector<ThreadPool::WorkerStats> ThreadPool::stats() {
  const std::lock_guard lock(mu_);
  std::vector<WorkerStats> out = cumulative_;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].tasks += pending_[i].tasks;
    out[i].waits += pending_[i].waits;
    out[i].idle_seconds += pending_[i].idle_seconds;
  }
  return out;
}

void ThreadPool::drain_stats_locked() {
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    WorkerStats& ws = pending_[i];
    if (ws.tasks != 0) {
      g_pool_tasks.inc(ws.tasks);
      worker_task_counters_[i].inc(ws.tasks);
    }
    if (ws.waits != 0) {
      g_pool_waits.inc(ws.waits);
    }
    if (ws.idle_seconds > 0) {
      g_pool_idle_us.inc(static_cast<std::uint64_t>(ws.idle_seconds * 1e6));
    }
    cumulative_[i].tasks += ws.tasks;
    cumulative_[i].waits += ws.waits;
    cumulative_[i].idle_seconds += ws.idle_seconds;
    ws = WorkerStats{};
  }
}

void ThreadPool::worker_loop(const std::stop_token& st, std::size_t rank) {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      if (queue_.empty()) {
        WorkerStats& ws = pending_[rank];
        ++ws.waits;
        const util::WallTimer idle;
        cv_task_.wait(lock, st, [this] { return !queue_.empty(); });
        ws.idle_seconds += idle.seconds();
        if (queue_.empty()) {
          return;  // stop requested and queue drained
        }
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++pending_[rank].tasks;
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard lock(mu_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    // Publish the task's thread-local metrics BEFORE its completion becomes
    // visible, so wait_idle() callers never observe finished work whose
    // increments are still buffered.
    obs::flush_thread();
    {
      const std::lock_guard lock(mu_);
      if (--in_flight_ == 0) {
        cv_idle_.notify_all();
      }
    }
  }
}

std::size_t effective_threads(std::size_t requested) noexcept {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for_ranked(
    std::size_t begin, std::size_t end, std::size_t threads,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (begin >= end) {
    return;
  }
  g_pf_invocations.inc();
  const std::size_t t =
      std::min(effective_threads(threads), (end - begin + grain - 1) / grain);
  if (t <= 1) {
    for (std::size_t i = begin; i < end; ++i) {
      fn(0, i);
    }
    g_pf_items.inc(end - begin);
    g_pf_chunks.inc();
    return;
  }

  std::atomic<std::size_t> cursor{begin};
  std::exception_ptr first_error;
  std::mutex err_mu;

  const auto body = [&](std::size_t rank) {
    // Flush this worker's sink when the body unwinds (normally or not);
    // ranks > 0 also flush via thread-exit, rank 0 runs on the caller.
    const obs::ScopedThreadSink sink_flush;
    std::uint64_t chunks = 0;
    std::uint64_t items = 0;
    try {
      while (true) {
        const std::size_t chunk_begin =
            cursor.fetch_add(grain, std::memory_order_relaxed);
        if (chunk_begin >= end) {
          break;
        }
        const std::size_t chunk_end = std::min(end, chunk_begin + grain);
        ++chunks;
        items += chunk_end - chunk_begin;
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          fn(rank, i);
        }
      }
    } catch (...) {
      const std::lock_guard lock(err_mu);
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
    if (chunks != 0) {
      g_pf_chunks.inc(chunks);
      g_pf_items.inc(items);
      // Everything after a worker's first claim came off the shared
      // cursor: chunk steals in the work-stealing sense.
      g_pf_steals.inc(chunks - 1);
    }
  };

  {
    std::vector<std::jthread> workers;
    workers.reserve(t - 1);
    for (std::size_t rank = 1; rank < t; ++rank) {
      workers.emplace_back([&body, rank] { body(rank); });
    }
    body(0);
    // workers join here
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t threads,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for_ranked(
      begin, end, threads,
      [&fn](std::size_t, std::size_t i) { fn(i); }, grain);
}

}  // namespace bfhrf::parallel
