// Fixed-size thread pool plus structured parallel_for / parallel_reduce.
//
// This is the C++ analogue of the Python `multiprocessing` layer the paper
// builds DSMP and BFHRF on: parallelism is applied "at the comparison
// level" — whole trees are the work items — so the decomposition here is a
// blocked index range with atomic chunk stealing.
//
// Design notes (C++ Core Guidelines CP.*):
//  * workers are std::jthread and are joined in the destructor (RAII);
//  * exceptions thrown by tasks are captured and rethrown on the caller's
//    thread (first one wins), so failures are not silently swallowed;
//  * `threads == 1` executes inline with zero synchronization, which keeps
//    the sequential baselines honest in benchmarks.
//
// Observability: each worker keeps a private stats record (tasks executed,
// sleep/wake waits, idle seconds) written only inside the lock windows the
// queue protocol already holds — no extra synchronization on the hot path.
// The records are drained into the obs registry (parallel.pool.* counters,
// plus a per-worker parallel.pool.worker.<i>.tasks series) on wait_idle()
// and destruction, and a task's own thread-local metrics are flushed after
// the task body so wait_idle() observes every increment of completed work.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace bfhrf::parallel {

class ThreadPool {
 public:
  /// Per-worker execution statistics (deltas since the last drain are held
  /// privately; this is the cumulative view returned by stats()).
  struct WorkerStats {
    std::uint64_t tasks = 0;  ///< tasks executed by this worker
    std::uint64_t waits = 0;  ///< times the worker went to sleep
    double idle_seconds = 0;  ///< total time spent asleep
  };

  /// Spin up `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task. Tasks must not themselves block on this pool.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. Rethrows the first
  /// captured task exception, if any. Drains worker metrics into the obs
  /// registry before returning.
  void wait_idle();

  /// Cumulative per-worker statistics (index = worker rank).
  [[nodiscard]] std::vector<WorkerStats> stats();

 private:
  void worker_loop(const std::stop_token& st, std::size_t rank);

  /// Publish pending per-worker deltas to the obs registry. mu_ held.
  void drain_stats_locked();

  std::mutex mu_;
  std::condition_variable_any cv_task_;
  std::condition_variable cv_idle_;
  std::queue<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  std::vector<WorkerStats> pending_;     ///< deltas since last drain (mu_)
  std::vector<WorkerStats> cumulative_;  ///< lifetime totals (mu_)
  std::vector<obs::Counter> worker_task_counters_;
  std::vector<std::jthread> workers_;
};

/// Number of threads to use for a requested count (0 = hardware default).
[[nodiscard]] std::size_t effective_threads(std::size_t requested) noexcept;

/// Apply `fn(i)` for i in [begin, end) across `threads` threads.
/// Work is handed out in chunks of `grain` via an atomic cursor, so uneven
/// per-item cost (trees differ in size) still balances.
/// With threads <= 1 runs inline. Exceptions propagate to the caller.
void parallel_for(std::size_t begin, std::size_t end, std::size_t threads,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 16);

/// Like parallel_for, but `fn(thread_rank, i)` — for per-thread scratch.
void parallel_for_ranked(
    std::size_t begin, std::size_t end, std::size_t threads,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain = 16);

/// Parallel reduction: each thread folds its items into a private
/// accumulator created by `make_acc`; `combine(total, acc)` merges them in
/// rank order (deterministic for commutative+associative combines and for
/// order-sensitive ones alike).
template <typename Acc>
Acc parallel_reduce(std::size_t begin, std::size_t end, std::size_t threads,
                    const std::function<Acc()>& make_acc,
                    const std::function<void(Acc&, std::size_t)>& step,
                    const std::function<void(Acc&, Acc&)>& combine,
                    std::size_t grain = 16) {
  const std::size_t t = effective_threads(threads);
  std::vector<Acc> accs;
  accs.reserve(t);
  for (std::size_t i = 0; i < t; ++i) {
    accs.push_back(make_acc());
  }
  parallel_for_ranked(
      begin, end, t,
      [&](std::size_t rank, std::size_t i) { step(accs[rank], i); }, grain);
  Acc total = std::move(accs[0]);
  for (std::size_t i = 1; i < t; ++i) {
    combine(total, accs[i]);
  }
  return total;
}

}  // namespace bfhrf::parallel
