// BoundedQueue: a bounded, blocking multi-producer/multi-consumer queue.
//
// The streaming engines (src/core/bfhrf) used to alternate a single-threaded
// parse burst with a barrier-synchronized worker burst, leaving workers idle
// for the entire parse of every batch. This queue is the coupling device of
// the replacement producer/consumer pipeline (parallel/pipeline.hpp): the
// parser thread pushes trees continuously while workers pop and process, so
// parse and hash work overlap instead of alternating.
//
// Semantics:
//  * push() blocks while the queue is full; returns false once the queue is
//    closed or aborted (the item is dropped — production should stop).
//  * pop() blocks while the queue is empty and open; returns false once the
//    queue is closed AND drained, or aborted.
//  * close() ends production: pending items drain, further pushes fail.
//  * abort() tears the pipeline down: pending items are discarded and every
//    blocked producer/consumer wakes up with `false` (used to propagate a
//    consumer exception back to the producer without deadlocking on a full
//    queue).
//
// Observability (docs/OBSERVABILITY.md, parallel.pipeline.*): queue depth
// gauge sampled on push, producer-stall and consumer-wait histograms
// recording only *blocking* waits, and push/pop counters. All increments go
// through thread-local obs sinks, so producers and consumers never contend
// on instrumentation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace bfhrf::parallel {

namespace detail {
struct QueueMetrics {
  obs::Counter pushes = obs::counter("parallel.pipeline.queue.pushes");
  obs::Counter pops = obs::counter("parallel.pipeline.queue.pops");
  obs::Counter producer_stalls =
      obs::counter("parallel.pipeline.queue.producer_stalls");
  obs::Counter consumer_waits =
      obs::counter("parallel.pipeline.queue.consumer_waits");
  obs::Gauge depth = obs::gauge("parallel.pipeline.queue.depth");
  obs::Histogram stall_seconds =
      obs::histogram("parallel.pipeline.queue.producer_stall_seconds");
  obs::Histogram wait_seconds =
      obs::histogram("parallel.pipeline.queue.consumer_wait_seconds");
};

inline const QueueMetrics& queue_metrics() {
  static const QueueMetrics m;
  return m;
}
}  // namespace detail

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` >= 1 items may be resident before producers block.
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking push; false if the queue is closed or aborted (item dropped).
  bool push(T&& item) {
    const detail::QueueMetrics& m = detail::queue_metrics();
    std::size_t depth;
    {
      std::unique_lock lock(mu_);
      if (items_.size() >= capacity_ && !closed_ && !aborted_) {
        m.producer_stalls.inc();
        const util::WallTimer stall;
        cv_space_.wait(lock, [this] {
          return items_.size() < capacity_ || closed_ || aborted_;
        });
        m.stall_seconds.observe(stall.seconds());
      }
      if (closed_ || aborted_) {
        return false;
      }
      items_.push_back(std::move(item));
      depth = items_.size();
    }
    m.pushes.inc();
    m.depth.set(static_cast<double>(depth));
    cv_item_.notify_one();
    return true;
  }

  /// Blocking pop; false once closed-and-drained, or aborted.
  bool pop(T& out) {
    const detail::QueueMetrics& m = detail::queue_metrics();
    {
      std::unique_lock lock(mu_);
      if (items_.empty() && !closed_ && !aborted_) {
        m.consumer_waits.inc();
        const util::WallTimer wait;
        cv_item_.wait(lock, [this] {
          return !items_.empty() || closed_ || aborted_;
        });
        m.wait_seconds.observe(wait.seconds());
      }
      if (aborted_ || items_.empty()) {
        return false;  // aborted, or closed and drained
      }
      out = std::move(items_.front());
      items_.pop_front();
    }
    m.pops.inc();
    cv_space_.notify_one();
    return true;
  }

  /// End production: pending items drain, then pops return false.
  void close() {
    {
      const std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_item_.notify_all();
    cv_space_.notify_all();
  }

  /// Tear down: discard pending items; all blocked callers return false.
  void abort() {
    {
      const std::lock_guard lock(mu_);
      aborted_ = true;
      items_.clear();
    }
    cv_item_.notify_all();
    cv_space_.notify_all();
  }

  [[nodiscard]] bool aborted() const {
    const std::lock_guard lock(mu_);
    return aborted_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_item_;   ///< signalled when an item arrives
  std::condition_variable cv_space_;  ///< signalled when space frees up
  std::deque<T> items_;
  bool closed_ = false;
  bool aborted_ = false;
};

}  // namespace bfhrf::parallel
