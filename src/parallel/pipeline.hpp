// Single-producer / multi-consumer pipeline on top of BoundedQueue.
//
// pipeline_run() is the structured driver the streaming engines use: the
// CALLING thread is the producer (it owns the non-thread-safe input, e.g. a
// NewickReader), `consumers` worker threads drain the queue concurrently.
// Compared with the fill-then-barrier batch loop it replaces, the producer
// never waits for a batch to finish and consumers never wait for a parse
// burst — the bounded queue is the only coupling, so parse and hash work
// overlap and the queue depth gauge shows which side is the bottleneck.
//
// Error protocol:
//  * a consumer exception aborts the queue — the producer's next emit()
//    returns false and production stops; the first exception is rethrown on
//    the calling thread after all consumers join (mirrors ThreadPool).
//  * a producer exception aborts the queue (unblocking consumers) and
//    rethrows after the join; a consumer exception takes precedence.
//
// With `consumers == 0` the pipeline degenerates to a zero-synchronization
// inline loop: emit() invokes the consumer directly on the calling thread.
// This keeps the sequential baseline honest, exactly like parallel_for.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/bounded_queue.hpp"

namespace bfhrf::parallel {

namespace detail {
struct PipelineMetrics {
  obs::Counter runs = obs::counter("parallel.pipeline.runs");
  obs::Counter items = obs::counter("parallel.pipeline.items");
};

inline const PipelineMetrics& pipeline_metrics() {
  static const PipelineMetrics m;
  return m;
}
}  // namespace detail

/// Emit callback handed to the producer: returns false when the pipeline
/// has aborted and production should stop.
template <typename T>
using PipelineEmit = std::function<bool(T&&)>;

/// Run `produce(emit)` on the calling thread against `consumers` worker
/// threads each looping `consume(rank, item)`. Blocks until the stream is
/// drained; rethrows the first worker (or producer) exception.
template <typename T>
void pipeline_run(std::size_t consumers, std::size_t queue_capacity,
                  const std::function<void(const PipelineEmit<T>&)>& produce,
                  const std::function<void(std::size_t, T&)>& consume) {
  const detail::PipelineMetrics& m = detail::pipeline_metrics();
  // Touch the queue-metric family too, so every parallel.pipeline.* series
  // is registered (and exported, at zero) even when inline mode or an
  // always-warm queue means some are never incremented.
  (void)detail::queue_metrics();
  m.runs.inc();

  if (consumers == 0) {
    // Inline mode: no queue, no threads, no synchronization.
    const PipelineEmit<T> emit = [&](T&& item) {
      T local = std::move(item);
      consume(0, local);
      m.items.inc();
      return true;
    };
    produce(emit);
    return;
  }

  BoundedQueue<T> queue(queue_capacity);
  std::exception_ptr first_error;
  std::mutex err_mu;

  const auto worker = [&](std::size_t rank) {
    const obs::ScopedThreadSink sink_flush;
    T item;
    try {
      while (queue.pop(item)) {
        consume(rank, item);
        m.items.inc();
      }
    } catch (...) {
      {
        const std::lock_guard lock(err_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
      // Wake the producer (possibly blocked on a full queue) and the other
      // consumers; pending items are dropped — the run is failing anyway.
      queue.abort();
    }
  };

  std::exception_ptr producer_error;
  {
    std::vector<std::jthread> workers;
    workers.reserve(consumers);
    for (std::size_t rank = 0; rank < consumers; ++rank) {
      workers.emplace_back([&worker, rank] { worker(rank); });
    }
    const PipelineEmit<T> emit = [&queue](T&& item) {
      return queue.push(std::move(item));
    };
    try {
      produce(emit);
    } catch (...) {
      producer_error = std::current_exception();
      queue.abort();
    }
    queue.close();
    // workers join here
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
  if (producer_error) {
    std::rethrow_exception(producer_error);
  }
}

}  // namespace bfhrf::parallel
