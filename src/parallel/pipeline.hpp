// Single-producer / multi-consumer pipeline on top of BoundedQueue.
//
// pipeline_run() is the structured driver the streaming engines use: the
// CALLING thread is the producer (it owns the non-thread-safe input, e.g. a
// NewickReader), `consumers` worker threads drain the queue concurrently.
// Compared with the fill-then-barrier batch loop it replaces, the producer
// never waits for a batch to finish and consumers never wait for a parse
// burst — the bounded queue is the only coupling, so parse and hash work
// overlap and the queue depth gauge shows which side is the bottleneck.
//
// Error protocol:
//  * a consumer exception aborts the queue — the producer's next emit()
//    returns false and production stops; the first exception is rethrown on
//    the calling thread after all consumers join (mirrors ThreadPool).
//  * a producer exception aborts the queue (unblocking consumers) and
//    rethrows after the join; a consumer exception takes precedence.
//
// With `consumers == 0` the pipeline degenerates to a zero-synchronization
// inline loop: emit() invokes the consumer directly on the calling thread.
// This keeps the sequential baseline honest, exactly like parallel_for.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <latch>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/bounded_queue.hpp"

namespace bfhrf::parallel {

namespace detail {
struct PipelineMetrics {
  obs::Counter runs = obs::counter("parallel.pipeline.runs");
  obs::Counter items = obs::counter("parallel.pipeline.items");
};

inline const PipelineMetrics& pipeline_metrics() {
  static const PipelineMetrics m;
  return m;
}
}  // namespace detail

/// Emit callback handed to the producer: returns false when the pipeline
/// has aborted and production should stop.
template <typename T>
using PipelineEmit = std::function<bool(T&&)>;

/// Run `produce(emit)` on the calling thread against `consumers` worker
/// threads each looping `consume(rank, item)`. Blocks until the stream is
/// drained; rethrows the first worker (or producer) exception.
///
/// `drain(rank)` — when non-null — is a per-worker epilogue: it runs ON
/// EACH WORKER THREAD after EVERY worker has finished its consume loop (an
/// internal latch provides the barrier), so a drain callback may safely
/// read data produced by other workers' consume calls. The sharded BFHRF
/// build uses this for its insert phase: workers route keys into
/// per-worker buckets while consuming, then each drain lane inserts its
/// shard range across all buckets — reusing the pipeline's threads with no
/// second spawn. Drains are skipped entirely (on every worker) if the
/// producer or any consumer threw; the latch is counted down on all paths,
/// so an exception can never deadlock a waiting drain. Drain exceptions
/// follow the consumer first-error protocol. In inline mode
/// (consumers == 0) the drain runs once, as drain(0), after production.
template <typename T>
void pipeline_run(std::size_t consumers, std::size_t queue_capacity,
                  const std::function<void(const PipelineEmit<T>&)>& produce,
                  const std::function<void(std::size_t, T&)>& consume,
                  const std::function<void(std::size_t)>& drain = nullptr) {
  const detail::PipelineMetrics& m = detail::pipeline_metrics();
  // Touch the queue-metric family too, so every parallel.pipeline.* series
  // is registered (and exported, at zero) even when inline mode or an
  // always-warm queue means some are never incremented.
  (void)detail::queue_metrics();
  m.runs.inc();

  if (consumers == 0) {
    // Inline mode: no queue, no threads, no synchronization.
    const PipelineEmit<T> emit = [&](T&& item) {
      T local = std::move(item);
      consume(0, local);
      m.items.inc();
      return true;
    };
    produce(emit);
    if (drain) {
      drain(0);
    }
    return;
  }

  BoundedQueue<T> queue(queue_capacity);
  std::exception_ptr first_error;
  std::mutex err_mu;
  std::latch consumed(static_cast<std::ptrdiff_t>(consumers));
  std::atomic<bool> failed{false};

  const auto worker = [&](std::size_t rank) {
    const obs::ScopedThreadSink sink_flush;
    T item;
    bool counted = false;
    try {
      while (queue.pop(item)) {
        consume(rank, item);
        m.items.inc();
      }
      counted = true;
      consumed.count_down();
      if (drain) {
        // Exiting the pop loop requires a prior close() or abort(); in the
        // failure case `failed` is set before the abort, so the post-wait
        // check cannot miss an error that unblocked this worker.
        consumed.wait();
        if (!failed.load(std::memory_order_acquire)) {
          drain(rank);
        }
      }
    } catch (...) {
      {
        const std::lock_guard lock(err_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
      failed.store(true, std::memory_order_release);
      // Wake the producer (possibly blocked on a full queue) and the other
      // consumers; pending items are dropped — the run is failing anyway.
      queue.abort();
      if (!counted) {
        consumed.count_down();
      }
    }
  };

  std::exception_ptr producer_error;
  {
    std::vector<std::jthread> workers;
    workers.reserve(consumers);
    for (std::size_t rank = 0; rank < consumers; ++rank) {
      workers.emplace_back([&worker, rank] { worker(rank); });
    }
    const PipelineEmit<T> emit = [&queue](T&& item) {
      return queue.push(std::move(item));
    };
    try {
      produce(emit);
    } catch (...) {
      producer_error = std::current_exception();
      failed.store(true, std::memory_order_release);
      queue.abort();
    }
    queue.close();
    // workers join here
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
  if (producer_error) {
    std::rethrow_exception(producer_error);
  }
}

}  // namespace bfhrf::parallel
