#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace bfhrf::serve {
namespace {

// --- byte-level encode/decode ----------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  [[nodiscard]] Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Bounds-checked reader over one frame payload. Every decode path below
/// finishes with done(), so trailing garbage is a ParseError, not silence.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

  std::uint8_t u8() {
    need(1, "u8");
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint32_t len = u32();
    need(len, "string body");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  /// Validate a declared element count against the bytes actually present
  /// (each element needs >= min_bytes_per), BEFORE any allocation.
  std::uint32_t count(std::size_t min_bytes_per) {
    const std::uint32_t n = u32();
    if (static_cast<std::uint64_t>(n) * min_bytes_per > remaining()) {
      throw ParseError("serve protocol: declared count " + std::to_string(n) +
                       " exceeds payload (" + std::to_string(remaining()) +
                       " bytes left)");
    }
    return n;
  }

  /// Require full consumption (decoders call this last).
  void done() const {
    if (remaining() != 0) {
      throw ParseError("serve protocol: " + std::to_string(remaining()) +
                       " trailing byte(s) after message");
    }
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (remaining() < n) {
      throw ParseError(std::string("serve protocol: truncated payload (") +
                       what + " needs " + std::to_string(n) + " byte(s), " +
                       std::to_string(remaining()) + " left)");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

Status checked_status(std::uint8_t raw) {
  switch (raw) {
    case static_cast<std::uint8_t>(Status::Ok):
    case static_cast<std::uint8_t>(Status::BadRequest):
    case static_cast<std::uint8_t>(Status::ServerError):
    case static_cast<std::uint8_t>(Status::ShuttingDown):
      return static_cast<Status>(raw);
    default:
      throw ParseError("serve protocol: unknown status byte " +
                       std::to_string(raw));
  }
}

Reader ok_body(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const Status s = checked_status(r.u8());
  if (s != Status::Ok) {
    throw ParseError("serve protocol: expected Ok response, got status " +
                     std::to_string(static_cast<int>(s)));
  }
  return r;
}

}  // namespace

// --- requests ---------------------------------------------------------------

Bytes encode(const PingRequest&) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Op::Ping));
  return w.take();
}

Bytes encode(const QueryRequest& req) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Op::Query));
  w.u32(static_cast<std::uint32_t>(req.newicks.size()));
  for (const std::string& s : req.newicks) {
    w.str(s);
  }
  return w.take();
}

Bytes encode(const StatsRequest&) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Op::Stats));
  return w.take();
}

Bytes encode(const PublishRequest& req) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Op::Publish));
  w.str(req.path);
  return w.take();
}

Bytes encode(const ShutdownRequest&) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Op::Shutdown));
  return w.take();
}

Request decode_request(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const std::uint8_t op = r.u8();
  switch (op) {
    case static_cast<std::uint8_t>(Op::Ping): {
      r.done();
      return PingRequest{};
    }
    case static_cast<std::uint8_t>(Op::Query): {
      QueryRequest req;
      const std::uint32_t n = r.count(/*min_bytes_per=*/4);
      req.newicks.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        req.newicks.push_back(r.str());
      }
      r.done();
      return req;
    }
    case static_cast<std::uint8_t>(Op::Stats): {
      r.done();
      return StatsRequest{};
    }
    case static_cast<std::uint8_t>(Op::Publish): {
      PublishRequest req;
      req.path = r.str();
      r.done();
      return req;
    }
    case static_cast<std::uint8_t>(Op::Shutdown): {
      r.done();
      return ShutdownRequest{};
    }
    default:
      throw ParseError("serve protocol: unknown opcode " + std::to_string(op));
  }
}

// --- responses --------------------------------------------------------------

Bytes encode_ok() {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Status::Ok));
  return w.take();
}

Bytes encode(const QueryResult& res) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Status::Ok));
  w.u64(res.snapshot_version);
  w.u32(static_cast<std::uint32_t>(res.avg_rf.size()));
  for (const double v : res.avg_rf) {
    w.f64(v);
  }
  return w.take();
}

Bytes encode(const StatsResult& res) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Status::Ok));
  w.u64(res.snapshot_version);
  w.u64(res.taxa);
  w.u64(res.reference_trees);
  w.u64(res.unique_bipartitions);
  w.u64(res.total_bipartitions);
  return w.take();
}

Bytes encode(const PublishResult& res) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Status::Ok));
  w.u64(res.snapshot_version);
  return w.take();
}

Bytes encode(const ErrorResult& res) {
  BFHRF_ASSERT(res.status != Status::Ok);
  Writer w;
  w.u8(static_cast<std::uint8_t>(res.status));
  w.str(res.message);
  return w.take();
}

Status response_status(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  return checked_status(r.u8());
}

void decode_ok_empty(std::span<const std::uint8_t> payload) {
  Reader r = ok_body(payload);
  r.done();
}

QueryResult decode_query_result(std::span<const std::uint8_t> payload) {
  Reader r = ok_body(payload);
  QueryResult res;
  res.snapshot_version = r.u64();
  const std::uint32_t n = r.count(/*min_bytes_per=*/8);
  res.avg_rf.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    res.avg_rf.push_back(r.f64());
  }
  r.done();
  return res;
}

StatsResult decode_stats_result(std::span<const std::uint8_t> payload) {
  Reader r = ok_body(payload);
  StatsResult res;
  res.snapshot_version = r.u64();
  res.taxa = r.u64();
  res.reference_trees = r.u64();
  res.unique_bipartitions = r.u64();
  res.total_bipartitions = r.u64();
  r.done();
  return res;
}

PublishResult decode_publish_result(std::span<const std::uint8_t> payload) {
  Reader r = ok_body(payload);
  PublishResult res;
  res.snapshot_version = r.u64();
  r.done();
  return res;
}

ErrorResult decode_error(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  ErrorResult res;
  res.status = checked_status(r.u8());
  if (res.status == Status::Ok) {
    throw ParseError("serve protocol: decode_error on an Ok response");
  }
  res.message = r.str();
  r.done();
  return res;
}

// --- stream framing ---------------------------------------------------------

namespace {

/// Read exactly `n` bytes. Returns the bytes actually read (short only at
/// EOF); throws Error on a socket error.
std::size_t read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r == 0) {
      return got;  // EOF
    }
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw Error(std::string("serve: read failed: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return got;
}

}  // namespace

bool read_frame(int fd, Bytes& payload, std::uint32_t max_bytes) {
  std::uint8_t head[4];
  const std::size_t got = read_exact(fd, head, sizeof head);
  if (got == 0) {
    return false;  // clean EOF at a frame boundary
  }
  if (got < sizeof head) {
    throw ParseError("serve: truncated frame header (peer closed mid-frame)");
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(head[i]) << (8 * i);
  }
  if (len == 0) {
    throw ParseError("serve: zero-length frame");
  }
  if (len > max_bytes) {
    throw ParseError("serve: oversized frame (" + std::to_string(len) +
                     " bytes > limit " + std::to_string(max_bytes) + ")");
  }
  payload.resize(len);
  if (read_exact(fd, payload.data(), len) < len) {
    throw ParseError("serve: truncated frame body (peer closed mid-frame)");
  }
  return true;
}

void write_frame(int fd, std::span<const std::uint8_t> payload) {
  BFHRF_ASSERT(!payload.empty());
  Bytes buf;
  buf.reserve(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  buf.insert(buf.end(), payload.begin(), payload.end());
  std::size_t sent = 0;
  while (sent < buf.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-response is an exception on
    // this thread, not a process-wide SIGPIPE.
    const ssize_t r = ::send(fd, buf.data() + sent, buf.size() - sent,
                             MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw Error(std::string("serve: send failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(r);
  }
}

}  // namespace bfhrf::serve
