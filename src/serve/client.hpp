// RfClient: a blocking client for the RF query daemon (serve/server.hpp).
//
// One connection, one request in flight at a time (the server answers each
// connection in request order, so a synchronous call-response loop is the
// whole protocol). Used by the CLI tools (bfhrf_client, bfhrf_loadgen) and
// the loopback tests; concurrent load comes from many clients, each on its
// own connection.
//
// Error mapping: a non-Ok response becomes a ServeError carrying the wire
// status and message; transport problems surface as the protocol layer's
// ParseError/Error. A client is single-threaded by contract — share
// connections, not RfClient instances.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/error.hpp"

namespace bfhrf::serve {

/// The server answered with a non-Ok status.
class ServeError : public Error {
 public:
  ServeError(Status status, const std::string& message)
      : Error("server responded " + std::to_string(static_cast<int>(status)) +
              ": " + message),
        status_(status) {}

  [[nodiscard]] Status status() const noexcept { return status_; }

 private:
  Status status_;
};

class RfClient {
 public:
  /// Connect to host:port. Throws Error if the connection fails.
  RfClient(const std::string& host, std::uint16_t port,
           std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);
  RfClient(const RfClient&) = delete;
  RfClient& operator=(const RfClient&) = delete;
  RfClient(RfClient&& other) noexcept;
  RfClient& operator=(RfClient&& other) noexcept;
  ~RfClient();

  void ping();
  [[nodiscard]] QueryResult query(const std::vector<std::string>& newicks);
  [[nodiscard]] StatsResult stats();
  [[nodiscard]] PublishResult publish(const std::string& index_path);

  /// Request shutdown; returns once the server acknowledged.
  void shutdown_server();

  /// Send raw payload bytes as one frame and return the raw response
  /// payload. The conformance tests use this to probe malformed input.
  [[nodiscard]] Bytes roundtrip_raw(const Bytes& payload);

  /// Pipelining probes: send one frame without waiting for its response /
  /// read the next response frame. The ordering-conformance tests use
  /// these to verify that pipelined requests are answered in request
  /// order; recv_frame throws Error if the server closes first.
  void send_frame(const Bytes& payload);
  [[nodiscard]] Bytes recv_frame();

  void close() noexcept;
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  [[nodiscard]] Bytes roundtrip(const Bytes& payload);

  int fd_ = -1;
  std::uint32_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace bfhrf::serve
