#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace bfhrf::serve {

RfClient::RfClient(const std::string& host, std::uint16_t port,
                   std::uint32_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw Error(std::string("client: socket failed: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw InvalidArgument("client: bad address '" + host + "'");
  }
  int rc = 0;
  do {
    rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error("client: connect to " + host + ":" + std::to_string(port) +
                " failed: " + std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

RfClient::RfClient(RfClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      max_frame_bytes_(other.max_frame_bytes_) {}

RfClient& RfClient::operator=(RfClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    max_frame_bytes_ = other.max_frame_bytes_;
  }
  return *this;
}

RfClient::~RfClient() { close(); }

void RfClient::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Bytes RfClient::roundtrip(const Bytes& payload) {
  if (fd_ < 0) {
    throw Error("client: not connected");
  }
  write_frame(fd_, payload);
  Bytes response;
  if (!read_frame(fd_, response, max_frame_bytes_)) {
    close();
    throw Error("client: server closed the connection before responding");
  }
  return response;
}

Bytes RfClient::roundtrip_raw(const Bytes& payload) {
  return roundtrip(payload);
}

void RfClient::send_frame(const Bytes& payload) {
  if (fd_ < 0) {
    throw Error("client: not connected");
  }
  write_frame(fd_, payload);
}

Bytes RfClient::recv_frame() {
  if (fd_ < 0) {
    throw Error("client: not connected");
  }
  Bytes response;
  if (!read_frame(fd_, response, max_frame_bytes_)) {
    close();
    throw Error("client: server closed the connection before responding");
  }
  return response;
}

namespace {

/// Decode with `decoder` when Ok; otherwise throw the server's error.
template <typename Decoder>
auto expect_ok(const Bytes& response, Decoder&& decoder) {
  if (response_status(response) != Status::Ok) {
    const ErrorResult err = decode_error(response);
    throw ServeError(err.status, err.message);
  }
  return decoder(response);
}

}  // namespace

void RfClient::ping() {
  expect_ok(roundtrip(encode(PingRequest{})), [](const Bytes& b) {
    decode_ok_empty(b);
    return 0;
  });
}

QueryResult RfClient::query(const std::vector<std::string>& newicks) {
  return expect_ok(roundtrip(encode(QueryRequest{newicks})),
                   [](const Bytes& b) { return decode_query_result(b); });
}

StatsResult RfClient::stats() {
  return expect_ok(roundtrip(encode(StatsRequest{})),
                   [](const Bytes& b) { return decode_stats_result(b); });
}

PublishResult RfClient::publish(const std::string& index_path) {
  return expect_ok(roundtrip(encode(PublishRequest{index_path})),
                   [](const Bytes& b) { return decode_publish_result(b); });
}

void RfClient::shutdown_server() {
  expect_ok(roundtrip(encode(ShutdownRequest{})), [](const Bytes& b) {
    decode_ok_empty(b);
    return 0;
  });
}

}  // namespace bfhrf::serve
