// RfServer: a long-lived RF query daemon over hot-swappable BFH snapshots.
//
// The paper's two-phase design (build BFH_R once, query many times) is a
// natural always-on service; this is the serving half. Architecture:
//
//   accept thread ──► per-connection reader threads
//                        │  read_frame, then a BLOCKING push into
//                        ▼
//                 BoundedQueue<Work>     (admission control: the queue
//                        │               bound is the only buffering, so a
//                        ▼               burst backpressures the sockets
//                 worker threads         instead of ballooning memory)
//                        │  decode, execute against slot_.acquire(),
//                        ▼  stage the response under the session write lock
//                 responses (per-connection, in request order: each request
//                 carries a per-session sequence number and a completed
//                 response is flushed only once every earlier one has been
//                 written, so pipelined requests finished out of order by
//                 different workers still answer in order on the wire)
//
// Index versions live in a parallel::SnapshotSlot<core::IndexSnapshot>:
// each request leases the then-current snapshot with one wait-free
// acquire(), so publish() swaps a new version in WITHOUT blocking in-flight
// queries, and a retired snapshot is destroyed only when its last lease
// drains (RCU semantics; see snapshot_slot.hpp). Every query response
// carries the snapshot version that produced it, which is what the
// swap-stress oracle keys on.
//
// Protocol: length-prefixed frames (serve/protocol.hpp). Malformed frames
// are answered with a typed error and the connection SURVIVES when the
// frame boundary is intact (unknown op, bad body); it is closed
// deliberately when the byte stream itself is unusable (oversized
// announcement, peer vanished mid-frame).
//
// Shutdown (the Shutdown op or stop()): new work is refused with
// ShuttingDown, queued work DRAINS (zero dropped in-flight requests),
// workers exit when the queue is empty, and wait() unblocks.
//
// Observability: bfhrf.serve.* counters/gauges plus per-request latency,
// queue-wait and queue-depth histograms (docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/bfhrf.hpp"
#include "core/snapshot.hpp"
#include "parallel/bounded_queue.hpp"
#include "parallel/snapshot_slot.hpp"
#include "serve/protocol.hpp"
#include "util/timer.hpp"

namespace bfhrf::serve {

struct ServeOptions {
  /// Bind address. Loopback by default: the daemon trusts its peers (the
  /// admin opcodes carry no authentication), so exposing it wider is an
  /// explicit decision.
  std::string host = "127.0.0.1";

  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;

  /// Query worker threads draining the admission queue.
  std::size_t workers = 2;

  /// Admission-queue capacity (requests); 0 = max(4·workers, 16).
  std::size_t queue_capacity = 0;

  /// Frames larger than this are refused and the connection closed.
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Accept the Publish/Shutdown admin opcodes. Off = queries only.
  bool allow_admin = true;

  /// Engine options for snapshots loaded via the Publish opcode (threads,
  /// batched paths, …). Publish-time loads reuse the CURRENT snapshot's
  /// taxon namespace — an index file stores no labels.
  core::BfhrfOptions load_opts;
};

class RfServer {
 public:
  explicit RfServer(ServeOptions opts = {});
  RfServer(const RfServer&) = delete;
  RfServer& operator=(const RfServer&) = delete;
  ~RfServer();

  /// Swap in a new snapshot; returns its version. Safe at any time, from
  /// any thread, including while queries are in flight (they finish on the
  /// version they leased).
  std::uint64_t publish(std::shared_ptr<const core::IndexSnapshot> snapshot);

  /// Load an index file against the current snapshot's taxon namespace and
  /// publish it (the in-process form of the Publish opcode). Throws if no
  /// snapshot has ever been published.
  std::uint64_t publish_file(const std::string& path);

  /// Bind, listen, and start the accept/reader/worker threads. Requires a
  /// published snapshot (a query server with nothing to serve is a
  /// misconfiguration, not a state). Throws Error on socket failure.
  void start();

  /// Block until shutdown is requested (Shutdown opcode or request_stop).
  void wait();

  /// Ask the server to stop: refuse new work, drain queued work, then
  /// unblock wait(). Idempotent, callable from any thread (including a
  /// worker executing the Shutdown opcode).
  void request_stop();

  /// Full teardown: request_stop, join every thread, close every socket.
  /// Idempotent; must NOT be called from a server thread.
  void stop();

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] bool running() const noexcept {
    return started_.load() && !stopping_.load();
  }

  /// Lease the current snapshot (what a query arriving now would see).
  [[nodiscard]] parallel::SnapshotSlot<core::IndexSnapshot>::Handle
  current() const {
    return slot_.acquire();
  }

  [[nodiscard]] const ServeOptions& options() const noexcept { return opts_; }

 private:
  /// One accepted connection. The reader thread lives in the server (not
  /// here) so the session can be kept alive by queued Work items without a
  /// shared_ptr cycle through its own thread.
  struct Session {
    explicit Session(int fd_in) : fd(fd_in) {}
    ~Session();

    /// Full-duplex shutdown once the reader has exited AND every admitted
    /// request has been answered — the peer then sees EOF instead of
    /// blocking on a connection that will never speak again. Safe to race
    /// (shutdown(2) is idempotent here; the fd closes only in ~Session).
    void finish_if_drained() noexcept;

    int fd = -1;

    /// Admission-order sequence counter, advanced only by this session's
    /// reader thread. The protocol promises responses in request order on
    /// each connection, but several workers can finish two pipelined
    /// requests out of order — so every request takes a sequence number at
    /// admission and send_response() holds a completed response back until
    /// every earlier one is on the wire.
    std::uint64_t next_seq = 0;

    std::mutex write_mu;  ///< guards fd's write half + the three fields below
    std::uint64_t next_write_seq = 0;       ///< first seq not yet written
    std::map<std::uint64_t, Bytes> staged;  ///< done, awaiting earlier seqs
    bool write_broken = false;  ///< a write failed; drop later responses

    std::atomic<bool> done{false};   ///< reader exited
    std::atomic<int> pending{0};     ///< admitted, not yet responded
  };

  struct Work {
    std::shared_ptr<Session> session;
    std::uint64_t seq = 0;  ///< per-session admission order (FIFO key)
    Bytes payload;
    util::WallTimer admitted;  ///< started at admission (queue-wait clock)
  };

  struct Connection {
    std::shared_ptr<Session> session;
    std::jthread reader;
  };

  void accept_loop();
  void session_reader(const std::shared_ptr<Session>& session);
  void worker_loop();
  void process(Work&& work);
  [[nodiscard]] Bytes handle_request(const Request& request,
                                     bool& shutdown_after);
  void send_response(Session& session, std::uint64_t seq,
                     Bytes payload) noexcept;

  /// Join finished readers and drop their sessions (accept-loop hygiene).
  void prune_connections();

  ServeOptions opts_;
  parallel::SnapshotSlot<core::IndexSnapshot> slot_;
  parallel::BoundedQueue<Work> queue_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  std::mutex stop_mu_;
  std::condition_variable cv_stop_;

  std::mutex sessions_mu_;
  std::vector<Connection> connections_;
  std::atomic<std::size_t> active_sessions_{0};

  std::jthread accept_thread_;
  std::vector<std::jthread> workers_;
};

}  // namespace bfhrf::serve
