#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace bfhrf::serve {
namespace {

struct ServeMetrics {
  obs::Counter connections = obs::counter("bfhrf.serve.connections");
  obs::Counter requests = obs::counter("bfhrf.serve.requests");
  obs::Counter query_trees = obs::counter("bfhrf.serve.query_trees");
  obs::Counter errors = obs::counter("bfhrf.serve.errors");
  obs::Counter swaps = obs::counter("bfhrf.serve.swaps");
  obs::Counter rejected = obs::counter("bfhrf.serve.rejected");
  obs::Gauge active_connections =
      obs::gauge("bfhrf.serve.active_connections");
  obs::Gauge snapshot_version = obs::gauge("bfhrf.serve.snapshot_version");
  obs::Histogram request_seconds =
      obs::histogram("bfhrf.serve.request_seconds");
  obs::Histogram queue_seconds = obs::histogram("bfhrf.serve.queue_seconds");
  obs::Histogram queue_depth = obs::histogram(
      "bfhrf.serve.queue_depth", {.min = 1.0, .factor = 2.0, .buckets = 12});
};

const ServeMetrics& metrics() {
  static const ServeMetrics m;
  return m;
}

[[nodiscard]] std::size_t default_queue_capacity(std::size_t workers) {
  return std::max<std::size_t>(4 * workers, 16);
}

}  // namespace

RfServer::Session::~Session() {
  if (fd >= 0) {
    ::close(fd);
  }
}

void RfServer::Session::finish_if_drained() noexcept {
  if (done.load() && pending.load() == 0 && fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

RfServer::RfServer(ServeOptions opts)
    : opts_(std::move(opts)),
      queue_(opts_.queue_capacity != 0 ? opts_.queue_capacity
                                       : default_queue_capacity(
                                             std::max<std::size_t>(
                                                 1, opts_.workers))) {
  opts_.workers = std::max<std::size_t>(1, opts_.workers);
}

RfServer::~RfServer() { stop(); }

std::uint64_t RfServer::publish(
    std::shared_ptr<const core::IndexSnapshot> snapshot) {
  if (snapshot == nullptr) {
    throw InvalidArgument("RfServer::publish: null snapshot");
  }
  const std::uint64_t v = slot_.publish(std::move(snapshot));
  metrics().swaps.inc();
  metrics().snapshot_version.set(static_cast<double>(v));
  obs::flush_thread();
  return v;
}

std::uint64_t RfServer::publish_file(const std::string& path) {
  const auto current = slot_.acquire();
  if (!current) {
    throw InvalidArgument(
        "RfServer::publish_file: no snapshot published yet (the index file "
        "carries no taxon labels, so the namespace must come from the "
        "snapshot being replaced)");
  }
  return publish(core::IndexSnapshot::open(path, current->taxa(),
                                           opts_.load_opts));
}

void RfServer::start() {
  if (started_.exchange(true)) {
    throw InvalidArgument("RfServer::start called twice");
  }
  if (!slot_.acquire()) {
    throw InvalidArgument(
        "RfServer::start: publish an initial snapshot first");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error(std::string("serve: socket failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    throw InvalidArgument("serve: bad bind address '" + opts_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw Error("serve: bind to " + opts_.host + ":" +
                std::to_string(opts_.port) + " failed: " +
                std::strerror(errno));
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    throw Error(std::string("serve: listen failed: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    throw Error(std::string("serve: getsockname failed: ") +
                std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);

  workers_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::jthread([this] { accept_loop(); });
}

void RfServer::wait() {
  std::unique_lock lock(stop_mu_);
  cv_stop_.wait(lock, [this] { return stopping_.load(); });
}

void RfServer::request_stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  // Break the accept loop (shutdown makes a blocked accept() return) and
  // refuse new admissions. close(), not abort(): queued work DRAINS, so no
  // admitted request is ever dropped.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  queue_.close();
  // Stop the readers: SHUT_RD wakes a blocked read_frame with EOF while
  // leaving the write half usable for the responses still draining.
  {
    const std::lock_guard lock(sessions_mu_);
    for (const Connection& c : connections_) {
      if (c.session->fd >= 0) {
        ::shutdown(c.session->fd, SHUT_RD);
      }
    }
  }
  {
    const std::lock_guard lock(stop_mu_);
  }
  cv_stop_.notify_all();
}

void RfServer::stop() {
  if (!started_.load() || stopped_.exchange(true)) {
    return;
  }
  request_stop();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  {
    const std::lock_guard lock(sessions_mu_);
    for (Connection& c : connections_) {
      if (c.session->fd >= 0) {
        ::shutdown(c.session->fd, SHUT_RDWR);
      }
      if (c.reader.joinable()) {
        c.reader.join();
      }
    }
  }
  for (std::jthread& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
  {
    const std::lock_guard lock(sessions_mu_);
    connections_.clear();  // closes the fds (~Session)
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  metrics().active_connections.set(0);
  obs::flush_thread();
}

void RfServer::prune_connections() {
  const std::lock_guard lock(sessions_mu_);
  std::erase_if(connections_, [](Connection& c) {
    if (!c.session->done.load()) {
      return false;
    }
    if (c.reader.joinable()) {
      c.reader.join();
    }
    return true;  // fd closes when the last queued Work reference drops
  });
}

void RfServer::accept_loop() {
  const obs::ScopedThreadSink sink_flush;
  while (!stopping_.load()) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    const int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                            &peer_len);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listen socket shut down (stop) or broken
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    prune_connections();
    metrics().connections.inc();
    metrics().active_connections.set(
        static_cast<double>(active_sessions_.fetch_add(1) + 1));

    auto session = std::make_shared<Session>(fd);
    {
      const std::lock_guard lock(sessions_mu_);
      connections_.push_back(Connection{
          session,
          std::jthread([this, session] { session_reader(session); })});
    }
    // request_stop() sweeps connections_ under sessions_mu_ and SHUT_RDs
    // every reader; a connection inserted after that sweep missed it and
    // its reader would park in read_frame against an idle peer until full
    // stop(). Inserting under the same mutex orders this load after the
    // sweeper's stopping_ store, so re-check and deliver the missed wakeup.
    if (stopping_.load()) {
      ::shutdown(fd, SHUT_RD);
    }
  }
}

void RfServer::session_reader(const std::shared_ptr<Session>& session) {
  const obs::ScopedThreadSink sink_flush;
  const ServeMetrics& m = metrics();
  Bytes payload;
  try {
    while (read_frame(session->fd, payload, opts_.max_frame_bytes)) {
      m.requests.inc();
      m.queue_depth.observe(static_cast<double>(queue_.size()) + 1.0);
      const std::uint64_t seq = session->next_seq++;
      session->pending.fetch_add(1);
      Work work{session, seq, std::move(payload), util::WallTimer{}};
      if (!queue_.push(std::move(work))) {
        // Admission refused: the daemon is draining toward shutdown. The
        // refusal keeps its admission slot in the response order.
        m.rejected.inc();
        send_response(*session, seq,
                      encode(ErrorResult{Status::ShuttingDown,
                                         "server is shutting down"}));
        session->pending.fetch_sub(1);
        break;
      }
      payload = Bytes{};
    }
  } catch (const ParseError& e) {
    // The byte stream itself is unusable (oversized announcement or the
    // peer vanished mid-frame): answer best-effort, then close
    // deliberately — there is no trustworthy frame boundary to resync on.
    m.errors.inc();
    send_response(*session, session->next_seq++,
                  encode(ErrorResult{Status::BadRequest, e.what()}));
  } catch (const Error&) {
    m.errors.inc();  // socket error; nothing to say to the peer
  }
  ::shutdown(session->fd, SHUT_RD);
  session->done.store(true);
  session->finish_if_drained();
  metrics().active_connections.set(
      static_cast<double>(active_sessions_.fetch_sub(1) - 1));
}

void RfServer::worker_loop() {
  const obs::ScopedThreadSink sink_flush;
  Work work;
  while (queue_.pop(work)) {
    process(std::move(work));
    work = Work{};
  }
}

void RfServer::process(Work&& work) {
  const ServeMetrics& m = metrics();
  m.queue_seconds.observe(work.admitted.seconds());

  Bytes response;
  bool shutdown_after = false;
  try {
    const Request request = decode_request(work.payload);
    response = handle_request(request, shutdown_after);
  } catch (const ParseError& e) {
    m.errors.inc();
    response = encode(ErrorResult{Status::BadRequest, e.what()});
  } catch (const InvalidArgument& e) {
    m.errors.inc();
    response = encode(ErrorResult{Status::BadRequest, e.what()});
  } catch (const std::exception& e) {
    m.errors.inc();
    response = encode(ErrorResult{Status::ServerError, e.what()});
  }

  send_response(*work.session, work.seq, std::move(response));
  m.request_seconds.observe(work.admitted.seconds());
  work.session->pending.fetch_sub(1);
  work.session->finish_if_drained();
  if (shutdown_after) {
    request_stop();
  }
}

Bytes RfServer::handle_request(const Request& request, bool& shutdown_after) {
  const ServeMetrics& m = metrics();
  if (std::holds_alternative<PingRequest>(request)) {
    return encode_ok();
  }
  if (const auto* query = std::get_if<QueryRequest>(&request)) {
    const auto handle = slot_.acquire();
    if (!handle) {
      return encode(
          ErrorResult{Status::ServerError, "no index snapshot published"});
    }
    QueryResult result;
    result.snapshot_version = handle.version();
    result.avg_rf.reserve(query->newicks.size());
    for (const std::string& newick : query->newicks) {
      result.avg_rf.push_back(handle->query_newick(newick));
    }
    m.query_trees.inc(query->newicks.size());
    return encode(result);
  }
  if (std::holds_alternative<StatsRequest>(request)) {
    const auto handle = slot_.acquire();
    if (!handle) {
      return encode(
          ErrorResult{Status::ServerError, "no index snapshot published"});
    }
    const core::BfhrfStats stats = handle->stats();
    StatsResult result;
    result.snapshot_version = handle.version();
    result.taxa = handle->taxa()->size();
    result.reference_trees = stats.reference_trees;
    result.unique_bipartitions = stats.unique_bipartitions;
    result.total_bipartitions = stats.total_bipartitions;
    return encode(result);
  }
  if (const auto* publish_req = std::get_if<PublishRequest>(&request)) {
    if (!opts_.allow_admin) {
      return encode(
          ErrorResult{Status::BadRequest, "admin opcodes are disabled"});
    }
    return encode(PublishResult{publish_file(publish_req->path)});
  }
  if (std::holds_alternative<ShutdownRequest>(request)) {
    if (!opts_.allow_admin) {
      return encode(
          ErrorResult{Status::BadRequest, "admin opcodes are disabled"});
    }
    shutdown_after = true;  // respond first, then initiate the drain
    return encode_ok();
  }
  return encode(ErrorResult{Status::BadRequest, "unhandled request kind"});
}

void RfServer::send_response(Session& session, std::uint64_t seq,
                             Bytes payload) noexcept {
  const std::lock_guard lock(session.write_mu);
  if (session.write_broken) {
    return;  // the peer is gone; responses can only be dropped now
  }
  // Per-session FIFO: stage the completed response, then flush the longest
  // in-order run. Workers finish pipelined requests in any order, but the
  // wire contract (protocol.hpp) is request order per connection — a
  // response waits here until every earlier admission has been written.
  session.staged.emplace(seq, std::move(payload));
  try {
    auto it = session.staged.begin();
    while (it != session.staged.end() &&
           it->first == session.next_write_seq) {
      write_frame(session.fd, it->second);
      it = session.staged.erase(it);
      ++session.next_write_seq;
    }
  } catch (...) {
    // The peer is gone; its in-flight work is already done. Nothing to
    // unwind — the reader will observe the dead socket and retire, and
    // later responses for this session are dropped (never reordered past
    // the failed frame).
    session.write_broken = true;
    session.staged.clear();
    metrics().errors.inc();
  }
}

}  // namespace bfhrf::serve
