// Wire protocol for the RF query daemon (src/serve/server.hpp).
//
// Length-prefixed binary frames over a byte stream (TCP loopback or any
// stream socket). Everything is little-endian; doubles travel as their
// IEEE-754 bit pattern in a u64.
//
//   frame    := u32 n | payload[n]            1 <= n <= max_frame_bytes
//   request  := u8 op | body                  (client -> server)
//   response := u8 status | body              (server -> client)
//
// Request bodies by op:
//   Ping(1)     —
//   Query(2)    u32 count, then count x { u32 len, bytes newick }
//   Stats(3)    —
//   Publish(4)  u32 len, bytes index-file path     (admin)
//   Shutdown(5) —                                  (admin)
//
// Ok(0) response bodies mirror the request op (the client knows what it
// sent; responses on one connection are answered in request order):
//   Ping/Shutdown — empty
//   Query    u64 snapshot_version, u32 count, count x f64 avg RF
//   Stats    u64 snapshot_version, u64 taxa, u64 reference_trees,
//            u64 unique_bipartitions, u64 total_bipartitions
//   Publish  u64 snapshot_version
// Non-Ok responses carry { u32 len, bytes utf-8 message }.
//
// Robustness contract (tested in tests/serve/protocol_test.cpp): decoders
// throw ParseError — never crash, never over-read — on truncated bodies,
// unknown ops/statuses, length fields pointing past the payload, and
// trailing garbage (every decoder must consume its payload exactly).
// Declared element counts are validated against the bytes actually present
// BEFORE any allocation, so a hostile count cannot balloon memory.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

namespace bfhrf::serve {

using Bytes = std::vector<std::uint8_t>;

/// Frames larger than this are refused by default — big enough for ~10^5
/// query trees per request, small enough that a hostile length prefix
/// cannot make the server buffer gigabytes.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 8u << 20;

enum class Op : std::uint8_t {
  Ping = 1,
  Query = 2,
  Stats = 3,
  Publish = 4,
  Shutdown = 5,
};

enum class Status : std::uint8_t {
  Ok = 0,
  BadRequest = 1,    ///< malformed frame / unknown op / bad tree text
  ServerError = 2,   ///< valid request, server-side failure
  ShuttingDown = 3,  ///< request refused: daemon is stopping
};

// --- requests ---------------------------------------------------------------

struct PingRequest {};
struct QueryRequest {
  std::vector<std::string> newicks;
};
struct StatsRequest {};
struct PublishRequest {
  std::string path;
};
struct ShutdownRequest {};

using Request = std::variant<PingRequest, QueryRequest, StatsRequest,
                             PublishRequest, ShutdownRequest>;

[[nodiscard]] Bytes encode(const PingRequest& req);
[[nodiscard]] Bytes encode(const QueryRequest& req);
[[nodiscard]] Bytes encode(const StatsRequest& req);
[[nodiscard]] Bytes encode(const PublishRequest& req);
[[nodiscard]] Bytes encode(const ShutdownRequest& req);

/// Parse a request payload (the bytes inside one frame). Throws ParseError
/// on any malformation; never reads outside `payload`.
[[nodiscard]] Request decode_request(std::span<const std::uint8_t> payload);

// --- responses --------------------------------------------------------------

struct QueryResult {
  std::uint64_t snapshot_version = 0;
  std::vector<double> avg_rf;
};

struct StatsResult {
  std::uint64_t snapshot_version = 0;
  std::uint64_t taxa = 0;
  std::uint64_t reference_trees = 0;
  std::uint64_t unique_bipartitions = 0;
  std::uint64_t total_bipartitions = 0;
};

struct PublishResult {
  std::uint64_t snapshot_version = 0;
};

struct ErrorResult {
  Status status = Status::BadRequest;  ///< never Ok
  std::string message;
};

/// Ok response with an empty body (Ping, Shutdown).
[[nodiscard]] Bytes encode_ok();
[[nodiscard]] Bytes encode(const QueryResult& res);
[[nodiscard]] Bytes encode(const StatsResult& res);
[[nodiscard]] Bytes encode(const PublishResult& res);
[[nodiscard]] Bytes encode(const ErrorResult& res);

/// Status byte of a response payload (throws ParseError on empty payload
/// or an unknown status value).
[[nodiscard]] Status response_status(std::span<const std::uint8_t> payload);

/// Decoders for Ok bodies; each throws ParseError if the payload is not an
/// exactly-consumed Ok response of the right shape.
void decode_ok_empty(std::span<const std::uint8_t> payload);
[[nodiscard]] QueryResult decode_query_result(
    std::span<const std::uint8_t> payload);
[[nodiscard]] StatsResult decode_stats_result(
    std::span<const std::uint8_t> payload);
[[nodiscard]] PublishResult decode_publish_result(
    std::span<const std::uint8_t> payload);

/// Decode a non-Ok response (throws ParseError if the payload is Ok or
/// malformed).
[[nodiscard]] ErrorResult decode_error(std::span<const std::uint8_t> payload);

// --- stream framing ---------------------------------------------------------

/// Read one frame from `fd` into `payload`. Returns false on clean EOF at
/// a frame boundary (peer closed between frames). Throws ParseError when
/// the peer closes mid-frame (truncated) or announces a length of 0 or
/// more than `max_bytes` (oversized), and Error on socket failure.
[[nodiscard]] bool read_frame(int fd, Bytes& payload,
                              std::uint32_t max_bytes = kDefaultMaxFrameBytes);

/// Write `payload` as one length-prefixed frame. Throws Error on failure.
void write_frame(int fd, std::span<const std::uint8_t> payload);

}  // namespace bfhrf::serve
