// Replayable failure artifacts.
//
// When the harness finds a divergence it emits a single self-contained
// text file — the (minimized) Newick bundle plus the seed and engine
// configuration — so one command reruns the exact failure:
//
//   bfhrf_verify --replay failure.repro
//
// Format (line-oriented, '#' comments):
//
//   # bfhrf-verify artifact v1
//   seed 0x1F2E
//   threads 1,2,0
//   include_trivial 0
//   note <one line: the first divergence observed>
//   taxon t0            (one line per taxon, in bit-index order, so the
//   taxon t1             bitmask universe is reproduced exactly even for
//   ...                  taxa the shrinker pruned from every tree)
//   tree (t0,(t1,t2),t3);
//   tree ...;
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"

namespace bfhrf::qc {

struct Artifact {
  std::uint64_t seed = 0;
  std::vector<std::size_t> thread_counts = {1, 2, 0};
  bool include_trivial = false;
  std::string note;  ///< single line; newlines are replaced on write
  phylo::TaxonSetPtr taxa;
  std::vector<phylo::Tree> trees;
};

/// Serialize to `path`. Throws Error on I/O failure.
void write_artifact(const std::string& path, const Artifact& artifact);

/// Parse an artifact file. Throws ParseError on malformed input.
[[nodiscard]] Artifact read_artifact(const std::string& path);

}  // namespace bfhrf::qc
