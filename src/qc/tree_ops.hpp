// Structural tree transformations used by the verification harness.
//
// These are *test-oracle* operations, deliberately independent of the
// engine hot paths they exercise: each one rebuilds a fresh arena by plain
// traversal so a bug in the optimized extraction/streaming code cannot
// leak into the transformation that is supposed to catch it.
#pragma once

#include <cstdint>
#include <vector>

#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"

namespace bfhrf::qc {

/// Clone `tree` with every leaf's taxon id mapped through `perm`
/// (perm[old_id] = new_id over the same TaxonSet universe). RF between any
/// two trees is invariant under a shared relabeling — the metamorphic
/// relation check_invariants() exercises with this.
[[nodiscard]] phylo::Tree relabel_taxa(const phylo::Tree& tree,
                                       const std::vector<phylo::TaxonId>&
                                           perm);

/// Clone `tree` rerooted at the internal node `new_root` (rebuilt over the
/// undirected edge set; branch lengths travel with their edge, stored on
/// the child end as usual). Bipartition extraction is rooting-invariant,
/// so RF(tree, rerooted) must be 0. Throws InvalidArgument if `new_root`
/// is a leaf.
[[nodiscard]] phylo::Tree reroot_at(const phylo::Tree& tree,
                                    phylo::NodeId new_root);

/// Clone `tree` with the internal non-root node `victim` contracted: its
/// children are spliced into its parent (one fewer internal edge, i.e. one
/// fewer candidate bipartition). Throws InvalidArgument if `victim` is the
/// root or a leaf. The shrinker's edge-collapse pass uses this.
[[nodiscard]] phylo::Tree collapse_internal_node(const phylo::Tree& tree,
                                                 phylo::NodeId victim);

/// Internal non-root node ids of `tree` (the collapse candidates).
[[nodiscard]] std::vector<phylo::NodeId> internal_nonroot_nodes(
    const phylo::Tree& tree);

/// Deterministic caterpillar whose spine attaches taxa in exactly `order`
/// (order[0], order[1] nearest the root). The max-RF saturation invariant
/// compares an identity-order caterpillar against a riffle-order one.
[[nodiscard]] phylo::Tree caterpillar_with_order(
    const phylo::TaxonSetPtr& taxa, const std::vector<phylo::TaxonId>& order);

/// The "riffle" permutation 0,2,4,...,1,3,5,... of [0, n). An identity
/// caterpillar and a riffle caterpillar over the same taxa share no
/// non-trivial bipartition, so their RF is the maximum 2(n-3).
[[nodiscard]] std::vector<phylo::TaxonId> riffle_order(std::size_t n);

}  // namespace bfhrf::qc
