#include "qc/persist.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <span>
#include <utility>
#include <vector>

#include "core/bfhrf.hpp"
#include "core/index_file.hpp"
#include "core/serialize.hpp"
#include "core/sharded_hash.hpp"
#include "qc/harness.hpp"
#include "util/error.hpp"
#include "util/group_table.hpp"

namespace bfhrf::qc {
namespace {

using core::Bfhrf;
using core::BfhrfOptions;

/// A store's contents as a comparable value: sorted (key words, count)
/// pairs plus the scalar totals.
struct StoreImage {
  std::vector<std::pair<std::vector<std::uint64_t>, std::uint32_t>> keys;
  std::size_t unique = 0;
  std::uint64_t total = 0;
  double weight = 0.0;
};

StoreImage image_of(const core::FrequencyStore& store) {
  StoreImage img;
  img.unique = store.unique_count();
  img.total = store.total_count();
  img.weight = store.total_weight();
  img.keys.reserve(img.unique);
  store.for_each_key([&](util::ConstWordSpan key, std::uint32_t count) {
    img.keys.emplace_back(std::vector<std::uint64_t>(key.begin(), key.end()),
                          count);
  });
  std::sort(img.keys.begin(), img.keys.end());
  return img;
}

struct Context {
  const PersistOracleOptions& opts;
  PersistOracleReport& report;

  void fail(const std::string& what) {
    char seed[32];
    std::snprintf(seed, sizeof seed, "0x%llX",
                  static_cast<unsigned long long>(opts.seed));
    report.failures.push_back("persist: " + what +
                              " (replay with --seed=" + seed + ")");
  }

  bool check(bool ok, const std::string& what) {
    ++report.checks;
    if (!ok) {
      fail(what);
    }
    return ok;
  }
};

void compare_stores(Context& ctx, const core::FrequencyStore& got,
                    const StoreImage& want, const std::string& label) {
  const StoreImage img = image_of(got);
  ctx.check(img.unique == want.unique,
            label + ": unique_count " + std::to_string(img.unique) +
                " != " + std::to_string(want.unique));
  ctx.check(img.total == want.total,
            label + ": total_count " + std::to_string(img.total) +
                " != " + std::to_string(want.total));
  ctx.check(img.weight == want.weight, label + ": total_weight diverged");
  ctx.check(img.keys == want.keys, label + ": (key, count) multiset differs");
}

void compare_queries(Context& ctx, std::span<const double> got,
                     std::span<const double> want, const std::string& label) {
  if (!ctx.check(got.size() == want.size(), label + ": query count differs")) {
    return;
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Bit-identical, not approximately equal: every path ends in the same
    // integer-valued classic-RF accumulation.
    if (!ctx.check(got[i] == want[i],
                   label + ": query " + std::to_string(i) + " avgRF " +
                       std::to_string(got[i]) + " != " +
                       std::to_string(want[i]))) {
      return;
    }
  }
}

/// True when any shard's ctrl section carries a DELETED byte — saved
/// index files must never (writer-side compaction invariant).
bool has_tombstones(const core::MappedIndex& index) {
  for (std::size_t s = 0; s < index.header().shard_count; ++s) {
    const auto ctrl = index.ctrl(s);
    if (std::find(ctrl.begin(), ctrl.end(), util::kCtrlDeleted) !=
        ctrl.end()) {
      return true;
    }
  }
  return false;
}

class ScratchFile {
 public:
  ScratchFile(const std::string& dir, std::uint64_t seed, const char* tag) {
    const std::filesystem::path base =
        dir.empty() ? std::filesystem::temp_directory_path()
                    : std::filesystem::path(dir);
    char name[96];
    std::snprintf(name, sizeof name, "bfhrf_persist_%llx_%s.bfi",
                  static_cast<unsigned long long>(seed), tag);
    path_ = (base / name).string();
  }
  ~ScratchFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

void round_trip_both_formats(Context& ctx, const Bfhrf& engine,
                             std::span<const phylo::Tree> queries,
                             const StoreImage& want,
                             std::span<const double> want_rf,
                             const std::string& label) {
  {
    const ScratchFile file(ctx.opts.scratch_dir, ctx.opts.seed, "v1");
    core::save_bfhrf_file(engine, file.path(), core::IndexFormat::V1Stream);
    const Bfhrf loaded = core::load_bfhrf_file(file.path());
    ++ctx.report.round_trips;
    compare_stores(ctx, loaded.store(), want, label + " v1");
    compare_queries(ctx, loaded.query(queries), want_rf, label + " v1");
  }
  {
    const ScratchFile file(ctx.opts.scratch_dir, ctx.opts.seed, "map");
    core::save_bfhrf_file(engine, file.path(), core::IndexFormat::Mapped);
    const Bfhrf loaded = core::load_bfhrf_file(file.path());
    ++ctx.report.round_trips;
    const auto* mapped =
        dynamic_cast<const core::MappedFrequencyStore*>(&loaded.store());
    if (ctx.check(mapped != nullptr,
                  label + " mapped: load did not serve zero-copy "
                          "(store is not MappedFrequencyStore)")) {
      ctx.check(!has_tombstones(mapped->index()),
                label + " mapped: file contains DELETED ctrl bytes");
    }
    compare_stores(ctx, loaded.store(), want, label + " mapped");
    compare_queries(ctx, loaded.query(queries), want_rf, label + " mapped");
  }
}

}  // namespace

PersistOracleReport check_persist_equivalence(
    const PersistOracleOptions& opts) {
  PersistOracleReport report;
  report.seed = opts.seed;
  Context ctx{opts, report};

  HarnessOptions wl;
  wl.seed = opts.seed;
  wl.n = opts.n;
  wl.r = opts.r;
  wl.q = opts.q;
  wl.moves = opts.moves;
  const Workload workload = make_workload(wl);
  const std::span<const phylo::Tree> reference = workload.reference;
  const std::span<const phylo::Tree> queries = workload.queries;
  const std::size_t n_bits = workload.taxa->size();

  // --- baseline: single-table, single-threaded ---------------------------
  BfhrfOptions base_opts;
  base_opts.shards = 1;
  base_opts.include_trivial = opts.include_trivial;
  Bfhrf baseline(n_bits, base_opts);
  baseline.build(reference);
  const StoreImage want = image_of(baseline.store());
  const std::vector<double> want_rf = baseline.query(queries);

  round_trip_both_formats(ctx, baseline, queries, want, want_rf, "single");

  // --- sharded builds vs baseline, plus their round trips ----------------
  for (const std::size_t shards : opts.shard_counts) {
    for (const std::size_t threads : {std::size_t{1}, opts.threads}) {
      BfhrfOptions sharded_opts;
      sharded_opts.shards = shards;
      sharded_opts.threads = threads;
      sharded_opts.include_trivial = opts.include_trivial;
      Bfhrf sharded(n_bits, sharded_opts);
      sharded.build(reference);
      const std::string label = "shards=" + std::to_string(shards) +
                                " threads=" + std::to_string(threads);
      ctx.check(dynamic_cast<const core::ShardedFrequencyHash*>(
                    &sharded.store()) != nullptr,
                label + ": engine did not build a sharded store");
      compare_stores(ctx, sharded.store(), want, label);
      compare_queries(ctx, sharded.query(queries), want_rf, label);
      if (threads != 1) {
        continue;  // round-trip each shard count once
      }
      round_trip_both_formats(ctx, sharded, queries, want, want_rf, label);
    }
  }

  // --- compressed store round trips --------------------------------------
  {
    BfhrfOptions comp_opts;
    comp_opts.compressed_keys = true;
    comp_opts.include_trivial = opts.include_trivial;
    Bfhrf compressed(n_bits, comp_opts);
    compressed.build(reference);
    compare_queries(ctx, compressed.query(queries), want_rf, "compressed");
    round_trip_both_formats(ctx, compressed, queries, want, want_rf,
                            "compressed");
  }

  // --- tombstoned dynamic state: save must compact -----------------------
  {
    BfhrfOptions dyn_opts;
    dyn_opts.include_trivial = opts.include_trivial;
    core::DynamicBfhIndex index(n_bits, dyn_opts);
    const std::vector<std::size_t> ids = index.add_trees(reference);
    // Remove a third of the trees so some counts hit zero and tombstone.
    for (std::size_t i = 0; i < ids.size(); i += 3) {
      index.remove_tree(ids[i]);
    }
    const StoreImage dyn_want = image_of(index.store());
    const std::vector<double> dyn_rf = index.query(queries);

    const ScratchFile file(opts.scratch_dir, opts.seed, "tomb");
    core::write_index_file(
        index.store(),
        core::IndexFileMeta{.include_trivial = opts.include_trivial,
                            .reference_trees = index.tree_count()},
        file.path());
    ++report.round_trips;
    const Bfhrf loaded = core::load_bfhrf_file(file.path());
    const auto* mapped =
        dynamic_cast<const core::MappedFrequencyStore*>(&loaded.store());
    if (ctx.check(mapped != nullptr, "tombstoned mapped: not zero-copy")) {
      ctx.check(!has_tombstones(mapped->index()),
                "tombstoned mapped: writer persisted DELETED ctrl bytes");
    }
    compare_stores(ctx, loaded.store(), dyn_want, "tombstoned mapped");
    compare_queries(ctx, loaded.query(queries), dyn_rf, "tombstoned mapped");

    // Warm start: reopen the file as a live dynamic index and mutate it.
    core::DynamicBfhIndex reopened =
        core::DynamicBfhIndex::from_index_file(file.path(), dyn_opts);
    compare_stores(ctx, reopened.store(), dyn_want, "warm-start");
    compare_queries(ctx, reopened.query(queries), dyn_rf, "warm-start");
    const std::size_t added = reopened.add_tree(reference.front());
    reopened.remove_tree(added);
    compare_stores(ctx, reopened.store(), dyn_want,
                   "warm-start after add+remove");
  }

  return report;
}

std::string PersistOracleReport::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "persist oracle: %zu checks, %zu round trips, %zu failures "
                "(seed 0x%llX)",
                checks, round_trips, failures.size(),
                static_cast<unsigned long long>(seed));
  return buf;
}

}  // namespace bfhrf::qc
