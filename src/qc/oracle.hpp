// Differential oracle runner (verification layer 1).
//
// The paper's central claim (§III-C) is that BFHRF is an *exact* drop-in
// for tree-versus-tree RF. This module checks that claim mechanically and
// exhaustively: one workload is pushed through every engine and mode in
// the library — sequential BipartitionSet, Day's O(n) algorithm, HashRF,
// the parallel all-pairs matrix, and BFHRF in barrier-batch / pipelined /
// compressed-key / batched-and-legacy-hash form across thread counts —
// and the *full pairwise RF matrix* is compared bit-for-bit, not just the
// average vectors the engines report.
//
// The single source of truth is the sequential BipartitionSet matrix
// (sorted-merge symmetric differences, no hashing, no threads). Every
// other engine either produces a matrix directly (its cells must match
// exactly) or produces per-query averages (which must equal the exact row
// means derived from that matrix — integer sums divided by r, so exact
// double equality applies).
//
// BFHRF reports averages, not matrices; the oracle recovers its full
// matrix column-by-column by building a one-tree reference hash per
// column and querying every tree against it, which drives the real build
// and query paths at per-pair granularity.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/rf_matrix.hpp"
#include "phylo/tree.hpp"

namespace bfhrf::qc {

struct OracleOptions {
  /// Thread counts every parallel engine is run at (0 = hardware default).
  std::vector<std::size_t> thread_counts = {1, 2, 0};

  bool include_trivial = false;

  /// Also run the CompressedFrequencyHash (lossless SparseKeyCodec) store.
  bool check_compressed = true;

  /// Also run the TreeSource streaming paths (pipelined + barrier-batch).
  bool check_streaming = true;

  /// Also run one size-filtered RfVariant config through DS and BFHRF.
  bool check_variants = true;

  /// Workload seed, carried into every failure message so any divergence
  /// is replayable (`--seed=N` / BFHRF_FUZZ_SEED convention). 0 = unset.
  std::uint64_t seed = 0;
};

/// One bit-for-bit disagreement between an engine and the oracle baseline.
struct Divergence {
  std::string engine;    ///< label of the diverging engine/mode
  std::string baseline;  ///< what it was compared against
  std::size_t i = 0;     ///< matrix row, or query index for average checks
  std::size_t j = 0;     ///< matrix column (0 for average checks)
  double expected = 0.0;
  double actual = 0.0;
  [[nodiscard]] std::string to_string() const;
};

struct OracleReport {
  std::vector<Divergence> divergences;
  std::vector<std::string> engines;   ///< every engine/mode label that ran
  std::size_t cells_checked = 0;      ///< total matrix cells + avg entries
  std::size_t trees = 0;              ///< combined collection size
  std::uint64_t seed = 0;             ///< echoed from OracleOptions

  [[nodiscard]] bool ok() const noexcept { return divergences.empty(); }

  /// Human-readable outcome; on failure lists the first divergences and
  /// the seed replay hint.
  [[nodiscard]] std::string summary() const;
};

/// Record every mismatching cell of `actual` against `expected` (first
/// `limit` mismatches). Exposed so the comparison machinery itself is unit
/// testable; cross_check() uses it internally.
void compare_matrices(const std::string& engine, const std::string& baseline,
                      const core::RfMatrix& expected,
                      const core::RfMatrix& actual, OracleReport& report,
                      std::size_t limit = 16);

/// Differential cross-check of one workload.
///
/// `reference` and `queries` mirror the paper's Q-versus-R setting; pass an
/// empty `queries` span for the self-comparison case (Q is R). The full
/// matrix is computed over the combined collection R ∪ Q; average-vector
/// engines run on the (Q, R) split and are checked against exact row means
/// of the oracle matrix. All trees must share one TaxonSet.
[[nodiscard]] OracleReport cross_check(std::span<const phylo::Tree> reference,
                                       std::span<const phylo::Tree> queries,
                                       const OracleOptions& opts = {});

/// Matrix-only cross-check of one collection (the shrinker's predicate:
/// cheaper than the full run, still covers every engine family).
[[nodiscard]] OracleReport cross_check_matrix(
    std::span<const phylo::Tree> trees, const OracleOptions& opts = {});

}  // namespace bfhrf::qc
