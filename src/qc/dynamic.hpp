// Delta-vs-rebuild equivalence oracle (verification layer for
// DynamicBfhIndex, core/bfhrf.hpp).
//
// Drives seeded, replayable sequences of interleaved operations against a
// delta-maintained index — add tree, remove tree, replace a tree with an
// SPR/NNI-perturbed copy, compact — and after EVERY operation asserts the
// index is bit-for-bit equivalent to a Bfhrf rebuilt from scratch over the
// current collection:
//
//  * store contents: the sorted (key, count) multisets are identical, and
//    so are unique/total counts and the (integer-valued, classic-RF)
//    weighted total;
//  * queries: every probe tree's average RF matches to the exact double;
//  * deltas: a replacement touched exactly |old Δ new| bipartitions (the
//    O(edges-changed) bound; an NNI replacement touched at most 1 + 1);
//  * compaction: tombstone_count drops to 0 and contents are unchanged.
//
// Failure messages carry the sequence seed in the --seed/BFHRF_FUZZ_SEED
// replay convention. Designed to run under asan and tsan (probe queries go
// through the engine's parallel query path when threads > 1, exercising
// concurrent readers against the delta-maintained table).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bfhrf::qc {

struct DynamicOracleOptions {
  /// Drives every random decision; sequence k derives its own stream.
  std::uint64_t seed = 0x5eed;

  /// Independent randomized operation sequences to run.
  std::size_t sequences = 8;

  std::size_t n = 16;             ///< taxa
  std::size_t initial_trees = 8;  ///< collection size before the op stream
  std::size_t ops = 24;           ///< interleaved operations per sequence
  std::size_t probes = 6;         ///< probe trees per equivalence check

  /// Also drive the compressed-key store through the same sequence.
  bool compressed_keys = false;
  bool include_trivial = false;

  /// Worker threads for the probe queries (> 1 runs concurrent readers
  /// against the live table — the tsan-relevant configuration).
  std::size_t threads = 1;
};

struct DynamicOracleReport {
  std::vector<std::string> failures;
  std::size_t sequences_run = 0;
  std::size_t operations = 0;  ///< operations applied across all sequences
  std::size_t checks = 0;      ///< post-operation equivalence checks
  std::uint64_t seed = 0;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Run the oracle. Stops a sequence at its first failure (later states of
/// that sequence are meaningless once the index diverged) but always runs
/// every sequence.
[[nodiscard]] DynamicOracleReport check_dynamic_equivalence(
    const DynamicOracleOptions& opts = {});

}  // namespace bfhrf::qc
