#include "qc/oracle.hpp"

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/all_pairs.hpp"
#include "core/bfhrf.hpp"
#include "core/day.hpp"
#include "core/hashrf.hpp"
#include "core/rf.hpp"
#include "core/sequential_rf.hpp"
#include "core/tree_source.hpp"
#include "core/variants.hpp"
#include "phylo/bipartition.hpp"
#include "util/error.hpp"

namespace bfhrf::qc {
namespace {

using core::RfMatrix;
using phylo::BipartitionOptions;
using phylo::BipartitionSet;
using phylo::Tree;

std::string format_seed(std::uint64_t seed) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llX",
                static_cast<unsigned long long>(seed));
  return buf;
}

/// Ground truth: pairwise sorted-merge symmetric differences over
/// precomputed BipartitionSets. No hashing, no threads, no scratch reuse.
RfMatrix matrix_sequential(std::span<const Tree> trees, bool include_trivial) {
  const BipartitionOptions bip{.include_trivial = include_trivial};
  std::vector<BipartitionSet> sets;
  sets.reserve(trees.size());
  for (const Tree& t : trees) {
    sets.push_back(phylo::extract_bipartitions(t, bip));
  }
  RfMatrix m(trees.size());
  for (std::size_t i = 0; i < trees.size(); ++i) {
    for (std::size_t j = i + 1; j < trees.size(); ++j) {
      m.set(i, j,
            static_cast<std::uint32_t>(
                BipartitionSet::symmetric_difference_size(sets[i], sets[j])));
    }
  }
  return m;
}

RfMatrix matrix_day(std::span<const Tree> trees) {
  RfMatrix m(trees.size());
  for (std::size_t i = 0; i < trees.size(); ++i) {
    const core::DayTable table(trees[i]);
    for (std::size_t j = i + 1; j < trees.size(); ++j) {
      m.set(i, j, static_cast<std::uint32_t>(table.rf_against(trees[j])));
    }
  }
  return m;
}

/// Recover BFHRF's full matrix column-by-column: a one-tree reference
/// build per column, every tree queried against it. avgRF over r=1 is the
/// raw pairwise RF, so the cells are exact integers.
RfMatrix matrix_bfhrf_columns(std::span<const Tree> trees,
                              const core::BfhrfOptions& opts, bool stream,
                              OracleReport& report,
                              const std::string& engine_label) {
  const std::size_t n_bits = trees.empty() ? 0 : trees[0].taxa()->size();
  RfMatrix m(trees.size());
  for (std::size_t j = 0; j < trees.size(); ++j) {
    core::Bfhrf engine(n_bits, opts);
    std::vector<double> col;
    if (stream) {
      core::SpanTreeSource ref(trees.subspan(j, 1));
      engine.build(ref);
      core::SpanTreeSource q(trees);
      col = engine.query(q);
    } else {
      engine.build(trees.subspan(j, 1));
      col = engine.query(trees);
    }
    for (std::size_t i = 0; i < trees.size(); ++i) {
      if (i == j) {
        continue;
      }
      const double v = col[i];
      // Cells must be non-negative integers. An invalid cell is itself a
      // divergence (recorded against 0, the smallest valid RF); the cell
      // is clamped so the matrix compare against the oracle still reports
      // the true expected value without casting a negative double (UB).
      if (v < 0.0 || v != std::floor(v)) {
        report.divergences.push_back(
            {engine_label, "integer RF cell", i, j, 0.0, v});
        m.set(i, j, 0);
        continue;
      }
      m.set(i, j, static_cast<std::uint32_t>(v));
    }
  }
  return m;
}

/// Exact expected averages of each query tree against R, derived from the
/// oracle matrix over the combined collection [R, Q] (query k sits at
/// combined index r + k; for the self case Q is R and offset is 0).
std::vector<double> expected_averages(const RfMatrix& matrix, std::size_t r,
                                      std::size_t q, std::size_t q_offset) {
  std::vector<double> out(q, 0.0);
  for (std::size_t k = 0; k < q; ++k) {
    double sum = 0.0;
    for (std::size_t j = 0; j < r; ++j) {
      sum += matrix.at(q_offset + k, j);
    }
    out[k] = sum / static_cast<double>(r);
  }
  return out;
}

void compare_averages(const std::string& engine,
                      std::span<const double> expected,
                      std::span<const double> actual, double scale,
                      OracleReport& report) {
  report.engines.push_back(engine);
  if (expected.size() != actual.size()) {
    report.divergences.push_back({engine, "average-RF vector length", 0, 0,
                                  static_cast<double>(expected.size()),
                                  static_cast<double>(actual.size())});
    return;
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ++report.cells_checked;
    if (expected[i] * scale != actual[i]) {
      report.divergences.push_back(
          {engine, "average-RF vector", i, 0, expected[i] * scale,
           actual[i]});
    }
  }
}

bool all_binary(std::span<const Tree> trees) {
  for (const Tree& t : trees) {
    if (!t.is_binary()) {
      return false;
    }
  }
  return true;
}

void run_matrix_engines(std::span<const Tree> trees, const OracleOptions& opts,
                        const RfMatrix& oracle, OracleReport& report) {
  if (all_binary(trees)) {
    compare_matrices("day", "sequential", oracle, matrix_day(trees), report);
  }

  {
    const auto hashrf = core::hash_rf(
        trees, {.mode = core::HashRfOptions::Mode::Exact,
                .include_trivial = opts.include_trivial});
    compare_matrices("hashrf/exact", "sequential", oracle, hashrf.matrix,
                     report);
  }

  // All-pairs: the legacy merge walk and both bit-matrix engines at every
  // thread count — the engines share no kernels, so agreement here is the
  // bit-for-bit cross-check of the dense-id encoding, the popcount path,
  // and the sorted-id intersection path all at once.
  for (const std::size_t t : opts.thread_counts) {
    static constexpr struct {
      core::AllPairsEngine engine;
      const char* label;
    } kAllPairsEngines[] = {
        {core::AllPairsEngine::Legacy, "all_pairs/legacy/t"},
        {core::AllPairsEngine::BitDense, "all_pairs/dense/t"},
        {core::AllPairsEngine::BitSparse, "all_pairs/sparse/t"},
    };
    for (const auto& e : kAllPairsEngines) {
      const auto m = core::all_pairs_rf(
          trees, {.threads = t,
                  .include_trivial = opts.include_trivial,
                  .engine = e.engine});
      compare_matrices(e.label + std::to_string(t), "sequential", oracle, m,
                       report);
    }
  }

  // BFHRF per-column: the real build+query machinery at pair granularity.
  const auto bfhrf_cols = [&](const char* label, core::BfhrfOptions o,
                              bool stream) {
    o.include_trivial = opts.include_trivial;
    const RfMatrix m =
        matrix_bfhrf_columns(trees, o, stream, report, label);
    compare_matrices(label, "sequential", oracle, m, report);
  };
  for (const std::size_t t : opts.thread_counts) {
    bfhrf_cols(("bfhrf/span/t" + std::to_string(t)).c_str(),
               {.threads = t}, /*stream=*/false);
  }
  // Legacy (pre-optimization) hot loops: virtual per-split hash ops, fresh
  // extraction buffers per tree.
  bfhrf_cols("bfhrf/span/legacy-paths",
             {.threads = 1, .reuse_scratch = false, .batched_hash = false},
             /*stream=*/false);
  if (opts.check_compressed) {
    bfhrf_cols("bfhrf/compressed-keys", {.threads = 1, .compressed_keys = true},
               /*stream=*/false);
  }
  if (opts.check_streaming) {
    bfhrf_cols("bfhrf/stream-pipelined/t2",
               {.threads = 2, .streaming = core::StreamingMode::Pipelined},
               /*stream=*/true);
    bfhrf_cols("bfhrf/stream-barrier/t2",
               {.threads = 2,
                .batch_size = 3,  // force multiple batches at QC scale
                .streaming = core::StreamingMode::BarrierBatch},
               /*stream=*/true);
  }
}

void run_average_engines(std::span<const Tree> reference,
                         std::span<const Tree> queries,
                         const OracleOptions& opts,
                         std::span<const double> expected,
                         OracleReport& report) {
  const core::SequentialRfOptions seq_base{
      .include_trivial = opts.include_trivial};

  {
    auto o = seq_base;
    const auto ds = core::sequential_avg_rf(queries, reference, o);
    compare_averages("seq/ds", expected, ds.avg_rf, 1.0, report);
  }
  for (const std::size_t t : opts.thread_counts) {
    if (t == 1) {
      continue;  // t1 is the DS run above
    }
    auto o = seq_base;
    o.threads = t;
    const auto dsmp = core::sequential_avg_rf(queries, reference, o);
    compare_averages("seq/dsmp-t" + std::to_string(t), expected, dsmp.avg_rf,
                     1.0, report);
  }
  if (all_binary(reference) && all_binary(queries)) {
    auto o = seq_base;
    o.engine = core::PairwiseEngine::Day;
    const auto day = core::sequential_avg_rf(queries, reference, o);
    compare_averages("seq/day", expected, day.avg_rf, 1.0, report);
  }

  const auto bfhrf_avg = [&](const std::string& label, core::BfhrfOptions o,
                             bool stream, double scale) {
    o.include_trivial = opts.include_trivial;
    const std::size_t n_bits =
        reference.empty() ? 0 : reference[0].taxa()->size();
    core::Bfhrf engine(n_bits, o);
    std::vector<double> avg;
    if (stream) {
      core::SpanTreeSource ref(reference);
      engine.build(ref);
      core::SpanTreeSource q(queries);
      avg = engine.query(q);
    } else {
      engine.build(reference);
      avg = engine.query(queries);
    }
    compare_averages(label, expected, avg, scale, report);
  };

  for (const std::size_t t : opts.thread_counts) {
    bfhrf_avg("bfhrf/span/t" + std::to_string(t), {.threads = t},
              /*stream=*/false, 1.0);
  }
  bfhrf_avg("bfhrf/span/legacy-paths",
            {.threads = 1, .reuse_scratch = false, .batched_hash = false},
            /*stream=*/false, 1.0);
  // Normalization conventions scale the exact value; HalfSum must be
  // exactly half of the raw average (§III-C "occasional division by 2").
  bfhrf_avg("bfhrf/span/half-sum",
            {.threads = 1, .norm = core::RfNorm::HalfSum},
            /*stream=*/false, 0.5);
  if (opts.check_compressed) {
    bfhrf_avg("bfhrf/compressed-keys", {.threads = 1, .compressed_keys = true},
              /*stream=*/false, 1.0);
  }
  if (opts.check_streaming) {
    for (const std::size_t t : opts.thread_counts) {
      bfhrf_avg("bfhrf/stream-pipelined/t" + std::to_string(t),
                {.threads = t, .streaming = core::StreamingMode::Pipelined},
                /*stream=*/true, 1.0);
      bfhrf_avg("bfhrf/stream-barrier/t" + std::to_string(t),
                {.threads = t,
                 .batch_size = 3,
                 .streaming = core::StreamingMode::BarrierBatch},
                /*stream=*/true, 1.0);
    }
  }

  if (opts.check_variants) {
    // One generalized-RF config through both engine families: the variant
    // hooks must behave identically on the hash-build and query sides.
    const std::size_t n_bits =
        reference.empty() ? 0 : reference[0].taxa()->size();
    const core::SizeFilteredRf variant(2, n_bits / 2 + 1);
    auto so = seq_base;
    so.variant = &variant;
    const auto ds = core::sequential_avg_rf(queries, reference, so);

    core::BfhrfOptions bo;
    bo.include_trivial = opts.include_trivial;
    bo.variant = &variant;
    core::Bfhrf engine(n_bits, bo);
    engine.build(reference);
    const auto bfh = engine.query(queries);
    compare_averages("bfhrf/size-filtered-vs-seq", ds.avg_rf, bfh, 1.0,
                     report);
  }
}

}  // namespace

std::string Divergence::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s vs %s at (%zu,%zu): expected %.17g, got %.17g",
                engine.c_str(), baseline.c_str(), i, j, expected, actual);
  return buf;
}

std::string OracleReport::summary() const {
  std::string out;
  if (ok()) {
    out = "oracle OK: " + std::to_string(engines.size()) + " engine runs, " +
          std::to_string(cells_checked) + " cells bit-identical over " +
          std::to_string(trees) + " trees";
  } else {
    out = "oracle FAILED: " + std::to_string(divergences.size()) +
          " divergence(s) across " + std::to_string(engines.size()) +
          " engine runs";
    const std::size_t show = std::min<std::size_t>(divergences.size(), 8);
    for (std::size_t i = 0; i < show; ++i) {
      out += "\n  " + divergences[i].to_string();
    }
    if (divergences.size() > show) {
      out += "\n  ... " + std::to_string(divergences.size() - show) + " more";
    }
  }
  if (seed != 0) {
    out += "\n  seed=" + format_seed(seed) +
           " (replay with --seed=" + format_seed(seed) + ")";
  }
  return out;
}

void compare_matrices(const std::string& engine, const std::string& baseline,
                      const core::RfMatrix& expected,
                      const core::RfMatrix& actual, OracleReport& report,
                      std::size_t limit) {
  report.engines.push_back(engine);
  if (expected.size() != actual.size()) {
    report.divergences.push_back({engine, baseline + " (matrix size)", 0, 0,
                                  static_cast<double>(expected.size()),
                                  static_cast<double>(actual.size())});
    return;
  }
  std::size_t recorded = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    for (std::size_t j = i + 1; j < expected.size(); ++j) {
      ++report.cells_checked;
      if (expected.at(i, j) != actual.at(i, j) && recorded < limit) {
        report.divergences.push_back(
            {engine, baseline, i, j, static_cast<double>(expected.at(i, j)),
             static_cast<double>(actual.at(i, j))});
        ++recorded;
      }
    }
  }
}

OracleReport cross_check_matrix(std::span<const phylo::Tree> trees,
                                const OracleOptions& opts) {
  OracleReport report;
  report.seed = opts.seed;
  report.trees = trees.size();
  if (trees.size() < 2) {
    return report;
  }
  const RfMatrix oracle = matrix_sequential(trees, opts.include_trivial);
  report.engines.push_back("sequential");
  run_matrix_engines(trees, opts, oracle, report);
  return report;
}

OracleReport cross_check(std::span<const phylo::Tree> reference,
                         std::span<const phylo::Tree> queries,
                         const OracleOptions& opts) {
  OracleReport report;
  report.seed = opts.seed;
  if (reference.empty()) {
    throw InvalidArgument("qc::cross_check: empty reference collection");
  }

  // Combined collection R ∪ Q (self case: queries empty, Q is R).
  std::vector<Tree> combined(reference.begin(), reference.end());
  const std::size_t q_offset = queries.empty() ? 0 : reference.size();
  combined.insert(combined.end(), queries.begin(), queries.end());
  report.trees = combined.size();

  const RfMatrix oracle =
      matrix_sequential(combined, opts.include_trivial);
  report.engines.push_back("sequential");
  run_matrix_engines(combined, opts, oracle, report);

  const std::span<const Tree> q =
      queries.empty() ? reference : queries;
  const std::vector<double> expected =
      expected_averages(oracle, reference.size(), q.size(), q_offset);
  run_average_engines(reference, q, opts, expected, report);
  return report;
}

}  // namespace bfhrf::qc
