#include "qc/shrink.hpp"

#include <algorithm>

#include "core/restrict.hpp"
#include "qc/tree_ops.hpp"
#include "util/bitset.hpp"
#include "util/error.hpp"

namespace bfhrf::qc {
namespace {

using phylo::NodeId;
using phylo::Tree;

class Shrinker {
 public:
  Shrinker(const FailurePredicate& fails, const ShrinkOptions& opts)
      : fails_(fails), opts_(opts) {}

  /// Guarded predicate call: counts against the budget; exceptions and an
  /// exhausted budget both read as "does not reproduce".
  bool reproduces(std::span<const Tree> candidate) {
    if (calls_ >= opts_.max_predicate_calls) {
      hit_limit_ = true;
      return false;
    }
    ++calls_;
    try {
      return fails_(candidate);
    } catch (...) {
      return false;
    }
  }

  /// Classic ddmin over the tree list: try dropping complements/chunks at
  /// doubling granularity until no chunk can be removed.
  void ddmin_trees(std::vector<Tree>& cur) {
    std::size_t granularity = 2;
    while (cur.size() >= 2 && !hit_limit_) {
      const std::size_t chunk =
          std::max<std::size_t>(1, cur.size() / granularity);
      bool progress = false;
      for (std::size_t start = 0; start < cur.size(); start += chunk) {
        std::vector<Tree> candidate;
        candidate.reserve(cur.size());
        for (std::size_t i = 0; i < cur.size(); ++i) {
          if (i < start || i >= start + chunk) {
            candidate.push_back(cur[i]);
          }
        }
        if (candidate.empty()) {
          continue;
        }
        if (reproduces(candidate)) {
          cur = std::move(candidate);
          granularity = std::max<std::size_t>(2, granularity - 1);
          progress = true;
          break;
        }
      }
      if (!progress) {
        if (chunk == 1) {
          break;  // 1-minimal
        }
        granularity = std::min(cur.size(), granularity * 2);
      }
    }
  }

  /// Drop taxa one at a time (restricting every tree) while the failure
  /// persists and at least min_taxa remain.
  void drop_taxa(std::vector<Tree>& cur) {
    bool progress = true;
    while (progress && !hit_limit_) {
      progress = false;
      const util::DynamicBitset present = core::union_taxa(cur);
      std::vector<std::size_t> taxa;
      present.for_each_set_bit([&](std::size_t b) { taxa.push_back(b); });
      if (taxa.size() <= opts_.min_taxa) {
        return;
      }
      for (const std::size_t victim : taxa) {
        util::DynamicBitset keep = present;
        keep.reset(victim);
        std::vector<Tree> candidate;
        candidate.reserve(cur.size());
        try {
          for (const Tree& t : cur) {
            candidate.push_back(core::restrict_to_taxa(t, keep));
          }
        } catch (const Error&) {
          continue;  // a tree would drop below 2 leaves
        }
        if (reproduces(candidate)) {
          cur = std::move(candidate);
          progress = true;
          break;
        }
      }
    }
  }

  /// Contract internal edges tree-by-tree while the failure persists.
  void collapse_edges(std::vector<Tree>& cur) {
    bool progress = true;
    while (progress && !hit_limit_) {
      progress = false;
      for (std::size_t i = 0; i < cur.size() && !progress; ++i) {
        for (const NodeId victim : internal_nonroot_nodes(cur[i])) {
          std::vector<Tree> candidate(cur.begin(), cur.end());
          candidate[i] = collapse_internal_node(cur[i], victim);
          if (reproduces(candidate)) {
            cur = std::move(candidate);
            progress = true;
            break;
          }
        }
      }
    }
  }

  ShrinkResult run(std::span<const Tree> failing) {
    std::vector<Tree> cur(failing.begin(), failing.end());
    // Fixpoint over the three passes: a taxon drop can enable another
    // tree drop and vice versa.
    std::size_t before_calls;
    do {
      before_calls = calls_;
      const std::size_t trees_before = cur.size();
      const std::size_t nodes_before = total_nodes(cur);
      if (opts_.shrink_trees) {
        ddmin_trees(cur);
      }
      if (opts_.shrink_taxa) {
        drop_taxa(cur);
      }
      if (opts_.collapse_edges) {
        collapse_edges(cur);
      }
      if (cur.size() == trees_before && total_nodes(cur) == nodes_before) {
        break;  // no structural progress this round
      }
    } while (!hit_limit_ && calls_ > before_calls);

    ShrinkResult result;
    result.taxa_remaining = core::union_taxa(cur).count();
    result.trees = std::move(cur);
    result.predicate_calls = calls_;
    result.hit_call_limit = hit_limit_;
    return result;
  }

 private:
  static std::size_t total_nodes(const std::vector<Tree>& trees) {
    std::size_t n = 0;
    for (const Tree& t : trees) {
      n += t.num_nodes();
    }
    return n;
  }

  const FailurePredicate& fails_;
  const ShrinkOptions& opts_;
  std::size_t calls_ = 0;
  bool hit_limit_ = false;
};

}  // namespace

ShrinkResult shrink_failure(std::span<const Tree> failing,
                            const FailurePredicate& fails,
                            const ShrinkOptions& opts) {
  if (failing.empty()) {
    throw InvalidArgument("shrink_failure: empty input collection");
  }
  if (!fails(failing)) {
    throw InvalidArgument(
        "shrink_failure: predicate does not fail on the input collection");
  }
  Shrinker shrinker(fails, opts);
  return shrinker.run(failing);
}

}  // namespace bfhrf::qc
