#include "qc/dynamic.hpp"

#include <algorithm>
#include <cstdio>
#include <span>
#include <utility>

#include "core/bfhrf.hpp"
#include "core/compressed_hash.hpp"
#include "core/frequency_hash.hpp"
#include "phylo/bipartition.hpp"
#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"
#include "sim/generators.hpp"
#include "sim/moves.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace bfhrf::qc {
namespace {

using phylo::Tree;

std::string hex_seed(std::uint64_t seed) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llX",
                static_cast<unsigned long long>(seed));
  return buf;
}

/// A store's full contents in canonical (compare_words-sorted) order — the
/// bit-for-bit comparison unit of the oracle.
using KeyCount = std::pair<std::vector<std::uint64_t>, std::uint32_t>;

std::vector<KeyCount> contents(const core::FrequencyStore& store) {
  std::vector<KeyCount> out;
  out.reserve(store.unique_count());
  store.for_each_key([&](util::ConstWordSpan key, std::uint32_t count) {
    out.emplace_back(std::vector<std::uint64_t>(key.begin(), key.end()),
                     count);
  });
  std::sort(out.begin(), out.end(),
            [](const KeyCount& a, const KeyCount& b) {
              return util::compare_words(
                         {a.first.data(), a.first.size()},
                         {b.first.data(), b.first.size()}) < 0;
            });
  return out;
}

std::size_t tombstones(const core::FrequencyStore& store) {
  if (const auto* h = dynamic_cast<const core::FrequencyHash*>(&store)) {
    return h->tombstone_count();
  }
  if (const auto* c =
          dynamic_cast<const core::CompressedFrequencyHash*>(&store)) {
    return c->tombstone_count();
  }
  return 0;
}

/// One random tree; the class cycles so every topology family (balanced,
/// uniform, caterpillar worst case, multifurcating) flows through the
/// delta paths.
Tree make_tree(const phylo::TaxonSetPtr& taxa, util::Rng& rng,
               std::size_t index) {
  switch (index % 4) {
    case 0:
      return sim::yule_tree(taxa, rng);
    case 1:
      return sim::uniform_tree(taxa, rng);
    case 2:
      return sim::caterpillar_tree(taxa, rng);
    default:
      return sim::multifurcating_tree(taxa, rng, 0.3);
  }
}

struct SequenceContext {
  const DynamicOracleOptions& opts;
  DynamicOracleReport& report;
  std::size_t sequence = 0;
  std::size_t op = 0;          ///< operation ordinal within the sequence
  const char* op_name = "init";

  void fail(const std::string& what) const {
    char prefix[96];
    std::snprintf(prefix, sizeof prefix, "dynamic: seq %zu op %zu (%s): ",
                  sequence, op, op_name);
    report.failures.push_back(prefix + what + " (replay with --seed=" +
                              hex_seed(opts.seed) + ")");
  }
};

/// Assert the delta-maintained index is bit-for-bit equivalent to a
/// from-scratch rebuild over `model`. Returns false on divergence.
bool check_equivalence(const core::DynamicBfhIndex& index,
                       const phylo::TaxonSetPtr& taxa,
                       std::span<const Tree> model,
                       std::span<const Tree> probes,
                       const core::BfhrfOptions& engine_opts,
                       const SequenceContext& ctx) {
  ++ctx.report.checks;
  core::Bfhrf rebuilt(taxa->size(), engine_opts);
  rebuilt.build(model);

  const core::FrequencyStore& live = index.store();
  const core::FrequencyStore& fresh = rebuilt.store();
  bool ok = true;
  if (live.unique_count() != fresh.unique_count()) {
    ctx.fail("unique_count " + std::to_string(live.unique_count()) +
             " != rebuild " + std::to_string(fresh.unique_count()));
    ok = false;
  }
  if (live.total_count() != fresh.total_count()) {
    ctx.fail("total_count " + std::to_string(live.total_count()) +
             " != rebuild " + std::to_string(fresh.total_count()));
    ok = false;
  }
  // Classic RF: weights are all 1.0, so both totals are integer-valued
  // doubles and must agree exactly despite the different operation order.
  if (live.total_weight() != fresh.total_weight()) {
    ctx.fail("total_weight diverged from rebuild");
    ok = false;
  }
  if (contents(live) != contents(fresh)) {
    ctx.fail("store contents (sorted key/count multiset) diverge from "
             "rebuild");
    ok = false;
  }
  if (!ok || model.empty()) {
    return ok;
  }
  // Probe queries through the engine's (possibly parallel) query path:
  // concurrent readers against the delta-maintained table under tsan.
  const std::vector<double> got =
      index.query(std::span<const Tree>(probes.data(), probes.size()));
  const std::vector<double> want =
      rebuilt.query(std::span<const Tree>(probes.data(), probes.size()));
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) {
      ctx.fail("probe " + std::to_string(i) + " avgRF " +
               std::to_string(got[i]) + " != rebuild " +
               std::to_string(want[i]));
      return false;
    }
  }
  return true;
}

void run_sequence(std::size_t sequence, const DynamicOracleOptions& opts,
                  DynamicOracleReport& report) {
  util::Rng rng(util::mix64(opts.seed ^ (0x9e3779b97f4a7c15ULL * sequence)));
  SequenceContext ctx{opts, report, sequence};

  const phylo::TaxonSetPtr taxa = phylo::TaxonSet::make_numbered(opts.n);
  core::BfhrfOptions engine_opts;
  engine_opts.threads = opts.threads;
  engine_opts.compressed_keys = opts.compressed_keys;
  engine_opts.include_trivial = opts.include_trivial;
  core::DynamicBfhIndex index(taxa->size(), engine_opts);

  std::vector<Tree> probes;
  probes.reserve(opts.probes);
  for (std::size_t i = 0; i < opts.probes; ++i) {
    probes.push_back(make_tree(taxa, rng, i));
  }

  // Model state: the trees the index should currently represent, with
  // their ids (aligned vectors; removal swap-erases both).
  std::vector<Tree> model;
  std::vector<std::size_t> ids;
  std::size_t made = 0;

  std::vector<Tree> initial;
  for (std::size_t i = 0; i < opts.initial_trees; ++i) {
    initial.push_back(make_tree(taxa, rng, made++));
  }
  const std::vector<std::size_t> initial_ids = index.add_trees(initial);
  model = initial;
  ids = initial_ids;
  if (!check_equivalence(index, taxa, model, probes, engine_opts, ctx)) {
    return;
  }

  const phylo::BipartitionOptions bip_opts{
      .include_trivial = opts.include_trivial, .sorted = true};
  for (ctx.op = 1; ctx.op <= opts.ops; ++ctx.op) {
    ++report.operations;
    const std::uint64_t roll = rng() % 100;
    if (roll < 20) {
      ctx.op_name = "add";
      Tree t = make_tree(taxa, rng, made++);
      ids.push_back(index.add_tree(t));
      model.push_back(std::move(t));
    } else if (roll < 30) {
      ctx.op_name = "add_batch";
      std::vector<Tree> batch;
      batch.push_back(make_tree(taxa, rng, made++));
      batch.push_back(make_tree(taxa, rng, made++));
      for (const std::size_t id : index.add_trees(batch)) {
        ids.push_back(id);
      }
      model.insert(model.end(), batch.begin(), batch.end());
    } else if (roll < 50 && model.size() > 1) {
      ctx.op_name = "remove";
      const std::size_t pick = rng() % model.size();
      index.remove_tree(ids[pick]);
      model[pick] = std::move(model.back());
      model.pop_back();
      ids[pick] = ids.back();
      ids.pop_back();
    } else if (roll < 60 && model.size() > 2) {
      ctx.op_name = "remove_batch";
      // Two distinct victims, largest model index first so the second
      // swap-erase cannot disturb the first victim's position.
      std::size_t a = rng() % model.size();
      std::size_t b = rng() % (model.size() - 1);
      if (b >= a) {
        ++b;
      }
      if (a < b) {
        std::swap(a, b);
      }
      const std::size_t victims[2] = {ids[a], ids[b]};
      index.remove_trees(victims);
      for (const std::size_t pick : {a, b}) {
        model[pick] = std::move(model.back());
        model.pop_back();
        ids[pick] = ids.back();
        ids.pop_back();
      }
    } else if (roll < 90 && !model.empty()) {
      ctx.op_name = "replace";
      const std::size_t pick = rng() % model.size();
      Tree next = model[pick];
      const bool nni = (rng() & 1) != 0;
      const bool changed =
          nni ? sim::random_nni(next, rng) : sim::random_spr_leaf(next, rng);
      // Independent O(edges-changed) witness: the symmetric difference of
      // the two bipartition sets bounds what the delta path may touch.
      const auto before = phylo::extract_bipartitions(model[pick], bip_opts);
      const auto after = phylo::extract_bipartitions(next, bip_opts);
      const std::size_t sym =
          phylo::BipartitionSet::symmetric_difference_size(before, after);
      const auto delta = index.replace_tree(ids[pick], next);
      if (delta.keys_removed + delta.keys_added != sym) {
        ctx.fail("delta touched " +
                 std::to_string(delta.keys_removed + delta.keys_added) +
                 " bipartitions, expected the symmetric difference " +
                 std::to_string(sym));
        return;
      }
      if (nni && changed &&
          (delta.keys_removed > 1 || delta.keys_added > 1)) {
        ctx.fail("NNI replacement exceeded the 1-removed/1-added bound");
        return;
      }
      model[pick] = std::move(next);
    } else {
      ctx.op_name = "compact";
      index.compact();
      if (tombstones(index.store()) != 0) {
        ctx.fail("tombstones survived compaction: " +
                 std::to_string(tombstones(index.store())));
        return;
      }
    }
    if (!check_equivalence(index, taxa, model, probes, engine_opts, ctx)) {
      return;
    }
  }
}

}  // namespace

std::string DynamicOracleReport::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "dynamic oracle: %zu sequence(s), %zu op(s), %zu check(s), "
                "%zu failure(s), seed %s",
                sequences_run, operations, checks, failures.size(),
                hex_seed(seed).c_str());
  return buf;
}

DynamicOracleReport check_dynamic_equivalence(
    const DynamicOracleOptions& opts) {
  DynamicOracleReport report;
  report.seed = opts.seed;
  for (std::size_t k = 0; k < opts.sequences; ++k) {
    run_sequence(k, opts, report);
    ++report.sequences_run;
  }
  return report;
}

}  // namespace bfhrf::qc
