// Automatic failing-case minimization (verification layer 3).
//
// Given a collection on which some check fails (the predicate returns
// true), delta-debug it down to a minimal reproducer along three axes, in
// order of how much they simplify the case for a human:
//
//   1. drop trees   — classic ddmin over the collection
//   2. drop taxa    — restrict every tree to all-but-one-taxon
//                     (core/restrict), repeated while the failure persists
//   3. collapse     — contract internal edges one at a time, shrinking
//                     each surviving tree toward a star
//
// The predicate is re-run on every candidate; a candidate that *throws* is
// treated as not reproducing (a different bug than the one being
// minimized). The result is the smallest collection found, ready to be
// serialized as a replay artifact (qc/artifact.hpp).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "phylo/tree.hpp"

namespace bfhrf::qc {

/// True when the collection still exhibits the failure being minimized.
using FailurePredicate =
    std::function<bool(std::span<const phylo::Tree>)>;

struct ShrinkOptions {
  bool shrink_trees = true;
  bool shrink_taxa = true;
  bool collapse_edges = true;

  /// Never restrict below this many taxa (4 is the smallest universe with
  /// a non-trivial split).
  std::size_t min_taxa = 4;

  /// Hard cap on predicate evaluations (each one re-runs engines).
  std::size_t max_predicate_calls = 4000;
};

struct ShrinkResult {
  std::vector<phylo::Tree> trees;     ///< the minimal failing collection
  std::size_t predicate_calls = 0;
  std::size_t taxa_remaining = 0;     ///< distinct leaf taxa in the result
  bool hit_call_limit = false;
};

/// Minimize `failing` under `fails`. Throws InvalidArgument if the
/// predicate does not hold on the input itself (nothing to minimize).
[[nodiscard]] ShrinkResult shrink_failure(
    std::span<const phylo::Tree> failing, const FailurePredicate& fails,
    const ShrinkOptions& opts = {});

}  // namespace bfhrf::qc
