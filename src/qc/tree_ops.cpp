#include "qc/tree_ops.hpp"

#include <cstddef>
#include <utility>

#include "util/error.hpp"

namespace bfhrf::qc {

using phylo::kNoNode;
using phylo::NodeId;
using phylo::TaxonId;
using phylo::Tree;

phylo::Tree relabel_taxa(const phylo::Tree& tree,
                         const std::vector<phylo::TaxonId>& perm) {
  Tree out(tree.taxa());
  if (tree.empty()) {
    return out;
  }
  out.reserve(tree.num_nodes());
  const NodeId root = out.add_root();
  if (tree.node(tree.root()).taxon != phylo::kNoTaxon) {
    out.set_taxon(root, perm.at(static_cast<std::size_t>(
                            tree.node(tree.root()).taxon)));
  }
  struct Item {
    NodeId old_id;
    NodeId new_parent;
  };
  std::vector<Item> stack;
  tree.for_each_child(tree.root(),
                      [&](NodeId c) { stack.push_back({c, root}); });
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    NodeId nid;
    if (tree.is_leaf(item.old_id)) {
      const TaxonId old_taxon = tree.node(item.old_id).taxon;
      nid = out.add_leaf(item.new_parent,
                         perm.at(static_cast<std::size_t>(old_taxon)));
    } else {
      nid = out.add_child(item.new_parent);
    }
    if (tree.node(item.old_id).has_length) {
      out.set_length(nid, tree.node(item.old_id).length);
    }
    tree.for_each_child(item.old_id,
                        [&](NodeId c) { stack.push_back({c, nid}); });
  }
  return out;
}

phylo::Tree reroot_at(const phylo::Tree& tree, phylo::NodeId new_root) {
  if (tree.is_leaf(new_root)) {
    throw InvalidArgument("reroot_at: new root must be an internal node");
  }
  if (tree.is_root(new_root)) {
    return tree;
  }

  // Undirected adjacency; each edge's length lives on the original child.
  struct Edge {
    NodeId to;
    double length;
    bool has_length;
  };
  std::vector<std::vector<Edge>> adj(tree.num_nodes());
  for (NodeId id = 0; id < static_cast<NodeId>(tree.num_nodes()); ++id) {
    const NodeId parent = tree.node(id).parent;
    if (parent != kNoNode) {
      const double len = tree.node(id).length;
      const bool has = tree.node(id).has_length;
      adj[static_cast<std::size_t>(parent)].push_back({id, len, has});
      adj[static_cast<std::size_t>(id)].push_back({parent, len, has});
    }
  }

  Tree out(tree.taxa());
  out.reserve(tree.num_nodes());
  const NodeId root = out.add_root();
  struct Item {
    NodeId old_id;
    NodeId came_from;  ///< old id we arrived from (kNoNode at the root)
    NodeId new_parent;
  };
  std::vector<Item> stack;
  stack.push_back({new_root, kNoNode, kNoNode});
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    NodeId nid;
    if (item.came_from == kNoNode) {
      nid = root;
    } else if (tree.is_leaf(item.old_id)) {
      nid = out.add_leaf(item.new_parent, tree.node(item.old_id).taxon);
    } else {
      nid = out.add_child(item.new_parent);
    }
    for (const Edge& e : adj[static_cast<std::size_t>(item.old_id)]) {
      if (e.to == item.came_from) {
        if (e.has_length && nid != root) {
          out.set_length(nid, e.length);
        }
        continue;
      }
      stack.push_back({e.to, item.old_id, nid});
    }
  }
  return out;
}

phylo::Tree collapse_internal_node(const phylo::Tree& tree,
                                   phylo::NodeId victim) {
  if (tree.is_root(victim) || tree.is_leaf(victim)) {
    throw InvalidArgument(
        "collapse_internal_node: victim must be internal and non-root");
  }
  Tree out(tree.taxa());
  out.reserve(tree.num_nodes());
  const NodeId root = out.add_root();
  struct Item {
    NodeId old_id;
    NodeId new_parent;
  };
  std::vector<Item> stack;
  const auto push_kids = [&](NodeId old_id, NodeId new_parent) {
    tree.for_each_child(old_id, [&](NodeId c) {
      stack.push_back({c, new_parent});
    });
  };
  push_kids(tree.root(), root);
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    if (item.old_id == victim) {
      // Splice the victim's children straight into its parent.
      push_kids(item.old_id, item.new_parent);
      continue;
    }
    const NodeId nid =
        tree.is_leaf(item.old_id)
            ? out.add_leaf(item.new_parent, tree.node(item.old_id).taxon)
            : out.add_child(item.new_parent);
    if (tree.node(item.old_id).has_length) {
      out.set_length(nid, tree.node(item.old_id).length);
    }
    push_kids(item.old_id, nid);
  }
  return out;
}

std::vector<phylo::NodeId> internal_nonroot_nodes(const phylo::Tree& tree) {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < static_cast<NodeId>(tree.num_nodes()); ++id) {
    if (!tree.is_root(id) && !tree.is_leaf(id)) {
      out.push_back(id);
    }
  }
  return out;
}

phylo::Tree caterpillar_with_order(const phylo::TaxonSetPtr& taxa,
                                   const std::vector<phylo::TaxonId>& order) {
  if (!taxa || order.size() < 4) {
    throw InvalidArgument("caterpillar_with_order: need >= 4 taxa");
  }
  const std::size_t n = order.size();
  Tree t(taxa);
  t.reserve(2 * n);
  const NodeId root = t.add_root();
  t.add_leaf(root, order[0]);
  t.add_leaf(root, order[1]);
  NodeId spine = root;
  for (std::size_t i = 2; i + 1 < n; ++i) {
    spine = t.add_child(spine);
    t.add_leaf(spine, order[i]);
  }
  t.add_leaf(spine, order[n - 1]);
  return t;
}

std::vector<phylo::TaxonId> riffle_order(std::size_t n) {
  std::vector<TaxonId> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; i += 2) {
    order.push_back(static_cast<TaxonId>(i));
  }
  for (std::size_t i = 1; i < n; i += 2) {
    order.push_back(static_cast<TaxonId>(i));
  }
  return order;
}

}  // namespace bfhrf::qc
