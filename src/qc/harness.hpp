// Verification harness: the one entry point the CLI and the test suites
// drive. Generates (or accepts) a workload, pushes it through the
// differential oracle and the metamorphic invariant library, and on any
// failure delta-debugs the collection to a minimal reproducer and writes
// a replayable artifact. Every failure message carries the seed in the
// `--seed=N` / BFHRF_FUZZ_SEED replay convention.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"
#include "qc/metamorphic.hpp"
#include "qc/oracle.hpp"
#include "qc/shrink.hpp"

namespace bfhrf::qc {

/// Topology class of a generated workload.
enum class WorkloadKind {
  Clustered,       ///< Yule base + NNI/SPR perturbations (gene-tree shape)
  Independent,     ///< i.i.d. uniform (PDA) topologies
  Multifurcating,  ///< Yule with random edge contractions
  Mixed,           ///< clustered + caterpillar + multifurcating zoo
};

struct HarnessOptions {
  // --- workload (for verify_generated) -------------------------------
  std::size_t n = 16;      ///< taxa
  std::size_t r = 12;      ///< reference trees
  std::size_t q = 8;       ///< query trees
  std::size_t moves = 4;   ///< perturbation strength for clustered sets
  std::uint64_t seed = 0x5eed;
  WorkloadKind kind = WorkloadKind::Mixed;
  bool branch_lengths = false;

  // --- checks ---------------------------------------------------------
  OracleOptions oracle;       ///< seed/include_trivial are filled in
  InvariantOptions invariant; ///< likewise
  bool run_invariants = true;

  // --- failure handling ----------------------------------------------
  bool shrink_on_failure = true;
  ShrinkOptions shrink;
  /// Where to write the reproducer on failure ("" = do not write).
  std::string artifact_path;
};

struct HarnessResult {
  bool passed = false;
  OracleReport oracle;
  InvariantReport invariants;
  std::vector<std::string> messages;  ///< failure lines, seed included

  /// Populated when a failure was shrunk.
  std::vector<phylo::Tree> minimized;
  std::size_t minimized_taxa = 0;
  std::size_t shrink_predicate_calls = 0;

  /// Artifact written for this failure ("" if none).
  std::string artifact_path;

  [[nodiscard]] std::string summary() const;
};

/// Verify an explicit workload. Pass an empty `queries` span for the
/// self-comparison (Q is R) setting.
[[nodiscard]] HarnessResult verify_collection(
    std::span<const phylo::Tree> reference,
    std::span<const phylo::Tree> queries, const HarnessOptions& opts = {});

/// Generate a deterministic workload from (seed, n, r, q, kind) and verify
/// it. Mixed workloads additionally run a multifurcating zoo so the
/// non-binary engine paths are always covered.
[[nodiscard]] HarnessResult verify_generated(const HarnessOptions& opts = {});

/// Re-run the exact failure stored in an artifact file. The artifact's
/// seed, thread counts, and include_trivial override the corresponding
/// fields of `opts`.
[[nodiscard]] HarnessResult replay_artifact(const std::string& path,
                                            HarnessOptions opts = {});

/// The deterministic workload behind verify_generated, exposed so tests
/// can inspect it: returns reference then query trees over a fresh
/// numbered TaxonSet.
struct Workload {
  phylo::TaxonSetPtr taxa;
  std::vector<phylo::Tree> reference;
  std::vector<phylo::Tree> queries;
};
[[nodiscard]] Workload make_workload(const HarnessOptions& opts);

}  // namespace bfhrf::qc
