#include "qc/artifact.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "phylo/newick.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace bfhrf::qc {
namespace {

std::string sanitize_line(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  return s;
}

}  // namespace

void write_artifact(const std::string& path, const Artifact& artifact) {
  std::ofstream out(path);
  if (!out) {
    throw Error("write_artifact: cannot open '" + path + "' for writing");
  }
  out << "# bfhrf-verify artifact v1\n";
  char seed_buf[24];
  std::snprintf(seed_buf, sizeof seed_buf, "0x%llX",
                static_cast<unsigned long long>(artifact.seed));
  out << "seed " << seed_buf << "\n";
  out << "threads ";
  for (std::size_t i = 0; i < artifact.thread_counts.size(); ++i) {
    out << (i != 0 ? "," : "") << artifact.thread_counts[i];
  }
  out << "\n";
  out << "include_trivial " << (artifact.include_trivial ? 1 : 0) << "\n";
  if (!artifact.note.empty()) {
    out << "note " << sanitize_line(artifact.note) << "\n";
  }
  if (artifact.taxa) {
    for (const std::string& label : artifact.taxa->labels()) {
      out << "taxon " << label << "\n";
    }
  }
  for (const phylo::Tree& t : artifact.trees) {
    out << "tree " << phylo::write_newick(t) << "\n";
  }
  if (!out) {
    throw Error("write_artifact: write to '" + path + "' failed");
  }
}

Artifact read_artifact(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("read_artifact: cannot open '" + path + "'");
  }
  Artifact a;
  a.taxa = std::make_shared<phylo::TaxonSet>();
  std::vector<std::string> newicks;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      continue;
    }
    const std::size_t space = trimmed.find(' ');
    const std::string_view key = trimmed.substr(0, space);
    const std::string_view value =
        space == std::string_view::npos
            ? std::string_view{}
            : util::trim(trimmed.substr(space + 1));
    if (key == "seed") {
      a.seed = std::strtoull(std::string(value).c_str(), nullptr, 0);
    } else if (key == "threads") {
      a.thread_counts.clear();
      for (const std::string& part : util::split(value, ',')) {
        a.thread_counts.push_back(util::parse_size(util::trim(part)));
      }
    } else if (key == "include_trivial") {
      a.include_trivial = value == "1" || value == "true";
    } else if (key == "note") {
      a.note = std::string(value);
    } else if (key == "taxon") {
      if (value.empty()) {
        throw ParseError("read_artifact: empty taxon label");
      }
      a.taxa->add_or_get(value);
    } else if (key == "tree") {
      newicks.emplace_back(value);
    } else {
      throw ParseError("read_artifact: unknown key '" + std::string(key) +
                       "' in '" + path + "'");
    }
  }
  // The taxon block fixes the bit universe; reject trees that stray.
  if (!a.taxa->empty()) {
    a.taxa->freeze();
  }
  a.trees.reserve(newicks.size());
  for (const std::string& nwk : newicks) {
    a.trees.push_back(phylo::parse_newick(nwk, a.taxa));
  }
  if (a.trees.empty()) {
    throw ParseError("read_artifact: no trees in '" + path + "'");
  }
  return a;
}

}  // namespace bfhrf::qc
