#include "qc/harness.hpp"

#include <cstdio>
#include <utility>

#include "phylo/taxon_set.hpp"
#include "qc/artifact.hpp"
#include "qc/tree_ops.hpp"
#include "sim/generators.hpp"
#include "sim/moves.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bfhrf::qc {
namespace {

using phylo::Tree;

std::string hex_seed(std::uint64_t seed) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llX", static_cast<unsigned long long>(seed));
  return buf;
}

std::vector<Tree> combined(std::span<const Tree> reference,
                           std::span<const Tree> queries) {
  std::vector<Tree> all(reference.begin(), reference.end());
  all.insert(all.end(), queries.begin(), queries.end());
  return all;
}

/// Fill the check sub-options from the harness-level knobs so every
/// failure message downstream carries the one workload seed.
void propagate(HarnessOptions& opts) {
  if (opts.oracle.seed == 0) {
    opts.oracle.seed = opts.seed;
  }
  opts.invariant.seed = opts.seed;
}

Tree make_one(WorkloadKind kind, std::size_t index, const Tree& base,
              const phylo::TaxonSetPtr& taxa, util::Rng& rng,
              std::size_t moves, const sim::GeneratorOptions& gen) {
  switch (kind) {
    case WorkloadKind::Clustered: {
      Tree t = base;
      sim::perturb(t, rng, moves);
      return t;
    }
    case WorkloadKind::Independent:
      return sim::uniform_tree(taxa, rng, gen);
    case WorkloadKind::Multifurcating:
      return sim::multifurcating_tree(taxa, rng, 0.3, gen);
    case WorkloadKind::Mixed:
      // Cycle through every topology class so binary-only engines, the
      // caterpillar worst case, and polytomy handling all see traffic.
      switch (index % 4) {
        case 0: {
          Tree t = base;
          sim::perturb(t, rng, moves);
          return t;
        }
        case 1:
          return sim::uniform_tree(taxa, rng, gen);
        case 2:
          return sim::caterpillar_tree(taxa, rng, gen);
        default:
          return sim::multifurcating_tree(taxa, rng, 0.25, gen);
      }
  }
  throw InvalidArgument("make_workload: unknown WorkloadKind");
}

}  // namespace

Workload make_workload(const HarnessOptions& opts) {
  if (opts.n < 4) {
    throw InvalidArgument("make_workload: need at least 4 taxa");
  }
  if (opts.r == 0) {
    throw InvalidArgument("make_workload: need at least one reference tree");
  }
  Workload w;
  w.taxa = phylo::TaxonSet::make_numbered(opts.n);
  util::Rng rng(opts.seed);
  const sim::GeneratorOptions gen{.branch_lengths = opts.branch_lengths};
  const Tree base = sim::yule_tree(w.taxa, rng, gen);
  w.reference.reserve(opts.r);
  for (std::size_t i = 0; i < opts.r; ++i) {
    w.reference.push_back(
        make_one(opts.kind, i, base, w.taxa, rng, opts.moves, gen));
  }
  w.queries.reserve(opts.q);
  for (std::size_t i = 0; i < opts.q; ++i) {
    // Queries drift further from the base than references do, so the
    // Q-vs-R averages are not dominated by near-duplicates.
    w.queries.push_back(
        make_one(opts.kind, i + 1, base, w.taxa, rng, opts.moves * 2, gen));
  }
  return w;
}

HarnessResult verify_collection(std::span<const Tree> reference,
                                std::span<const Tree> queries,
                                const HarnessOptions& opts_in) {
  HarnessOptions opts = opts_in;
  propagate(opts);

  HarnessResult result;
  result.oracle = cross_check(reference, queries, opts.oracle);
  if (!result.oracle.ok()) {
    result.messages.push_back(result.oracle.summary());
  }

  std::vector<Tree> all = combined(reference, queries);
  if (opts.run_invariants) {
    result.invariants = check_invariants(all, opts.invariant);
    if (!result.invariants.ok()) {
      result.messages.push_back(result.invariants.summary());
    }
  }

  result.passed = result.oracle.ok() &&
                  (!opts.run_invariants || result.invariants.ok());
  if (result.passed) {
    return result;
  }

  std::string note;
  if (!result.oracle.ok()) {
    note = result.oracle.divergences.front().to_string();
  } else {
    note = result.invariants.failures.front().to_string();
  }

  if (opts.shrink_on_failure) {
    // Minimize against whichever layer failed. The oracle predicate uses
    // the self-comparison cross-check so both the matrix and the average
    // (multi-tree merge) paths stay under test while shrinking.
    FailurePredicate fails;
    if (!result.oracle.ok()) {
      OracleOptions oracle_opts = opts.oracle;
      fails = [oracle_opts](std::span<const Tree> candidate) {
        return !cross_check(candidate, {}, oracle_opts).ok();
      };
    } else {
      InvariantOptions inv_opts = opts.invariant;
      fails = [inv_opts](std::span<const Tree> candidate) {
        return !check_invariants(candidate, inv_opts).ok();
      };
    }
    try {
      ShrinkResult shrunk = shrink_failure(all, fails, opts.shrink);
      result.minimized = std::move(shrunk.trees);
      result.minimized_taxa = shrunk.taxa_remaining;
      result.shrink_predicate_calls = shrunk.predicate_calls;
      result.messages.push_back(
          "shrunk to " + std::to_string(result.minimized.size()) +
          " tree(s) over " + std::to_string(result.minimized_taxa) +
          " taxa in " + std::to_string(shrunk.predicate_calls) +
          " predicate call(s)" +
          (shrunk.hit_call_limit ? " [budget exhausted]" : ""));
    } catch (const InvalidArgument&) {
      // The combined collection does not reproduce under the predicate
      // (e.g. the failure needs the exact Q/R split). Keep the full set.
      result.messages.push_back(
          "shrink skipped: failure does not reproduce on the combined "
          "collection");
    }
  }

  if (!opts.artifact_path.empty()) {
    const std::vector<Tree>& repro =
        result.minimized.empty() ? all : result.minimized;
    Artifact artifact;
    artifact.seed = opts.seed;
    artifact.thread_counts = opts.oracle.thread_counts;
    artifact.include_trivial = opts.oracle.include_trivial;
    artifact.note = note;
    artifact.taxa = repro.front().taxa();
    artifact.trees = repro;
    write_artifact(opts.artifact_path, artifact);
    result.artifact_path = opts.artifact_path;
    result.messages.push_back("reproducer written: " + opts.artifact_path +
                              " (replay with: bfhrf_verify --replay " +
                              opts.artifact_path + ")");
  }
  result.messages.push_back("workload seed " + hex_seed(opts.seed) +
                            " (replay with --seed=" + hex_seed(opts.seed) +
                            ")");
  return result;
}

HarnessResult verify_generated(const HarnessOptions& opts) {
  const Workload w = make_workload(opts);
  return verify_collection(w.reference, w.queries, opts);
}

HarnessResult replay_artifact(const std::string& path, HarnessOptions opts) {
  const Artifact a = read_artifact(path);
  opts.seed = a.seed;
  opts.oracle.seed = a.seed;
  opts.oracle.thread_counts = a.thread_counts;
  opts.oracle.include_trivial = a.include_trivial;
  opts.invariant.include_trivial = a.include_trivial;
  return verify_collection(a.trees, {}, opts);
}

std::string HarnessResult::summary() const {
  if (passed) {
    std::string s = "verify: PASS — " + std::to_string(oracle.engines.size()) +
                    " engine configs, " + std::to_string(oracle.cells_checked) +
                    " cells";
    if (!invariants.invariants_run.empty()) {
      s += ", " + std::to_string(invariants.invariants_run.size()) +
           " invariants (" + std::to_string(invariants.checks) + " checks)";
    }
    return s;
  }
  std::string s = "verify: FAIL";
  for (const std::string& m : messages) {
    s += "\n" + m;
  }
  return s;
}

}  // namespace bfhrf::qc
