#include "qc/metamorphic.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "core/all_pairs.hpp"
#include "core/bfhrf.hpp"
#include "core/day.hpp"
#include "core/restrict.hpp"
#include "core/rf.hpp"
#include "phylo/bipartition.hpp"
#include "phylo/newick.hpp"
#include "phylo/nexus.hpp"
#include "phylo/vector_codec.hpp"
#include "qc/tree_ops.hpp"
#include "sim/moves.hpp"
#include "util/bitset.hpp"
#include "util/error.hpp"

namespace bfhrf::qc {
namespace {

using phylo::NodeId;
using phylo::TaxonId;
using phylo::Tree;

std::string format_seed(std::uint64_t seed) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llX",
                static_cast<unsigned long long>(seed));
  return buf;
}

void fail(InvariantReport& report, const std::string& invariant,
          const std::string& detail) {
  report.failures.push_back({invariant, detail});
}

/// Sampled tree indices (without replacement when possible).
std::vector<std::size_t> sample_indices(std::size_t count, std::size_t want,
                                        util::Rng& rng) {
  std::vector<std::size_t> all(count);
  std::iota(all.begin(), all.end(), std::size_t{0});
  rng.shuffle(all);
  all.resize(std::min(count, want));
  return all;
}

/// Pairwise RF through the oracle path (sorted-merge sets, no hashing).
std::size_t seq_rf(const Tree& a, const Tree& b, bool include_trivial) {
  const phylo::BipartitionOptions o{.include_trivial = include_trivial};
  const auto sa = phylo::extract_bipartitions(a, o);
  const auto sb = phylo::extract_bipartitions(b, o);
  return phylo::BipartitionSet::symmetric_difference_size(sa, sb);
}

/// Single-pair RF through the BFHRF hash (one-tree reference build).
double bfhrf_rf(const Tree& query, const Tree& reference,
                bool include_trivial) {
  core::BfhrfOptions o;
  o.include_trivial = include_trivial;
  core::Bfhrf engine(reference.taxa()->size(), o);
  engine.build({&reference, 1});
  return engine.query_one(query);
}

}  // namespace

std::string InvariantReport::summary() const {
  std::string out;
  if (ok()) {
    out = "invariants OK: " + std::to_string(invariants_run.size()) +
          " invariants, " + std::to_string(checks) + " checks";
  } else {
    out = "invariants FAILED: " + std::to_string(failures.size()) +
          " failure(s)";
    const std::size_t show = std::min<std::size_t>(failures.size(), 8);
    for (std::size_t i = 0; i < show; ++i) {
      out += "\n  " + failures[i].to_string();
    }
    if (failures.size() > show) {
      out += "\n  ... " + std::to_string(failures.size() - show) + " more";
    }
  }
  if (seed != 0) {
    out += "\n  seed=" + format_seed(seed) +
           " (replay with --seed=" + format_seed(seed) + ")";
  }
  return out;
}

void check_relabeling(std::span<const Tree> trees, util::Rng& rng,
                      const InvariantOptions& opts, InvariantReport& report) {
  report.invariants_run.push_back("relabeling");
  if (trees.empty()) {
    return;
  }
  const std::size_t n = trees[0].taxa()->size();
  std::vector<TaxonId> perm(n);
  std::iota(perm.begin(), perm.end(), TaxonId{0});
  rng.shuffle(perm);

  std::vector<Tree> relabeled;
  relabeled.reserve(trees.size());
  for (const Tree& t : trees) {
    relabeled.push_back(relabel_taxa(t, perm));
  }
  const core::AllPairsOptions ao{.include_trivial = opts.include_trivial};
  const auto before = core::all_pairs_rf(trees, ao);
  const auto after = core::all_pairs_rf(relabeled, ao);
  for (std::size_t i = 0; i < trees.size(); ++i) {
    for (std::size_t j = i + 1; j < trees.size(); ++j) {
      ++report.checks;
      if (before.at(i, j) != after.at(i, j)) {
        fail(report, "relabeling",
             "RF(" + std::to_string(i) + "," + std::to_string(j) +
                 ") changed under taxon permutation: " +
                 std::to_string(before.at(i, j)) + " -> " +
                 std::to_string(after.at(i, j)));
      }
    }
  }
}

void check_rerooting(std::span<const Tree> trees, util::Rng& rng,
                     const InvariantOptions& opts, InvariantReport& report) {
  report.invariants_run.push_back("rerooting");
  for (const std::size_t idx :
       sample_indices(trees.size(), opts.samples, rng)) {
    const Tree& t = trees[idx];
    const auto internals = internal_nonroot_nodes(t);
    if (internals.empty()) {
      continue;  // star tree: nothing to reroot at
    }
    const NodeId pick = internals[rng.below(internals.size())];
    const Tree rerooted = reroot_at(t, pick);
    rerooted.validate();
    ++report.checks;
    const std::size_t d = seq_rf(t, rerooted, opts.include_trivial);
    if (d != 0) {
      fail(report, "rerooting",
           "tree " + std::to_string(idx) + " rerooted at node " +
               std::to_string(pick) + " has RF " + std::to_string(d) +
               " != 0");
    }
    ++report.checks;
    const double h = bfhrf_rf(rerooted, t, opts.include_trivial);
    if (h != 0.0) {
      fail(report, "rerooting",
           "tree " + std::to_string(idx) +
               " rerooted: BFHRF distance " + std::to_string(h) + " != 0");
    }
  }
}

void check_duplicates(std::span<const Tree> trees, util::Rng& rng,
                      const InvariantOptions& opts, InvariantReport& report) {
  report.invariants_run.push_back("duplicate-zero");
  for (const std::size_t idx :
       sample_indices(trees.size(), opts.samples, rng)) {
    const Tree& t = trees[idx];
    const Tree copy = t;
    ++report.checks;
    if (seq_rf(t, copy, opts.include_trivial) != 0) {
      fail(report, "duplicate-zero",
           "tree " + std::to_string(idx) + ": RF(T, copy) != 0 (sequential)");
    }
    ++report.checks;
    if (bfhrf_rf(copy, t, opts.include_trivial) != 0.0) {
      fail(report, "duplicate-zero",
           "tree " + std::to_string(idx) + ": RF(T, copy) != 0 (bfhrf)");
    }
    if (t.is_binary()) {
      ++report.checks;
      if (core::day_rf(t, copy) != 0) {
        fail(report, "duplicate-zero",
             "tree " + std::to_string(idx) + ": RF(T, copy) != 0 (day)");
      }
    }
  }
}

void check_pruning(std::span<const Tree> trees, util::Rng& rng,
                   const InvariantOptions& opts, InvariantReport& report) {
  report.invariants_run.push_back("pruning-monotonic");
  if (trees.size() < 2) {
    return;
  }
  const util::DynamicBitset common = core::common_taxa(trees);
  std::vector<std::size_t> shared;
  common.for_each_set_bit([&](std::size_t b) { shared.push_back(b); });
  if (shared.size() < 5) {
    return;  // need a strict subset of >= 4 taxa
  }

  // Identity: restricting to all shared taxa changes nothing (for trees
  // already on exactly the shared set this is the no-op path).
  {
    const Tree& t = trees[rng.below(trees.size())];
    const Tree same = core::restrict_to_taxa(t, common);
    ++report.checks;
    if (seq_rf(t, same, opts.include_trivial) != 0 &&
        t.num_leaves() == shared.size()) {
      fail(report, "pruning-monotonic",
           "restricting to all shared taxa is not the identity");
    }
  }

  for (std::size_t s = 0; s < opts.samples; ++s) {
    const std::size_t i = rng.below(trees.size());
    const std::size_t j = rng.below(trees.size());
    if (i == j) {
      continue;
    }
    // Random strict subset of the shared taxa, size in [4, |shared|-1].
    std::vector<std::size_t> pool = shared;
    rng.shuffle(pool);
    const std::size_t keep_n =
        4 + rng.below(pool.size() - 4);  // 4 .. |shared|-1
    util::DynamicBitset keep(common.size());
    for (std::size_t k = 0; k < keep_n; ++k) {
      keep.set(pool[k]);
    }
    const Tree ri = core::restrict_to_taxa(trees[i], keep);
    const Tree rj = core::restrict_to_taxa(trees[j], keep);
    ++report.checks;
    const std::size_t full = seq_rf(trees[i], trees[j], false);
    const std::size_t restricted = seq_rf(ri, rj, false);
    if (restricted > full) {
      fail(report, "pruning-monotonic",
           "RF increased under leaf pruning: pair (" + std::to_string(i) +
               "," + std::to_string(j) + ") " + std::to_string(full) +
               " -> " + std::to_string(restricted) + " with " +
               std::to_string(keep_n) + " kept taxa");
    }
  }
}

void check_nni_delta(std::span<const Tree> trees, util::Rng& rng,
                     const InvariantOptions& opts, InvariantReport& report) {
  report.invariants_run.push_back("nni-delta");
  for (const std::size_t idx :
       sample_indices(trees.size(), opts.samples, rng)) {
    if (!trees[idx].is_binary()) {
      continue;
    }
    Tree moved = trees[idx];
    sim::random_nni(moved, rng);
    ++report.checks;
    const std::size_t d = seq_rf(trees[idx], moved, false);
    if (d > 2) {
      fail(report, "nni-delta",
           "single NNI moved tree " + std::to_string(idx) + " by RF " +
               std::to_string(d) + " > 2");
    }
    if (moved.is_binary()) {
      ++report.checks;
      if (core::day_rf(trees[idx], moved) != d) {
        fail(report, "nni-delta",
             "Day and sequential disagree on the NNI pair for tree " +
                 std::to_string(idx));
      }
    }
  }
}

void check_add_remove_identity(std::span<const Tree> trees, util::Rng& rng,
                               const InvariantOptions& opts,
                               InvariantReport& report) {
  report.invariants_run.push_back("add-remove-identity");
  if (trees.empty()) {
    return;
  }
  // Baseline: a dynamic index over the whole collection, with sampled
  // self-query results recorded. Inserting a perturbed batch and removing
  // it again must restore every count and every query result exactly —
  // classic RF is integer-valued throughout, so equality is bit-for-bit.
  core::BfhrfOptions engine_opts;
  engine_opts.include_trivial = opts.include_trivial;
  core::DynamicBfhIndex index(trees.front().taxa()->size(), engine_opts);
  index.add_trees(trees);

  const std::vector<std::size_t> probe_idx =
      sample_indices(trees.size(), opts.samples, rng);
  std::vector<double> before;
  before.reserve(probe_idx.size());
  for (const std::size_t i : probe_idx) {
    before.push_back(index.query_one(trees[i]));
  }
  const std::size_t base_unique = index.store().unique_count();
  const std::uint64_t base_total = index.store().total_count();

  std::vector<Tree> batch;
  for (const std::size_t i :
       sample_indices(trees.size(), opts.samples, rng)) {
    Tree t = trees[i];
    sim::perturb(t, rng, 2);
    batch.push_back(std::move(t));
  }
  const std::vector<std::size_t> ids = index.add_trees(batch);
  index.remove_trees(ids);

  ++report.checks;
  if (index.store().unique_count() != base_unique ||
      index.store().total_count() != base_total) {
    fail(report, "add-remove-identity",
         "store shape not restored: unique " +
             std::to_string(index.store().unique_count()) + "/" +
             std::to_string(base_unique) + ", total " +
             std::to_string(index.store().total_count()) + "/" +
             std::to_string(base_total));
  }
  for (std::size_t k = 0; k < probe_idx.size(); ++k) {
    ++report.checks;
    const double after = index.query_one(trees[probe_idx[k]]);
    if (after != before[k]) {
      fail(report, "add-remove-identity",
           "query result for tree " + std::to_string(probe_idx[k]) +
               " drifted after add+remove: " + std::to_string(after) +
               " != " + std::to_string(before[k]));
    }
  }
}

void check_round_trip(std::span<const Tree> trees, util::Rng& rng,
                      const InvariantOptions& opts, InvariantReport& report) {
  report.invariants_run.push_back("round-trip");
  const auto sampled = sample_indices(trees.size(), opts.samples, rng);

  for (const std::size_t idx : sampled) {
    const Tree& t = trees[idx];
    const std::string once = phylo::write_newick(t);
    const Tree parsed = phylo::parse_newick(once, t.taxa());
    parsed.validate();
    ++report.checks;
    const std::string twice = phylo::write_newick(parsed);
    if (once != twice) {
      fail(report, "round-trip",
           "Newick write->parse->write not idempotent for tree " +
               std::to_string(idx) + ": '" + once + "' vs '" + twice + "'");
    }
    ++report.checks;
    if (seq_rf(t, parsed, opts.include_trivial) != 0) {
      fail(report, "round-trip",
           "Newick round trip moved tree " + std::to_string(idx));
    }
  }

  // Nexus: serialize a TREES block by hand from the Newick forms, re-read
  // through the Nexus parser, and require zero distance per tree.
  if (!sampled.empty()) {
    std::string nexus = "#NEXUS\nBEGIN TREES;\n";
    for (const std::size_t idx : sampled) {
      nexus += "TREE t" + std::to_string(idx) + " = " +
               phylo::write_newick(trees[idx]) + "\n";
    }
    nexus += "END;\n";
    std::istringstream in(nexus);
    const phylo::NexusData data = phylo::read_nexus(in, trees[0].taxa());
    if (data.trees.size() != sampled.size()) {
      fail(report, "round-trip",
           "Nexus re-read returned " + std::to_string(data.trees.size()) +
               " trees, expected " + std::to_string(sampled.size()));
    } else {
      for (std::size_t k = 0; k < sampled.size(); ++k) {
        ++report.checks;
        if (seq_rf(trees[sampled[k]], data.trees[k],
                   opts.include_trivial) != 0) {
          fail(report, "round-trip",
               "Nexus round trip moved tree " + std::to_string(sampled[k]));
        }
      }
    }
  }
}

void check_saturation(std::span<const Tree> trees,
                      const InvariantOptions& /*opts*/,
                      InvariantReport& report) {
  report.invariants_run.push_back("max-rf-saturation");
  if (trees.empty()) {
    return;
  }
  const auto& taxa = trees[0].taxa();
  const std::size_t n = taxa->size();
  if (n < 5) {
    return;  // max RF is 0 or 2; saturation is vacuous
  }
  std::vector<TaxonId> identity(n);
  std::iota(identity.begin(), identity.end(), TaxonId{0});
  const Tree a = caterpillar_with_order(taxa, identity);
  const Tree b = caterpillar_with_order(taxa, riffle_order(n));

  const std::size_t expected = 2 * (n - 3);
  ++report.checks;
  const std::size_t d = seq_rf(a, b, false);
  if (d != expected) {
    fail(report, "max-rf-saturation",
         "identity vs riffle caterpillar: RF " + std::to_string(d) +
             " != max " + std::to_string(expected));
  }
  ++report.checks;
  const phylo::BipartitionOptions bo;
  const auto sa = phylo::extract_bipartitions(a, bo);
  const auto sb = phylo::extract_bipartitions(b, bo);
  if (core::max_rf(sa, sb) != expected) {
    fail(report, "max-rf-saturation",
         "max_rf accounting disagrees with 2(n-3)");
  }
  ++report.checks;
  if (core::day_rf(a, b) != expected) {
    fail(report, "max-rf-saturation", "Day disagrees on the saturated pair");
  }
  ++report.checks;
  if (bfhrf_rf(a, b, false) != static_cast<double>(expected)) {
    fail(report, "max-rf-saturation",
         "BFHRF disagrees on the saturated pair");
  }
}

void check_vector_codec(std::span<const Tree> trees, util::Rng& rng,
                        const InvariantOptions& opts,
                        InvariantReport& report) {
  report.invariants_run.push_back("vector-codec");
  const auto sampled = sample_indices(trees.size(), opts.samples, rng);

  // Per-tree round trip: encode, decode, re-encode. The re-encoded vector
  // must be the identity (phylo2vec is a bijection on rooted shapes) and
  // the decoded tree must sit at distance zero from the original.
  std::vector<Tree> originals;
  std::vector<Tree> decoded;
  for (const std::size_t idx : sampled) {
    const Tree& t = trees[idx];
    phylo::TreeVector v;
    try {
      v = phylo::tree_to_vector(t);
    } catch (const InvalidArgument&) {
      continue;  // multifurcating / partial coverage: outside codec scope
    }
    Tree back = phylo::vector_to_tree(v, t.taxa());
    back.validate();
    ++report.checks;
    if (phylo::tree_to_vector(back) != v) {
      fail(report, "vector-codec",
           "vector->tree->vector is not the identity for tree " +
               std::to_string(idx) + " (vector " + phylo::format_vector(v) +
               ")");
    }
    ++report.checks;
    if (seq_rf(t, back, opts.include_trivial) != 0) {
      fail(report, "vector-codec",
           "codec round trip moved tree " + std::to_string(idx));
      continue;
    }
    originals.push_back(t);
    decoded.push_back(std::move(back));
  }

  // Matrix metamorphic relation: converting a whole collection through the
  // codec must preserve every pairwise RF value bit-for-bit (entries are
  // integers, so "close" is not good enough).
  if (originals.size() >= 2) {
    const core::AllPairsOptions ap{.threads = 1,
                                   .include_trivial = opts.include_trivial};
    const core::RfMatrix before = core::all_pairs_rf(originals, ap);
    const core::RfMatrix after = core::all_pairs_rf(decoded, ap);
    for (std::size_t i = 0; i < before.size(); ++i) {
      for (std::size_t j = i + 1; j < before.size(); ++j) {
        ++report.checks;
        if (before.at(i, j) != after.at(i, j)) {
          fail(report, "vector-codec",
               "pairwise RF matrix changed across codec conversion at (" +
                   std::to_string(i) + "," + std::to_string(j) + "): " +
                   std::to_string(before.at(i, j)) + " -> " +
                   std::to_string(after.at(i, j)));
        }
      }
    }
  }
}

InvariantReport check_invariants(std::span<const Tree> trees,
                                 const InvariantOptions& opts) {
  InvariantReport report;
  report.seed = opts.seed;
  if (trees.empty()) {
    return report;
  }
  util::Rng rng(opts.seed);
  check_relabeling(trees, rng, opts, report);
  check_rerooting(trees, rng, opts, report);
  check_duplicates(trees, rng, opts, report);
  check_pruning(trees, rng, opts, report);
  check_nni_delta(trees, rng, opts, report);
  check_add_remove_identity(trees, rng, opts, report);
  check_round_trip(trees, rng, opts, report);
  check_saturation(trees, opts, report);
  check_vector_codec(trees, rng, opts, report);
  return report;
}

}  // namespace bfhrf::qc
