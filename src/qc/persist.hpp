// Persistence / sharding equivalence oracle (verification layer for
// core/sharded_hash.hpp and core/index_file.hpp).
//
// Drives a seeded workload through every store shape and on-disk
// round trip the engine supports and asserts they are all bit-for-bit
// interchangeable:
//
//  * sharded builds (each configured shard count, threaded and inline)
//    hold exactly the single-table store's (key, count) multiset and
//    produce bit-identical query vectors;
//  * the v1 stream and the mapped ("BFHMAP") format both round-trip every
//    shape — save, load, re-query, compare to the exact double;
//  * a mapped load actually serves zero-copy (the loaded store is the
//    read-only MappedFrequencyStore, not a rebuilt table) and its file
//    never contains a DELETED ctrl byte, even when the saved store was
//    tombstoned by DynamicBfhIndex removals (the writer must compact);
//  * DynamicBfhIndex::from_index_file on a raw single-shard mapped file
//    (the warm-start path) matches a replayed index state for state and
//    queries.
//
// Failure messages carry the seed in the --seed/BFHRF_FUZZ_SEED replay
// convention. Designed to run under the asan-ubsan preset (mapped views
// probing mmapped sections are exactly where an out-of-bounds read would
// hide).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bfhrf::qc {

struct PersistOracleOptions {
  /// Drives the generated workload (qc::make_workload conventions).
  std::uint64_t seed = 0x5eed;

  std::size_t n = 24;      ///< taxa
  std::size_t r = 24;      ///< reference trees
  std::size_t q = 10;      ///< query trees
  std::size_t moves = 4;   ///< perturbation strength

  /// Shard counts to cross-check against the single-table baseline
  /// (1 is always checked implicitly as the baseline itself).
  std::vector<std::size_t> shard_counts = {2, 8};

  /// Worker threads for the sharded builds (the routed, lock-free path);
  /// inline single-threaded sharded builds are always checked too.
  std::size_t threads = 4;

  bool include_trivial = false;

  /// Directory for the round-trip files ("" = std::filesystem temp dir).
  /// Files are named by seed and removed on success and failure alike.
  std::string scratch_dir;
};

struct PersistOracleReport {
  std::vector<std::string> failures;
  std::size_t checks = 0;       ///< individual equivalence assertions
  std::size_t round_trips = 0;  ///< files written and re-loaded
  std::uint64_t seed = 0;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Run the oracle. Keeps going after a failure so one run reports every
/// broken configuration.
[[nodiscard]] PersistOracleReport check_persist_equivalence(
    const PersistOracleOptions& opts = {});

}  // namespace bfhrf::qc
