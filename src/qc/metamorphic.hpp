// Metamorphic invariant library (verification layer 2).
//
// Each invariant is a known mathematical property of Robinson-Foulds that
// must hold for *any* correct engine, checked on transformed copies of a
// workload (sim/generators + sim/moves provide the transformations):
//
//   relabeling      RF is invariant under a shared permutation of taxa
//   rerooting       unrooted comparison ignores the stored rooting
//   duplicates      RF(T, copy of T) = 0 through every engine family
//   pruning         RF(T|S, T'|S) <= RF(T, T') for any kept-taxa subset S
//                   (each unshared restricted split lifts to a distinct
//                   unshared full split), and restricting to all shared
//                   taxa is the identity
//   NNI delta       one NNI changes at most one bipartition: RF <= 2
//   add/remove      inserting a tree batch into a dynamic index and
//                   removing it restores every count and query result
//   round-trip      Newick write -> parse -> write is idempotent and
//                   distance-free; a Nexus TREES block re-read likewise
//   saturation      identity-order vs riffle-order caterpillars share no
//                   split, so RF = max = 2(n-3) exactly
//   vector codec    tree -> phylo2vec -> tree is the identity on vectors,
//                   distance-free per tree, and preserves the full
//                   pairwise RF matrix bit-for-bit (binary full-coverage
//                   trees; others are skipped — the codec rejects them)
//
// Failures carry the seed so any run is replayable (--seed / BFHRF_FUZZ_SEED).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "phylo/tree.hpp"
#include "util/rng.hpp"

namespace bfhrf::qc {

struct InvariantOptions {
  /// Drives every sampling decision; echoed in failure messages.
  std::uint64_t seed = 0x5eed;

  /// Trees / pairs sampled per invariant (invariants are O(samples·n²)).
  std::size_t samples = 8;

  bool include_trivial = false;
};

struct InvariantFailure {
  std::string invariant;
  std::string detail;
  [[nodiscard]] std::string to_string() const {
    return invariant + ": " + detail;
  }
};

struct InvariantReport {
  std::vector<InvariantFailure> failures;
  std::vector<std::string> invariants_run;
  std::size_t checks = 0;
  std::uint64_t seed = 0;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Run every applicable invariant over the collection. Invariants that
/// need binary trees (NNI delta) skip non-binary members; all trees must
/// share one TaxonSet.
[[nodiscard]] InvariantReport check_invariants(
    std::span<const phylo::Tree> trees, const InvariantOptions& opts = {});

// Individual invariants, exposed for targeted tests. Each appends
// failures to `report` and bumps `report.checks`.
void check_relabeling(std::span<const phylo::Tree> trees, util::Rng& rng,
                      const InvariantOptions& opts, InvariantReport& report);
void check_rerooting(std::span<const phylo::Tree> trees, util::Rng& rng,
                     const InvariantOptions& opts, InvariantReport& report);
void check_duplicates(std::span<const phylo::Tree> trees, util::Rng& rng,
                      const InvariantOptions& opts, InvariantReport& report);
void check_pruning(std::span<const phylo::Tree> trees, util::Rng& rng,
                   const InvariantOptions& opts, InvariantReport& report);
void check_nni_delta(std::span<const phylo::Tree> trees, util::Rng& rng,
                     const InvariantOptions& opts, InvariantReport& report);
void check_add_remove_identity(std::span<const phylo::Tree> trees,
                               util::Rng& rng, const InvariantOptions& opts,
                               InvariantReport& report);
void check_round_trip(std::span<const phylo::Tree> trees, util::Rng& rng,
                      const InvariantOptions& opts, InvariantReport& report);
void check_saturation(std::span<const phylo::Tree> trees,
                      const InvariantOptions& opts, InvariantReport& report);
void check_vector_codec(std::span<const phylo::Tree> trees, util::Rng& rng,
                        const InvariantOptions& opts,
                        InvariantReport& report);

}  // namespace bfhrf::qc
