#include "phylo/nexus.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <sstream>
#include <unordered_map>

#include "phylo/newick.hpp"
#include "util/error.hpp"

namespace bfhrf::phylo {
namespace {

/// Case-insensitive ASCII equality for keywords.
bool ieq(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// NEXUS tokenizer: words, quoted strings, and single-char punctuation.
/// [comments] are skipped transparently.
class Tokenizer {
 public:
  explicit Tokenizer(std::istream& in) : in_(in) {}

  /// Next token; empty string at end of input. Quoted tokens are returned
  /// unquoted with `was_quoted` set.
  std::string next(bool* was_quoted = nullptr) {
    if (was_quoted != nullptr) {
      *was_quoted = false;
    }
    skip_space_and_comments();
    int c = in_.peek();
    if (c == EOF) {
      return {};
    }
    if (c == '\'') {
      in_.get();
      if (was_quoted != nullptr) {
        *was_quoted = true;
      }
      return quoted();
    }
    if (is_punct(static_cast<char>(c))) {
      in_.get();
      return std::string(1, static_cast<char>(c));
    }
    std::string word;
    while ((c = in_.peek()) != EOF) {
      const char ch = static_cast<char>(c);
      if (std::isspace(static_cast<unsigned char>(ch)) != 0 ||
          is_punct(ch) || ch == '[' || ch == '\'') {
        break;
      }
      word.push_back(ch);
      in_.get();
    }
    return word;
  }

  /// Raw capture until the next top-level ';' (quotes and comments
  /// respected) — used for TREE definitions so the Newick text reaches the
  /// Newick parser verbatim (minus the trailing ';').
  std::string raw_until_semicolon() {
    std::string out;
    int c;
    while ((c = in_.get()) != EOF) {
      const char ch = static_cast<char>(c);
      if (ch == ';') {
        return out;
      }
      out.push_back(ch);
      if (ch == '\'') {
        // copy quoted span verbatim
        while ((c = in_.get()) != EOF) {
          out.push_back(static_cast<char>(c));
          if (static_cast<char>(c) == '\'') {
            if (in_.peek() == '\'') {
              out.push_back(static_cast<char>(in_.get()));
            } else {
              break;
            }
          }
        }
      } else if (ch == '[') {
        int depth = 1;
        while (depth > 0 && (c = in_.get()) != EOF) {
          out.push_back(static_cast<char>(c));
          if (static_cast<char>(c) == '[') {
            ++depth;
          } else if (static_cast<char>(c) == ']') {
            --depth;
          }
        }
      }
    }
    throw ParseError("nexus: unterminated statement (missing ';')");
  }

 private:
  static bool is_punct(char c) {
    return c == ';' || c == '=' || c == ',';
  }

  std::string quoted() {
    std::string out;
    int c;
    while ((c = in_.get()) != EOF) {
      const char ch = static_cast<char>(c);
      if (ch == '\'') {
        if (in_.peek() == '\'') {
          out.push_back('\'');
          in_.get();
        } else {
          return out;
        }
      } else {
        out.push_back(ch);
      }
    }
    throw ParseError("nexus: unterminated quoted label");
  }

  void skip_space_and_comments() {
    int c;
    while ((c = in_.peek()) != EOF) {
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        in_.get();
      } else if (c == '[') {
        in_.get();
        int depth = 1;
        while (depth > 0 && (c = in_.get()) != EOF) {
          if (c == '[') {
            ++depth;
          } else if (c == ']') {
            --depth;
          }
        }
        if (depth != 0) {
          throw ParseError("nexus: unterminated [comment]");
        }
      } else {
        return;
      }
    }
  }

  std::istream& in_;
};

/// Strip the leading [&U]/[&R]-style comment the tokenizer's raw capture
/// keeps; parse_newick skips comments anyway, so only trimming is needed.
std::string trim_raw_tree(std::string raw) { return raw + ";"; }

/// Rewrite leaf labels of a Newick string through the TRANSLATE table by
/// re-parsing over a scratch namespace and re-targeting taxon ids.
Tree apply_translate(
    const std::string& newick,
    const std::unordered_map<std::string, std::string>& translate,
    const TaxonSetPtr& taxa) {
  auto scratch = std::make_shared<TaxonSet>();
  Tree parsed = parse_newick(newick, scratch);
  // Map each scratch taxon to the real one (through TRANSLATE if present).
  std::vector<TaxonId> remap(scratch->size(), kNoTaxon);
  for (std::size_t i = 0; i < scratch->size(); ++i) {
    const std::string& token = scratch->label_of(static_cast<TaxonId>(i));
    const auto it = translate.find(token);
    const std::string& label = it != translate.end() ? it->second : token;
    remap[i] = taxa->add_or_get(label);
  }
  for (NodeId id = 0; id < static_cast<NodeId>(parsed.num_nodes()); ++id) {
    if (parsed.is_leaf(id) && parsed.node(id).taxon != kNoTaxon) {
      parsed.set_taxon(id,
                       remap[static_cast<std::size_t>(parsed.node(id).taxon)]);
    }
  }
  parsed.set_taxa(taxa);
  return parsed;
}

}  // namespace

NexusData read_nexus(std::istream& in, TaxonSetPtr taxa) {
  NexusData data;
  data.taxa = taxa ? std::move(taxa) : std::make_shared<TaxonSet>();

  Tokenizer tok(in);
  const std::string header = tok.next();
  if (!ieq(header, "#NEXUS")) {
    throw ParseError("nexus: missing #NEXUS header (got '" + header + "')");
  }

  std::unordered_map<std::string, std::string> translate;

  std::string t;
  while (!(t = tok.next()).empty()) {
    if (!ieq(t, "BEGIN")) {
      continue;  // tolerate stray tokens between blocks
    }
    const std::string block = tok.next();
    (void)tok.next();  // ';'

    if (ieq(block, "TAXA")) {
      // Scan for TAXLABELS; ignore DIMENSIONS etc.
      while (!(t = tok.next()).empty() && !ieq(t, "END") &&
             !ieq(t, "ENDBLOCK")) {
        if (ieq(t, "TAXLABELS")) {
          while (!(t = tok.next()).empty() && t != ";") {
            (void)data.taxa->add_or_get(t);
          }
        }
      }
      (void)tok.next();  // ';' after END
    } else if (ieq(block, "TREES")) {
      while (!(t = tok.next()).empty() && !ieq(t, "END") &&
             !ieq(t, "ENDBLOCK")) {
        if (ieq(t, "TRANSLATE")) {
          while (true) {
            const std::string token = tok.next();
            if (token.empty()) {
              throw ParseError("nexus: unterminated TRANSLATE");
            }
            if (token == ";") {
              break;
            }
            const std::string label = tok.next();
            if (label.empty() || label == ";" || label == ",") {
              throw ParseError("nexus: TRANSLATE entry missing label");
            }
            translate[token] = label;
            const std::string sep = tok.next();
            if (sep == ";") {
              break;
            }
            if (sep != ",") {
              throw ParseError("nexus: expected ',' or ';' in TRANSLATE");
            }
          }
        } else if (ieq(t, "TREE") || ieq(t, "UTREE")) {
          std::string name = tok.next();
          if (name == "*") {
            name = tok.next();  // default-tree marker
          }
          const std::string eq = tok.next();
          if (eq != "=") {
            throw ParseError("nexus: expected '=' after TREE " + name);
          }
          const std::string raw = tok.raw_until_semicolon();
          data.trees.push_back(
              apply_translate(trim_raw_tree(raw), translate, data.taxa));
          data.tree_names.push_back(name);
        }
      }
      (void)tok.next();  // ';' after END
    } else {
      // Unknown block: skip to its END;.
      while (!(t = tok.next()).empty() && !ieq(t, "END") &&
             !ieq(t, "ENDBLOCK")) {
      }
      (void)tok.next();
    }
  }
  if (data.trees.empty()) {
    throw ParseError("nexus: no trees found");
  }
  return data;
}

NexusData read_nexus_file(const std::string& path, TaxonSetPtr taxa) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("cannot open '" + path + "'");
  }
  return read_nexus(in, std::move(taxa));
}

void write_nexus_file(const std::string& path, std::span<const Tree> trees,
                      const TaxonSetPtr& taxa) {
  std::ofstream out(path);
  if (!out) {
    throw ParseError("cannot open '" + path + "' for writing");
  }
  out << "#NEXUS\n\nBEGIN TAXA;\n  DIMENSIONS NTAX=" << taxa->size()
      << ";\n  TAXLABELS";
  const auto quote = [](const std::string& s) {
    std::string q = "'";
    for (const char c : s) {
      q += (c == '\'') ? "''" : std::string(1, c);
    }
    return q + "'";
  };
  for (const auto& label : taxa->labels()) {
    out << ' ' << quote(label);
  }
  out << ";\nEND;\n\nBEGIN TREES;\n";
  std::size_t index = 1;
  for (const Tree& t : trees) {
    out << "  TREE tree" << index++ << " = [&U] " << write_newick(t) << '\n';
  }
  out << "END;\n";
}

}  // namespace bfhrf::phylo
