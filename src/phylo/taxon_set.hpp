// TaxonSet: the taxon namespace mapping labels to bit positions.
//
// This is the paper's (and Dendropy's) taxon-ordering contract (§II-B):
// every taxon gets a fixed bit index, and all bipartition bitmasks across a
// comparison are expressed over that shared index space. Trees being
// compared must share one TaxonSet instance.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bfhrf::phylo {

using TaxonId = std::int32_t;
inline constexpr TaxonId kNoTaxon = -1;

class TaxonSet {
 public:
  TaxonSet() = default;

  /// Construct from labels in bit-index order. Throws on duplicates.
  explicit TaxonSet(const std::vector<std::string>& labels);

  /// Return the index of `label`, inserting it if new.
  /// Throws InvalidArgument if the set is frozen and the label is unknown.
  TaxonId add_or_get(std::string_view label);

  /// Index of `label`, or std::nullopt if absent.
  [[nodiscard]] std::optional<TaxonId> find(std::string_view label) const;

  /// Index of `label`; throws InvalidArgument if absent.
  [[nodiscard]] TaxonId index_of(std::string_view label) const;

  [[nodiscard]] const std::string& label_of(TaxonId id) const;

  [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }
  [[nodiscard]] bool contains(std::string_view label) const {
    return find(label).has_value();
  }

  /// Forbid further growth. Parsing query trees against a frozen reference
  /// namespace turns an unexpected taxon into a clean error instead of a
  /// silently widened universe.
  void freeze() noexcept { frozen_ = true; }
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

  [[nodiscard]] const std::vector<std::string>& labels() const noexcept {
    return labels_;
  }

  /// Convenience factory: "t0", "t1", ..., "t{n-1}".
  [[nodiscard]] static std::shared_ptr<TaxonSet> make_numbered(
      std::size_t n, std::string_view prefix = "t");

 private:
  std::vector<std::string> labels_;
  std::unordered_map<std::string, TaxonId> index_;
  bool frozen_ = false;
};

using TaxonSetPtr = std::shared_ptr<TaxonSet>;

}  // namespace bfhrf::phylo
