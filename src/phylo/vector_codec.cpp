#include "phylo/vector_codec.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace bfhrf::phylo {
namespace {

const obs::Counter g_encode_trees = obs::counter("bfhrf.codec.encode_trees");
const obs::Counter g_decode_trees = obs::counter("bfhrf.codec.decode_trees");
const obs::Counter g_direct_extracts =
    obs::counter("bfhrf.codec.direct_extracts");
const obs::Counter g_p2v_records = obs::counter("bfhrf.codec.p2v.records");
const obs::Counter g_p2v_bytes = obs::counter("bfhrf.codec.p2v.bytes");

constexpr char kMagic[4] = {'P', '2', 'V', '1'};
constexpr std::uint32_t kFlagLabels = 1U;
// Labels are taxon names; a multi-megabyte length is a corrupt or hostile
// header, not data — reject before allocating (serve-decoder discipline).
constexpr std::uint32_t kMaxLabelBytes = 1U << 20;

[[noreturn]] void bad_code(std::size_t j, std::uint32_t code) {
  throw InvalidArgument("tree vector: code " + std::to_string(code) +
                        " at position " + std::to_string(j) +
                        " exceeds maximum " + std::to_string(2 * j));
}

/// Replay the leaf-attachment process on a flat parent array.
///
/// Node ids: leaves are 0..n-1 (their taxon index); the internal node
/// created at step i is n+i-1; 2n-1 nodes total. Returns the root id.
/// `parent` is caller scratch (assigned, not reallocated once warm).
std::int32_t decode_topology(std::span<const std::uint32_t> v,
                             std::vector<std::int32_t>& parent) {
  const std::size_t n = v.size() + 1;
  parent.assign(2 * n - 1, -1);
  std::int32_t root = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint32_t c = v[i - 1];
    if (c > 2 * (i - 1)) {
      bad_code(i - 1, c);
    }
    // c <= i-1 names the pendant branch of leaf c; larger codes name the
    // branch above the step-(c-i+1) internal node, i.e. id n+c-i.
    const std::size_t target = c < i ? std::size_t{c} : n + c - i;
    const std::size_t m = n + i - 1;
    parent[m] = parent[target];
    parent[target] = static_cast<std::int32_t>(m);
    parent[i] = static_cast<std::int32_t>(m);
    if (static_cast<std::int32_t>(target) == root) {
      root = static_cast<std::int32_t>(m);
    }
  }
  return root;
}

void put_u32(std::ostream& out, std::uint32_t v) {
  const char b[4] = {static_cast<char>(v & 0xFF),
                     static_cast<char>((v >> 8) & 0xFF),
                     static_cast<char>((v >> 16) & 0xFF),
                     static_cast<char>((v >> 24) & 0xFF)};
  out.write(b, 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFU));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(std::istream& in, const char* what) {
  unsigned char b[4];
  if (!in.read(reinterpret_cast<char*>(b), 4)) {
    throw ParseError(std::string("p2v: truncated ") + what);
  }
  g_p2v_bytes.inc(4);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t get_u64(std::istream& in, const char* what) {
  const std::uint64_t lo = get_u32(in, what);
  const std::uint64_t hi = get_u32(in, what);
  return lo | (hi << 32);
}

}  // namespace

void validate_vector(std::span<const std::uint32_t> v) {
  for (std::size_t j = 0; j < v.size(); ++j) {
    if (v[j] > 2 * j) {
      bad_code(j, v[j]);
    }
  }
}

Tree vector_to_tree(std::span<const std::uint32_t> v,
                    const TaxonSetPtr& taxa) {
  if (!taxa) {
    throw InvalidArgument("vector_to_tree: null taxon set");
  }
  const std::size_t n = v.size() + 1;
  if (taxa->size() != n) {
    throw InvalidArgument("vector_to_tree: vector implies " +
                          std::to_string(n) + " taxa but the set has " +
                          std::to_string(taxa->size()));
  }
  Tree tree(taxa);
  if (n == 1) {
    tree.set_taxon(tree.add_root(), 0);
    g_decode_trees.inc();
    return tree;
  }

  std::vector<std::int32_t> parent;
  const std::int32_t root = decode_topology(v, parent);
  const std::size_t total = 2 * n - 1;
  std::vector<std::int32_t> child0(total, -1);
  std::vector<std::int32_t> child1(total, -1);
  for (std::size_t x = 0; x < total; ++x) {
    const std::int32_t p = parent[x];
    if (p < 0) {
      continue;
    }
    if (child0[static_cast<std::size_t>(p)] < 0) {
      child0[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(x);
    } else {
      child1[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(x);
    }
  }

  tree.reserve(total);
  std::vector<std::pair<std::int32_t, NodeId>> stack;
  stack.reserve(total);
  stack.emplace_back(root, kNoNode);
  while (!stack.empty()) {
    const auto [id, tree_parent] = stack.back();
    stack.pop_back();
    if (id < static_cast<std::int32_t>(n)) {
      tree.add_leaf(tree_parent, static_cast<TaxonId>(id));
      continue;
    }
    const NodeId nid =
        tree_parent == kNoNode ? tree.add_root() : tree.add_child(tree_parent);
    const auto ix = static_cast<std::size_t>(id);
    // child0 on top of the stack so it materializes first.
    stack.emplace_back(child1[ix], nid);
    stack.emplace_back(child0[ix], nid);
  }
  g_decode_trees.inc();
  return tree;
}

TreeVector tree_to_vector(const Tree& tree) {
  if (tree.empty() || !tree.taxa()) {
    throw InvalidArgument("tree_to_vector: empty tree or no taxa");
  }
  const std::size_t n = tree.taxa()->size();
  if (tree.num_leaves() != n) {
    throw InvalidArgument(
        "tree_to_vector: tree covers " + std::to_string(tree.num_leaves()) +
        " of " + std::to_string(n) + " taxa (full coverage required)");
  }
  if (n == 1) {
    g_encode_trees.inc();
    return {};
  }

  // Re-express the tree on flat id arrays: leaves keep their taxon index,
  // internal nodes take n.. in postorder (so children precede parents). A
  // degree-3 root — the repo's unrooted convention — is rooted
  // deterministically by grouping its trailing two children under a
  // synthetic node.
  const std::size_t total = 2 * n - 1;
  std::vector<std::int32_t> parent(total, -1);
  std::vector<std::int32_t> child0(total, -1);
  std::vector<std::int32_t> child1(total, -1);
  const std::vector<NodeId> order = tree.postorder();
  std::vector<std::int32_t> flat_id(tree.num_nodes(), -1);
  util::DynamicBitset seen(n);
  auto next_internal = static_cast<std::int32_t>(n);
  const auto link = [&](std::int32_t p, std::int32_t c) {
    parent[static_cast<std::size_t>(c)] = p;
    if (child0[static_cast<std::size_t>(p)] < 0) {
      child0[static_cast<std::size_t>(p)] = c;
    } else {
      child1[static_cast<std::size_t>(p)] = c;
    }
  };
  for (const NodeId nd : order) {
    const auto ni = static_cast<std::size_t>(nd);
    if (tree.is_leaf(nd)) {
      const TaxonId taxon = tree.node(nd).taxon;
      if (taxon < 0 || static_cast<std::size_t>(taxon) >= n) {
        throw InvalidArgument("tree_to_vector: leaf taxon out of range");
      }
      if (seen.test(static_cast<std::size_t>(taxon))) {
        throw InvalidArgument("tree_to_vector: duplicate taxon " +
                              tree.taxa()->label_of(taxon));
      }
      seen.set(static_cast<std::size_t>(taxon));
      flat_id[ni] = taxon;
      continue;
    }
    const std::size_t degree = tree.num_children(nd);
    if (degree == 2) {
      const std::int32_t m = next_internal++;
      tree.for_each_child(nd, [&](NodeId c) {
        link(m, flat_id[static_cast<std::size_t>(c)]);
      });
      flat_id[ni] = m;
    } else if (tree.is_root(nd) && degree == 3) {
      const std::vector<NodeId> kids = tree.children(nd);
      const std::int32_t grouped = next_internal++;
      link(grouped, flat_id[static_cast<std::size_t>(kids[1])]);
      link(grouped, flat_id[static_cast<std::size_t>(kids[2])]);
      const std::int32_t top = next_internal++;
      link(top, flat_id[static_cast<std::size_t>(kids[0])]);
      link(top, grouped);
      flat_id[ni] = top;
    } else {
      throw InvalidArgument(
          "tree_to_vector: tree must be binary (every internal node "
          "degree 2, root degree 2 or 3)");
    }
  }
  BFHRF_ASSERT(next_internal == static_cast<std::int32_t>(total));

  // Creation steps from the final tree: the step-i node is the unique
  // internal node whose two child-subtree minimum labels max out at i
  // (subtree minima are invariant under later interpositions). Internal
  // flat ids are postordered, so one ascending pass suffices.
  std::vector<std::int32_t> ell(total);
  std::vector<std::int32_t> step(total, 0);
  for (std::size_t x = 0; x < n; ++x) {
    ell[x] = static_cast<std::int32_t>(x);
  }
  for (std::size_t m = n; m < total; ++m) {
    const std::int32_t a = ell[static_cast<std::size_t>(child0[m])];
    const std::int32_t b = ell[static_cast<std::size_t>(child1[m])];
    ell[m] = std::min(a, b);
    step[m] = std::max(a, b);
  }

  // Reverse deletion: splice leaves n-1..1 back off. When leaf i goes, its
  // parent is exactly the step-i node and its sibling names the code.
  TreeVector out(n - 1);
  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::int32_t m = parent[i];
    BFHRF_ASSERT(m >= 0 && step[static_cast<std::size_t>(m)] ==
                               static_cast<std::int32_t>(i));
    const auto mi = static_cast<std::size_t>(m);
    const std::int32_t sibling = child0[mi] == static_cast<std::int32_t>(i)
                                     ? child1[mi]
                                     : child0[mi];
    const std::uint32_t code =
        sibling < static_cast<std::int32_t>(n)
            ? static_cast<std::uint32_t>(sibling)
            : static_cast<std::uint32_t>(step[static_cast<std::size_t>(
                                             sibling)] +
                                         static_cast<std::int32_t>(i) - 1);
    BFHRF_ASSERT(code <= 2 * (i - 1));
    out[i - 1] = code;
    const std::int32_t p = parent[mi];
    if (p >= 0) {
      const auto pi = static_cast<std::size_t>(p);
      (child0[pi] == m ? child0[pi] : child1[pi]) = sibling;
    }
    parent[static_cast<std::size_t>(sibling)] = p;
  }
  g_encode_trees.inc();
  return out;
}

std::string format_vector(std::span<const std::uint32_t> v) {
  std::string out;
  out.reserve(v.size() * 3);
  for (std::size_t j = 0; j < v.size(); ++j) {
    if (j != 0) {
      out.push_back(',');
    }
    out += std::to_string(v[j]);
  }
  return out;
}

TreeVector parse_vector(std::string_view text) {
  const std::size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string_view::npos) {
    throw ParseError("parse_vector: empty input");
  }
  const std::size_t end = text.find_last_not_of(" \t\r\n");
  text = text.substr(begin, end - begin + 1);

  TreeVector out;
  std::size_t pos = 0;
  while (true) {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) {
      ++pos;
    }
    std::uint32_t value = 0;
    const char* first = text.data() + pos;
    const char* last = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr == first) {
      throw ParseError("parse_vector: expected integer at offset " +
                       std::to_string(pos));
    }
    out.push_back(value);
    pos = static_cast<std::size_t>(ptr - text.data());
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) {
      ++pos;
    }
    if (pos == text.size()) {
      break;
    }
    if (text[pos] != ',') {
      throw ParseError("parse_vector: expected ',' at offset " +
                       std::to_string(pos));
    }
    ++pos;
  }
  try {
    validate_vector(out);
  } catch (const Error& e) {
    throw ParseError(std::string("parse_vector: ") + e.what());
  }
  return out;
}

// --- binary corpus ----------------------------------------------------------

P2vWriter::P2vWriter(std::ostream& out, std::uint32_t n_taxa,
                     std::span<const std::string> labels)
    : out_(out), n_taxa_(n_taxa) {
  if (n_taxa == 0) {
    throw InvalidArgument("p2v: n_taxa must be >= 1");
  }
  if (!labels.empty() && labels.size() != n_taxa) {
    throw InvalidArgument("p2v: label count " + std::to_string(labels.size()) +
                          " does not match n_taxa " + std::to_string(n_taxa));
  }
  out_.write(kMagic, 4);
  put_u32(out_, n_taxa_);
  count_pos_ = out_.tellp();
  put_u64(out_, 0);  // patched by finish()
  put_u32(out_, labels.empty() ? 0 : kFlagLabels);
  for (const std::string& label : labels) {
    if (label.size() > kMaxLabelBytes) {
      throw InvalidArgument("p2v: label too long: " +
                            std::to_string(label.size()) + " bytes");
    }
    put_u32(out_, static_cast<std::uint32_t>(label.size()));
    out_.write(label.data(), static_cast<std::streamsize>(label.size()));
  }
  if (!out_) {
    throw Error("p2v: header write failed");
  }
}

P2vWriter::~P2vWriter() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; call finish() explicitly to see errors.
  }
}

void P2vWriter::write(std::span<const std::uint32_t> v) {
  if (finished_) {
    throw InvalidArgument("p2v: write after finish()");
  }
  if (v.size() + 1 != n_taxa_) {
    throw InvalidArgument("p2v: record width " + std::to_string(v.size()) +
                          " does not match n_taxa " + std::to_string(n_taxa_));
  }
  validate_vector(v);
  if constexpr (std::endian::native == std::endian::little) {
    out_.write(reinterpret_cast<const char*>(v.data()),
               static_cast<std::streamsize>(v.size() * sizeof(std::uint32_t)));
  } else {
    for (const std::uint32_t code : v) {
      put_u32(out_, code);
    }
  }
  if (!out_) {
    throw Error("p2v: record write failed");
  }
  ++count_;
}

void P2vWriter::finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  if (count_pos_ == std::streampos(-1)) {
    throw Error("p2v: stream is not seekable; cannot patch counted header");
  }
  const std::streampos end = out_.tellp();
  out_.seekp(count_pos_);
  put_u64(out_, count_);
  out_.seekp(end);
  out_.flush();
  if (!out_) {
    throw Error("p2v: header patch failed");
  }
}

P2vReader::P2vReader(std::istream& in) : in_(in) {
  char magic[4];
  if (!in_.read(magic, 4)) {
    throw ParseError("p2v: truncated header (magic)");
  }
  g_p2v_bytes.inc(4);
  if (std::memcmp(magic, kMagic, 4) != 0) {
    throw ParseError("p2v: bad magic (not a P2V1 corpus)");
  }
  header_.n_taxa = get_u32(in_, "header (n_taxa)");
  if (header_.n_taxa == 0) {
    throw ParseError("p2v: n_taxa must be >= 1");
  }
  header_.n_trees = get_u64(in_, "header (n_trees)");
  const std::uint32_t flags = get_u32(in_, "header (flags)");
  if ((flags & ~kFlagLabels) != 0) {
    throw ParseError("p2v: unknown header flags " + std::to_string(flags));
  }
  if ((flags & kFlagLabels) != 0) {
    header_.labels.resize(header_.n_taxa);
    for (std::string& label : header_.labels) {
      const std::uint32_t len = get_u32(in_, "label length");
      if (len > kMaxLabelBytes) {
        throw ParseError("p2v: implausible label length " +
                         std::to_string(len));
      }
      label.resize(len);
      if (len != 0 &&
          !in_.read(label.data(), static_cast<std::streamsize>(len))) {
        throw ParseError("p2v: truncated label");
      }
      g_p2v_bytes.inc(len);
    }
  }
}

bool P2vReader::next(TreeVector& out) {
  if (read_ == header_.n_trees) {
    // Exact-consumption check, same discipline as the serve decoders:
    // a corpus with bytes past the declared records is corrupt.
    if (in_.peek() != std::char_traits<char>::eof()) {
      throw ParseError("p2v: trailing bytes after " +
                       std::to_string(header_.n_trees) + " declared records");
    }
    return false;
  }
  const std::size_t width = static_cast<std::size_t>(header_.n_taxa) - 1;
  out.resize(width);
  if (width != 0) {
    const std::size_t bytes = width * sizeof(std::uint32_t);
    if (!in_.read(reinterpret_cast<char*>(out.data()),
                  static_cast<std::streamsize>(bytes))) {
      throw ParseError("p2v: truncated record " + std::to_string(read_) +
                       " of " + std::to_string(header_.n_trees));
    }
    g_p2v_bytes.inc(bytes);
    if constexpr (std::endian::native != std::endian::little) {
      for (std::uint32_t& code : out) {
        code = ((code & 0x000000FFU) << 24) | ((code & 0x0000FF00U) << 8) |
               ((code & 0x00FF0000U) >> 8) | ((code & 0xFF000000U) >> 24);
      }
    }
  }
  try {
    validate_vector(out);
  } catch (const Error& e) {
    throw ParseError("p2v: record " + std::to_string(read_) + ": " + e.what());
  }
  ++read_;
  g_p2v_records.inc();
  return true;
}

P2vHeader read_p2v_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("p2v: cannot open " + path);
  }
  P2vReader reader(in);
  return reader.header();
}

void write_p2v_file(const std::string& path, std::uint32_t n_taxa,
                    std::span<const TreeVector> vectors,
                    std::span<const std::string> labels) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw Error("p2v: cannot open " + path + " for writing");
  }
  P2vWriter writer(out, n_taxa, labels);
  for (const TreeVector& v : vectors) {
    writer.write(v);
  }
  writer.finish();
}

void write_p2v_file(const std::string& path, std::span<const Tree> trees) {
  if (trees.empty()) {
    throw InvalidArgument("write_p2v_file: empty collection");
  }
  const TaxonSetPtr& taxa = trees.front().taxa();
  if (!taxa) {
    throw InvalidArgument("write_p2v_file: trees carry no taxon set");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw Error("p2v: cannot open " + path + " for writing");
  }
  P2vWriter writer(out, static_cast<std::uint32_t>(taxa->size()),
                   taxa->labels());
  for (const Tree& tree : trees) {
    const TreeVector v = tree_to_vector(tree);
    writer.write(v);
  }
  writer.finish();
}

// --- direct extraction ------------------------------------------------------

const BipartitionSet& VectorBipartitionExtractor::extract(
    std::span<const std::uint32_t> v, const BipartitionOptions& opts) {
  extract_into(v, opts, set_);
  return set_;
}

void VectorBipartitionExtractor::extract_into(std::span<const std::uint32_t> v,
                                              const BipartitionOptions& opts,
                                              BipartitionSet& out) {
  if (opts.value != SplitValue::None) {
    throw InvalidArgument(
        "VectorBipartitionExtractor: vectors carry no per-edge values");
  }
  const std::size_t n = v.size() + 1;
  const std::size_t words = util::words_for_bits(n);
  out.clear(n);
  if (leaf_mask_.size() != n) {
    leaf_mask_ = util::DynamicBitset(n);
  }
  if (n == 1) {
    leaf_mask_.set(0);
    out.assign_leaf_mask(leaf_mask_);
    g_direct_extracts.inc();
    return;
  }

  const std::int32_t root = decode_topology(v, parent_);
  const std::size_t total = 2 * n - 1;
  const auto mask_of = [&](std::int32_t id) {
    return masks_.data() + static_cast<std::size_t>(id) * words;
  };

  // Bottom-up mask accumulation over the parent array. Creation order is
  // not topological (later internal nodes interpose below earlier ones),
  // so fold with a pending-children ready queue: leaves seed it, a node
  // joins once both of its children have OR-ed in.
  masks_.assign(total * words, 0);
  pending_.assign(total, 0);
  for (std::size_t x = 0; x < total; ++x) {
    if (static_cast<std::int32_t>(x) != root) {
      ++pending_[static_cast<std::size_t>(parent_[x])];
    }
  }
  ready_.clear();
  ready_.reserve(total);
  for (std::size_t leaf = 0; leaf < n; ++leaf) {
    mask_of(static_cast<std::int32_t>(leaf))[leaf >> 6] |=
        (std::uint64_t{1} << (leaf & 63));
    ready_.push_back(static_cast<std::int32_t>(leaf));
  }
  for (std::size_t head = 0; head < ready_.size(); ++head) {
    const std::int32_t x = ready_[head];
    const std::int32_t p = parent_[static_cast<std::size_t>(x)];
    if (p < 0) {
      continue;
    }
    const std::uint64_t* xm = mask_of(x);
    std::uint64_t* pm = mask_of(p);
    for (std::size_t w = 0; w < words; ++w) {
      pm[w] |= xm[w];
    }
    if (--pending_[static_cast<std::size_t>(p)] == 0) {
      ready_.push_back(p);
    }
  }

  // Full coverage by construction: the leaf universe is the root's mask
  // and the canonical-polarity pivot (lowest present taxon) is bit 0.
  {
    const std::uint64_t* rm = mask_of(root);
    std::copy(rm, rm + words, leaf_mask_.mutable_words().begin());
  }

  // A decoded tree always has a degree-2 root, whose two child masks are
  // complements — one duplicate split. Skip the larger-id child
  // unconditionally; the sorted path would only dedup it again.
  std::int32_t skip_dup = -1;
  for (std::size_t x = 0; x < total; ++x) {
    if (parent_[x] == root) {
      skip_dup = static_cast<std::int32_t>(x);
    }
  }

  const std::size_t min_side = opts.include_trivial ? 1 : 2;
  const util::ConstWordSpan universe{leaf_mask_.words().data(), words};
  // Leaves only ever yield trivial splits; skip them wholesale otherwise.
  const std::size_t first = opts.include_trivial ? 0 : n;
  for (std::size_t x = first; x < total; ++x) {
    const auto id = static_cast<std::int32_t>(x);
    if (id == root || id == skip_dup) {
      continue;
    }
    const std::uint64_t* m = mask_of(id);
    const std::size_t ones = util::popcount_words({m, words});
    if (ones < min_side || ones > n - min_side) {
      continue;
    }
    const bool flip = (m[0] & 1) != 0;
    out.append_canonical({m, words}, universe, flip);
  }

  out.assign_leaf_mask(leaf_mask_);
  if (opts.sorted) {
    out.finalize(&finalize_scratch_);
  }
  g_direct_extracts.inc();
}

}  // namespace bfhrf::phylo
