#include "phylo/newick.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <istream>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/string_util.hpp"

namespace bfhrf::phylo {
namespace {

// Streaming-reader throughput: records yielded and bytes consumed.
const obs::Counter g_newick_trees = obs::counter("phylo.newick.trees");
const obs::Counter g_newick_bytes = obs::counter("phylo.newick.bytes");

/// Character-level cursor with comment and whitespace skipping.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  /// Current character after skipping whitespace/comments; '\0' at end.
  char peek() {
    skip();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char take() {
    const char c = peek();
    if (pos_ < text_.size()) {
      ++pos_;
    }
    return c;
  }

  void expect(char c) {
    const char got = take();
    if (got != c) {
      fail(std::string("expected '") + c + "', got " +
           (got == '\0' ? std::string("end of input")
                        : "'" + std::string(1, got) + "'"));
    }
  }

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError("newick parse error at offset " + std::to_string(pos_) +
                     ": " + msg);
  }

  /// Parse a (possibly quoted) label. Returns empty for no label.
  std::string label() {
    skip();
    if (pos_ >= text_.size()) {
      return {};
    }
    if (text_[pos_] == '\'') {
      ++pos_;
      std::string out;
      while (true) {
        if (pos_ >= text_.size()) {
          fail("unterminated quoted label");
        }
        const char c = text_[pos_++];
        if (c == '\'') {
          if (pos_ < text_.size() && text_[pos_] == '\'') {
            out.push_back('\'');  // '' escapes a quote
            ++pos_;
          } else {
            return out;
          }
        } else {
          out.push_back(c);
        }
      }
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '(' || c == ')' || c == ',' || c == ':' || c == ';' ||
          c == '[' ||
          std::isspace(static_cast<unsigned char>(c)) != 0) {
        break;
      }
      out.push_back(c);
      ++pos_;
    }
    return out;
  }

  /// Parse a branch length after ':'.
  double length() {
    skip();
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double v = 0;
    const auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc{} || ptr == begin) {
      fail("bad branch length");
    }
    pos_ += static_cast<std::size_t>(ptr - begin);
    return v;
  }

 private:
  void skip() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '[') {
        int depth = 0;
        while (pos_ < text_.size()) {
          if (text_[pos_] == '[') {
            ++depth;
          } else if (text_[pos_] == ']') {
            if (--depth == 0) {
              ++pos_;
              break;
            }
          }
          ++pos_;
        }
        if (depth != 0) {
          fail("unterminated [comment]");
        }
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Tree parse_newick(std::string_view text, const TaxonSetPtr& taxa,
                  const NewickParseOptions& opts) {
  if (!taxa) {
    throw InvalidArgument("parse_newick: null taxon set");
  }
  Cursor cur(text);
  Tree tree(taxa);

  if (cur.peek() == '\0') {
    cur.fail("empty input");
  }

  // Iterative descent: the stack holds the open '(' ancestors.
  std::vector<NodeId> stack;
  const NodeId root = tree.add_root();
  NodeId current = root;  // node whose label/length we are about to read

  if (cur.peek() == '(') {
    cur.take();
    stack.push_back(root);
    current = kNoNode;
  } else {
    // Degenerate single-leaf tree, e.g. "A;" or "A:1.0;".
    const std::string lbl = cur.label();
    if (lbl.empty()) {
      cur.fail("expected '(' or a label");
    }
    tree.set_taxon(root, taxa->add_or_get(lbl));
    if (cur.peek() == ':') {
      cur.take();
      tree.set_length(root, cur.length());
    }
    if (cur.peek() == ';') {
      cur.take();
    }
    if (cur.peek() != '\0') {
      cur.fail("trailing characters after tree");
    }
    return tree;
  }

  // After this point: whenever current == kNoNode we are at the start of a
  // subtree inside stack.back().
  while (true) {
    if (current == kNoNode) {
      if (cur.peek() == '(') {
        cur.take();
        const NodeId nd = tree.add_child(stack.back());
        stack.push_back(nd);
        continue;
      }
      // A leaf (or an empty label, which is an error for leaves).
      const std::string lbl = cur.label();
      if (lbl.empty()) {
        cur.fail("expected a leaf label");
      }
      current = tree.add_leaf(stack.back(), taxa->add_or_get(lbl));
    }

    // Optional ":length" for the node just completed.
    if (cur.peek() == ':') {
      cur.take();
      tree.set_length(current, cur.length());
    }

    const char c = cur.peek();
    if (c == ',') {
      cur.take();
      if (stack.empty()) {
        cur.fail("',' outside parentheses");
      }
      current = kNoNode;
      continue;
    }
    if (c == ')') {
      cur.take();
      if (stack.empty()) {
        cur.fail("unbalanced ')'");
      }
      current = stack.back();
      stack.pop_back();
      // Optional internal label; numeric ones are support values (the
      // common bootstrap/posterior convention), others are ignored.
      const std::string internal_label = cur.label();
      if (!internal_label.empty()) {
        double support = 0;
        const char* begin = internal_label.data();
        const char* end = begin + internal_label.size();
        const auto [ptr, ec] = std::from_chars(begin, end, support);
        if (ec == std::errc{} && ptr == end) {
          tree.set_support(current, support);
        }
      }
      continue;
    }
    if (c == ';' || c == '\0') {
      if (c == ';') {
        cur.take();
      }
      if (!stack.empty()) {
        cur.fail("missing ')': " + std::to_string(stack.size()) +
                 " group(s) still open");
      }
      break;
    }
    cur.fail(std::string("unexpected character '") + c + "'");
  }

  if (tree.num_leaves() == 0) {
    throw ParseError("newick tree has no leaves");
  }
  for (NodeId id = 0; id < static_cast<NodeId>(tree.num_nodes()); ++id) {
    if (!tree.is_leaf(id) && tree.num_children(id) == 1) {
      tree.suppress_unary();
      break;
    }
  }
  if (opts.require_full_taxon_set && tree.num_leaves() != taxa->size()) {
    throw ParseError("tree has " + std::to_string(tree.num_leaves()) +
                     " leaves but the taxon set has " +
                     std::to_string(taxa->size()));
  }
  return tree;
}

namespace {

bool needs_quoting(const std::string& label) {
  if (label.empty()) {
    return true;
  }
  for (const char c : label) {
    if (c == '(' || c == ')' || c == ',' || c == ':' || c == ';' ||
        c == '[' || c == ']' || c == '\'' ||
        std::isspace(static_cast<unsigned char>(c)) != 0) {
      return true;
    }
  }
  return false;
}

void write_label(std::ostream& os, const std::string& label) {
  if (!needs_quoting(label)) {
    os << label;
    return;
  }
  os << '\'';
  for (const char c : label) {
    if (c == '\'') {
      os << "''";
    } else {
      os << c;
    }
  }
  os << '\'';
}

}  // namespace

std::string write_newick(const Tree& tree, const NewickWriteOptions& opts) {
  if (tree.empty()) {
    throw InvalidArgument("cannot serialize an empty tree");
  }
  std::ostringstream os;
  os.precision(opts.length_precision);

  // Iterative serialization: frames carry the remaining children.
  struct Frame {
    NodeId id;
    std::vector<NodeId> kids;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;

  const auto open = [&](NodeId id) {
    if (tree.is_leaf(id)) {
      write_label(os, tree.taxa()->label_of(tree.node(id).taxon));
      return false;
    }
    os << '(';
    stack.push_back({id, tree.children(id), 0});
    return true;
  };

  const auto close = [&](NodeId id, bool internal) {
    if (internal && opts.write_support && tree.node(id).has_support) {
      os << tree.node(id).support;
    }
    if (opts.write_lengths && tree.node(id).has_length) {
      os << ':' << tree.node(id).length;
    }
  };

  if (!open(tree.root())) {
    close(tree.root(), false);
    os << ';';
    return std::move(os).str();
  }
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next < f.kids.size()) {
      if (f.next > 0) {
        os << ',';
      }
      const NodeId child = f.kids[f.next++];
      if (!open(child)) {
        close(child, false);
      }
    } else {
      os << ')';
      close(f.id, true);
      stack.pop_back();
    }
  }
  os << ';';
  return std::move(os).str();
}

NewickReader::NewickReader(std::istream& in, TaxonSetPtr taxa,
                           NewickParseOptions opts)
    : in_(in), taxa_(std::move(taxa)), opts_(opts) {
  if (!taxa_) {
    throw InvalidArgument("NewickReader: null taxon set");
  }
}

std::optional<Tree> NewickReader::next() {
  buffer_.clear();
  char c = 0;
  bool in_quote = false;
  int comment_depth = 0;
  while (in_.get(c)) {
    if (in_quote) {
      buffer_.push_back(c);
      if (c == '\'') {
        in_quote = false;  // handles '' escapes as two toggles, harmless
      }
      continue;
    }
    if (comment_depth > 0) {
      buffer_.push_back(c);
      if (c == '[') {
        ++comment_depth;
      } else if (c == ']') {
        --comment_depth;
      }
      continue;
    }
    switch (c) {
      case '\'':
        in_quote = true;
        buffer_.push_back(c);
        break;
      case '[':
        comment_depth = 1;
        buffer_.push_back(c);
        break;
      case ';': {
        buffer_.push_back(c);
        ++count_;
        g_newick_trees.inc();
        g_newick_bytes.inc(buffer_.size());
        return parse_newick(buffer_, taxa_, opts_);
      }
      default:
        buffer_.push_back(c);
        break;
    }
  }
  if (!util::trim(buffer_).empty()) {
    // Trailing record without ';' — accept it for robustness.
    ++count_;
    g_newick_trees.inc();
    g_newick_bytes.inc(buffer_.size());
    return parse_newick(buffer_, taxa_, opts_);
  }
  return std::nullopt;
}

std::vector<Tree> read_newick_file(const std::string& path,
                                   const TaxonSetPtr& taxa,
                                   const NewickParseOptions& opts) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("cannot open '" + path + "'");
  }
  std::vector<Tree> trees;
  NewickReader reader(in, taxa, opts);
  while (auto t = reader.next()) {
    trees.push_back(std::move(*t));
  }
  if (trees.empty()) {
    throw ParseError("no trees in '" + path + "'");
  }
  return trees;
}

void write_newick_file(const std::string& path, std::span<const Tree> trees,
                       const NewickWriteOptions& opts) {
  std::ofstream out(path);
  if (!out) {
    throw ParseError("cannot open '" + path + "' for writing");
  }
  for (const Tree& t : trees) {
    out << write_newick(t, opts) << '\n';
  }
}

}  // namespace bfhrf::phylo
