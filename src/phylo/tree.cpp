#include "phylo/tree.hpp"

#include <algorithm>
#include <unordered_set>

namespace bfhrf::phylo {

NodeId Tree::add_root() {
  BFHRF_ASSERT(nodes_.empty());
  nodes_.emplace_back();
  root_ = 0;
  return root_;
}

NodeId Tree::add_child(NodeId parent) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.emplace_back();
  Node& child = nodes_.back();
  child.parent = parent;
  Node& p = at(parent);
  if (p.first_child == kNoNode) {
    p.first_child = id;
  } else {
    NodeId c = p.first_child;
    while (at(c).next_sibling != kNoNode) {
      c = at(c).next_sibling;
    }
    at(c).next_sibling = id;
  }
  return id;
}

NodeId Tree::add_leaf(NodeId parent, TaxonId taxon) {
  const NodeId id = add_child(parent);
  at(id).taxon = taxon;
  ++num_leaves_;
  return id;
}

std::size_t Tree::num_children(NodeId id) const {
  std::size_t k = 0;
  for_each_child(id, [&k](NodeId) { ++k; });
  return k;
}

std::vector<NodeId> Tree::children(NodeId id) const {
  std::vector<NodeId> out;
  for_each_child(id, [&out](NodeId c) { out.push_back(c); });
  return out;
}

std::vector<NodeId> Tree::postorder() const {
  std::vector<NodeId> order;
  std::vector<NodeId> stack;
  postorder_into(order, stack);
  return order;
}

void Tree::postorder_into(std::vector<NodeId>& out,
                          std::vector<NodeId>& stack) const {
  out.clear();
  stack.clear();
  if (empty()) {
    return;
  }
  out.reserve(nodes_.size());
  // Two-stack trick: emit in reverse preorder with children reversed,
  // then flip — yields postorder without recursion.
  stack.push_back(root_);
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    for_each_child(id, [&stack](NodeId c) { stack.push_back(c); });
  }
  std::reverse(out.begin(), out.end());
}

std::vector<NodeId> Tree::leaves() const {
  std::vector<NodeId> out;
  out.reserve(num_leaves_);
  for (const NodeId id : postorder()) {
    if (is_leaf(id)) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<TaxonId> Tree::leaf_taxa_sorted() const {
  std::vector<TaxonId> taxa;
  taxa.reserve(num_leaves_);
  for (const NodeId id : leaves()) {
    taxa.push_back(at(id).taxon);
  }
  std::sort(taxa.begin(), taxa.end());
  return taxa;
}

bool Tree::is_binary() const {
  if (empty()) {
    return false;
  }
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    if (is_leaf(id)) {
      continue;
    }
    const std::size_t k = num_children(id);
    if (is_root(id)) {
      if (k != 2 && k != 3) {
        return false;
      }
    } else if (k != 2) {
      return false;
    }
  }
  return true;
}

std::size_t Tree::num_internal_edges() const {
  // Edges whose child end is internal. In a rooted-binary representation the
  // two root edges describe the same split, so one is discounted.
  std::size_t count = 0;
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    if (!is_root(id) && !is_leaf(id)) {
      ++count;
    }
  }
  if (root_ != kNoNode && num_children(root_) == 2) {
    // Rooted representation: the root subdivides one edge of the unrooted
    // tree; the split below each root child is duplicated once unless a
    // root child is a leaf (then the duplicate is trivial, not counted).
    bool both_internal = true;
    for_each_child(root_, [&](NodeId c) { both_internal &= !is_leaf(c); });
    if (both_internal && count > 0) {
      --count;
    }
  }
  return count;
}

void Tree::validate() const {
  if (empty()) {
    throw InvariantError("empty tree");
  }
  if (root_ == kNoNode || at(root_).parent != kNoNode) {
    throw InvariantError("bad root");
  }
  std::size_t leaf_count = 0;
  std::unordered_set<TaxonId> seen;
  std::size_t reachable = 0;
  for (const NodeId id : postorder()) {
    ++reachable;
    const Node& nd = at(id);
    if (!is_root(id)) {
      // Parent must list `id` among its children.
      bool found = false;
      for_each_child(nd.parent, [&](NodeId c) { found |= (c == id); });
      if (!found) {
        throw InvariantError("parent/child link broken at node " +
                             std::to_string(id));
      }
    }
    if (is_leaf(id)) {
      ++leaf_count;
      if (nd.taxon == kNoTaxon) {
        throw InvariantError("leaf without taxon at node " +
                             std::to_string(id));
      }
      if (!seen.insert(nd.taxon).second) {
        throw InvariantError("duplicate taxon in tree: " +
                             std::to_string(nd.taxon));
      }
    } else if (nd.taxon != kNoTaxon) {
      throw InvariantError("internal node carries a taxon");
    }
  }
  if (reachable != nodes_.size()) {
    throw InvariantError("unreachable nodes in arena");
  }
  if (leaf_count != num_leaves_) {
    throw InvariantError("leaf count cache out of date");
  }
}

void Tree::rebuild_compact(bool merge_unary) {
  Tree out(taxa_);
  out.reserve(nodes_.size());
  if (empty()) {
    *this = std::move(out);
    return;
  }

  // Skip over chains of unary nodes, accumulating branch lengths.
  struct Pending {
    NodeId old_id;
    NodeId new_parent;
  };
  // Resolve the effective child: descend through unary nodes.
  const auto resolve = [&](NodeId id, double& extra_len, bool& any_len) {
    while (merge_unary && !is_leaf(id) && num_children(id) == 1) {
      const NodeId only = at(id).first_child;
      extra_len += at(only).length;
      any_len |= at(only).has_length;
      id = only;
    }
    return id;
  };

  double root_extra = 0.0;
  bool root_any = false;
  const NodeId eff_root = resolve(root_, root_extra, root_any);

  std::vector<Pending> stack;
  const NodeId new_root = out.add_root();
  if (is_leaf(eff_root)) {
    out.at(new_root).taxon = at(eff_root).taxon;
    out.num_leaves_ = 1;
  }
  for_each_child(eff_root,
                 [&](NodeId c) { stack.push_back({c, new_root}); });
  // Children were pushed left-to-right; pop order reverses them, so reverse
  // the pending block to preserve child order.
  std::reverse(stack.begin(), stack.end());

  while (!stack.empty()) {
    const Pending p = stack.back();
    stack.pop_back();
    double extra = at(p.old_id).length;
    bool any = at(p.old_id).has_length;
    const NodeId eff = resolve(p.old_id, extra, any);
    NodeId nid;
    if (is_leaf(eff)) {
      nid = out.add_leaf(p.new_parent, at(eff).taxon);
    } else {
      nid = out.add_child(p.new_parent);
    }
    out.at(nid).length = extra;
    out.at(nid).has_length = any;
    out.at(nid).support = at(eff).support;
    out.at(nid).has_support = at(eff).has_support;
    std::vector<Pending> block;
    for_each_child(eff, [&](NodeId c) { block.push_back({c, nid}); });
    for (auto it = block.rbegin(); it != block.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  *this = std::move(out);
}

void Tree::suppress_unary() { rebuild_compact(/*merge_unary=*/true); }

NodeId Tree::split_edge_insert_leaf(NodeId node, TaxonId taxon) {
  if (node == root_ || node == kNoNode) {
    throw InvalidArgument("split_edge_insert_leaf: node must have a parent");
  }
  const NodeId parent = at(node).parent;

  // New internal node takes `node`'s slot in the parent's child list.
  const auto mid = static_cast<NodeId>(nodes_.size());
  nodes_.emplace_back();
  at(mid).parent = parent;
  at(mid).next_sibling = at(node).next_sibling;
  at(mid).first_child = node;

  if (at(parent).first_child == node) {
    at(parent).first_child = mid;
  } else {
    NodeId c = at(parent).first_child;
    while (at(c).next_sibling != node) {
      c = at(c).next_sibling;
      BFHRF_ASSERT(c != kNoNode);
    }
    at(c).next_sibling = mid;
  }
  at(node).parent = mid;
  at(node).next_sibling = kNoNode;

  // Split the branch length evenly across the two halves of the old edge.
  if (at(node).has_length) {
    at(mid).length = at(node).length / 2;
    at(mid).has_length = true;
    at(node).length /= 2;
  }

  const auto leaf = static_cast<NodeId>(nodes_.size());
  nodes_.emplace_back();
  at(leaf).parent = mid;
  at(leaf).taxon = taxon;
  at(node).next_sibling = leaf;
  ++num_leaves_;
  return leaf;
}

void Tree::deroot() {
  if (empty() || num_children(root_) != 2) {
    return;
  }
  // Pick an internal root child to dissolve into the root.
  NodeId internal_child = kNoNode;
  for_each_child(root_, [&](NodeId c) {
    if (!is_leaf(c) && internal_child == kNoNode) {
      internal_child = c;
    }
  });
  if (internal_child == kNoNode) {
    return;  // both children are leaves: a 2-taxon tree, nothing to do
  }
  // Splice the chosen child's children onto the root, then drop the child by
  // rebuilding (which also refreshes ids).
  const NodeId other = (at(root_).first_child == internal_child)
                           ? at(internal_child).next_sibling
                           : at(root_).first_child;
  // The surviving root edge carries the sum of the two root-edge lengths.
  at(other).length += at(internal_child).length;
  at(other).has_length =
      at(other).has_length || at(internal_child).has_length;

  // Re-parent: root's children become {other + internal_child's children}.
  at(root_).first_child = other;
  at(other).next_sibling = at(internal_child).first_child;
  for (NodeId c = at(internal_child).first_child; c != kNoNode;
       c = at(c).next_sibling) {
    at(c).parent = root_;
  }
  // internal_child is now unreachable; compact the arena.
  at(internal_child).first_child = kNoNode;
  rebuild_compact(/*merge_unary=*/false);
}

}  // namespace bfhrf::phylo
