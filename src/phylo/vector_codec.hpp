// Vector tree codec — phylo2vec-style integer encodings as a first-class
// interchange format alongside Newick/NEXUS (ROADMAP "vector tree
// encodings"; phylo2vec arXiv 2506.19490, Chauve–Colijn–Zhang arXiv
// 2405.07110).
//
// Encoding. A rooted binary tree on leaves labeled 0..n-1 is a vector v of
// n-1 integers with v[j] in [0, 2j] (so v[0] == 0 always). The tree is
// grown by attaching leaves in label order; at step i (adding leaf i,
// code c = v[i-1]):
//
//   c <= i-1 : subdivide the pendant branch of leaf c and hang leaf i
//              off the new internal node;
//   c >  i-1 : subdivide the branch ABOVE the internal node created at
//              step t = c - i + 1 (attaching above the root grows a new
//              root).
//
// Each step creates exactly one internal node, so there are prod(2j+1)
// = (2n-3)!! vectors — the number of rooted binary trees on n labeled
// leaves — and the map is a bijection. Decoding is O(n) on a flat parent
// array. Encoding is O(n) too, via the reverse-deletion identity: in the
// FINAL tree, the internal node created at step i is the one whose two
// child-subtree minimum labels have maximum equal to i (subtree minima
// are invariant under the later interpositions), so one postorder pass
// recovers every creation step and leaves n-1..1 can be spliced off in
// reverse order, reading each code from the removed leaf's sibling.
//
// Scope: vectors encode TOPOLOGY over the full taxon set only — branch
// lengths and supports are dropped, multifurcating trees and trees on a
// strict taxon subset are rejected (InvalidArgument). The repo's unrooted
// convention (degree-3 root) is handled by an implicit deterministic
// rooting; RF and bipartitions are rooting-invariant, so conversions are
// distance-free (qc invariant #9 checks the full pairwise matrix
// bit-for-bit).
//
// Three surfaces:
//  * Tree <-> vector conversion through the existing Tree/TaxonSet types.
//  * Text ("0,2,4") and binary (.p2v, little-endian, counted header)
//    corpus I/O. The counted header gives ingest an EXACT size_hint.
//  * VectorBipartitionExtractor: canonical BipartitionSets straight from
//    the vector form, no Tree materialized — a dense integer array beats
//    pointer-chasing the node arena for the extraction stage the PR 2
//    pipeline made hot (bench/ablation_codec.cpp, A11).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "phylo/bipartition.hpp"
#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"
#include "util/bitset.hpp"

namespace bfhrf::phylo {

/// A phylo2vec-style topology vector: length n-1 for n taxa, v[j] in
/// [0, 2j]. The empty vector is the single-leaf tree.
using TreeVector = std::vector<std::uint32_t>;

/// Throw InvalidArgument unless every code is in range (v[j] <= 2j).
void validate_vector(std::span<const std::uint32_t> v);

/// Decode a vector into a rooted binary tree over `taxa` (which must have
/// exactly v.size()+1 taxa; leaf labels are the taxon bit indices). The
/// result has a degree-2 root, so tree_to_vector(vector_to_tree(v)) == v
/// exactly.
[[nodiscard]] Tree vector_to_tree(std::span<const std::uint32_t> v,
                                  const TaxonSetPtr& taxa);

/// Encode a binary tree covering its full taxon set. Accepts both rooted
/// (degree-2 root) and the repo's unrooted convention (degree-3 root,
/// rooted deterministically by grouping the root's trailing two children).
/// Throws InvalidArgument for multifurcating/unary trees or partial taxon
/// coverage.
[[nodiscard]] TreeVector tree_to_vector(const Tree& tree);

// --- text form --------------------------------------------------------------

/// "0,2,4" — comma-separated codes, no padding.
[[nodiscard]] std::string format_vector(std::span<const std::uint32_t> v);

/// Parse the text form (surrounding whitespace tolerated). Throws
/// ParseError on malformed input or out-of-range codes.
[[nodiscard]] TreeVector parse_vector(std::string_view text);

// --- binary corpus (.p2v) ---------------------------------------------------
//
// Little-endian layout, counted header (all integers LE):
//   bytes 0..3   magic "P2V1"
//   u32          n_taxa            (>= 1)
//   u64          n_trees
//   u32          flags             (bit 0: labels block present)
//   [labels]     n_taxa x (u32 len + bytes), when flag bit 0 is set
//   records      n_trees x (n_taxa - 1) u32 codes, fixed width
//
// Fixed-width records keep the corpus seekable and make truncation and
// trailing garbage detectable exactly (the reader validates full
// consumption like the serve protocol decoders).

struct P2vHeader {
  std::uint32_t n_taxa = 0;
  std::uint64_t n_trees = 0;
  /// Taxon labels in bit-index order; empty when the corpus carries none
  /// (readers then use TaxonSet::make_numbered).
  std::vector<std::string> labels;
};

/// Streaming .p2v writer. The tree count is back-patched into the header
/// by finish(), so the stream must be seekable (files are). finish() is
/// called by the destructor if the caller did not; call it explicitly to
/// surface errors.
class P2vWriter {
 public:
  P2vWriter(std::ostream& out, std::uint32_t n_taxa,
            std::span<const std::string> labels = {});
  P2vWriter(const P2vWriter&) = delete;
  P2vWriter& operator=(const P2vWriter&) = delete;
  ~P2vWriter();

  /// Append one record; validates width and code ranges.
  void write(std::span<const std::uint32_t> v);

  /// Patch the counted header. Idempotent.
  void finish();

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  std::ostream& out_;
  std::uint32_t n_taxa_;
  std::uint64_t count_ = 0;
  std::streampos count_pos_;
  bool finished_ = false;
};

/// Streaming .p2v reader. The constructor parses and validates the header
/// (magic, taxon count, flags, labels); next() yields exactly
/// header().n_trees records, validating every code, then requires EOF —
/// a truncated record or trailing bytes is a ParseError, never silence.
class P2vReader {
 public:
  explicit P2vReader(std::istream& in);

  [[nodiscard]] const P2vHeader& header() const noexcept { return header_; }

  /// Next record into `out` (resized to n_taxa-1); false after the
  /// declared count (at which point the tail has been checked).
  bool next(TreeVector& out);

 private:
  std::istream& in_;
  P2vHeader header_;
  std::uint64_t read_ = 0;
};

/// Parse just the header of a .p2v file (for size_hint probes).
[[nodiscard]] P2vHeader read_p2v_header(const std::string& path);

/// Write a whole corpus of raw vectors.
void write_p2v_file(const std::string& path, std::uint32_t n_taxa,
                    std::span<const TreeVector> vectors,
                    std::span<const std::string> labels = {});

/// Encode and write a tree collection (labels come from the shared
/// TaxonSet). All trees must be binary over the full taxon set.
void write_p2v_file(const std::string& path, std::span<const Tree> trees);

// --- direct extraction ------------------------------------------------------

/// Canonical bipartition extraction straight from the vector form: the
/// vector decodes to a flat parent array (no Tree, no labels, no Newick
/// characters) and subtree masks accumulate bottom-up over it. Output is
/// identical to BipartitionExtractor over vector_to_tree(v) — the kept
/// key sets match bit-for-bit, and sorted arenas match in order too.
///
/// The universe width is v.size()+1 (vector trees always cover their full
/// taxon set, so the canonical polarity pivot is taxon 0). Vectors carry
/// no per-edge values, so opts.value must be SplitValue::None.
///
/// All buffers are reused across calls — per-vector extraction is
/// allocation-free once warm (the PR 2 per-worker scratch discipline).
/// Not thread-safe: one extractor per worker.
class VectorBipartitionExtractor {
 public:
  /// Extract into the internal set and return a reference to it. The
  /// reference is invalidated by the next extract()/extract_into().
  const BipartitionSet& extract(std::span<const std::uint32_t> v,
                                const BipartitionOptions& opts = {});

  /// Extract into `out` (cleared first), reusing `out`'s capacity as well
  /// as the extractor's scratch.
  void extract_into(std::span<const std::uint32_t> v,
                    const BipartitionOptions& opts, BipartitionSet& out);

 private:
  BipartitionSet set_;
  std::vector<std::int32_t> parent_;    ///< decoded parent array
  std::vector<std::int32_t> pending_;   ///< unfolded-children counts
  std::vector<std::int32_t> ready_;     ///< bottom-up work queue
  std::vector<std::uint64_t> masks_;    ///< per-node leaf masks
  util::DynamicBitset leaf_mask_;       ///< full universe (all n bits)
  BipartitionSet::FinalizeScratch finalize_scratch_;
};

}  // namespace bfhrf::phylo
