// Tree: arena-allocated phylogenetic tree.
//
// Nodes live contiguously in one vector and refer to each other by index
// (first-child / next-sibling), so a tree is two allocations total and
// traversals are cache-friendly — this matters when streaming 10^5 trees.
//
// Rooted vs unrooted: the structure is stored rooted. An unrooted binary
// tree on n taxa is represented as a tree whose root has degree >= 3 (the
// usual convention). Bipartition extraction (bipartition.hpp) is invariant
// to the chosen rooting, which tests verify by rerooting.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "phylo/taxon_set.hpp"
#include "util/error.hpp"

namespace bfhrf::phylo {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

class Tree {
 public:
  struct Node {
    NodeId parent = kNoNode;
    NodeId first_child = kNoNode;
    NodeId next_sibling = kNoNode;
    TaxonId taxon = kNoTaxon;  ///< leaf taxon index; kNoTaxon for internal
    double length = 0.0;       ///< branch length to parent (0 if absent)
    double support = 0.0;      ///< internal-node support value (0 if absent)
    bool has_length = false;   ///< whether the input carried a length
    bool has_support = false;  ///< whether the input carried a support
  };

  Tree() = default;
  explicit Tree(TaxonSetPtr taxa) : taxa_(std::move(taxa)) {}

  // --- construction -------------------------------------------------------

  /// Create the root node. The tree must be empty.
  NodeId add_root();

  /// Create a child of `parent` (appended after existing children).
  NodeId add_child(NodeId parent);

  /// Create a leaf child of `parent` bound to `taxon`.
  NodeId add_leaf(NodeId parent, TaxonId taxon);

  void set_taxon(NodeId node, TaxonId taxon) {
    Node& nd = at(node);
    if (nd.first_child == kNoNode) {
      // Keep the cached leaf count correct when a childless node gains or
      // loses its taxon (only the degenerate single-leaf path does this).
      if (nd.taxon == kNoTaxon && taxon != kNoTaxon) {
        ++num_leaves_;
      } else if (nd.taxon != kNoTaxon && taxon == kNoTaxon) {
        --num_leaves_;
      }
    }
    nd.taxon = taxon;
  }
  void set_length(NodeId node, double length) {
    at(node).length = length;
    at(node).has_length = true;
  }
  void set_support(NodeId node, double support) {
    at(node).support = support;
    at(node).has_support = true;
  }

  void reserve(std::size_t nodes) { nodes_.reserve(nodes); }

  // --- access --------------------------------------------------------------

  [[nodiscard]] const TaxonSetPtr& taxa() const noexcept { return taxa_; }
  void set_taxa(TaxonSetPtr taxa) noexcept { taxa_ = std::move(taxa); }

  [[nodiscard]] NodeId root() const noexcept { return root_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }

  [[nodiscard]] const Node& node(NodeId id) const { return at(id); }

  [[nodiscard]] bool is_leaf(NodeId id) const {
    return at(id).first_child == kNoNode;
  }
  [[nodiscard]] bool is_root(NodeId id) const { return id == root_; }

  /// Number of children of `id`.
  [[nodiscard]] std::size_t num_children(NodeId id) const;

  /// Children of `id` in order.
  [[nodiscard]] std::vector<NodeId> children(NodeId id) const;

  /// Invoke fn(child) over the children of `id`.
  template <typename Fn>
  void for_each_child(NodeId id, Fn&& fn) const {
    for (NodeId c = at(id).first_child; c != kNoNode;
         c = at(c).next_sibling) {
      fn(c);
    }
  }

  [[nodiscard]] std::size_t num_leaves() const noexcept { return num_leaves_; }

  /// Nodes in postorder (children before parents). Computed iteratively;
  /// safe for arbitrarily deep (caterpillar) trees.
  [[nodiscard]] std::vector<NodeId> postorder() const;

  /// postorder() into caller-owned buffers: `out` receives the order and
  /// `stack` is traversal scratch; both are cleared and reused without
  /// reallocating once warm. The allocation-free path for per-tree loops
  /// (phylo::BipartitionExtractor).
  void postorder_into(std::vector<NodeId>& out,
                      std::vector<NodeId>& stack) const;

  /// Leaf node ids in postorder.
  [[nodiscard]] std::vector<NodeId> leaves() const;

  /// Taxa present in this tree, ascending.
  [[nodiscard]] std::vector<TaxonId> leaf_taxa_sorted() const;

  // --- structure queries ---------------------------------------------------

  /// True if every internal node has exactly 2 children, except that the
  /// root may have 2 (rooted binary) or 3 (unrooted binary) children.
  [[nodiscard]] bool is_binary() const;

  /// True if any internal non-root node has more than 2 children, or the
  /// root has more than 3.
  [[nodiscard]] bool is_multifurcating() const { return !is_binary(); }

  /// Number of internal edges, i.e. edges whose child end is not a leaf and
  /// not redundant with the root. This is the count of (possibly duplicate)
  /// non-trivial bipartitions the tree induces.
  [[nodiscard]] std::size_t num_internal_edges() const;

  // --- transformations -----------------------------------------------------

  /// Subdivide the edge above `node` with a new internal node and hang a
  /// fresh leaf for `taxon` off it. `node` must not be the root. Returns the
  /// new leaf's id. Existing node ids remain valid. (Used by the random
  /// tree generators and SPR moves.)
  NodeId split_edge_insert_leaf(NodeId node, TaxonId taxon);

  /// Collapse nodes with exactly one child (can arise from pruning),
  /// summing branch lengths. Rebuilds the arena; node ids are invalidated.
  void suppress_unary();

  /// Convert a rooted-binary representation (root with 2 children) into the
  /// canonical unrooted one (root with >= 3 children) by merging the root
  /// with one internal child. No-op otherwise. Node ids are invalidated.
  void deroot();

  /// Validate structural invariants (single root, parent/child symmetry,
  /// every leaf has a taxon, taxa are unique). Throws InvariantError.
  void validate() const;

  /// Bytes of heap memory held by the node arena.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return nodes_.capacity() * sizeof(Node);
  }

 private:
  [[nodiscard]] Node& at(NodeId id) {
    BFHRF_ASSERT(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    return nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const Node& at(NodeId id) const {
    BFHRF_ASSERT(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    return nodes_[static_cast<std::size_t>(id)];
  }

  /// Rebuild the arena keeping only subtree structure reachable from root,
  /// applying `keep_single_child_merge` semantics. Used by suppress_unary.
  void rebuild_compact(bool merge_unary);

  TaxonSetPtr taxa_;
  std::vector<Node> nodes_;
  NodeId root_ = kNoNode;
  std::size_t num_leaves_ = 0;
};

}  // namespace bfhrf::phylo
