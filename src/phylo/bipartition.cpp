#include "phylo/bipartition.hpp"

#include <algorithm>
#include <cstring>

namespace bfhrf::phylo {

bool BipartitionSet::contains(util::ConstWordSpan words) const noexcept {
  std::size_t lo = 0;
  std::size_t hi = count_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const int c = util::compare_words((*this)[mid], words);
    if (c == 0) {
      return true;
    }
    if (c < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

void BipartitionSet::append(util::ConstWordSpan words) {
  BFHRF_ASSERT(words.size() == words_per_);
  BFHRF_ASSERT(values_.empty());  // value mode is all-or-nothing
  arena_.insert(arena_.end(), words.begin(), words.end());
  ++count_;
  finalized_ = false;
}

void BipartitionSet::append(util::ConstWordSpan words, double value) {
  BFHRF_ASSERT(words.size() == words_per_);
  BFHRF_ASSERT(values_.size() == count_);  // value mode is all-or-nothing
  arena_.insert(arena_.end(), words.begin(), words.end());
  values_.push_back(value);
  ++count_;
  finalized_ = false;
}

void BipartitionSet::append_canonical(util::ConstWordSpan side,
                                      util::ConstWordSpan leaf_mask,
                                      bool flip) {
  BFHRF_ASSERT(side.size() == words_per_ && leaf_mask.size() == words_per_);
  BFHRF_ASSERT(values_.empty());  // value mode is all-or-nothing
  const std::size_t offset = arena_.size();
  arena_.resize(offset + words_per_);
  util::store_canonical(arena_.data() + offset, side.data(), leaf_mask.data(),
                        flip, words_per_);
  ++count_;
  finalized_ = false;
}

void BipartitionSet::append_canonical(util::ConstWordSpan side,
                                      util::ConstWordSpan leaf_mask,
                                      bool flip, double value) {
  BFHRF_ASSERT(side.size() == words_per_ && leaf_mask.size() == words_per_);
  BFHRF_ASSERT(values_.size() == count_);  // value mode is all-or-nothing
  const std::size_t offset = arena_.size();
  arena_.resize(offset + words_per_);
  util::store_canonical(arena_.data() + offset, side.data(), leaf_mask.data(),
                        flip, words_per_);
  values_.push_back(value);
  ++count_;
  finalized_ = false;
}

void BipartitionSet::finalize(FinalizeScratch* scratch) {
  if (finalized_ || count_ <= 1) {
    finalized_ = true;
    return;
  }
  FinalizeScratch local;
  FinalizeScratch& s = scratch != nullptr ? *scratch : local;

  // Sort indices, then rebuild the arena in sorted, deduplicated order.
  std::vector<std::uint32_t>& order = s.order;
  order.resize(count_);
  for (std::uint32_t i = 0; i < count_; ++i) {
    order[i] = i;
  }
  const auto view = [this](std::uint32_t i) { return (*this)[i]; };
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return util::compare_words(view(a), view(b)) < 0;
  });

  const bool with_values = !values_.empty();
  std::vector<std::uint64_t>& sorted = s.sorted;
  sorted.clear();
  sorted.reserve(arena_.size());
  std::vector<double>& sorted_values = s.values;
  sorted_values.clear();
  if (with_values) {
    sorted_values.reserve(values_.size());
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto w = view(order[i]);
    if (kept > 0) {
      const util::ConstWordSpan prev{sorted.data() + (kept - 1) * words_per_,
                                     words_per_};
      if (util::equal_words(prev, w)) {
        if (with_values) {
          // The two halves of a subdivided root edge describe one unrooted
          // edge: lengths sum back together, supports keep the max.
          if (value_merge_ == ValueMerge::Sum) {
            sorted_values[kept - 1] += values_[order[i]];
          } else {
            sorted_values[kept - 1] =
                std::max(sorted_values[kept - 1], values_[order[i]]);
          }
        }
        continue;
      }
    }
    sorted.insert(sorted.end(), w.begin(), w.end());
    if (with_values) {
      sorted_values.push_back(values_[order[i]]);
    }
    ++kept;
  }
  // Swap rather than move: the displaced arena becomes next call's sort
  // buffer, so a reused scratch keeps both allocations warm.
  std::swap(arena_, sorted);
  std::swap(values_, sorted_values);
  if (!with_values) {
    values_.clear();
  }
  count_ = kept;
  finalized_ = true;
}

void BipartitionSet::clear(std::size_t n_bits) {
  n_bits_ = n_bits;
  words_per_ = util::words_for_bits(n_bits);
  count_ = 0;
  finalized_ = true;
  value_merge_ = ValueMerge::Sum;
  arena_.clear();
  values_.clear();
  // leaf_mask_ is left untouched; extraction overwrites it.
}

std::size_t BipartitionSet::intersection_size(const BipartitionSet& a,
                                              const BipartitionSet& b) {
  BFHRF_ASSERT(a.words_per_ == b.words_per_);
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t common = 0;
  while (i < a.size() && j < b.size()) {
    const int c = util::compare_words(a[i], b[j]);
    if (c == 0) {
      ++common;
      ++i;
      ++j;
    } else if (c < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return common;
}

std::size_t BipartitionSet::symmetric_difference_size(
    const BipartitionSet& a, const BipartitionSet& b) {
  const std::size_t common = intersection_size(a, b);
  return (a.size() - common) + (b.size() - common);
}

void canonicalize_bipartition(util::DynamicBitset& mask,
                              const util::DynamicBitset& leaf_mask) {
  const std::size_t lowest = leaf_mask.find_first();
  BFHRF_ASSERT(lowest < leaf_mask.size());
  if (mask.test(lowest)) {
    mask ^= leaf_mask;  // complement within the tree's own leaf universe
  }
}

BipartitionSet extract_bipartitions(const Tree& tree,
                                    const BipartitionOptions& opts) {
  BipartitionExtractor extractor;
  (void)extractor.extract(tree, opts);
  return extractor.take();
}

const BipartitionSet& BipartitionExtractor::extract(
    const Tree& tree, const BipartitionOptions& opts) {
  extract_into(tree, opts, set_);
  return set_;
}

void BipartitionExtractor::extract_into(const Tree& tree,
                                        const BipartitionOptions& opts,
                                        BipartitionSet& out) {
  if (tree.empty() || !tree.taxa()) {
    throw InvalidArgument("extract_bipartitions: empty tree or no taxa");
  }
  const std::size_t n_bits = tree.taxa()->size();
  const std::size_t words = util::words_for_bits(n_bits);
  const std::size_t n_tree = tree.num_leaves();

  out.clear(n_bits);
  if (opts.value == SplitValue::Support) {
    out.set_value_merge(BipartitionSet::ValueMerge::Max);
  }
  if (leaf_mask_.size() != n_bits) {
    leaf_mask_ = util::DynamicBitset(n_bits);
  }

  // Postorder accumulation: every node's mask is the OR of its children.
  tree.postorder_into(order_, stack_);
  masks_.assign(tree.num_nodes() * words, 0);
  const auto mask_of = [&](NodeId id) {
    return std::span<std::uint64_t>(
        masks_.data() + static_cast<std::size_t>(id) * words, words);
  };

  bool has_unary = false;
  for (const NodeId id : order_) {
    auto m = mask_of(id);
    if (tree.is_leaf(id)) {
      const auto taxon = static_cast<std::size_t>(tree.node(id).taxon);
      m[taxon >> 6] |= (std::uint64_t{1} << (taxon & 63));
    } else {
      std::size_t degree = 0;
      tree.for_each_child(id, [&](NodeId c) {
        ++degree;
        const auto cm = mask_of(c);
        for (std::size_t w = 0; w < words; ++w) {
          m[w] |= cm[w];
        }
      });
      has_unary |= (degree == 1);
    }
  }
  {
    const auto rm = mask_of(tree.root());
    std::copy(rm.begin(), rm.end(), leaf_mask_.mutable_words().begin());
  }
  const std::size_t lowest = leaf_mask_.find_first();
  BFHRF_ASSERT(lowest < n_bits);

  // Unsorted fast path: on a unary-free tree, the ONLY possible duplicate
  // split is the pair of half-edges under a degree-2 root (they describe
  // one unrooted edge and canonicalize identically), so skipping one of
  // them makes the arena duplicate-free without the finalize sort. Unary
  // chains would replicate their child's mask, so they fall back.
  const bool unsorted = !opts.sorted && opts.value == SplitValue::None &&
                        !has_unary;
  NodeId skip_root_dup = kNoNode;
  if (unsorted && tree.num_children(tree.root()) == 2) {
    skip_root_dup = tree.node(tree.node(tree.root()).first_child).next_sibling;
  }

  const std::size_t min_side = opts.include_trivial ? 1 : 2;
  for (const NodeId id : order_) {
    if (tree.is_root(id) || id == skip_root_dup) {
      continue;
    }
    const auto m = mask_of(id);
    const std::size_t ones = util::popcount_words(m);
    // A side of size < min_side, or its complement, is trivial/degenerate.
    if (ones < min_side || ones > n_tree - min_side) {
      continue;
    }
    // Canonical polarity: store the side NOT containing the lowest taxon.
    // The flip (complement within the leaf universe) is fused into the
    // arena copy as a branchless masked-xor store.
    const bool flip = ((m[lowest >> 6] >> (lowest & 63)) & 1) != 0;
    const util::ConstWordSpan side{m.data(), words};
    const util::ConstWordSpan lm{leaf_mask_.words().data(), words};
    switch (opts.value) {
      case SplitValue::None:
        out.append_canonical(side, lm, flip);
        break;
      case SplitValue::BranchLength:
        out.append_canonical(side, lm, flip, tree.node(id).length);
        break;
      case SplitValue::Support:
        out.append_canonical(side, lm, flip, tree.node(id).support);
        break;
    }
  }

  out.assign_leaf_mask(leaf_mask_);
  if (!unsorted) {
    // Sorts and removes the rooted-edge duplicate, if any.
    out.finalize(&finalize_scratch_);
  }
}

bool bipartitions_compatible(const util::DynamicBitset& a,
                             const util::DynamicBitset& b,
                             const util::DynamicBitset& leaf_mask) {
  if (a.size() != b.size() || a.size() != leaf_mask.size()) {
    throw InvalidArgument("bipartitions_compatible: size mismatch");
  }
  // Sides A/~A and B/~B (complements within leaf_mask) are compatible iff
  // at least one of the four pairwise intersections is empty. The fused
  // kernels test each case without materializing a combined bitset.
  const util::ConstWordSpan wa = a.words();
  const util::ConstWordSpan wb = b.words();
  if (!util::any_and(wa, wb) ||        // A ∩ B = ∅
      !util::any_andnot(wa, wb) ||     // A ⊆ B
      !util::any_andnot(wb, wa)) {     // B ⊆ A
    return true;
  }
  // Remaining case: A ∪ B == universe (their complements are disjoint).
  // A and B are subsets of the universe, so comparing popcounts suffices.
  return util::popcount_or(wa, wb) == leaf_mask.count();
}

}  // namespace bfhrf::phylo
