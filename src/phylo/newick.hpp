// Newick parsing and writing.
//
// Grammar supported (a superset of what the paper's datasets need):
//   tree       := subtree [label] [":" length] ";"
//   subtree    := "(" subtree ("," subtree)* ")" [label] [":" length]
//               | label [":" length]
//   label      := unquoted | "'" quoted-with-''-escapes "'"
//   comments   := "[" ... "]"   (ignored, nestable)
// Multifurcations, internal labels (ignored), missing branch lengths
// (the Insect dataset is unweighted), and arbitrary whitespace are handled.
//
// The parser is iterative (explicit stack), so pathological caterpillar
// trees cannot overflow the call stack.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "phylo/tree.hpp"

namespace bfhrf::phylo {

struct NewickParseOptions {
  /// Reject trees whose leaves are not exactly the full taxon set. The
  /// paper's core experiments assume fixed taxa (§II-A); variable-taxa
  /// workflows disable this and go through core/restrict.
  bool require_full_taxon_set = false;
};

/// Parse a single Newick string into a tree over `taxa` (new labels are
/// added unless the set is frozen). Throws ParseError on malformed input.
[[nodiscard]] Tree parse_newick(std::string_view text, const TaxonSetPtr& taxa,
                                const NewickParseOptions& opts = {});

struct NewickWriteOptions {
  bool write_lengths = true;   ///< emit ":len" where a length was present
  bool write_support = false;  ///< emit internal support values as labels
  int length_precision = 6;
};

/// Serialize a tree to Newick (with terminating ';').
[[nodiscard]] std::string write_newick(const Tree& tree,
                                       const NewickWriteOptions& opts = {});

/// Streaming reader: yields one tree per ';'-terminated record from a
/// stream. This is how the algorithms "dynamically load" collections —
/// only one tree is resident at a time.
class NewickReader {
 public:
  NewickReader(std::istream& in, TaxonSetPtr taxa,
               NewickParseOptions opts = {});

  /// Next tree, or std::nullopt at end of stream.
  [[nodiscard]] std::optional<Tree> next();

  /// Number of trees yielded so far.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  [[nodiscard]] const TaxonSetPtr& taxa() const noexcept { return taxa_; }

 private:
  std::istream& in_;
  TaxonSetPtr taxa_;
  NewickParseOptions opts_;
  std::string buffer_;
  std::size_t count_ = 0;
};

/// Read every tree from a Newick file (one or more trees, ';'-separated).
[[nodiscard]] std::vector<Tree> read_newick_file(const std::string& path,
                                                 const TaxonSetPtr& taxa,
                                                 const NewickParseOptions&
                                                     opts = {});

/// Write trees to a file, one per line.
void write_newick_file(const std::string& path, std::span<const Tree> trees,
                       const NewickWriteOptions& opts = {});

}  // namespace bfhrf::phylo
