// NEXUS tree-file reading.
//
// The paper's real datasets (Avian, Insect) circulate as NEXUS as often as
// raw Newick; Dendropy reads both, so this substrate does too. Supported
// subset (the parts tree collections actually use):
//
//   #NEXUS
//   BEGIN TAXA;    DIMENSIONS NTAX=n;  TAXLABELS l1 ... ln;  END;
//   BEGIN TREES;
//     TRANSLATE  1 label1, 2 label2, ...;
//     TREE name = [&U] (...newick...);
//   END;
//
// Keywords are case-insensitive; [comments] (including [&U]/[&R] rooting
// hints) are skipped; quoted labels use the Newick conventions; unknown
// blocks are skipped wholesale. Trees are returned over one shared
// TaxonSet with TRANSLATE numbers resolved to labels.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"

namespace bfhrf::phylo {

struct NexusData {
  TaxonSetPtr taxa;
  std::vector<Tree> trees;
  std::vector<std::string> tree_names;
};

/// Parse a NEXUS stream. If `taxa` is null a fresh TaxonSet is created;
/// otherwise labels resolve against (and extend, unless frozen) the given
/// set. Throws ParseError on malformed input.
[[nodiscard]] NexusData read_nexus(std::istream& in,
                                   TaxonSetPtr taxa = nullptr);

/// Parse a NEXUS file.
[[nodiscard]] NexusData read_nexus_file(const std::string& path,
                                        TaxonSetPtr taxa = nullptr);

/// Serialize a tree collection as a NEXUS TREES block (with TRANSLATE).
void write_nexus_file(const std::string& path, std::span<const Tree> trees,
                      const TaxonSetPtr& taxa);

}  // namespace bfhrf::phylo
