#include "phylo/taxon_set.hpp"

#include "util/error.hpp"

namespace bfhrf::phylo {

TaxonSet::TaxonSet(const std::vector<std::string>& labels) {
  labels_.reserve(labels.size());
  for (const auto& label : labels) {
    if (index_.contains(label)) {
      throw InvalidArgument("duplicate taxon label '" + label + "'");
    }
    index_.emplace(label, static_cast<TaxonId>(labels_.size()));
    labels_.push_back(label);
  }
}

TaxonId TaxonSet::add_or_get(std::string_view label) {
  if (const auto it = index_.find(std::string(label)); it != index_.end()) {
    return it->second;
  }
  if (frozen_) {
    throw InvalidArgument("unknown taxon '" + std::string(label) +
                          "' in a frozen taxon set");
  }
  const auto id = static_cast<TaxonId>(labels_.size());
  labels_.emplace_back(label);
  index_.emplace(labels_.back(), id);
  return id;
}

std::optional<TaxonId> TaxonSet::find(std::string_view label) const {
  const auto it = index_.find(std::string(label));
  if (it == index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

TaxonId TaxonSet::index_of(std::string_view label) const {
  if (const auto id = find(label)) {
    return *id;
  }
  throw InvalidArgument("unknown taxon '" + std::string(label) + "'");
}

const std::string& TaxonSet::label_of(TaxonId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= labels_.size()) {
    throw InvalidArgument("taxon id " + std::to_string(id) + " out of range");
  }
  return labels_[static_cast<std::size_t>(id)];
}

std::shared_ptr<TaxonSet> TaxonSet::make_numbered(std::size_t n,
                                                  std::string_view prefix) {
  auto ts = std::make_shared<TaxonSet>();
  for (std::size_t i = 0; i < n; ++i) {
    ts->add_or_get(std::string(prefix) + std::to_string(i));
  }
  return ts;
}

}  // namespace bfhrf::phylo
