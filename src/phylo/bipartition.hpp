// Bipartition extraction and canonical encoding (paper §II-B).
//
// A bipartition of a tree T is the two-way split of T's taxa induced by
// removing one edge. We encode it as a bitmask over the TaxonSet's index
// space, canonicalized to be complement-invariant: the side NOT containing
// the lowest-indexed taxon present in the tree is stored (i.e. the bit of
// that taxon is always 0). This is the Dendropy scheme up to polarity.
//
// Trivial bipartitions (a single leaf vs the rest) are excluded by default,
// so a binary tree on n taxa yields n-3 bipartitions (2n-3 with trivial
// ones included), matching the counts in the paper §IV-A.
//
// BipartitionSet stores a tree's bipartitions in one contiguous arena,
// sorted and deduplicated, enabling O(k·w) merge-based set operations —
// this is the "B(T)" object that every RF engine consumes.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "phylo/tree.hpp"
#include "util/bitset.hpp"

namespace bfhrf::phylo {

/// Which per-edge quantity to attach to each split as its value.
enum class SplitValue {
  None,          ///< presence-only splits (classic RF)
  BranchLength,  ///< the inducing edge's length (branch-score distance)
  Support,       ///< the inducing node's support value (bootstrap etc.)
};

struct BipartitionOptions {
  /// Include the n trivial leaf splits. The paper (and HashRF) exclude them;
  /// they cancel in RF whenever both trees share the same taxa.
  bool include_trivial = false;

  /// Attach a per-split value (BipartitionSet::value). The two half-edges
  /// of a rooted-degree-2 representation merge by summing for lengths and
  /// by max for supports (they describe the same unrooted edge). Used by
  /// the generalized engines (core/branch_score.hpp).
  SplitValue value = SplitValue::None;

  /// Keep the arena sorted + deduplicated (the BipartitionSet contract its
  /// merge-based set operations need). `false` skips the O(k log k)
  /// finalize sort and leaves the arena in traversal order, removing the
  /// one possible duplicate (the two half-edges of a degree-2 root)
  /// structurally instead. Only honoured for value == None on unary-free
  /// trees — anything else falls back to the sorted path. Unsorted sets
  /// must not be used with contains()/intersection/symmetric-difference;
  /// the BFHRF hash paths use this (insertion and lookup need no order).
  bool sorted = true;
};

/// A tree's bipartitions: sorted, deduplicated, arena-backed bitmasks of a
/// fixed width (the TaxonSet size at extraction time).
class BipartitionSet {
 public:
  BipartitionSet() = default;

  /// `n_bits` is the universe width (TaxonSet size).
  explicit BipartitionSet(std::size_t n_bits)
      : n_bits_(n_bits), words_per_(util::words_for_bits(n_bits)) {}

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t n_bits() const noexcept { return n_bits_; }
  [[nodiscard]] std::size_t words_per_bipartition() const noexcept {
    return words_per_;
  }

  /// Word view of the i-th bipartition (sorted order).
  [[nodiscard]] util::ConstWordSpan operator[](std::size_t i) const noexcept {
    return {arena_.data() + i * words_per_, words_per_};
  }

  /// The whole sorted arena as one contiguous word span (size() keys of
  /// words_per_bipartition() words each) — the zero-copy input to batched
  /// lookups (core::FrequencyHash::frequency_many).
  [[nodiscard]] util::ConstWordSpan arena_view() const noexcept {
    return {arena_.data(), count_ * words_per_};
  }

  /// Copy the i-th bipartition into an owning bitset.
  [[nodiscard]] util::DynamicBitset bitset(std::size_t i) const {
    return util::DynamicBitset(n_bits_, (*this)[i]);
  }

  /// Membership test by binary search. `words` must have the same width.
  [[nodiscard]] bool contains(util::ConstWordSpan words) const noexcept;

  /// Append a bipartition (unsorted); call `finalize()` once after appends.
  void append(util::ConstWordSpan words);

  /// Append a bipartition with an attached value (e.g. branch length).
  /// A set must be built either entirely with values or entirely without.
  void append(util::ConstWordSpan words, double value);

  /// Append `side`, complemented within `leaf_mask` iff `flip` — the
  /// canonical-polarity store fused into the arena copy (one branchless
  /// pass via util::store_canonical, no scratch bitset). This is the
  /// extraction hot path's append.
  void append_canonical(util::ConstWordSpan side, util::ConstWordSpan
                            leaf_mask, bool flip);
  void append_canonical(util::ConstWordSpan side,
                        util::ConstWordSpan leaf_mask, bool flip,
                        double value);

  /// How duplicate splits' values combine in finalize(): lengths of the
  /// two halves of a subdivided root edge sum; supports take the max (they
  /// annotate the same unrooted edge).
  enum class ValueMerge { Sum, Max };
  void set_value_merge(ValueMerge m) noexcept { value_merge_ = m; }

  /// Reusable sort/dedup buffers for finalize(). Buffers ping-pong with the
  /// set's arena across calls, so repeated finalize()s allocate nothing
  /// once warm.
  struct FinalizeScratch {
    std::vector<std::uint32_t> order;
    std::vector<std::uint64_t> sorted;
    std::vector<double> values;
  };

  /// Sort + deduplicate the arena (duplicate values combine per
  /// ValueMerge). Idempotent. Pass a FinalizeScratch to reuse the sort
  /// buffers across trees (per-worker scratch in the streaming engines).
  void finalize(FinalizeScratch* scratch = nullptr);

  /// Reset to an empty set over a (possibly new) universe width, keeping
  /// the arena capacity for reuse.
  void clear(std::size_t n_bits);

  /// Copy-assign the leaf mask, reusing this set's existing buffer (unlike
  /// set_leaf_mask, which takes ownership of a freshly built mask).
  void assign_leaf_mask(const util::DynamicBitset& mask) { leaf_mask_ = mask; }

  /// True if this set carries per-bipartition values.
  [[nodiscard]] bool has_values() const noexcept { return !values_.empty(); }

  /// Value attached to the i-th bipartition (0.0 for value-less sets).
  [[nodiscard]] double value(std::size_t i) const noexcept {
    return values_.empty() ? 0.0 : values_[i];
  }

  /// Union of all leaves present in the source tree (width n_bits).
  [[nodiscard]] const util::DynamicBitset& leaf_mask() const noexcept {
    return leaf_mask_;
  }
  void set_leaf_mask(util::DynamicBitset mask) {
    leaf_mask_ = std::move(mask);
  }

  /// |A \ B| + |B \ A| over the sorted arenas — the RF numerator.
  [[nodiscard]] static std::size_t symmetric_difference_size(
      const BipartitionSet& a, const BipartitionSet& b);

  /// |A ∩ B| over the sorted arenas.
  [[nodiscard]] static std::size_t intersection_size(const BipartitionSet& a,
                                                     const BipartitionSet& b);

  /// Invoke `fn(ConstWordSpan)` per bipartition in sorted order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < count_; ++i) {
      fn((*this)[i]);
    }
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return arena_.capacity() * sizeof(std::uint64_t) +
           values_.capacity() * sizeof(double) + leaf_mask_.memory_bytes();
  }

 private:
  std::size_t n_bits_ = 0;
  std::size_t words_per_ = 0;
  std::size_t count_ = 0;
  bool finalized_ = true;  // empty set is trivially sorted
  ValueMerge value_merge_ = ValueMerge::Sum;
  std::vector<std::uint64_t> arena_;
  std::vector<double> values_;  // empty, or one value per bipartition
  util::DynamicBitset leaf_mask_;
};

/// Extract the canonical bipartition set of `tree`.
/// Cost: O(n^2 / 64) — O(n) edges, each masked over O(n/64) words.
[[nodiscard]] BipartitionSet extract_bipartitions(
    const Tree& tree, const BipartitionOptions& opts = {});

/// Reusable extraction engine. extract_bipartitions() allocates traversal
/// buffers, node masks, sort scratch, and a fresh arena for EVERY tree; a
/// BipartitionExtractor owns all of those and reuses them, so per-tree
/// extraction is allocation-free once warm. This is the hot-loop API the
/// streaming engines thread through their per-worker scratch
/// (core/bfhrf, core/sequential_rf, core/branch_score).
///
/// Not thread-safe: one extractor per worker.
class BipartitionExtractor {
 public:
  /// Extract into the internal set and return a reference to it. The
  /// reference is invalidated by the next extract()/extract_into()/take().
  const BipartitionSet& extract(const Tree& tree,
                                const BipartitionOptions& opts = {});

  /// Extract into `out` (cleared first), reusing `out`'s own capacity as
  /// well as the extractor's scratch.
  void extract_into(const Tree& tree, const BipartitionOptions& opts,
                    BipartitionSet& out);

  /// Move the last extract() result out of the extractor. The internal
  /// arena restarts cold afterwards; use extract_into for bulk storage.
  [[nodiscard]] BipartitionSet take() { return std::move(set_); }

 private:
  BipartitionSet set_;
  std::vector<NodeId> order_;              ///< postorder nodes
  std::vector<NodeId> stack_;              ///< traversal scratch
  std::vector<std::uint64_t> masks_;       ///< per-node leaf masks
  util::DynamicBitset leaf_mask_;          ///< tree's leaf universe
  BipartitionSet::FinalizeScratch finalize_scratch_;
};

/// Canonicalize one raw side-mask in place: flip to the side avoiding the
/// lowest taxon of `leaf_mask`. Exposed for the variants framework.
void canonicalize_bipartition(util::DynamicBitset& mask,
                              const util::DynamicBitset& leaf_mask);

/// True if two canonical bipartitions over the same leaf universe are
/// compatible (can coexist in one tree): one side-pair is nested or disjoint.
[[nodiscard]] bool bipartitions_compatible(const util::DynamicBitset& a,
                                           const util::DynamicBitset& b,
                                           const util::DynamicBitset&
                                               leaf_mask);

}  // namespace bfhrf::phylo
