#include "sim/moves.hpp"

#include <vector>

#include "core/restrict.hpp"
#include "util/error.hpp"

namespace bfhrf::sim {
namespace {

using phylo::kNoNode;
using phylo::NodeId;
using phylo::Tree;

/// Clone `t`, exchanging the subtrees rooted at `a` and `b` (which must not
/// be ancestor-related). Branch lengths travel with their subtree.
Tree clone_with_swap(const Tree& t, NodeId a, NodeId b) {
  Tree out(t.taxa());
  out.reserve(t.num_nodes());

  struct Item {
    NodeId old_id;
    NodeId new_parent;
  };
  const auto redirect = [&](NodeId id) {
    if (id == a) {
      return b;
    }
    if (id == b) {
      return a;
    }
    return id;
  };

  const NodeId new_root = out.add_root();
  std::vector<Item> stack;
  t.for_each_child(t.root(),
                   [&](NodeId c) { stack.push_back({redirect(c), new_root}); });
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    NodeId nid;
    if (t.is_leaf(item.old_id)) {
      nid = out.add_leaf(item.new_parent, t.node(item.old_id).taxon);
    } else {
      nid = out.add_child(item.new_parent);
    }
    if (t.node(item.old_id).has_length) {
      out.set_length(nid, t.node(item.old_id).length);
    }
    t.for_each_child(item.old_id, [&](NodeId c) {
      stack.push_back({redirect(c), nid});
    });
  }
  return out;
}

}  // namespace

bool random_nni(phylo::Tree& tree, util::Rng& rng) {
  if (tree.num_nodes() == 0) {
    throw InvalidArgument("random_nni: empty tree");
  }
  // Candidate lower ends v of internal edges: internal, non-root, parent
  // with at least one other child.
  std::vector<NodeId> candidates;
  for (NodeId id = 0; id < static_cast<NodeId>(tree.num_nodes()); ++id) {
    if (!tree.is_root(id) && !tree.is_leaf(id) &&
        tree.num_children(tree.node(id).parent) >= 2) {
      candidates.push_back(id);
    }
  }
  if (candidates.empty()) {
    return false;  // star or n <= 3: no internal edge to interchange across
  }
  const NodeId v = candidates[rng.below(candidates.size())];
  const NodeId u = tree.node(v).parent;

  const auto v_kids = tree.children(v);
  std::vector<NodeId> siblings;
  tree.for_each_child(u, [&](NodeId c) {
    if (c != v) {
      siblings.push_back(c);
    }
  });
  BFHRF_ASSERT(!v_kids.empty() && !siblings.empty());
  const NodeId a = v_kids[rng.below(v_kids.size())];
  const NodeId b = siblings[rng.below(siblings.size())];
  tree = clone_with_swap(tree, a, b);
  return true;
}

bool random_spr_leaf(phylo::Tree& tree, util::Rng& rng) {
  if (tree.num_nodes() == 0) {
    throw InvalidArgument("random_spr_leaf: empty tree");
  }
  if (!tree.taxa()) {
    throw InvalidArgument("random_spr_leaf: tree has no taxon set");
  }
  if (tree.num_leaves() < 4) {
    return false;  // every regraft rebuilds the same unrooted topology
  }
  // Prune a random leaf...
  const auto leaves = tree.leaves();
  const NodeId victim = leaves[rng.below(leaves.size())];
  const phylo::TaxonId taxon = tree.node(victim).taxon;

  util::DynamicBitset keep(tree.taxa()->size());
  for (const NodeId leaf : leaves) {
    if (leaf != victim) {
      keep.set(static_cast<std::size_t>(tree.node(leaf).taxon));
    }
  }
  Tree pruned = core::restrict_to_taxa(tree, keep);

  // ...and regraft it onto a uniformly chosen edge (non-root node).
  NodeId target;
  do {
    target = static_cast<NodeId>(rng.below(pruned.num_nodes()));
  } while (pruned.is_root(target));
  pruned.split_edge_insert_leaf(target, taxon);
  tree = std::move(pruned);
  return true;
}

std::size_t perturb(phylo::Tree& tree, util::Rng& rng, std::size_t count,
                    double spr_p) {
  if (!(spr_p >= 0.0 && spr_p <= 1.0)) {
    throw InvalidArgument("perturb: spr_p must be in [0, 1]");
  }
  std::size_t applied = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const bool moved = rng.bernoulli(spr_p) ? random_spr_leaf(tree, rng)
                                            : random_nni(tree, rng);
    applied += moved ? std::size_t{1} : std::size_t{0};
  }
  return applied;
}

}  // namespace bfhrf::sim
