#include "sim/datasets.hpp"

#include "phylo/newick.hpp"
#include "phylo/vector_codec.hpp"
#include "sim/generators.hpp"
#include "sim/moves.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bfhrf::sim {

DatasetSpec avian_like(std::size_t r) {
  return DatasetSpec{.name = "avian-like",
                     .n_taxa = 48,
                     .n_trees = r,
                     .moves_per_tree = 4,
                     .branch_lengths = true,
                     .seed = 0xA71A};
}

DatasetSpec insect_like(std::size_t r) {
  return DatasetSpec{.name = "insect-like",
                     .n_taxa = 144,
                     .n_trees = r,
                     .moves_per_tree = 10,
                     .branch_lengths = false,  // unweighted, as in the paper
                     .seed = 0x1A5EC7};
}

DatasetSpec variable_trees(std::size_t r) {
  return DatasetSpec{.name = "variable-trees",
                     .n_taxa = 100,
                     .n_trees = r,
                     .moves_per_tree = 6,
                     .branch_lengths = true,
                     .seed = 0x7AEE5};
}

DatasetSpec variable_species(std::size_t n) {
  return DatasetSpec{.name = "variable-species",
                     .n_taxa = n,
                     .n_trees = 1000,
                     .moves_per_tree = 6,
                     .branch_lengths = true,
                     .seed = 0x5BEC1E5};
}

Dataset generate(const DatasetSpec& spec) {
  if (spec.n_taxa < 4 || spec.n_trees == 0) {
    throw InvalidArgument("generate: need >= 4 taxa and >= 1 tree");
  }
  Dataset ds;
  ds.spec = spec;
  ds.taxa = phylo::TaxonSet::make_numbered(spec.n_taxa);

  util::Rng rng(spec.seed);
  const GeneratorOptions gen_opts{.branch_lengths = spec.branch_lengths};
  const phylo::Tree base = yule_tree(ds.taxa, rng, gen_opts);

  ds.trees.reserve(spec.n_trees);
  for (std::size_t i = 0; i < spec.n_trees; ++i) {
    phylo::Tree t = base;
    perturb(t, rng, spec.moves_per_tree);
    ds.trees.push_back(std::move(t));
  }
  return ds;
}

phylo::TaxonSetPtr generate_to_file(const DatasetSpec& spec,
                                    const std::string& path) {
  const Dataset ds = generate(spec);
  if (path.size() > 4 && path.compare(path.size() - 4, 4, ".p2v") == 0) {
    // Binary phylo2vec corpus (topology-only; labels in the header).
    phylo::write_p2v_file(path, ds.trees);
    return ds.taxa;
  }
  const phylo::NewickWriteOptions opts{.write_lengths = spec.branch_lengths};
  phylo::write_newick_file(path, ds.trees, opts);
  return ds.taxa;
}

}  // namespace bfhrf::sim
