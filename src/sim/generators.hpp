// Random tree generators — the SimPhy / ASTRAL-II S100 stand-in (paper
// Table II, "Sim" rows; see DESIGN.md substitution table).
//
// Two classic topology distributions:
//  * Yule (pure-birth): repeatedly split a uniformly chosen extant lineage.
//    Biased toward balanced trees, like species trees.
//  * PDA / uniform: attach each new leaf to a uniformly chosen edge; every
//    labeled topology equally likely.
// Both emit canonical unrooted binary trees (root degree 3 for n >= 3) and
// optionally exponential branch lengths (the Insect-like datasets omit
// lengths, reproducing the "unweighted" property that broke HashRF).
#pragma once

#include "phylo/tree.hpp"
#include "util/rng.hpp"

namespace bfhrf::sim {

struct GeneratorOptions {
  /// Attach i.i.d. Exponential(rate) branch lengths to every edge.
  bool branch_lengths = false;
  double length_rate = 10.0;
};

/// Yule (pure-birth) topology over the full taxon set.
[[nodiscard]] phylo::Tree yule_tree(const phylo::TaxonSetPtr& taxa,
                                    util::Rng& rng,
                                    const GeneratorOptions& opts = {});

/// Uniform (PDA) topology over the full taxon set.
[[nodiscard]] phylo::Tree uniform_tree(const phylo::TaxonSetPtr& taxa,
                                       util::Rng& rng,
                                       const GeneratorOptions& opts = {});

/// Random caterpillar (pectinate) tree — the worst case for traversal depth
/// and the most "concentrated" bipartition distribution; used in tests.
[[nodiscard]] phylo::Tree caterpillar_tree(const phylo::TaxonSetPtr& taxa,
                                           util::Rng& rng,
                                           const GeneratorOptions& opts = {});

/// Random multifurcating tree: start from a Yule tree and contract each
/// internal edge independently with probability `contract_p`.
[[nodiscard]] phylo::Tree multifurcating_tree(const phylo::TaxonSetPtr& taxa,
                                              util::Rng& rng,
                                              double contract_p,
                                              const GeneratorOptions& opts =
                                                  {});

}  // namespace bfhrf::sim
