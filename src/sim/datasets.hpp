// Dataset presets mirroring the paper's Table II.
//
//   Name              Taxa n   Trees r    Type   Paper source
//   Avian             48       14446      Real   Jarvis et al. 2014
//   Insect            144      149278     Real   Sayyari et al. 2017
//   Variable Trees    100      1e3..1e5   Sim    ASTRAL-II S100 / SimPhy
//   Variable Species  100..1k  1000       Sim    ASTRAL-II S100 / SimPhy
//
// The real datasets are substituted with perturbed-Yule collections of the
// same n / r / weighting (see DESIGN.md); the simulated ones are generated
// the same way the paper generated theirs, with the move count standing in
// for the SimPhy discordance parameters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"

namespace bfhrf::sim {

struct DatasetSpec {
  std::string name;
  std::size_t n_taxa = 0;
  std::size_t n_trees = 0;
  /// Random NNI/SPR moves applied per tree (gene-tree discordance level).
  std::size_t moves_per_tree = 0;
  /// Emit branch lengths? (The Insect data is unweighted — lengths absent —
  /// which is what HashRF choked on; we preserve that property.)
  bool branch_lengths = true;
  std::uint64_t seed = 0x5eed;
};

/// Avian-like: n=48, weighted, moderate discordance.
[[nodiscard]] DatasetSpec avian_like(std::size_t r = 14446);

/// Insect-like: n=144, UNWEIGHTED, higher discordance.
[[nodiscard]] DatasetSpec insect_like(std::size_t r = 149278);

/// Variable-trees family: n=100, r swept (Table V / Fig 2).
[[nodiscard]] DatasetSpec variable_trees(std::size_t r);

/// Variable-species family: n swept, r=1000 (Table IV).
[[nodiscard]] DatasetSpec variable_species(std::size_t n);

struct Dataset {
  DatasetSpec spec;
  phylo::TaxonSetPtr taxa;
  std::vector<phylo::Tree> trees;
};

/// Generate the collection for a spec. Deterministic in spec.seed.
[[nodiscard]] Dataset generate(const DatasetSpec& spec);

/// Generate and write to a file — Newick (one tree per line) by default,
/// a binary .p2v phylo2vec corpus when the path ends in ".p2v"; returns
/// the taxon set. Used by the streaming-input benchmarks and CLI examples.
phylo::TaxonSetPtr generate_to_file(const DatasetSpec& spec,
                                    const std::string& path);

}  // namespace bfhrf::sim
