#include "sim/generators.hpp"

#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace bfhrf::sim {
namespace {

using phylo::NodeId;
using phylo::TaxonId;
using phylo::Tree;

std::vector<TaxonId> shuffled_taxa(const phylo::TaxonSetPtr& taxa,
                                   util::Rng& rng) {
  std::vector<TaxonId> order(taxa->size());
  std::iota(order.begin(), order.end(), TaxonId{0});
  rng.shuffle(order);
  return order;
}

void attach_lengths(Tree& tree, util::Rng& rng,
                    const GeneratorOptions& opts) {
  if (!opts.branch_lengths) {
    return;
  }
  for (NodeId id = 0; id < static_cast<NodeId>(tree.num_nodes()); ++id) {
    if (!tree.is_root(id)) {
      tree.set_length(id, rng.exponential(opts.length_rate));
    }
  }
}

Tree tiny_tree(const phylo::TaxonSetPtr& taxa, util::Rng& rng,
               const GeneratorOptions& opts) {
  const auto order = shuffled_taxa(taxa, rng);
  Tree t(taxa);
  if (order.size() == 1) {
    t.add_root();
    t.set_taxon(t.root(), order[0]);
  } else {
    t.add_root();
    for (std::size_t i = 0; i < std::min<std::size_t>(order.size(), 3); ++i) {
      t.add_leaf(t.root(), order[i]);
    }
  }
  attach_lengths(t, rng, opts);
  return t;
}

}  // namespace

Tree yule_tree(const phylo::TaxonSetPtr& taxa, util::Rng& rng,
               const GeneratorOptions& opts) {
  if (!taxa || taxa->empty()) {
    throw InvalidArgument("yule_tree: empty taxon set");
  }
  const std::size_t n = taxa->size();
  if (n <= 3) {
    return tiny_tree(taxa, rng, opts);
  }

  // Split a uniformly chosen extant lineage until n lineages exist.
  Tree t(taxa);
  t.reserve(2 * n);
  const NodeId root = t.add_root();
  std::vector<NodeId> extant;
  extant.push_back(t.add_child(root));
  extant.push_back(t.add_child(root));
  extant.push_back(t.add_child(root));  // degree-3 root: canonical unrooted
  while (extant.size() < n) {
    const std::size_t pick = rng.below(extant.size());
    const NodeId parent = extant[pick];
    const NodeId a = t.add_child(parent);
    const NodeId b = t.add_child(parent);
    extant[pick] = a;
    extant.push_back(b);
  }
  const auto order = shuffled_taxa(taxa, rng);
  for (std::size_t i = 0; i < extant.size(); ++i) {
    t.set_taxon(extant[i], order[i]);
  }
  attach_lengths(t, rng, opts);
  return t;
}

Tree uniform_tree(const phylo::TaxonSetPtr& taxa, util::Rng& rng,
                  const GeneratorOptions& opts) {
  if (!taxa || taxa->empty()) {
    throw InvalidArgument("uniform_tree: empty taxon set");
  }
  const std::size_t n = taxa->size();
  if (n <= 3) {
    return tiny_tree(taxa, rng, opts);
  }
  const auto order = shuffled_taxa(taxa, rng);

  Tree t(taxa);
  t.reserve(2 * n);
  const NodeId root = t.add_root();
  t.add_leaf(root, order[0]);
  t.add_leaf(root, order[1]);
  t.add_leaf(root, order[2]);
  for (std::size_t i = 3; i < n; ++i) {
    // Uniform over edges == uniform over non-root nodes.
    NodeId target;
    do {
      target = static_cast<NodeId>(rng.below(t.num_nodes()));
    } while (t.is_root(target));
    t.split_edge_insert_leaf(target, order[i]);
  }
  attach_lengths(t, rng, opts);
  return t;
}

Tree caterpillar_tree(const phylo::TaxonSetPtr& taxa, util::Rng& rng,
                      const GeneratorOptions& opts) {
  if (!taxa || taxa->empty()) {
    throw InvalidArgument("caterpillar_tree: empty taxon set");
  }
  const std::size_t n = taxa->size();
  if (n <= 3) {
    return tiny_tree(taxa, rng, opts);
  }
  const auto order = shuffled_taxa(taxa, rng);

  // Root holds two leaves and the start of the comb.
  Tree t(taxa);
  t.reserve(2 * n);
  const NodeId root = t.add_root();
  t.add_leaf(root, order[0]);
  t.add_leaf(root, order[1]);
  NodeId spine = root;
  for (std::size_t i = 2; i + 1 < n; ++i) {
    spine = t.add_child(spine);
    t.add_leaf(spine, order[i]);
  }
  t.add_leaf(spine, order[n - 1]);
  attach_lengths(t, rng, opts);
  return t;
}

Tree multifurcating_tree(const phylo::TaxonSetPtr& taxa, util::Rng& rng,
                         double contract_p, const GeneratorOptions& opts) {
  Tree t = yule_tree(taxa, rng, opts);
  if (contract_p <= 0.0) {
    return t;
  }
  // Contract each internal non-root edge independently: splice the child's
  // children into its parent. Done by rebuilding through a "skip" set.
  std::vector<std::uint8_t> contracted(t.num_nodes(), 0);
  for (NodeId id = 0; id < static_cast<NodeId>(t.num_nodes()); ++id) {
    if (!t.is_root(id) && !t.is_leaf(id) && rng.bernoulli(contract_p)) {
      contracted[static_cast<std::size_t>(id)] = 1;
    }
  }

  Tree out(taxa);
  out.reserve(t.num_nodes());
  struct Item {
    NodeId old_id;
    NodeId new_parent;
  };
  const NodeId new_root = out.add_root();
  std::vector<Item> stack;
  // Collect effective children of a node: descend through contracted kids.
  const auto push_children = [&](NodeId old_id, NodeId new_parent,
                                 auto&& self) -> void {
    t.for_each_child(old_id, [&](NodeId c) {
      if (contracted[static_cast<std::size_t>(c)] != 0) {
        self(c, new_parent, self);
      } else {
        stack.push_back({c, new_parent});
      }
    });
  };
  push_children(t.root(), new_root, push_children);
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    if (t.is_leaf(item.old_id)) {
      const NodeId leaf =
          out.add_leaf(item.new_parent, t.node(item.old_id).taxon);
      if (t.node(item.old_id).has_length) {
        out.set_length(leaf, t.node(item.old_id).length);
      }
    } else {
      const NodeId nid = out.add_child(item.new_parent);
      if (t.node(item.old_id).has_length) {
        out.set_length(nid, t.node(item.old_id).length);
      }
      push_children(item.old_id, nid, push_children);
    }
  }
  return out;
}

}  // namespace bfhrf::sim
