// Topology perturbation moves.
//
// Collections of gene trees cluster around their species tree (the paper's
// "centralized distribution", §VI-C); we reproduce that by applying a small
// random number of NNI / leaf-SPR moves to a shared base tree. The move
// count is the discordance knob (the ILS-level analogue of the SimPhy
// parameters the paper's S100 datasets vary).
#pragma once

#include "phylo/tree.hpp"
#include "util/rng.hpp"

namespace bfhrf::sim {

/// One random nearest-neighbor interchange: swap a child subtree of a
/// random internal edge's lower end with one of its sibling subtrees.
/// No-op on trees too small to have an internal edge.
void random_nni(phylo::Tree& tree, util::Rng& rng);

/// One random leaf SPR: prune a random leaf and regraft it onto a random
/// edge. No-op on trees with fewer than 4 leaves.
void random_spr_leaf(phylo::Tree& tree, util::Rng& rng);

/// Apply `count` moves, mixing NNI and leaf-SPR with probability spr_p.
void perturb(phylo::Tree& tree, util::Rng& rng, std::size_t count,
             double spr_p = 0.5);

}  // namespace bfhrf::sim
