// Topology perturbation moves.
//
// Collections of gene trees cluster around their species tree (the paper's
// "centralized distribution", §VI-C); we reproduce that by applying a small
// random number of NNI / leaf-SPR moves to a shared base tree. The move
// count is the discordance knob (the ILS-level analogue of the SimPhy
// parameters the paper's S100 datasets vary).
#pragma once

#include "phylo/tree.hpp"
#include "util/rng.hpp"

namespace bfhrf::sim {

/// One random nearest-neighbor interchange: swap a child subtree of a
/// random internal edge's lower end with one of its sibling subtrees.
/// Multifurcating trees are supported (the swap is across any internal
/// edge; polytomies are preserved). Returns false — leaving the tree
/// untouched — on trees with no internal edge (stars, n <= 3). Throws
/// InvalidArgument on an empty tree.
bool random_nni(phylo::Tree& tree, util::Rng& rng);

/// One random leaf SPR: prune a random leaf and regraft it onto a random
/// edge. Multifurcating trees are supported (pruning may contract a
/// degree-2 node; regrafting always inserts a binary junction). Returns
/// false — leaving the tree untouched — on trees with fewer than 4 leaves,
/// where every regraft position recreates the same unrooted topology.
/// Throws InvalidArgument on an empty tree or one without a taxon set.
bool random_spr_leaf(phylo::Tree& tree, util::Rng& rng);

/// Apply `count` moves, mixing NNI and leaf-SPR with probability spr_p.
/// Returns how many moves actually changed the tree (moves on too-small
/// trees are no-ops, see above). Throws InvalidArgument if spr_p is not
/// in [0, 1] or the tree is empty.
std::size_t perturb(phylo::Tree& tree, util::Rng& rng, std::size_t count,
                    double spr_p = 0.5);

}  // namespace bfhrf::sim
