// Small string helpers shared by the Newick parser and the CLI tools.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bfhrf::util {

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Split on a delimiter character; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s,
                               std::string_view prefix) noexcept;

/// Parse a non-negative integer; throws bfhrf::ParseError on failure.
[[nodiscard]] std::size_t parse_size(std::string_view s);

/// Parse a double; throws bfhrf::ParseError on failure.
[[nodiscard]] double parse_double(std::string_view s);

/// Render a double with fixed precision (bench tables, CLI output).
[[nodiscard]] std::string format_fixed(double v, int precision);

}  // namespace bfhrf::util
