// SIMD capability layer: compile-time feature gating plus runtime dispatch
// for the vectorized kernels (group-probed hash control bytes, bitset math).
//
// Three layers of control, strongest first:
//  1. BFHRF_DISABLE_SIMD (compile definition, CMake option of the same
//     name): vector intrinsics are not even compiled; everything runs the
//     portable SWAR path. This is the "avx2-off"/portability CI build.
//  2. set_force_level() (process-wide): tests and benches pin a level to
//     compare paths inside one binary. Levels above compiled_level() clamp.
//  3. BFHRF_DISABLE_SIMD=1 in the environment: runtime kill switch for a
//     vector-capable binary, read once on first use.
// Absent all three, active_level() is the widest level both the binary and
// the CPU support (AVX2 is probed with __builtin_cpu_supports, since the
// baseline build targets plain x86-64 and AVX2 kernels carry per-function
// target attributes).
//
// The 16-byte control-group view (Group16*) implements Swiss-table probing:
// `match(tag)` returns a bitmask of bytes equal to a 7-bit tag,
// `match_empty()` a bitmask of empty (0x80) bytes, and `match_available()`
// a bitmask of empty-or-deleted (0x80 or 0xfe) bytes — the slots an
// insertion may claim once tombstones exist (util/group_table.hpp).
//
// SWAR exactness contract (relied on by util/group_table.hpp):
//  * match_empty() is EXACT. Empty is 0x80 (high bit set, bit 6 clear),
//    deleted is 0xfe (high bit set, bit 6 set), full bytes are 0x00..0x7f
//    (high bit clear) — so `ctrl & (~ctrl << 1) & 0x80` isolates exactly
//    the empty bytes with pure bitwise ops; the shift only moves bit 6 to
//    bit 7 within each byte (cross-byte leakage lands in bits 0..6, which
//    the high-bit mask discards).
//  * match_available() is EXACT — a pure high-bit extract: both sentinel
//    bytes (and only they) have the high bit set.
//  * match(tag) may report false positives, but ONLY on full bytes: for an
//    empty or deleted byte, x = ctrl ^ tag has its high bit set (ctrl >=
//    0x80, tag <= 0x7f), so `& ~x` clears its lane no matter what the
//    subtraction's borrow did. A false positive therefore only sends the
//    probe loop to a full slot whose key comparison rejects it — table
//    contents and insertion positions stay byte-identical to the exact
//    vector paths.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string_view>

#if defined(__x86_64__) || defined(_M_X64)
#define BFHRF_SIMD_X86 1
#endif
#if defined(__aarch64__) || defined(_M_ARM64)
#define BFHRF_SIMD_ARM 1
#endif

#if !defined(BFHRF_DISABLE_SIMD)
#if defined(BFHRF_SIMD_X86)
#include <emmintrin.h>
#elif defined(BFHRF_SIMD_ARM)
#include <arm_neon.h>
#endif
#endif

namespace bfhrf::util::simd {

enum class Level : std::uint8_t { Swar = 0, Sse2 = 1, Neon = 2, Avx2 = 3 };

[[nodiscard]] std::string_view level_name(Level level) noexcept;

/// Widest level this binary carries code for.
[[nodiscard]] constexpr Level compiled_level() noexcept {
#if defined(BFHRF_DISABLE_SIMD)
  return Level::Swar;
#elif defined(BFHRF_SIMD_X86)
  // AVX2 kernels use per-function target attributes, so they are always
  // compiled on x86-64 and gated at runtime by cpuid.
  return Level::Avx2;
#elif defined(BFHRF_SIMD_ARM)
  return Level::Neon;
#else
  return Level::Swar;
#endif
}

/// Level in effect for this process (see file comment for the policy).
[[nodiscard]] Level active_level() noexcept;

/// Pin the dispatch level (tests/benches); std::nullopt restores
/// autodetection. Levels the binary/CPU cannot honor are clamped down.
/// Not thread-safe against concurrent kernel calls — call at a quiescent
/// point, as the dispatch-equivalence tests do.
void set_force_level(std::optional<Level> level) noexcept;

/// True when group probing runs a vector (non-SWAR) path.
[[nodiscard]] inline bool vectorized() noexcept {
  return active_level() != Level::Swar;
}

// ---------------------------------------------------------------------------
// 16-byte control-group views.

struct Group16Swar {
  std::uint64_t lo;
  std::uint64_t hi;

  static constexpr std::uint64_t kLsb = 0x0101010101010101ULL;
  static constexpr std::uint64_t kMsb = 0x8080808080808080ULL;

  [[nodiscard]] static Group16Swar load(const std::uint8_t* ctrl) noexcept {
    Group16Swar g;
    std::memcpy(&g.lo, ctrl, 8);
    std::memcpy(&g.hi, ctrl + 8, 8);
    return g;
  }

  /// Compress the per-byte MSBs of one 64-bit half into an 8-bit mask:
  /// `msbs` must carry bits only at positions 8k+7, and the multiply sends
  /// bit 8k+7 to bit 56+k (8k+7 + 7(7-k) = 56+k); all (k, j) product
  /// positions are distinct, so no carries corrupt the result. On a
  /// little-endian host mask bit k corresponds to ctrl byte k, matching
  /// _mm_movemask_epi8; on big-endian the within-half order permutes,
  /// which is still self-consistent (every mask consumer maps bits back
  /// through the same load).
  [[nodiscard]] static std::uint32_t movemask8(std::uint64_t msbs) noexcept {
    return static_cast<std::uint32_t>((msbs * 0x0002040810204081ULL) >> 56);
  }

  /// Bytes possibly equal to `tag` (superset; full bytes only — see the
  /// exactness contract in the file comment).
  [[nodiscard]] std::uint32_t match(std::uint8_t tag) const noexcept {
    const std::uint64_t t = kLsb * tag;
    const std::uint64_t xl = lo ^ t;
    const std::uint64_t xh = hi ^ t;
    return movemask8((xl - kLsb) & ~xl & kMsb) |
           (movemask8((xh - kLsb) & ~xh & kMsb) << 8);
  }

  /// Exact bitmask of empty (0x80) bytes. Deleted bytes (0xfe) carry bit 6,
  /// which `& (~x << 1)` clears from the high-bit extract (see the file
  /// comment's contract); the shift cannot leak across bytes because only
  /// high bits survive the kMsb mask.
  [[nodiscard]] std::uint32_t match_empty() const noexcept {
    return movemask8(lo & (~lo << 1) & kMsb) |
           (movemask8(hi & (~hi << 1) & kMsb) << 8);
  }

  /// Exact bitmask of empty-or-deleted bytes (pure high-bit extract).
  [[nodiscard]] std::uint32_t match_available() const noexcept {
    return movemask8(lo & kMsb) | (movemask8(hi & kMsb) << 8);
  }
};

#if !defined(BFHRF_DISABLE_SIMD) && defined(BFHRF_SIMD_X86)

struct Group16Sse2 {
  __m128i v;

  /// `ctrl` must be 16-byte aligned (the control directory is cache-line
  /// aligned and groups are 16 bytes wide).
  [[nodiscard]] static Group16Sse2 load(const std::uint8_t* ctrl) noexcept {
    return {_mm_load_si128(reinterpret_cast<const __m128i*>(ctrl))};
  }

  [[nodiscard]] std::uint32_t match(std::uint8_t tag) const noexcept {
    const __m128i t = _mm_set1_epi8(static_cast<char>(tag));
    return static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(v, t)));
  }

  [[nodiscard]] std::uint32_t match_empty() const noexcept {
    // Exact equality against the empty sentinel (deleted bytes differ).
    const __m128i empty = _mm_set1_epi8(static_cast<char>(0x80));
    return static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(v, empty)));
  }

  [[nodiscard]] std::uint32_t match_available() const noexcept {
    // Full bytes are 0x00..0x7f, so the per-byte sign bit flags both
    // sentinels (empty 0x80, deleted 0xfe) and nothing else.
    return static_cast<std::uint32_t>(_mm_movemask_epi8(v));
  }
};

using Group16Vec = Group16Sse2;

#elif !defined(BFHRF_DISABLE_SIMD) && defined(BFHRF_SIMD_ARM)

struct Group16Neon {
  uint8x16_t v;

  [[nodiscard]] static Group16Neon load(const std::uint8_t* ctrl) noexcept {
    return {vld1q_u8(ctrl)};
  }

  /// NEON has no movemask; compress the two 64-bit halves of the 0x00/0xff
  /// byte-compare result with the same multiply trick SWAR uses.
  [[nodiscard]] static std::uint32_t compress(uint8x16_t eq) noexcept {
    const std::uint64_t lo = vgetq_lane_u64(vreinterpretq_u64_u8(eq), 0);
    const std::uint64_t hi = vgetq_lane_u64(vreinterpretq_u64_u8(eq), 1);
    return Group16Swar::movemask8(lo & Group16Swar::kMsb) |
           (Group16Swar::movemask8(hi & Group16Swar::kMsb) << 8);
  }

  [[nodiscard]] std::uint32_t match(std::uint8_t tag) const noexcept {
    return compress(vceqq_u8(v, vdupq_n_u8(tag)));
  }

  [[nodiscard]] std::uint32_t match_empty() const noexcept {
    // Exact equality against the empty sentinel (deleted bytes differ).
    return compress(vceqq_u8(v, vdupq_n_u8(0x80)));
  }

  [[nodiscard]] std::uint32_t match_available() const noexcept {
    return compress(v);  // sign bit flags empty (0x80) and deleted (0xfe)
  }
};

using Group16Vec = Group16Neon;

#else

// No vector unit compiled in: the "vector" path aliases SWAR so dispatch
// code compiles unchanged.
using Group16Vec = Group16Swar;

#endif

}  // namespace bfhrf::util::simd
