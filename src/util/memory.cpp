#include "util/memory.hpp"

#include <cstdio>
#include <cstring>

namespace bfhrf::util {
namespace {

/// Read a "VmXXX:   1234 kB" line from /proc/self/status.
std::size_t read_status_kb(const char* key) noexcept {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  std::size_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      unsigned long long v = 0;
      if (std::sscanf(line + key_len, ": %llu", &v) == 1) {
        kb = static_cast<std::size_t>(v);
      }
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

std::size_t peak_rss_bytes() noexcept { return read_status_kb("VmHWM") * 1024; }

std::size_t current_rss_bytes() noexcept {
  return read_status_kb("VmRSS") * 1024;
}

double bytes_to_mb(std::size_t bytes) noexcept {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace bfhrf::util
