#include "util/sorted_ids.hpp"

#include <algorithm>
#include <bit>

#include "util/simd.hpp"

#if defined(BFHRF_SIMD_X86) && !defined(BFHRF_DISABLE_SIMD)
#include <emmintrin.h>
#endif

namespace bfhrf::util {
namespace {

/// First index in [lo, a.size()) with a[i] >= key, found by a doubling
/// probe from lo then binary search inside the bracketed range — the
/// "gallop" that makes skewed intersections O(small · log large).
std::size_t gallop_lower_bound(std::span<const std::uint32_t> a,
                               std::size_t lo, std::uint32_t key) noexcept {
  std::size_t step = 1;
  std::size_t hi = lo;
  while (hi < a.size() && a[hi] < key) {
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, a.size());
  const auto it = std::lower_bound(a.begin() + static_cast<std::ptrdiff_t>(lo),
                                   a.begin() + static_cast<std::ptrdiff_t>(hi),
                                   key);
  return static_cast<std::size_t>(it - a.begin());
}

#if defined(BFHRF_SIMD_X86) && !defined(BFHRF_DISABLE_SIMD)

/// 4x4 block intersection (Schlegel et al. / Lemire's SIMD set
/// intersection): compare every element of a 4-id block of `a` against
/// every element of a 4-id block of `b` using three lane rotations, count
/// matches from the movemask, and advance the block whose maximum is
/// smaller. Tails fall back to the scalar merge. Exact for sorted
/// duplicate-free inputs: each id appears in at most one block pair's
/// compare, and equal ids always meet (blocks only advance past ids
/// strictly below the other block's maximum).
std::size_t intersect_count_sse2(std::span<const std::uint32_t> a,
                                 std::span<const std::uint32_t> b) noexcept {
  const std::size_t na = a.size() & ~std::size_t{3};
  const std::size_t nb = b.size() & ~std::size_t{3};
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t count = 0;
  if (na != 0 && nb != 0) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&a[i]));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&b[j]));
    for (;;) {
      const __m128i cmp0 = _mm_cmpeq_epi32(va, vb);
      const __m128i rot1 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1));
      const __m128i cmp1 = _mm_cmpeq_epi32(va, rot1);
      const __m128i rot2 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2));
      const __m128i cmp2 = _mm_cmpeq_epi32(va, rot2);
      const __m128i rot3 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3));
      const __m128i cmp3 = _mm_cmpeq_epi32(va, rot3);
      const __m128i hits =
          _mm_or_si128(_mm_or_si128(cmp0, cmp1), _mm_or_si128(cmp2, cmp3));
      count += static_cast<std::size_t>(std::popcount(
          static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(hits)))));
      const std::uint32_t amax = a[i + 3];
      const std::uint32_t bmax = b[j + 3];
      if (amax <= bmax) {
        i += 4;
        if (i == na) {
          break;
        }
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&a[i]));
      }
      if (bmax <= amax) {
        j += 4;
        if (j == nb) {
          break;
        }
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&b[j]));
      }
    }
  }
  return count + intersect_count_scalar(a.subspan(i), b.subspan(j));
}

#endif  // BFHRF_SIMD_X86 && !BFHRF_DISABLE_SIMD

}  // namespace

std::size_t intersect_count_scalar(std::span<const std::uint32_t> a,
                                   std::span<const std::uint32_t> b) noexcept {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t count = 0;
  while (i < a.size() && j < b.size()) {
    const std::uint32_t x = a[i];
    const std::uint32_t y = b[j];
    count += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  return count;
}

std::size_t intersect_count_gallop(std::span<const std::uint32_t> a,
                                   std::span<const std::uint32_t> b) noexcept {
  // Probe each element of the smaller list into the larger one; `pos`
  // advances monotonically, so the whole pass is O(small · log large).
  const auto small = a.size() <= b.size() ? a : b;
  const auto large = a.size() <= b.size() ? b : a;
  std::size_t pos = 0;
  std::size_t count = 0;
  for (const std::uint32_t key : small) {
    pos = gallop_lower_bound(large, pos, key);
    if (pos == large.size()) {
      break;
    }
    count += (large[pos] == key);
  }
  return count;
}

std::size_t intersect_count_sorted(std::span<const std::uint32_t> a,
                                   std::span<const std::uint32_t> b) noexcept {
  const std::size_t lo = std::min(a.size(), b.size());
  const std::size_t hi = std::max(a.size(), b.size());
  if (lo == 0) {
    return 0;
  }
  if (hi >= lo * kGallopRatio) {
    return intersect_count_gallop(a, b);
  }
#if defined(BFHRF_SIMD_X86) && !defined(BFHRF_DISABLE_SIMD)
  if (simd::vectorized()) {
    return intersect_count_sse2(a, b);
  }
#endif
  return intersect_count_scalar(a, b);
}

}  // namespace bfhrf::util
