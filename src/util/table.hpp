// Aligned plain-text table rendering for the benchmark harness.
//
// Every bench binary prints paper-style tables (e.g. Table III's
// Algorithm/n/R/Time/Memory rows) next to our measured values; this keeps
// the formatting in one place.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bfhrf::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format mixed cells via to_string-able helpers at call site.
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Render with a header rule and 2-space column gaps.
  void print(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bfhrf::util
