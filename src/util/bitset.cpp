#include "util/bitset.hpp"

#include <algorithm>
#include <bit>

namespace bfhrf::util {

std::size_t popcount_words(ConstWordSpan words) noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

int compare_words(ConstWordSpan a, ConstWordSpan b) noexcept {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      return a[i] < b[i] ? -1 : 1;
    }
  }
  return 0;
}

bool equal_words(ConstWordSpan a, ConstWordSpan b) noexcept {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

void DynamicBitset::clear() noexcept {
  std::fill(words_.begin(), words_.end(), 0);
}

bool DynamicBitset::any() const noexcept {
  return std::any_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w != 0; });
}

void DynamicBitset::flip_all() noexcept {
  for (auto& w : words_) {
    w = ~w;
  }
  // Keep bits beyond size() zero so hashing/equality stay canonical.
  const std::size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& o) {
  check_same_size(o);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= o.words_[i];
  }
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& o) {
  check_same_size(o);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= o.words_[i];
  }
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& o) {
  check_same_size(o);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] ^= o.words_[i];
  }
  return *this;
}

bool DynamicBitset::is_subset_of(const DynamicBitset& o) const {
  check_same_size(o);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~o.words_[i]) != 0) {
      return false;
    }
  }
  return true;
}

bool DynamicBitset::is_disjoint_with(const DynamicBitset& o) const {
  check_same_size(o);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & o.words_[i]) != 0) {
      return false;
    }
  }
  return true;
}

std::size_t DynamicBitset::find_first() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

std::size_t DynamicBitset::find_next(std::size_t i) const noexcept {
  ++i;
  if (i >= size_) {
    return size_;
  }
  std::size_t w = i >> 6;
  std::uint64_t word = words_[w] & (~std::uint64_t{0} << (i & 63));
  while (true) {
    if (word != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(word));
    }
    if (++w == words_.size()) {
      return size_;
    }
    word = words_[w];
  }
}

std::string DynamicBitset::to_string() const {
  std::string s(size_, '0');
  for_each_set_bit([&s](std::size_t i) { s[i] = '1'; });
  return s;
}

DynamicBitset DynamicBitset::from_string(std::string_view s) {
  DynamicBitset b(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '1') {
      b.set(i);
    } else if (s[i] != '0') {
      throw ParseError("bad bitset character '" + std::string(1, s[i]) + "'");
    }
  }
  return b;
}

}  // namespace bfhrf::util
